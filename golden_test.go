package emsim

// The golden-signal regression corpus: small fixture programs plus
// their expected reconstructed signals, simulated with a checked-in
// trained model (testdata/golden/model.json) so no training happens at
// test time and every parameter in the trace→amplitude→signal path is
// pinned. Any refactor of the pipeline — the streaming session, the
// amplitude model, the reconstruction kernel — is diffable end to end:
// a behavioral change fails the RMS comparator, and an intentional
// change regenerates the corpus with
//
//	go test -run TestGoldenSignals -update ./...
//
// (delete testdata/golden/model.json first to also retrain the model).

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden-signal corpus (and train its model if missing)")

const (
	goldenDir       = "testdata/golden"
	goldenModelPath = goldenDir + "/model.json"
	// goldenRMSTol is the relative RMS error the comparator accepts.
	// Simulation is deterministic; the headroom covers only the decimal
	// round trip through the .sig files and cross-platform FP fusion.
	goldenRMSTol = 1e-6
)

// goldenTrainOptions is the deterministic campaign that produced
// testdata/golden/model.json (the starved-but-usable configuration of
// the budget study). Only -update with the model file deleted uses it.
func goldenTrainOptions() TrainOptions {
	return TrainOptions{
		Runs:                3,
		InstancesPerCluster: 10,
		MixedPrograms:       2,
		MixedLength:         200,
		Seed:                7,
	}
}

func goldenModel(t *testing.T) *Model {
	t.Helper()
	if _, err := os.Stat(goldenModelPath); os.IsNotExist(err) {
		if !*updateGolden {
			t.Fatalf("%s missing; run go test -run TestGoldenSignals -update", goldenModelPath)
		}
		dev := NewDevice(DefaultDeviceOptions())
		m, err := Train(dev, goldenTrainOptions())
		if err != nil {
			t.Fatalf("training golden model: %v", err)
		}
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := m.SaveFile(goldenModelPath); err != nil {
			t.Fatal(err)
		}
		t.Logf("trained and saved %s", goldenModelPath)
	}
	m, err := LoadModelFile(goldenModelPath)
	if err != nil {
		t.Fatalf("loading golden model: %v", err)
	}
	return m
}

// goldenPrograms lists the corpus fixtures (testdata/golden/<name>.s,
// expected signal in <name>.sig).
func goldenPrograms(t *testing.T) []string {
	t.Helper()
	matches, err := filepath.Glob(goldenDir + "/*.s")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatalf("no fixture programs under %s", goldenDir)
	}
	sort.Strings(matches)
	names := make([]string, len(matches))
	for i, m := range matches {
		names[i] = strings.TrimSuffix(filepath.Base(m), ".s")
	}
	return names
}

// relativeRMS is the corpus comparator: RMS of the sample-wise error,
// normalized by the expected signal's RMS so the tolerance is scale-free.
func relativeRMS(got, want []float64) (float64, error) {
	if len(got) != len(want) {
		return math.Inf(1), fmt.Errorf("length mismatch: got %d samples, want %d", len(got), len(want))
	}
	var errSq, refSq float64
	for i := range want {
		d := got[i] - want[i]
		errSq += d * d
		refSq += want[i] * want[i]
	}
	if refSq == 0 {
		if errSq == 0 {
			return 0, nil
		}
		return math.Inf(1), fmt.Errorf("expected signal is all-zero but got is not")
	}
	return math.Sqrt(errSq/float64(len(want))) / math.Sqrt(refSq/float64(len(want))), nil
}

func readSignalFile(path string) ([]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sig []float64
	for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		v, err := strconv.ParseFloat(line, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %v", path, i+1, err)
		}
		sig = append(sig, v)
	}
	return sig, nil
}

func writeSignalFile(path string, sig []float64) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# golden reconstructed signal: %d samples\n", len(sig))
	for _, v := range sig {
		fmt.Fprintf(&b, "%.12e\n", v)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func simulateFixture(t *testing.T, m *Model, name string) []float64 {
	t.Helper()
	src, err := os.ReadFile(filepath.Join(goldenDir, name+".s"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Assemble(string(src))
	if err != nil {
		t.Fatalf("%s: assemble: %v", name, err)
	}
	sess, err := NewSession(m, DefaultCPUConfig())
	if err != nil {
		t.Fatal(err)
	}
	sig, err := sess.SimulateProgram(prog.Words)
	if err != nil {
		t.Fatalf("%s: simulate: %v", name, err)
	}
	return sig
}

// TestGoldenSignals is the corpus gate: every fixture's reconstructed
// signal must match its checked-in expectation within the RMS tolerance.
func TestGoldenSignals(t *testing.T) {
	m := goldenModel(t)
	for _, name := range goldenPrograms(t) {
		t.Run(name, func(t *testing.T) {
			got := simulateFixture(t, m, name)
			sigPath := filepath.Join(goldenDir, name+".sig")
			if *updateGolden {
				if err := writeSignalFile(sigPath, got); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d samples)", sigPath, len(got))
				return
			}
			want, err := readSignalFile(sigPath)
			if err != nil {
				t.Fatalf("reading expectation: %v (run -update to regenerate)", err)
			}
			rms, err := relativeRMS(got, want)
			if err != nil {
				t.Fatalf("%v (run -update if this change is intentional)", err)
			}
			if rms > goldenRMSTol {
				t.Errorf("relative RMS error %.3e exceeds %.0e (run -update if this change is intentional)",
					rms, goldenRMSTol)
			}
		})
	}
}

// TestGoldenSignalsCatchBreakage is the deliberate-break test the
// acceptance criteria require: perturbing the reconstruction kernel by
// 1% must fail the comparator on every fixture — proof the corpus
// actually guards the signal path rather than vacuously passing.
func TestGoldenSignalsCatchBreakage(t *testing.T) {
	if *updateGolden {
		t.Skip("corpus being regenerated")
	}
	m := goldenModel(t)
	broken := *m // the model is plain data; a shallow copy is a variant
	broken.Kernel.Theta *= 1.01
	for _, name := range goldenPrograms(t) {
		t.Run(name, func(t *testing.T) {
			got := simulateFixture(t, &broken, name)
			want, err := readSignalFile(filepath.Join(goldenDir, name+".sig"))
			if err != nil {
				t.Fatal(err)
			}
			rms, err := relativeRMS(got, want)
			if err != nil {
				return // length change: the comparator caught it
			}
			if rms <= goldenRMSTol {
				t.Errorf("1%% kernel perturbation passed the comparator (relative RMS %.3e); the corpus is not protective", rms)
			}
		})
	}
}
