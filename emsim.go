// Package emsim is a from-scratch reproduction of "EMSim: A
// Microarchitecture-Level Simulation Tool for Modeling Electromagnetic
// Side-Channel Signals" (HPCA 2020) as a self-contained Go library.
//
// EMSim predicts the analog EM side-channel signal of a program cycle by
// cycle from a detailed microarchitectural model: a cycle-accurate 5-stage
// in-order RV32IM core feeds a trained multi-input-single-output (MISO)
// model in which every pipeline stage is an independent EM source
// (baseline amplitude per Table I instruction cluster, data-dependent
// activity from per-bit transition regressions, fitted superposition
// coefficients), with stalls, cache misses and misprediction flushes
// stamped into the per-cycle amplitudes and a fitted damped-sinusoid
// kernel rendering the analog waveform.
//
// Because the paper's physical bench (FPGA board, magnetic probe,
// oscilloscope) is hardware we do not have, the library ships a synthetic
// Device with hidden physics that plays that role; the Model never reads
// the hidden parameters — it learns them from measurements, exactly as
// the paper's model learns from its FPGA. See DESIGN.md for the
// substitution argument and EXPERIMENTS.md for paper-vs-measured results.
//
// # Quick start
//
//	dev := emsim.NewDevice(emsim.DefaultDeviceOptions())
//	model, err := emsim.Train(dev, emsim.TrainOptions{})
//	...
//	prog := emsim.MustAssemble(`
//	    li   t0, 10
//	loop:
//	    addi t0, t0, -1
//	    bnez t0, loop
//	    ebreak
//	`)
//	trace, signal, err := model.SimulateProgram(emsim.DefaultCPUConfig(), prog.Words)
//
// # Campaign simulation: the Session hot path
//
// SimulateProgram is the one-shot flow: it allocates a core, a full
// cycle trace and a signal per call. Campaign workloads — TVLA over
// thousands of AES traces, SAVAT matrices, design-space sweeps — should
// use a Session instead, the streaming pipeline that owns a resettable
// core plus reusable amplitude/signal buffers and simulates each trace
// without materializing intermediates:
//
//	sess, err := emsim.NewSession(model, emsim.DefaultCPUConfig())
//	var sig []float64
//	for _, words := range programs {
//	    sig, err = sess.SimulateProgramInto(sig, words) // ~0 allocs steady-state
//	    ...                                             // consume sig before the next call
//	}
//	results, err := sess.SimulateBatch(programs, 0)     // or fan across GOMAXPROCS workers
//
// The subsystems live in internal packages; this package re-exports the
// public surface:
//
//   - internal/cpu — the cycle-accurate RV32IM pipeline and its traces
//   - internal/asm, internal/isa — assembler and instruction set
//   - internal/device — the synthetic measurement bench
//   - internal/core — the EMSim model: training, simulation, ablations
//   - internal/leakage — TVLA and SAVAT leakage metrics
//   - internal/aes — AES-128 in RV32IM assembly (the TVLA workload)
//   - internal/defend — pluggable countermeasures and their evaluation
//   - internal/experiments — one harness per paper table/figure
package emsim

import (
	"context"
	"math/rand"

	"emsim/internal/aes"
	"emsim/internal/asm"
	"emsim/internal/core"
	"emsim/internal/cpu"
	"emsim/internal/defend"
	"emsim/internal/device"
	"emsim/internal/experiments"
	"emsim/internal/isa"
	"emsim/internal/leakage"
	"emsim/internal/signal"
)

// Processor simulation.
type (
	// CPU is the cycle-accurate 5-stage RV32IM core (§II-A).
	CPU = cpu.CPU
	// CPUConfig selects cache geometry, predictor, latencies, forwarding.
	CPUConfig = cpu.Config
	// Trace is the per-cycle microarchitectural record a run produces.
	Trace = cpu.Trace
	// Cycle is one clock cycle's record (per-stage occupancy, stalls,
	// flushes, latch transitions).
	Cycle = cpu.Cycle
	// CPUStats summarizes a run (cycles, IPC, misses, mispredictions).
	CPUStats = cpu.Stats
)

// Assembly and programs.
type (
	// Program is an assembled binary image.
	Program = asm.Program
	// Builder constructs programs programmatically with labels.
	Builder = asm.Builder
	// Inst is one decoded RV32IM instruction.
	Inst = isa.Inst
)

// The synthetic measurement bench.
type (
	// Device stands in for the paper's FPGA + probe + oscilloscope.
	Device = device.Device
	// DeviceOptions selects board instance, clock trim, probe position,
	// noise and sampling rate.
	DeviceOptions = device.Options
	// ProbePosition places the magnetic probe over the die.
	ProbePosition = device.ProbePosition
)

// The EMSim model.
type (
	// Model is a trained EMSim instance: simulate any program's EM signal
	// without further measurements.
	Model = core.Model
	// Session is the reusable streaming simulation pipeline: one
	// resettable core plus buffers, ~0 allocations per simulated trace.
	// The *Context method variants (SimulateProgramContext,
	// SimulateBatchContext) accept a context.Context that can cancel a
	// simulation mid-run; the cycle loop checks it every
	// cpu.CtxCheckInterval cycles, so cancellation costs nothing on the
	// hot path and still lands within ~1k cycles.
	Session = core.Session
	// ModelOptions holds the ablation switches of the paper's
	// degradation studies.
	ModelOptions = core.ModelOptions
	// TrainOptions tunes the measurement campaign, including the
	// measurement fan-out width (Workers), a per-phase progress callback
	// (Progress) and an optional measurement cache (Cache).
	TrainOptions = core.TrainOptions
	// Trainer is the staged training pipeline behind Train: explicit
	// kernel-fit → baseline → activity → miso phases driven by Run(ctx),
	// with cancellation, per-phase progress and timings, and a parallel
	// measurement fan-out whose fitted model is byte-identical at any
	// worker count.
	Trainer = core.Trainer
	// TrainPhase identifies one stage of the training pipeline.
	TrainPhase = core.Phase
	// TrainProgress is one progress event of a training campaign.
	TrainProgress = core.Progress
	// MeasurementCache stores measurement artifacts content-addressed by
	// (device fingerprint, averaging depth, program), letting repeated
	// trainings against the same bench skip re-measurement.
	MeasurementCache = core.MeasurementCache
	// Comparison scores a simulated signal against a measurement with
	// the paper's per-cycle correlation metric.
	Comparison = core.Comparison
	// Kernel is a §II-C reconstruction kernel.
	Kernel = signal.Kernel
	// Attribution breaks a simulated signal down by pipeline stage and
	// by instruction (the paper's assessment-and-attribution promise).
	Attribution = core.Attribution
)

// Leakage assessment.
type (
	// TVLAResult is a fixed-vs-random leakage assessment (§VI-A).
	TVLAResult = leakage.TVLAResult
	// TraceSource feeds TVLA with per-input traces.
	TraceSource = leakage.TraceSource
	// SavatInst enumerates Table II's instruction events.
	SavatInst = leakage.SavatInst
	// TVLAStream is the one-pass TVLA assessment: traces fold into
	// running moments one at a time and are discarded, so an
	// arbitrarily long campaign runs in constant memory with the t
	// statistic available at any prefix.
	TVLAStream = leakage.TVLAStream
	// CPAStream is the one-pass correlation power attack; memory is
	// O(guesses × sample points), independent of trace count.
	CPAStream = leakage.CPAStream
	// CPAResult is a CPA ranking outcome.
	CPAResult = leakage.CPAResult
)

// Experiments.
type (
	// Experiments reproduces every table and figure of the paper's
	// evaluation; see internal/experiments for the per-experiment types.
	Experiments = experiments.Env
	// ExperimentsOptions configures the experiment environment.
	ExperimentsOptions = experiments.EnvOptions
)

// AESProgram is an AES-128 encryption image for the simulated core.
type AESProgram = aes.Program

// DefaultCPUConfig returns the paper's processor configuration: 5-stage
// in-order pipeline, 2-level predictor + BTB, 32 KB cache with 1-cycle
// hits and +2-cycle misses, 3-cycle multiply/divide, forwarding on.
func DefaultCPUConfig() CPUConfig { return cpu.DefaultConfig() }

// NewCPU builds a core; it panics on invalid configuration (use cpu.New
// via the config's validation error for graceful handling).
func NewCPU(cfg CPUConfig) *CPU { return cpu.MustNew(cfg) }

// CycleSink consumes per-cycle trace records as a core emits them; see
// CPU.RunTo and CPU.RunProgramTo for streaming runs that never
// materialize a Trace.
type CycleSink = cpu.CycleSink

// NewSession builds a reusable streaming simulation pipeline for
// repeated simulations under one core configuration. Prefer it over
// Model.SimulateProgram whenever more than a handful of programs are
// simulated: steady-state reuse performs ~0 allocations per trace, and
// SimulateBatch fans a program slice across parallel workers. Servers
// and other callers that need deadlines or cancellation use the
// *Context variants (see Session).
func NewSession(m *Model, cfg CPUConfig) (*Session, error) { return core.NewSession(m, cfg) }

// DefaultDeviceOptions returns the baseline synthetic bench: board #1,
// probe centered over the die, 16 samples per clock cycle.
func DefaultDeviceOptions() DeviceOptions { return device.DefaultOptions() }

// NewDevice builds a synthetic device; it panics on invalid options.
func NewDevice(opts DeviceOptions) *Device { return device.MustNew(opts) }

// Train fits an EMSim model against a device with the staged campaign of
// §III: kernel fit, baseline amplitudes, stepwise activity regression,
// MISO coefficients. It is the blocking convenience form of NewTrainer +
// Trainer.Run; use those directly for cancellation, progress reporting
// and phase timings.
func Train(dev *Device, opts TrainOptions) (*Model, error) { return core.Train(dev, opts) }

// NewTrainer prepares a staged training session against dev; drive it
// with Trainer.Run(ctx).
func NewTrainer(dev *Device, opts TrainOptions) (*Trainer, error) {
	return core.NewTrainer(dev, opts)
}

// NewMeasurementCache returns an empty measurement cache to share across
// trainings via TrainOptions.Cache.
func NewMeasurementCache() *MeasurementCache { return core.NewMeasurementCache() }

// FullModel returns the complete model configuration; zero out fields of
// the result to reproduce the paper's ablations.
func FullModel() ModelOptions { return core.FullModel() }

// LoadModelFile reads a trained model previously written with
// Model.SaveFile — the "ship the board's parameters as a library" flow of
// §V-C.
func LoadModelFile(path string) (*Model, error) { return core.LoadModelFile(path) }

// Assemble parses RV32IM assembly text into a program image.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// MustAssemble is Assemble for known-good sources; it panics on error.
func MustAssemble(src string) *Program { return asm.MustAssembleText(src) }

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return asm.NewBuilder() }

// BuildAES generates an AES-128 encryption program for one key/plaintext
// pair (round keys precomputed into the image).
func BuildAES(key, plaintext [16]byte) (*AESProgram, error) {
	return aes.BuildProgram(key, plaintext)
}

// TVLA runs the fixed-vs-random t-test protocol over a trace source.
func TVLA(src TraceSource, fixed [16]byte, rng *rand.Rand, tracesPerGroup int) (*TVLAResult, error) {
	return leakage.TVLA(src, fixed, rng, tracesPerGroup)
}

// NewTVLAStream returns an empty streaming TVLA assessment; feed it with
// AddFixed/AddRandom and read the statistic at any prefix via Snapshot.
func NewTVLAStream() *TVLAStream { return leakage.NewTVLAStream() }

// NewCPAStream returns an empty streaming CPA attack over the given
// candidate count. points > 0 restricts the attack to the
// highest-variance columns of the first pilot traces; 0 attacks every
// column.
func NewCPAStream(guesses, points, pilot int) *CPAStream {
	return leakage.NewCPAStream(guesses, points, pilot)
}

// Countermeasure modeling and evaluation.
type (
	// Countermeasure is a pluggable microarchitectural defense; see
	// internal/defend for the built-in implementations (instruction
	// shuffling, dummy insertion, pipeline jitter).
	Countermeasure = defend.Countermeasure

	// DefenseSpec names a countermeasure and its parameters; parse one
	// from "name[:param=val,...]" with ParseDefenseSpec.
	DefenseSpec = defend.Spec

	// DefendedSession simulates traces under an armed countermeasure.
	DefendedSession = defend.Session

	// DefendOptions configures an Evaluate campaign.
	DefendOptions = defend.Options

	// SecurityReport compares defended execution against baseline.
	SecurityReport = defend.SecurityReport
)

// ParseDefenseSpec parses "name[:param=val,...]" into a validated
// countermeasure spec.
func ParseDefenseSpec(s string) (DefenseSpec, error) { return defend.ParseSpec(s) }

// NewDefendedSession builds a simulation session that arms cm per trace;
// a nil countermeasure yields a baseline session.
func NewDefendedSession(m *Model, cfg CPUConfig, cm Countermeasure, seed int64) (*DefendedSession, error) {
	return defend.NewSession(m, cfg, cm, seed)
}

// EvaluateDefense runs the TVLA + CPA attack campaigns against baseline
// and defended AES execution and reports security gained vs cycles lost.
func EvaluateDefense(ctx context.Context, opts DefendOptions) (*SecurityReport, error) {
	return defend.Evaluate(ctx, opts)
}

// The Table II instruction events for SAVAT.
const (
	LDM = leakage.LDM // load served by memory (cache miss)
	LDC = leakage.LDC // load served by the cache
	NOP = leakage.NOP
	ADD = leakage.ADD
	MUL = leakage.MUL
	DIV = leakage.DIV
)

// SavatProgram builds the A/B alternation microbenchmark of the SAVAT
// methodology (§VI-A).
func SavatProgram(a, b SavatInst, perHalf, periods int) ([]uint32, error) {
	return leakage.SavatProgram(a, b, perHalf, periods)
}

// Savat computes the SAVAT value from a captured or simulated signal of
// the alternation microbenchmark.
func Savat(sig []float64, samplesPerCycle, totalCycles, periods int) (float64, error) {
	return leakage.Savat(sig, samplesPerCycle, totalCycles, periods)
}

// NewExperiments trains a model on a fresh device and returns the harness
// that reproduces the paper's tables and figures.
func NewExperiments(opts ExperimentsOptions) (*Experiments, error) {
	return experiments.NewEnv(opts)
}

// DefaultExperimentsOptions returns the configuration used for the
// results recorded in EXPERIMENTS.md.
func DefaultExperimentsOptions() ExperimentsOptions {
	return experiments.DefaultEnvOptions()
}

// MixedProgram generates a random-but-terminating evaluation program
// blending all instruction clusters (loads, stores, mul/div, branches,
// bounded loops), as used for the §V robustness studies.
func MixedProgram(rng *rand.Rand, instructions int) ([]uint32, error) {
	return core.MixedProgram(rng, instructions)
}

// CombinationGroup generates group g of the §V-A validation benchmark:
// the instruction stream realizing combinations [g·1024, (g+1)·1024) of
// the 7⁵ pipeline occupancy space.
func CombinationGroup(g int, rng *rand.Rand, fullISA bool) ([]uint32, error) {
	return core.CombinationGroup(g, rng, fullISA)
}
