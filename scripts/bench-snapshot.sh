#!/usr/bin/env bash
# bench-snapshot.sh runs the attack-sweep analytics ladder and the
# simulation-throughput benchmark once each (-benchtime=1x: a smoke-grade
# snapshot, not a statistically stable measurement) and distills the
# rungs into BENCH_attack.json — one record per benchmark with ns/op,
# B/op, allocs/op and the traces/s (or cycles/s) custom metric — so CI
# can archive a comparable perf artifact per commit.
set -euo pipefail

OUT_DIR="${1:-bench-artifacts}"
mkdir -p "$OUT_DIR"
RAW="$OUT_DIR/bench-raw.txt"
JSON="$OUT_DIR/BENCH_attack.json"

echo "== benchmarks (1 iteration each)"
go test -run '^$' -bench 'BenchmarkAttackSweep|BenchmarkSimulationThroughput' \
  -benchtime=1x -benchmem . | tee "$RAW"

echo "== distill to $JSON"
awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
  name = $1
  nsop = ""; bop = ""; allocs = ""; rate = ""; ratename = ""
  for (i = 2; i < NF; i++) {
    if ($(i + 1) == "ns/op") nsop = $i
    if ($(i + 1) == "B/op") bop = $i
    if ($(i + 1) == "allocs/op") allocs = $i
    if ($(i + 1) == "traces/s" || $(i + 1) == "cycles/s") { rate = $i; ratename = $(i + 1) }
  }
  if (nsop == "") next
  if (!first) printf ",\n"
  first = 0
  printf "  {\"name\": \"%s\", \"ns_per_op\": %s", name, nsop
  if (bop != "") printf ", \"bytes_per_op\": %s", bop
  if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
  if (rate != "") printf ", \"%s\": %s", (ratename == "traces/s" ? "traces_per_sec" : "cycles_per_sec"), rate
  printf "}"
}
END { print "\n]" }
' "$RAW" > "$JSON"

# The snapshot must have produced every ladder rung; an empty or partial
# distillation means the benchmark names drifted from this script.
for want in 'buffered/traces=4096' 'streaming/traces=4096' 'SimulationThroughput'; do
  grep -q "$want" "$JSON" || {
    echo "BENCH_attack.json missing $want" >&2; cat "$JSON" >&2; exit 1; }
done

echo "ok: $(grep -c '"name"' "$JSON") benchmark records in $JSON"
