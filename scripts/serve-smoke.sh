#!/usr/bin/env bash
# serve-smoke.sh boots a real emsim-serve binary, drives it over HTTP and
# verifies graceful shutdown: a SIGTERM arriving while a request is in
# flight must drain that request (it completes 200) and exit 0. The CI
# serve job runs this after the in-process integration tests, so the
# binary's signal handling and the HTTP server wiring get covered too.
set -euo pipefail

ADDR="127.0.0.1:8097"
BASE="http://$ADDR"
BIN="$(mktemp -d)/emsim-serve"
LOG="$(mktemp)"

# Fail fast if the port is already bound. Without this check the health
# poll below happily talks to whatever stale process holds the port, and
# the script "passes" against the wrong server while our own binary dies
# with "address already in use" in the background.
if (exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}") 2>/dev/null; then
  exec 3>&- 3<&- || true
  echo "serve-smoke: $ADDR is already in use; stop the stale listener first" >&2
  exit 1
fi

cleanup() {
  kill "$SERVER_PID" 2>/dev/null || true
  cat "$LOG" >&2 || true
}

echo "== build"
go build -o "$BIN" ./cmd/emsim-serve

echo "== boot (trains a quick synthetic model)"
"$BIN" -addr "$ADDR" -workers 2 -queue 8 >"$LOG" 2>&1 &
SERVER_PID=$!
trap cleanup EXIT

for i in $(seq 1 120); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died during boot" >&2; exit 1
  fi
  sleep 1
done
curl -fsS "$BASE/healthz" >/dev/null

echo "== simulate (asm)"
BODY='{"asm":"    li t0, 10\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ebreak\n","include_stages":true}'
RESP=$(curl -fsS -X POST -d "$BODY" "$BASE/v1/simulate")
echo "$RESP" | grep -q '"cycles":' || { echo "no cycles in response: $RESP" >&2; exit 1; }
echo "$RESP" | grep -q '"stages":' || { echo "no stages in response: $RESP" >&2; exit 1; }

echo "== simulate (words) + varz"
curl -fsS -X POST -d '{"words":[1048723,1048691],"omit_signal":true}' "$BASE/v1/simulate" >/dev/null || true
curl -fsS "$BASE/varz" | grep -q '"cycles_simulated"' || { echo "varz missing metrics" >&2; exit 1; }

echo "== train job lifecycle (submit, poll to done)"
TRAIN='{"seed":7,"runs":2,"instances_per_cluster":6,"mixed_programs":1,"mixed_length":120}'
RESP=$(curl -fsS -X POST -d "$TRAIN" "$BASE/v1/train")
JOB=$(echo "$RESP" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "no job_id in submit response: $RESP" >&2; exit 1; }
STATE=""
for i in $(seq 1 240); do
  RESP=$(curl -fsS "$BASE/v1/train/$JOB")
  STATE=$(echo "$RESP" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  case "$STATE" in queued|running) sleep 0.5 ;; *) break ;; esac
done
[ "$STATE" = "done" ] || { echo "training job ended in state '$STATE': $RESP" >&2; exit 1; }
echo "$RESP" | grep -q '"model":' || { echo "done job carries no model: $RESP" >&2; exit 1; }

echo "== train job cancellation"
RESP=$(curl -fsS -X POST -d '{"runs":150,"instances_per_cluster":200}' "$BASE/v1/train")
JOB=$(echo "$RESP" | sed -n 's/.*"job_id":"\([^"]*\)".*/\1/p')
[ -n "$JOB" ] || { echo "no job_id in submit response: $RESP" >&2; exit 1; }
curl -fsS -X DELETE "$BASE/v1/train/$JOB" >/dev/null
STATE=""
for i in $(seq 1 60); do
  STATE=$(curl -fsS "$BASE/v1/train/$JOB" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
  case "$STATE" in queued|running) sleep 0.5 ;; *) break ;; esac
done
[ "$STATE" = "cancelled" ] || { echo "cancelled job reports state '$STATE'" >&2; exit 1; }
curl -fsS "$BASE/varz" | grep -q '"trains_cancelled": 1' || { echo "varz missing train metrics" >&2; exit 1; }

echo "== validation statuses"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d '{"asm": "nop"' "$BASE/v1/simulate")
[ "$CODE" = "400" ] || { echo "malformed JSON returned $CODE, want 400" >&2; exit 1; }

echo "== graceful shutdown with an in-flight request"
# A larger program keeps the worker busy while SIGTERM lands.
SLOW='{"asm":"    li t0, 200000\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ebreak\n","omit_signal":true}'
SLOW_STATUS=$(mktemp)
( curl -s -o /dev/null -w '%{http_code}' -X POST -d "$SLOW" "$BASE/v1/simulate" >"$SLOW_STATUS" ) &
CURL_PID=$!
sleep 0.2
kill -TERM "$SERVER_PID"
wait "$CURL_PID"
STATUS=$(cat "$SLOW_STATUS")
if [ "$STATUS" != "200" ]; then
  echo "in-flight request during SIGTERM returned $STATUS, want 200" >&2; exit 1
fi
if ! wait "$SERVER_PID"; then
  echo "server exited non-zero after SIGTERM" >&2; exit 1
fi
trap - EXIT
grep -q "drained" "$LOG" || { echo "server log missing drain marker" >&2; cat "$LOG" >&2; exit 1; }

echo "== smoke OK"
