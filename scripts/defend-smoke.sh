#!/usr/bin/env bash
# defend-smoke.sh runs a tiny defended attack campaign end to end through
# the real emsim-defend binary and verifies the determinism contract:
# the same seed must produce byte-identical JSON reports across repeated
# runs AND across worker counts (the per-trace randomization streams are
# keyed by trace index, not by worker scheduling). It also checks the
# report carries the sections a designer acts on.
set -euo pipefail

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
BIN="$TMP/emsim-defend"
MODEL="$TMP/model.json"

echo "== build"
go build -o "$BIN" ./cmd/emsim-defend

# One quick training campaign, cached; every evaluation run loads it so
# the determinism comparison only exercises the defend path.
COMMON=(-quick -model "$MODEL" -defense 'shuffle:window=16' -seed 9
        -tvla-traces 8 -cpa-traces 24 -cpa-step 12 -cpa-points 32 -json)

echo "== defended campaign, run 1 (trains + caches the quick model)"
"$BIN" "${COMMON[@]}" -workers 1 >"$TMP/run1.json"

echo "== defended campaign, run 2 (same seed, same workers)"
"$BIN" "${COMMON[@]}" -workers 1 >"$TMP/run2.json"

echo "== defended campaign, run 3 (same seed, 4 workers)"
"$BIN" "${COMMON[@]}" -workers 4 >"$TMP/run3.json"

echo "== determinism: same seed, repeated run"
cmp "$TMP/run1.json" "$TMP/run2.json" || {
  echo "same-seed runs differ" >&2; exit 1; }

echo "== determinism: same seed, different worker count"
cmp "$TMP/run1.json" "$TMP/run3.json" || {
  echo "worker count changed the report" >&2; exit 1; }

echo "== report shape"
for field in '"defense"' '"baseline"' '"defended"' '"tvla_sweep"' \
             '"cpa_ranks"' '"cycle_overhead"' '"attack_cost_multiplier"'; do
  grep -q "$field" "$TMP/run1.json" || {
    echo "report missing $field" >&2; cat "$TMP/run1.json" >&2; exit 1; }
done

echo "== a different seed must change the campaign"
"$BIN" "${COMMON[@]}" -workers 1 -seed 10 >"$TMP/run4.json"
if cmp -s "$TMP/run1.json" "$TMP/run4.json"; then
  echo "seed 9 and seed 10 produced identical reports" >&2; exit 1
fi

echo "ok"
