#!/usr/bin/env bash
# obs-smoke.sh exercises the observability surface end to end against
# real binaries: boots emsim-serve with the span ring and the pprof
# debug listener enabled, drives a request through it, then asserts that
# /metrics speaks Prometheus text with the expected series, /v1/trace
# returns a Chrome trace containing the serve and simulate spans, and
# /debug/pprof/ serves profiles — and finally that the emsim CLI's
# -trace flag writes a span timeline for an offline run. The /metrics
# snapshot and both trace JSONs land in obs-artifacts/ so the CI obs job
# can upload them for eyeballing in chrome://tracing.
set -euo pipefail

ADDR="127.0.0.1:8098"
DEBUG_ADDR="127.0.0.1:8099"
BASE="http://$ADDR"
DEBUG="http://$DEBUG_ADDR"
BINDIR="$(mktemp -d)"
LOG="$(mktemp)"
OUT="${OBS_ARTIFACTS:-obs-artifacts}"

# Fail fast if either port is already bound — otherwise the health poll
# talks to a stale server and every assertion below tests the wrong
# process (see serve-smoke.sh for the same guard).
for a in "$ADDR" "$DEBUG_ADDR"; do
  if (exec 3<>"/dev/tcp/${a%:*}/${a#*:}") 2>/dev/null; then
    exec 3>&- 3<&- || true
    echo "obs-smoke: $a is already in use; stop the stale listener first" >&2
    exit 1
  fi
done

cleanup() {
  kill "$SERVER_PID" 2>/dev/null || true
  cat "$LOG" >&2 || true
}

echo "== build"
go build -o "$BINDIR/emsim-serve" ./cmd/emsim-serve
go build -o "$BINDIR/emsim" ./cmd/emsim
mkdir -p "$OUT"

echo "== boot with tracing + debug listener"
"$BINDIR/emsim-serve" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" -workers 2 -queue 8 >"$LOG" 2>&1 &
SERVER_PID=$!
trap cleanup EXIT

for i in $(seq 1 120); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "server died during boot" >&2; exit 1
  fi
  sleep 1
done
curl -fsS "$BASE/healthz" >/dev/null

echo "== drive a simulate through the pool"
BODY='{"asm":"    li t0, 10\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ebreak\n"}'
curl -fsS -X POST -d "$BODY" "$BASE/v1/simulate" | grep -q '"cycles":' \
  || { echo "simulate gave no cycles" >&2; exit 1; }

echo "== /metrics speaks Prometheus text"
curl -fsS "$BASE/metrics" >"$OUT/metrics.txt"
for series in \
  '# TYPE emsim_requests_accepted_total counter' \
  'emsim_requests_accepted_total 1' \
  'emsim_request_duration_seconds_bucket{endpoint="simulate",le="+Inf"} 1' \
  'emsim_queue_depth 0' \
  'emsim_train_jobs_active 0'; do
  grep -qF "$series" "$OUT/metrics.txt" \
    || { echo "/metrics missing '$series'" >&2; cat "$OUT/metrics.txt" >&2; exit 1; }
done

echo "== /v1/trace returns the span timeline"
curl -fsS "$BASE/v1/trace" >"$OUT/serve-trace.json"
for span in serve.queued serve.run session.simulate; do
  grep -qF "\"name\":\"$span\"" "$OUT/serve-trace.json" \
    || { echo "trace missing a $span span" >&2; cat "$OUT/serve-trace.json" >&2; exit 1; }
done

echo "== debug listener serves pprof (and mirrors /metrics, /v1/trace)"
curl -fsS "$DEBUG/debug/pprof/" | grep -q goroutine \
  || { echo "pprof index lists no profiles" >&2; exit 1; }
curl -fsS "$DEBUG/debug/pprof/cmdline" >/dev/null
curl -fsS "$DEBUG/metrics" | grep -q emsim_requests_accepted_total \
  || { echo "debug /metrics mirror is empty" >&2; exit 1; }
curl -fsS "$DEBUG/v1/trace" | grep -q traceEvents \
  || { echo "debug /v1/trace mirror is malformed" >&2; exit 1; }

echo "== graceful shutdown"
kill -TERM "$SERVER_PID"
if ! wait "$SERVER_PID"; then
  echo "server exited non-zero after SIGTERM" >&2; exit 1
fi
trap - EXIT
grep -q "drained" "$LOG" || { echo "server log missing drain marker" >&2; cat "$LOG" >&2; exit 1; }

echo "== emsim -trace records an offline run"
"$BINDIR/emsim" -model testdata/golden/model.json -repeat 20 -trace "$OUT/cli-trace.json" >/dev/null
grep -qF '"name":"session.simulate"' "$OUT/cli-trace.json" \
  || { echo "CLI trace missing session.simulate spans" >&2; cat "$OUT/cli-trace.json" >&2; exit 1; }

echo "== obs smoke OK (artifacts in $OUT/)"
