package emsim

import (
	"math"
	"math/rand"
	"testing"

	"emsim/internal/cpu"
)

// The facade tests exercise the whole public journey a downstream user
// takes: device, training, assembly, simulation, comparison, leakage
// metrics — using only identifiers exported from package emsim.

func TestFacadeEndToEnd(t *testing.T) {
	env := benchEnvironment(t) // shared trained model (see bench_test.go)
	model, dev := env.Model, env.Dev

	prog, err := Assemble(`
		li   t0, 12
		li   t1, 1
	loop:
		mul  t1, t1, t0
		addi t0, t0, -1
		bgtz t0, loop
		li   t2, 0x2000
		sw   t1, 0(t2)
		ebreak
	`)
	if err != nil {
		t.Fatal(err)
	}

	// Pure simulation.
	trace, sig, err := model.SimulateProgram(DefaultCPUConfig(), prog.Words)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig) != len(trace)*model.SamplesPerCycle {
		t.Fatalf("signal %d samples for %d cycles", len(sig), len(trace))
	}

	// Validation against a measurement.
	cmp, err := model.CompareOnDevice(dev, prog.Words, 10)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Accuracy < 0.85 {
		t.Errorf("facade accuracy %.3f", cmp.Accuracy)
	}

	// Architectural correctness through the facade CPU.
	c := NewCPU(DefaultCPUConfig())
	if _, err := c.RunProgram(prog.Words); err != nil {
		t.Fatal(err)
	}
	if got := c.Memory().ReadWord(0x2000); got != 479001600 { // 12!
		t.Errorf("12! = %d", got)
	}
}

func TestFacadeAES(t *testing.T) {
	var key, pt [16]byte
	copy(key[:], "sixteen byte key")
	copy(pt[:], "plaintext block!")
	prog, err := BuildAES(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCPU(DefaultCPUConfig())
	if _, err := c.RunProgram(prog.Words); err != nil {
		t.Fatal(err)
	}
	out := prog.Output(c.Memory().ReadWord)
	allZero := true
	for _, b := range out {
		if b != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Error("AES produced a zero ciphertext")
	}
}

func TestFacadeTVLA(t *testing.T) {
	// A synthetic leaky source through the facade API.
	noise := rand.New(rand.NewSource(1))
	src := TraceSource(func(input [16]byte) ([]float64, error) {
		tr := make([]float64, 24)
		for i := range tr {
			tr[i] = noise.NormFloat64()
		}
		tr[5] += float64(input[3]) / 50
		return tr, nil
	})
	var fixed [16]byte
	fixed[3] = 200
	res, err := TVLA(src, fixed, rand.New(rand.NewSource(2)), 60)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Leaks() {
		t.Error("facade TVLA missed the planted leak")
	}
}

func TestFacadeSavat(t *testing.T) {
	env := benchEnvironment(t)
	words, err := SavatProgram(LDM, NOP, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr, sig, err := env.Dev.MeasureAveraged(words, 8)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Savat(sig, env.Dev.SamplesPerCycle(), len(tr), 16)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Errorf("SAVAT(LDM, NOP) = %v, want > 0", v)
	}
}

func TestFacadePrograms(t *testing.T) {
	// MixedProgram and CombinationGroup must be runnable through the
	// facade (programmatic construction with isa helpers is exercised by
	// the internal suites and the hwdebug example).
	words, err := MixedProgram(rand.New(rand.NewSource(3)), 200)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCPU(DefaultCPUConfig())
	if _, err := c.RunProgram(words); err != nil {
		t.Fatal(err)
	}
	group, err := CombinationGroup(3, rand.New(rand.NewSource(4)), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunProgram(group); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeModelOptions(t *testing.T) {
	env := benchEnvironment(t)
	opts := FullModel()
	if !opts.PerStageSources || !opts.ModelStalls || !opts.ModelCache || !opts.ModelFlush {
		t.Error("FullModel should enable everything")
	}
	opts.ModelStalls = false
	ablated := env.Model.WithOptions(opts)
	words, err := MixedProgram(rand.New(rand.NewSource(5)), 200)
	if err != nil {
		t.Fatal(err)
	}
	full, err := env.Model.CompareOnDevice(env.Dev, words, 6)
	if err != nil {
		t.Fatal(err)
	}
	abl, err := ablated.CompareOnDevice(env.Dev, words, 6)
	if err != nil {
		t.Fatal(err)
	}
	if abl.Accuracy >= full.Accuracy && abl.RMSE <= full.RMSE {
		t.Error("stall ablation shows no degradation through the facade")
	}
}

func TestFacadeProbeAdaptation(t *testing.T) {
	env := benchEnvironment(t)
	opts := DefaultDeviceOptions()
	opts.Probe = ProbePosition{X: 3.2, Height: 1.4}
	opts.NoiseSeed = 77
	moved := NewDevice(opts)
	calib, err := MixedProgram(rand.New(rand.NewSource(6)), 300)
	if err != nil {
		t.Fatal(err)
	}
	adapted, beta, err := env.Model.AdaptToProbe(moved, calib, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, b := range beta {
		sum += math.Abs(b - 1)
	}
	if sum < 0.3 {
		t.Errorf("β barely moved for a displaced probe: %v", beta)
	}
	eval, err := MixedProgram(rand.New(rand.NewSource(7)), 300)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := adapted.CompareOnDevice(moved, eval, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Accuracy < 0.85 {
		t.Errorf("adapted accuracy %.3f at the moved probe", cmp.Accuracy)
	}
}

func TestFacadeCPUStatsSurface(t *testing.T) {
	c := NewCPU(DefaultCPUConfig())
	prog := MustAssemble(`
		li t0, 3
	l:
		addi t0, t0, -1
		bnez t0, l
		ebreak
	`)
	tr, err := c.RunProgram(prog.Words)
	if err != nil {
		t.Fatal(err)
	}
	var st CPUStats = c.Stats()
	if st.Cycles != len(tr) {
		t.Error("stats cycles mismatch")
	}
	var cycle Cycle = tr[0]
	if cycle.N != 0 {
		t.Error("first cycle should be N=0")
	}
	var _ Trace = tr
	if cpu.NumStages != 5 {
		t.Error("five pipeline stages expected")
	}
}

func TestFacadeAttribution(t *testing.T) {
	// The §VIII promise through the public API: break a simulated signal
	// down by hardware (stage) and software (instruction).
	env := benchEnvironment(t)
	prog := MustAssemble(`
		li   t1, 0x1234567
		li   t2, 0x89ab
		li   t0, 6
	loop:
		mul  t3, t1, t2
		addi t0, t0, -1
		bnez t0, loop
		ebreak
	`)
	c := NewCPU(DefaultCPUConfig())
	tr, err := c.RunProgram(prog.Words)
	if err != nil {
		t.Fatal(err)
	}
	var att *Attribution = env.Model.Attribute(tr)
	sum := 0.0
	for _, s := range att.StageShare {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stage shares sum to %v", sum)
	}
	if len(att.Instructions) == 0 {
		t.Fatal("no instructions attributed")
	}
	// The MUL must be among the top emitters of this loop.
	foundMul := false
	for _, ia := range att.Instructions[:3] {
		if ia.Inst.Op.String() == "mul" {
			foundMul = true
		}
	}
	if !foundMul {
		t.Errorf("mul not in top-3 emitters: top is %v", att.Instructions[0].Inst)
	}
	if rep := att.Report(5); rep == "" {
		t.Error("empty attribution report")
	}
}

func TestFacadeModelFileRoundTrip(t *testing.T) {
	// SaveFile / LoadModelFile: the "ship the board's parameters" flow.
	env := benchEnvironment(t)
	path := t.TempDir() + "/model.json"
	if err := env.Model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog := MustAssemble(`
		li  t0, 9
	l:	addi t0, t0, -1
		bnez t0, l
		ebreak
	`)
	_, want, err := env.Model.SimulateProgram(DefaultCPUConfig(), prog.Words)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := loaded.SimulateProgram(DefaultCPUConfig(), prog.Words)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("sample %d differs after file round trip", i)
		}
	}
	if _, err := LoadModelFile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("loading a missing file succeeded")
	}
}

func TestFacadeCombinationGroup(t *testing.T) {
	// The §V-A benchmark generator through the public API: every group
	// must assemble into a runnable, halting program.
	rng := rand.New(rand.NewSource(5))
	words, err := CombinationGroup(0, rng, false)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCPU(DefaultCPUConfig())
	if _, err := c.RunProgram(words); err != nil {
		t.Fatalf("combination group 0 did not halt: %v", err)
	}
	if _, err := CombinationGroup(-1, rng, false); err == nil {
		t.Error("negative group index accepted")
	}
}
