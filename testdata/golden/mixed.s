# Golden fixture: mixed workload touching every stage class.
# ALU ops, shifts, a multiply, memory traffic and a function call via
# jal/ret, so the golden signal covers the full per-stage model.
    li sp, 0x2000
    li a0, 9
    li a1, 3
    li t0, 8
outer:
    call work
    addi a0, a0, 2
    addi t0, t0, -1
    bnez t0, outer
    ebreak

work:
    addi sp, sp, -8
    sw ra, 4(sp)
    sw a0, 0(sp)
    mul t1, a0, a1
    slli t2, a0, 2
    xor t1, t1, t2
    sltu t3, t2, t1
    add a2, a2, t1
    add a2, a2, t3
    lw a0, 0(sp)
    lw ra, 4(sp)
    addi sp, sp, 8
    ret
