# Golden fixture: multi-cycle multiply/divide unit.
# Alternates mul and div so the iterative unit's stall cycles and their
# distinctive amplitude signature land in the signal.
    li t0, 12
    li t1, 7
    li t2, 20              # iterations
mix:
    mul t3, t0, t1
    addi t0, t0, 5
    div t4, t3, t1
    rem t5, t3, t0
    add a0, a0, t4
    add a0, a0, t5
    addi t2, t2, -1
    bnez t2, mix
    ebreak
