# Golden fixture: store/load sweep over two cache lines.
# Exercises the memory stage: compulsory misses on the first touch of
# each line, hits on the read-back pass, plus load-use stalls.
    li a0, 0x1000          # buffer base
    li t0, 16              # words to write
    mv t1, a0
    li t2, 0x5a5a
fill:
    sw t2, 0(t1)
    addi t1, t1, 4
    addi t2, t2, 3
    addi t0, t0, -1
    bnez t0, fill

    li t0, 16              # read-back and accumulate
    mv t1, a0
    li a1, 0
sum:
    lw t3, 0(t1)
    add a1, a1, t3
    addi t1, t1, 4
    addi t0, t0, -1
    bnez t0, sum
    ebreak
