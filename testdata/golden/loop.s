# Golden fixture: tight countdown loop.
# Exercises the branch predictor (taken-dominant backward branch) and
# the forwarding path between the addi and the bnez.
    li t0, 64
loop:
    addi t0, t0, -1
    bnez t0, loop
    ebreak
