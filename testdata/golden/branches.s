# Golden fixture: data-dependent branch pattern.
# A 3-bit LFSR drives an unpredictable branch so both flush and
# fall-through paths of the pipeline appear in the trace.
    li t0, 0b101           # LFSR state (never zero)
    li t1, 48              # iterations
step:
    andi t2, t0, 1         # output bit
    srli t0, t0, 1
    beqz t2, skip
    xori t0, t0, 0b110     # taps for x^3 + x + 1
    addi a0, a0, 1         # count the ones
skip:
    addi t1, t1, -1
    bnez t1, step
    ebreak
