package emsim

// One benchmark per table and figure of the paper's evaluation. Each runs
// the corresponding experiment harness end to end (measure on the
// synthetic device, simulate with the trained model, score) and reports
// the headline number through b.ReportMetric, so `go test -bench .`
// regenerates every row/series the paper reports. Absolute values differ
// from the paper (synthetic bench, not the authors' FPGA); the shape —
// who wins, what breaks under ablation — is the reproduction target and
// is asserted by the test suites under internal/.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"emsim/internal/core"
	"emsim/internal/experiments"
	"emsim/internal/leakage"
	"emsim/internal/stats"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func benchEnvironment(b testing.TB) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		opts := experiments.DefaultEnvOptions()
		opts.Train = core.TrainOptions{Runs: 10, InstancesPerCluster: 30, MixedLength: 400}
		opts.Runs = 8
		benchEnv, benchErr = experiments.NewEnv(opts)
	})
	if benchErr != nil {
		b.Fatalf("environment: %v", benchErr)
	}
	return benchEnv
}

// BenchmarkTraining measures the full model-building campaign of §III
// (kernel fit, baseline amplitudes, stepwise activity regression, MISO)
// at several measurement fan-out widths. The /1 rung is the sequential
// baseline; the parallel rungs fit byte-identical models (asserted by
// TestTrainerWorkerCountEquivalence), so the ratio between rungs is pure
// pipeline speedup.
func BenchmarkTraining(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=max"
		}
		b.Run(name, func(b *testing.B) {
			dev := NewDevice(DefaultDeviceOptions())
			for i := 0; i < b.N; i++ {
				opts := TrainOptions{Runs: 10, InstancesPerCluster: 30, MixedLength: 400, Workers: workers}
				if _, err := Train(dev, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure1Reconstruction compares the rect/exp/sin-exp kernels.
func BenchmarkFigure1Reconstruction(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range r.Scores {
			b.ReportMetric(s.NCC, "ncc:"+s.Kind.String())
		}
	}
}

// BenchmarkFigure2PerStageSources is the per-stage-vs-single-source study.
func BenchmarkFigure2PerStageSources(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FullRMSE, "rmse:full")
		b.ReportMetric(r.AblatedRMSE, "rmse:single-source")
	}
}

// BenchmarkFigure3ActivityFactor is the LR-vs-averaging activity study.
func BenchmarkFigure3ActivityFactor(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FullRMSE, "rmse:stepwise-LR")
		b.ReportMetric(r.AblatedRMSE, "rmse:average")
	}
}

// BenchmarkFigure4MISO is the two-sources-in-flight superposition study.
func BenchmarkFigure4MISO(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AccuracyCombined, "accuracy")
		b.ReportMetric(r.SuperpositionError, "naive-superposition-rms")
	}
}

// BenchmarkFigure5Stalls is the stall-modeling study.
func BenchmarkFigure5Stalls(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FullRMSE, "rmse:full")
		b.ReportMetric(r.AblatedRMSE, "rmse:no-stall")
	}
}

// BenchmarkFigure6Cache is the cache-hit/miss modeling study.
func BenchmarkFigure6Cache(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FullRMSE, "rmse:full")
		b.ReportMetric(r.AblatedRMSE, "rmse:no-cache")
	}
}

// BenchmarkFigure7Misprediction is the flush-bubble modeling study.
func BenchmarkFigure7Misprediction(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FullRMSE, "rmse:full")
		b.ReportMetric(r.AblatedRMSE, "rmse:no-flush")
	}
}

// BenchmarkTableIClustering derives the 7 instruction clusters from
// measured signatures.
func BenchmarkTableIClustering(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.TableI()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PairAgreement, "agreement-with-TableI")
	}
}

// BenchmarkFigure8Accuracy is the headline §V-A validation over the
// combination benchmark (4 of the 17 groups per iteration; the recorded
// full-17 run lives in EXPERIMENTS.md).
func BenchmarkFigure8Accuracy(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Figure8(4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Mean, "accuracy:representatives")
		b.ReportMetric(r.MeanFullISA, "accuracy:full-ISA")
	}
}

// BenchmarkAblations re-scores the benchmark with each modeling feature
// disabled.
func BenchmarkAblations(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Ablations(2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Full, "accuracy:full")
		for _, row := range r.Rows {
			b.ReportMetric(row.Accuracy, "accuracy:"+shortName(row.Name))
		}
	}
}

func shortName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ':
			out = append(out, '-')
		case '(', ')':
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkManufacturingVariability is the §V-B board-instance study.
func BenchmarkManufacturingVariability(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Manufacturing()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Spread, "accuracy-spread")
	}
}

// BenchmarkBoardVariability is the §V-C cross-board study.
func BenchmarkBoardVariability(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.BoardVariability()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.StaleAccuracy, "accuracy:stale")
		b.ReportMetric(r.RetrainedAccuracy, "accuracy:retrained-A-c")
	}
}

// BenchmarkFigure9Distance is the probe-position / β study.
func BenchmarkFigure9Distance(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BetaOne, "accuracy:beta=1")
		b.ReportMetric(r.BetaAdjusted, "accuracy:beta-refit")
	}
}

// BenchmarkFigure10TVLA is the AES-128 leakage assessment, real vs
// simulated.
func BenchmarkFigure10TVLA(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Figure10(20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ProfileCorrelation, "t-profile-correlation")
		b.ReportMetric(r.RealMaxT, "max-t:real")
		b.ReportMetric(r.SimMaxT, "max-t:simulated")
	}
}

// BenchmarkTableIISAVAT computes the 6×6 SAVAT matrix both ways.
func BenchmarkTableIISAVAT(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.TableII()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Correlation, "real-vs-sim-correlation")
		b.ReportMetric(r.Real[leakage.LDM][leakage.NOP], "savat:LDM-NOP:real")
		b.ReportMetric(r.Sim[leakage.LDM][leakage.NOP], "savat:LDM-NOP:sim")
	}
}

// BenchmarkFigure11Debug is the defective-multiplier localization study.
func BenchmarkFigure11Debug(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.Figure11()
		if err != nil {
			b.Fatal(err)
		}
		detected := 0.0
		if r.DefectDetected {
			detected = 1
		}
		b.ReportMetric(detected, "defect-localized")
		b.ReportMetric(r.BuggyMaxDev, "peak-contrast")
	}
}

// BenchmarkPredictorStudy is the §IV predictor comparison.
func BenchmarkPredictorStudy(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.PredictorStudy()
		if err != nil {
			b.Fatal(err)
		}
		for j, name := range r.Names {
			b.ReportMetric(r.Accuracies[j], "accuracy:"+name)
		}
	}
}

// BenchmarkSimulationThroughput measures raw simulation speed: cycles of
// EM signal generated per second for a trained model, the "performance
// advantage of a cycle-accurate simulation relative to a physics-based
// model" the paper motivates.
func BenchmarkSimulationThroughput(b *testing.B) {
	env := benchEnvironment(b)
	words, err := CombinationGroup(0, rand.New(rand.NewSource(1)), false)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultCPUConfig()
	cycles := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, _, err := env.Model.SimulateProgram(cfg, words)
		if err != nil {
			b.Fatal(err)
		}
		cycles += len(tr)
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
}

// BenchmarkSessionReuse measures the streaming hot path: one Session
// simulating the same program back to back, buffers recycled through
// SimulateProgramInto. Compare cycles/s (and allocs/op) against
// BenchmarkSimulationThroughput, the legacy per-call pipeline.
func BenchmarkSessionReuse(b *testing.B) {
	env := benchEnvironment(b)
	words, err := CombinationGroup(0, rand.New(rand.NewSource(1)), false)
	if err != nil {
		b.Fatal(err)
	}
	sess, err := NewSession(env.Model, DefaultCPUConfig())
	if err != nil {
		b.Fatal(err)
	}
	var sig []float64
	cycles := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig, err = sess.SimulateProgramInto(sig, words)
		if err != nil {
			b.Fatal(err)
		}
		cycles += sess.Cycles()
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
}

// BenchmarkSimulateBatch fans a campaign of programs across worker
// Sessions, at several worker counts (the sub-benchmark name is the
// worker count; 0 = GOMAXPROCS).
func BenchmarkSimulateBatch(b *testing.B) {
	env := benchEnvironment(b)
	rng := rand.New(rand.NewSource(2))
	var programs [][]uint32
	for i := 0; i < 32; i++ {
		w, err := MixedProgram(rng, 300)
		if err != nil {
			b.Fatal(err)
		}
		programs = append(programs, w)
	}
	sess, err := NewSession(env.Model, DefaultCPUConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cycles := 0
			for i := 0; i < b.N; i++ {
				res, err := sess.SimulateBatch(programs, workers)
				if err != nil {
					b.Fatal(err)
				}
				for _, sig := range res {
					cycles += len(sig) / env.Model.SamplesPerCycle
				}
			}
			b.StopTimer()
			if b.Elapsed() > 0 {
				b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
			}
		})
	}
}

// BenchmarkEndToEndQuickstart runs the whole user journey once per
// iteration: assemble, simulate, compare against a measurement.
func BenchmarkEndToEndQuickstart(b *testing.B) {
	env := benchEnvironment(b)
	prog := MustAssemble(`
		li   t0, 25
		li   t1, 0
	loop:
		add  t1, t1, t0
		addi t0, t0, -1
		bnez t0, loop
		sw   t1, 1024(zero)
		ebreak
	`)
	for i := 0; i < b.N; i++ {
		cmp, err := env.Model.CompareOnDevice(env.Dev, prog.Words, 5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.Accuracy, "accuracy")
	}
}

// BenchmarkForwardingStudy is the §IV forwarding comparison.
func BenchmarkForwardingStudy(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.ForwardingStudy()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WithForwarding, "accuracy:forwarding-on")
		b.ReportMetric(r.WithoutForwarding, "accuracy:forwarding-off")
	}
}

// BenchmarkSamplingRateStudy is the §V-A oscilloscope-rate sweep.
func BenchmarkSamplingRateStudy(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.SamplingRateStudy()
		if err != nil {
			b.Fatal(err)
		}
		for j, spc := range r.SamplesPerCycle {
			b.ReportMetric(r.Accuracies[j], fmt.Sprintf("accuracy:spc=%d", spc))
		}
	}
}

// BenchmarkTrainingBudgetStudy retrains at shrinking measurement budgets
// (§III-B campaign-size sensitivity) and reports held-out accuracy for
// the full and the most starved campaigns.
func BenchmarkTrainingBudgetStudy(b *testing.B) {
	env := benchEnvironment(b)
	for i := 0; i < b.N; i++ {
		r, err := env.TrainingBudgetStudy()
		if err != nil {
			b.Fatal(err)
		}
		full := r.Points[0]
		starved := r.Points[len(r.Points)-1]
		b.ReportMetric(full.Accuracy, "accuracy:full-budget")
		b.ReportMetric(starved.Accuracy, "accuracy:starved-budget")
	}
}

// Attack-sweep benchmark geometry; matches the experiments study.
const (
	benchSweepWidth   = 64
	benchSweepGuesses = 64
	benchSweepStep    = 64
)

// benchSweepData builds the synthetic campaign for BenchmarkAttackSweep:
// n TVLA pairs and n CPA traces with one planted leak each, everything
// else Gaussian noise. Generation happens outside the timed region.
func benchSweepData(n int) (fixed, random, traces, hyp [][]float64) {
	rng := rand.New(rand.NewSource(7))
	leakCol, leakGuess := benchSweepWidth/3, 5
	fixed = make([][]float64, n)
	random = make([][]float64, n)
	traces = make([][]float64, n)
	hyp = make([][]float64, n)
	for i := 0; i < n; i++ {
		f := make([]float64, benchSweepWidth)
		r := make([]float64, benchSweepWidth)
		tr := make([]float64, benchSweepWidth)
		h := make([]float64, benchSweepGuesses)
		for c := range f {
			f[c] = rng.NormFloat64()
			r[c] = rng.NormFloat64()
			tr[c] = rng.NormFloat64()
		}
		f[leakCol] += 0.8
		for g := range h {
			h[g] = float64(rng.Intn(9))
		}
		tr[leakCol] += 0.5 * h[leakGuess]
		fixed[i], random[i], traces[i], hyp[i] = f, r, tr, h
	}
	return fixed, random, traces, hyp
}

// BenchmarkAttackSweep measures the security-sweep analytics (a TVLA
// detection curve plus a CPA key-rank curve with a sweep point every 64
// traces) at a ladder of campaign sizes, comparing the buffered-recompute
// formulation — retain every trace, recompute each sweep point from
// scratch, the shape defend.Evaluate had before streaming — against the
// one-pass accumulators. B/op is the headline memory number: buffered
// grows O(traces×samples) while streaming holds O(guesses×samples)
// state regardless of campaign length.
func BenchmarkAttackSweep(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		fixed, random, traces, hyp := benchSweepData(n)
		b.Run(fmt.Sprintf("buffered/traces=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bufF := make([][]float64, 0, n)
				bufR := make([][]float64, 0, n)
				bufT := make([][]float64, 0, n)
				bufH := make([][]float64, 0, n)
				for t := 0; t < n; t++ {
					bufF = append(bufF, append([]float64(nil), fixed[t]...))
					bufR = append(bufR, append([]float64(nil), random[t]...))
					bufT = append(bufT, append([]float64(nil), traces[t]...))
					bufH = append(bufH, append([]float64(nil), hyp[t]...))
					if (t+1)%benchSweepStep != 0 {
						continue
					}
					if _, err := stats.TVLATrace(bufF, bufR); err != nil {
						b.Fatal(err)
					}
					if _, err := leakage.CPA(bufT, bufH); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportTracesPerSec(b, n)
		})
		b.Run(fmt.Sprintf("streaming/traces=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tv := leakage.NewTVLAStream()
				cpa := leakage.NewCPAStream(benchSweepGuesses, 0, 0)
				for t := 0; t < n; t++ {
					if err := tv.AddFixed(fixed[t]); err != nil {
						b.Fatal(err)
					}
					if err := tv.AddRandom(random[t]); err != nil {
						b.Fatal(err)
					}
					if err := cpa.Add(traces[t], hyp[t]); err != nil {
						b.Fatal(err)
					}
					if (t+1)%benchSweepStep != 0 {
						continue
					}
					if _, err := tv.MaxAbsT(); err != nil {
						b.Fatal(err)
					}
					if _, err := cpa.Snapshot(); err != nil {
						b.Fatal(err)
					}
				}
			}
			reportTracesPerSec(b, n)
		})
	}
}

func reportTracesPerSec(b *testing.B, n int) {
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "traces/s")
	}
}
