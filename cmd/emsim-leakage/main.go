// Command emsim-leakage runs the paper's §VI-A leakage-assessment
// use-cases from the command line: TVLA (fixed-vs-random Welch t-test on
// AES-128) and SAVAT (instruction-pair signal availability, Table II),
// each from real device measurements, from purely simulated signals, or
// both side by side.
//
// Usage:
//
//	emsim-leakage -mode tvla [-traces 40] [-sim|-real]
//	emsim-leakage -mode savat [-a MUL -b NOP | -matrix]
//
// A trained model can be cached with -model file.json (written on first
// run, loaded afterwards), which makes repeat assessments start in
// milliseconds — the paper's "ship the board's parameters" workflow.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"emsim"
	"emsim/internal/core"
	"emsim/internal/device"
	"emsim/internal/leakage"
)

func main() {
	mode := flag.String("mode", "tvla", "assessment to run: tvla or savat")
	traces := flag.Int("traces", 40, "tvla: traces per group (fixed and random)")
	simOnly := flag.Bool("sim", false, "use only simulated signals")
	realOnly := flag.Bool("real", false, "use only device measurements")
	aName := flag.String("a", "MUL", "savat: instruction A (LDM,LDC,NOP,ADD,MUL,DIV)")
	bName := flag.String("b", "NOP", "savat: instruction B")
	matrix := flag.Bool("matrix", false, "savat: compute the full Table II matrix")
	perHalf := flag.Int("perhalf", 8, "savat: instructions per half period")
	periods := flag.Int("periods", 16, "savat: alternation periods")
	runs := flag.Int("runs", 10, "savat: measurement averaging runs")
	modelPath := flag.String("model", "", "cache the trained model in this file")
	seed := flag.Int64("seed", 1, "training and protocol seed")
	progress := flag.Bool("progress", false, "report per-phase training progress on stderr")
	trainWorkers := flag.Int("train-workers", 0, "training measurement workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *simOnly && *realOnly {
		fatal(fmt.Errorf("-sim and -real are mutually exclusive"))
	}
	doReal, doSim := !*simOnly, !*realOnly

	dev := emsim.NewDevice(emsim.DefaultDeviceOptions())
	model := trainOrLoad(dev, *modelPath, *seed, doSim, *trainWorkers, *progress)

	switch *mode {
	case "tvla":
		runTVLA(dev, model, *traces, *seed, doReal, doSim)
	case "savat":
		runSavat(dev, model, *aName, *bName, *matrix, *perHalf, *periods, *runs, doReal, doSim)
	default:
		fatal(fmt.Errorf("unknown -mode %q (want tvla or savat)", *mode))
	}
}

// trainOrLoad returns a trained model, reusing the cache file when one is
// given. Training is skipped entirely for -real runs that never simulate.
func trainOrLoad(dev *emsim.Device, path string, seed int64, needed bool, workers int, progress bool) *emsim.Model {
	if !needed {
		return nil
	}
	if path != "" {
		if m, err := core.LoadModelFile(path); err == nil {
			fmt.Fprintf(os.Stderr, "loaded trained model from %s\n", path)
			return m
		}
	}
	fmt.Fprintln(os.Stderr, "training EMSim against the reference device...")
	opts := core.TrainOptions{Seed: seed, Workers: workers}
	if progress {
		opts.Progress = func(p core.Progress) {
			switch {
			case p.Done == 0:
				fmt.Fprintf(os.Stderr, "  phase %d/%d %-10s %d measurements...\n",
					int(p.Phase)+1, core.NumPhases, p.Phase, p.Total)
			case p.Done == p.Total:
				fmt.Fprintf(os.Stderr, "  phase %d/%d %-10s done in %s\n",
					int(p.Phase)+1, core.NumPhases, p.Phase, p.Elapsed.Round(time.Millisecond))
			}
		}
	}
	m, err := core.Train(dev, opts)
	if err != nil {
		fatal(err)
	}
	if path != "" {
		if err := m.SaveFile(path); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved trained model to %s\n", path)
	}
	return m
}

func runTVLA(dev *emsim.Device, model *emsim.Model, traces int, seed int64, doReal, doSim bool) {
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	var fixed [16]byte
	copy(fixed[:], "tvla-fixed-input")

	build := func(input [16]byte) ([]uint32, error) {
		prog, err := emsim.BuildAES(key, input)
		if err != nil {
			return nil, err
		}
		return prog.Words, nil
	}
	realSrc := emsim.TraceSource(dev.CaptureSource(build))

	fmt.Printf("TVLA on AES-128, %d traces per group, threshold |t| > 4.5\n\n", traces)
	if doReal {
		report("real measurements", mustTVLA(realSrc, fixed, seed, traces))
	}
	if doSim {
		// One Session serves the whole campaign: 2×traces AES encryptions
		// through a resettable core and reused buffers.
		sess, err := emsim.NewSession(model, dev.Options().CPU)
		if err != nil {
			fatal(err)
		}
		noise := rand.New(rand.NewSource(seed + 99))
		noiseStd := dev.Options().NoiseStd
		simSrc := leakage.SimSource(sess, build, func() float64 { return noiseStd * noise.NormFloat64() })
		report("simulated signals", mustTVLA(simSrc, fixed, seed, traces))
	}
}

func mustTVLA(src emsim.TraceSource, fixed [16]byte, seed int64, traces int) *emsim.TVLAResult {
	res, err := emsim.TVLA(src, fixed, rand.New(rand.NewSource(seed)), traces)
	if err != nil {
		fatal(err)
	}
	return res
}

func report(label string, r *emsim.TVLAResult) {
	verdict := "PASS (no first-order leakage detected)"
	if r.Leaks() {
		verdict = fmt.Sprintf("LEAKS at %d sample points", len(r.LeakyPoints))
	}
	fmt.Printf("%-20s max|t| = %6.1f  %s\n", label+":", r.MaxAbsT, verdict)
}

func runSavat(dev *emsim.Device, model *emsim.Model, aName, bName string,
	matrix bool, perHalf, periods, runs int, doReal, doSim bool) {
	events := []emsim.SavatInst{emsim.LDM, emsim.LDC, emsim.NOP, emsim.ADD, emsim.MUL, emsim.DIV}
	spc := dev.SamplesPerCycle()

	var sess *emsim.Session
	if doSim {
		var err error
		if sess, err = emsim.NewSession(model, dev.Options().CPU); err != nil {
			fatal(err)
		}
	}

	one := func(a, b emsim.SavatInst) (realV, simV float64) {
		words, err := emsim.SavatProgram(a, b, perHalf, periods)
		if err != nil {
			fatal(err)
		}
		if doReal {
			tr, sig, err := dev.MeasureAveraged(words, runs)
			if err != nil {
				fatal(err)
			}
			if realV, err = emsim.Savat(sig, spc, len(tr), periods); err != nil {
				fatal(err)
			}
		}
		if doSim {
			ssig, err := sess.SimulateProgram(words)
			if err != nil {
				fatal(err)
			}
			if simV, err = emsim.Savat(ssig, spc, sess.Cycles(), periods); err != nil {
				fatal(err)
			}
		}
		return realV, simV
	}

	if !matrix {
		a, err := parseSavatInst(aName)
		if err != nil {
			fatal(err)
		}
		b, err := parseSavatInst(bName)
		if err != nil {
			fatal(err)
		}
		realV, simV := one(a, b)
		fmt.Printf("SAVAT(%s, %s):", a, b)
		if doReal {
			fmt.Printf("  real %.4f", realV)
		}
		if doSim {
			fmt.Printf("  simulated %.4f", simV)
		}
		fmt.Println()
		return
	}

	printMatrix := func(label string, pick func(r, s float64) float64) {
		fmt.Printf("SAVAT matrix (%s):\n      ", label)
		for _, e := range events {
			fmt.Printf("%8s", e)
		}
		fmt.Println()
		for _, a := range events {
			fmt.Printf("%5s ", a)
			for _, b := range events {
				r, s := one(a, b)
				fmt.Printf("%8.3f", pick(r, s))
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if doReal {
		printMatrix("real measurements", func(r, _ float64) float64 { return r })
	}
	if doSim {
		printMatrix("simulated", func(_, s float64) float64 { return s })
	}
}

func parseSavatInst(name string) (emsim.SavatInst, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "LDM":
		return emsim.LDM, nil
	case "LDC":
		return emsim.LDC, nil
	case "NOP":
		return emsim.NOP, nil
	case "ADD":
		return emsim.ADD, nil
	case "MUL":
		return emsim.MUL, nil
	case "DIV":
		return emsim.DIV, nil
	}
	return 0, fmt.Errorf("unknown SAVAT instruction %q (want LDM, LDC, NOP, ADD, MUL or DIV)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emsim-leakage:", err)
	os.Exit(1)
}

// Interface assertions: the CLI drives exactly the public leakage surface.
var (
	_ = leakage.SavatMatrix
	_ = device.DefaultOptions
)
