// Command emsim-defend evaluates a microarchitectural countermeasure:
// it runs the full attack campaign of defend.Evaluate — a TVLA
// fixed-vs-random detection sweep and a CPA key-recovery
// traces-to-disclosure curve against AES-128 — on both baseline and
// defended execution, and reports leakage reduction, attack-cost
// multiplier and cycle overhead.
//
// Usage:
//
//	emsim-defend [-defense spec] [-model file.json] [-json]
//
// The defense spec is name[:param=val,...]:
//
//	shuffle[:window=N]          dataflow-safe instruction reordering
//	dummy[:rate=R]              random inert-instruction insertion
//	jitter[:rate=R,region=N]    randomized per-region pipeline stalls
//
// Every campaign is keyed by -seed: repeated runs produce byte-identical
// reports at any -workers count.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"emsim/internal/core"
	"emsim/internal/defend"
	"emsim/internal/device"
)

func main() {
	defense := flag.String("defense", "shuffle", "countermeasure spec: name[:param=val,...]")
	modelPath := flag.String("model", "", "cache the trained model in this file (loaded if it exists)")
	seed := flag.Int64("seed", 1, "campaign randomization seed")
	workers := flag.Int("workers", 0, "simulation fan-out (0 = GOMAXPROCS)")
	tvlaTraces := flag.Int("tvla-traces", 0, "TVLA traces per group (0 = default 64)")
	cpaTraces := flag.Int("cpa-traces", 0, "CPA trace budget (0 = default 512)")
	cpaStep := flag.Int("cpa-step", 0, "CPA key-rank grid step (0 = default 64)")
	cpaPoints := flag.Int("cpa-points", 0, "CPA points-of-interest columns (0 = attack every column)")
	noise := flag.Float64("noise", 0, "additive measurement-noise sigma (0 = default 0.02)")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of the summary table")
	progress := flag.Bool("progress", false, "report per-arm campaign progress on stderr")
	trainWorkers := flag.Int("train-workers", 0, "training measurement workers (0 = GOMAXPROCS)")
	quick := flag.Bool("quick", false, "smaller training campaign (faster, slightly less accurate)")
	flag.Parse()

	spec, err := defend.ParseSpec(*defense)
	if err != nil {
		fatal(err)
	}

	dev, err := device.New(device.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	model := trainOrLoad(dev, *modelPath, *seed, *trainWorkers, *quick)

	opts := defend.Options{
		Model:      model,
		CPU:        dev.Options().CPU,
		Defense:    spec,
		Seed:       *seed,
		Workers:    *workers,
		TVLATraces: *tvlaTraces,
		CPATraces:  *cpaTraces,
		CPAStep:    *cpaStep,
		CPAPoints:  *cpaPoints,
		NoiseStd:   *noise,
	}
	if *progress {
		// Simulation workers invoke the callback concurrently, so the
		// printer state needs its own lock.
		var progMu sync.Mutex
		lastArm := ""
		opts.Progress = func(arm string, done, total int) {
			progMu.Lock()
			defer progMu.Unlock()
			if arm != lastArm {
				if lastArm != "" {
					fmt.Fprintln(os.Stderr)
				}
				lastArm = arm
				fmt.Fprintf(os.Stderr, "  arm %-20s", arm)
			}
			if done == total {
				fmt.Fprintf(os.Stderr, " %d traces done", total)
			}
		}
	}

	start := time.Now()
	report, err := defend.Evaluate(context.Background(), opts)
	if err != nil {
		fatal(err)
	}
	if *progress {
		fmt.Fprintf(os.Stderr, "\nevaluated in %s\n", time.Since(start).Round(time.Millisecond))
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(report)
}

// trainOrLoad returns a trained model, reusing the cache file when one
// is given.
func trainOrLoad(dev *device.Device, path string, seed int64, workers int, quick bool) *core.Model {
	if path != "" {
		if m, err := core.LoadModelFile(path); err == nil {
			fmt.Fprintf(os.Stderr, "loaded trained model from %s\n", path)
			return m
		}
	}
	fmt.Fprintln(os.Stderr, "training EMSim against the reference device...")
	topts := core.TrainOptions{Seed: seed, Workers: workers}
	if quick {
		topts.Runs = 3
		topts.InstancesPerCluster = 10
		topts.MixedPrograms = 2
		topts.MixedLength = 200
	}
	m, err := core.Train(dev, topts)
	if err != nil {
		fatal(err)
	}
	if path != "" {
		if err := m.SaveFile(path); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "saved trained model to %s\n", path)
	}
	return m
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emsim-defend:", err)
	os.Exit(1)
}
