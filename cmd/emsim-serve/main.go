// emsim-serve is the long-lived EMSim simulation service: it loads (or
// trains) one model at startup and serves simulation and leakage
// assessment over HTTP JSON, with a bounded queue, a fixed worker pool
// of pooled sessions, per-request deadlines, load shedding (429 +
// Retry-After) and graceful drain on SIGTERM.
//
// Endpoints:
//
//	POST   /v1/simulate    {"asm": "...", ...} or {"words": [...]}
//	POST   /v1/tvla        {"key_hex": "...", "fixed_hex": "...", "traces_per_group": N}
//	POST   /v1/train       {"seed": N, "runs": N, ...} -> async job, 202 + job_id
//	GET    /v1/train/{id}  phase-level progress; the model once done
//	DELETE /v1/train/{id}  cancel a running campaign
//	POST   /v1/defend      {"defense": "shuffle", ...} -> async job, 202 + job_id
//	GET    /v1/defend/{id} per-arm trace progress; the security report once done
//	DELETE /v1/defend/{id} cancel a running evaluation
//	GET    /healthz        liveness (503 while draining)
//	GET    /varz           queue depth, in-flight, cycles, latency percentiles,
//	                       training job counters and measurement-cache stats
//	GET    /metrics        the same state as Prometheus text format, plus
//	                       per-endpoint and per-training-phase histograms
//	GET    /v1/trace       Chrome-trace JSON snapshot of the span ring
//
// With -debug-addr a second loopback-intended listener additionally
// serves net/http/pprof under /debug/pprof/ (plus /metrics and
// /v1/trace, so profiles and scrapes share a port).
//
// Start it with a trained model (emsim-leakage or Model.SaveFile output):
//
//	emsim-serve -model board1.emsim -addr :8080
//
// or let it train a small synthetic-bench model at boot (a few seconds,
// fine for development):
//
//	emsim-serve -addr :8080
package main

import (
	"context"
	"expvar"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"emsim"
	"emsim/internal/core"
	"emsim/internal/device"
	"emsim/internal/obs"
	"emsim/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelPath = flag.String("model", "", "trained model file (empty: train a quick synthetic model at boot)")
		workers   = flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "accept queue depth (full queue sheds with 429)")
		maxWords  = flag.Int("max-words", 65536, "largest accepted program, in words")
		maxCycles = flag.Int("max-cycles", 0, "per-run cycle bound (0 = core default)")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-request simulation deadline")
		maxTO     = flag.Duration("max-timeout", 2*time.Minute, "upper clamp for client-supplied timeouts")
		drainTO   = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight requests")
		trainJobs = flag.Int("train-jobs", 1, "concurrent /v1/train campaigns (excess jobs queue)")
		trainWkrs = flag.Int("train-workers", 0, "measurement fan-out per training campaign (0 = GOMAXPROCS)")
		trainRuns = flag.Int("train-runs", 200, "largest accepted runs field of a /v1/train request")
		defJobs   = flag.Int("defend-jobs", 1, "concurrent /v1/defend campaigns (excess jobs queue)")
		defWkrs   = flag.Int("defend-workers", 0, "simulation fan-out per defense evaluation (0 = GOMAXPROCS)")
		defTraces = flag.Int("defend-traces", 4096, "largest accepted trace budget of a /v1/defend request")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof (and /metrics, /v1/trace) on this extra address; keep it loopback")
		traceEvts = flag.Int("trace-events", 65536, "span trace ring capacity in events (0 disables recording)")
	)
	flag.Parse()

	if *traceEvts > 0 {
		obs.Enable(*traceEvts)
	}

	model, err := loadOrTrain(*modelPath)
	if err != nil {
		log.Fatalf("emsim-serve: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := serve.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxProgramWords: *maxWords,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTO,
		MaxTrainJobs:    *trainJobs,
		TrainWorkers:    *trainWkrs,
		MaxTrainRuns:    *trainRuns,
		MaxDefendJobs:   *defJobs,
		DefendWorkers:   *defWkrs,
		MaxDefendTraces: *defTraces,
		// The shutdown signal parents every background campaign, so
		// hours-long training jobs start unwinding at SIGTERM rather
		// than at the end of the HTTP drain window.
		BaseContext: ctx,
	}
	cfg.CPU = emsim.DefaultCPUConfig()
	if *maxCycles > 0 {
		cfg.CPU.MaxCycles = *maxCycles
	}
	srv, err := serve.New(model, cfg)
	if err != nil {
		log.Fatalf("emsim-serve: %v", err)
	}
	expvar.Publish("emsim", srv.Vars())

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("emsim-serve: listening on %s", *addr)

	var dbgSrv *http.Server
	if *debugAddr != "" {
		dbgSrv = &http.Server{Addr: *debugAddr, Handler: srv.DebugHandler()}
		go func() {
			if err := dbgSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("emsim-serve: debug listener: %v", err)
			}
		}()
		log.Printf("emsim-serve: debug (pprof) listening on %s", *debugAddr)
	}

	select {
	case err := <-errc:
		log.Fatalf("emsim-serve: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting, let in-flight handlers (and so
	// their queued/running simulations) finish, then retire the pool.
	log.Printf("emsim-serve: draining (up to %s)", *drainTO)
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil {
		log.Printf("emsim-serve: shutdown: %v", err)
	}
	if dbgSrv != nil {
		if err := dbgSrv.Shutdown(shCtx); err != nil {
			log.Printf("emsim-serve: debug shutdown: %v", err)
		}
	}
	srv.Close()
	log.Printf("emsim-serve: drained")
}

// loadOrTrain reads a saved model, or trains a small deterministic one
// against the synthetic bench when no path is given.
func loadOrTrain(path string) (*core.Model, error) {
	if path != "" {
		log.Printf("emsim-serve: loading model %s", path)
		return emsim.LoadModelFile(path)
	}
	log.Printf("emsim-serve: no -model given; training a quick synthetic model")
	start := time.Now()
	dev := device.MustNew(device.DefaultOptions())
	m, err := emsim.Train(dev, emsim.TrainOptions{
		Runs:                3,
		InstancesPerCluster: 10,
		MixedPrograms:       2,
		MixedLength:         200,
		Seed:                7,
	})
	if err != nil {
		return nil, err
	}
	log.Printf("emsim-serve: trained in %s", time.Since(start).Round(time.Millisecond))
	return m, nil
}
