// Command emsim assembles a program, trains an EMSim model against the
// synthetic reference device, simulates the program's EM side-channel
// signal cycle by cycle, and reports how well the simulation matches a
// measurement — the end-to-end flow of the paper.
//
// Usage:
//
//	emsim [-csv signal.csv] [-pipeline] [-trace out.json] [-runs N] [-defense spec] [prog.s]
//
// Without an argument a built-in demo program runs. The CSV (one line per
// sample: time-in-cycles, measured, simulated) can be plotted with any
// tool to reproduce the paper's waveform figures. -trace records the
// run's internal span timeline (training phases, simulate calls) as
// Chrome trace JSON, loadable in chrome://tracing or Perfetto.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"emsim/internal/asm"
	"emsim/internal/core"
	"emsim/internal/cpu"
	"emsim/internal/defend"
	"emsim/internal/device"
	"emsim/internal/obs"
)

const demoProgram = `
	# Demo: a loop with loads, stores, a multiply and a branch — every
	# microarchitectural event the paper models shows up in its signal.
	li   s0, 0x2000        # data pointer
	li   t0, 8             # iterations
	li   t1, 0x1234
loop:
	mul  t2, t1, t0        # multi-cycle EX occupancy
	sw   t2, 0(s0)         # store
	lw   t3, 0(s0)         # cache hit
	lw   t4, 0x400(s0)     # fresh line: miss on first touch
	addi s0, s0, 4
	addi t0, t0, -1
	bnez t0, loop          # mispredicted until the predictor warms
	ebreak
`

func main() {
	csvPath := flag.String("csv", "", "write time,measured,simulated samples to this file")
	showPipeline := flag.Bool("pipeline", false, "print the per-cycle pipeline occupancy")
	tracePath := flag.String("trace", "", "record the run's span timeline as Chrome trace JSON into this file")
	attribute := flag.Bool("attribute", false, "print the signal attribution by stage and instruction")
	repeat := flag.Int("repeat", 0, "re-simulate the program N times through one Session and report throughput")
	runs := flag.Int("runs", 20, "measurement averaging runs")
	seed := flag.Int64("seed", 1, "training seed")
	modelPath := flag.String("model", "", "cache the trained model in this file (loaded if it exists)")
	progress := flag.Bool("progress", false, "report per-phase training progress on stderr")
	trainWorkers := flag.Int("train-workers", 0, "training measurement workers (0 = GOMAXPROCS)")
	defense := flag.String("defense", "", "run the program under a countermeasure, name[:param=val,...] (shuffle, dummy, jitter)")
	flag.Parse()

	if *tracePath != "" {
		obs.Enable(0)
		defer writeTrace(*tracePath)
	}

	src := demoProgram
	if flag.NArg() == 1 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: emsim [-csv out.csv] [-pipeline] [-trace out.json] [prog.s]")
		os.Exit(2)
	}

	prog, err := asm.Assemble(src)
	if err != nil {
		fatal(err)
	}

	dev, err := device.New(device.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	var model *core.Model
	if *modelPath != "" {
		if m, err := core.LoadModelFile(*modelPath); err == nil {
			fmt.Fprintf(os.Stderr, "loaded trained model from %s\n", *modelPath)
			model = m
		}
	}
	if model == nil {
		fmt.Fprintln(os.Stderr, "training EMSim against the reference device...")
		topts := core.TrainOptions{Seed: *seed, Workers: *trainWorkers}
		if *progress {
			topts.Progress = printProgress
		}
		model, err = core.Train(dev, topts)
		if err != nil {
			fatal(err)
		}
		if *modelPath != "" {
			if err := model.SaveFile(*modelPath); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "saved trained model to %s\n", *modelPath)
		}
	}
	fmt.Fprintf(os.Stderr, "kernel: %s theta=%.2f T0=%.3f\n",
		model.Kernel.Kind, model.Kernel.Theta, model.Kernel.Period)

	cmp, err := model.CompareOnDevice(dev, prog.Words, *runs)
	if err != nil {
		fatal(err)
	}

	// Run once more locally for the stats and optional trace.
	c, err := cpu.New(dev.Options().CPU)
	if err != nil {
		fatal(err)
	}
	tr, err := c.RunProgram(prog.Words)
	if err != nil {
		fatal(err)
	}
	st := c.Stats()
	fmt.Printf("program: %d instructions, %d cycles, IPC %.2f\n", st.Retired, st.Cycles, st.IPC())
	fmt.Printf("events: %d stall cycles, %d cache hits, %d misses, %d mispredictions\n",
		st.StallCycles, st.CacheHits, st.CacheMisses, st.Mispredicts)
	fmt.Printf("simulated-vs-measured accuracy: %.1f%% (paper reports 94.1%% on its benchmark)\n",
		100*cmp.Accuracy)

	if *defense != "" {
		if err := reportDefended(dev.Options().CPU, prog.Words, *defense, uint64(*seed), st); err != nil {
			fatal(err)
		}
	}

	if *repeat > 0 {
		if err := reportThroughput(model, dev.Options().CPU, prog.Words, *repeat); err != nil {
			fatal(err)
		}
	}
	if *showPipeline {
		printTrace(tr)
	}
	if *attribute {
		fmt.Print(model.Attribute(tr).Report(10))
	}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, cmp, model.SamplesPerCycle); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d samples to %s\n", len(cmp.Measured), *csvPath)
	}
}

// reportDefended re-runs the program under a countermeasure (armed with
// the campaign seed) and prints the defended execution profile next to
// the baseline.
func reportDefended(cfg cpu.Config, words []uint32, spec string, seed uint64, base cpu.Stats) error {
	sp, err := defend.ParseSpec(spec)
	if err != nil {
		return err
	}
	cm, err := sp.New()
	if err != nil {
		return err
	}
	armed, err := cm.Arm(words, seed)
	if err != nil {
		return err
	}
	c, err := cpu.New(cfg)
	if err != nil {
		return err
	}
	c.SetFetchInjector(armed.Injector)
	if _, err := c.RunProgram(armed.Words); err != nil {
		return err
	}
	st := c.Stats()
	fmt.Printf("defense %s: %d cycles (overhead %+.1f%%), IPC %.2f, %d injected fetch slots\n",
		sp, st.Cycles, 100*(float64(st.Cycles)/float64(base.Cycles)-1), st.IPC(), st.Injected)
	return nil
}

// printProgress streams training-phase progress to stderr: one line when
// a phase announces itself, one when its last measurement lands.
func printProgress(p core.Progress) {
	switch {
	case p.Done == 0:
		fmt.Fprintf(os.Stderr, "  phase %d/%d %-10s %d measurements...\n",
			int(p.Phase)+1, core.NumPhases, p.Phase, p.Total)
	case p.Done == p.Total:
		fmt.Fprintf(os.Stderr, "  phase %d/%d %-10s done in %s\n",
			int(p.Phase)+1, core.NumPhases, p.Phase, p.Elapsed.Round(time.Millisecond))
	}
}

// reportThroughput re-simulates the program through one streaming Session
// (the campaign hot path: resettable core, reused buffers, ~0 allocations
// per trace) and prints the sustained simulation rate.
func reportThroughput(model *core.Model, cfg cpu.Config, words []uint32, n int) error {
	sess, err := core.NewSession(model, cfg)
	if err != nil {
		return err
	}
	var sig []float64
	cycles := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		if sig, err = sess.SimulateProgramInto(sig, words); err != nil {
			return err
		}
		cycles += sess.Cycles()
	}
	elapsed := time.Since(start)
	fmt.Printf("session throughput: %d traces (%d cycles) in %v — %.0f cycles/s\n",
		n, cycles, elapsed.Round(time.Millisecond), float64(cycles)/elapsed.Seconds())
	return nil
}

func printTrace(tr cpu.Trace) {
	fmt.Println("cycle  IF       ID       EX       MEM      WB")
	for i := range tr {
		var cells [cpu.NumStages]string
		for s := cpu.Stage(0); s < cpu.NumStages; s++ {
			st := tr[i].Stages[s]
			switch {
			case st.Bubble:
				cells[s] = "--"
			case st.Stalled:
				cells[s] = "*" + st.Op.String()
			default:
				cells[s] = st.Op.String()
			}
		}
		fmt.Printf("%5d  %-8s %-8s %-8s %-8s %-8s\n",
			i, cells[0], cells[1], cells[2], cells[3], cells[4])
	}
}

func writeCSV(path string, cmp *core.Comparison, spc int) error {
	var b strings.Builder
	b.WriteString("t_cycles,measured,simulated\n")
	for i := range cmp.Measured {
		fmt.Fprintf(&b, "%.4f,%.6f,%.6f\n", float64(i)/float64(spc), cmp.Measured[i], cmp.Simulated[i])
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// writeTrace flushes the recorded span ring as Chrome trace JSON.
func writeTrace(path string) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := obs.WriteChromeTrace(f, obs.Snapshot()); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote span trace to %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emsim:", err)
	os.Exit(1)
}
