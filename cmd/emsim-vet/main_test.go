package main

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"testing"

	"emsim/internal/analysis"
	"emsim/internal/analysis/analysistest"
)

// TestStaleSuppressionDriver runs the full driver suite over a fixture
// package carrying one honored and one stale //emsim:ignore directive:
// the honored one silences its finding without surfacing, the stale one
// is reported.
func TestStaleSuppressionDriver(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "stale"), analyzers...)
}

// TestBuildReport pins the -json output shape CI consumes.
func TestBuildReport(t *testing.T) {
	res := &analysis.Result{
		Findings: []analysis.Finding{{
			Analyzer: "lockscope",
			Position: token.Position{Filename: "x.go", Line: 12, Column: 3},
			Message:  "channel send on ch while mu is held",
		}},
		Packages:   4,
		Suppressed: 2,
		Stats: map[string]analysis.AnalyzerStat{
			"lockscope": {Findings: 1},
			"noalloc":   {Suppressed: 2},
		},
	}
	mod := analysis.NewModuleInfo()
	mod.AddNoalloc("p.f")
	mod.AddCT("p.g")
	mod.AddSecretField("p.T.Key")

	rep := buildReport(res, mod)
	if rep.OK {
		t.Error("report with findings must not be ok")
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		OK         bool `json:"ok"`
		Packages   int  `json:"packages"`
		Suppressed int  `json:"suppressed"`
		Findings   []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
		} `json:"findings"`
		Analyzers map[string]struct {
			Findings   int `json:"findings"`
			Suppressed int `json:"suppressed"`
		} `json:"analyzers"`
		Annotations map[string]int `json:"annotations"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.OK || decoded.Packages != 4 || decoded.Suppressed != 2 {
		t.Errorf("header = ok=%v packages=%d suppressed=%d, want false/4/2",
			decoded.OK, decoded.Packages, decoded.Suppressed)
	}
	if len(decoded.Findings) != 1 {
		t.Fatalf("findings = %v, want one", decoded.Findings)
	}
	f := decoded.Findings[0]
	if f.Analyzer != "lockscope" || f.File != "x.go" || f.Line != 12 || f.Column != 3 ||
		f.Message != "channel send on ch while mu is held" {
		t.Errorf("finding = %+v", f)
	}
	if decoded.Analyzers["noalloc"].Suppressed != 2 || decoded.Analyzers["lockscope"].Findings != 1 {
		t.Errorf("analyzers = %v", decoded.Analyzers)
	}
	want := map[string]int{"noalloc": 1, "ct": 1, "secret_field": 1}
	for k, n := range want {
		if decoded.Annotations[k] != n {
			t.Errorf("annotations[%s] = %d, want %d", k, decoded.Annotations[k], n)
		}
	}

	// An empty result is ok and serializes findings as [], not null.
	empty := buildReport(&analysis.Result{Stats: map[string]analysis.AnalyzerStat{}}, analysis.NewModuleInfo())
	if !empty.OK {
		t.Error("empty report must be ok")
	}
	data, err = json.Marshal(empty)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["findings"]) != "[]" {
		t.Errorf(`empty findings serialize as %s, want []`, raw["findings"])
	}
}
