// Package stale exercises suppression hygiene end to end through the
// full driver suite: an honored suppression stays silent, while one that
// no longer matches any finding is itself reported.
package stale

// hot carries an acknowledged allocation: the directive filters a real
// noalloc diagnostic, so it is used and must not be reported stale.
//
//emsim:noalloc
func hot(n int) int {
	//emsim:ignore noalloc deliberate allocation kept for the fixture
	xs := make([]int, n)
	return len(xs)
}

// cold allocates nothing, so the directive below silences nothing.
func cold(n int) int {
	//emsim:ignore noalloc obsolete exemption left behind // want `emsim:ignore noalloc matched no finding; remove the stale suppression`
	return n + 1
}
