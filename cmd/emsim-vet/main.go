// Command emsim-vet runs the project's static-analysis suite over the
// module. It is the mechanical half of the hot-path contract: the
// AllocsPerRun tests pin a handful of call sites at runtime, emsim-vet
// checks every call site at analysis time. Alongside the allocation
// rules it enforces the //emsim:ct constant-time contract (secretflow),
// mutex critical-section hygiene (lockscope) and cancellation plumbing
// (ctxflow).
//
// Usage:
//
//	go run ./cmd/emsim-vet [-json] ./...
//
// Findings print one per line as file:line:col: message [analyzer] and
// any finding makes the exit status 1, so the command slots directly
// into CI; -json instead emits the full machine-readable report
// (findings, per-analyzer counts, suppression and annotation totals) on
// stdout. A per-analyzer summary always prints on stderr, pass or fail.
// Suppress an individual finding with //emsim:ignore <analyzer>
// <reason> on the flagged line or the line above it; the reason is
// mandatory, and a suppression that matches no finding is itself
// reported as stale.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"emsim/internal/analysis"
	"emsim/internal/analysis/ctxflow"
	"emsim/internal/analysis/determinism"
	"emsim/internal/analysis/floatcmp"
	"emsim/internal/analysis/lockscope"
	"emsim/internal/analysis/noalloc"
	"emsim/internal/analysis/secretflow"
	"emsim/internal/analysis/stageexhaustive"
)

// analyzers is the suite, in reporting order.
var analyzers = []*analysis.Analyzer{
	noalloc.Analyzer,
	stageexhaustive.Analyzer,
	floatcmp.Analyzer,
	determinism.Analyzer,
	secretflow.Analyzer,
	lockscope.Analyzer,
	ctxflow.Analyzer,
}

// jsonFinding is one diagnostic in the -json report.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// report is the -json output shape.
type report struct {
	OK          bool                             `json:"ok"`
	Packages    int                              `json:"packages"`
	Suppressed  int                              `json:"suppressed"`
	Findings    []jsonFinding                    `json:"findings"`
	Analyzers   map[string]analysis.AnalyzerStat `json:"analyzers"`
	Annotations map[string]int                   `json:"annotations"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the machine-readable report on stdout")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loaded, err := analysis.Load(dir, patterns...)
	if err != nil {
		fatal(err)
	}
	res, err := analysis.RunAll(loaded.Packages, loaded.Module, analyzers)
	if err != nil {
		fatal(err)
	}

	rep := buildReport(res, loaded.Module)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f)
		}
	}

	for _, name := range statOrder() {
		stat := res.Stats[name]
		if stat.Findings == 0 && stat.Suppressed == 0 {
			continue
		}
		fmt.Fprintf(os.Stderr, "emsim-vet: %s: %d finding(s), %d suppressed\n", name, stat.Findings, stat.Suppressed)
	}
	status := "ok"
	if !rep.OK {
		status = "FAIL"
	}
	fmt.Fprintf(os.Stderr, "emsim-vet: %s: %d finding(s) in %d package(s), %d suppression(s) honored (%d noalloc, %d ct, %d secret-field annotations)\n",
		status, len(res.Findings), res.Packages, res.Suppressed,
		loaded.Module.NoallocCount(), loaded.Module.CTCount(), loaded.Module.SecretFieldCount())
	if !rep.OK {
		os.Exit(1)
	}
}

// buildReport flattens an analysis result into the -json shape.
func buildReport(res *analysis.Result, mod *analysis.ModuleInfo) report {
	rep := report{
		OK:         len(res.Findings) == 0,
		Packages:   res.Packages,
		Suppressed: res.Suppressed,
		Findings:   []jsonFinding{},
		Analyzers:  map[string]analysis.AnalyzerStat{},
		Annotations: map[string]int{
			"noalloc":      mod.NoallocCount(),
			"ct":           mod.CTCount(),
			"secret_field": mod.SecretFieldCount(),
		},
	}
	for _, f := range res.Findings {
		rep.Findings = append(rep.Findings, jsonFinding{
			Analyzer: f.Analyzer,
			File:     f.Position.Filename,
			Line:     f.Position.Line,
			Column:   f.Position.Column,
			Message:  f.Message,
		})
	}
	for name, stat := range res.Stats {
		rep.Analyzers[name] = stat
	}
	return rep
}

// statOrder returns the analyzer names in suite order with the
// suppression pseudo-analyzer last.
func statOrder() []string {
	names := make([]string, 0, len(analyzers)+1)
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	return append(names, analysis.SuppressionAnalyzer)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emsim-vet:", err)
	os.Exit(1)
}
