// Command emsim-vet runs the project's static-analysis suite over the
// module. It is the mechanical half of the hot-path contract: the
// AllocsPerRun tests pin a handful of call sites at runtime, emsim-vet
// checks every call site at analysis time.
//
// Usage:
//
//	go run ./cmd/emsim-vet ./...
//
// Findings print one per line as file:line:col: message [analyzer] and
// any finding makes the exit status 1, so the command slots directly
// into CI. Suppress an individual finding with
// //emsim:ignore <analyzer> <reason> on the flagged line or the line
// above it; the reason is mandatory.
package main

import (
	"fmt"
	"os"

	"emsim/internal/analysis"
	"emsim/internal/analysis/determinism"
	"emsim/internal/analysis/floatcmp"
	"emsim/internal/analysis/noalloc"
	"emsim/internal/analysis/stageexhaustive"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	res, err := analysis.Load(dir, patterns...)
	if err != nil {
		fatal(err)
	}
	findings, err := analysis.Run(res.Packages, res.Module, []*analysis.Analyzer{
		noalloc.Analyzer,
		stageexhaustive.Analyzer,
		floatcmp.Analyzer,
		determinism.Analyzer,
	})
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "emsim-vet: %d finding(s) in %d package(s) (%d noalloc annotations checked)\n",
			len(findings), len(res.Packages), res.Module.NoallocCount())
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emsim-vet:", err)
	os.Exit(1)
}
