// Command emsim-asm assembles RV32IM source into a flat binary image.
//
// Usage:
//
//	emsim-asm [-hex] [-o out.bin] prog.s
//
// With -hex the image is printed as one 32-bit word per line; otherwise a
// little-endian flat binary is written to -o (default: stdout as hex).
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"sort"

	"emsim/internal/asm"
)

func main() {
	hex := flag.Bool("hex", false, "print one hex word per line instead of writing a binary")
	dis := flag.Bool("d", false, "print a disassembly listing instead of writing a binary")
	out := flag.String("o", "", "output file for the flat binary image")
	syms := flag.Bool("symbols", false, "also print the symbol table to stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: emsim-asm [-hex] [-d] [-symbols] [-o out.bin] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	if *syms {
		names := make([]string, 0, len(prog.Symbols))
		for n := range prog.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return prog.Symbols[names[i]] < prog.Symbols[names[j]] })
		for _, n := range names {
			fmt.Fprintf(os.Stderr, "%08x %s\n", prog.Symbols[n], n)
		}
	}
	switch {
	case *dis:
		fmt.Print(asm.Disassemble(prog.Origin, prog.Words))
	case *hex || *out == "":
		for i, w := range prog.Words {
			fmt.Printf("%08x: %08x\n", prog.Origin+uint32(4*i), w)
		}
	default:
		buf := make([]byte, 4*len(prog.Words))
		for i, w := range prog.Words {
			binary.LittleEndian.PutUint32(buf[4*i:], w)
		}
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d bytes (origin %#x) to %s\n", len(buf), prog.Origin, *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emsim-asm:", err)
	os.Exit(1)
}
