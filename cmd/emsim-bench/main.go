// Command emsim-bench reproduces the paper's evaluation: it trains a
// model against the synthetic reference device and runs every table and
// figure of §V and §VI, printing paper-style rows. EXPERIMENTS.md records
// a full run.
//
// Usage:
//
//	emsim-bench [-experiment name] [-groups N] [-quick]
//
// -experiment selects one of: fig1 fig2 fig3 fig4 fig5 fig6 fig7 table1
// fig8 ablations manufacturing board fig9 fig10 table2 fig11 predictors
// forwarding sampling budget trainperf defense attacksweep
// (default: all). -groups bounds the Figure 8 benchmark size (0 = all 17
// groups, the recorded configuration). -quick shrinks the training
// campaign for a fast smoke run. -train-workers sets the measurement
// fan-out width of every training campaign (0 = GOMAXPROCS).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"emsim/internal/core"
	"emsim/internal/experiments"
)

func main() {
	which := flag.String("experiment", "all", "experiment to run (fig1..fig11, table1, table2, ablations, manufacturing, board, predictors, forwarding, sampling, budget, trainperf, defense, attacksweep, all)")
	groups := flag.Int("groups", 0, "Figure 8 benchmark groups per variant (0 = all 17)")
	quick := flag.Bool("quick", false, "smaller training campaign (faster, slightly less accurate)")
	tvlaTraces := flag.Int("tvla-traces", 40, "TVLA traces per group")
	trainWorkers := flag.Int("train-workers", 0, "training measurement workers (0 = GOMAXPROCS)")
	flag.Parse()

	opts := experiments.DefaultEnvOptions()
	if *quick {
		opts.Train = core.TrainOptions{Runs: 8, InstancesPerCluster: 20, MixedLength: 300}
		opts.Runs = 6
	}
	opts.Train.Workers = *trainWorkers
	start := time.Now()
	fmt.Fprintln(os.Stderr, "building device and training the model...")
	env, err := experiments.NewEnv(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "trained in %.1fs (kernel %s theta=%.2f T0=%.3f)\n\n",
		time.Since(start).Seconds(), env.Model.Kernel.Kind, env.Model.Kernel.Theta, env.Model.Kernel.Period)

	type experiment struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	all := []experiment{
		{"fig1", func() (fmt.Stringer, error) { return env.Figure1() }},
		{"fig2", func() (fmt.Stringer, error) { return env.Figure2() }},
		{"fig3", func() (fmt.Stringer, error) { return env.Figure3() }},
		{"fig4", func() (fmt.Stringer, error) { return env.Figure4() }},
		{"fig5", func() (fmt.Stringer, error) { return env.Figure5() }},
		{"fig6", func() (fmt.Stringer, error) { return env.Figure6() }},
		{"fig7", func() (fmt.Stringer, error) { return env.Figure7() }},
		{"table1", func() (fmt.Stringer, error) { return env.TableI() }},
		{"fig8", func() (fmt.Stringer, error) { return env.Figure8(*groups) }},
		{"ablations", func() (fmt.Stringer, error) { return env.Ablations(4) }},
		{"manufacturing", func() (fmt.Stringer, error) { return env.Manufacturing() }},
		{"board", func() (fmt.Stringer, error) { return env.BoardVariability() }},
		{"fig9", func() (fmt.Stringer, error) { return env.Figure9() }},
		{"fig10", func() (fmt.Stringer, error) { return env.Figure10(*tvlaTraces) }},
		{"table2", func() (fmt.Stringer, error) { return env.TableII() }},
		{"fig11", func() (fmt.Stringer, error) { return env.Figure11() }},
		{"predictors", func() (fmt.Stringer, error) { return env.PredictorStudy() }},
		{"forwarding", func() (fmt.Stringer, error) { return env.ForwardingStudy() }},
		{"sampling", func() (fmt.Stringer, error) { return env.SamplingRateStudy() }},
		{"budget", func() (fmt.Stringer, error) { return env.TrainingBudgetStudy() }},
		{"trainperf", func() (fmt.Stringer, error) { return experiments.TrainingPipelineStudy(opts.Train) }},
		{"defense", func() (fmt.Stringer, error) { return env.DefenseStudy(*tvlaTraces, 0) }},
		{"attacksweep", func() (fmt.Stringer, error) { return experiments.AttackSweepStudy() }},
	}

	ran := 0
	for _, e := range all {
		if *which != "all" && *which != e.name {
			continue
		}
		ran++
		t0 := time.Now()
		r, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.name, err)
			continue
		}
		fmt.Println(r)
		fmt.Fprintf(os.Stderr, "[%s took %.1fs]\n\n", e.name, time.Since(t0).Seconds())
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "total %.1fs\n", time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "emsim-bench:", err)
	os.Exit(1)
}
