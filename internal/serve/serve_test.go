package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"emsim/internal/core"
	"emsim/internal/cpu"
	"emsim/internal/device"
)

var (
	modelOnce sync.Once
	model     *core.Model
	modelErr  error
)

// serveTestModel trains one small deterministic model for every test in
// the package.
func serveTestModel(t *testing.T) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		dev := device.MustNew(device.DefaultOptions())
		model, modelErr = core.Train(dev, core.TrainOptions{
			Runs:                3,
			InstancesPerCluster: 10,
			MixedPrograms:       2,
			MixedLength:         200,
			Seed:                7,
		})
	})
	if modelErr != nil {
		t.Fatalf("training failed: %v", modelErr)
	}
	return model
}

// newTestServer boots a Server on an httptest listener and registers
// cleanup that drains it.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(serveTestModel(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

const loopAsm = `
    li   t0, 10
loop:
    addi t0, t0, -1
    bnez t0, loop
    ebreak
`

// spinWords is a program that never halts — it runs until MaxCycles,
// the request deadline, or a cancellation stops it.
var spinWords = []uint32{0x0000006F} // jal x0, 0

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestSimulateHappyPathAsm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Asm: loopAsm, IncludeStages: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out simulateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cycles <= 0 || len(out.Signal) == 0 {
		t.Fatalf("empty simulation result: %+v", out)
	}
	if want := out.Cycles*out.SamplesPerCycle + 1; len(out.Signal) < want-out.SamplesPerCycle {
		t.Errorf("signal has %d samples for %d cycles at %d samples/cycle",
			len(out.Signal), out.Cycles, out.SamplesPerCycle)
	}
	if out.Stats.Retired == 0 {
		t.Error("stats.retired is zero")
	}
	if len(out.Stages) != int(cpu.NumStages) {
		t.Fatalf("got %d stage entries, want %d", len(out.Stages), cpu.NumStages)
	}
	shareSum := 0.0
	for _, st := range out.Stages {
		shareSum += st.Share
	}
	if shareSum < 0.99 || shareSum > 1.01 {
		t.Errorf("stage shares sum to %v, want ~1", shareSum)
	}
}

func TestSimulateHappyPathWords(t *testing.T) {
	m := serveTestModel(t)
	_, ts := newTestServer(t, Config{})

	// The served result must match a direct library simulation.
	sess, err := core.NewSession(m, cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	words := []uint32{0x00100093, 0x00100073} // addi ra, zero, 1; ebreak
	want, err := sess.SimulateProgram(words)
	if err != nil {
		t.Fatal(err)
	}

	resp, data := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Words: words})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out simulateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Signal) != len(want) {
		t.Fatalf("served signal has %d samples, library %d", len(out.Signal), len(want))
	}
	for i := range want {
		if diff := out.Signal[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("sample %d: served %v, library %v", i, out.Signal[i], want[i])
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxProgramWords: 16})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed JSON", `{"asm": "nop"`, http.StatusBadRequest},
		{"trailing garbage", `{"asm": "ebreak"} {"x":1}`, http.StatusBadRequest},
		{"unknown field", `{"asmx": "nop"}`, http.StatusBadRequest},
		{"no program", `{}`, http.StatusBadRequest},
		{"both programs", `{"asm": "ebreak", "words": [115]}`, http.StatusBadRequest},
		{"bad assembly", `{"asm": "frobnicate t0"}`, http.StatusBadRequest},
		{"oversized words", `{"words": [` + strings.Repeat("19,", 16) + `115]}`, http.StatusRequestEntityTooLarge},
		{"wrong method", ``, http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.name == "wrong method" {
				resp, err = http.Get(ts.URL + "/v1/simulate")
			} else {
				resp, err = http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
}

func TestSimulateOversizedBody413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRequestBytes: 1024})
	big := `{"asm": "` + strings.Repeat("nop\\n", 2048) + `"}`
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// waitVar polls one /varz integer until it reaches want or the deadline
// passes.
func waitVar(t *testing.T, s *Server, get func() int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if get() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s never reached %d (now %d)", what, want, get())
}

// TestQueueFull429 saturates a 1-worker, depth-1 server deterministically:
// one spinning request occupies the worker, one fills the queue, and the
// next must be shed with 429 + Retry-After.
func TestQueueFull429(t *testing.T) {
	cfg := Config{Workers: 1, QueueDepth: 1, MaxTimeout: time.Minute, DefaultTimeout: time.Minute}
	cfg.CPU = cpu.DefaultConfig()
	cfg.CPU.MaxCycles = 1 << 30
	s, ts := newTestServer(t, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	spin := func() {
		defer wg.Done()
		body, _ := json.Marshal(simulateRequest{Words: spinWords})
		req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/simulate", bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}
	// Occupy the worker, then fill the queue.
	wg.Add(1)
	go spin()
	waitVar(t, s, s.met.inFlight.Value, 1, "in_flight")
	wg.Add(1)
	go spin()
	waitVar(t, s, s.met.queueDepth.Value, 1, "queue_depth")

	resp, data := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Asm: loopAsm})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}

	// Cancelling the spinning clients must free the worker: a normal
	// request then succeeds.
	cancel()
	wg.Wait()
	waitVar(t, s, s.met.inFlight.Value, 0, "in_flight")
	waitVar(t, s, s.met.queueDepth.Value, 0, "queue_depth")
	resp2, data2 := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Asm: loopAsm})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel status %d (%s), want 200", resp2.StatusCode, data2)
	}
}

// TestCancellationFreesSession pins the core serving contract: a client
// disconnect mid-simulation hands the pooled session back within one
// context-check interval, not when the program would have halted.
func TestCancellationFreesSession(t *testing.T) {
	cfg := Config{Workers: 1, QueueDepth: 4, MaxTimeout: time.Minute, DefaultTimeout: time.Minute}
	cfg.CPU = cpu.DefaultConfig()
	cfg.CPU.MaxCycles = 1 << 30 // ~forever: only cancellation can stop it
	s, ts := newTestServer(t, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		body, _ := json.Marshal(simulateRequest{Words: spinWords})
		req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/simulate", bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	waitVar(t, s, s.met.inFlight.Value, 1, "in_flight")

	cancel() // client disconnects mid-simulation
	<-done

	// The session must come back quickly (one CtxCheckInterval of
	// simulated cycles, far under a second of wall clock).
	start := time.Now()
	waitVar(t, s, s.met.inFlight.Value, 0, "in_flight")
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("session took %s to return to the pool after cancellation", waited)
	}
	if got := s.met.cancelled.Value(); got == 0 {
		t.Error("cancelled counter did not move")
	}

	// And it must be reusable.
	resp, data := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Asm: loopAsm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel status %d (%s), want 200", resp.StatusCode, data)
	}
}

// TestRequestTimeout408 pins the deadline path: a program that cannot
// halt within its own timeout_ms comes back 408, not 500.
func TestRequestTimeout408(t *testing.T) {
	cfg := Config{Workers: 1, QueueDepth: 4}
	cfg.CPU = cpu.DefaultConfig()
	cfg.CPU.MaxCycles = 1 << 30
	_, ts := newTestServer(t, cfg)
	resp, data := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Words: spinWords, TimeoutMS: 50})
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("status %d (%s), want 408", resp.StatusCode, data)
	}
}

// TestRunawayProgram422 pins that a program exceeding MaxCycles is the
// request's fault (422), not a server error.
func TestRunawayProgram422(t *testing.T) {
	cfg := Config{Workers: 1, QueueDepth: 4}
	cfg.CPU = cpu.DefaultConfig()
	cfg.CPU.MaxCycles = 10_000
	_, ts := newTestServer(t, cfg)
	resp, data := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Words: spinWords})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (%s), want 422", resp.StatusCode, data)
	}
}

func TestHealthzAndVarz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	if r, d := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Asm: loopAsm}); r.StatusCode != 200 {
		t.Fatalf("simulate status %d: %s", r.StatusCode, d)
	}
	resp2, err := http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&vars); err != nil {
		t.Fatalf("varz is not JSON: %v", err)
	}
	resp2.Body.Close()
	for _, key := range []string{"queue_depth", "in_flight", "requests_accepted",
		"requests_rejected", "cycles_simulated", "latency"} {
		if _, ok := vars[key]; !ok {
			t.Errorf("varz missing %q", key)
		}
	}
	var cycles int64
	if err := json.Unmarshal(vars["cycles_simulated"], &cycles); err != nil || cycles <= 0 {
		t.Errorf("cycles_simulated = %s, want > 0", vars["cycles_simulated"])
	}

	// Drain flips healthz to 503.
	s.Close()
	resp3, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", resp3.StatusCode)
	}

	// And submissions are refused with 503, not a panic on a closed queue.
	resp4, _ := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Asm: loopAsm})
	if resp4.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining simulate status %d, want 503", resp4.StatusCode)
	}
}

func TestTVLAEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a small AES campaign")
	}
	_, ts := newTestServer(t, Config{})
	req := tvlaRequest{
		KeyHex:         "2b7e151628aed2a6abf7158809cf4f3c",
		FixedHex:       "74766c612d66697865642d696e707574",
		TracesPerGroup: 4,
		Seed:           3,
	}
	resp, data := postJSON(t, ts.URL+"/v1/tvla", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out tvlaResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Samples <= 0 || out.TracesPerGroup != 4 {
		t.Fatalf("bad TVLA response: %+v", out)
	}
	// Reproducibility: the same seed must yield the same statistic.
	resp2, data2 := postJSON(t, ts.URL+"/v1/tvla", req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d", resp2.StatusCode)
	}
	var out2 tvlaResponse
	if err := json.Unmarshal(data2, &out2); err != nil {
		t.Fatal(err)
	}
	if out.MaxAbsT != out2.MaxAbsT || out.LeakyCount != out2.LeakyCount {
		t.Errorf("same-seed TVLA differs: %+v vs %+v", out, out2)
	}

	badCases := []tvlaRequest{
		{KeyHex: "xx", FixedHex: req.FixedHex, TracesPerGroup: 4},
		{KeyHex: req.KeyHex, FixedHex: "00", TracesPerGroup: 4},
		{KeyHex: req.KeyHex, FixedHex: req.FixedHex, TracesPerGroup: 1},
		{KeyHex: req.KeyHex, FixedHex: req.FixedHex, TracesPerGroup: 100000},
	}
	for i, bad := range badCases {
		if r, _ := postJSON(t, ts.URL+"/v1/tvla", bad); r.StatusCode != http.StatusBadRequest {
			t.Errorf("bad case %d: status %d, want 400", i, r.StatusCode)
		}
	}
}

// TestDrainWaitsForInflight pins graceful shutdown: Close must block
// until queued work has finished, and the finished work must have
// produced a full response.
func TestDrainWaitsForInflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	const n = 6
	results := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Asm: loopAsm})
			results <- resp.StatusCode
		}()
	}
	// Let at least one request reach the pool, then drain.
	waitVarAtLeast(t, s, s.met.requests.Value, 1)
	s.Close()
	wg.Wait()
	close(results)
	for code := range results {
		if code != http.StatusOK && code != http.StatusServiceUnavailable {
			t.Errorf("drain race returned status %d, want 200 or 503", code)
		}
	}
}

func waitVarAtLeast(t *testing.T, s *Server, get func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if get() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("metric never reached %d (now %d)", want, get())
}
