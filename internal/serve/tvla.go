package serve

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"time"

	"emsim/internal/aes"
	"emsim/internal/core"
	"emsim/internal/leakage"
	"emsim/internal/obs"
)

// spanTVLAAnalysis covers the statistic-extraction (snapshot) phase of a
// /v1/tvla assessment, on a lane claimed per request.
var spanTVLAAnalysis = obs.RegisterSpan("serve.tvla-analysis")

// tvlaRequest is the /v1/tvla body: a fixed-vs-random leakage
// assessment of AES-128 under the loaded model.
type tvlaRequest struct {
	// KeyHex is the 16-byte AES key; FixedHex the fixed input block.
	// Both are hex-encoded (32 characters).
	KeyHex   string `json:"key_hex"`
	FixedHex string `json:"fixed_hex"`
	// TracesPerGroup is the campaign size per group (fixed and random).
	TracesPerGroup int `json:"traces_per_group"`
	// Seed drives the random group's inputs and the additive noise, so
	// an assessment is reproducible. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// NoiseStd adds Gaussian per-sample measurement noise to the
	// simulated traces so t statistics are comparable to measured ones.
	// Zero runs noiseless.
	NoiseStd  float64 `json:"noise_std,omitempty"`
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
}

type tvlaResponse struct {
	TracesPerGroup int  `json:"traces_per_group"`
	Samples        int  `json:"samples"`
	Leaks          bool `json:"leaks"`
	// MaxAbsT is the peak |t|; LeakyPoints the sample indices above the
	// 4.5 TVLA threshold (capped at 1024 entries; LeakyCount is exact).
	MaxAbsT     float64 `json:"max_abs_t"`
	LeakyCount  int     `json:"leaky_count"`
	LeakyPoints []int   `json:"leaky_points,omitempty"`
}

// maxLeakyPoints bounds the response size; AES traces have tens of
// thousands of samples and heavy leakage can flag most of them.
const maxLeakyPoints = 1024

func decodeBlock(name, s string) ([16]byte, error) {
	var b [16]byte
	raw, err := hex.DecodeString(s)
	if err != nil || len(raw) != 16 {
		return b, errors.New(name + " must be 32 hex characters (16 bytes)")
	}
	copy(b[:], raw)
	return b, nil
}

// finiteT makes a t statistic JSON-encodable. Noiseless simulated
// traces of the fixed group are bit-identical, so their variance is
// exactly zero and Welch's t degenerates: ±Inf (means differ — maximal
// evidence, clamped to MaxFloat64) or NaN (everything identical — no
// evidence, reported as 0). encoding/json rejects both spellings.
func finiteT(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 0):
		return math.MaxFloat64
	default:
		return v
	}
}

func (s *Server) handleTVLA(w http.ResponseWriter, r *http.Request) {
	var req tvlaRequest
	if status, err := s.decodeRequest(w, r, &req); status != 0 {
		writeError(w, status, "decode: %v", err)
		return
	}
	key, err := decodeBlock("key_hex", req.KeyHex)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fixed, err := decodeBlock("fixed_hex", req.FixedHex)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.TracesPerGroup < 2 || req.TracesPerGroup > s.cfg.MaxTVLATraces {
		writeError(w, http.StatusBadRequest,
			"traces_per_group must be in [2, %d]", s.cfg.MaxTVLATraces)
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMS))
	defer cancel()

	var res *leakage.TVLAResult
	j := &job{
		ctx:      ctx,
		done:     make(chan struct{}),
		endpoint: "tvla",
		run: func(ctx context.Context, sess *core.Session) (int, error) {
			cycles := 0
			noise := rand.New(rand.NewSource(seed + 1))
			// The source simulates through the worker's pooled session with
			// the request context threaded in, so cancelling the request
			// aborts the campaign mid-trace.
			src := func(input [16]byte) ([]float64, error) {
				prog, err := aes.BuildProgram(key, input)
				if err != nil {
					return nil, err
				}
				sig, err := sess.SimulateProgramContext(ctx, prog.Words)
				if err != nil {
					return nil, err
				}
				cycles += sess.Cycles()
				if req.NoiseStd > 0 {
					for i := range sig {
						sig[i] += req.NoiseStd * noise.NormFloat64()
					}
				}
				return sig, nil
			}
			// One pass: each trace folds into the stream's running moments
			// and is discarded, so the campaign never buffers; the final
			// statistic extraction is the only analysis cost and gets its
			// own span + histogram. The RNG draw order matches leakage.TVLA
			// exactly, so results are byte-identical to the batch wrapper.
			rng := rand.New(rand.NewSource(seed))
			st := leakage.NewTVLAStream()
			for i := 0; i < req.TracesPerGroup; i++ {
				tf, err := src(fixed)
				if err != nil {
					return cycles, fmt.Errorf("fixed trace %d: %w", i, err)
				}
				var input [16]byte
				rng.Read(input[:])
				tr, err := src(input)
				if err != nil {
					return cycles, fmt.Errorf("random trace %d: %w", i, err)
				}
				if err := st.AddFixed(tf); err != nil {
					return cycles, err
				}
				if err := st.AddRandom(tr); err != nil {
					return cycles, err
				}
				s.met.tvlaTraces.Add(2)
			}
			if st.Samples() == 0 {
				return cycles, errors.New("empty traces")
			}
			lane := obs.NextLane()
			start := time.Now()
			obs.Begin(spanTVLAAnalysis, lane)
			var err error
			res, err = st.Snapshot()
			obs.End(spanTVLAAnalysis, lane)
			s.met.tvlaAnalysis.Observe(time.Since(start).Seconds())
			return cycles, err
		},
	}
	if err := s.sched.submit(j); err != nil {
		s.shed(w, err)
		return
	}
	<-j.done
	if j.err != nil {
		s.writeSimError(w, j.err)
		return
	}
	resp := tvlaResponse{
		TracesPerGroup: res.Traces,
		Samples:        len(res.T),
		Leaks:          res.Leaks(),
		MaxAbsT:        finiteT(res.MaxAbsT),
		LeakyCount:     len(res.LeakyPoints),
		LeakyPoints:    res.LeakyPoints,
	}
	if len(resp.LeakyPoints) > maxLeakyPoints {
		resp.LeakyPoints = resp.LeakyPoints[:maxLeakyPoints]
	}
	writeJSON(w, http.StatusOK, resp)
}
