package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"emsim/internal/core"
)

// Regression tests for the lockscope/ctxflow fixes: progress observers
// must tolerate concurrent, out-of-order delivery; job and registry
// locks must not wrap foreign code (error rendering, cancel funcs); and
// Config.BaseContext must parent every background campaign.

func TestTrainObserveMonotonic(t *testing.T) {
	// Campaign workers deliver completion counts out of order; a stale
	// count must not wind the visible counter backwards, while a new
	// phase resets it.
	j := &trainJob{id: "train-1", state: trainRunning}
	j.observe(core.Progress{Phase: core.PhaseKernel, Done: 2, Total: 5})
	j.observe(core.Progress{Phase: core.PhaseKernel, Done: 1, Total: 5})
	if st := j.status(false); st.Done != 2 {
		t.Errorf("stale event moved the counter: Done = %d, want 2", st.Done)
	}
	j.observe(core.Progress{Phase: core.PhaseBaseline, Done: 0, Total: 7})
	st := j.status(false)
	if st.Phase != core.PhaseBaseline.String() || st.Done != 0 || st.Total != 7 {
		t.Errorf("phase change not applied: %+v", st)
	}
}

func TestDefendObserveMonotonic(t *testing.T) {
	j := &defendJob{id: "defend-1", state: defendRunning, armDone: map[string]int{}}
	j.observe("baseline", 3, 10)
	j.observe("baseline", 2, 10)
	if st := j.status(false); st.Done != 3 {
		t.Errorf("stale event moved the counter: Done = %d, want 3", st.Done)
	}
	j.observe("shuffle", 1, 10)
	st := j.status(false)
	if st.Arm != "shuffle" || st.Done != 4 || st.Total != 20 {
		t.Errorf("arm change not accumulated: %+v", st)
	}
}

// statusErr is an error whose rendering calls back into the job it is
// being recorded on — the sharpest form of "Error is foreign code".
type statusErr struct{ status func() }

func (e statusErr) Error() string {
	e.status()
	return "boom"
}

func TestTrainFinishRendersErrorOutsideLock(t *testing.T) {
	// finish must render err.Error() before taking the job lock; an
	// error that re-enters status() deadlocked under the old ordering.
	j := &trainJob{id: "train-1", state: trainRunning}
	done := make(chan struct{})
	go func() {
		j.finish(nil, statusErr{status: func() { j.status(false) }})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("finish deadlocked rendering the error under the job lock")
	}
	if st := j.status(false); st.State != trainFailed || st.Error != "boom" {
		t.Errorf("finish recorded %+v, want failed/boom", st)
	}
}

func TestDefendFinishRendersErrorOutsideLock(t *testing.T) {
	j := &defendJob{id: "defend-1", state: defendRunning, armDone: map[string]int{}}
	done := make(chan struct{})
	go func() {
		j.finish(nil, statusErr{status: func() { j.status(false) }})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("finish deadlocked rendering the error under the job lock")
	}
	if st := j.status(false); st.State != defendFailed || st.Error != "boom" {
		t.Errorf("finish recorded %+v, want failed/boom", st)
	}
}

func TestDrainCancelsOutsideRegistryLock(t *testing.T) {
	// drain snapshots jobs under the registry lock but runs the cancel
	// funcs outside it. A cancel that re-enters the registry (context
	// machinery running arbitrary callbacks) deadlocked under the old
	// ordering.
	tr := newTrainRegistry(context.Background(), 1, newMetrics(nil))
	jt := &trainJob{id: "train-1", state: trainQueued}
	jt.cancel = func() { tr.get(jt.id) }
	tr.jobs[jt.id] = jt
	tr.order = append(tr.order, jt.id)

	dr := newDefendRegistry(context.Background(), 1, newMetrics(nil))
	jd := &defendJob{id: "defend-1", state: defendQueued, armDone: map[string]int{}}
	jd.cancel = func() { dr.get(jd.id) }
	dr.jobs[jd.id] = jd
	dr.order = append(dr.order, jd.id)

	done := make(chan struct{})
	go func() {
		tr.drain()
		dr.drain()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("drain deadlocked running a cancel func under the registry lock")
	}
}

func TestBaseContextCancelsJobs(t *testing.T) {
	// Config.BaseContext parents every background campaign: cancelling
	// it must unwind a running training job just like its DELETE route.
	base, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, ts := newTestServer(t, Config{BaseContext: base})

	// A campaign big enough to still be in flight when the cancel lands.
	resp, data := postJSON(t, ts.URL+"/v1/train", trainRequest{Runs: 150, InstancesPerCluster: 200})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var sub trainStatus
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	cancel()
	st := pollTrain(t, ts.URL, sub.ID, trainQueued, trainRunning)
	if st.State != trainCancelled {
		t.Fatalf("job ended %q (error %q) after base-context cancel, want cancelled", st.State, st.Error)
	}
}
