package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"emsim/internal/obs"
)

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, data := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Asm: loopAsm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", resp.StatusCode, data)
	}

	resp, data = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q, want text/plain exposition format", ct)
	}
	text := string(data)
	for _, want := range []string{
		"# TYPE emsim_requests_accepted_total counter",
		"emsim_requests_accepted_total 1",
		"# TYPE emsim_queue_depth gauge",
		"# TYPE emsim_request_duration_seconds histogram",
		`emsim_request_duration_seconds_bucket{endpoint="simulate",le="+Inf"} 1`,
		`emsim_request_duration_seconds_count{endpoint="simulate"} 1`,
		`emsim_train_jobs_total{state="done"} 0`,
		`emsim_train_phase_duration_seconds_count{phase="kernel-fit"} 0`,
		"# TYPE emsim_simulated_cycles_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q:\n%s", want, text)
		}
	}
}

func TestTraceEndpointSnapshot(t *testing.T) {
	obs.Enable(1 << 12)
	defer obs.Disable()
	_, ts := newTestServer(t, Config{})

	resp, data := postJSON(t, ts.URL+"/v1/simulate", simulateRequest{Asm: loopAsm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: status %d: %s", resp.StatusCode, data)
	}

	resp, data = getBody(t, ts.URL+"/v1/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace: status %d", resp.StatusCode)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("/v1/trace is not JSON: %v\n%s", err, data)
	}
	seen := map[string]bool{}
	for _, e := range trace.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %+v: want only complete (X) events", e)
		}
		seen[e.Name] = true
	}
	for _, want := range []string{"serve.queued", "serve.run", "session.simulate"} {
		if !seen[want] {
			t.Errorf("trace snapshot missing a %s span (saw %v)", want, seen)
		}
	}
}

func TestTraceEndpointDisabledIsWellFormed(t *testing.T) {
	obs.Disable()
	obs.Enable(64) // fresh empty ring so earlier tests' events don't bleed in
	obs.Disable()
	_, ts := newTestServer(t, Config{})
	resp, data := getBody(t, ts.URL+"/v1/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace: status %d", resp.StatusCode)
	}
	var trace struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("disabled /v1/trace is not JSON: %v\n%s", err, data)
	}
	if len(trace.TraceEvents) != 0 {
		t.Errorf("disabled recorder produced %d events, want an empty trace", len(trace.TraceEvents))
	}
}

func TestDebugHandlerPprof(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol", "/metrics", "/v1/trace"} {
		resp, data := getBody(t, dbg.URL+path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %s", path, resp.StatusCode, data)
		}
		if path == "/debug/pprof/" && !strings.Contains(string(data), "goroutine") {
			t.Errorf("pprof index does not list profiles:\n%s", data)
		}
	}
}

// TestTrainCancelMidPhaseDrains DELETEs a /v1/train job while its
// campaign is mid-phase and asserts the whole stack unwinds: the job
// reports cancelled, the registry's active gauge returns to zero, Close
// drains cleanly, and no goroutine (trainer measurement workers
// included) outlives the server.
func TestTrainCancelMidPhaseDrains(t *testing.T) {
	serveTestModel(t) // pre-train the shared model outside the goroutine baseline
	baseline := stableGoroutineCount()

	s, err := New(serveTestModel(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// A campaign big enough to be mid-phase when the cancel lands.
	resp, data := postJSON(t, ts.URL+"/v1/train", trainRequest{Runs: 150, InstancesPerCluster: 200})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var sub trainStatus
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}

	// Wait until the campaign is demonstrably mid-phase: running, with
	// at least one measurement done and more still to come.
	deadline := time.Now().Add(120 * time.Second)
	for {
		_, data := getBody(t, fmt.Sprintf("%s/v1/train/%s", ts.URL, sub.ID))
		var st trainStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.State == trainRunning && st.Done > 0 && st.Done < st.Total {
			break
		}
		if st.State != trainQueued && st.State != trainRunning {
			t.Fatalf("job reached %q before the cancel could land mid-phase", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never got mid-phase: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/train/%s", ts.URL, sub.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}

	st := pollTrain(t, ts.URL, sub.ID, trainQueued, trainRunning)
	if st.State != trainCancelled {
		t.Fatalf("job ended %q, want cancelled", st.State)
	}
	waitVar(t, s, s.met.trainsActive.Value, 0, "trains_active")
	if got := s.met.trainsCancelled.Value(); got != 1 {
		t.Errorf("trains_cancelled = %d, want 1", got)
	}

	// The registry must drain and every worker join: after Close, the
	// goroutine count returns to the pre-server baseline.
	ts.Close()
	s.Close()
	drainDeadline := time.Now().Add(30 * time.Second)
	for {
		if after := stableGoroutineCount(); after <= baseline+2 {
			return
		}
		if time.Now().After(drainDeadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked after mid-phase cancel: %d at baseline, %d after drain\n%s",
		baseline, stableGoroutineCount(), buf[:n])
}
