package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"emsim/internal/core"
	"emsim/internal/cpu"
	"emsim/internal/obs"
)

// Scheduler span identities: queued covers enqueue→dequeue, run covers
// the job's execution on a worker. Both render on the job's lane, so
// one request reads as queue-wait followed by run on a single track.
var (
	spanQueued = obs.RegisterSpan("serve.queued")
	spanRun    = obs.RegisterSpan("serve.run")
)

// Submission errors. Handlers map errQueueFull to 429 + Retry-After and
// errDraining to 503.
var (
	errQueueFull = errors.New("serve: queue full")
	errDraining  = errors.New("serve: server draining")
)

// job is one unit of simulation work. The handler goroutine builds it,
// submits it and blocks on done; a worker goroutine executes run with a
// pooled session and closes done. run's closure owns the response state,
// so the handler must not read it before done is closed.
type job struct {
	ctx      context.Context
	run      func(ctx context.Context, sess *core.Session) (cycles int, err error)
	done     chan struct{}
	err      error
	endpoint string // request-duration histogram label ("simulate", "tvla", ...)
	lane     int    // trace lane; claimed on successful submit
}

// scheduler is the fixed-size worker pool behind the HTTP handlers: a
// bounded queue of jobs drained by one goroutine per pooled Session.
// Backpressure is the queue bound — Submit never blocks, it either
// enqueues or reports the queue full so the handler can shed the
// request. Cancellation relies on the context plumbing in cpu.RunTo's
// cycle loop: a worker running a cancelled job gets its session back
// within cpu.CtxCheckInterval cycles.
type scheduler struct {
	queue chan *job
	met   *metrics

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// newScheduler builds the pool: workers sessions are created eagerly so
// a model/config error surfaces at startup, not on the first request.
func newScheduler(m *core.Model, cfg cpu.Config, workers, queueDepth int, met *metrics) (*scheduler, error) {
	s := &scheduler{queue: make(chan *job, queueDepth), met: met}
	sessions := make([]*core.Session, workers)
	for i := range sessions {
		sess, err := core.NewSession(m, cfg)
		if err != nil {
			return nil, err
		}
		sessions[i] = sess
	}
	s.wg.Add(workers)
	for _, sess := range sessions {
		go s.worker(sess)
	}
	return s, nil
}

// submit enqueues a job without blocking. The returned error is nil
// (queued), errQueueFull (shed it) or errDraining (shutting down).
func (s *scheduler) submit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errDraining
	}
	j.lane = obs.NextLane()
	obs.Begin(spanQueued, j.lane)
	select {
	case s.queue <- j:
		s.met.requests.Add(1)
		s.met.queueDepth.Add(1)
		return nil
	default:
		obs.End(spanQueued, j.lane)
		s.met.rejected.Add(1)
		return errQueueFull
	}
}

// worker owns one Session for the scheduler's lifetime and executes jobs
// against it. A job whose context died while queued completes
// immediately without touching the session.
func (s *scheduler) worker(sess *core.Session) {
	defer s.wg.Done()
	for j := range s.queue {
		s.met.queueDepth.Add(-1)
		obs.End(spanQueued, j.lane)
		if err := j.ctx.Err(); err != nil {
			j.err = err
			s.met.cancelled.Add(1)
			close(j.done)
			continue
		}
		s.met.inFlight.Add(1)
		obs.Begin(spanRun, j.lane)
		start := time.Now()
		cycles, err := j.run(j.ctx, sess)
		obs.End(spanRun, j.lane)
		s.met.observeRequest(j.endpoint, time.Since(start))
		s.met.cycles.Add(int64(cycles))
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.met.cancelled.Add(1)
		}
		s.met.inFlight.Add(-1)
		j.err = err
		close(j.done)
	}
}

// drain stops accepting jobs, lets the queue run dry and waits for every
// in-flight job to finish. Safe to call more than once.
func (s *scheduler) drain() {
	s.mu.Lock()
	wasClosed := s.closed
	s.closed = true
	if !wasClosed {
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// draining reports whether drain has begun (healthz turns 503).
func (s *scheduler) draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}
