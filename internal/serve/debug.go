package serve

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the debug route tree cmd/emsim-serve mounts on
// its -debug-addr listener: the full net/http/pprof surface plus the
// same /metrics and /v1/trace endpoints the main listener serves, so a
// profiling session can correlate profiles with scrapes on one port.
//
// The handlers are registered explicitly rather than via the package's
// side-effect init on http.DefaultServeMux, keeping the debug surface
// off the public listener entirely — pprof exposes heap contents and
// must only ever bind a loopback or otherwise protected address.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	return mux
}
