package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestSaturatingLoad is the acceptance-criteria load test: 64 concurrent
// clients hammer a worker pool of 4 with a small queue. Every response
// must be a 200 or a deliberate 429 shed — never a 5xx — and after the
// server drains, no goroutine may be left behind.
//
// Run it under -race (the CI race job does) to race-check the scheduler,
// the metrics and the per-worker sessions at once.
func TestSaturatingLoad(t *testing.T) {
	baseline := stableGoroutineCount()

	cfg := Config{Workers: 4, QueueDepth: 8}
	s, err := New(serveTestModel(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	const (
		clients        = 64
		reqsPerClient  = 8
		expectAccepted = 1 // at least this many total 200s
	)
	programs := []simulateRequest{
		{Asm: loopAsm},
		{Words: []uint32{0x00100093, 0x00100073}}, // addi ra, zero, 1; ebreak
		{Asm: loopAsm, IncludeStages: true, OmitSignal: true},
	}
	var (
		mu     sync.Mutex
		counts = map[int]int{}
	)
	var wg sync.WaitGroup
	client := ts.Client()
	client.Timeout = 30 * time.Second
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < reqsPerClient; i++ {
				body, _ := json.Marshal(programs[(c+i)%len(programs)])
				resp, err := client.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				counts[resp.StatusCode]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	mu.Lock()
	summary := fmt.Sprintf("%v", counts)
	ok200, shed429 := counts[http.StatusOK], counts[http.StatusTooManyRequests]
	for code, n := range counts {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Errorf("saturating load produced %d responses with status %d; want only 200/429", n, code)
		}
	}
	mu.Unlock()
	t.Logf("load summary: %s", summary)
	if ok200 < expectAccepted {
		t.Errorf("load test saw %d 200s, want >= %d", ok200, expectAccepted)
	}
	if ok200+shed429 != clients*reqsPerClient {
		t.Errorf("accounted %d responses, want %d", ok200+shed429, clients*reqsPerClient)
	}

	// Shut everything down and verify no goroutine leaked: the worker
	// pool, the queue and every per-request goroutine must be gone.
	ts.Close()
	s.Close()
	deadline := time.Now().Add(10 * time.Second)
	var after int
	for time.Now().Before(deadline) {
		after = stableGoroutineCount()
		if after <= baseline+2 { // allow runtime/testing background noise
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Errorf("goroutines leaked: %d before load, %d after drain\n%s", baseline, after, buf[:n])
}

// stableGoroutineCount samples the goroutine count after a GC so
// finished goroutines are reaped.
func stableGoroutineCount() int {
	runtime.GC()
	return runtime.NumGoroutine()
}
