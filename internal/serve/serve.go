// Package serve is the long-lived simulation service behind
// cmd/emsim-serve: a stdlib-only HTTP JSON layer over the streaming
// core.Session pipeline. One trained model is loaded once; requests are
// executed by a fixed pool of workers, each owning one reusable Session,
// fed from a bounded queue. When the queue is full the service sheds
// load with 429 + Retry-After instead of queueing unboundedly, and
// per-request contexts (client disconnect, per-request deadline, server
// drain) cancel in-flight simulations within cpu.CtxCheckInterval
// cycles via the context check in the core's cycle loop.
package serve

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"emsim/internal/core"
	"emsim/internal/cpu"
	"emsim/internal/obs"
)

// spanDrain covers Server.Close's full drain (scheduler + registries).
var spanDrain = obs.RegisterSpan("serve.drain")

// Config tunes the service. The zero value serves with sensible
// defaults; see each field.
type Config struct {
	// CPU is the core configuration the pooled sessions simulate with.
	// The zero value selects cpu.DefaultConfig.
	CPU cpu.Config
	// Workers is the session pool size (and so the simulation
	// concurrency). Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds the accept queue; a request arriving with the
	// queue full is shed with 429. Default 64.
	QueueDepth int
	// MaxProgramWords caps the program size a request may submit;
	// larger programs are rejected with 413. Default 65536.
	MaxProgramWords int
	// MaxRequestBytes caps the request body size. Default 8 MiB.
	MaxRequestBytes int64
	// DefaultTimeout bounds a request that names no timeout_ms;
	// MaxTimeout clamps one that does. Defaults 30s / 120s.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// RetryAfter is the hint returned with 429 responses. Default 1s.
	RetryAfter time.Duration
	// MaxTVLATraces caps traces_per_group of a /v1/tvla request.
	// Default 256.
	MaxTVLATraces int
	// MaxTrainJobs bounds how many /v1/train campaigns run concurrently;
	// excess jobs queue inside the registry. Default 1 (training is
	// internally parallel already).
	MaxTrainJobs int
	// TrainWorkers is the measurement fan-out width of each training
	// campaign; 0 means GOMAXPROCS.
	TrainWorkers int
	// MaxTrainRuns caps the runs field of a /v1/train request.
	// Default 200.
	MaxTrainRuns int
	// MaxDefendJobs bounds how many /v1/defend campaigns run
	// concurrently; excess jobs queue inside the registry. Default 1
	// (an evaluation is internally parallel already).
	MaxDefendJobs int
	// DefendWorkers is the simulation fan-out width of each defense
	// evaluation; 0 means GOMAXPROCS.
	DefendWorkers int
	// MaxDefendTraces caps the tvla_traces and cpa_traces fields of a
	// /v1/defend request. Default 4096.
	MaxDefendTraces int
	// BaseContext, when non-nil, is the parent of every background job
	// context (training and defense campaigns): cancelling it cancels
	// all live jobs, in addition to the per-job DELETE route and
	// Server.Close. Nil means context.Background. Analogous to
	// http.Server.BaseContext.
	BaseContext context.Context
}

func (c Config) withDefaults() Config {
	if c.CPU == (cpu.Config{}) {
		c.CPU = cpu.DefaultConfig()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxProgramWords <= 0 {
		c.MaxProgramWords = 65536
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 120 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxTVLATraces <= 0 {
		c.MaxTVLATraces = 256
	}
	if c.MaxTrainJobs <= 0 {
		c.MaxTrainJobs = 1
	}
	if c.MaxTrainRuns <= 0 {
		c.MaxTrainRuns = 200
	}
	if c.MaxDefendJobs <= 0 {
		c.MaxDefendJobs = 1
	}
	if c.MaxDefendTraces <= 0 {
		c.MaxDefendTraces = 4096
	}
	if c.BaseContext == nil {
		//emsim:ignore ctxflow the zero Config falls back to a background base deliberately, mirroring http.Server.BaseContext
		c.BaseContext = context.Background()
	}
	return c
}

// Server is the HTTP simulation service. Build one with New, mount
// Handler on an http.Server, and Close it (after http.Server.Shutdown)
// to drain the worker pool.
type Server struct {
	model   *core.Model
	cfg     Config
	sched   *scheduler
	met     *metrics
	trains  *trainRegistry
	defends *defendRegistry
	mux     *http.ServeMux
}

// New builds the service: the session pool spins up eagerly so an
// invalid model/config fails here rather than on the first request.
func New(m *core.Model, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	phases := make([]string, core.NumPhases)
	for p := 0; p < core.NumPhases; p++ {
		phases[p] = core.Phase(p).String()
	}
	met := newMetrics(phases)
	sched, err := newScheduler(m, cfg.CPU, cfg.Workers, cfg.QueueDepth, met)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{model: m, cfg: cfg, sched: sched, met: met}
	s.trains = newTrainRegistry(cfg.BaseContext, cfg.MaxTrainJobs, met)
	s.defends = newDefendRegistry(cfg.BaseContext, cfg.MaxDefendJobs, met)
	met.vars.Set("train_cache", expvar.Func(func() any { return s.trains.cacheStats() }))
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/tvla", s.handleTVLA)
	s.mux.HandleFunc("POST /v1/train", s.handleTrainSubmit)
	s.mux.HandleFunc("GET /v1/train/{id}", s.handleTrainStatus)
	s.mux.HandleFunc("DELETE /v1/train/{id}", s.handleTrainCancel)
	s.mux.HandleFunc("POST /v1/defend", s.handleDefendSubmit)
	s.mux.HandleFunc("GET /v1/defend/{id}", s.handleDefendStatus)
	s.mux.HandleFunc("DELETE /v1/defend/{id}", s.handleDefendCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /varz", s.handleVarz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/trace", s.handleTrace)
	return s, nil
}

// Handler returns the service's route tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Vars exposes the server's metrics map for global expvar registration.
func (s *Server) Vars() *expvar.Map { return s.met.Vars() }

// Close drains the worker pool and the job registries: no new jobs are
// accepted, every queued or in-flight simulation completes (cancelled
// jobs complete within one context-check interval), and every live
// training or defense campaign is cancelled and waited out. Call it
// after http.Server.Shutdown so late handlers see errDraining instead
// of a send on a closed queue.
func (s *Server) Close() {
	obs.Begin(spanDrain, 0)
	defer obs.End(spanDrain, 0)
	s.sched.drain()
	s.trains.drain()
	s.defends.drain()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.sched.draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.met.vars.String())
}

// handleMetrics renders the per-server registry in Prometheus text
// exposition format (the structured sibling of /varz).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.met.writePrometheus(w)
}

// handleTrace serves a Chrome-trace JSON snapshot of the span ring.
// Recording is process-global and off by default; cmd/emsim-serve
// enables it (see -trace-events), so a snapshot taken without it is an
// empty — but well-formed — trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="emsim-trace.json"`)
	_ = obs.WriteChromeTrace(w, obs.Snapshot())
}

// writeJSON serializes one response value; encoding errors at this point
// can only be delivered as a broken connection, so they are ignored.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// shed maps a submit failure to its HTTP response.
func (s *Server) shed(w http.ResponseWriter, err error) {
	switch err {
	case errQueueFull:
		secs := int(s.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, "simulation queue full; retry after %ds", secs)
	case errDraining:
		writeError(w, http.StatusServiceUnavailable, "server draining")
	default:
		writeError(w, http.StatusInternalServerError, "submit: %v", err)
	}
}

// requestTimeout resolves a request's effective deadline from its
// optional timeout_ms field, clamped to the configured maximum.
func (s *Server) requestTimeout(timeoutMS int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}
