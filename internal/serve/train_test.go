package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"emsim/internal/core"
)

// pollTrain polls one training job until its state leaves the given set
// or the deadline passes, returning the last status seen.
func pollTrain(t *testing.T, url, id string, while ...string) trainStatus {
	t.Helper()
	transient := map[string]bool{}
	for _, s := range while {
		transient[s] = true
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/train/%s", url, id))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d: %s", resp.StatusCode, data)
		}
		var st trainStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("poll: decode: %v", err)
		}
		if !transient[st.State] || time.Now().After(deadline) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestTrainJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Submit the same starved campaign the test model was trained with.
	resp, data := postJSON(t, ts.URL+"/v1/train", trainRequest{
		Seed: 7, Runs: 3, InstancesPerCluster: 10, MixedPrograms: 2, MixedLength: 200,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var sub trainStatus
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || (sub.State != trainQueued && sub.State != trainRunning) {
		t.Fatalf("submit returned %+v", sub)
	}

	st := pollTrain(t, ts.URL, sub.ID, trainQueued, trainRunning)
	if st.State != trainDone {
		t.Fatalf("job ended %q (error %q), want done", st.State, st.Error)
	}
	if st.Phase != core.PhaseMISO.String() || st.Done != st.Total || st.Total == 0 {
		t.Errorf("final status %+v, want completed miso phase", st)
	}
	if len(st.Model) == 0 {
		t.Fatal("done job returned no model")
	}

	// The trained model must round-trip and — the determinism contract
	// across the whole stack — match the sequentially trained test model
	// byte for byte (same campaign, same device configuration).
	got, err := core.LoadModel(bytes.NewReader(st.Model))
	if err != nil {
		t.Fatalf("returned model does not load: %v", err)
	}
	var want, gotBuf bytes.Buffer
	if err := serveTestModel(t).Save(&want); err != nil {
		t.Fatal(err)
	}
	if err := got.Save(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), gotBuf.Bytes()) {
		t.Error("served training differs from sequential core.Train for the same campaign")
	}
}

func TestTrainJobCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// A campaign big enough to still be in flight when the cancel lands.
	resp, data := postJSON(t, ts.URL+"/v1/train", trainRequest{Runs: 150, InstancesPerCluster: 200})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, data)
	}
	var sub trainStatus
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/train/%s", ts.URL, sub.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}

	st := pollTrain(t, ts.URL, sub.ID, trainQueued, trainRunning)
	if st.State != trainCancelled {
		t.Fatalf("job ended %q, want cancelled", st.State)
	}
	if len(st.Model) != 0 {
		t.Error("cancelled job returned a model")
	}
}

func TestTrainValidationAndLookup(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	for name, req := range map[string]trainRequest{
		"negative seed":  {Seed: -1},
		"excessive runs": {Runs: 100000},
		"huge campaign":  {InstancesPerCluster: 100000},
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/train", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/train/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}
