package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"

	"emsim/internal/asm"
	"emsim/internal/core"
	"emsim/internal/cpu"
)

// simulateRequest is the /v1/simulate body. Exactly one of asm and words
// must be set.
type simulateRequest struct {
	// Asm is RV32IM assembly text (the cmd/emsim dialect); Words is a
	// pre-assembled image loaded at the reset vector.
	Asm   string   `json:"asm,omitempty"`
	Words []uint32 `json:"words,omitempty"`
	// TimeoutMS bounds the simulation (clamped to the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// OmitSignal drops the (large) signal array from the response for
	// callers that only want stats or the stage breakdown.
	OmitSignal bool `json:"omit_signal,omitempty"`
	// IncludeStages adds the per-stage amplitude breakdown.
	IncludeStages bool `json:"include_stages,omitempty"`
}

// stageAmplitude is one pipeline stage's share of the simulated signal.
type stageAmplitude struct {
	Stage string `json:"stage"`
	// MeanAbs is the stage's mean absolute per-cycle contribution
	// |M_s·u_s|; Share its fraction of the summed contributions.
	MeanAbs float64 `json:"mean_abs"`
	Share   float64 `json:"share"`
}

// simulateStats mirrors cpu.Stats in JSON casing.
type simulateStats struct {
	Retired     int     `json:"retired"`
	IPC         float64 `json:"ipc"`
	Bubbles     int     `json:"bubbles"`
	StallCycles int     `json:"stall_cycles"`
	Flushes     int     `json:"flushes"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	Mispredicts uint64  `json:"mispredicts"`
}

type simulateResponse struct {
	Cycles          int              `json:"cycles"`
	SamplesPerCycle int              `json:"samples_per_cycle"`
	Stats           simulateStats    `json:"stats"`
	Signal          []float64        `json:"signal,omitempty"`
	Stages          []stageAmplitude `json:"stages,omitempty"`
}

// stageAccumulator is the Session tee that collects the per-stage
// breakdown while the signal streams through the amplitude model — no
// trace is materialized for it.
type stageAccumulator struct {
	m      *core.Model
	sumAbs [cpu.NumStages]float64
	cycles int
}

//emsim:noalloc
func (a *stageAccumulator) Cycle(c *cpu.Cycle) error {
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		v := a.m.StageContribution(s, &c.Stages[s])
		if v < 0 {
			v = -v
		}
		a.sumAbs[s] += v
	}
	a.cycles++
	return nil
}

func (a *stageAccumulator) breakdown() []stageAmplitude {
	total := 0.0
	for _, v := range a.sumAbs {
		total += v
	}
	out := make([]stageAmplitude, cpu.NumStages)
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		st := stageAmplitude{Stage: s.String()}
		if a.cycles > 0 {
			st.MeanAbs = a.sumAbs[s] / float64(a.cycles)
		}
		if total > 0 {
			st.Share = a.sumAbs[s] / total
		}
		out[s] = st
	}
	return out
}

// decodeRequest reads one JSON body with the configured size cap.
// Returns (413, err) when the cap was hit, (400, err) on malformed JSON.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, v any) (int, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return http.StatusRequestEntityTooLarge, err
		}
		return http.StatusBadRequest, err
	}
	// Trailing garbage after the JSON value is malformed too.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return http.StatusBadRequest, errors.New("trailing data after JSON body")
	}
	return 0, nil
}

// resolveProgram validates the request's program and returns its words.
func (s *Server) resolveProgram(req *simulateRequest) ([]uint32, int, error) {
	switch {
	case req.Asm != "" && req.Words != nil:
		return nil, http.StatusBadRequest, errors.New("asm and words are mutually exclusive")
	case req.Asm == "" && len(req.Words) == 0:
		return nil, http.StatusBadRequest, errors.New("one of asm or words is required")
	case req.Asm != "":
		if len(req.Asm) > 4*s.cfg.MaxProgramWords {
			return nil, http.StatusRequestEntityTooLarge,
				errors.New("assembly source exceeds the program size limit")
		}
		p, err := asm.Assemble(req.Asm)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		if p.Origin != s.cfg.CPU.ResetVector {
			return nil, http.StatusBadRequest,
				errors.New("program origin must match the core's reset vector")
		}
		if len(p.Words) > s.cfg.MaxProgramWords {
			return nil, http.StatusRequestEntityTooLarge, errors.New("program too large")
		}
		return p.Words, 0, nil
	default:
		if len(req.Words) > s.cfg.MaxProgramWords {
			return nil, http.StatusRequestEntityTooLarge, errors.New("program too large")
		}
		return req.Words, 0, nil
	}
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req simulateRequest
	if status, err := s.decodeRequest(w, r, &req); status != 0 {
		writeError(w, status, "decode: %v", err)
		return
	}
	words, status, err := s.resolveProgram(&req)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req.TimeoutMS))
	defer cancel()

	resp := &simulateResponse{SamplesPerCycle: s.model.SamplesPerCycle}
	j := &job{
		ctx:      ctx,
		done:     make(chan struct{}),
		endpoint: "simulate",
		run: func(ctx context.Context, sess *core.Session) (int, error) {
			var acc *stageAccumulator
			if req.IncludeStages {
				acc = &stageAccumulator{m: sess.Model()}
				sess.SetTee(acc)
				defer sess.SetTee(nil)
			}
			sig, err := sess.SimulateProgramContext(ctx, words)
			if err != nil {
				return sess.Cycles(), err
			}
			resp.Cycles = sess.Cycles()
			st := sess.Stats()
			resp.Stats = simulateStats{
				Retired:     st.Retired,
				IPC:         st.IPC(),
				Bubbles:     st.Bubbles,
				StallCycles: st.StallCycles,
				Flushes:     st.Flushes,
				CacheHits:   st.CacheHits,
				CacheMisses: st.CacheMisses,
				Mispredicts: st.Mispredicts,
			}
			if !req.OmitSignal {
				resp.Signal = sanitizeSignal(sig)
			}
			if acc != nil {
				resp.Stages = acc.breakdown()
			}
			return resp.Cycles, nil
		},
	}
	if err := s.sched.submit(j); err != nil {
		s.shed(w, err)
		return
	}
	<-j.done
	if j.err != nil {
		s.writeSimError(w, j.err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeSimError maps a simulation failure to its status: deadline
// expiry is the request's fault (504 would claim an upstream; 408 fits
// a client-supplied timeout), a client disconnect gets a best-effort
// 499-style close, and everything else — a program that never halts, an
// undecodable word — is an unprocessable program, not a server error.
func (s *Server) writeSimError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusRequestTimeout, "simulation exceeded its deadline")
	case errors.Is(err, context.Canceled):
		// The client is gone; the response is written for completeness.
		writeError(w, http.StatusRequestTimeout, "request cancelled")
	default:
		writeError(w, http.StatusUnprocessableEntity, "simulate: %v", err)
	}
}

// sanitizeSignal replaces non-finite samples so the response stays valid
// JSON (encoding/json rejects NaN/Inf). A trained model never produces
// them; an adversarially constructed one might.
func sanitizeSignal(sig []float64) []float64 {
	for i, v := range sig {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			sig[i] = 0
		}
	}
	return sig
}
