package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"emsim/internal/core"
	"emsim/internal/device"
	"emsim/internal/obs"
)

// spanTrainJob covers one training campaign's execution (slot acquired
// to model serialized), on a lane claimed per job.
var spanTrainJob = obs.RegisterSpan("serve.train-job")

// This file is the asynchronous training surface: POST /v1/train submits
// a campaign against a fresh synthetic device and returns a job ID;
// GET /v1/train/{id} reports phase-level progress (fed by the Trainer's
// progress callback) and, once done, the fitted model; DELETE cancels.
// Training is hours-of-CPU-scale next to a simulate call, so jobs run on
// their own goroutines gated by a small semaphore rather than through
// the simulation worker pool, and every server shares one measurement
// cache, making a re-submitted campaign against the same device
// configuration mostly cache hits.

// Training job states.
const (
	trainQueued    = "queued"
	trainRunning   = "running"
	trainDone      = "done"
	trainFailed    = "failed"
	trainCancelled = "cancelled"
)

// trainRequest is the POST /v1/train body. Zero-valued campaign fields
// take the core.TrainOptions defaults; zero-valued device fields take
// the default bench.
type trainRequest struct {
	Seed                int64 `json:"seed"`
	Runs                int   `json:"runs"`
	InstancesPerCluster int   `json:"instances_per_cluster"`
	MixedPrograms       int   `json:"mixed_programs"`
	MixedLength         int   `json:"mixed_length"`
	// Workers overrides the server's per-campaign fan-out width.
	Workers int `json:"workers"`
	// TechSeed / NoiseSeed select the synthetic board instance.
	TechSeed  int64 `json:"tech_seed"`
	NoiseSeed int64 `json:"noise_seed"`
}

// trainStatus is the wire form of a job snapshot.
type trainStatus struct {
	ID        string          `json:"job_id"`
	State     string          `json:"state"`
	Phase     string          `json:"phase,omitempty"`
	Done      int             `json:"done"`
	Total     int             `json:"total"`
	ElapsedMS int64           `json:"elapsed_ms"`
	Error     string          `json:"error,omitempty"`
	Model     json.RawMessage `json:"model,omitempty"`
}

// trainJob is one training campaign and its observable state.
type trainJob struct {
	id     string
	cancel context.CancelFunc

	mu       sync.Mutex
	state    string
	phase    core.Phase
	done     int
	total    int
	started  time.Time
	elapsed  time.Duration // frozen at completion
	err      string
	model    []byte // serialized model JSON, set when state == done
	finished bool
}

// observe is the Trainer progress callback. Campaign workers invoke it
// concurrently and completion counts may arrive out of order within a
// phase, so stale events (a lower Done for the phase already shown) are
// dropped to keep the visible counter monotonic.
func (j *trainJob) observe(p core.Progress) {
	j.mu.Lock()
	switch {
	case p.Phase != j.phase:
		j.phase, j.done, j.total = p.Phase, p.Done, p.Total
	case p.Done > j.done:
		j.done, j.total = p.Done, p.Total
	}
	j.mu.Unlock()
}

func (j *trainJob) setRunning() {
	j.mu.Lock()
	j.state = trainRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// finish records the campaign outcome exactly once. The error is
// rendered before taking the lock: Error is foreign code (a wrapped
// chain may format lazily) and has no business inside the critical
// section.
func (j *trainJob) finish(model []byte, err error) {
	var msg string
	if err != nil {
		msg = err.Error()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return
	}
	j.finished = true
	if !j.started.IsZero() {
		j.elapsed = time.Since(j.started)
	}
	switch {
	case err == nil:
		j.state = trainDone
		j.model = model
	case errors.Is(err, context.Canceled):
		j.state = trainCancelled
	default:
		j.state = trainFailed
		j.err = msg
	}
}

// status snapshots the job for the wire, including the model only when
// asked (the list/poll path skips the multi-kilobyte payload).
func (j *trainJob) status(withModel bool) trainStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := trainStatus{
		ID:    j.id,
		State: j.state,
		Done:  j.done,
		Total: j.total,
		Error: j.err,
	}
	if j.state != trainQueued {
		st.Phase = j.phase.String()
	}
	switch {
	case j.finished:
		st.ElapsedMS = j.elapsed.Milliseconds()
	case !j.started.IsZero():
		st.ElapsedMS = time.Since(j.started).Milliseconds()
	}
	if withModel && j.state == trainDone {
		st.Model = json.RawMessage(j.model)
	}
	return st
}

// trainRegistry owns every training job of one server: submission,
// lookup, the run-concurrency semaphore, the shared measurement cache,
// and drain-time cancellation.
type trainRegistry struct {
	base  context.Context // parent of every job context (Config.BaseContext)
	sem   chan struct{}
	cache *core.MeasurementCache
	met   *metrics

	mu     sync.Mutex
	jobs   map[string]*trainJob
	order  []string // insertion order, for bounded eviction
	nextID int
	closed bool
	wg     sync.WaitGroup
}

func newTrainRegistry(base context.Context, concurrent int, met *metrics) *trainRegistry {
	return &trainRegistry{
		base:  base,
		sem:   make(chan struct{}, concurrent),
		cache: core.NewMeasurementCache(),
		met:   met,
		jobs:  map[string]*trainJob{},
	}
}

// maxTrainRecords bounds the registry; above it, submission evicts the
// oldest finished job or sheds the request.
const maxTrainRecords = 64

// submit registers a campaign and starts its runner goroutine. The
// returned error is nil, errQueueFull (registry full of live jobs) or
// errDraining.
func (tr *trainRegistry) submit(opts core.TrainOptions, devOpts device.Options) (*trainJob, error) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.closed {
		return nil, errDraining
	}
	if len(tr.jobs) >= maxTrainRecords && !tr.evictLocked() {
		return nil, errQueueFull
	}
	tr.nextID++
	ctx, cancel := context.WithCancel(tr.base)
	j := &trainJob{id: fmt.Sprintf("train-%d", tr.nextID), cancel: cancel, state: trainQueued}
	opts.Progress = j.observe
	opts.Cache = tr.cache
	tr.jobs[j.id] = j
	tr.order = append(tr.order, j.id)
	tr.met.trainsSubmitted.Add(1)
	tr.met.trainsActive.Add(1)
	tr.wg.Add(1)
	go tr.run(ctx, j, opts, devOpts)
	return j, nil
}

// evictLocked drops the oldest finished job; it reports whether a slot
// was freed. Callers hold tr.mu.
func (tr *trainRegistry) evictLocked() bool {
	for i, id := range tr.order {
		j := tr.jobs[id]
		j.mu.Lock()
		finished := j.finished
		j.mu.Unlock()
		if finished {
			delete(tr.jobs, id)
			tr.order = append(tr.order[:i], tr.order[i+1:]...)
			return true
		}
	}
	return false
}

// get looks a job up by ID.
func (tr *trainRegistry) get(id string) *trainJob {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.jobs[id]
}

// run executes one campaign: wait for a concurrency slot, build the
// device and trainer, and record the outcome on the job.
func (tr *trainRegistry) run(ctx context.Context, j *trainJob, opts core.TrainOptions, devOpts device.Options) {
	defer tr.wg.Done()
	defer tr.met.trainsActive.Add(-1)
	finish := func(model []byte, err error) {
		j.finish(model, err)
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		switch state {
		case trainDone:
			tr.met.trainsDone.Add(1)
		case trainCancelled:
			tr.met.trainsCancelled.Add(1)
		default:
			tr.met.trainsFailed.Add(1)
		}
	}

	select {
	case tr.sem <- struct{}{}:
		defer func() { <-tr.sem }()
	case <-ctx.Done():
		finish(nil, ctx.Err())
		return
	}
	j.setRunning()
	lane := obs.NextLane()
	obs.Begin(spanTrainJob, lane)
	defer obs.End(spanTrainJob, lane)
	dev, err := device.New(devOpts)
	if err != nil {
		finish(nil, err)
		return
	}
	t, err := core.NewTrainer(dev, opts)
	if err != nil {
		finish(nil, err)
		return
	}
	m, err := t.Run(ctx)
	for p, d := range t.PhaseTimings() {
		if d > 0 {
			tr.met.observePhase(p, d)
		}
	}
	if err != nil {
		finish(nil, err)
		return
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		finish(nil, err)
		return
	}
	finish(buf.Bytes(), nil)
}

// drain cancels every live campaign and waits for all runner goroutines
// to exit. Safe to call more than once. Jobs are snapshotted under the
// lock but cancelled outside it: cancel funcs run foreign Done-channel
// machinery, and submit already refuses new jobs once closed is set.
func (tr *trainRegistry) drain() {
	tr.mu.Lock()
	tr.closed = true
	jobs := make([]*trainJob, 0, len(tr.jobs))
	for _, j := range tr.jobs {
		jobs = append(jobs, j)
	}
	tr.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	tr.wg.Wait()
}

// cacheStats exposes the shared measurement cache for /varz.
func (tr *trainRegistry) cacheStats() core.CacheStats { return tr.cache.Stats() }

// ---- HTTP handlers ----

func (s *Server) handleTrainSubmit(w http.ResponseWriter, r *http.Request) {
	var req trainRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	if req.Seed < 0 || req.Runs < 0 || req.InstancesPerCluster < 0 ||
		req.MixedPrograms < 0 || req.MixedLength < 0 || req.Workers < 0 {
		writeError(w, http.StatusBadRequest, "campaign fields must be non-negative")
		return
	}
	if req.Runs > s.cfg.MaxTrainRuns {
		writeError(w, http.StatusBadRequest, "runs %d exceeds limit %d", req.Runs, s.cfg.MaxTrainRuns)
		return
	}
	if req.InstancesPerCluster > 500 || req.MixedPrograms > 64 || req.MixedLength > 20000 {
		writeError(w, http.StatusBadRequest, "campaign size exceeds limits (instances <= 500, mixed programs <= 64, mixed length <= 20000)")
		return
	}

	opts := core.TrainOptions{
		Seed:                req.Seed,
		Runs:                req.Runs,
		InstancesPerCluster: req.InstancesPerCluster,
		MixedPrograms:       req.MixedPrograms,
		MixedLength:         req.MixedLength,
		Workers:             req.Workers,
	}
	if opts.Workers == 0 {
		opts.Workers = s.cfg.TrainWorkers
	}
	devOpts := device.DefaultOptions()
	devOpts.CPU = s.cfg.CPU
	if req.TechSeed != 0 {
		devOpts.TechSeed = req.TechSeed
	}
	if req.NoiseSeed != 0 {
		devOpts.NoiseSeed = req.NoiseSeed
	}

	j, err := s.trains.submit(opts, devOpts)
	if err != nil {
		s.shed(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status(false))
}

func (s *Server) handleTrainStatus(w http.ResponseWriter, r *http.Request) {
	j := s.trains.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such training job")
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

func (s *Server) handleTrainCancel(w http.ResponseWriter, r *http.Request) {
	j := s.trains.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such training job")
		return
	}
	// Cancellation is asynchronous: the campaign unwinds within one
	// capture per in-flight worker; poll the status for "cancelled".
	j.cancel()
	writeJSON(w, http.StatusAccepted, j.status(false))
}
