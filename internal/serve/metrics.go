package serve

import (
	"expvar"
	"sort"
	"sync"
	"time"
)

// latencyRingSize is the number of recent request latencies the
// percentile window holds. A power of two keeps the ring index a mask.
const latencyRingSize = 1024

// latencyRing is a fixed-size ring of recent request latencies. Writers
// are the scheduler's workers (one observation per completed job);
// readers are /varz scrapes, which copy the window out under the lock
// and sort the copy, so a scrape never blocks the hot path for more
// than the copy.
type latencyRing struct {
	mu    sync.Mutex
	buf   [latencyRingSize]float64 // milliseconds
	count uint64                   // total observations ever
}

func (r *latencyRing) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.buf[r.count&(latencyRingSize-1)] = ms
	r.count++
	r.mu.Unlock()
}

// summary returns the ring's percentile snapshot; the map shape makes it
// directly consumable by expvar.Func.
func (r *latencyRing) summary() map[string]float64 {
	r.mu.Lock()
	n := int(r.count)
	if n > latencyRingSize {
		n = latencyRingSize
	}
	window := make([]float64, n)
	copy(window, r.buf[:n])
	count := r.count
	r.mu.Unlock()

	sort.Float64s(window)
	pick := func(p float64) float64 {
		if len(window) == 0 {
			return 0
		}
		i := int(p * float64(len(window)-1))
		return window[i]
	}
	return map[string]float64{
		"count":  float64(count),
		"p50_ms": pick(0.50),
		"p90_ms": pick(0.90),
		"p99_ms": pick(0.99),
		"max_ms": pick(1.0),
	}
}

// metrics is the server's observable state, published as a standalone
// expvar.Map (not registered in the process-global expvar namespace, so
// tests can build many servers without Publish panicking on duplicate
// names; cmd/emsim-serve additionally registers it globally once).
type metrics struct {
	queueDepth expvar.Int // jobs accepted but not yet picked up
	inFlight   expvar.Int // jobs currently executing on a worker
	requests   expvar.Int // requests accepted into the queue
	rejected   expvar.Int // requests shed with 429 (queue full)
	cancelled  expvar.Int // jobs that ended with a cancelled context
	cycles     expvar.Int // total simulated clock cycles
	latency    latencyRing

	trainsSubmitted expvar.Int // training jobs accepted
	trainsActive    expvar.Int // training jobs queued or running
	trainsDone      expvar.Int // training jobs that fitted a model
	trainsFailed    expvar.Int // training jobs that ended in error
	trainsCancelled expvar.Int // training jobs cancelled by the client or drain

	defendsSubmitted expvar.Int // defense-evaluation jobs accepted
	defendsActive    expvar.Int // defense-evaluation jobs queued or running
	defendsDone      expvar.Int // defense-evaluation jobs that produced a report
	defendsFailed    expvar.Int // defense-evaluation jobs that ended in error
	defendsCancelled expvar.Int // defense-evaluation jobs cancelled by the client or drain

	vars expvar.Map
}

func newMetrics() *metrics {
	m := &metrics{}
	m.vars.Init()
	m.vars.Set("queue_depth", &m.queueDepth)
	m.vars.Set("in_flight", &m.inFlight)
	m.vars.Set("requests_accepted", &m.requests)
	m.vars.Set("requests_rejected", &m.rejected)
	m.vars.Set("requests_cancelled", &m.cancelled)
	m.vars.Set("cycles_simulated", &m.cycles)
	m.vars.Set("latency", expvar.Func(func() any { return m.latency.summary() }))
	m.vars.Set("trains_submitted", &m.trainsSubmitted)
	m.vars.Set("trains_active", &m.trainsActive)
	m.vars.Set("trains_done", &m.trainsDone)
	m.vars.Set("trains_failed", &m.trainsFailed)
	m.vars.Set("trains_cancelled", &m.trainsCancelled)
	m.vars.Set("defends_submitted", &m.defendsSubmitted)
	m.vars.Set("defends_active", &m.defendsActive)
	m.vars.Set("defends_done", &m.defendsDone)
	m.vars.Set("defends_failed", &m.defendsFailed)
	m.vars.Set("defends_cancelled", &m.defendsCancelled)
	return m
}

// Vars exposes the metrics map so cmd/emsim-serve can publish it in the
// process-global expvar namespace.
func (m *metrics) Vars() *expvar.Map { return &m.vars }
