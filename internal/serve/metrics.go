package serve

import (
	"expvar"
	"io"
	"sort"
	"sync"
	"time"

	"emsim/internal/obs"
)

// latencyRingSize is the number of recent request latencies the
// percentile window holds. A power of two keeps the ring index a mask.
const latencyRingSize = 1024

// latencyRing is a fixed-size ring of recent request latencies. Writers
// are the scheduler's workers (one observation per completed job);
// readers are /varz scrapes, which copy the window out under the lock
// and sort the copy, so a scrape never blocks the hot path for more
// than the copy. It backs the /varz percentile summary; the cumulative
// Prometheus histograms live in the obs registry.
type latencyRing struct {
	mu    sync.Mutex
	buf   [latencyRingSize]float64 // milliseconds
	count uint64                   // total observations ever
}

func (r *latencyRing) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.buf[r.count&(latencyRingSize-1)] = ms
	r.count++
	r.mu.Unlock()
}

// summary returns the ring's percentile snapshot; the map shape makes it
// directly consumable by expvar.Func.
func (r *latencyRing) summary() map[string]float64 {
	r.mu.Lock()
	n := int(r.count)
	if n > latencyRingSize {
		n = latencyRingSize
	}
	window := make([]float64, n)
	copy(window, r.buf[:n])
	count := r.count
	r.mu.Unlock()

	sort.Float64s(window)
	pick := func(p float64) float64 {
		if len(window) == 0 {
			return 0
		}
		i := int(p * float64(len(window)-1))
		return window[i]
	}
	return map[string]float64{
		"count":  float64(count),
		"p50_ms": pick(0.50),
		"p90_ms": pick(0.90),
		"p99_ms": pick(0.99),
		"max_ms": pick(1.0),
	}
}

// metrics is the server's observable state. Every counter and gauge
// lives in a per-server obs.Registry (rendered at GET /metrics in
// Prometheus text format) and is simultaneously bridged into an
// expvar.Map so the established /varz JSON keys keep their exact shape.
// The registry is per-server — not process-global — so tests can build
// many servers without duplicate-registration panics; cmd/emsim-serve
// additionally publishes the expvar map globally once.
type metrics struct {
	reg *obs.Registry

	queueDepth *obs.Gauge   // jobs accepted but not yet picked up
	inFlight   *obs.Gauge   // jobs currently executing on a worker
	requests   *obs.Counter // requests accepted into the queue
	rejected   *obs.Counter // requests shed with 429 (queue full)
	cancelled  *obs.Counter // jobs that ended with a cancelled context
	cycles     *obs.Counter // total simulated clock cycles
	latency    latencyRing

	// reqLatency holds the per-endpoint request-duration histograms,
	// keyed by the job's endpoint label ("" falls back to "other").
	reqLatency map[string]*obs.Histogram

	trainsSubmitted *obs.Counter // training jobs accepted
	trainsActive    *obs.Gauge   // training jobs queued or running
	trainsDone      *obs.Counter // training jobs that fitted a model
	trainsFailed    *obs.Counter // training jobs that ended in error
	trainsCancelled *obs.Counter // training jobs cancelled by the client or drain

	// phaseLatency records per-phase training campaign durations, by
	// core.Phase index.
	phaseLatency []*obs.Histogram

	defendsSubmitted *obs.Counter // defense-evaluation jobs accepted
	defendsActive    *obs.Gauge   // defense-evaluation jobs queued or running
	defendsDone      *obs.Counter // defense-evaluation jobs that produced a report
	defendsFailed    *obs.Counter // defense-evaluation jobs that ended in error
	defendsCancelled *obs.Counter // defense-evaluation jobs cancelled by the client or drain

	tvlaTraces   *obs.Counter // traces simulated by /v1/tvla assessments
	defendTraces *obs.Counter // traces simulated by defense-evaluation campaigns
	// tvlaAnalysis records the statistic-extraction (snapshot) phase of a
	// /v1/tvla assessment — with streaming accumulators this is the only
	// analysis cost left; simulation dominates the rest of the request.
	tvlaAnalysis *obs.Histogram

	vars expvar.Map
}

// endpoints are the request-duration histogram labels; jobs carry one.
var endpoints = []string{"simulate", "tvla", "savat", "attribute", "other"}

func newMetrics(phases []string) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:        reg,
		queueDepth: reg.Gauge("emsim_queue_depth", "jobs accepted but not yet picked up"),
		inFlight:   reg.Gauge("emsim_jobs_in_flight", "jobs currently executing on a worker"),
		requests:   reg.Counter("emsim_requests_accepted_total", "requests accepted into the queue"),
		rejected:   reg.Counter("emsim_requests_rejected_total", "requests shed with 429 (queue full)"),
		cancelled:  reg.Counter("emsim_requests_cancelled_total", "jobs that ended with a cancelled context"),
		cycles:     reg.Counter("emsim_simulated_cycles_total", "total simulated clock cycles"),

		trainsSubmitted: reg.Counter("emsim_train_jobs_submitted_total", "training jobs accepted"),
		trainsActive:    reg.Gauge("emsim_train_jobs_active", "training jobs queued or running"),
		trainsDone:      reg.Counter("emsim_train_jobs_total", "finished training jobs by outcome", "state", "done"),
		trainsFailed:    reg.Counter("emsim_train_jobs_total", "", "state", "failed"),
		trainsCancelled: reg.Counter("emsim_train_jobs_total", "", "state", "cancelled"),

		defendsSubmitted: reg.Counter("emsim_defend_jobs_submitted_total", "defense-evaluation jobs accepted"),
		defendsActive:    reg.Gauge("emsim_defend_jobs_active", "defense-evaluation jobs queued or running"),
		defendsDone:      reg.Counter("emsim_defend_jobs_total", "finished defense-evaluation jobs by outcome", "state", "done"),
		defendsFailed:    reg.Counter("emsim_defend_jobs_total", "", "state", "failed"),
		defendsCancelled: reg.Counter("emsim_defend_jobs_total", "", "state", "cancelled"),

		tvlaTraces:   reg.Counter("emsim_tvla_traces_total", "traces simulated by /v1/tvla assessments"),
		defendTraces: reg.Counter("emsim_defend_traces_total", "traces simulated by defense-evaluation campaigns"),
		tvlaAnalysis: reg.Histogram("emsim_tvla_analysis_seconds", "statistic-extraction time of a /v1/tvla assessment", nil),
	}
	m.reqLatency = make(map[string]*obs.Histogram, len(endpoints))
	help := "request execution time on a worker, by endpoint"
	for _, ep := range endpoints {
		m.reqLatency[ep] = reg.Histogram("emsim_request_duration_seconds", help, nil, "endpoint", ep)
		help = ""
	}
	help = "training campaign phase duration"
	for _, p := range phases {
		m.phaseLatency = append(m.phaseLatency,
			reg.Histogram("emsim_train_phase_duration_seconds", help, nil, "phase", p))
		help = ""
	}

	// The /varz bridge: identical JSON keys to the pre-registry expvar
	// era, read through the registry handles.
	intVar := func(v interface{ Value() int64 }) expvar.Func {
		return func() any { return v.Value() }
	}
	m.vars.Init()
	m.vars.Set("queue_depth", intVar(m.queueDepth))
	m.vars.Set("in_flight", intVar(m.inFlight))
	m.vars.Set("requests_accepted", intVar(m.requests))
	m.vars.Set("requests_rejected", intVar(m.rejected))
	m.vars.Set("requests_cancelled", intVar(m.cancelled))
	m.vars.Set("cycles_simulated", intVar(m.cycles))
	m.vars.Set("latency", expvar.Func(func() any { return m.latency.summary() }))
	m.vars.Set("trains_submitted", intVar(m.trainsSubmitted))
	m.vars.Set("trains_active", intVar(m.trainsActive))
	m.vars.Set("trains_done", intVar(m.trainsDone))
	m.vars.Set("trains_failed", intVar(m.trainsFailed))
	m.vars.Set("trains_cancelled", intVar(m.trainsCancelled))
	m.vars.Set("defends_submitted", intVar(m.defendsSubmitted))
	m.vars.Set("defends_active", intVar(m.defendsActive))
	m.vars.Set("defends_done", intVar(m.defendsDone))
	m.vars.Set("defends_failed", intVar(m.defendsFailed))
	m.vars.Set("defends_cancelled", intVar(m.defendsCancelled))
	m.vars.Set("tvla_traces", intVar(m.tvlaTraces))
	m.vars.Set("defend_traces", intVar(m.defendTraces))
	return m
}

// observeRequest records one completed job's execution time into the
// /varz percentile ring and the endpoint's Prometheus histogram.
func (m *metrics) observeRequest(endpoint string, d time.Duration) {
	m.latency.observe(d)
	h := m.reqLatency[endpoint]
	if h == nil {
		h = m.reqLatency["other"]
	}
	h.Observe(d.Seconds())
}

// observePhase records one training phase's campaign duration.
func (m *metrics) observePhase(phase int, d time.Duration) {
	if phase >= 0 && phase < len(m.phaseLatency) {
		m.phaseLatency[phase].Observe(d.Seconds())
	}
}

// writePrometheus renders the registry for GET /metrics.
func (m *metrics) writePrometheus(w io.Writer) error { return m.reg.WritePrometheus(w) }

// Vars exposes the metrics map so cmd/emsim-serve can publish it in the
// process-global expvar namespace.
func (m *metrics) Vars() *expvar.Map { return &m.vars }
