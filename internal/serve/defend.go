package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"emsim/internal/defend"
	"emsim/internal/obs"
)

// spanDefendJob covers one defense evaluation's execution, on a lane
// claimed per job.
var spanDefendJob = obs.RegisterSpan("serve.defend-job")

// This file is the asynchronous countermeasure-evaluation surface:
// POST /v1/defend submits a defend.Evaluate campaign against the
// server's model and returns a job ID; GET /v1/defend/{id} reports
// per-arm trace progress and, once done, the SecurityReport; DELETE
// cancels. A campaign simulates on the order of a thousand AES traces
// per arm, so jobs run on their own goroutines gated by a small
// semaphore — the same shape as the training registry — rather than
// through the simulation worker pool.

// Defense job states (shared vocabulary with training jobs).
const (
	defendQueued    = "queued"
	defendRunning   = "running"
	defendDone      = "done"
	defendFailed    = "failed"
	defendCancelled = "cancelled"
)

// defendRequest is the POST /v1/defend body. Zero-valued campaign
// fields take the defend.Options defaults.
type defendRequest struct {
	// Defense is the countermeasure spec, e.g. "shuffle",
	// "shuffle:window=16", "dummy:rate=0.2", "jitter:rate=0.1,region=64".
	Defense string `json:"defense"`
	Seed    int64  `json:"seed"`
	// Workers overrides the server's per-campaign simulation fan-out.
	Workers    int     `json:"workers"`
	TVLATraces int     `json:"tvla_traces"`
	CPATraces  int     `json:"cpa_traces"`
	CPAStep    int     `json:"cpa_step"`
	CPAPoints  int     `json:"cpa_points"`
	NoiseStd   float64 `json:"noise_std"`
}

// defendStatus is the wire form of a job snapshot.
type defendStatus struct {
	ID        string          `json:"job_id"`
	State     string          `json:"state"`
	Arm       string          `json:"arm,omitempty"` // campaign arm currently simulating
	Done      int             `json:"done"`          // traces simulated across both arms
	Total     int             `json:"total"`
	ElapsedMS int64           `json:"elapsed_ms"`
	Error     string          `json:"error,omitempty"`
	Report    json.RawMessage `json:"report,omitempty"`
}

// defendJob is one evaluation campaign and its observable state.
type defendJob struct {
	id     string
	cancel context.CancelFunc
	met    *metrics

	mu       sync.Mutex
	state    string
	arm      string
	armDone  map[string]int // per-arm trace progress
	armTotal int            // traces per arm
	started  time.Time
	elapsed  time.Duration // frozen at completion
	err      string
	report   []byte // serialized SecurityReport, set when state == done
	finished bool
}

// observe is the Evaluate progress callback. Arms run sequentially (so
// the most recent arm is the live one) but within an arm the simulation
// workers invoke it concurrently, with counts possibly out of order;
// stale per-arm counts are dropped to keep the totals monotonic.
func (j *defendJob) observe(arm string, done, total int) {
	j.mu.Lock()
	j.arm = arm
	delta := done - j.armDone[arm]
	if delta > 0 {
		j.armDone[arm] = done
	}
	j.armTotal = total
	j.mu.Unlock()
	if delta > 0 && j.met != nil { // met is nil only in unit tests building bare jobs
		j.met.defendTraces.Add(int64(delta))
	}
}

func (j *defendJob) setRunning() {
	j.mu.Lock()
	j.state = defendRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// finish records the campaign outcome exactly once. The error is
// rendered before taking the lock: Error is foreign code and has no
// business inside the critical section.
func (j *defendJob) finish(report []byte, err error) {
	var msg string
	if err != nil {
		msg = err.Error()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return
	}
	j.finished = true
	if !j.started.IsZero() {
		j.elapsed = time.Since(j.started)
	}
	switch {
	case err == nil:
		j.state = defendDone
		j.report = report
	case errors.Is(err, context.Canceled):
		j.state = defendCancelled
	default:
		j.state = defendFailed
		j.err = msg
	}
}

// status snapshots the job for the wire, including the report only when
// asked.
func (j *defendJob) status(withReport bool) defendStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := defendStatus{
		ID:    j.id,
		State: j.state,
		Arm:   j.arm,
		Total: 2 * j.armTotal,
		Error: j.err,
	}
	for _, d := range j.armDone {
		st.Done += d
	}
	switch {
	case j.finished:
		st.ElapsedMS = j.elapsed.Milliseconds()
	case !j.started.IsZero():
		st.ElapsedMS = time.Since(j.started).Milliseconds()
	}
	if withReport && j.state == defendDone {
		st.Report = json.RawMessage(j.report)
	}
	return st
}

// defendRegistry owns every defense-evaluation job of one server:
// submission, lookup, the run-concurrency semaphore and drain-time
// cancellation.
type defendRegistry struct {
	base context.Context // parent of every job context (Config.BaseContext)
	sem  chan struct{}
	met  *metrics

	mu     sync.Mutex
	jobs   map[string]*defendJob
	order  []string // insertion order, for bounded eviction
	nextID int
	closed bool
	wg     sync.WaitGroup
}

func newDefendRegistry(base context.Context, concurrent int, met *metrics) *defendRegistry {
	return &defendRegistry{
		base: base,
		sem:  make(chan struct{}, concurrent),
		met:  met,
		jobs: map[string]*defendJob{},
	}
}

// maxDefendRecords bounds the registry; above it, submission evicts the
// oldest finished job or sheds the request.
const maxDefendRecords = 64

// submit registers a campaign and starts its runner goroutine. The
// returned error is nil, errQueueFull (registry full of live jobs) or
// errDraining.
func (dr *defendRegistry) submit(opts defend.Options) (*defendJob, error) {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	if dr.closed {
		return nil, errDraining
	}
	if len(dr.jobs) >= maxDefendRecords && !dr.evictLocked() {
		return nil, errQueueFull
	}
	dr.nextID++
	ctx, cancel := context.WithCancel(dr.base)
	j := &defendJob{
		id:      fmt.Sprintf("defend-%d", dr.nextID),
		cancel:  cancel,
		met:     dr.met,
		state:   defendQueued,
		armDone: map[string]int{},
	}
	opts.Progress = j.observe
	dr.jobs[j.id] = j
	dr.order = append(dr.order, j.id)
	dr.met.defendsSubmitted.Add(1)
	dr.met.defendsActive.Add(1)
	dr.wg.Add(1)
	go dr.run(ctx, j, opts)
	return j, nil
}

// evictLocked drops the oldest finished job; it reports whether a slot
// was freed. Callers hold dr.mu.
func (dr *defendRegistry) evictLocked() bool {
	for i, id := range dr.order {
		j := dr.jobs[id]
		j.mu.Lock()
		finished := j.finished
		j.mu.Unlock()
		if finished {
			delete(dr.jobs, id)
			dr.order = append(dr.order[:i], dr.order[i+1:]...)
			return true
		}
	}
	return false
}

// get looks a job up by ID.
func (dr *defendRegistry) get(id string) *defendJob {
	dr.mu.Lock()
	defer dr.mu.Unlock()
	return dr.jobs[id]
}

// run executes one campaign: wait for a concurrency slot, run the
// evaluation and record the outcome on the job.
func (dr *defendRegistry) run(ctx context.Context, j *defendJob, opts defend.Options) {
	defer dr.wg.Done()
	defer dr.met.defendsActive.Add(-1)
	finish := func(report []byte, err error) {
		j.finish(report, err)
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		switch state {
		case defendDone:
			dr.met.defendsDone.Add(1)
		case defendCancelled:
			dr.met.defendsCancelled.Add(1)
		default:
			dr.met.defendsFailed.Add(1)
		}
	}

	select {
	case dr.sem <- struct{}{}:
		defer func() { <-dr.sem }()
	case <-ctx.Done():
		finish(nil, ctx.Err())
		return
	}
	j.setRunning()
	lane := obs.NextLane()
	obs.Begin(spanDefendJob, lane)
	defer obs.End(spanDefendJob, lane)
	report, err := defend.Evaluate(ctx, opts)
	if err != nil {
		finish(nil, err)
		return
	}
	data, err := json.Marshal(report)
	if err != nil {
		finish(nil, err)
		return
	}
	finish(data, nil)
}

// drain cancels every live campaign and waits for all runner goroutines
// to exit. Safe to call more than once. Jobs are snapshotted under the
// lock but cancelled outside it: cancel funcs run foreign Done-channel
// machinery, and submit already refuses new jobs once closed is set.
func (dr *defendRegistry) drain() {
	dr.mu.Lock()
	dr.closed = true
	jobs := make([]*defendJob, 0, len(dr.jobs))
	for _, j := range dr.jobs {
		jobs = append(jobs, j)
	}
	dr.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	dr.wg.Wait()
}

// ---- HTTP handlers ----

func (s *Server) handleDefendSubmit(w http.ResponseWriter, r *http.Request) {
	var req defendRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: %v", err)
		return
	}
	spec, err := defend.ParseSpec(req.Defense)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Seed < 0 || req.Workers < 0 || req.TVLATraces < 0 || req.CPATraces < 0 ||
		req.CPAStep < 0 || req.CPAPoints < 0 || req.NoiseStd < 0 {
		writeError(w, http.StatusBadRequest, "campaign fields must be non-negative")
		return
	}
	if req.TVLATraces > s.cfg.MaxDefendTraces || req.CPATraces > s.cfg.MaxDefendTraces {
		writeError(w, http.StatusBadRequest, "trace budget exceeds limit %d", s.cfg.MaxDefendTraces)
		return
	}
	// Reject undersized budgets at the API edge with the same guard the
	// evaluator applies, instead of accepting the job and failing it.
	if err := defend.CheckBudget(req.TVLATraces, req.CPATraces, req.CPAStep); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	opts := defend.Options{
		Model:      s.model,
		CPU:        s.cfg.CPU,
		Defense:    spec,
		Seed:       req.Seed,
		Workers:    req.Workers,
		TVLATraces: req.TVLATraces,
		CPATraces:  req.CPATraces,
		CPAStep:    req.CPAStep,
		CPAPoints:  req.CPAPoints,
		NoiseStd:   req.NoiseStd,
	}
	if opts.Workers == 0 {
		opts.Workers = s.cfg.DefendWorkers
	}

	j, err := s.defends.submit(opts)
	if err != nil {
		s.shed(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status(false))
}

func (s *Server) handleDefendStatus(w http.ResponseWriter, r *http.Request) {
	j := s.defends.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such defense job")
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

func (s *Server) handleDefendCancel(w http.ResponseWriter, r *http.Request) {
	j := s.defends.get(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such defense job")
		return
	}
	// Cancellation is asynchronous: the campaign unwinds within one
	// context-check interval per in-flight worker; poll for "cancelled".
	j.cancel()
	writeJSON(w, http.StatusAccepted, j.status(false))
}
