package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"emsim/internal/defend"
)

// pollDefend polls one defense job until its state leaves the given set
// or the deadline passes, returning the last status seen.
func pollDefend(t *testing.T, url, id string, while ...string) defendStatus {
	t.Helper()
	transient := map[string]bool{}
	for _, s := range while {
		transient[s] = true
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/v1/defend/%s", url, id))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d: %s", resp.StatusCode, data)
		}
		var st defendStatus
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("poll: decode: %v", err)
		}
		if !transient[st.State] || time.Now().After(deadline) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func submitDefend(t *testing.T, url string, req defendRequest) (defendStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/defend", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var st defendStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("submit: decode: %v (%s)", err, data)
		}
	}
	return st, resp
}

func TestDefendJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st, resp := submitDefend(t, ts.URL, defendRequest{
		Defense:    "dummy:rate=0.2",
		Seed:       3,
		TVLATraces: 4,
		CPATraces:  12,
		CPAStep:    12,
		CPAPoints:  32,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if st.ID == "" || st.State != defendQueued {
		t.Fatalf("submit: unexpected status %+v", st)
	}

	final := pollDefend(t, ts.URL, st.ID, defendQueued, defendRunning)
	if final.State != defendDone {
		t.Fatalf("job ended %q (error %q), want done", final.State, final.Error)
	}
	if final.Done != final.Total || final.Total != 2*(12+2*4) {
		t.Fatalf("progress %d/%d, want %d/%d", final.Done, final.Total, 2*(12+2*4), 2*(12+2*4))
	}
	var report defend.SecurityReport
	if err := json.Unmarshal(final.Report, &report); err != nil {
		t.Fatalf("report: %v", err)
	}
	if report.Defense != "dummy:rate=0.2" {
		t.Errorf("report defense %q", report.Defense)
	}
	if report.Baseline.MeanCycles <= 0 || report.Defended.MeanCycles <= report.Baseline.MeanCycles {
		t.Errorf("suspicious cycle counts: baseline %.1f defended %.1f",
			report.Baseline.MeanCycles, report.Defended.MeanCycles)
	}
}

func TestDefendValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDefendTraces: 100})
	cases := []defendRequest{
		{},                                    // missing defense
		{Defense: "mask"},                     // unknown defense
		{Defense: "shuffle", Seed: -1},        // negative field
		{Defense: "shuffle", CPATraces: 101},  // over the budget cap
		{Defense: "shuffle", TVLATraces: 101}, // over the budget cap
		{Defense: "dummy:rate=2"},             // out-of-range parameter
	}
	for _, req := range cases {
		_, resp := submitDefend(t, ts.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", req, resp.StatusCode)
		}
	}
}

func TestDefendCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	st, resp := submitDefend(t, ts.URL, defendRequest{
		Defense:    "jitter:rate=0.3,region=16",
		TVLATraces: 64,
		CPATraces:  512,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/defend/%s", ts.URL, st.ID), nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", dresp.StatusCode)
	}
	final := pollDefend(t, ts.URL, st.ID, defendQueued, defendRunning)
	if final.State != defendCancelled {
		t.Fatalf("job ended %q, want cancelled", final.State)
	}
}

func TestDefendUnknownJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/defend/defend-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}
