// Package linalg provides the dense linear algebra EMSim's regression
// models need: matrices, Householder-QR least squares, and Cholesky
// factorization. It is deliberately small — just enough numerical
// machinery for the paper's model fitting — and uses no dependencies
// beyond the standard library.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must all share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: mul shape mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			//emsim:ignore floatcmp skipping exactly-zero entries cannot change the product; it only exploits sparsity
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

// MulVec returns m·x as a vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: mulvec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// LeastSquares solves min ‖A·x − b‖₂ via Householder QR with column checks.
// A must have Rows >= Cols and full column rank (within eps); otherwise an
// error is returned.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != len(b) {
		return nil, fmt.Errorf("linalg: A has %d rows but b has %d entries", a.Rows, len(b))
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", a.Rows, a.Cols)
	}
	m, n := a.Rows, a.Cols
	r := a.Clone()
	y := make([]float64, m)
	copy(y, b)

	// Rank-deficiency tolerance relative to the matrix magnitude.
	scale := 0.0
	for _, v := range a.Data {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	tol := 1e-12 * scale * float64(m)

	// Householder QR, applying reflections to y as we go.
	for k := 0; k < n; k++ {
		// Build the reflector for column k below the diagonal.
		norm := 0.0
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm <= tol {
			return nil, fmt.Errorf("linalg: rank-deficient matrix (column %d)", k)
		}
		// Choose the reflection sign that moves the pivot away from zero
		// (avoids cancellation in the v_k = 1 + a_kk/norm term).
		if r.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			r.Set(i, k, r.At(i, k)/norm)
		}
		r.Set(k, k, r.At(k, k)+1)

		// Apply to remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += r.At(i, k) * r.At(i, j)
			}
			s = -s / r.At(k, k)
			for i := k; i < m; i++ {
				r.Set(i, j, r.At(i, j)+s*r.At(i, k))
			}
		}
		// Apply to y.
		s := 0.0
		for i := k; i < m; i++ {
			s += r.At(i, k) * y[i]
		}
		s = -s / r.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * r.At(i, k)
		}
		r.Set(k, k, -norm) // R's diagonal; the reflector's v is dead now
	}

	// Back-substitute R·x = y[:n]; R's upper triangle (including the
	// just-stored diagonal) lives in r.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-300 {
			return nil, fmt.Errorf("linalg: singular R at %d", i)
		}
		x[i] = s / d
	}
	return x, nil
}

// Cholesky factors a symmetric positive-definite matrix as L·Lᵀ and
// returns L (lower triangular). It errors on non-SPD input.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite at %d (pivot %g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b for SPD A using a Cholesky factorization.
func SolveCholesky(a *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: b has %d entries, want %d", len(b), n)
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
