package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEqual(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Fatal("At/Set broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
	if got := m.Col(2); got[0] != 0 || got[1] != 5 {
		t.Errorf("Col = %v", got)
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Error("transpose broken")
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged rows accepted")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMatrixMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 1, 1})
	if !vecAlmostEqual(got, []float64{6, 15}, 1e-12) {
		t.Errorf("MulVec = %v", got)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot broken")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Error("Norm2 broken")
	}
}

func TestLeastSquaresExactSolve(t *testing.T) {
	// Square nonsingular system: exact solution.
	a := FromRows([][]float64{
		{2, 1, 0},
		{1, 3, 1},
		{0, 1, 4},
	})
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(got, want, 1e-9) {
		t.Errorf("solution = %v, want %v", got, want)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 2 + 3x to noisy-free samples: intercept/slope recovered.
	xs := []float64{0, 1, 2, 3, 4, 5}
	a := NewMatrix(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	got, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(got, []float64{2, 3}, 1e-9) {
		t.Errorf("fit = %v, want [2 3]", got)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The residual of a least-squares solution must be orthogonal to the
	// column space: Aᵀ(Ax − b) ≈ 0.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		m, n := 30, 5
		a := NewMatrix(m, n)
		b := make([]float64, m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
			b[i] = r.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		res := a.MulVec(x)
		for i := range res {
			res[i] -= b[i]
		}
		atr := a.T().MulVec(res)
		for j, v := range atr {
			if math.Abs(v) > 1e-8 {
				t.Fatalf("trial %d: residual not orthogonal: (Aᵀr)[%d] = %g", trial, j, v)
			}
		}
	}
}

func TestLeastSquaresRecoversRandomModel(t *testing.T) {
	// quick.Check-style property: for random well-conditioned systems with
	// exact data, the planted coefficients are recovered.
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		n := 2 + r.Intn(6)
		m := n + 5 + r.Intn(20)
		a := NewMatrix(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.NormFloat64())
			}
		}
		want := make([]float64, n)
		for j := range want {
			want[j] = r.NormFloat64() * 10
		}
		b := a.MulVec(want)
		got, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		return vecAlmostEqual(got, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := LeastSquares(a, []float64{1, 2}); err == nil {
		t.Error("underdetermined accepted")
	}
	a = NewMatrix(3, 2)
	if _, err := LeastSquares(a, []float64{1, 2}); err == nil {
		t.Error("shape mismatch accepted")
	}
	// Rank-deficient: duplicate columns.
	a = FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Error("rank-deficient accepted")
	}
}

func TestCholesky(t *testing.T) {
	a := FromRows([][]float64{
		{4, 2, 2},
		{2, 5, 3},
		{2, 3, 6},
	})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L·Lᵀ must reproduce A.
	llt := l.Mul(l.T())
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(llt.At(i, j), a.At(i, j), 1e-9) {
				t.Errorf("LLᵀ[%d][%d] = %v, want %v", i, j, llt.At(i, j), a.At(i, j))
			}
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	if _, err := Cholesky(FromRows([][]float64{{1, 2}, {2, 1}})); err == nil {
		t.Error("indefinite matrix accepted")
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

func TestSolveCholesky(t *testing.T) {
	a := FromRows([][]float64{
		{4, 2, 2},
		{2, 5, 3},
		{2, 3, 6},
	})
	want := []float64{1, 2, -1}
	b := a.MulVec(want)
	got, err := SolveCholesky(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(got, want, 1e-9) {
		t.Errorf("solution = %v, want %v", got, want)
	}
	if _, err := SolveCholesky(a, []float64{1}); err == nil {
		t.Error("bad b length accepted")
	}
}

func TestQRAgreesWithCholeskyOnNormalEquations(t *testing.T) {
	// For a well-conditioned system, QR least squares and the normal
	// equations (AᵀA x = Aᵀb via Cholesky) must agree.
	r := rand.New(rand.NewSource(5))
	m, n := 40, 6
	a := NewMatrix(m, n)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
		b[i] = r.NormFloat64()
	}
	x1, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	at := a.T()
	x2, err := SolveCholesky(at.Mul(a), at.MulVec(b))
	if err != nil {
		t.Fatal(err)
	}
	if !vecAlmostEqual(x1, x2, 1e-6) {
		t.Errorf("QR %v vs normal equations %v", x1, x2)
	}
}

func BenchmarkLeastSquares100x20(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	m, n := 100, 20
	a := NewMatrix(m, n)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, r.NormFloat64())
		}
		rhs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	a := NewMatrix(64, 64)
	c := NewMatrix(64, 64)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
		c.Data[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Mul(c)
	}
}
