package cpu

import (
	"fmt"

	"emsim/internal/isa"
	"emsim/internal/mem"
)

// ISS is a plain functional instruction-set simulator: one instruction per
// step, no pipeline, no cache timing. It serves as the architectural
// reference the pipelined core is validated against (the paper similarly
// "extensively tested the correctness of the processor's implementation"
// before measuring it).
type ISS struct {
	Mem  *mem.Memory
	Regs [isa.NumRegs]uint32
	PC   uint32

	halted   bool
	executed int
	maxSteps int
}

// NewISS returns a reference simulator with an empty memory.
func NewISS() *ISS {
	return &ISS{Mem: mem.NewMemory(), maxSteps: 10_000_000}
}

// Halted reports whether ECALL/EBREAK executed.
func (s *ISS) Halted() bool { return s.halted }

// Executed returns the number of instructions executed.
func (s *ISS) Executed() int { return s.executed }

// LoadProgram writes instruction words at addr.
func (s *ISS) LoadProgram(addr uint32, words []uint32) { s.Mem.LoadWords(addr, words) }

// Step executes one instruction.
func (s *ISS) Step() error {
	if s.halted {
		return fmt.Errorf("iss: step after halt")
	}
	word := s.Mem.ReadWord(s.PC)
	in, err := isa.Decode(word)
	if err != nil {
		return fmt.Errorf("iss: at pc %#x: %w", s.PC, err)
	}
	next := s.PC + 4
	rs1 := s.Regs[in.Rs1]
	rs2 := s.Regs[in.Rs2]

	var rd uint32
	writeRd := in.Op.WritesRd()

	switch {
	case in.Op == isa.LUI:
		rd = uint32(in.Imm) << 12
	case in.Op == isa.AUIPC:
		rd = s.PC + uint32(in.Imm)<<12
	case in.Op == isa.JAL:
		rd = s.PC + 4
		next = s.PC + uint32(in.Imm)
	case in.Op == isa.JALR:
		rd = s.PC + 4
		next = (rs1 + uint32(in.Imm)) &^ 1
	case in.Op.IsBranch():
		if branchTaken(in.Op, rs1, rs2) {
			next = s.PC + uint32(in.Imm)
		}
	case in.Op.IsLoad():
		addr := rs1 + uint32(in.Imm)
		switch in.Op {
		case isa.LB:
			rd = uint32(int32(int8(s.Mem.LoadByte(addr))))
		case isa.LBU:
			rd = uint32(s.Mem.LoadByte(addr))
		case isa.LH:
			rd = uint32(int32(int16(s.Mem.ReadHalf(addr))))
		case isa.LHU:
			rd = uint32(s.Mem.ReadHalf(addr))
		case isa.LW:
			rd = s.Mem.ReadWord(addr)
		}
	case in.Op.IsStore():
		addr := rs1 + uint32(in.Imm)
		switch in.Op {
		case isa.SB:
			s.Mem.StoreByte(addr, byte(rs2))
		case isa.SH:
			s.Mem.WriteHalf(addr, uint16(rs2))
		case isa.SW:
			s.Mem.WriteWord(addr, rs2)
		}
	case in.Op.IsSystem():
		s.halted = true
	case in.Op == isa.FENCE:
		// no-op
	case in.Op.Format() == isa.FormatR:
		rd = aluOp(in.Op, rs1, rs2)
	default: // register-immediate ALU
		rd = aluOp(in.Op, rs1, uint32(in.Imm))
	}

	if writeRd && in.Rd != isa.Zero {
		s.Regs[in.Rd] = rd
	}
	s.PC = next
	s.executed++
	return nil
}

// Run executes until halt or the step limit.
func (s *ISS) Run() error {
	for !s.halted {
		if s.executed >= s.maxSteps {
			return fmt.Errorf("iss: exceeded %d instructions without halting", s.maxSteps)
		}
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunProgram resets architectural state, loads words at address 0 and runs.
func (s *ISS) RunProgram(words []uint32) error {
	s.Regs = [isa.NumRegs]uint32{}
	s.PC = 0
	s.halted = false
	s.executed = 0
	s.Mem.Reset()
	s.LoadProgram(0, words)
	return s.Run()
}
