package cpu

import "emsim/internal/isa"

// aluOp computes the result of an ALU-class instruction given its two
// operand values. Loads/stores use it for address generation (op b is the
// immediate). It implements the RV32IM semantics including the division
// corner cases mandated by the spec (divide by zero, signed overflow).
func aluOp(op isa.Op, a, b uint32) uint32 {
	switch op {
	case isa.ADD, isa.ADDI, isa.AUIPC, isa.JAL, isa.JALR,
		isa.LB, isa.LH, isa.LW, isa.LBU, isa.LHU,
		isa.SB, isa.SH, isa.SW:
		return a + b
	case isa.SUB:
		return a - b
	case isa.SLL, isa.SLLI:
		return a << (b & 31)
	case isa.SLT, isa.SLTI:
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	case isa.SLTU, isa.SLTIU:
		if a < b {
			return 1
		}
		return 0
	case isa.XOR, isa.XORI:
		return a ^ b
	case isa.SRL, isa.SRLI:
		return a >> (b & 31)
	case isa.SRA, isa.SRAI:
		return uint32(int32(a) >> (b & 31))
	case isa.OR, isa.ORI:
		return a | b
	case isa.AND, isa.ANDI:
		return a & b
	case isa.LUI:
		return b // operand b carries imm<<12
	case isa.MUL:
		return a * b
	case isa.MULH:
		return uint32((int64(int32(a)) * int64(int32(b))) >> 32)
	case isa.MULHSU:
		return uint32((int64(int32(a)) * int64(uint32(b))) >> 32)
	case isa.MULHU:
		return uint32((uint64(a) * uint64(b)) >> 32)
	case isa.DIV:
		if b == 0 {
			return 0xFFFFFFFF
		}
		if int32(a) == -0x80000000 && int32(b) == -1 {
			return a // overflow: result is the dividend
		}
		return uint32(int32(a) / int32(b))
	case isa.DIVU:
		if b == 0 {
			return 0xFFFFFFFF
		}
		return a / b
	case isa.REM:
		if b == 0 {
			return a
		}
		if int32(a) == -0x80000000 && int32(b) == -1 {
			return 0
		}
		return uint32(int32(a) % int32(b))
	case isa.REMU:
		if b == 0 {
			return a
		}
		return a % b
	}
	return 0
}

// branchTaken evaluates a conditional branch's direction.
func branchTaken(op isa.Op, a, b uint32) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return int32(a) < int32(b)
	case isa.BGE:
		return int32(a) >= int32(b)
	case isa.BLTU:
		return a < b
	case isa.BGEU:
		return a >= b
	}
	return false
}
