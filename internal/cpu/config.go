package cpu

import (
	"fmt"

	"emsim/internal/bpred"
	"emsim/internal/mem"
)

// PredictorKind selects the branch direction predictor, mirroring the
// predictor comparison in §IV of the paper.
type PredictorKind int

// Supported direction predictors.
const (
	PredictTwoLevel PredictorKind = iota // paper default (Yeh–Patt + BTB)
	PredictGShare
	PredictBimodal
	PredictNotTaken
)

func (k PredictorKind) String() string {
	switch k {
	case PredictTwoLevel:
		return "two-level"
	case PredictGShare:
		return "gshare"
	case PredictBimodal:
		return "bimodal"
	case PredictNotTaken:
		return "not-taken"
	}
	return "unknown"
}

func (k PredictorKind) build() *bpred.Unit {
	switch k {
	case PredictGShare:
		return bpred.NewUnit(bpred.NewGShare(10), 9)
	case PredictBimodal:
		return bpred.NewUnit(bpred.NewBimodal(10), 9)
	case PredictNotTaken:
		return bpred.NewUnit(bpred.NewNotTaken(), 9)
	default:
		return bpred.DefaultUnit()
	}
}

// Config describes the microarchitecture of the simulated core. The zero
// value is not usable; start from DefaultConfig.
type Config struct {
	// Cache is the data-cache geometry and latency model.
	Cache mem.CacheConfig
	// Predictor selects the branch direction predictor.
	Predictor PredictorKind
	// MulLatency is the number of EX cycles a multiply occupies
	// (the paper's multiplier takes 3 cycles, cf. Figure 11; Figure 5
	// raises it to 8 for clarity).
	MulLatency int
	// DivLatency is the number of EX cycles a divide/remainder occupies.
	DivLatency int
	// Forwarding enables EX/MEM->EX and MEM/WB->EX operand bypassing.
	// The paper reports forwarding has no significant EM effect (§IV);
	// disabling it forces stalls on every RAW hazard instead.
	Forwarding bool
	// BuggyMul injects the hardware defect of Figure 11: the multiplier
	// uses only the low 8 bits of each operand, producing both a wrong
	// architectural result and far fewer output-latch bit flips.
	BuggyMul bool
	// ResetVector is the PC at power-on.
	ResetVector uint32
	// MaxCycles bounds a single Run as a runaway-program guard.
	MaxCycles int
}

// DefaultConfig returns the paper's processor configuration (§II-A).
func DefaultConfig() Config {
	return Config{
		Cache:     mem.DefaultCacheConfig(),
		Predictor: PredictTwoLevel,
		// The paper's Table I clusters MUL and DIV together, implying the
		// shared iterative unit serves both with the same latency.
		MulLatency:  3,
		DivLatency:  3,
		Forwarding:  true,
		ResetVector: 0,
		MaxCycles:   2_000_000,
	}
}

func (c Config) validate() error {
	if c.MulLatency < 1 || c.DivLatency < 1 {
		return fmt.Errorf("cpu: mul/div latency must be >= 1 (got %d/%d)", c.MulLatency, c.DivLatency)
	}
	if c.MaxCycles < 1 {
		return fmt.Errorf("cpu: MaxCycles must be positive")
	}
	cfg := c.Cache
	if _, err := mem.NewCache(cfg); err != nil {
		return err
	}
	return nil
}
