package cpu

import (
	"math/bits"

	"emsim/internal/isa"
)

// Stage identifies one of the five classic pipeline stages. The paper
// models each stage as an independent EM source (§III-A).
type Stage int

// The five pipeline stages, in program order.
const (
	IF Stage = iota
	ID
	EX
	MEM
	WB

	NumStages = 5
)

var stageNames = [NumStages]string{"IF", "ID", "EX", "MEM", "WB"}

// String returns the conventional stage abbreviation.
func (s Stage) String() string {
	if s >= 0 && int(s) < NumStages {
		return stageNames[s]
	}
	return "??"
}

// MaxLatchWords is the per-stage pipeline-latch word budget. Each stage
// exposes up to this many 32-bit latch values as the basis of its
// data-dependent activity features (the T vector of Equ. 8).
const MaxLatchWords = 3

// LatchWords returns how many 32-bit latches stage s exposes. The
// switch is deliberately exhaustive (enforced by the stageexhaustive
// analyzer): a new stage must declare its latch budget before anything
// derives feature widths from it.
//
//emsim:noalloc
func LatchWords(s Stage) int {
	switch s {
	case IF:
		return 2 // PC, fetched instruction word
	case ID:
		return 3 // rs1 value, rs2 value, effective immediate
	case EX:
		return 3 // operand A, operand B, ALU result
	case MEM:
		return 2 // memory address, memory data (load result or store data)
	case WB:
		return 2 // writeback value, one-hot destination register
	default:
		panic("cpu: LatchWords of invalid stage")
	}
}

// FeatureBits returns the width of stage s's transition-bit feature vector.
//
//emsim:noalloc
func FeatureBits(s Stage) int { return 32 * LatchWords(s) }

// TotalFeatureBits is the width of the concatenated all-stage feature
// vector.
func TotalFeatureBits() int {
	total := 0
	for s := Stage(0); s < NumStages; s++ {
		total += FeatureBits(s)
	}
	return total
}

// StageTrace captures everything the EM model needs to know about one
// stage in one cycle.
type StageTrace struct {
	// Op is the mnemonic occupying the stage, or isa.OpInvalid for a
	// bubble (either a pipeline startup hole or a misprediction flush).
	Op isa.Op
	// Inst is the full decoded instruction (zero for bubbles).
	Inst isa.Inst
	// Seq is the dynamic instruction sequence number, -1 for bubbles.
	Seq int
	// Bubble marks an empty or flushed slot.
	Bubble bool
	// Stalled marks a stage frozen this cycle (its latches are preserved,
	// and per §IV the hardware power-gates it, collapsing its EM
	// amplitude).
	Stalled bool
	// CacheAccess / CacheHit describe the data-cache outcome when the
	// stage is MEM and the instruction accesses memory this cycle.
	CacheAccess bool
	CacheHit    bool
	// Latch holds the stage's current latch values; Flip is the XOR with
	// the previous cycle's values (the transition bits of Equ. 8).
	Latch [MaxLatchWords]uint32
	Flip  [MaxLatchWords]uint32
}

// FlipCount returns the total number of transition bits in the stage this
// cycle.
//
//emsim:noalloc
func (st *StageTrace) FlipCount() int {
	n := 0
	for _, f := range st.Flip {
		n += bits.OnesCount32(f)
	}
	return n
}

// FlipBit reports whether transition bit i (0-based across the stage's
// latch words) toggled this cycle.
//
//emsim:noalloc
func (st *StageTrace) FlipBit(i int) bool {
	return st.Flip[i/32]>>(uint(i)%32)&1 == 1
}

// Cluster returns the Table I cluster the occupying instruction belongs to
// this cycle, resolving loads by the observed cache outcome. Bubbles
// report the ALU cluster (they behave like injected NOPs).
//
//emsim:noalloc
func (st *StageTrace) Cluster() isa.Cluster {
	if st.Bubble || !st.Op.Valid() {
		return isa.ClusterALU
	}
	if st.Op.IsLoad() && st.CacheAccess {
		return isa.DynamicCluster(st.Op, st.CacheHit)
	}
	return isa.StaticCluster(st.Op)
}

// Cycle is the full microarchitectural record of one clock cycle. Both the
// synthetic "real hardware" and the EMSim model consume this; they differ
// only in the physics parameters they apply to it.
type Cycle struct {
	// N is the cycle number, starting at 0.
	N int
	// Stages holds the per-stage records, indexed by Stage.
	Stages [NumStages]StageTrace
	// AnyStall reports whether any stage was frozen this cycle.
	AnyStall bool
	// MispredictFlush reports that a branch misprediction flushed the
	// front of the pipeline at the end of this cycle.
	MispredictFlush bool
}

// Active reports whether stage s carries a real, unstalled instruction.
func (c *Cycle) Active(s Stage) bool {
	st := &c.Stages[s]
	return !st.Bubble && !st.Stalled
}

// Trace is the per-cycle record of one complete program execution.
type Trace []Cycle

// Cycles returns the number of recorded cycles.
func (t Trace) Cycles() int { return len(t) }

// StallCycles counts cycles in which at least one stage was stalled.
func (t Trace) StallCycles() int {
	n := 0
	for i := range t {
		if t[i].AnyStall {
			n++
		}
	}
	return n
}
