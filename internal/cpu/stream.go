package cpu

import "fmt"

// CycleSink consumes per-cycle trace records as the core emits them. The
// streaming run loop hands every sink call a pointer into a record it
// reuses for the next cycle, so a sink that wants to retain a cycle must
// copy the value (appending to a Trace does exactly that). Returning an
// error aborts the run.
//
// Sinks are how the simulation pipeline avoids materializing a whole
// cpu.Trace per run: the EM model's amplitude evaluation, statistics
// collection, or trace recording all attach here and see each cycle
// exactly once, in order.
type CycleSink interface {
	Cycle(c *Cycle) error
}

// CycleSinkFunc adapts a plain function to a CycleSink.
type CycleSinkFunc func(c *Cycle) error

// Cycle implements CycleSink.
func (f CycleSinkFunc) Cycle(c *Cycle) error { return f(c) }

// appendSink copies every emitted cycle into a Trace.
type appendSink struct{ tr *Trace }

func (a appendSink) Cycle(c *Cycle) error {
	*a.tr = append(*a.tr, *c)
	return nil
}

// AppendTo returns a sink that appends every cycle record to tr — the
// materializing adapter Run and RunProgram are built on.
func AppendTo(tr *Trace) CycleSink { return appendSink{tr} }

// TeeSink fans each cycle out to several sinks in order, stopping at the
// first error. It lets one run feed, say, a trace recorder and an
// amplitude evaluator simultaneously.
func TeeSink(sinks ...CycleSink) CycleSink {
	return CycleSinkFunc(func(c *Cycle) error {
		for _, s := range sinks {
			if err := s.Cycle(c); err != nil {
				return err
			}
		}
		return nil
	})
}

// RunTo steps the core until it halts, delivering each cycle record to
// sink. It fails if MaxCycles elapse first. The record passed to the sink
// is reused between cycles (see CycleSink), which makes a steady-state
// run allocation-free: nothing per-cycle is retained unless the sink
// chooses to.
//
//emsim:noalloc
func (c *CPU) RunTo(sink CycleSink) error {
	for !c.halted {
		if c.cycle >= c.cfg.MaxCycles {
			//emsim:ignore noalloc cold failure path: the run is aborting
			return fmt.Errorf("cpu: program exceeded %d cycles without halting", c.cfg.MaxCycles)
		}
		if err := c.StepInto(&c.scratch); err != nil {
			return err
		}
		//emsim:ignore noalloc dynamic dispatch by design; every in-tree sink is itself annotated noalloc
		if err := sink.Cycle(&c.scratch); err != nil {
			return err
		}
	}
	return nil
}

// RunProgramTo is the streaming form of RunProgram: it fully resets the
// machine, loads words at the reset vector and runs to completion,
// handing every cycle to sink instead of accumulating a Trace. Repeated
// calls on one core reuse its memory pages, cache arrays and cycle
// scratch record, so same-shaped reruns allocate nothing.
//
//emsim:noalloc
func (c *CPU) RunProgramTo(words []uint32, sink CycleSink) error {
	c.Reset()
	c.LoadProgram(c.cfg.ResetVector, words)
	return c.RunTo(sink)
}
