package cpu

import (
	"context"
	"fmt"
)

// CycleSink consumes per-cycle trace records as the core emits them. The
// streaming run loop hands every sink call a pointer into a record it
// reuses for the next cycle, so a sink that wants to retain a cycle must
// copy the value (appending to a Trace does exactly that). Returning an
// error aborts the run.
//
// Sinks are how the simulation pipeline avoids materializing a whole
// cpu.Trace per run: the EM model's amplitude evaluation, statistics
// collection, or trace recording all attach here and see each cycle
// exactly once, in order.
type CycleSink interface {
	Cycle(c *Cycle) error
}

// CycleSinkFunc adapts a plain function to a CycleSink.
type CycleSinkFunc func(c *Cycle) error

// Cycle implements CycleSink.
func (f CycleSinkFunc) Cycle(c *Cycle) error { return f(c) }

// appendSink copies every emitted cycle into a Trace.
type appendSink struct{ tr *Trace }

func (a appendSink) Cycle(c *Cycle) error {
	*a.tr = append(*a.tr, *c)
	return nil
}

// AppendTo returns a sink that appends every cycle record to tr — the
// materializing adapter Run and RunProgram are built on.
func AppendTo(tr *Trace) CycleSink { return appendSink{tr} }

// TeeSink fans each cycle out to several sinks in order, stopping at the
// first error. It lets one run feed, say, a trace recorder and an
// amplitude evaluator simultaneously.
func TeeSink(sinks ...CycleSink) CycleSink {
	return CycleSinkFunc(func(c *Cycle) error {
		for _, s := range sinks {
			if err := s.Cycle(c); err != nil {
				return err
			}
		}
		return nil
	})
}

// CtxCheckInterval is how often (in cycles) the streaming run loop polls
// its context for cancellation. The check is amortized — a power-of-two
// mask test plus, every interval, one non-blocking channel receive — so
// the //emsim:noalloc contract of the cycle loop is unaffected, and a
// cancelled run stops within at most this many further cycles. At
// simulation speeds of millions of cycles per second that bounds the
// cancellation latency to well under a millisecond.
const CtxCheckInterval = 1024

// ctxCheckMask implements the modulo test; CtxCheckInterval must stay a
// power of two.
const ctxCheckMask = CtxCheckInterval - 1

// RunTo steps the core until it halts, delivering each cycle record to
// sink. It fails if MaxCycles elapse first. The record passed to the sink
// is reused between cycles (see CycleSink), which makes a steady-state
// run allocation-free: nothing per-cycle is retained unless the sink
// chooses to.
//
//emsim:noalloc
func (c *CPU) RunTo(sink CycleSink) error {
	//emsim:ignore noalloc context.Background returns the shared static empty context
	return c.RunToContext(context.Background(), sink)
}

// RunToContext is RunTo with cancellation: the run aborts with ctx.Err()
// when the context is cancelled or its deadline passes, checked every
// CtxCheckInterval cycles so a serving layer can stop an in-flight
// simulation without waiting for it to halt on its own. A context that
// can never be cancelled (context.Background) costs a single nil check
// per cycle.
//
//emsim:noalloc
func (c *CPU) RunToContext(ctx context.Context, sink CycleSink) error {
	//emsim:ignore noalloc Done is an interface call on the caller's context; it returns a channel, not heap state owned by this run
	done := ctx.Done()
	for !c.halted {
		if done != nil && c.cycle&ctxCheckMask == 0 {
			select {
			case <-done:
				//emsim:ignore noalloc cold cancellation path: the run is aborting
				return ctx.Err()
			default:
			}
		}
		if c.cycle >= c.cfg.MaxCycles {
			//emsim:ignore noalloc cold failure path: the run is aborting
			return fmt.Errorf("cpu: program exceeded %d cycles without halting", c.cfg.MaxCycles)
		}
		if err := c.StepInto(&c.scratch); err != nil {
			return err
		}
		//emsim:ignore noalloc dynamic dispatch by design; every in-tree sink is itself annotated noalloc
		if err := sink.Cycle(&c.scratch); err != nil {
			return err
		}
	}
	return nil
}

// RunProgramTo is the streaming form of RunProgram: it fully resets the
// machine, loads words at the reset vector and runs to completion,
// handing every cycle to sink instead of accumulating a Trace. Repeated
// calls on one core reuse its memory pages, cache arrays and cycle
// scratch record, so same-shaped reruns allocate nothing.
//
//emsim:noalloc
func (c *CPU) RunProgramTo(words []uint32, sink CycleSink) error {
	//emsim:ignore noalloc context.Background returns the shared static empty context
	return c.RunProgramToContext(context.Background(), words, sink)
}

// RunProgramToContext is RunProgramTo with the cancellation semantics of
// RunToContext.
//
//emsim:noalloc
func (c *CPU) RunProgramToContext(ctx context.Context, words []uint32, sink CycleSink) error {
	c.Reset()
	c.LoadProgram(c.cfg.ResetVector, words)
	return c.RunToContext(ctx, sink)
}
