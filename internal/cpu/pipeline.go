// Package cpu implements the cycle-accurate 5-stage in-order RV32IM
// pipeline the paper implements on its FPGA (§II-A): Fetch, Decode,
// Execute, Memory and Writeback stages, a 2-level branch predictor with a
// BTB, a 32-entry register file and a 32 KB data cache whose hit costs one
// extra cycle and whose miss costs two further cycles.
//
// Besides architectural execution, the pipeline emits a per-cycle
// microarchitectural Trace: which instruction occupies each stage, which
// stages are stalled or hold flushed bubbles, the cache outcome, and the
// per-stage pipeline-latch values and transition bits. That trace is the
// common input of both the synthetic "real hardware" EM emitter and the
// EMSim model, mirroring the paper's setup where the FPGA and the
// simulator run the same program.
package cpu

import (
	"fmt"

	"emsim/internal/bpred"
	"emsim/internal/isa"
	"emsim/internal/mem"
)

// slot is one pipeline stage's occupant and the values it has produced so
// far as it flows down the pipe. A slot is either a real instruction or a
// bubble (startup hole, hazard bubble, or misprediction flush).
type slot struct {
	bubble bool
	inst   isa.Inst
	seq    int
	pc     uint32
	word   uint32 // fetched instruction word

	predNext  uint32 // fetch-time next-PC prediction
	predTaken bool

	rs1v, rs2v, imm uint32 // decode-stage register/immediate values

	opA, opB, aluOut uint32 // execute-stage operands and result
	cyclesLeft       int    // remaining occupancy cycles in EX or MEM
	started          bool   // stage work begun (per-stage, cleared on advance)
	resolved         bool   // EX result computed / branch resolved

	memAddr, memData      uint32 // memory-stage address/data latches
	cacheAccess, cacheHit bool

	wbVal uint32 // value destined for the register file
}

func bubbleSlot() slot { return slot{bubble: true, seq: -1} }

// enterStage clears the per-stage progress flags when a slot advances.
func (s *slot) enterStage() {
	s.started = false
	s.cyclesLeft = 0
}

// Stats summarizes one run of the core.
type Stats struct {
	Cycles      int
	Retired     int // architecturally completed instructions
	Bubbles     int // bubble slots that reached writeback
	StallCycles int // cycles with at least one frozen stage
	Flushes     int // misprediction flushes
	CacheHits   uint64
	CacheMisses uint64
	Mispredicts uint64 // branch and jump redirects
	Injected    int    // fetch slots taken by an installed FetchInjector
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// CPU is the simulated core. Create one with New, load a program into its
// memory, then Step or Run.
type CPU struct {
	cfg   Config
	mem   *mem.Memory
	cache *mem.Cache
	bp    *bpred.Unit
	inj   FetchInjector // optional fetch-slot countermeasure hook

	regs [isa.NumRegs]uint32
	pc   uint32

	st [NumStages]slot // current stage occupants

	lat       [NumStages][MaxLatchWords]uint32 // current stage latch values
	prevLatch [NumStages][MaxLatchWords]uint32

	cycle       int
	seq         int
	halted      bool
	retired     int
	bubbles     int
	stalls      int
	flushes     int
	injected    int
	mispredicts uint64

	// scratch is the cycle record reused by the streaming run loop so a
	// steady-state RunTo performs no allocations.
	scratch Cycle
}

// New builds a core with the given configuration and an empty memory.
func New(cfg Config) (*CPU, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &CPU{
		cfg:   cfg,
		mem:   mem.NewMemory(),
		cache: mem.MustNewCache(cfg.Cache),
		bp:    cfg.Predictor.build(),
	}
	c.resetPipeline()
	return c, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *CPU {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the core's configuration.
func (c *CPU) Config() Config { return c.cfg }

// Memory exposes the core's main memory for program loading and result
// inspection.
func (c *CPU) Memory() *mem.Memory { return c.mem }

// Cache exposes the data cache (for experiment setup such as pre-warming).
func (c *CPU) Cache() *mem.Cache { return c.cache }

// LoadProgram writes the instruction words at addr.
func (c *CPU) LoadProgram(addr uint32, words []uint32) {
	c.mem.LoadWords(addr, words)
}

// Reg returns the architectural value of register r.
func (c *CPU) Reg(r isa.Reg) uint32 { return c.regs[r] }

// SetReg sets register r (writes to x0 are ignored).
func (c *CPU) SetReg(r isa.Reg, v uint32) {
	if r != isa.Zero {
		c.regs[r] = v
	}
}

// PC returns the current fetch PC.
func (c *CPU) PC() uint32 { return c.pc }

// Halted reports whether an ECALL/EBREAK has retired.
func (c *CPU) Halted() bool { return c.halted }

// CycleCount returns the number of cycles simulated since reset.
func (c *CPU) CycleCount() int { return c.cycle }

func (c *CPU) resetPipeline() {
	for i := range c.st {
		c.st[i] = bubbleSlot()
	}
	c.lat = [NumStages][MaxLatchWords]uint32{}
	c.prevLatch = [NumStages][MaxLatchWords]uint32{}
	c.pc = c.cfg.ResetVector
	c.cycle = 0
	c.seq = 0
	c.halted = false
	c.retired = 0
	c.bubbles = 0
	c.stalls = 0
	c.flushes = 0
	c.injected = 0
	c.mispredicts = 0
}

// ResetCore restores the core (registers, pipeline, cache, predictor,
// counters) to power-on state but keeps memory contents, so a loaded
// program can be re-run.
func (c *CPU) ResetCore() {
	c.regs = [isa.NumRegs]uint32{}
	c.cache.Flush()
	c.cache.ResetStats()
	c.bp.Reset()
	c.resetPipeline()
}

// Reset restores the core and clears memory.
func (c *CPU) Reset() {
	c.ResetCore()
	c.mem.Reset()
}

// Stats returns cumulative statistics since the last reset.
func (c *CPU) Stats() Stats {
	hits, misses := c.cache.Stats()
	return Stats{
		Cycles:      c.cycle,
		Retired:     c.retired,
		Bubbles:     c.bubbles,
		StallCycles: c.stalls,
		Flushes:     c.flushes,
		CacheHits:   hits,
		CacheMisses: misses,
		Mispredicts: c.mispredicts,
		Injected:    c.injected,
	}
}

// forward returns the value of register r as seen by the EX stage this
// cycle: the MEM-stage occupant's pending result takes priority (it is the
// youngest completed producer ahead of EX); otherwise the architectural
// register file, which the WB stage has already updated this cycle
// (write-before-read register file, as in the classic 5-stage design).
func (c *CPU) forward(r isa.Reg) uint32 {
	if r == isa.Zero {
		return 0
	}
	if c.cfg.Forwarding {
		m := &c.st[MEM]
		if !m.bubble && m.inst.Op.WritesRd() && m.inst.Rd == r {
			return m.wbVal
		}
	}
	return c.regs[r]
}

// rawHazard reports whether the instruction in ID must stall. With
// forwarding only the load-use case stalls (the consumer may not enter EX
// while the load is leaving it); without forwarding any producer still in
// EX or MEM stalls the consumer.
func (c *CPU) rawHazard() bool {
	if c.st[ID].bubble {
		return false
	}
	if c.cfg.Forwarding {
		if rd, ok := slotWrites(&c.st[EX]); ok && c.st[EX].inst.Op.IsLoad() && c.idReads(rd) {
			return true
		}
		return false
	}
	if rd, ok := slotWrites(&c.st[EX]); ok && c.idReads(rd) {
		return true
	}
	if rd, ok := slotWrites(&c.st[MEM]); ok && c.idReads(rd) {
		return true
	}
	return false
}

// idReads reports whether the instruction currently in ID reads register
// r. (Hoisted out of rawHazard: a closure there allocates per Step under
// the noalloc analyzer's conservative model.)
func (c *CPU) idReads(r isa.Reg) bool {
	if r == isa.Zero {
		return false
	}
	id := &c.st[ID]
	return (id.inst.Op.ReadsRs1() && id.inst.Rs1 == r) ||
		(id.inst.Op.ReadsRs2() && id.inst.Rs2 == r)
}

// slotWrites returns the destination register the slot's instruction
// will write, if any.
func slotWrites(s *slot) (isa.Reg, bool) {
	if s.bubble || !s.inst.Op.WritesRd() || s.inst.Rd == isa.Zero {
		return 0, false
	}
	return s.inst.Rd, true
}

// effectiveImm returns the operand-ready immediate value for the decode
// latch (U-type immediates are shifted into position here).
func effectiveImm(in isa.Inst) uint32 {
	switch in.Op {
	case isa.LUI, isa.AUIPC:
		return uint32(in.Imm) << 12
	default:
		return uint32(in.Imm)
	}
}

// exLatency returns the EX-stage occupancy of an instruction.
func (c *CPU) exLatency(op isa.Op) int {
	switch op {
	case isa.MUL, isa.MULH, isa.MULHSU, isa.MULHU:
		return c.cfg.MulLatency
	case isa.DIV, isa.DIVU, isa.REM, isa.REMU:
		return c.cfg.DivLatency
	default:
		return 1
	}
}

// usesImmOperand reports whether the instruction's second ALU operand is
// the immediate rather than rs2.
func usesImmOperand(op isa.Op) bool {
	switch {
	case op.IsBranch():
		return false // branches compare rs1 vs rs2
	case op.Format() == isa.FormatR:
		return false
	default:
		return true
	}
}

// execute computes the architectural result of the instruction in EX given
// its (already forwarded) operands, honoring the BuggyMul hardware-defect
// switch for the Figure 11 debugging experiment.
func (c *CPU) execute(s *slot) uint32 {
	op := s.inst.Op
	// Note: the BuggyMul defect (Figure 11) is applied at operand-read
	// time — the truncated operand registers make this plain multiply
	// produce the wrong narrow product.
	switch {
	case op == isa.JAL:
		return s.pc + uint32(s.inst.Imm)
	case op == isa.JALR:
		return (s.opA + uint32(s.inst.Imm)) &^ 1
	case op.IsBranch():
		return s.pc + uint32(s.inst.Imm) // branch target adder
	case op == isa.AUIPC:
		return s.pc + uint32(s.inst.Imm)<<12
	case op.IsLoad() || op.IsStore():
		return s.opA + uint32(s.inst.Imm) // address generation
	case op.IsSystem() || op == isa.FENCE:
		return 0
	default:
		return aluOp(op, s.opA, s.opB)
	}
}

// fillStage records the occupancy facts of a stage in the cycle trace.
func fillStage(tr *StageTrace, s *slot, stalled bool) {
	tr.Bubble = s.bubble
	tr.Stalled = stalled && !s.bubble
	if !s.bubble {
		tr.Op = s.inst.Op
		tr.Inst = s.inst
		tr.Seq = s.seq
		tr.CacheAccess = s.cacheAccess
		tr.CacheHit = s.cacheHit
	} else {
		tr.Seq = -1
	}
}

// The iterative multiply/divide unit accumulates its result internally
// and writes the output latch once, in its final compute cycle — so "the
// majority of the activity (i.e., writing the output register) takes
// place in the last cycle", the behaviour the Figure 11 debugging
// scenario exploits. Intermediate compute cycles therefore leave the
// output latch untouched (the operand latches flipped on entry).

// Step simulates one clock cycle and returns its trace record. Calling
// Step on a halted core is an error.
func (c *CPU) Step() (Cycle, error) {
	var rec Cycle
	if err := c.StepInto(&rec); err != nil {
		return Cycle{}, err
	}
	return rec, nil
}

// StepInto simulates one clock cycle and fills the caller-provided trace
// record in place, allocating nothing. It is the hot-path form of Step:
// the streaming run loop reuses one record for the whole run. Calling
// StepInto on a halted core is an error.
//
//emsim:noalloc
func (c *CPU) StepInto(rec *Cycle) error {
	if c.halted {
		//emsim:ignore noalloc cold misuse path: stepping a halted core already left the steady state
		return fmt.Errorf("cpu: step after halt (cycle %d)", c.cycle)
	}
	*rec = Cycle{N: c.cycle}
	haltNow := false

	// ---------------- WB ----------------
	{
		s := &c.st[WB]
		fillStage(&rec.Stages[WB], s, false)
		if !s.bubble {
			in := s.inst
			if in.Op.WritesRd() && in.Rd != isa.Zero {
				c.regs[in.Rd] = s.wbVal
				c.lat[WB] = [MaxLatchWords]uint32{s.wbVal, 1 << uint(in.Rd), 0}
			}
			if in.Op.IsSystem() {
				haltNow = true
			}
			c.retired++
		} else {
			c.bubbles++
		}
	}

	// ---------------- MEM ----------------
	{
		s := &c.st[MEM]
		if !s.bubble {
			if !s.started {
				s.started = true
				op := s.inst.Op
				if op.IsLoad() || op.IsStore() {
					addr := s.aluOut
					hit, stall := c.cache.Access(addr)
					s.cacheAccess, s.cacheHit = true, hit
					s.cyclesLeft = 1 + stall
					if op.IsLoad() {
						var data uint32
						switch op {
						case isa.LB:
							data = uint32(int32(int8(c.mem.LoadByte(addr))))
						case isa.LBU:
							data = uint32(c.mem.LoadByte(addr))
						case isa.LH:
							data = uint32(int32(int16(c.mem.ReadHalf(addr))))
						case isa.LHU:
							data = uint32(c.mem.ReadHalf(addr))
						case isa.LW:
							data = c.mem.ReadWord(addr)
						}
						s.memAddr, s.memData, s.wbVal = addr, data, data
					} else {
						switch op {
						case isa.SB:
							c.mem.StoreByte(addr, byte(s.memData))
						case isa.SH:
							c.mem.WriteHalf(addr, uint16(s.memData))
						case isa.SW:
							c.mem.WriteWord(addr, s.memData)
						}
						s.memAddr = addr
					}
					c.lat[MEM] = [MaxLatchWords]uint32{s.memAddr, s.memData, 0}
				} else {
					s.cyclesLeft = 1
				}
				fillStage(&rec.Stages[MEM], s, false)
			} else {
				// Extra cache/memory wait cycles: the stage is frozen.
				fillStage(&rec.Stages[MEM], s, true)
			}
			s.cyclesLeft--
		} else {
			fillStage(&rec.Stages[MEM], s, false)
		}
	}
	memDone := c.st[MEM].bubble || (c.st[MEM].started && c.st[MEM].cyclesLeft == 0)

	// ---------------- EX ----------------
	mispredict := false
	var redirectPC uint32
	{
		s := &c.st[EX]
		if !s.bubble {
			if !s.started {
				s.started = true
				s.cyclesLeft = c.exLatency(s.inst.Op)
				op := s.inst.Op
				if op.ReadsRs1() {
					s.opA = c.forward(s.inst.Rs1)
				} else {
					s.opA = 0
				}
				switch {
				case op.IsStore():
					s.memData = c.forward(s.inst.Rs2) // store data
					s.opB = uint32(s.inst.Imm)
				case op.ReadsRs2():
					s.opB = c.forward(s.inst.Rs2)
				case usesImmOperand(op):
					s.opB = effectiveImm(s.inst)
				default:
					s.opB = 0
				}
				if c.cfg.BuggyMul && op == isa.MUL {
					// The Figure 11 defect: the multiplier's operand
					// registers only latch the low byte, so both the
					// product and the unit's switching activity shrink.
					s.opA &= 0xFF
					s.opB &= 0xFF
				}
			}
			if s.cyclesLeft > 0 {
				// A compute cycle.
				s.cyclesLeft--
				lastWord := c.lat[EX][2]
				if s.cyclesLeft == 0 {
					s.resolved = true
					s.aluOut = c.execute(s)
					lastWord = s.aluOut
					op := s.inst.Op
					switch {
					case op.IsBranch():
						taken := branchTaken(op, s.opA, s.opB)
						target := s.aluOut
						if c.bp.Resolve(s.pc, taken, target, s.predTaken, s.predNext) {
							mispredict = true
							c.mispredicts++
							if taken {
								redirectPC = target
							} else {
								redirectPC = s.pc + 4
							}
						}
					case op.IsJump():
						target := s.aluOut
						s.wbVal = s.pc + 4
						c.bp.BTB.Insert(s.pc, target)
						if s.predNext != target {
							mispredict = true
							c.mispredicts++
							redirectPC = target
						}
					case op.IsLoad(), op.IsStore():
						// address in aluOut; data comes from MEM
					default:
						s.wbVal = s.aluOut
					}
				}
				fillStage(&rec.Stages[EX], s, false)
				c.lat[EX] = [MaxLatchWords]uint32{s.opA, s.opB, lastWord}
			} else {
				// Finished computing but waiting for MEM to free.
				fillStage(&rec.Stages[EX], s, true)
			}
		} else {
			fillStage(&rec.Stages[EX], s, false)
		}
	}
	exDone := c.st[EX].bubble || (c.st[EX].started && c.st[EX].cyclesLeft == 0)

	// ---------------- ID ----------------
	idVacates := exDone && memDone && (c.st[ID].bubble || !c.rawHazard())
	{
		s := &c.st[ID]
		if !s.bubble {
			frozen := !idVacates
			fillStage(&rec.Stages[ID], s, frozen)
			if !frozen {
				// Register file read (raw, un-forwarded: the physical ID
				// latches see the register file outputs).
				if s.inst.Op.ReadsRs1() {
					s.rs1v = c.regs[s.inst.Rs1]
				} else {
					s.rs1v = 0
				}
				if s.inst.Op.ReadsRs2() {
					s.rs2v = c.regs[s.inst.Rs2]
				} else {
					s.rs2v = 0
				}
				s.imm = effectiveImm(s.inst)
				c.lat[ID] = [MaxLatchWords]uint32{s.rs1v, s.rs2v, s.imm}
			}
		} else {
			fillStage(&rec.Stages[ID], s, false)
		}
	}

	// ---------------- IF ----------------
	// The fetch stage reads instruction memory combinationally and latches
	// the result into ID at cycle end; a separate IF holding register does
	// not exist in the classic design. When the decode stage cannot accept
	// (hazard or downstream stall), the IF/ID latch is clock-gated and no
	// fetch completes.
	var fetched slot
	{
		tr := &rec.Stages[IF]
		injKind := InjectNone
		var injection Injection
		if idVacates && c.inj != nil {
			//emsim:ignore noalloc dynamic dispatch by design; every in-tree injector is itself annotated noalloc
			injection = c.inj.Inject(c.cycle, c.pc)
			injKind = injection.Kind
		}
		switch {
		case injKind == InjectBubble:
			// A countermeasure stall: the fetch bus is clock-gated for one
			// cycle, the PC holds, the IF latch keeps its value (no
			// transitions) and a bubble enters decode.
			fetched = bubbleSlot()
			fillStage(tr, &fetched, false)
			c.injected++
		case injKind == InjectInst:
			// A countermeasure dummy: the supplied instruction enters
			// decode as if fetched from c.pc, the PC holds, and the real
			// instruction stream resumes next accepting cycle.
			fetched = slot{pc: c.pc, word: injection.Word, seq: c.seq, inst: injection.Inst}
			fetched.predNext = c.pc
			c.seq++
			c.injected++
			fillStage(tr, &fetched, false)
			c.lat[IF] = [MaxLatchWords]uint32{fetched.pc, fetched.word, 0}
		case idVacates:
			word := c.mem.ReadWord(c.pc)
			fetched = slot{pc: c.pc, word: word, seq: c.seq}
			in, ok := isa.TryDecode(word)
			if !ok {
				fetched.bubble = true
				fetched.seq = -1
			} else {
				fetched.inst = in
				c.seq++
			}
			next := c.pc + 4
			if ok {
				switch {
				case in.Op.IsBranch():
					n, taken := c.bp.PredictNext(c.pc)
					next, fetched.predTaken = n, taken
				case in.Op.IsJump():
					if t, ok := c.bp.BTB.Lookup(c.pc); ok {
						next = t
					}
				}
			}
			fetched.predNext = next
			c.pc = next
			fillStage(tr, &fetched, false)
			c.lat[IF] = [MaxLatchWords]uint32{fetched.pc, fetched.word, 0}
		default:
			// Frozen: the fetch bus still presents pc's word, but nothing
			// latches. Record what sits on the bus for the trace.
			tr.Stalled = true
			tr.Seq = -1
			if in, ok := isa.TryDecode(c.mem.ReadWord(c.pc)); ok {
				tr.Op = in.Op
				tr.Inst = in
			}
		}
	}

	// ---------------- Advance latches (end of cycle) ----------------
	if memDone {
		c.st[WB] = c.st[MEM]
		c.st[WB].enterStage()
		if exDone {
			c.st[MEM] = c.st[EX]
			c.st[MEM].enterStage()
			if idVacates {
				c.st[EX] = c.st[ID]
				c.st[EX].enterStage()
				c.st[ID] = fetched
				c.st[ID].enterStage()
			} else {
				c.st[EX] = bubbleSlot() // hazard bubble
			}
		} else {
			c.st[MEM] = bubbleSlot()
		}
	} else {
		c.st[WB] = bubbleSlot()
	}

	// ---------------- Misprediction flush ----------------
	if mispredict {
		rec.MispredictFlush = true
		c.flushes++
		if memDone && exDone {
			// The branch moved on to MEM; whatever advanced into EX
			// behind it is wrong-path (or already a bubble).
			c.st[EX] = bubbleSlot()
		}
		// The branch stayed in EX otherwise (waiting on a busy MEM); in
		// both cases everything in the front end is wrong-path.
		c.st[ID] = bubbleSlot()
		c.st[IF] = bubbleSlot()
		c.pc = redirectPC
	}

	// ---------------- Latch/flip bookkeeping ----------------
	for s := Stage(0); s < NumStages; s++ {
		tr := &rec.Stages[s]
		tr.Latch = c.lat[s]
		for w := 0; w < MaxLatchWords; w++ {
			tr.Flip[w] = c.lat[s][w] ^ c.prevLatch[s][w]
		}
		if tr.Stalled {
			rec.AnyStall = true
		}
	}
	c.prevLatch = c.lat
	if rec.AnyStall {
		c.stalls++
	}
	c.cycle++
	if haltNow {
		c.halted = true
	}
	return nil
}

// Run steps the core until it halts, returning the full trace. It fails if
// MaxCycles elapse first. Run is the materializing wrapper around the
// streaming RunTo path; campaign workloads that do not need to retain the
// whole trace should use RunTo with their own sink instead.
func (c *CPU) Run() (Trace, error) {
	var tr Trace
	err := c.RunTo(AppendTo(&tr))
	return tr, err
}

// RunProgram is the common load-reset-run convenience: it fully resets
// the machine (core and memory), loads words at the reset vector and runs
// to completion. The full reset keeps repeated runs bit-for-bit
// deterministic — a program must initialize any data it reads. To run
// against pre-loaded memory, use LoadProgram + Run directly.
func (c *CPU) RunProgram(words []uint32) (Trace, error) {
	var tr Trace
	err := c.RunProgramTo(words, AppendTo(&tr))
	return tr, err
}
