package cpu

import "emsim/internal/isa"

// InjectKind selects what a FetchInjector asks the fetch stage to do in
// one fetch slot.
type InjectKind uint8

const (
	// InjectNone lets the normal fetch proceed.
	InjectNone InjectKind = iota
	// InjectBubble holds the PC and clock-gates the IF/ID latch for one
	// cycle, sending a bubble down the pipe instead of a fetch — a
	// randomized stall, as inserted by jitter-style countermeasures.
	InjectBubble
	// InjectInst holds the PC and feeds the supplied instruction into the
	// decode stage as if it had been fetched — a dummy instruction, as
	// inserted by insertion-style countermeasures.
	InjectInst
)

// Injection is a FetchInjector's decision for one fetch slot. For
// InjectInst, Inst is the decoded instruction and Word its encoding (the
// value the IF/ID latch carries, so the EM trace sees realistic latch
// activity).
type Injection struct {
	Kind InjectKind
	Inst isa.Inst
	Word uint32
}

// A FetchInjector intercepts the fetch stage on cycles where the decode
// stage can accept a new instruction, modeling hardware countermeasures
// that perturb the instruction stream without touching the program image.
// Inject is consulted once per accepting fetch slot with the current
// cycle number and fetch PC; returning the zero Injection lets the real
// fetch proceed.
//
// Contract: an injected instruction must be architecturally inert or
// side-effect-free for the program under test — in practice a plain ALU
// operation writing x0. Control flow (branches, jumps), memory stores and
// system instructions must not be injected; the pipeline does not
// arbitrate a redirect or memory write against the held real stream.
// Injectors run on the simulation hot path: implementations must be
// allocation-free and must not retain pointers handed to them. An
// injector is owned by a single core; it is reset/re-seeded by whoever
// installed it, not by CPU.Reset.
type FetchInjector interface {
	Inject(cycle int, pc uint32) Injection
}

// SetFetchInjector installs (or, with nil, removes) the fetch-slot
// injector. The injector survives Reset/ResetCore so a defended program
// can be re-run; callers that want a fresh randomization per run re-seed
// or replace the injector between runs.
func (c *CPU) SetFetchInjector(f FetchInjector) { c.inj = f }
