package cpu

import (
	"context"
	"errors"
	"testing"
	"time"
)

// spinProgram never halts: a one-instruction jump-to-self loop that runs
// until MaxCycles or cancellation stops it.
func spinProgram() []uint32 {
	return []uint32{0x0000006F} // jal x0, 0
}

// TestRunToContextBackgroundMatchesRunTo pins that the context plumbing
// is invisible for an uncancellable context: the streamed cycles are
// identical to the plain RunTo path.
func TestRunToContextBackgroundMatchesRunTo(t *testing.T) {
	words := streamProgram(t)
	var want Trace
	if err := MustNew(DefaultConfig()).RunProgramTo(words, AppendTo(&want)); err != nil {
		t.Fatal(err)
	}
	var got Trace
	c := MustNew(DefaultConfig())
	c.Reset()
	c.LoadProgram(c.cfg.ResetVector, words)
	if err := c.RunToContext(context.Background(), AppendTo(&got)); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("context run streamed %d cycles, plain run %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("cycle %d differs between context and plain runs", i)
		}
	}
}

// TestRunToContextCancellation pins the cancellation contract: a run
// whose context is cancelled stops within one CtxCheckInterval of the
// cancellation point and reports context.Canceled.
func TestRunToContextCancellation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 1 << 30 // the cancel must beat this bound by far
	c := MustNew(cfg)
	c.Reset()
	c.LoadProgram(cfg.ResetVector, spinProgram())

	ctx, cancel := context.WithCancel(context.Background())
	const cancelAt = 5*CtxCheckInterval + 17
	sink := CycleSinkFunc(func(cy *Cycle) error {
		if cy.N == cancelAt {
			cancel()
		}
		return nil
	})
	err := c.RunToContext(ctx, sink)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	if got := c.CycleCount(); got > cancelAt+CtxCheckInterval {
		t.Errorf("run continued to cycle %d after cancellation at %d; want stop within %d cycles",
			got, cancelAt, CtxCheckInterval)
	}
}

// TestRunToContextDeadline pins that an expired deadline aborts the run
// with context.DeadlineExceeded.
func TestRunToContextDeadline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 1 << 30
	c := MustNew(cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := c.RunProgramToContext(ctx, spinProgram(), CycleSinkFunc(func(*Cycle) error { return nil }))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline run returned %v, want context.DeadlineExceeded", err)
	}
}

// TestRunToContextPreCancelled pins that an already-cancelled context
// stops the run before any cycle is simulated.
func TestRunToContextPreCancelled(t *testing.T) {
	c := MustNew(DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := c.RunProgramToContext(ctx, streamProgram(t), CycleSinkFunc(func(*Cycle) error { return nil }))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run returned %v, want context.Canceled", err)
	}
	if got := c.CycleCount(); got != 0 {
		t.Errorf("pre-cancelled run simulated %d cycles, want 0", got)
	}
}

// TestRunProgramToContextAllocs pins that the context plumbing did not
// change the zero-allocation property of the streaming run loop, for
// both the background fast path and a real cancellable context.
func TestRunProgramToContextAllocs(t *testing.T) {
	words := streamProgram(t)
	c := MustNew(DefaultConfig())
	sink := CycleSinkFunc(func(*Cycle) error { return nil })
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.RunProgramToContext(ctx, words, sink); err != nil { // warm pages + Done channel
		t.Fatal(err)
	}
	for name, run := range map[string]func() error{
		"background":  func() error { return c.RunProgramTo(words, sink) },
		"cancellable": func() error { return c.RunProgramToContext(ctx, words, sink) },
	} {
		allocs := testing.AllocsPerRun(20, func() {
			if err := run(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 0 {
			t.Errorf("%s context run allocates %.1f times per run, want 0", name, allocs)
		}
	}
}
