package cpu

import (
	"math/rand"
	"testing"

	"emsim/internal/isa"
)

// asm encodes an instruction list into machine words, failing the test on
// encoding errors.
func asm(t testing.TB, insts ...isa.Inst) []uint32 {
	t.Helper()
	words := make([]uint32, len(insts))
	for i, in := range insts {
		w, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		words[i] = w
	}
	return words
}

func run(t testing.TB, cfg Config, insts ...isa.Inst) (*CPU, Trace) {
	t.Helper()
	c := MustNew(cfg)
	tr, err := c.RunProgram(asm(t, insts...))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return c, tr
}

func TestStraightLineALU(t *testing.T) {
	c, tr := run(t, DefaultConfig(),
		isa.Addi(isa.T0, isa.Zero, 5),
		isa.Addi(isa.T1, isa.Zero, 7),
		isa.Add(isa.T2, isa.T0, isa.T1),
		isa.Sub(isa.T3, isa.T1, isa.T0),
		isa.Xor(isa.T4, isa.T0, isa.T1),
		isa.Ebreak(),
	)
	if got := c.Reg(isa.T2); got != 12 {
		t.Errorf("t2 = %d, want 12", got)
	}
	if got := c.Reg(isa.T3); got != 2 {
		t.Errorf("t3 = %d, want 2", got)
	}
	if got := c.Reg(isa.T4); got != 5^7 {
		t.Errorf("t4 = %d, want %d", got, 5^7)
	}
	// 6 instructions, no stalls: fill (4) + 6 cycles.
	if len(tr) != 10 {
		t.Errorf("cycles = %d, want 10", len(tr))
	}
	st := c.Stats()
	if st.Retired != 6 {
		t.Errorf("retired = %d, want 6", st.Retired)
	}
	if st.StallCycles != 0 {
		t.Errorf("stall cycles = %d, want 0 for straight-line ALU", st.StallCycles)
	}
}

func TestForwardingBackToBack(t *testing.T) {
	c, _ := run(t, DefaultConfig(),
		isa.Addi(isa.T0, isa.Zero, 5),
		isa.Add(isa.T1, isa.T0, isa.T0), // needs T0 from previous inst
		isa.Add(isa.T2, isa.T1, isa.T0), // needs T1 immediately
		isa.Ebreak(),
	)
	if got := c.Reg(isa.T1); got != 10 {
		t.Errorf("t1 = %d, want 10 (EX->EX forwarding)", got)
	}
	if got := c.Reg(isa.T2); got != 15 {
		t.Errorf("t2 = %d, want 15", got)
	}
	if st := c.Stats(); st.StallCycles != 0 {
		t.Errorf("forwarded ALU chain stalled %d cycles", st.StallCycles)
	}
}

func TestNoForwardingStillCorrect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Forwarding = false
	c, _ := run(t, cfg,
		isa.Addi(isa.T0, isa.Zero, 5),
		isa.Add(isa.T1, isa.T0, isa.T0),
		isa.Add(isa.T2, isa.T1, isa.T0),
		isa.Ebreak(),
	)
	if got := c.Reg(isa.T2); got != 15 {
		t.Errorf("t2 = %d, want 15 without forwarding", got)
	}
	if st := c.Stats(); st.StallCycles == 0 {
		t.Error("expected stalls with forwarding disabled")
	}
}

func TestForwardingReducesCycles(t *testing.T) {
	prog := []isa.Inst{
		isa.Addi(isa.T0, isa.Zero, 1),
		isa.Add(isa.T1, isa.T0, isa.T0),
		isa.Add(isa.T2, isa.T1, isa.T1),
		isa.Add(isa.T3, isa.T2, isa.T2),
		isa.Ebreak(),
	}
	_, trFwd := run(t, DefaultConfig(), prog...)
	cfg := DefaultConfig()
	cfg.Forwarding = false
	cNo, trNo := run(t, cfg, prog...)
	if len(trNo) <= len(trFwd) {
		t.Errorf("no-forwarding (%d cycles) should be slower than forwarding (%d)", len(trNo), len(trFwd))
	}
	if got := cNo.Reg(isa.T3); got != 8 {
		t.Errorf("t3 = %d, want 8", got)
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	c, _ := run(t, DefaultConfig(),
		isa.Addi(isa.T0, isa.Zero, 1234),
		isa.Sw(isa.T0, isa.Zero, 1024),
		isa.Lw(isa.T1, isa.Zero, 1024),
		isa.Ebreak(),
	)
	if got := c.Reg(isa.T1); got != 1234 {
		t.Errorf("loaded %d, want 1234", got)
	}
}

func TestSubWordAccess(t *testing.T) {
	c, _ := run(t, DefaultConfig(),
		append(append(append(isa.Li(isa.T0, -2), // 0xFFFFFFFE
			isa.Sw(isa.T0, isa.Zero, 1024),
			isa.Lb(isa.T1, isa.Zero, 1024),   // sign-extended byte
			isa.Lbu(isa.T2, isa.Zero, 1024),  // zero-extended
			isa.Lh(isa.T3, isa.Zero, 1024),   // sign-extended half
			isa.Lhu(isa.T4, isa.Zero, 1024)), // zero-extended half
			isa.Li(isa.T5, 0x1234)...),
			isa.Sh(isa.T5, isa.Zero, 1032),
			isa.Lhu(isa.T6, isa.Zero, 1032),
			isa.Ebreak(),
		)...)
	if got := int32(c.Reg(isa.T1)); got != -2 {
		t.Errorf("lb = %d, want -2", got)
	}
	if got := c.Reg(isa.T2); got != 0xFE {
		t.Errorf("lbu = %#x, want 0xFE", got)
	}
	if got := int32(c.Reg(isa.T3)); got != -2 {
		t.Errorf("lh = %d, want -2", got)
	}
	if got := c.Reg(isa.T4); got != 0xFFFE {
		t.Errorf("lhu = %#x, want 0xFFFE", got)
	}
	if got := c.Reg(isa.T6); got != 0x1234 {
		t.Errorf("sh/lhu = %#x, want 0x1234", got)
	}
}

func TestLoadUseHazardStalls(t *testing.T) {
	c, _ := run(t, DefaultConfig(),
		isa.Addi(isa.T0, isa.Zero, 99),
		isa.Sw(isa.T0, isa.Zero, 1024),
		isa.Lw(isa.T1, isa.Zero, 1024),
		isa.Add(isa.T2, isa.T1, isa.T1), // load-use
		isa.Ebreak(),
	)
	if got := c.Reg(isa.T2); got != 198 {
		t.Errorf("t2 = %d, want 198", got)
	}
	if st := c.Stats(); st.StallCycles == 0 {
		t.Error("load-use dependency should stall")
	}
}

// memStallCyclesFor counts the cycles the instruction with sequence seq
// spends frozen in MEM.
func memStallCyclesFor(tr Trace, seq int) int {
	n := 0
	for i := range tr {
		st := &tr[i].Stages[MEM]
		if st.Seq == seq && st.Stalled {
			n++
		}
	}
	return n
}

func TestCacheMissThenHitLatency(t *testing.T) {
	// Two loads to the same line: first misses (3 extra stall cycles),
	// second hits (1 extra stall cycle). §II-A / Figure 6.
	c, tr := run(t, DefaultConfig(),
		isa.Lw(isa.T0, isa.Zero, 1024), // seq 0: miss
		isa.Nop(), isa.Nop(), isa.Nop(), isa.Nop(),
		isa.Lw(isa.T1, isa.Zero, 1028), // seq 5: same line, hit
		isa.Ebreak(),
	)
	if got := memStallCyclesFor(tr, 0); got != 3 {
		t.Errorf("miss load stalled %d extra cycles in MEM, want 3", got)
	}
	if got := memStallCyclesFor(tr, 5); got != 1 {
		t.Errorf("hit load stalled %d extra cycles in MEM, want 1", got)
	}
	st := c.Stats()
	if st.CacheMisses != 1 || st.CacheHits != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want 1/1", st.CacheHits, st.CacheMisses)
	}
	// The miss load must report ClusterLoad, the hit load ClusterCache.
	var missCl, hitCl isa.Cluster
	for i := range tr {
		st := &tr[i].Stages[MEM]
		if st.CacheAccess && !st.Stalled {
			if st.Seq == 0 {
				missCl = st.Cluster()
			}
			if st.Seq == 5 {
				hitCl = st.Cluster()
			}
		}
	}
	if missCl != isa.ClusterLoad {
		t.Errorf("miss load cluster = %v, want Load", missCl)
	}
	if hitCl != isa.ClusterCache {
		t.Errorf("hit load cluster = %v, want Cache", hitCl)
	}
}

func TestMulLatencyOccupiesEX(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MulLatency = 3
	c, tr := run(t, cfg,
		isa.Addi(isa.T0, isa.Zero, 6),
		isa.Addi(isa.T1, isa.Zero, 7),
		isa.Mul(isa.T2, isa.T0, isa.T1), // seq 2
		isa.Ebreak(),
	)
	if got := c.Reg(isa.T2); got != 42 {
		t.Errorf("mul = %d, want 42", got)
	}
	exCycles := 0
	for i := range tr {
		if tr[i].Stages[EX].Seq == 2 && !tr[i].Stages[EX].Stalled {
			exCycles++
		}
	}
	if exCycles != 3 {
		t.Errorf("MUL spent %d active cycles in EX, want 3", exCycles)
	}
	if st := c.Stats(); st.StallCycles < 2 {
		t.Errorf("MUL should freeze the front end; stalls = %d", st.StallCycles)
	}
}

func TestDivSemantics(t *testing.T) {
	build := func() []isa.Inst {
		var p []isa.Inst
		p = append(p, isa.Li(isa.T0, -7)...)
		p = append(p, isa.Addi(isa.T1, isa.Zero, 2))
		p = append(p,
			isa.Div(isa.T2, isa.T0, isa.T1),   // -7/2 = -3
			isa.Rem(isa.T3, isa.T0, isa.T1),   // -7%2 = -1
			isa.Div(isa.T4, isa.T0, isa.Zero), // div by zero = -1
			isa.Rem(isa.T5, isa.T0, isa.Zero), // rem by zero = dividend
			isa.Ebreak(),
		)
		return p
	}
	c, _ := run(t, DefaultConfig(), build()...)
	if got := int32(c.Reg(isa.T2)); got != -3 {
		t.Errorf("div = %d, want -3", got)
	}
	if got := int32(c.Reg(isa.T3)); got != -1 {
		t.Errorf("rem = %d, want -1", got)
	}
	if got := c.Reg(isa.T4); got != 0xFFFFFFFF {
		t.Errorf("div/0 = %#x, want all ones", got)
	}
	if got := int32(c.Reg(isa.T5)); got != -7 {
		t.Errorf("rem/0 = %d, want dividend", got)
	}
}

func TestBranchLoopArchitecture(t *testing.T) {
	// Sum 1..10 with a backward branch.
	// t0 = counter, t1 = sum, t2 = limit
	c, _ := run(t, DefaultConfig(),
		isa.Addi(isa.T0, isa.Zero, 1),
		isa.Addi(isa.T1, isa.Zero, 0),
		isa.Addi(isa.T2, isa.Zero, 10),
		// loop:
		isa.Add(isa.T1, isa.T1, isa.T0),
		isa.Addi(isa.T0, isa.T0, 1),
		isa.Bge(isa.T2, isa.T0, -8), // while t2 >= t0 goto loop
		isa.Ebreak(),
	)
	if got := c.Reg(isa.T1); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	// A 100-iteration loop: the 2-level predictor should mispredict far
	// fewer than 100 times once warmed up.
	c, _ := run(t, DefaultConfig(),
		isa.Addi(isa.T0, isa.Zero, 100),
		// loop:
		isa.Addi(isa.T0, isa.T0, -1),
		isa.Bne(isa.T0, isa.Zero, -4),
		isa.Ebreak(),
	)
	st := c.Stats()
	if st.Mispredicts > 15 {
		t.Errorf("mispredicts = %d on a 100-iteration loop, want <= 15", st.Mispredicts)
	}
	if st.Flushes != int(st.Mispredicts) {
		t.Errorf("flushes (%d) != mispredicts (%d)", st.Flushes, st.Mispredicts)
	}
}

func TestMispredictionFlushesTwoSlots(t *testing.T) {
	// An always-taken branch, first encounter: the not-taken-predicted
	// branch must flush and the skipped instruction must not execute.
	c, tr := run(t, DefaultConfig(),
		isa.Addi(isa.T0, isa.Zero, 1),
		isa.Beq(isa.Zero, isa.Zero, 12), // always taken, skips 2 insts
		isa.Addi(isa.T1, isa.Zero, 111), // wrong path
		isa.Addi(isa.T2, isa.Zero, 222), // wrong path
		isa.Addi(isa.T3, isa.Zero, 7),   // branch target
		isa.Ebreak(),
	)
	if c.Reg(isa.T1) != 0 || c.Reg(isa.T2) != 0 {
		t.Errorf("wrong-path instructions executed: t1=%d t2=%d", c.Reg(isa.T1), c.Reg(isa.T2))
	}
	if got := c.Reg(isa.T3); got != 7 {
		t.Errorf("t3 = %d, want 7", got)
	}
	flushCycles := 0
	for i := range tr {
		if tr[i].MispredictFlush {
			flushCycles++
		}
	}
	if flushCycles != 1 {
		t.Errorf("flush cycles = %d, want 1", flushCycles)
	}
	// The two flushed slots travel as bubbles: find them in EX after the
	// flush cycle.
	if st := c.Stats(); st.Bubbles < 2 {
		t.Errorf("bubbles = %d, want >= 2 after flush", st.Bubbles)
	}
}

func TestJALAndJALR(t *testing.T) {
	// call: jal ra, +12 (to "func"); after return t1 must be set.
	c, _ := run(t, DefaultConfig(),
		isa.Jal(isa.RA, 12),            // 0: call func at 12
		isa.Addi(isa.T1, isa.Zero, 42), // 4: executed after return
		isa.Ebreak(),                   // 8
		isa.Addi(isa.T0, isa.Zero, 9),  // 12: func body
		isa.Jalr(isa.Zero, isa.RA, 0),  // 16: return
	)
	if got := c.Reg(isa.T0); got != 9 {
		t.Errorf("t0 = %d, want 9 (function body ran)", got)
	}
	if got := c.Reg(isa.T1); got != 42 {
		t.Errorf("t1 = %d, want 42 (returned to call site+4)", got)
	}
	if got := c.Reg(isa.RA); got != 4 {
		t.Errorf("ra = %d, want 4", got)
	}
}

func TestBuggyMulDefect(t *testing.T) {
	prog := []isa.Inst{}
	prog = append(prog, isa.Li(isa.T0, 0x1234)...)
	prog = append(prog, isa.Li(isa.T1, 0x0507)...)
	prog = append(prog, isa.Mul(isa.T2, isa.T0, isa.T1), isa.Ebreak())

	good, _ := run(t, DefaultConfig(), prog...)
	cfg := DefaultConfig()
	cfg.BuggyMul = true
	bad, _ := run(t, cfg, prog...)

	if got := good.Reg(isa.T2); got != 0x1234*0x0507 {
		t.Errorf("correct mul = %#x", got)
	}
	if got := bad.Reg(isa.T2); got != (0x34 * 0x07) {
		t.Errorf("buggy mul = %#x, want low-byte product %#x", got, 0x34*0x07)
	}
}

func TestTraceStageProgression(t *testing.T) {
	// Each instruction of a straight-line program must appear in IF, ID,
	// EX, MEM, WB on five consecutive cycles.
	_, tr := run(t, DefaultConfig(),
		isa.Addi(isa.T0, isa.Zero, 1),
		isa.Addi(isa.T1, isa.Zero, 2),
		isa.Addi(isa.T2, isa.Zero, 3),
		isa.Ebreak(),
	)
	for seq := 0; seq < 4; seq++ {
		for s := IF; s <= WB; s++ {
			cycle := seq + int(s)
			if cycle >= len(tr) {
				t.Fatalf("trace too short: %d cycles", len(tr))
			}
			got := tr[cycle].Stages[s]
			if got.Seq != seq {
				t.Errorf("cycle %d stage %v: seq = %d, want %d", cycle, s, got.Seq, seq)
			}
		}
	}
}

func TestTraceStalledStagesHaveNoFlips(t *testing.T) {
	_, tr := run(t, DefaultConfig(),
		isa.Addi(isa.T0, isa.Zero, 3),
		isa.Addi(isa.T1, isa.Zero, 4),
		isa.Mul(isa.T2, isa.T0, isa.T1),
		isa.Lw(isa.T3, isa.Zero, 1024),
		isa.Ebreak(),
	)
	for i := range tr {
		for s := Stage(0); s < NumStages; s++ {
			st := &tr[i].Stages[s]
			if st.Stalled && st.FlipCount() != 0 {
				t.Errorf("cycle %d stage %v stalled but has %d flips", i, s, st.FlipCount())
			}
		}
	}
}

func TestTraceWBSeqMonotone(t *testing.T) {
	_, tr := run(t, DefaultConfig(),
		isa.Addi(isa.T0, isa.Zero, 100),
		isa.Addi(isa.T0, isa.T0, -1),
		isa.Bne(isa.T0, isa.Zero, -4),
		isa.Lw(isa.T1, isa.Zero, 2000),
		isa.Mul(isa.T2, isa.T0, isa.T1),
		isa.Ebreak(),
	)
	last := -1
	for i := range tr {
		st := &tr[i].Stages[WB]
		if st.Bubble {
			continue
		}
		if st.Seq <= last {
			t.Fatalf("WB sequence not monotone: %d after %d (cycle %d)", st.Seq, last, i)
		}
		last = st.Seq
	}
}

func TestStepAfterHaltErrors(t *testing.T) {
	c, _ := run(t, DefaultConfig(), isa.Ebreak())
	if _, err := c.Step(); err == nil {
		t.Error("Step after halt should error")
	}
}

func TestRunExceedsMaxCycles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 50
	c := MustNew(cfg)
	// Infinite loop: jal x0, 0 (jump to self).
	if _, err := c.RunProgram(asm(t, isa.Jal(isa.Zero, 0))); err == nil {
		t.Error("expected MaxCycles error for infinite loop")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.MulLatency = 0
	if _, err := New(bad); err == nil {
		t.Error("MulLatency=0 accepted")
	}
	bad = DefaultConfig()
	bad.MaxCycles = 0
	if _, err := New(bad); err == nil {
		t.Error("MaxCycles=0 accepted")
	}
	bad = DefaultConfig()
	bad.Cache.SizeBytes = 100
	if _, err := New(bad); err == nil {
		t.Error("invalid cache accepted")
	}
}

// randProgram builds a random but halting program exercising ALU ops,
// loads, stores, shifts, multiplies and short forward branches. Memory
// operations are confined to [1024, 2047] so they never clobber code.
func randProgram(r *rand.Rand, n int) []isa.Inst {
	regs := []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.S0, isa.S1, isa.A0, isa.A1}
	reg := func() isa.Reg { return regs[r.Intn(len(regs))] }
	var p []isa.Inst
	// Seed registers with immediates.
	for _, rg := range regs {
		p = append(p, isa.Addi(rg, isa.Zero, int32(r.Intn(4096)-2048)))
	}
	aluR := []isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.OR, isa.AND, isa.SLL, isa.SRL,
		isa.SRA, isa.SLT, isa.SLTU, isa.MUL, isa.MULH, isa.MULHU, isa.DIV, isa.DIVU, isa.REM, isa.REMU}
	for len(p) < n {
		switch r.Intn(10) {
		case 0, 1, 2, 3: // R-type ALU
			op := aluR[r.Intn(len(aluR))]
			p = append(p, isa.Inst{Op: op, Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 4, 5: // I-type ALU
			p = append(p, isa.Addi(reg(), reg(), int32(r.Intn(4096)-2048)))
		case 6: // store to the safe window
			off := int32(1024 + 4*r.Intn(256))
			p = append(p, isa.Sw(reg(), isa.Zero, off))
		case 7: // load from the safe window
			off := int32(1024 + 4*r.Intn(256))
			p = append(p, isa.Lw(reg(), isa.Zero, off))
		case 8: // shift immediate
			p = append(p, isa.Slli(reg(), reg(), int32(r.Intn(32))))
		case 9: // short forward branch skipping one instruction
			ops := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}
			p = append(p, isa.Inst{Op: ops[r.Intn(len(ops))], Rs1: reg(), Rs2: reg(), Imm: 8})
			p = append(p, isa.Addi(reg(), reg(), 1)) // possibly skipped
		}
	}
	return append(p, isa.Ebreak())
}

// TestPipelineMatchesISS is the architectural-equivalence property test:
// on random programs the pipelined core and the functional reference end
// with identical register files and data memory.
func TestPipelineMatchesISS(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		prog := randProgram(r, 120)
		words := asm(t, prog...)

		c := MustNew(DefaultConfig())
		if _, err := c.RunProgram(words); err != nil {
			t.Fatalf("trial %d: pipeline: %v", trial, err)
		}
		ref := NewISS()
		if err := ref.RunProgram(words); err != nil {
			t.Fatalf("trial %d: iss: %v", trial, err)
		}
		for rg := isa.Reg(0); rg < isa.NumRegs; rg++ {
			if c.Reg(rg) != ref.Regs[rg] {
				t.Fatalf("trial %d: reg %v mismatch: pipeline %#x, iss %#x",
					trial, rg, c.Reg(rg), ref.Regs[rg])
			}
		}
		for addr := uint32(1024); addr < 2048; addr += 4 {
			if got, want := c.Memory().ReadWord(addr), ref.Mem.ReadWord(addr); got != want {
				t.Fatalf("trial %d: mem[%#x] mismatch: pipeline %#x, iss %#x", trial, addr, got, want)
			}
		}
	}
}

// TestPipelineMatchesISSAllConfigs repeats the equivalence check across
// microarchitectural variations: timing knobs must never change
// architecture.
func TestPipelineMatchesISSAllConfigs(t *testing.T) {
	configs := []func(*Config){
		func(c *Config) { c.Forwarding = false },
		func(c *Config) { c.Predictor = PredictNotTaken },
		func(c *Config) { c.Predictor = PredictGShare },
		func(c *Config) { c.Predictor = PredictBimodal },
		func(c *Config) { c.MulLatency = 8; c.DivLatency = 16 },
		func(c *Config) { c.Cache.HitLatency = 0; c.Cache.MissPenalty = 10 },
		func(c *Config) { c.Cache.SizeBytes = 256; c.Cache.LineBytes = 16; c.Cache.Ways = 1 },
	}
	r := rand.New(rand.NewSource(7))
	for ci, mod := range configs {
		prog := randProgram(r, 100)
		words := asm(t, prog...)
		cfg := DefaultConfig()
		mod(&cfg)
		c := MustNew(cfg)
		if _, err := c.RunProgram(words); err != nil {
			t.Fatalf("config %d: pipeline: %v", ci, err)
		}
		ref := NewISS()
		if err := ref.RunProgram(words); err != nil {
			t.Fatalf("config %d: iss: %v", ci, err)
		}
		for rg := isa.Reg(0); rg < isa.NumRegs; rg++ {
			if c.Reg(rg) != ref.Regs[rg] {
				t.Fatalf("config %d: reg %v mismatch: pipeline %#x, iss %#x",
					ci, rg, c.Reg(rg), ref.Regs[rg])
			}
		}
	}
}

func TestStatsIPC(t *testing.T) {
	c, tr := run(t, DefaultConfig(),
		isa.Addi(isa.T0, isa.Zero, 1),
		isa.Addi(isa.T1, isa.Zero, 2),
		isa.Ebreak(),
	)
	st := c.Stats()
	if st.Cycles != len(tr) {
		t.Errorf("stats cycles %d != trace length %d", st.Cycles, len(tr))
	}
	if ipc := st.IPC(); ipc <= 0 || ipc > 1 {
		t.Errorf("IPC = %f out of (0,1]", ipc)
	}
	if (Stats{}).IPC() != 0 {
		t.Error("zero stats IPC should be 0")
	}
}

func TestResetCoreKeepsMemory(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.Memory().WriteWord(0x1000, 77)
	c.SetReg(isa.T0, 5)
	c.ResetCore()
	if c.Reg(isa.T0) != 0 {
		t.Error("register survived ResetCore")
	}
	if c.Memory().ReadWord(0x1000) != 77 {
		t.Error("memory did not survive ResetCore")
	}
	c.Reset()
	if c.Memory().ReadWord(0x1000) != 0 {
		t.Error("memory survived full Reset")
	}
}

func TestSetRegZeroIgnored(t *testing.T) {
	c := MustNew(DefaultConfig())
	c.SetReg(isa.Zero, 99)
	if c.Reg(isa.Zero) != 0 {
		t.Error("x0 must stay zero")
	}
}

func TestTraceHelpers(t *testing.T) {
	_, tr := run(t, DefaultConfig(),
		isa.Lw(isa.T0, isa.Zero, 1024),
		isa.Ebreak(),
	)
	if tr.Cycles() != len(tr) {
		t.Error("Cycles() mismatch")
	}
	if tr.StallCycles() == 0 {
		t.Error("miss load should produce stall cycles")
	}
	if TotalFeatureBits() != 32*(2+3+3+2+2) {
		t.Errorf("TotalFeatureBits = %d", TotalFeatureBits())
	}
	for s := Stage(0); s < NumStages; s++ {
		if FeatureBits(s) != 32*LatchWords(s) {
			t.Errorf("FeatureBits(%v) inconsistent", s)
		}
	}
	if IF.String() != "IF" || WB.String() != "WB" || Stage(9).String() != "??" {
		t.Error("Stage.String broken")
	}
}

func BenchmarkPipelineStep(b *testing.B) {
	// Endless loop (the counter reloads when it drains) so Step can be
	// called b.N times regardless of N.
	prog := []isa.Inst{
		isa.Addi(isa.T0, isa.Zero, 2000),
		isa.Addi(isa.T0, isa.T0, -1),
		isa.Bne(isa.T0, isa.Zero, -4),
		isa.Jal(isa.Zero, -12),
	}
	cfg := DefaultConfig()
	c := MustNew(cfg)
	words := asm(b, prog...)
	c.LoadProgram(0, words)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineRunLoop(b *testing.B) {
	prog := []isa.Inst{
		isa.Addi(isa.T0, isa.Zero, 1000),
		isa.Addi(isa.T0, isa.T0, -1),
		isa.Bne(isa.T0, isa.Zero, -4),
		isa.Ebreak(),
	}
	c := MustNew(DefaultConfig())
	words := asm(b, prog...)
	for i := 0; i < b.N; i++ {
		if _, err := c.RunProgram(words); err != nil {
			b.Fatal(err)
		}
	}
}
