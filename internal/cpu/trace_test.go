package cpu

import (
	"math/rand"
	"testing"

	"emsim/internal/isa"
)

// TestTraceFlipInvariant checks the defining property of the transition
// bits: every stage's Flip word equals the XOR of its Latch word with the
// previous cycle's Latch word, across random programs.
func TestTraceFlipInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		prog := randProgram(r, 120)
		c := MustNew(DefaultConfig())
		tr, err := c.RunProgram(asm(t, prog...))
		if err != nil {
			t.Fatal(err)
		}
		var prev [NumStages][MaxLatchWords]uint32
		for i := range tr {
			for s := Stage(0); s < NumStages; s++ {
				st := &tr[i].Stages[s]
				for w := 0; w < MaxLatchWords; w++ {
					if st.Flip[w] != st.Latch[w]^prev[s][w] {
						t.Fatalf("trial %d cycle %d stage %v word %d: flip %#x != latch %#x ^ prev %#x",
							trial, i, s, w, st.Flip[w], st.Latch[w], prev[s][w])
					}
				}
				prev[s] = st.Latch
			}
		}
	}
}

// TestTraceRetirementCompleteness: every fetched instruction either
// retires exactly once (appears in WB with its sequence number) or was
// flushed; retired sequence numbers are gap-free except for flushed ones.
func TestTraceRetirementCompleteness(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		prog := randProgram(r, 100)
		c := MustNew(DefaultConfig())
		tr, err := c.RunProgram(asm(t, prog...))
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]int{}
		for i := range tr {
			st := &tr[i].Stages[WB]
			if !st.Bubble && st.Seq >= 0 {
				seen[st.Seq]++
			}
		}
		for seq, n := range seen {
			if n != 1 {
				t.Fatalf("trial %d: seq %d retired %d times", trial, seq, n)
			}
		}
		st := c.Stats()
		if len(seen) != st.Retired {
			t.Fatalf("trial %d: %d distinct retirements vs stats %d", trial, len(seen), st.Retired)
		}
	}
}

// TestTraceStageOrdering: for each retired instruction, its appearances
// across stages happen in non-decreasing stage order over time.
func TestTraceStageOrdering(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	prog := randProgram(r, 80)
	c := MustNew(DefaultConfig())
	tr, err := c.RunProgram(asm(t, prog...))
	if err != nil {
		t.Fatal(err)
	}
	// For each (seq, stage) record the first cycle it appears.
	type key struct {
		seq   int
		stage Stage
	}
	first := map[key]int{}
	for i := range tr {
		for s := Stage(0); s < NumStages; s++ {
			st := &tr[i].Stages[s]
			if st.Bubble || st.Seq < 0 {
				continue
			}
			k := key{st.Seq, s}
			if _, ok := first[k]; !ok {
				first[k] = i
			}
		}
	}
	for k, cycle := range first {
		if k.stage == IF {
			continue
		}
		prevStage := key{k.seq, k.stage - 1}
		if pc, ok := first[prevStage]; ok && pc >= cycle {
			t.Fatalf("seq %d reached %v (cycle %d) before %v (cycle %d)",
				k.seq, k.stage, cycle, k.stage-1, pc)
		}
	}
}

// TestLoadUseChainNoForwarding stresses back-to-back dependent loads with
// forwarding disabled.
func TestLoadUseChainNoForwarding(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Forwarding = false
	c := MustNew(cfg)
	var prog []isa.Inst
	prog = append(prog, isa.Li(isa.S0, 0x2000)...)
	prog = append(prog,
		isa.Addi(isa.T0, isa.Zero, 7),
		isa.Sw(isa.T0, isa.S0, 0),
		isa.Lw(isa.T1, isa.S0, 0), // t1 = 7
		isa.Add(isa.T2, isa.T1, isa.T1),
		isa.Sw(isa.T2, isa.S0, 4),
		isa.Lw(isa.T3, isa.S0, 4), // t3 = 14
		isa.Add(isa.T4, isa.T3, isa.T1),
		isa.Ebreak(),
	)
	if _, err := c.RunProgram(asm(t, prog...)); err != nil {
		t.Fatal(err)
	}
	if got := c.Reg(isa.T4); got != 21 {
		t.Errorf("t4 = %d, want 21", got)
	}
}

func TestPredictorKindStrings(t *testing.T) {
	cases := map[PredictorKind]string{
		PredictTwoLevel: "two-level",
		PredictGShare:   "gshare",
		PredictBimodal:  "bimodal",
		PredictNotTaken: "not-taken",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if PredictorKind(9).String() != "unknown" {
		t.Error("unknown predictor string")
	}
}

// TestISSErrors covers the reference simulator's failure paths.
func TestISSErrors(t *testing.T) {
	s := NewISS()
	// Undecodable word at PC.
	s.Mem.WriteWord(0, 0xFFFFFFFF)
	if err := s.Step(); err == nil {
		t.Error("bad word executed")
	}
	s2 := NewISS()
	s2.LoadProgram(0, asm(t, isa.Ebreak()))
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
	if !s2.Halted() {
		t.Error("not halted")
	}
	if err := s2.Step(); err == nil {
		t.Error("step after halt accepted")
	}
	// Infinite loop hits the step limit.
	s3 := NewISS()
	s3.maxSteps = 100
	s3.LoadProgram(0, asm(t, isa.Jal(isa.Zero, 0)))
	if err := s3.Run(); err == nil {
		t.Error("infinite loop not caught")
	}
	if s2.Executed() != 1 {
		t.Errorf("executed = %d", s2.Executed())
	}
}

// TestFenceIsNop confirms FENCE flows through both simulators harmlessly.
func TestFenceIsNop(t *testing.T) {
	prog := asm(t,
		isa.Addi(isa.T0, isa.Zero, 5),
		isa.Inst{Op: isa.FENCE},
		isa.Addi(isa.T1, isa.T0, 1),
		isa.Ebreak(),
	)
	c := MustNew(DefaultConfig())
	if _, err := c.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if c.Reg(isa.T1) != 6 {
		t.Errorf("t1 = %d", c.Reg(isa.T1))
	}
	ref := NewISS()
	if err := ref.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if ref.Regs[isa.T1] != 6 {
		t.Errorf("iss t1 = %d", ref.Regs[isa.T1])
	}
}

// TestBranchToUnalignedViaJALR: JALR clears bit 0 per the spec.
func TestJALRClearsBitZero(t *testing.T) {
	c := MustNew(DefaultConfig())
	prog := asm(t,
		isa.Addi(isa.T0, isa.Zero, 13), // odd target; &^1 -> 12
		isa.Jalr(isa.RA, isa.T0, 0),    // jump to 12
		isa.Ebreak(),                   // 8: skipped
		isa.Addi(isa.T1, isa.Zero, 9),  // 12: lands here
		isa.Ebreak(),                   // 16
	)
	if _, err := c.RunProgram(prog); err != nil {
		t.Fatal(err)
	}
	if got := c.Reg(isa.T1); got != 9 {
		t.Errorf("t1 = %d; JALR did not clear bit 0", got)
	}
}
