package cpu

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"emsim/internal/isa"
)

// streamProgram is a small workload that exercises every stateful unit a
// Reset must restore: register file, branch predictor (warmed loop
// branch), data cache (hit + miss lines) and data memory (stores).
func streamProgram(t testing.TB) []uint32 {
	t.Helper()
	var prog []isa.Inst
	prog = append(prog, isa.Li(isa.S0, 0x2000)...)
	prog = append(prog, isa.Li(isa.T0, 6)...)
	prog = append(prog,
		// loop: store, reload (hit), touch a far line (miss), decrement.
		isa.Sw(isa.T0, isa.S0, 0),
		isa.Lw(isa.T1, isa.S0, 0),
		isa.Lw(isa.T2, isa.S0, 0x400),
		isa.Mul(isa.T3, isa.T0, isa.T1),
		isa.Addi(isa.S0, isa.S0, 4),
		isa.Addi(isa.T0, isa.T0, -1),
		isa.Bne(isa.T0, isa.Zero, -24),
		isa.Ebreak(),
	)
	return asm(t, prog...)
}

// TestRunProgramToMatchesRunProgram pins the tentpole equivalence at the
// cpu layer: the streaming sink path must deliver exactly the cycle
// records the materializing path returns.
func TestRunProgramToMatchesRunProgram(t *testing.T) {
	words := streamProgram(t)

	want, err := MustNew(DefaultConfig()).RunProgram(words)
	if err != nil {
		t.Fatal(err)
	}

	var got Trace
	n := 0
	sink := CycleSinkFunc(func(c *Cycle) error {
		if c.N != n {
			t.Fatalf("cycle %d delivered out of order (N=%d)", n, c.N)
		}
		n++
		got = append(got, *c)
		return nil
	})
	if err := MustNew(DefaultConfig()).RunProgramTo(words, sink); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("streaming trace differs from materialized trace (%d vs %d cycles)", len(want), len(got))
	}
}

func TestRunToSinkErrorAborts(t *testing.T) {
	words := streamProgram(t)
	c := MustNew(DefaultConfig())
	wantErr := fmt.Errorf("stop here")
	seen := 0
	err := c.RunProgramTo(words, CycleSinkFunc(func(*Cycle) error {
		seen++
		if seen == 5 {
			return wantErr
		}
		return nil
	}))
	if err != wantErr {
		t.Fatalf("got err %v, want the sink's error", err)
	}
	if seen != 5 {
		t.Fatalf("sink saw %d cycles after aborting at 5", seen)
	}
}

func TestTeeSinkFansOut(t *testing.T) {
	words := streamProgram(t)
	var tr1, tr2 Trace
	if err := MustNew(DefaultConfig()).RunProgramTo(words, TeeSink(AppendTo(&tr1), AppendTo(&tr2))); err != nil {
		t.Fatal(err)
	}
	if len(tr1) == 0 || !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("tee branches diverged (%d vs %d cycles)", len(tr1), len(tr2))
	}
}

// TestRunAfterResetBitIdentical is the Session-enabling regression test:
// a core that already ran a different program (dirty registers,
// predictor history, cache contents, memory stores) and is then reused
// via RunProgram must produce a run bit-identical to a factory-fresh
// core — trace records, statistics, architectural registers and all.
func TestRunAfterResetBitIdentical(t *testing.T) {
	first := streamProgram(t)
	r := rand.New(rand.NewSource(99))
	second := asm(t, randProgram(r, 150)...)

	dirty := MustNew(DefaultConfig())
	if _, err := dirty.RunProgram(first); err != nil {
		t.Fatal(err)
	}
	got, err := dirty.RunProgram(second) // RunProgram resets the machine
	if err != nil {
		t.Fatal(err)
	}

	fresh := MustNew(DefaultConfig())
	want, err := fresh.RunProgram(second)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(want, got) {
		t.Fatalf("run after reset diverged from fresh core (%d vs %d cycles)", len(want), len(got))
	}
	if ws, gs := fresh.Stats(), dirty.Stats(); ws != gs {
		t.Fatalf("stats after reset diverged: fresh %+v, reused %+v", ws, gs)
	}
	for rg := isa.Reg(0); rg < isa.NumRegs; rg++ {
		if fresh.Reg(rg) != dirty.Reg(rg) {
			t.Fatalf("reg %v diverged after reset: fresh %#x, reused %#x", rg, fresh.Reg(rg), dirty.Reg(rg))
		}
	}
	if fresh.Halted() != dirty.Halted() || fresh.PC() != dirty.PC() {
		t.Fatal("front-end state diverged after reset")
	}
}

// TestStreamingRerunsAllocateNothing pins the zero-allocation property of
// the streaming hot path: once buffers are warm, a full
// reset-load-run-stream cycle must not allocate.
func TestStreamingRerunsAllocateNothing(t *testing.T) {
	words := streamProgram(t)
	c := MustNew(DefaultConfig())
	sink := CycleSinkFunc(func(*Cycle) error { return nil })
	if err := c.RunProgramTo(words, sink); err != nil { // warm memory pages
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := c.RunProgramTo(words, sink); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state streaming rerun allocates %.1f times per run, want 0", allocs)
	}
}

func BenchmarkRunProgramStreaming(b *testing.B) {
	words := streamProgram(b)
	c := MustNew(DefaultConfig())
	sink := CycleSinkFunc(func(*Cycle) error { return nil })
	cycles := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.RunProgramTo(words, sink); err != nil {
			b.Fatal(err)
		}
		cycles += c.CycleCount()
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
}

func BenchmarkRunProgramMaterialized(b *testing.B) {
	words := streamProgram(b)
	c := MustNew(DefaultConfig())
	cycles := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := c.RunProgram(words)
		if err != nil {
			b.Fatal(err)
		}
		cycles += len(tr)
	}
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
}
