package cpu

import "testing"

var (
	allocSinkInt  int
	allocSinkBool bool
)

// TestTraceAccessorsDoNotAllocate pins the //emsim:noalloc contract of
// the per-cycle trace accessors (LatchWords, FeatureBits, FlipCount,
// FlipBit, Cluster) by reading every stage of every streamed cycle of a
// warm run — the exact access pattern the amplitude model performs.
func TestTraceAccessorsDoNotAllocate(t *testing.T) {
	words := streamProgram(t)
	c := MustNew(DefaultConfig())
	sink := CycleSinkFunc(func(cy *Cycle) error {
		for s := Stage(0); s < NumStages; s++ {
			st := &cy.Stages[s]
			allocSinkInt += LatchWords(s) + FeatureBits(s) + st.FlipCount() + int(st.Cluster())
			allocSinkBool = st.FlipBit(0)
		}
		return nil
	})
	if err := c.RunProgramTo(words, sink); err != nil { // warm memory pages
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := c.RunProgramTo(words, sink); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("trace accessors allocate %.1f times per run, want 0", allocs)
	}
}
