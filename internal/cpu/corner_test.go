package cpu

import (
	"testing"

	"emsim/internal/isa"
	"emsim/internal/mem"
)

// Corner cases at the intersections of the pipeline's mechanisms:
// control flow against control flow, hazards against multi-cycle units,
// flushes against outstanding cache misses, and replacement-policy edges.
// Each failure mode here corrupts the microarchitectural trace the EM
// model trains on, so they are guarded independently of the ISS
// differential tests (which only check architectural state).

func TestBackToBackTakenBranches(t *testing.T) {
	// Two consecutive always-taken branches with a not-taken predictor:
	// both mispredict, and the second's wrong-path fetches must not leak
	// architectural effects from the skipped instructions.
	cfg := DefaultConfig()
	cfg.Predictor = PredictNotTaken
	c, _ := run(t, cfg,
		isa.Addi(isa.T0, isa.Zero, 1),
		isa.Beq(isa.Zero, isa.Zero, 8), // skip the poison addi
		isa.Addi(isa.T0, isa.Zero, 99), // wrong path
		isa.Beq(isa.Zero, isa.Zero, 8), // immediately another taken branch
		isa.Addi(isa.T0, isa.Zero, 98), // wrong path
		isa.Addi(isa.T1, isa.T0, 1),
		isa.Ebreak(),
	)
	if got := c.Reg(isa.T0); got != 1 {
		t.Errorf("t0 = %d, want 1 (wrong-path addi retired)", got)
	}
	if got := c.Reg(isa.T1); got != 2 {
		t.Errorf("t1 = %d, want 2", got)
	}
	if st := c.Stats(); st.Mispredicts != 2 {
		t.Errorf("mispredicts = %d, want 2", st.Mispredicts)
	}
}

func TestLoadFeedingBranch(t *testing.T) {
	// A branch whose condition register is produced by the immediately
	// preceding load: the load-use interlock must delay the branch until
	// the loaded value is available, and the direction must be computed
	// from the loaded value, not a stale register.
	c, _ := run(t, DefaultConfig(),
		isa.Addi(isa.T1, isa.Zero, 7),
		isa.Sw(isa.T1, isa.Zero, 0x100),
		isa.Lw(isa.T0, isa.Zero, 0x100), // t0 <- 7
		isa.Bne(isa.T0, isa.T1, 8),      // 7 != 7: not taken
		isa.Addi(isa.T2, isa.Zero, 1),   // must execute
		isa.Addi(isa.T3, isa.Zero, 2),
		isa.Ebreak(),
	)
	if got := c.Reg(isa.T2); got != 1 {
		t.Errorf("t2 = %d, want 1 (fall-through path skipped)", got)
	}
	if got := c.Reg(isa.T3); got != 2 {
		t.Errorf("t3 = %d, want 2", got)
	}
	if st := c.Stats(); st.StallCycles == 0 {
		t.Error("load feeding a branch produced no stall cycles")
	}
}

func TestMulFeedingBranch(t *testing.T) {
	// A branch consuming a multi-cycle multiply result: the branch must
	// wait out the EX occupancy and then resolve with the product.
	for _, fwd := range []bool{true, false} {
		cfg := DefaultConfig()
		cfg.Forwarding = fwd
		c, _ := run(t, cfg,
			isa.Addi(isa.T0, isa.Zero, 6),
			isa.Addi(isa.T1, isa.Zero, 7),
			isa.Mul(isa.T2, isa.T0, isa.T1), // 42, 3 EX cycles
			isa.Addi(isa.T3, isa.Zero, 42),
			isa.Bne(isa.T2, isa.T3, 8),    // equal: not taken
			isa.Addi(isa.T4, isa.Zero, 1), // must execute
			isa.Nop(),
			isa.Ebreak(),
		)
		if got := c.Reg(isa.T2); got != 42 {
			t.Errorf("forwarding=%v: product = %d, want 42", fwd, got)
		}
		if got := c.Reg(isa.T4); got != 1 {
			t.Errorf("forwarding=%v: branch mis-resolved against in-flight product", fwd)
		}
	}
}

func TestDivOverflowSemantics(t *testing.T) {
	// RISC-V M: INT_MIN / -1 overflows to INT_MIN with remainder 0
	// (no trap). The shared iterative unit must special-case it.
	var p []isa.Inst
	p = append(p, isa.Li(isa.T0, -0x80000000)...)
	p = append(p, isa.Li(isa.T1, -1)...)
	p = append(p,
		isa.Div(isa.T2, isa.T0, isa.T1),
		isa.Rem(isa.T3, isa.T0, isa.T1),
		isa.Ebreak(),
	)
	c, _ := run(t, DefaultConfig(), p...)
	if got := c.Reg(isa.T2); got != 0x80000000 {
		t.Errorf("INT_MIN/-1 = %#x, want 0x80000000", got)
	}
	if got := c.Reg(isa.T3); got != 0 {
		t.Errorf("INT_MIN%%-1 = %d, want 0", got)
	}
}

func TestCacheLRUEvictionInPipeline(t *testing.T) {
	// A 2-way cache with a single set: touching three distinct lines
	// evicts the least-recently-used one, so re-touching the first line
	// misses again. Guards the pipeline-to-cache wiring end to end (the
	// cache's own tests cover the policy in isolation).
	cfg := DefaultConfig()
	cfg.Cache = mem.CacheConfig{
		SizeBytes:   64, // 2 lines total -> 1 set, 2 ways
		LineBytes:   32,
		Ways:        2,
		HitLatency:  1,
		MissPenalty: 2,
	}
	c, _ := run(t, cfg,
		isa.Lw(isa.T0, isa.Zero, 0x100), // line A: miss
		isa.Lw(isa.T1, isa.Zero, 0x200), // line B: miss
		isa.Lw(isa.T2, isa.Zero, 0x100), // line A again: hit (A is MRU)
		isa.Lw(isa.T3, isa.Zero, 0x300), // line C: miss, evicts B (LRU)
		isa.Lw(isa.T4, isa.Zero, 0x200), // line B: miss again
		isa.Lw(isa.T5, isa.Zero, 0x100), // line A survived: hit? A was evicted by B's refill
		isa.Ebreak(),
	)
	st := c.Stats()
	// Access sequence against a 1-set 2-way LRU cache:
	//   A miss {A}, B miss {A,B}, A hit (A MRU), C miss evicts B {A,C},
	//   B miss evicts A {C,B}, A miss evicts C {B,A}.
	if st.CacheMisses != 5 || st.CacheHits != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/5 under LRU", st.CacheHits, st.CacheMisses)
	}
}

func TestFlushKillsWrongPathMiss(t *testing.T) {
	// A mispredicted-not-taken branch fetches a wrong-path load that
	// would miss in the cache. The flush must kill the load before its
	// MEM access: no architectural write, and no cache fill for the
	// wrong-path address (it must still miss when properly reached).
	cfg := DefaultConfig()
	cfg.Predictor = PredictNotTaken
	c, _ := run(t, cfg,
		isa.Beq(isa.Zero, isa.Zero, 12), // taken: skip two wrong-path insts
		isa.Lw(isa.T0, isa.Zero, 0x7c0), // wrong path: would miss
		isa.Addi(isa.T1, isa.Zero, 99),  // wrong path
		isa.Lw(isa.T2, isa.Zero, 0x7c0), // correct path: same address
		isa.Ebreak(),
	)
	if got := c.Reg(isa.T0); got != 0 {
		t.Errorf("wrong-path load wrote t0 = %d", got)
	}
	if got := c.Reg(isa.T1); got != 0 {
		t.Errorf("wrong-path addi wrote t1 = %d", got)
	}
	st := c.Stats()
	// Only the correct-path load may access the cache, and it must be a
	// genuine (cold) miss — a wrong-path fill would turn it into a hit.
	if st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Errorf("hits/misses = %d/%d, want 0/1 (wrong-path load touched the cache)",
			st.CacheHits, st.CacheMisses)
	}
}

func TestStallFreezesLatchBits(t *testing.T) {
	// While a stage is stalled its latch contents must not change cycle
	// to cycle: frozen latches emit no transition energy (the stall
	// modeling of §IV depends on this).
	_, tr := run(t, DefaultConfig(),
		isa.Lw(isa.T0, isa.Zero, 0x400), // miss: several stall cycles
		isa.Add(isa.T1, isa.T0, isa.T0), // load-use on top
		isa.Ebreak(),
	)
	for i := range tr {
		for s := Stage(0); s < NumStages; s++ {
			st := &tr[i].Stages[s]
			if !st.Stalled {
				continue
			}
			for w := 0; w < LatchWords(s); w++ {
				if st.Flip[w] != 0 {
					t.Fatalf("cycle %d stage %v stalled but flip word %d = %#x",
						i, s, w, st.Flip[w])
				}
			}
		}
	}
}

func TestTightSelfLoopPredictorConvergence(t *testing.T) {
	// A tight 2-instruction self-loop is the predictor's hardest BTB
	// case. The two-level predictor needs a warm-up proportional to its
	// history length, but after convergence every iteration must predict
	// correctly — so doubling the iteration count must not add a single
	// misprediction (beyond the final fall-through, identical in both).
	mispredicts := func(iters int32) uint64 {
		c, _ := run(t, DefaultConfig(),
			isa.Addi(isa.T0, isa.Zero, iters),
			isa.Addi(isa.T0, isa.T0, -1),
			isa.Bne(isa.T0, isa.Zero, -4), // loop back to the addi
			isa.Ebreak(),
		)
		if got := c.Reg(isa.T0); got != 0 {
			t.Fatalf("t0 = %d after %d iterations, want 0", got, iters)
		}
		return c.Stats().Mispredicts
	}
	m200, m400 := mispredicts(200), mispredicts(400)
	if m200 != m400 {
		t.Errorf("mispredicts grew from %d (200 iters) to %d (400 iters); steady state not clean",
			m200, m400)
	}
	if m200 > 20 {
		t.Errorf("warm-up took %d mispredictions, want <= 20", m200)
	}
}

func TestStoreToLineThenMissKeepsData(t *testing.T) {
	// A store followed by an eviction of its line and a reload: the
	// write-through/refill path must not lose the stored word.
	cfg := DefaultConfig()
	cfg.Cache = mem.CacheConfig{
		SizeBytes: 64, LineBytes: 32, Ways: 2, HitLatency: 1, MissPenalty: 2,
	}
	var p []isa.Inst
	p = append(p, isa.Li(isa.T1, 0x1234abc)...)
	p = append(p,
		isa.Sw(isa.T1, isa.Zero, 0x100), // store to line A
		isa.Lw(isa.T2, isa.Zero, 0x200), // fill line B
		isa.Lw(isa.T3, isa.Zero, 0x300), // fill line C (evicts A or B)
		isa.Lw(isa.T4, isa.Zero, 0x400), // fill line D (A definitely gone)
		isa.Lw(isa.T0, isa.Zero, 0x100), // reload line A
		isa.Ebreak(),
	)
	c, _ := run(t, cfg, p...)
	if got := c.Reg(isa.T0); got != 0x1234abc {
		t.Errorf("reloaded %#x, want 0x1234abc (store lost across eviction)", got)
	}
}
