// Package asm provides a two-pass RV32IM assembler and a programmatic
// Builder for constructing programs with labels. The experiment harness
// uses the Builder to generate microbenchmarks (the paper's 7⁵ combination
// groups, SAVAT A/B alternations, AES-128) and the text assembler to load
// hand-written programs in cmd/emsim.
package asm

import (
	"fmt"

	"emsim/internal/isa"
)

// fixupKind says how a label's address patches an instruction.
type fixupKind int

const (
	fixNone   fixupKind = iota
	fixBranch           // PC-relative B-type offset
	fixJump             // PC-relative J-type offset
	fixHi               // %hi(label) for LUI (with low-part rounding)
	fixLo               // %lo(label) for ADDI/load/store offsets
	fixAbs              // absolute address into a .word
)

type item struct {
	inst  isa.Inst
	data  bool   // raw data word instead of instruction
	word  uint32 // data value when data is true
	fix   fixupKind
	label string
	line  int // 1-based source line for diagnostics (0 for Builder items)
}

// Program is an assembled binary image.
type Program struct {
	// Words is the binary image, one 32-bit word per entry, based at
	// Origin.
	Words []uint32
	// Origin is the load address of Words[0].
	Origin uint32
	// Symbols maps each label to its absolute address.
	Symbols map[string]uint32
}

// Size returns the image size in bytes.
func (p *Program) Size() int { return 4 * len(p.Words) }

// Builder accumulates instructions, labels and data and resolves label
// references at Assemble time.
type Builder struct {
	origin uint32
	items  []item
	labels map[string]int // label -> item index it precedes
	errs   []error
}

// NewBuilder returns an empty Builder with origin 0.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// SetOrigin sets the image load address. It must be called before any
// instruction is added and must be word-aligned.
func (b *Builder) SetOrigin(addr uint32) *Builder {
	if len(b.items) > 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: SetOrigin after code was added"))
	}
	if addr%4 != 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: origin %#x not word-aligned", addr))
	}
	b.origin = addr
	return b
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if name == "" {
		b.errs = append(b.errs, fmt.Errorf("asm: empty label"))
		return b
	}
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.items)
	return b
}

// I appends one or more concrete instructions.
func (b *Builder) I(insts ...isa.Inst) *Builder {
	for _, in := range insts {
		b.items = append(b.items, item{inst: in})
	}
	return b
}

// Nop appends n NOPs.
func (b *Builder) Nop(n int) *Builder {
	for i := 0; i < n; i++ {
		b.I(isa.Nop())
	}
	return b
}

// Branch appends a conditional branch to a label.
func (b *Builder) Branch(op isa.Op, rs1, rs2 isa.Reg, label string) *Builder {
	if !op.IsBranch() {
		b.errs = append(b.errs, fmt.Errorf("asm: Branch with non-branch op %v", op))
		return b
	}
	b.items = append(b.items, item{
		inst:  isa.Inst{Op: op, Rs1: rs1, Rs2: rs2},
		fix:   fixBranch,
		label: label,
	})
	return b
}

// Jal appends a jump-and-link to a label.
func (b *Builder) Jal(rd isa.Reg, label string) *Builder {
	b.items = append(b.items, item{
		inst:  isa.Inst{Op: isa.JAL, Rd: rd},
		fix:   fixJump,
		label: label,
	})
	return b
}

// La appends the two-instruction absolute-address materialization
// (lui+addi) for a label.
func (b *Builder) La(rd isa.Reg, label string) *Builder {
	b.items = append(b.items,
		item{inst: isa.Inst{Op: isa.LUI, Rd: rd}, fix: fixHi, label: label},
		item{inst: isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd}, fix: fixLo, label: label},
	)
	return b
}

// Li appends the shortest load-immediate sequence for v.
func (b *Builder) Li(rd isa.Reg, v int32) *Builder { return b.I(isa.Li(rd, v)...) }

// Word appends a raw data word.
func (b *Builder) Word(v uint32) *Builder {
	b.items = append(b.items, item{data: true, word: v})
	return b
}

// Words appends raw data words.
func (b *Builder) Words(vs ...uint32) *Builder {
	for _, v := range vs {
		b.Word(v)
	}
	return b
}

// WordAddr appends a data word holding a label's absolute address.
func (b *Builder) WordAddr(label string) *Builder {
	b.items = append(b.items, item{data: true, fix: fixAbs, label: label})
	return b
}

// Len returns the current image length in words.
func (b *Builder) Len() int { return len(b.items) }

// hiLo splits an absolute address into the LUI/ADDI pair used by la: the
// high part is rounded so the sign-extended low part recombines exactly.
func hiLo(addr uint32) (hi, lo int32) {
	hi = int32(addr+0x800) >> 12
	lo = int32(addr) - hi<<12
	return hi & 0xFFFFF, lo
}

// Assemble resolves labels and encodes the image.
func (b *Builder) Assemble() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	symbols := make(map[string]uint32, len(b.labels))
	for name, idx := range b.labels {
		symbols[name] = b.origin + 4*uint32(idx)
	}
	words := make([]uint32, len(b.items))
	for i, it := range b.items {
		addr := b.origin + 4*uint32(i)
		if it.fix != fixNone {
			target, ok := symbols[it.label]
			if !ok {
				return nil, fmt.Errorf("asm: undefined label %q%s", it.label, lineRef(it.line))
			}
			switch it.fix {
			case fixBranch, fixJump:
				it.inst.Imm = int32(target) - int32(addr)
			case fixHi:
				hi, _ := hiLo(target)
				it.inst.Imm = hi
			case fixLo:
				_, lo := hiLo(target)
				it.inst.Imm = lo
			case fixAbs:
				it.word = target
			}
		}
		if it.data {
			words[i] = it.word
			continue
		}
		w, err := isa.Encode(it.inst)
		if err != nil {
			return nil, fmt.Errorf("asm: at %#x%s: %w", addr, lineRef(it.line), err)
		}
		words[i] = w
	}
	return &Program{Words: words, Origin: b.origin, Symbols: symbols}, nil
}

// MustAssemble is Assemble for known-good programs; it panics on error.
func (b *Builder) MustAssemble() *Program {
	p, err := b.Assemble()
	if err != nil {
		panic(err)
	}
	return p
}

func lineRef(line int) string {
	if line == 0 {
		return ""
	}
	return fmt.Sprintf(" (line %d)", line)
}
