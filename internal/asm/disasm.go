package asm

import (
	"fmt"
	"strings"

	"emsim/internal/isa"
)

// DisassembleWord renders one instruction word at the given address in
// assembler syntax, resolving PC-relative targets to absolute addresses.
// Undecodable words render as ".word 0x…".
func DisassembleWord(addr, word uint32) string {
	in, err := isa.Decode(word)
	if err != nil {
		return fmt.Sprintf(".word 0x%08x", word)
	}
	switch {
	case in.IsNOP():
		return "nop"
	case in.Op.IsBranch():
		// Offsets are what the assembler accepts back; the resolved
		// absolute target rides along as a comment.
		return fmt.Sprintf("%s %s, %s, %d  # -> 0x%x", in.Op, in.Rs1, in.Rs2, in.Imm, addr+uint32(in.Imm))
	case in.Op == isa.JAL:
		return fmt.Sprintf("%s %s, %d  # -> 0x%x", in.Op, in.Rd, in.Imm, addr+uint32(in.Imm))
	default:
		return in.String()
	}
}

// Disassemble renders a whole image as an address-annotated listing.
func Disassemble(origin uint32, words []uint32) string {
	var b strings.Builder
	for i, w := range words {
		addr := origin + uint32(4*i)
		fmt.Fprintf(&b, "%08x:  %08x  %s\n", addr, w, DisassembleWord(addr, w))
	}
	return b.String()
}
