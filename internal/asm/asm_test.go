package asm

import (
	"strings"
	"testing"

	"emsim/internal/cpu"
	"emsim/internal/isa"
)

// runOnCPU assembles and executes src, returning the core for inspection.
func runOnCPU(t *testing.T, src string) *cpu.CPU {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c := cpu.MustNew(cpu.DefaultConfig())
	c.LoadProgram(prog.Origin, prog.Words)
	if _, err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestBuilderBasic(t *testing.T) {
	p := NewBuilder().
		I(isa.Addi(isa.T0, isa.Zero, 5)).
		I(isa.Ebreak()).
		MustAssemble()
	if len(p.Words) != 2 {
		t.Fatalf("words = %d, want 2", len(p.Words))
	}
	if p.Words[0] != isa.MustEncode(isa.Addi(isa.T0, isa.Zero, 5)) {
		t.Error("first word mismatch")
	}
	if p.Size() != 8 {
		t.Errorf("Size = %d", p.Size())
	}
}

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder()
	b.I(isa.Addi(isa.T0, isa.Zero, 3))          // 0
	b.Label("loop")                             // 4
	b.I(isa.Addi(isa.T0, isa.T0, -1))           // 4
	b.Branch(isa.BNE, isa.T0, isa.Zero, "loop") // 8 -> offset -4
	b.I(isa.Ebreak())
	p := b.MustAssemble()

	in, err := isa.Decode(p.Words[2])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.BNE || in.Imm != -4 {
		t.Errorf("branch decoded as %v (imm %d), want bne imm=-4", in.Op, in.Imm)
	}
	if p.Symbols["loop"] != 4 {
		t.Errorf("loop = %#x, want 4", p.Symbols["loop"])
	}
}

func TestBuilderJalForwardReference(t *testing.T) {
	b := NewBuilder()
	b.Jal(isa.RA, "target") // 0
	b.I(isa.Ebreak())       // 4
	b.Label("target")
	b.I(isa.Ebreak()) // 8
	p := b.MustAssemble()
	in, _ := isa.Decode(p.Words[0])
	if in.Op != isa.JAL || in.Imm != 8 {
		t.Errorf("jal = %v imm %d, want imm 8", in.Op, in.Imm)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder().Branch(isa.BNE, 0, 0, "nowhere").Assemble(); err == nil {
		t.Error("undefined label accepted")
	}
	if _, err := NewBuilder().Branch(isa.ADD, 0, 0, "x").Assemble(); err == nil {
		t.Error("non-branch op in Branch accepted")
	}
	if _, err := NewBuilder().Label("a").Label("a").Assemble(); err == nil {
		t.Error("duplicate label accepted")
	}
	if _, err := NewBuilder().Label("").Assemble(); err == nil {
		t.Error("empty label accepted")
	}
	b := NewBuilder()
	b.I(isa.Nop())
	if _, err := b.SetOrigin(0x100).Assemble(); err == nil {
		t.Error("SetOrigin after code accepted")
	}
	if _, err := NewBuilder().SetOrigin(2).Assemble(); err == nil {
		t.Error("unaligned origin accepted")
	}
}

func TestBuilderWordAddr(t *testing.T) {
	b := NewBuilder()
	b.I(isa.Ebreak())
	b.Label("table")
	b.WordAddr("table")
	p := b.MustAssemble()
	if p.Words[1] != 4 {
		t.Errorf("table pointer = %#x, want 4", p.Words[1])
	}
}

func TestBuilderLa(t *testing.T) {
	b := NewBuilder().SetOrigin(0)
	b.La(isa.T0, "data")
	b.I(isa.Lw(isa.T1, isa.T0, 0))
	b.I(isa.Ebreak())
	b.Label("data")
	b.Word(0xCAFEBABE)
	p := b.MustAssemble()

	c := cpu.MustNew(cpu.DefaultConfig())
	c.LoadProgram(p.Origin, p.Words)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Reg(isa.T1); got != 0xCAFEBABE {
		t.Errorf("loaded %#x via la, want 0xCAFEBABE", got)
	}
}

func TestAssembleLoopProgram(t *testing.T) {
	c := runOnCPU(t, `
		# sum integers 1..10 into t1
		li   t0, 10
		li   t1, 0
	loop:
		add  t1, t1, t0
		addi t0, t0, -1
		bnez t0, loop
		sw   t1, 1024(zero)
		ebreak
	`)
	if got := c.Reg(isa.T1); got != 55 {
		t.Errorf("sum = %d, want 55", got)
	}
	if got := c.Memory().ReadWord(1024); got != 55 {
		t.Errorf("stored sum = %d, want 55", got)
	}
}

func TestAssembleFunctionCall(t *testing.T) {
	c := runOnCPU(t, `
		li   a0, 6
		li   a1, 7
		call mul2
		mv   s0, a0
		ebreak

	mul2:           // a0 = a0 * a1
		mul  a0, a0, a1
		ret
	`)
	if got := c.Reg(isa.S0); got != 42 {
		t.Errorf("s0 = %d, want 42", got)
	}
}

func TestAssembleDataSection(t *testing.T) {
	c := runOnCPU(t, `
		la   t0, data
		lw   t1, 0(t0)
		lw   t2, 4(t0)
		lw   t3, 8(t0)
		ebreak
	data:
		.word 0x11, 34, -1
	`)
	if c.Reg(isa.T1) != 0x11 || c.Reg(isa.T2) != 34 || c.Reg(isa.T3) != 0xFFFFFFFF {
		t.Errorf("data words = %#x %#x %#x", c.Reg(isa.T1), c.Reg(isa.T2), c.Reg(isa.T3))
	}
}

func TestAssembleHiLo(t *testing.T) {
	c := runOnCPU(t, `
		lui  t0, %hi(value)
		lw   t1, %lo(value)(t0)
		addi t2, t0, %lo(value)
		ebreak
	value:
		.word 777
	`)
	if got := c.Reg(isa.T1); got != 777 {
		t.Errorf("hi/lo load = %d, want 777", got)
	}
	p := MustAssembleText("nop\nebreak")
	_ = p
	if got, want := c.Reg(isa.T2), c.Reg(isa.T0)+16-16; got == 0 && want == 0 {
		t.Log("address is zero-page; still fine")
	}
}

func TestAssemblePseudoOps(t *testing.T) {
	c := runOnCPU(t, `
		li   t0, 5
		mv   t1, t0
		not  t2, t0      # ^5
		neg  t3, t0      # -5
		seqz t4, zero    # 1
		snez t5, t0      # 1
		nop
		ebreak
	`)
	if c.Reg(isa.T1) != 5 {
		t.Error("mv failed")
	}
	if c.Reg(isa.T2) != ^uint32(5) {
		t.Errorf("not = %#x", c.Reg(isa.T2))
	}
	if int32(c.Reg(isa.T3)) != -5 {
		t.Errorf("neg = %d", int32(c.Reg(isa.T3)))
	}
	if c.Reg(isa.T4) != 1 || c.Reg(isa.T5) != 1 {
		t.Error("seqz/snez failed")
	}
}

func TestAssembleBranchAliases(t *testing.T) {
	c := runOnCPU(t, `
		li  t0, 3
		li  t1, 7
		bgt t1, t0, greater
		ebreak
	greater:
		li  s0, 1
		ble t0, t1, lesseq
		ebreak
	lesseq:
		li  s1, 2
		bgtu t1, t0, done
		ebreak
	done:
		li  s2, 3
		ebreak
	`)
	if c.Reg(isa.S0) != 1 || c.Reg(isa.S1) != 2 || c.Reg(isa.S2) != 3 {
		t.Errorf("branch aliases: s0=%d s1=%d s2=%d", c.Reg(isa.S0), c.Reg(isa.S1), c.Reg(isa.S2))
	}
}

func TestAssembleOrgDirective(t *testing.T) {
	p, err := Assemble(`
		.org 0x100
	start:
		nop
		ebreak
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Origin != 0x100 {
		t.Errorf("origin = %#x", p.Origin)
	}
	if p.Symbols["start"] != 0x100 {
		t.Errorf("start = %#x", p.Symbols["start"])
	}
}

func TestAssembleSpaceDirective(t *testing.T) {
	p, err := Assemble(`
		ebreak
	buf:
		.space 10
	end:
		.word 1
	`)
	if err != nil {
		t.Fatal(err)
	}
	// 10 bytes round to 3 words.
	if got := p.Symbols["end"] - p.Symbols["buf"]; got != 12 {
		t.Errorf("space size = %d bytes, want 12", got)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":  "frobnicate t0, t1",
		"bad register":      "add t0, q9, t1",
		"operand count":     "add t0, t1",
		"bad immediate":     "addi t0, t1, banana",
		"undefined label":   "j nowhere\nebreak",
		"bad directive":     ".bogus 1",
		"bad mem operand":   "lw t0, t1",
		"org needs value":   ".org",
		"word needs value":  ".word",
		"space needs count": ".space",
		"empty label":       "  : nop",
		"branch label":      "beq t0, t1, 5oops",
		"duplicate label":   "a:\na:\nnop",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled %q without error", name, src)
		}
	}
}

func TestAssembleCommentStyles(t *testing.T) {
	c := runOnCPU(t, `
		li t0, 1   # hash comment
		li t1, 2   // slash comment
		ebreak
	`)
	if c.Reg(isa.T0) != 1 || c.Reg(isa.T1) != 2 {
		t.Error("comments broke parsing")
	}
}

func TestAssembleLabelOnSameLine(t *testing.T) {
	c := runOnCPU(t, `
		li t0, 2
	loop: addi t0, t0, -1
		bnez t0, loop
		ebreak
	`)
	if c.Reg(isa.T0) != 0 {
		t.Errorf("t0 = %d", c.Reg(isa.T0))
	}
}

func TestAssembleRegisterForms(t *testing.T) {
	c := runOnCPU(t, `
		addi x5, x0, 9
		addi t1, zero, 1
		add  x7, x5, x6
		ebreak
	`)
	if got := c.Reg(isa.T2); got != 10 {
		t.Errorf("x7 = %d, want 10", got)
	}
}

func TestRoundTripThroughDisassembly(t *testing.T) {
	// Every encodable instruction printed by Inst.String must re-assemble
	// to the same word (for the subset with assembler-compatible syntax).
	insts := []isa.Inst{
		isa.Add(isa.T0, isa.T1, isa.T2),
		isa.Addi(isa.A0, isa.A1, -7),
		isa.Lw(isa.T0, isa.SP, 16),
		isa.Sw(isa.T0, isa.SP, 20),
		isa.Mul(isa.S0, isa.S1, isa.S2),
		isa.Slli(isa.T0, isa.T0, 3),
		isa.Lui(isa.T0, 0x1F),
		isa.Jal(isa.RA, 16),
		isa.Beq(isa.T0, isa.T1, 8),
	}
	for _, in := range insts {
		src := in.String() + "\n"
		p, err := Assemble(src)
		if err != nil {
			t.Errorf("re-assemble %q: %v", src, err)
			continue
		}
		if p.Words[0] != isa.MustEncode(in) {
			t.Errorf("%q: round trip %#08x != %#08x", strings.TrimSpace(src), p.Words[0], isa.MustEncode(in))
		}
	}
}

func BenchmarkAssembleLoop(b *testing.B) {
	src := `
		li   t0, 10
		li   t1, 0
	loop:
		add  t1, t1, t0
		addi t0, t0, -1
		bnez t0, loop
		ebreak
	`
	for i := 0; i < b.N; i++ {
		if _, err := Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}
