package asm

import (
	"fmt"
	"strconv"
	"strings"

	"emsim/internal/isa"
)

// Assemble parses RV32IM assembly text and produces a Program. The dialect
// covers what the repository's programs need:
//
//   - one instruction, label ("name:") or directive per line
//   - comments with '#' or "//"
//   - registers by number (x0..x31) or ABI name (zero, ra, sp, t0, a0, ...)
//   - immediates in decimal or 0x hex, %hi(label) / %lo(label)
//   - memory operands as "offset(reg)"
//   - branch/jump targets as labels or numeric offsets
//   - directives: .org ADDR (before code), .word v[, v...], .space BYTES
//   - pseudo-instructions: nop, li, la, mv, not, neg, seqz, snez, j, jr,
//     ret, call, beqz, bnez, bltz, bgez, bgtz, blez, bgt, ble, bgtu, bleu
func Assemble(src string) (*Program, error) {
	b := NewBuilder()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading label(s).
		for {
			idx := strings.Index(line, ":")
			if idx < 0 || strings.ContainsAny(line[:idx], " \t,()") {
				break
			}
			label := strings.TrimSpace(line[:idx])
			if label == "" {
				return nil, fmt.Errorf("asm: line %d: empty label", lineNo+1)
			}
			b.Label(label)
			line = strings.TrimSpace(line[idx+1:])
			if line == "" {
				break
			}
		}
		if line == "" {
			continue
		}
		if err := parseStatement(b, line, lineNo+1); err != nil {
			return nil, err
		}
	}
	return b.Assemble()
}

// MustAssembleText is Assemble for known-good sources; it panics on error.
func MustAssembleText(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func stripComment(line string) string {
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return line
}

func parseStatement(b *Builder, line string, lineNo int) error {
	fields := strings.SplitN(line, " ", 2)
	mnemonic := strings.ToLower(strings.TrimSpace(fields[0]))
	var rest string
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	var args []string
	if rest != "" {
		for _, a := range strings.Split(rest, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	errf := func(format string, a ...any) error {
		return fmt.Errorf("asm: line %d: "+format, append([]any{lineNo}, a...)...)
	}

	if strings.HasPrefix(mnemonic, ".") {
		return parseDirective(b, mnemonic, args, errf)
	}
	return parseInstruction(b, mnemonic, args, lineNo, errf)
}

func parseDirective(b *Builder, dir string, args []string, errf func(string, ...any) error) error {
	switch dir {
	case ".org":
		if len(args) != 1 {
			return errf(".org wants one address")
		}
		v, err := parseImm(args[0])
		if err != nil {
			return errf(".org: %v", err)
		}
		b.SetOrigin(uint32(v))
		return nil
	case ".word":
		if len(args) == 0 {
			return errf(".word wants at least one value")
		}
		for _, a := range args {
			if v, err := parseImm(a); err == nil {
				b.Word(uint32(v))
			} else if isIdent(a) {
				b.WordAddr(a)
			} else {
				return errf(".word: bad value %q", a)
			}
		}
		return nil
	case ".space", ".zero":
		if len(args) != 1 {
			return errf("%s wants a byte count", dir)
		}
		n, err := parseImm(args[0])
		if err != nil || n < 0 {
			return errf("%s: bad count %q", dir, args[0])
		}
		for i := int64(0); i < (n+3)/4; i++ {
			b.Word(0)
		}
		return nil
	case ".align":
		return nil // images are always word-aligned
	default:
		return errf("unknown directive %q", dir)
	}
}

var opByName = func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.NumOps)
	for _, op := range isa.AllOps() {
		m[op.String()] = op
	}
	return m
}()

func parseInstruction(b *Builder, mnemonic string, args []string, lineNo int, errf func(string, ...any) error) error {
	nargs := func(n int) error {
		if len(args) != n {
			return errf("%s wants %d operands, got %d", mnemonic, n, len(args))
		}
		return nil
	}
	reg := func(i int) (isa.Reg, error) {
		r, ok := regByName(args[i])
		if !ok {
			return 0, errf("%s: bad register %q", mnemonic, args[i])
		}
		return r, nil
	}
	addItem := func(it item) {
		it.line = lineNo
		b.items = append(b.items, it)
	}

	// Pseudo-instructions first.
	switch mnemonic {
	case "nop":
		if err := nargs(0); err != nil {
			return err
		}
		b.I(isa.Nop())
		return nil
	case "li":
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := parseImm(args[1])
		if err != nil {
			return errf("li: bad immediate %q", args[1])
		}
		b.Li(rd, int32(v))
		return nil
	case "la":
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if !isIdent(args[1]) {
			return errf("la: bad label %q", args[1])
		}
		b.La(rd, args[1])
		return nil
	case "mv":
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		b.I(isa.Mv(rd, rs))
		return nil
	case "not":
		if err := nargs(2); err != nil {
			return err
		}
		rd, _ := reg(0)
		rs, err := reg(1)
		if err != nil {
			return err
		}
		b.I(isa.Xori(rd, rs, -1))
		return nil
	case "neg":
		if err := nargs(2); err != nil {
			return err
		}
		rd, _ := reg(0)
		rs, err := reg(1)
		if err != nil {
			return err
		}
		b.I(isa.Sub(rd, isa.Zero, rs))
		return nil
	case "seqz":
		if err := nargs(2); err != nil {
			return err
		}
		rd, _ := reg(0)
		rs, err := reg(1)
		if err != nil {
			return err
		}
		b.I(isa.Sltiu(rd, rs, 1))
		return nil
	case "snez":
		if err := nargs(2); err != nil {
			return err
		}
		rd, _ := reg(0)
		rs, err := reg(1)
		if err != nil {
			return err
		}
		b.I(isa.Sltu(rd, isa.Zero, rs))
		return nil
	case "j":
		if err := nargs(1); err != nil {
			return err
		}
		return jumpTarget(b, isa.Zero, args[0], lineNo, errf)
	case "call":
		if err := nargs(1); err != nil {
			return err
		}
		return jumpTarget(b, isa.RA, args[0], lineNo, errf)
	case "jr":
		if err := nargs(1); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		b.I(isa.Jalr(isa.Zero, rs, 0))
		return nil
	case "ret":
		if err := nargs(0); err != nil {
			return err
		}
		b.I(isa.Jalr(isa.Zero, isa.RA, 0))
		return nil
	case "beqz", "bnez", "bltz", "bgez", "bgtz", "blez":
		if err := nargs(2); err != nil {
			return err
		}
		rs, err := reg(0)
		if err != nil {
			return err
		}
		var op isa.Op
		var r1, r2 isa.Reg
		switch mnemonic {
		case "beqz":
			op, r1, r2 = isa.BEQ, rs, isa.Zero
		case "bnez":
			op, r1, r2 = isa.BNE, rs, isa.Zero
		case "bltz":
			op, r1, r2 = isa.BLT, rs, isa.Zero
		case "bgez":
			op, r1, r2 = isa.BGE, rs, isa.Zero
		case "bgtz":
			op, r1, r2 = isa.BLT, isa.Zero, rs
		case "blez":
			op, r1, r2 = isa.BGE, isa.Zero, rs
		}
		return branchTarget(b, op, r1, r2, args[1], lineNo, errf)
	case "bgt", "ble", "bgtu", "bleu":
		if err := nargs(3); err != nil {
			return err
		}
		r1, err := reg(0)
		if err != nil {
			return err
		}
		r2, err := reg(1)
		if err != nil {
			return err
		}
		var op isa.Op
		switch mnemonic {
		case "bgt":
			op = isa.BLT
		case "ble":
			op = isa.BGE
		case "bgtu":
			op = isa.BLTU
		case "bleu":
			op = isa.BGEU
		}
		return branchTarget(b, op, r2, r1, args[2], lineNo, errf)
	}

	op, ok := opByName[mnemonic]
	if !ok {
		return errf("unknown mnemonic %q", mnemonic)
	}

	switch {
	case op.IsSystem() || op == isa.FENCE:
		if err := nargs(0); err != nil {
			return err
		}
		b.I(isa.Inst{Op: op})
		return nil
	case op.Format() == isa.FormatR:
		if err := nargs(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		rs2, err := reg(2)
		if err != nil {
			return err
		}
		b.I(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
		return nil
	case op.IsLoad():
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		off, rs1, fx, label, err := parseMemOperand(args[1])
		if err != nil {
			return errf("%s: %v", mnemonic, err)
		}
		addItem(item{inst: isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: off}, fix: fx, label: label})
		return nil
	case op.IsStore():
		if err := nargs(2); err != nil {
			return err
		}
		rs2, err := reg(0)
		if err != nil {
			return err
		}
		off, rs1, fx, label, err := parseMemOperand(args[1])
		if err != nil {
			return errf("%s: %v", mnemonic, err)
		}
		addItem(item{inst: isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: off}, fix: fx, label: label})
		return nil
	case op.IsBranch():
		if err := nargs(3); err != nil {
			return err
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		return branchTarget(b, op, rs1, rs2, args[2], lineNo, errf)
	case op == isa.LUI || op == isa.AUIPC:
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if label, ok := hiRef(args[1]); ok {
			addItem(item{inst: isa.Inst{Op: op, Rd: rd}, fix: fixHi, label: label})
			return nil
		}
		v, err := parseImm(args[1])
		if err != nil {
			return errf("%s: bad immediate %q", mnemonic, args[1])
		}
		b.I(isa.Inst{Op: op, Rd: rd, Imm: int32(v)})
		return nil
	case op == isa.JAL:
		switch len(args) {
		case 1:
			return jumpTarget(b, isa.RA, args[0], lineNo, errf)
		case 2:
			rd, err := reg(0)
			if err != nil {
				return err
			}
			return jumpTarget(b, rd, args[1], lineNo, errf)
		default:
			return errf("jal wants 1 or 2 operands")
		}
	case op == isa.JALR:
		if err := nargs(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		off, rs1, fx, label, err := parseMemOperand(args[1])
		if err != nil || fx != fixNone {
			return errf("jalr: bad operand %q", args[1])
		}
		_ = label
		b.I(isa.Jalr(rd, rs1, off))
		return nil
	default: // I-type ALU and shifts
		if err := nargs(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs1, err := reg(1)
		if err != nil {
			return err
		}
		if label, ok := loRef(args[2]); ok {
			addItem(item{inst: isa.Inst{Op: op, Rd: rd, Rs1: rs1}, fix: fixLo, label: label})
			return nil
		}
		v, err := parseImm(args[2])
		if err != nil {
			return errf("%s: bad immediate %q", mnemonic, args[2])
		}
		b.I(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(v)})
		return nil
	}
}

func jumpTarget(b *Builder, rd isa.Reg, target string, lineNo int, errf func(string, ...any) error) error {
	if isIdent(target) {
		b.items = append(b.items, item{
			inst: isa.Inst{Op: isa.JAL, Rd: rd}, fix: fixJump, label: target, line: lineNo,
		})
		return nil
	}
	v, err := parseImm(target)
	if err != nil {
		return errf("bad jump target %q", target)
	}
	b.items = append(b.items, item{inst: isa.Jal(rd, int32(v)), line: lineNo})
	return nil
}

func branchTarget(b *Builder, op isa.Op, rs1, rs2 isa.Reg, target string, lineNo int, errf func(string, ...any) error) error {
	if isIdent(target) {
		b.items = append(b.items, item{
			inst: isa.Inst{Op: op, Rs1: rs1, Rs2: rs2}, fix: fixBranch, label: target, line: lineNo,
		})
		return nil
	}
	v, err := parseImm(target)
	if err != nil {
		return errf("bad branch target %q", target)
	}
	b.items = append(b.items, item{inst: isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: int32(v)}, line: lineNo})
	return nil
}

// parseMemOperand parses "offset(reg)", "(reg)", or "%lo(label)(reg)".
func parseMemOperand(s string) (off int32, base isa.Reg, fx fixupKind, label string, err error) {
	open := strings.LastIndex(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fixNone, "", fmt.Errorf("bad memory operand %q", s)
	}
	regStr := s[open+1 : len(s)-1]
	base, ok := regByName(regStr)
	if !ok {
		return 0, 0, fixNone, "", fmt.Errorf("bad base register %q", regStr)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		return 0, base, fixNone, "", nil
	}
	if l, ok := loRef(offStr); ok {
		return 0, base, fixLo, l, nil
	}
	v, err := parseImm(offStr)
	if err != nil {
		return 0, 0, fixNone, "", fmt.Errorf("bad offset %q", offStr)
	}
	return int32(v), base, fixNone, "", nil
}

func hiRef(s string) (string, bool) {
	if strings.HasPrefix(s, "%hi(") && strings.HasSuffix(s, ")") {
		return s[4 : len(s)-1], true
	}
	return "", false
}

func loRef(s string) (string, bool) {
	if strings.HasPrefix(s, "%lo(") && strings.HasSuffix(s, ")") {
		return s[4 : len(s)-1], true
	}
	return "", false
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	return strconv.ParseInt(s, 0, 64)
}

// isIdent reports whether s looks like a label name rather than a number.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if !(c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')) {
		return false
	}
	for i := 1; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c == '.' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
			return false
		}
	}
	return true
}

var regNames = func() map[string]isa.Reg {
	m := make(map[string]isa.Reg, 2*isa.NumRegs)
	for i := 0; i < isa.NumRegs; i++ {
		r := isa.Reg(i)
		m[fmt.Sprintf("x%d", i)] = r
		m[r.String()] = r
	}
	m["fp"] = isa.S0
	return m
}()

func regByName(s string) (isa.Reg, bool) {
	r, ok := regNames[strings.ToLower(strings.TrimSpace(s))]
	return r, ok
}
