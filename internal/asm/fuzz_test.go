package asm

import (
	"fmt"
	"strings"
	"testing"
)

// maxFuzzImageBytes bounds .space/.zero reservations so the fuzzer
// cannot spend its whole budget zero-filling gigabyte images; the
// directive's logic is fully exercised well below this.
const maxFuzzImageBytes = 1 << 16

// pathologicalSpace reports whether src contains a .space/.zero
// directive reserving more than maxFuzzImageBytes. Oversized inputs are
// skipped, not failed: they are valid programs, just useless to fuzz.
func pathologicalSpace(src string) bool {
	for _, raw := range strings.Split(src, "\n") {
		fields := strings.Fields(stripComment(raw))
		for i, tok := range fields {
			low := strings.ToLower(strings.TrimSuffix(tok, ":"))
			if low != ".space" && low != ".zero" {
				continue
			}
			if i+1 >= len(fields) {
				continue
			}
			n, err := parseImm(strings.TrimSuffix(fields[i+1], ","))
			if err == nil && n > maxFuzzImageBytes {
				return true
			}
		}
	}
	return false
}

// FuzzAsmRoundTrip feeds arbitrary text to the assembler and checks the
// two invariants the rest of the repository leans on:
//
//  1. Assemble never panics: every rejection is a structured error
//     carrying the "asm:" prefix (and a line number where one exists).
//  2. Accepted programs survive a disassemble→reassemble round trip:
//     rebuilding a source from per-word DisassembleWord lines (plus a
//     .org for relocated images) reproduces the exact words and origin.
//     This pins the assembler and disassembler as inverses on the
//     accepted subset, the same way FuzzDecodeConsistency pins
//     Encode/Decode one layer down.
func FuzzAsmRoundTrip(f *testing.F) {
	seeds := []string{
		// Valid programs covering every operand shape the parser has.
		"nop\n",
		"    li t0, 10\nloop:\n    addi t0, t0, -1\n    bnez t0, loop\n    ebreak\n",
		".org 0x100\nstart:\n    lw a0, 4(sp)\n    sw a0, 8(sp)\n    jalr zero, 0(ra)\n",
		"lui a0, 1048575\nauipc a1, 16\njal ra, 8\nnop\nret\n",
		"mul t0, t1, t2\ndiv t3, t0, t1\nsrai t4, t3, 3\necall\n",
		".word 0xdeadbeef, 0x13\n.space 8\n.align 4\n",
		"a: .word a\n    beq zero, zero, a\n",
		"# comment only\n// another\n",
		// Malformed inputs that must error, not panic.
		"addi t0\n",
		"bonk t0, t1, t2\n",
		"lw a0, 4(sp\n",
		".org 3\nnop\n",
		"dup:\ndup:\n    nop\n",
		"j nowhere\n",
		"li t9, 1\n",
		".space -1\n",
		"addi t0, t1, 99999999\n",
		": empty\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 || pathologicalSpace(src) {
			t.Skip()
		}
		p, err := Assemble(src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "asm:") {
				t.Fatalf("unstructured assembler error %q for input %q", err, src)
			}
			return
		}
		// The full Disassemble listing is for humans (address and word
		// columns); round-trip through the parseable per-word form.
		var b strings.Builder
		if p.Origin != 0 {
			fmt.Fprintf(&b, ".org 0x%x\n", p.Origin)
		}
		for i, w := range p.Words {
			b.WriteString(DisassembleWord(p.Origin+uint32(4*i), w))
			b.WriteByte('\n')
		}
		p2, err := Assemble(b.String())
		if err != nil {
			t.Fatalf("reassembling disassembly failed: %v\noriginal input: %q\ndisassembly:\n%s", err, src, b.String())
		}
		if p2.Origin != p.Origin {
			t.Fatalf("round trip moved origin %#x -> %#x for input %q", p.Origin, p2.Origin, src)
		}
		if len(p2.Words) != len(p.Words) {
			t.Fatalf("round trip changed image size %d -> %d for input %q\ndisassembly:\n%s",
				len(p.Words), len(p2.Words), src, b.String())
		}
		for i := range p.Words {
			if p.Words[i] != p2.Words[i] {
				t.Fatalf("round trip changed word %d: %#08x -> %#08x (%q)\ninput: %q",
					i, p.Words[i], p2.Words[i], DisassembleWord(p.Origin+uint32(4*i), p.Words[i]), src)
			}
		}
	})
}
