package asm

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"emsim/internal/cpu"
	"emsim/internal/isa"
)

func TestDisassembleWord(t *testing.T) {
	cases := []struct {
		addr uint32
		inst isa.Inst
		want string
	}{
		{0, isa.Nop(), "nop"},
		{0, isa.Add(isa.T0, isa.T1, isa.T2), "add t0, t1, t2"},
		{0x100, isa.Beq(isa.T0, isa.T1, 16), "beq t0, t1, 16  # -> 0x110"},
		{0x100, isa.Beq(isa.T0, isa.T1, -16), "beq t0, t1, -16  # -> 0xf0"},
		{0x200, isa.Jal(isa.RA, 0x40), "jal ra, 64  # -> 0x240"},
		{0, isa.Lw(isa.A0, isa.SP, 8), "lw a0, 8(sp)"},
	}
	for _, tc := range cases {
		got := DisassembleWord(tc.addr, isa.MustEncode(tc.inst))
		if got != tc.want {
			t.Errorf("DisassembleWord(%#x, %v) = %q, want %q", tc.addr, tc.inst, got, tc.want)
		}
	}
	if got := DisassembleWord(0, 0xFFFFFFFF); got != ".word 0xffffffff" {
		t.Errorf("bad word disassembled as %q", got)
	}
}

func TestDisassembleListing(t *testing.T) {
	p := MustAssembleText(`
		.org 0x100
		addi t0, zero, 5
		ebreak
	`)
	out := Disassemble(p.Origin, p.Words)
	if !strings.Contains(out, "00000100:") {
		t.Errorf("listing missing origin address:\n%s", out)
	}
	if !strings.Contains(out, "addi t0, zero, 5") {
		t.Errorf("listing missing instruction:\n%s", out)
	}
	if !strings.Contains(out, "ebreak") {
		t.Errorf("listing missing ebreak:\n%s", out)
	}
}

// TestExamplePrograms assembles and executes every shipped .s file and
// checks their documented results.
func TestExamplePrograms(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "programs")
	runFile := func(name string) (*cpu.CPU, *Program) {
		t.Helper()
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p, err := Assemble(string(src))
		if err != nil {
			t.Fatalf("%s: assemble: %v", name, err)
		}
		c := cpu.MustNew(cpu.DefaultConfig())
		c.LoadProgram(p.Origin, p.Words)
		if _, err := c.Run(); err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		return c, p
	}

	t.Run("dotproduct", func(t *testing.T) {
		c, p := runFile("dotproduct.s")
		// 1*8+2*7+3*6+4*5+5*4+6*3+7*2+8*1 = 120
		if got := c.Memory().ReadWord(p.Symbols["result"]); got != 120 {
			t.Errorf("dot product = %d, want 120", got)
		}
	})
	t.Run("bubblesort", func(t *testing.T) {
		c, p := runFile("bubblesort.s")
		base := p.Symbols["data"]
		want := []uint32{1, 2, 3, 4, 5, 7, 8, 9}
		for i, w := range want {
			if got := c.Memory().ReadWord(base + uint32(4*i)); got != w {
				t.Errorf("sorted[%d] = %d, want %d", i, got, w)
			}
		}
	})
	t.Run("fibonacci", func(t *testing.T) {
		c, p := runFile("fibonacci.s")
		if got := c.Memory().ReadWord(p.Symbols["result"]); got != 987 {
			t.Errorf("F(16) = %d, want 987", got)
		}
	})
}

func TestDisassembleRoundTripsExamplePrograms(t *testing.T) {
	// Every decodable instruction in the example images must disassemble
	// to text that re-assembles to an equivalent word.
	dir := filepath.Join("..", "..", "examples", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		src, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		p, err := Assemble(string(src))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		for i, w := range p.Words {
			addr := p.Origin + uint32(4*i)
			text := DisassembleWord(addr, w)
			if strings.HasPrefix(text, ".word") {
				continue // data
			}
			// Re-assemble the single line at the same address so PC-
			// relative targets resolve identically.
			re, err := Assemble(".org " + hex(addr) + "\n" + text + "\n")
			if err != nil {
				t.Errorf("%s@%#x: %q does not re-assemble: %v", e.Name(), addr, text, err)
				continue
			}
			in1, err1 := isa.Decode(w)
			in2, err2 := isa.Decode(re.Words[0])
			if err1 != nil || err2 != nil || in1 != in2 {
				t.Errorf("%s@%#x: %q: %v != %v", e.Name(), addr, text, in1, in2)
			}
		}
	}
}

func hex(v uint32) string {
	const digits = "0123456789abcdef"
	out := []byte{'0', 'x'}
	started := false
	for shift := 28; shift >= 0; shift -= 4 {
		d := (v >> uint(shift)) & 0xF
		if d != 0 || started || shift == 0 {
			out = append(out, digits[d])
			started = true
		}
	}
	return string(out)
}
