package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"emsim/internal/cpu"
)

// The paper envisions trained models being shipped "as a library (similar
// to that of for other properties such as power, timing)" (§V-C): train
// once per board, distribute the parameters, simulate everywhere. Save
// and LoadModel implement that with a stable JSON encoding.

// modelFileVersion guards the on-disk format.
const modelFileVersion = 1

type modelFile struct {
	Version int    `json:"version"`
	Model   *Model `json:"model"`
}

// Save writes the trained model to w as JSON.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(modelFile{Version: modelFileVersion, Model: m})
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.Save(f)
}

// LoadModel reads a model previously written with Save and validates its
// invariants.
func LoadModel(r io.Reader) (*Model, error) {
	var mf modelFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&mf); err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	if mf.Version != modelFileVersion {
		return nil, fmt.Errorf("core: model file version %d, want %d", mf.Version, modelFileVersion)
	}
	m := mf.Model
	if m == nil {
		return nil, fmt.Errorf("core: model file has no model")
	}
	if m.SamplesPerCycle < 1 {
		return nil, fmt.Errorf("core: loaded model has invalid SamplesPerCycle %d", m.SamplesPerCycle)
	}
	if _, err := m.Kernel.Taps(m.SamplesPerCycle); err != nil {
		return nil, fmt.Errorf("core: loaded model has an unusable kernel: %w", err)
	}
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		am := &m.Activity[s]
		if len(am.Selected) != len(am.Coef) {
			return nil, fmt.Errorf("core: stage %v activity model: %d bits vs %d coefficients",
				s, len(am.Selected), len(am.Coef))
		}
		for _, bit := range am.Selected {
			if bit < 0 || bit >= cpu.FeatureBits(s) {
				return nil, fmt.Errorf("core: stage %v activity bit %d out of range", s, bit)
			}
		}
	}
	return m, nil
}

// LoadModelFile reads a model from path.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
