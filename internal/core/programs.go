package core

import (
	"fmt"
	"math/rand"

	"emsim/internal/asm"
	"emsim/internal/isa"
)

// This file generates the measurement campaigns of §III/§V-A: all-NOP
// captures for kernel fitting, NOP→inst→NOP sequences with zero operands
// for the baseline amplitudes, the same with random operands for the
// activity-factor regression, and mixed programs for the MISO fit.

// dataBase is where training programs keep their scratch data, far from
// the code.
const dataBase = 0x2000

// allNOPProgram returns n NOPs followed by EBREAK.
func allNOPProgram(n int) []uint32 {
	b := asm.NewBuilder()
	b.Nop(n)
	b.I(isa.Ebreak())
	return b.MustAssemble().Words
}

// zeroOperandPrograms builds the §III-B baseline campaign: for each
// cluster representative, NOP → inst → NOP sequences with all operands
// zero (registers reset to 0 at power-on), so only instruction-dependent
// activity remains. Extra variants cover taken branches (flush bubbles)
// and both cache outcomes.
func zeroOperandPrograms() [][]uint32 {
	gap := 8
	wrap := func(build func(b *asm.Builder)) []uint32 {
		b := asm.NewBuilder()
		b.Nop(gap)
		build(b)
		b.Nop(gap)
		b.I(isa.Ebreak())
		return b.MustAssemble().Words
	}
	repeat := func(n int, inst ...isa.Inst) func(b *asm.Builder) {
		return func(b *asm.Builder) {
			for i := 0; i < n; i++ {
				b.I(inst...)
				b.Nop(gap)
			}
		}
	}
	var progs [][]uint32
	// ALU representative.
	progs = append(progs, wrap(repeat(6, isa.Add(isa.X1, isa.X1, isa.X1))))
	// Shift representative.
	progs = append(progs, wrap(repeat(6, isa.Slli(isa.X1, isa.X1, 0))))
	// MUL/DIV representative (stalls the front end for MulLatency).
	progs = append(progs, wrap(repeat(6, isa.Mul(isa.X1, isa.X1, isa.X1))))
	progs = append(progs, wrap(repeat(4, isa.Div(isa.X1, isa.X1, isa.X1))))
	// Store representative.
	progs = append(progs, wrap(repeat(6, isa.Sw(isa.X1, isa.X1, 0))))
	// Loads: same address repeatedly — first access misses (Load
	// cluster), the rest hit (Cache cluster); the trace tells them apart.
	progs = append(progs, wrap(repeat(8, isa.Lw(isa.X1, isa.Zero, 0))))
	// Loads that always miss: a fresh cache line each time.
	progs = append(progs, wrap(func(b *asm.Builder) {
		for i := 0; i < 8; i++ {
			b.I(isa.Lw(isa.X1, isa.Zero, int32(64*i)))
			b.Nop(gap)
		}
	}))
	// Branch, not taken (zero operands keep x1 == x2 == 0, BNE fails).
	progs = append(progs, wrap(repeat(6, isa.Bne(isa.X1, isa.X2, 8))))
	// Branch, taken: BEQ x0,x0 forward — mispredicted at least initially,
	// exercising flush bubbles.
	progs = append(progs, wrap(func(b *asm.Builder) {
		for i := 0; i < 6; i++ {
			b.I(isa.Beq(isa.Zero, isa.Zero, 8))
			b.I(isa.Nop()) // skipped on the taken path
			b.Nop(gap)
		}
	}))
	return progs
}

// randomOperandPrograms builds the §III-B activity campaign: the same
// NOP → inst → NOP structure, but operands, addresses, immediates and
// memory contents are randomized so the data-dependent bit flips span
// their range. Register setup happens well before the probe instruction
// so the pipeline is NOP-quiet around it.
//
// stream supplies the generator for the i-th program of the campaign.
// Each program draws from its own stream, so the campaign's content is a
// function of the stream seeds alone — never of how many draws an
// earlier program consumed. That independence is what lets the trainer
// measure the programs in any order, on any worker, without perturbing
// the campaign.
func randomOperandPrograms(stream func(i int) *rand.Rand, instancesPerCluster int) ([][]uint32, error) {
	gap := 7
	var progs [][]uint32

	build := func(emit func(b *asm.Builder, rng *rand.Rand, i int)) error {
		rng := stream(len(progs))
		b := asm.NewBuilder()
		b.Nop(gap)
		for i := 0; i < instancesPerCluster; i++ {
			emit(b, rng, i)
			b.Nop(gap)
		}
		b.I(isa.Ebreak())
		p, err := b.Assemble()
		if err != nil {
			return err
		}
		progs = append(progs, p.Words)
		return nil
	}
	setRegs := func(b *asm.Builder, rng *rand.Rand) (isa.Reg, isa.Reg) {
		b.Li(isa.T0, int32(rng.Uint32()))
		b.Li(isa.T1, int32(rng.Uint32()))
		b.Nop(gap)
		return isa.T0, isa.T1
	}

	// ALU / Shift / MUL / DIV with random register values.
	for _, op := range []isa.Op{isa.ADD, isa.XOR, isa.SLL, isa.SRL, isa.MUL, isa.DIV} {
		op := op
		if err := build(func(b *asm.Builder, rng *rand.Rand, i int) {
			ra, rb := setRegs(b, rng)
			b.I(isa.Inst{Op: op, Rd: isa.T2, Rs1: ra, Rs2: rb})
		}); err != nil {
			return nil, err
		}
	}
	// Register-immediate ALU with random immediates.
	if err := build(func(b *asm.Builder, rng *rand.Rand, i int) {
		ra, _ := setRegs(b, rng)
		b.I(isa.Addi(isa.T2, ra, int32(rng.Intn(4096)-2048)))
	}); err != nil {
		return nil, err
	}
	// Stores of random data to random slots in the scratch region.
	if err := build(func(b *asm.Builder, rng *rand.Rand, i int) {
		b.Li(isa.T0, int32(rng.Uint32()))
		b.Li(isa.T1, dataBase)
		b.Nop(gap)
		b.I(isa.Sw(isa.T0, isa.T1, int32(4*rng.Intn(256))))
	}); err != nil {
		return nil, err
	}
	// Loads of random data: first populate a slot, then (after the dust
	// settles) load it back; the populating store also adds samples.
	if err := build(func(b *asm.Builder, rng *rand.Rand, i int) {
		off := int32(4 * rng.Intn(256))
		b.Li(isa.T0, int32(rng.Uint32()))
		b.Li(isa.T1, dataBase)
		b.Nop(2)
		b.I(isa.Sw(isa.T0, isa.T1, off))
		b.Nop(gap)
		b.I(isa.Lw(isa.T2, isa.T1, off))
	}); err != nil {
		return nil, err
	}
	// Loads that miss: fresh lines, random offsets within the line.
	if err := build(func(b *asm.Builder, rng *rand.Rand, i int) {
		b.Li(isa.T1, dataBase+0x10000+int32(i)*256)
		b.Nop(gap)
		b.I(isa.Lw(isa.T2, isa.T1, int32(4*rng.Intn(8))))
	}); err != nil {
		return nil, err
	}
	// Branches with random operands (taken and not-taken mixture).
	if err := build(func(b *asm.Builder, rng *rand.Rand, i int) {
		ra, rb := setRegs(b, rng)
		b.I(isa.Bne(ra, rb, 8))
		b.I(isa.Nop())
	}); err != nil {
		return nil, err
	}
	return progs, nil
}

// MixedProgram generates one phase-3 / evaluation program: a dense blend
// of all clusters with random operands, loads/stores confined to the
// scratch region, short forward branches and a couple of bounded loops —
// the "similar to a real program" structure of §V-A.
func MixedProgram(rng *rand.Rand, n int) ([]uint32, error) {
	b := asm.NewBuilder()
	regs := []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.S0, isa.S1, isa.A0, isa.A1}
	reg := func() isa.Reg { return regs[rng.Intn(len(regs))] }
	for _, r := range regs {
		b.Li(r, int32(rng.Uint32()))
	}
	b.Li(isa.S2, dataBase) // scratch base pointer
	aluR := []isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.OR, isa.AND, isa.SLT, isa.SLTU,
		isa.SLL, isa.SRL, isa.SRA, isa.MUL, isa.MULH, isa.MULHU, isa.DIV, isa.DIVU, isa.REM, isa.REMU}
	b.Li(isa.S4, dataBase+0x40000) // far region: loads here tend to miss
	missOff := int32(0)
	loopID := 0
	for b.Len() < n {
		switch rng.Intn(13) {
		case 0, 1, 2, 3:
			b.I(isa.Inst{Op: aluR[rng.Intn(len(aluR))], Rd: reg(), Rs1: reg(), Rs2: reg()})
		case 4, 5:
			b.I(isa.Addi(reg(), reg(), int32(rng.Intn(4096)-2048)))
		case 6:
			b.I(isa.Sw(reg(), isa.S2, int32(4*rng.Intn(500))))
		case 7:
			b.I(isa.Lw(reg(), isa.S2, int32(4*rng.Intn(500))))
		case 8:
			b.I(isa.Slli(reg(), reg(), int32(rng.Intn(32))))
		case 9: // short forward branch
			ops := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}
			b.I(isa.Inst{Op: ops[rng.Intn(len(ops))], Rs1: reg(), Rs2: reg(), Imm: 8})
			b.I(isa.Addi(reg(), reg(), 1))
		case 10: // bounded loop
			loopID++
			label := fmt.Sprintf("loop%d", loopID)
			iters := int32(2 + rng.Intn(6))
			b.I(isa.Addi(isa.S3, isa.Zero, iters))
			b.Label(label)
			b.I(isa.Inst{Op: aluR[rng.Intn(len(aluR))], Rd: reg(), Rs1: reg(), Rs2: reg()})
			b.I(isa.Addi(isa.S3, isa.S3, -1))
			b.Branch(isa.BNE, isa.S3, isa.Zero, label)
		case 11: // sub-word memory traffic
			if rng.Intn(2) == 0 {
				b.I(isa.Sb(reg(), isa.S2, int32(rng.Intn(2000))))
			} else {
				b.I(isa.Lbu(reg(), isa.S2, int32(rng.Intn(2000))))
			}
		case 12: // cache-missing load: a fresh line in the far region
			b.I(isa.Lw(reg(), isa.S4, missOff))
			missOff += 64 // next line
			if missOff > 2000 {
				missOff = 0
				b.I(isa.Addi(isa.S4, isa.S4, 2047), isa.Addi(isa.S4, isa.S4, 2047))
			}
		}
	}
	b.I(isa.Ebreak())
	p, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	return p.Words, nil
}
