package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"emsim/internal/cpu"
	"emsim/internal/isa"
)

// Signal attribution — the capability the paper's abstract promises:
// "it allows simulated signals to be broken down and attributed to
// specific parts of the hardware and software" (§VIII). Given a trace,
// the trained model splits each cycle's predicted amplitude into its
// per-stage source terms and charges them to the pipeline stage
// (hardware attribution) and to the instruction occupying it (software
// attribution).

// InstAttribution aggregates one static instruction's contribution to
// the simulated signal across all its dynamic occurrences.
type InstAttribution struct {
	// PC is the instruction's address; Inst its decoding.
	PC   uint32
	Inst isa.Inst
	// Executions counts dynamic fetches of the instruction, including
	// wrong-path fetches that were later flushed (their brief pipeline
	// occupancy emits too); Cycles is the total unstalled occupancy.
	Executions, Cycles int
	// Total is the summed |M_s·u_s| the instruction generated; Peak the
	// largest single-cycle stage contribution.
	Total, Peak float64
}

// Mean returns the instruction's average per-cycle contribution.
func (a *InstAttribution) Mean() float64 {
	if a.Cycles == 0 {
		return 0
	}
	return a.Total / float64(a.Cycles)
}

// Attribution is a full signal breakdown for one program run.
type Attribution struct {
	// StageShare[s] is pipeline stage s's fraction of the summed
	// absolute source contributions — which hardware is the strongest
	// emitter (the question §VIII poses for hardware designers).
	StageShare [cpu.NumStages]float64
	// Background is the model's ambient level (not attributable to any
	// stage).
	Background float64
	// Instructions lists per-instruction contributions, strongest first
	// — which code is the strongest emitter (the software question).
	Instructions []InstAttribution
	// TotalAbs is the denominator of StageShare.
	TotalAbs float64
}

// Attribute breaks the model's predicted signal for a trace down by
// pipeline stage and by instruction.
func (m *Model) Attribute(tr cpu.Trace) *Attribution {
	att := &Attribution{Background: m.MISOIntercept}
	perInst := map[uint32]*InstAttribution{}
	executed := map[uint32]map[int]bool{} // pc -> seq set (execution count)

	// One pass over the fetch records maps sequence numbers to PCs
	// (IF latch word 0 holds the fetch PC).
	seqPC := map[int]uint32{}
	for i := range tr {
		st := &tr[i].Stages[cpu.IF]
		if !st.Bubble && st.Seq >= 0 {
			seqPC[st.Seq] = st.Latch[0]
		}
	}

	for i := range tr {
		c := &tr[i]
		for s := cpu.Stage(0); s < cpu.NumStages; s++ {
			st := &c.Stages[s]
			contrib := math.Abs(m.MISO[s] * m.stageSource(s, st, false))
			att.StageShare[s] += contrib
			att.TotalAbs += contrib
			if st.Bubble || st.Stalled || st.Seq < 0 {
				continue
			}
			pc, ok := seqPC[st.Seq]
			if !ok {
				continue
			}
			ia := perInst[pc]
			if ia == nil {
				ia = &InstAttribution{PC: pc, Inst: st.Inst}
				perInst[pc] = ia
				executed[pc] = map[int]bool{}
			}
			ia.Cycles++
			ia.Total += contrib
			if contrib > ia.Peak {
				ia.Peak = contrib
			}
			executed[pc][st.Seq] = true
		}
	}
	if att.TotalAbs > 0 {
		for s := range att.StageShare {
			att.StageShare[s] /= att.TotalAbs
		}
	}
	// Emit instructions in ascending-PC order before the strength sort so
	// equal totals tie-break identically on every run (map iteration order
	// would otherwise leak into the report).
	pcs := make([]uint32, 0, len(perInst))
	//emsim:ignore determinism key collection is order-independent; the keys are sorted on the next line
	for pc := range perInst {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(a, b int) bool { return pcs[a] < pcs[b] })
	for _, pc := range pcs {
		ia := perInst[pc]
		ia.Executions = len(executed[pc])
		att.Instructions = append(att.Instructions, *ia)
	}
	sort.SliceStable(att.Instructions, func(a, b int) bool {
		return att.Instructions[a].Total > att.Instructions[b].Total
	})
	return att
}

// Report renders the attribution as a table: the per-stage hardware
// shares followed by the top-k emitting instructions.
func (a *Attribution) Report(topK int) string {
	var b strings.Builder
	b.WriteString("signal attribution by pipeline stage:\n")
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		fmt.Fprintf(&b, "  %-4s %5.1f%%  %s\n", s, 100*a.StageShare[s], bar(a.StageShare[s]))
	}
	fmt.Fprintf(&b, "top emitting instructions (of %d):\n", len(a.Instructions))
	if topK > len(a.Instructions) {
		topK = len(a.Instructions)
	}
	for i := 0; i < topK; i++ {
		ia := &a.Instructions[i]
		fmt.Fprintf(&b, "  %08x  %-24s total %7.2f  mean/cycle %5.2f  fetched x%d\n",
			ia.PC, ia.Inst.String(), ia.Total, ia.Mean(), ia.Executions)
	}
	return b.String()
}

func bar(frac float64) string {
	n := int(frac*40 + 0.5)
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}
