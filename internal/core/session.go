package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"emsim/internal/cpu"
	"emsim/internal/obs"
	"emsim/internal/signal"
)

// Span identities of the session pipeline, interned once so the
// simulate hot path carries integers only.
var (
	spanSimulate = obs.RegisterSpan("session.simulate")
	spanBatch    = obs.RegisterSpan("session.batch")
)

// Session is the reusable simulation pipeline for one (model, core
// configuration) pair: it owns a resettable CPU, a cached reconstruction
// tap table and a growable signal buffer, and streams each run's cycles
// straight through the amplitude model into the overlap-add renderer —
// no cpu.Trace, amplitude slice or output slice is materialized per
// call. After the buffers warm up, SimulateProgramInto performs zero
// allocations per simulated trace, which is what makes campaign
// workloads (TVLA's thousands of AES traces, SAVAT matrices, batch
// sweeps) run at memory-bandwidth speed instead of allocator speed.
//
// A Session is not safe for concurrent use; SimulateBatch fans work
// across one private Session per worker.
type Session struct {
	model *Model
	cfg   cpu.Config
	core  *cpu.CPU
	rec   *signal.Reconstructor
	sink  ampSink
	sig   []float64 // buffer backing SimulateProgramInto's internal reuse
	lane  int       // trace lane this session's spans render on
}

// ampSink streams cycles from the core into the amplitude model and on
// into the reconstructor. It lives inside the Session so converting it to
// a cpu.CycleSink never allocates. When a tee is attached it sees every
// cycle after the amplitude model consumed it.
type ampSink struct {
	m   *Model
	rec *signal.Reconstructor
	tee cpu.CycleSink
}

//emsim:noalloc
func (a *ampSink) Cycle(c *cpu.Cycle) error {
	a.rec.Add(a.m.CycleAmplitude(c))
	if a.tee != nil {
		//emsim:ignore noalloc dynamic dispatch by design; tee observers on the hot path must themselves be allocation-free
		return a.tee.Cycle(c)
	}
	return nil
}

// NewSession builds a reusable pipeline for repeated simulations of
// programs under one core configuration. The model's fitted parameters
// are shared, not copied; ablation variants need their own Session (via
// Model.WithOptions).
func NewSession(m *Model, cfg cpu.Config) (*Session, error) {
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}
	rec, err := m.Kernel.NewReconstructor(m.SamplesPerCycle)
	if err != nil {
		return nil, err
	}
	s := &Session{model: m, cfg: cfg, core: c, rec: rec, lane: obs.NextLane()}
	s.sink = ampSink{m: m, rec: rec}
	return s, nil
}

// NewSession builds a Session for this model; see core.NewSession.
func (m *Model) NewSession(cfg cpu.Config) (*Session, error) { return NewSession(m, cfg) }

// Model returns the model the session simulates with.
func (s *Session) Model() *Model { return s.model }

// Config returns the session's core configuration.
func (s *Session) Config() cpu.Config { return s.cfg }

// CPU exposes the session's core for result inspection (registers,
// memory) after a run. Mutating it between runs is safe — every simulate
// call fully resets the machine.
func (s *Session) CPU() *cpu.CPU { return s.core }

// Cycles returns the clock-cycle count of the last simulated program.
func (s *Session) Cycles() int { return s.core.CycleCount() }

// Stats returns the core statistics of the last simulated program.
func (s *Session) Stats() cpu.Stats { return s.core.Stats() }

// SetTee attaches an observer sink that sees every simulated cycle after
// the amplitude model (or detaches the current one when sink is nil).
// Serving layers use this to accumulate per-stage contributions or
// custom statistics without a second run. The observer runs on the hot
// path: it must not retain the *cpu.Cycle it is handed, and it should be
// allocation-free if the session's zero-allocation property matters.
func (s *Session) SetTee(sink cpu.CycleSink) { s.sink.tee = sink }

// SimulateProgramInto runs the program on the session's core and renders
// the predicted analog signal into dst's backing array, which is grown
// only when its capacity is insufficient. Passing the previous output
// back as dst makes steady-state reuse allocation-free. The returned
// slice aliases dst (or the session's grown buffer) and is valid until
// the next call that reuses it.
//
//emsim:noalloc
func (s *Session) SimulateProgramInto(dst []float64, words []uint32) ([]float64, error) {
	//emsim:ignore noalloc context.Background returns the shared static empty context
	return s.SimulateProgramIntoContext(context.Background(), dst, words) //emsim:ignore ctxflow documented non-cancellable convenience form of SimulateProgramIntoContext
}

// SimulateProgramIntoContext is SimulateProgramInto with cancellation:
// the simulation aborts with ctx.Err() when the context is cancelled or
// its deadline passes, checked every cpu.CtxCheckInterval cycles. The
// context plumbing costs one nil check per cycle for a context that can
// never be cancelled, so the zero-allocation steady state is unchanged.
//
//emsim:noalloc
func (s *Session) SimulateProgramIntoContext(ctx context.Context, dst []float64, words []uint32) ([]float64, error) {
	obs.Begin(spanSimulate, s.lane)
	s.rec.Start(dst)
	if err := s.core.RunProgramToContext(ctx, words, &s.sink); err != nil {
		obs.End(spanSimulate, s.lane)
		//emsim:ignore noalloc cold failure path: the simulation already aborted
		return nil, fmt.Errorf("core: simulate: %w", err)
	}
	sig := s.rec.Finish()
	obs.End(spanSimulate, s.lane)
	return sig, nil
}

// SimulateProgram runs the program and returns its predicted analog
// signal in a fresh slice the caller may retain. The trace, amplitude
// and reconstruction intermediates still reuse session buffers; only the
// returned signal is allocated. For fully allocation-free steady-state
// reuse, use SimulateProgramInto with a recycled destination.
func (s *Session) SimulateProgram(words []uint32) ([]float64, error) {
	//emsim:ignore ctxflow documented non-cancellable convenience form of SimulateProgramContext
	return s.SimulateProgramContext(context.Background(), words)
}

// SimulateProgramContext is SimulateProgram with the cancellation
// semantics of SimulateProgramIntoContext.
func (s *Session) SimulateProgramContext(ctx context.Context, words []uint32) ([]float64, error) {
	sig, err := s.SimulateProgramIntoContext(ctx, s.sig, words)
	if err != nil {
		return nil, err
	}
	s.sig = sig[:0] // keep the grown buffer for the next run
	out := make([]float64, len(sig))
	copy(out, sig)
	return out, nil
}

// SimulateBatch simulates every program of a campaign, fanning the slice
// across `workers` goroutines with one private Session each (workers <= 0
// selects GOMAXPROCS; workers is clamped to len(programs) so no worker
// ever idles on an empty range). Results are returned in input order;
// each signal is freshly allocated and safe to retain. When simulations
// fail, the error of the lowest-indexed failing program is returned —
// deterministically, regardless of goroutine scheduling.
func (s *Session) SimulateBatch(programs [][]uint32, workers int) ([][]float64, error) {
	//emsim:ignore ctxflow documented non-cancellable convenience form of SimulateBatchContext
	return s.SimulateBatchContext(context.Background(), programs, workers)
}

// SimulateBatchContext is SimulateBatch with cancellation: in-flight
// simulations abort within cpu.CtxCheckInterval cycles of the context
// being cancelled, and the batch returns ctx.Err().
//
// Error propagation is deterministic: after any program fails, workers
// stop claiming programs beyond the lowest failing index but keep
// simulating the ones before it, so the reported error is always the
// lowest-indexed failure the batch contains — not whichever goroutine
// lost the race.
func (s *Session) SimulateBatchContext(ctx context.Context, programs [][]uint32, workers int) ([][]float64, error) {
	if len(programs) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(programs) {
		workers = len(programs)
	}
	obs.Begin(spanBatch, s.lane)
	defer obs.End(spanBatch, s.lane)
	out := make([][]float64, len(programs))
	var (
		next    atomic.Int64
		errIdx  atomic.Int64 // lowest failing program index so far
		mu      sync.Mutex
		wg      sync.WaitGroup
		byIndex = make(map[int]error)
	)
	errIdx.Store(int64(len(programs))) // sentinel: nothing failed
	// fail records a failure at program index i (or -1 for a batch-level
	// setup failure, which outranks every program).
	fail := func(i int, err error) {
		mu.Lock()
		if _, dup := byIndex[i]; !dup {
			byIndex[i] = err
		}
		mu.Unlock()
		for {
			cur := errIdx.Load()
			if int64(i) >= cur || errIdx.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ws, err := NewSession(s.model, s.cfg)
			if err != nil {
				fail(-1, err)
				return
			}
			for {
				i := int(next.Add(1)) - 1
				// Work beyond the lowest known failure is moot — the batch
				// errors anyway — but everything before it must still run so
				// an even earlier failure can surface deterministically.
				if i >= len(programs) || int64(i) > errIdx.Load() {
					return
				}
				sig, err := ws.SimulateProgramContext(ctx, programs[i])
				if err != nil {
					fail(i, fmt.Errorf("core: batch program %d: %w", i, err))
				} else {
					out[i] = sig
				}
			}
		}()
	}
	wg.Wait()
	if idx := int(errIdx.Load()); idx < len(programs) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, byIndex[idx]
	}
	return out, nil
}
