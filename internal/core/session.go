package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"emsim/internal/cpu"
	"emsim/internal/signal"
)

// Session is the reusable simulation pipeline for one (model, core
// configuration) pair: it owns a resettable CPU, a cached reconstruction
// tap table and a growable signal buffer, and streams each run's cycles
// straight through the amplitude model into the overlap-add renderer —
// no cpu.Trace, amplitude slice or output slice is materialized per
// call. After the buffers warm up, SimulateProgramInto performs zero
// allocations per simulated trace, which is what makes campaign
// workloads (TVLA's thousands of AES traces, SAVAT matrices, batch
// sweeps) run at memory-bandwidth speed instead of allocator speed.
//
// A Session is not safe for concurrent use; SimulateBatch fans work
// across one private Session per worker.
type Session struct {
	model *Model
	cfg   cpu.Config
	core  *cpu.CPU
	rec   *signal.Reconstructor
	sink  ampSink
	sig   []float64 // buffer backing SimulateProgramInto's internal reuse
}

// ampSink streams cycles from the core into the amplitude model and on
// into the reconstructor. It lives inside the Session so converting it to
// a cpu.CycleSink never allocates.
type ampSink struct {
	m   *Model
	rec *signal.Reconstructor
}

//emsim:noalloc
func (a *ampSink) Cycle(c *cpu.Cycle) error {
	a.rec.Add(a.m.CycleAmplitude(c))
	return nil
}

// NewSession builds a reusable pipeline for repeated simulations of
// programs under one core configuration. The model's fitted parameters
// are shared, not copied; ablation variants need their own Session (via
// Model.WithOptions).
func NewSession(m *Model, cfg cpu.Config) (*Session, error) {
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}
	rec, err := m.Kernel.NewReconstructor(m.SamplesPerCycle)
	if err != nil {
		return nil, err
	}
	s := &Session{model: m, cfg: cfg, core: c, rec: rec}
	s.sink = ampSink{m: m, rec: rec}
	return s, nil
}

// NewSession builds a Session for this model; see core.NewSession.
func (m *Model) NewSession(cfg cpu.Config) (*Session, error) { return NewSession(m, cfg) }

// Model returns the model the session simulates with.
func (s *Session) Model() *Model { return s.model }

// Config returns the session's core configuration.
func (s *Session) Config() cpu.Config { return s.cfg }

// CPU exposes the session's core for result inspection (registers,
// memory) after a run. Mutating it between runs is safe — every simulate
// call fully resets the machine.
func (s *Session) CPU() *cpu.CPU { return s.core }

// Cycles returns the clock-cycle count of the last simulated program.
func (s *Session) Cycles() int { return s.core.CycleCount() }

// Stats returns the core statistics of the last simulated program.
func (s *Session) Stats() cpu.Stats { return s.core.Stats() }

// SimulateProgramInto runs the program on the session's core and renders
// the predicted analog signal into dst's backing array, which is grown
// only when its capacity is insufficient. Passing the previous output
// back as dst makes steady-state reuse allocation-free. The returned
// slice aliases dst (or the session's grown buffer) and is valid until
// the next call that reuses it.
//
//emsim:noalloc
func (s *Session) SimulateProgramInto(dst []float64, words []uint32) ([]float64, error) {
	s.rec.Start(dst)
	if err := s.core.RunProgramTo(words, &s.sink); err != nil {
		//emsim:ignore noalloc cold failure path: the simulation already aborted
		return nil, fmt.Errorf("core: simulate: %w", err)
	}
	return s.rec.Finish(), nil
}

// SimulateProgram runs the program and returns its predicted analog
// signal in a fresh slice the caller may retain. The trace, amplitude
// and reconstruction intermediates still reuse session buffers; only the
// returned signal is allocated. For fully allocation-free steady-state
// reuse, use SimulateProgramInto with a recycled destination.
func (s *Session) SimulateProgram(words []uint32) ([]float64, error) {
	sig, err := s.SimulateProgramInto(s.sig, words)
	if err != nil {
		return nil, err
	}
	s.sig = sig[:0] // keep the grown buffer for the next run
	out := make([]float64, len(sig))
	copy(out, sig)
	return out, nil
}

// SimulateBatch simulates every program of a campaign, fanning the slice
// across `workers` goroutines with one private Session each (workers <= 0
// selects GOMAXPROCS). Results are returned in input order; each signal
// is freshly allocated and safe to retain. The first simulation error
// aborts the batch.
func (s *Session) SimulateBatch(programs [][]uint32, workers int) ([][]float64, error) {
	if len(programs) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(programs) {
		workers = len(programs)
	}
	out := make([][]float64, len(programs))
	var (
		next     atomic.Int64
		failed   atomic.Bool
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ws, err := NewSession(s.model, s.cfg)
			if err != nil {
				fail(err)
				return
			}
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(programs) {
					return
				}
				sig, err := ws.SimulateProgram(programs[i])
				if err != nil {
					fail(fmt.Errorf("core: batch program %d: %w", i, err))
					return
				}
				out[i] = sig
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
