// Package core implements EMSim itself: the trainable
// multi-input-single-output (MISO) model of §III that predicts the EM
// side-channel signal of a program cycle by cycle from the
// microarchitectural trace, plus the microarchitectural-event modeling of
// §IV (stalls, cache misses, misprediction flushes).
//
// The model's life cycle mirrors the paper:
//
//  1. Train fits the model against measurements of a Device (the
//     synthetic stand-in for the paper's FPGA + probe + oscilloscope):
//     the reconstruction kernel (§II-C), the baseline per-stage
//     amplitudes A (§III-B), the data-dependent activity weights via
//     stepwise regression (§III-B), and the per-stage combination
//     coefficients M (§III-C).
//  2. Simulate renders the predicted analog signal for any program by
//     running the model's own cycle-accurate core and applying the
//     fitted parameters to its trace — no further measurements needed.
//
// Ablation switches in ModelOptions reproduce the paper's accuracy-
// degradation experiments (Figures 2, 3, 5, 6, 7).
package core

import (
	"fmt"

	"emsim/internal/cpu"
	"emsim/internal/isa"
	"emsim/internal/signal"
)

// ActivityModel selects how data-dependent switching activity scales the
// baseline amplitudes.
type ActivityModel int

// The activity-factor variants of Figure 3.
const (
	// ActivityLR is the paper's linear-regression model over per-bit
	// transitions, pruned by stepwise selection (Equ. 8).
	ActivityLR ActivityModel = iota
	// ActivityAverage treats every bit flip equally (Equ. 7), the
	// ablation shown to be inadequate in Figure 3 (bottom).
	ActivityAverage
	// ActivityNone ignores data-dependent activity entirely.
	ActivityNone
)

func (a ActivityModel) String() string {
	switch a {
	case ActivityLR:
		return "stepwise-LR"
	case ActivityAverage:
		return "average"
	case ActivityNone:
		return "none"
	}
	return "unknown"
}

// ModelOptions are the simulation-time switches for the paper's ablation
// studies. The zero value disables everything; use FullModel for the
// paper's complete model.
type ModelOptions struct {
	// PerStageSources models each pipeline stage as an independent EM
	// source (§III-A). Disabled, the processor is a single source with
	// stage-averaged amplitudes (Figure 2 bottom).
	PerStageSources bool
	// Activity selects the data-dependent activity model (Figure 3).
	Activity ActivityModel
	// ModelStalls zeroes the amplitude of stalled stages (§IV,
	// Figure 5). Disabled, stalled stages emit as if active.
	ModelStalls bool
	// ModelCache distinguishes cache hits from misses and keeps the
	// miss wait cycles quiet (Figure 6). Disabled, every load looks like
	// a hit and the wait cycles emit as active MEM cycles.
	ModelCache bool
	// ModelFlush gives misprediction bubbles their own (squashed-slot)
	// amplitude class (Figure 7). Disabled, bubbles are assumed to emit
	// like live NOPs, the pipeline-unaware approximation the paper shows
	// deviating.
	ModelFlush bool
}

// FullModel returns the complete EMSim configuration.
func FullModel() ModelOptions {
	return ModelOptions{
		PerStageSources: true,
		Activity:        ActivityLR,
		ModelStalls:     true,
		ModelCache:      true,
		ModelFlush:      true,
	}
}

// NumAmpKeys is the number of per-stage amplitude classes: the seven
// Table I clusters, the NOP baseline, and the squashed-bubble class
// (flush bubbles clock less hardware than a live NOP).
const NumAmpKeys = isa.NumClusters + 2

// ampKeyNOP and ampKeyBubble index the two baseline amplitude classes.
const (
	ampKeyNOP    = isa.NumClusters
	ampKeyBubble = isa.NumClusters + 1
)

// AmpKeyName names an amplitude class for reports.
func AmpKeyName(k int) string {
	switch k {
	case ampKeyNOP:
		return "NOP"
	case ampKeyBubble:
		return "bubble"
	}
	return isa.Cluster(k).String()
}

// StageActivityModel is one pipeline stage's fitted data-activity term.
type StageActivityModel struct {
	// Selected and Coef describe the stepwise-LR variant: the chosen
	// transition-bit indices and their weights.
	Selected []int
	Coef     []float64
	// Candidates is the total number of candidate bits (for the pruning
	// ratio the paper reports).
	Candidates int
}

// PrunedFraction returns the share of candidate transition bits the
// stepwise selection dropped (the paper reports >65 %).
func (m *StageActivityModel) PrunedFraction() float64 {
	if m.Candidates == 0 {
		return 0
	}
	return 1 - float64(len(m.Selected))/float64(m.Candidates)
}

// contribution evaluates the stage's fitted (stepwise-LR) data-activity
// term for one cycle.
func (m *StageActivityModel) contribution(st *cpu.StageTrace) float64 {
	s := 0.0
	for i, bit := range m.Selected {
		if st.FlipBit(bit) {
			s += m.Coef[i]
		}
	}
	return s
}

// Model is a trained EMSim instance.
type Model struct {
	// SamplesPerCycle is the analog rate the model was trained at.
	SamplesPerCycle int
	// Kernel is the fitted reconstruction kernel (§II-C).
	Kernel signal.Kernel
	// Amp[key][stage] is the fitted baseline amplitude table Â: the
	// product of the paper's A with the stage coupling/loss absorbed, as
	// seen from the training probe position.
	Amp [NumAmpKeys][cpu.NumStages]float64
	// Background is the fitted ambient offset.
	Background float64
	// Activity holds the per-stage data-activity models.
	Activity [cpu.NumStages]StageActivityModel
	// MISO is the phase-3 combination fit: X = Intercept + Σ M[s]·u_s.
	MISOIntercept float64
	MISO          [cpu.NumStages]float64
	// SingleM is the single-source ablation's combination coefficient.
	SingleM         float64
	SingleIntercept float64
	// Options are the simulation-time ablation switches.
	Options ModelOptions
	// Beta optionally rescales each stage source for a probe position
	// other than the training one (§V-D). Nil means β = 1.
	Beta *[cpu.NumStages]float64
}

// ampKeyFor classifies a stage occupancy into an amplitude key, honoring
// the cache and flush ablations.
func (m *Model) ampKeyFor(st *cpu.StageTrace) int {
	switch {
	case st.Bubble:
		if m.Options.ModelFlush {
			return ampKeyBubble
		}
		// Without flush modeling the simulator assumes the squashed
		// slots behave like the injected NOPs the hardware substitutes —
		// the pipeline-unaware view the paper shows deviating (Figure 7).
		return ampKeyNOP
	case st.Inst.IsNOP():
		return ampKeyNOP
	default:
		cl := st.Cluster()
		if !m.Options.ModelCache && cl == isa.ClusterLoad {
			cl = isa.ClusterCache
		}
		return int(cl)
	}
}

// stageSource computes u_s for one stage of one cycle: the baseline
// amplitude for the occupant class plus the data-activity term, with
// stall handling per §IV. With averaged set, the baseline is the
// stage-averaged table entry of the single-source ablation (Figure 2
// bottom) — the activity and stall handling are shared between the two
// paths so the amplitude kernel has exactly one implementation of them.
func (m *Model) stageSource(s cpu.Stage, st *cpu.StageTrace, averaged bool) float64 {
	if st.Stalled && m.Options.ModelStalls {
		// Stalled stages are power-gated (§IV) — unless the cache model
		// is disabled, in which case a miss's wait cycles in MEM emit as
		// if the access were still active (the Figure 6 ablation). The
		// single-source ablation has no per-stage identity to apply that
		// exception to.
		if averaged || m.Options.ModelCache || s != cpu.MEM || !st.CacheAccess {
			return 0
		}
	}
	key := m.ampKeyFor(st)
	var u float64
	if averaged {
		for ss := 0; ss < cpu.NumStages; ss++ {
			u += m.Amp[key][ss]
		}
		u /= cpu.NumStages
	} else {
		u = m.Amp[key][s]
	}
	switch m.Options.Activity {
	case ActivityLR:
		u += m.Activity[s].contribution(st)
	case ActivityAverage:
		// Equ. 7 verbatim: every flip scales the baseline equally,
		// with no fitted coefficient — the ablation Figure 3 shows
		// mispredicting amplitudes.
		u *= 1 + float64(st.FlipCount())/float64(cpu.FeatureBits(s))
	}
	if !averaged && m.Beta != nil {
		u *= m.Beta[s]
	}
	return u
}

// StageContribution returns pipeline stage s's signed source term
// M[s]·u_s for one cycle's stage record — the per-stage breakdown that
// Attribute aggregates over a whole trace, exposed per cycle so
// streaming consumers (a Session tee, the serving layer's per-stage
// amplitude accumulator) can compute attributions without materializing
// a cpu.Trace. Only meaningful with PerStageSources enabled; the
// single-source ablation has no per-stage identity.
//
//emsim:noalloc
func (m *Model) StageContribution(s cpu.Stage, st *cpu.StageTrace) float64 {
	return m.MISO[s] * m.stageSource(s, st, false)
}

// CycleAmplitude predicts the per-cycle signal amplitude X[n] (Equ. 9).
//
//emsim:noalloc
func (m *Model) CycleAmplitude(c *cpu.Cycle) float64 {
	if m.Options.PerStageSources {
		x := m.MISOIntercept
		for s := cpu.Stage(0); s < cpu.NumStages; s++ {
			x += m.MISO[s] * m.stageSource(s, &c.Stages[s], false)
		}
		return x
	}
	// Single-source ablation: stage-averaged amplitudes, one coefficient.
	sum := 0.0
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		if u := m.stageSource(s, &c.Stages[s], true); u != 0 {
			sum += u
		}
	}
	return m.SingleIntercept + m.SingleM*sum
}

// Amplitudes predicts the per-cycle amplitude series for a trace.
func (m *Model) Amplitudes(tr cpu.Trace) []float64 {
	return m.AmplitudesInto(nil, tr)
}

// AmplitudesInto is the buffer-reusing form of Amplitudes: the series is
// written into dst's backing array, grown only when needed.
func (m *Model) AmplitudesInto(dst []float64, tr cpu.Trace) []float64 {
	if cap(dst) >= len(tr) {
		dst = dst[:len(tr)]
	} else {
		dst = make([]float64, len(tr))
	}
	for i := range tr {
		dst[i] = m.CycleAmplitude(&tr[i])
	}
	return dst
}

// Simulate renders the predicted analog signal for a trace: amplitudes
// through the fitted kernel (Equ. 6).
func (m *Model) Simulate(tr cpu.Trace) ([]float64, error) {
	return signal.Reconstruct(m.Amplitudes(tr), m.SamplesPerCycle, m.Kernel)
}

// SimulateProgram runs the program on a fresh core with the given
// configuration and returns the trace plus the predicted analog signal —
// the design-stage flow of §VI that needs no physical measurement.
//
// SimulateProgram allocates a core, a trace and a signal per call. For
// campaign workloads that simulate many programs under one
// configuration, a Session amortizes all of that: see NewSession.
func (m *Model) SimulateProgram(cfg cpu.Config, words []uint32) (cpu.Trace, []float64, error) {
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	tr, err := c.RunProgram(words)
	if err != nil {
		return nil, nil, fmt.Errorf("core: simulate: %w", err)
	}
	y, err := m.Simulate(tr)
	if err != nil {
		return nil, nil, err
	}
	return tr, y, nil
}

// WithOptions returns a copy of the model with different ablation
// switches (the fitted parameters are shared).
func (m *Model) WithOptions(opts ModelOptions) *Model {
	c := *m
	c.Options = opts
	return &c
}

// WithBeta returns a copy of the model with per-stage loss coefficients
// applied (the §V-D probe-position adjustment).
func (m *Model) WithBeta(beta [cpu.NumStages]float64) *Model {
	c := *m
	c.Beta = &beta
	return &c
}
