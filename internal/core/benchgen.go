package core

import (
	"fmt"
	"math/rand"

	"emsim/internal/asm"
	"emsim/internal/isa"
)

// This file generates the §V-A validation microbenchmark: programs that
// jointly cover all 7⁵ = 16807 possible pipeline occupancy combinations
// of the seven Table I clusters, split into groups of 1024 combinations
// (≈5120 instructions each, 17 groups), with random operands and a
// variant drawing from the full ISA instead of only the representatives.

// NumCombinations is 7^5, the pipeline occupancy space of §V-A.
const NumCombinations = 16807

// CombosPerGroup matches the paper's grouping (1024 combinations,
// ≈5120 instructions per group; 17 groups cover all combinations).
const CombosPerGroup = 1024

// NumGroups is ⌈16807 / 1024⌉ = 17.
const NumGroups = (NumCombinations + CombosPerGroup - 1) / CombosPerGroup

const (
	// benchScratch must clear the largest group image (~28 KB of code).
	benchScratch = 0x10000 // warm scratch region (cache-hit loads/stores)
	benchFar     = 0x80000 // miss region start
)

// clusterEmitter writes one instruction of the given cluster with random
// operands into the builder.
type clusterEmitter struct {
	rng      *rand.Rand
	fullISA  bool // draw any member instead of the representative
	missOff  int32
	seedRegs []isa.Reg
}

func newClusterEmitter(rng *rand.Rand, fullISA bool) *clusterEmitter {
	return &clusterEmitter{
		rng:      rng,
		fullISA:  fullISA,
		seedRegs: []isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.A0, isa.A1, isa.A2},
	}
}

// prologue seeds the operand registers and the scratch pointers and warms
// the hit region.
func (ce *clusterEmitter) prologue(b *asm.Builder) {
	for _, r := range ce.seedRegs {
		b.Li(r, int32(ce.rng.Uint32()))
	}
	b.Li(isa.S0, benchScratch)
	b.Li(isa.S1, benchFar)
	b.I(isa.Lw(isa.T5, isa.S0, 0)) // warm the hit line
	b.Nop(4)
}

func (ce *clusterEmitter) reg() isa.Reg {
	return ce.seedRegs[ce.rng.Intn(len(ce.seedRegs))]
}

// pick returns the mnemonic used for a cluster occurrence: the
// representative, or (fullISA) a random member.
func (ce *clusterEmitter) pick(c isa.Cluster) isa.Op {
	if !ce.fullISA {
		return isa.Representatives()[c]
	}
	members := isa.ClusterMembers(c)
	// Exclude control-transfer ALU members (JAL/JALR) and U-types with
	// special operand shapes from the random draw; they are covered by
	// the Branch cluster's control-flow behaviour and by LUI/AUIPC below.
	for {
		op := members[ce.rng.Intn(len(members))]
		switch op {
		case isa.JAL, isa.JALR:
			continue
		}
		return op
	}
}

// emit appends one instruction of cluster c (possibly with a helper
// instruction for memory/branch plumbing, which the paper's generator
// also needs for its loops and addresses).
func (ce *clusterEmitter) emit(b *asm.Builder, c isa.Cluster) {
	op := ce.pick(c)
	switch c {
	case isa.ClusterALU, isa.ClusterShift, isa.ClusterMulDiv:
		switch op.Format() {
		case isa.FormatR:
			b.I(isa.Inst{Op: op, Rd: ce.reg(), Rs1: ce.reg(), Rs2: ce.reg()})
		case isa.FormatU:
			b.I(isa.Inst{Op: op, Rd: ce.reg(), Imm: int32(ce.rng.Intn(1 << 20))})
		default: // I-type ALU / shifts
			imm := int32(ce.rng.Intn(4096) - 2048)
			switch op {
			case isa.SLLI, isa.SRLI, isa.SRAI:
				imm = int32(ce.rng.Intn(32))
			}
			b.I(isa.Inst{Op: op, Rd: ce.reg(), Rs1: ce.reg(), Imm: imm})
		}
	case isa.ClusterStore:
		b.I(isa.Inst{Op: op, Rs1: isa.S0, Rs2: ce.reg(), Imm: int32(4 * ce.rng.Intn(8))})
	case isa.ClusterCache:
		b.I(isa.Inst{Op: op, Rd: ce.reg(), Rs1: isa.S0, Imm: int32(4 * ce.rng.Intn(8))})
	case isa.ClusterLoad:
		b.I(isa.Inst{Op: op, Rd: ce.reg(), Rs1: isa.S1, Imm: ce.missOff})
		ce.missOff += 64
		if ce.missOff > 1984 {
			ce.missOff = 0
			b.I(isa.Addi(isa.S1, isa.S1, 2047), isa.Addi(isa.S1, isa.S1, 1))
		}
	case isa.ClusterBranch:
		// Mostly-forward branches with random operands; some are taken,
		// producing the mispredictions and flushes the benchmark must
		// cover.
		b.I(isa.Inst{Op: op, Rs1: ce.reg(), Rs2: ce.reg(), Imm: 8})
		b.I(isa.Addi(ce.reg(), ce.reg(), 1))
	}
}

// CombinationGroup builds benchmark group g (0 ≤ g < NumGroups): the
// instruction stream whose consecutive windows realize combinations
// g·1024 … g·1024+1023 of the 7⁵ space. Each combination contributes its
// five cluster digits in sequence, so across a group every combination's
// five clusters appear together in flight.
func CombinationGroup(g int, rng *rand.Rand, fullISA bool) ([]uint32, error) {
	if g < 0 || g >= NumGroups {
		return nil, fmt.Errorf("experiments: group %d out of range [0,%d)", g, NumGroups)
	}
	b := asm.NewBuilder()
	ce := newClusterEmitter(rng, fullISA)
	ce.prologue(b)
	lo := g * CombosPerGroup
	hi := lo + CombosPerGroup
	if hi > NumCombinations {
		hi = NumCombinations
	}
	for combo := lo; combo < hi; combo++ {
		// Decompose the combination index into its five base-7 cluster
		// digits and emit them back to back.
		x := combo
		for d := 0; d < 5; d++ {
			ce.emit(b, isa.Cluster(x%7))
			x /= 7
		}
	}
	b.I(isa.Ebreak())
	p, err := b.Assemble()
	if err != nil {
		return nil, err
	}
	return p.Words, nil
}
