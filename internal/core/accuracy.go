package core

import (
	"fmt"

	"emsim/internal/device"
	"emsim/internal/signal"
)

// Comparison is the result of pitting the model's simulated signal
// against a device measurement of the same program.
type Comparison struct {
	// Measured and Simulated are the two analog signals (equal length).
	Measured, Simulated []float64
	// Accuracy is the paper's metric: mean per-cycle normalized
	// cross-correlation (§V-A), in [−1, 1].
	Accuracy float64
	// PerCycle is the per-cycle correlation series (for localizing
	// divergence, as the Figure 11 debugging use-case does).
	PerCycle []float64
	// RMSE is the root-mean-square difference after mean-abs
	// normalization of both signals.
	RMSE float64
	// Cycles is the program length in clock cycles.
	Cycles int
}

// CompareOnDevice measures the program on the device (averaged over runs
// captures), simulates it with the model through a streaming Session,
// and scores the match. The model runs its own core; only the measured
// waveform comes from the device.
func (m *Model) CompareOnDevice(dev *device.Device, words []uint32, runs int) (*Comparison, error) {
	devTrace, measured, err := dev.MeasureAveraged(words, runs)
	if err != nil {
		return nil, err
	}
	cfg := dev.Options().CPU
	cfg.BuggyMul = false // the model simulates the intended design
	sess, err := NewSession(m, cfg)
	if err != nil {
		return nil, err
	}
	simulated, err := sess.SimulateProgram(words)
	if err != nil {
		return nil, err
	}
	if sess.Cycles() != len(devTrace) {
		return nil, fmt.Errorf("core: timing mismatch: model %d cycles, device %d", sess.Cycles(), len(devTrace))
	}
	return m.Compare(measured, simulated)
}

// Compare scores two equal-length analog signals with the paper's
// accuracy metric.
func (m *Model) Compare(measured, simulated []float64) (*Comparison, error) {
	if len(measured) != len(simulated) {
		return nil, fmt.Errorf("core: signal lengths differ: %d vs %d", len(measured), len(simulated))
	}
	spc := m.SamplesPerCycle
	acc, err := signal.CycleAccuracy(measured, simulated, spc)
	if err != nil {
		return nil, err
	}
	per, err := signal.PerCycleCorrelation(measured, simulated, spc)
	if err != nil {
		return nil, err
	}
	rm := rmseOf(signal.NormalizeMeanAbs(measured), signal.NormalizeMeanAbs(simulated))
	return &Comparison{
		Measured:  measured,
		Simulated: simulated,
		Accuracy:  acc,
		PerCycle:  per,
		RMSE:      rm,
		Cycles:    len(measured) / spc,
	}, nil
}
