package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"emsim/internal/cpu"
	"emsim/internal/isa"
)

// batchTestPrograms returns a batch where exactly the programs at the
// given indices never halt (and so fail the MaxCycles bound); every
// other entry is a quick halting loop.
func batchTestPrograms(t *testing.T, n int, failing ...int) [][]uint32 {
	t.Helper()
	insts := append(isa.Li(isa.T0, 3),
		isa.Addi(isa.T0, isa.T0, -1),
		isa.Bne(isa.T0, isa.Zero, -4),
		isa.Ebreak(),
	)
	quick := make([]uint32, len(insts))
	for i, in := range insts {
		w, err := isa.Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		quick[i] = w
	}
	spin := []uint32{0x0000006F} // jal x0, 0: runs into the MaxCycles bound
	progs := make([][]uint32, n)
	for i := range progs {
		progs[i] = quick
	}
	for _, i := range failing {
		progs[i] = spin
	}
	return progs
}

// TestSimulateBatchDeterministicError pins the error-propagation fix:
// with several failing programs in one batch, the reported error must
// always cite the lowest failing index, no matter how the workers race.
func TestSimulateBatchDeterministicError(t *testing.T) {
	m, _ := testModel(t)
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 2000 // makes the spin programs fail fast
	sess, err := NewSession(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The lowest failure sits late in the claim order so a racing worker
	// will often hit index 9 or 13 first — exactly the nondeterminism the
	// fix removes.
	progs := batchTestPrograms(t, 16, 13, 9, 6)
	for round := 0; round < 10; round++ {
		out, err := sess.SimulateBatch(progs, 4)
		if err == nil {
			t.Fatal("batch with failing programs returned nil error")
		}
		if out != nil {
			t.Fatal("failed batch returned non-nil results")
		}
		if !strings.Contains(err.Error(), "batch program 6:") {
			t.Fatalf("round %d: batch error %q does not cite lowest failing index 6", round, err)
		}
	}
}

// TestSimulateBatchWorkerClamp pins that workers > len(programs) is
// valid: the fan-out clamps to one worker per program and still returns
// every result in order.
func TestSimulateBatchWorkerClamp(t *testing.T) {
	m, _ := testModel(t)
	sess, err := NewSession(m, cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	progs := batchTestPrograms(t, 3)
	out, err := sess.SimulateBatch(progs, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(progs) {
		t.Fatalf("batch returned %d results for %d programs", len(out), len(progs))
	}
	want, err := sess.SimulateProgram(progs[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, sig := range out {
		if len(sig) != len(want) {
			t.Errorf("result %d has %d samples, want %d", i, len(sig), len(want))
		}
	}
}

// TestSimulateBatchContextCancellation pins that cancelling the batch
// context aborts in-flight simulations and surfaces ctx.Err().
func TestSimulateBatchContextCancellation(t *testing.T) {
	m, _ := testModel(t)
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 1 << 30 // cancellation, not the cycle bound, must stop these
	sess, err := NewSession(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	progs := batchTestPrograms(t, 4, 0, 1, 2, 3) // all spin forever
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.SimulateBatchContext(ctx, progs, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
	}
}
