package core

import (
	"fmt"
	"math"

	"emsim/internal/cpu"
	"emsim/internal/device"
	"emsim/internal/stats"
)

// probeFit is the §V-D calibration regression: measured amplitudes at a
// new probe position against the model's (unscaled) per-stage sources.
func (m *Model) probeFit(dev *device.Device, words []uint32, runs int) (*stats.RegressionResult, error) {
	devTrace, sig, err := dev.MeasureAveraged(words, runs)
	if err != nil {
		return nil, err
	}
	cfg := dev.Options().CPU
	cfg.BuggyMul = false
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}
	tr, err := c.RunProgram(words)
	if err != nil {
		return nil, err
	}
	if len(tr) != len(devTrace) {
		return nil, fmt.Errorf("core: probe calibration timing mismatch (%d vs %d cycles)", len(tr), len(devTrace))
	}
	amps, err := ExtractAmplitudes(sig, m.SamplesPerCycle, m.Kernel)
	if err != nil {
		return nil, err
	}
	base := m
	if base.Beta != nil {
		base = m.WithBeta([cpu.NumStages]float64{1, 1, 1, 1, 1})
	}
	feats := make([][]float64, len(tr))
	for n := range tr {
		fv := make([]float64, cpu.NumStages)
		for s := cpu.Stage(0); s < cpu.NumStages; s++ {
			fv[s] = base.stageSource(s, &tr[n].Stages[s], false)
		}
		feats[n] = fv
	}
	fit, err := stats.LinearRegression(feats, amps)
	if err != nil {
		return nil, fmt.Errorf("core: probe calibration regression: %w", err)
	}
	return fit, nil
}

// RefitBeta estimates the per-stage loss coefficients β for a probe
// position other than the one the model was trained at (§V-D): the
// Equ. 9 regression is re-solved with A replaced by A·β against a short
// calibration measurement, and the refitted coefficients are divided by
// the trained ones. Everything else (A, activity weights, kernel) is
// reused — exactly the paper's point that only β needs adjusting when the
// probe moves.
func (m *Model) RefitBeta(dev *device.Device, words []uint32, runs int) ([cpu.NumStages]float64, error) {
	var beta [cpu.NumStages]float64
	fit, err := m.probeFit(dev, words, runs)
	if err != nil {
		return beta, err
	}
	for s := 0; s < cpu.NumStages; s++ {
		if math.Abs(m.MISO[s]) < 1e-9 {
			beta[s] = 1
			continue
		}
		beta[s] = fit.Coef[s] / m.MISO[s]
	}
	return beta, nil
}

// AdaptToProbe returns a model copy calibrated for a new probe position:
// the per-stage β scaling plus the refitted background level (the ambient
// offset also attenuates with distance). One short calibration program
// suffices; A, the activity weights and the kernel transfer unchanged.
func (m *Model) AdaptToProbe(dev *device.Device, words []uint32, runs int) (*Model, [cpu.NumStages]float64, error) {
	var beta [cpu.NumStages]float64
	fit, err := m.probeFit(dev, words, runs)
	if err != nil {
		return nil, beta, err
	}
	for s := 0; s < cpu.NumStages; s++ {
		if math.Abs(m.MISO[s]) < 1e-9 {
			beta[s] = 1
			continue
		}
		beta[s] = fit.Coef[s] / m.MISO[s]
	}
	adapted := m.WithBeta(beta)
	adapted.MISOIntercept = fit.Intercept
	return adapted, beta, nil
}
