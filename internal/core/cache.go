package core

import (
	"hash/fnv"
	"sync"

	"emsim/internal/cpu"
)

// The measurement campaign is the dominant cost of training: every
// averaged capture re-executes the program `runs` times through the
// device. The robustness and budget studies of §V retrain over and over
// against the same device, re-measuring sequences whose captures are a
// pure function of (device, program, runs) — the determinism the
// Measurer replicas guarantee. MeasurementCache exploits that purity: it
// stores raw measurement artifacts content-addressed by device
// fingerprint, averaging depth and program words, so a retraining run
// (or a /v1/train job on a warm server) replays cached artifacts instead
// of re-measuring. Fitted amplitudes are NOT cached — they depend on the
// phase-0 kernel — so a hit is kernel-agnostic and safe across training
// configurations.

// measurementKey content-addresses one averaged measurement.
type measurementKey struct {
	device  uint64 // device.Fingerprint()
	runs    int    // averaging depth
	program uint64 // FNV-1a of the program words
}

// hashProgram computes the program component of a measurement key.
func hashProgram(words []uint32) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, w := range words {
		b[0] = byte(w)
		b[1] = byte(w >> 8)
		b[2] = byte(w >> 16)
		b[3] = byte(w >> 24)
		h.Write(b[:])
	}
	return h.Sum64()
}

// rawMeasurement is one aligned measurement artifact before amplitude
// extraction: the model core's trace and the averaged analog capture.
// Artifacts are immutable once stored; every consumer only reads them.
type rawMeasurement struct {
	trace cpu.Trace // model-core trace (cycle-aligned with the capture)
	y     []float64 // averaged noisy capture of the device
}

// CacheStats reports a cache's effectiveness.
type CacheStats struct {
	Hits, Misses int64
	Entries      int
}

// MeasurementCache is a content-addressed store of measurement
// artifacts, safe for concurrent use by any number of training workers.
// A nil *MeasurementCache is valid and caches nothing.
type MeasurementCache struct {
	mu     sync.Mutex
	m      map[measurementKey]*rawMeasurement
	hits   int64
	misses int64
}

// NewMeasurementCache returns an empty cache. Share one across every
// Trainer that measures the same device (or family of devices — keys
// include the device fingerprint, so distinct boards never collide).
func NewMeasurementCache() *MeasurementCache {
	return &MeasurementCache{m: make(map[measurementKey]*rawMeasurement)}
}

// get returns the cached artifact for key, or nil on a miss.
func (c *MeasurementCache) get(key measurementKey) *rawMeasurement {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.m[key]; ok {
		c.hits++
		return r
	}
	c.misses++
	return nil
}

// put stores an artifact. First write wins; a concurrent duplicate (two
// workers measuring the same program) is dropped, which is harmless
// because determinism makes duplicates identical.
func (c *MeasurementCache) put(key measurementKey, r *rawMeasurement) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[key]; !ok {
		c.m[key] = r
	}
}

// Stats returns hit/miss counters and the entry count.
func (c *MeasurementCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.m)}
}
