package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"emsim/internal/cpu"
	"emsim/internal/device"
)

// Reproducibility guarantees. A library whose training walks Go maps in
// iteration order would produce a different model on every run with the
// same seed — poison for the paper's "ship the board's parameters"
// workflow and for every recorded number in EXPERIMENTS.md. These tests
// pin the guarantee down at the strongest level available: byte-identical
// serialized models and sample-identical simulations.

// smallCampaign is a deliberately starved training configuration: the
// budget study (EXPERIMENTS.md E19) shows it still trains a usable model,
// and it keeps the double-training test fast.
func smallCampaign() TrainOptions {
	return TrainOptions{
		Runs:                3,
		InstancesPerCluster: 10,
		MixedPrograms:       2,
		MixedLength:         200,
		Seed:                7,
	}
}

func TestTrainingIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains twice")
	}
	trainJSON := func() []byte {
		dev := device.MustNew(device.DefaultOptions())
		m, err := Train(dev, smallCampaign())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := trainJSON(), trainJSON()
	if !bytes.Equal(a, b) {
		t.Errorf("two trainings with identical seeds serialized differently (%d vs %d bytes)",
			len(a), len(b))
	}
}

func TestSimulationIsDeterministic(t *testing.T) {
	m, _ := testModel(t)
	rng := rand.New(rand.NewSource(42))
	words, err := MixedProgram(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	_, sig1, err := m.SimulateProgram(cpu.DefaultConfig(), words)
	if err != nil {
		t.Fatal(err)
	}
	_, sig2, err := m.SimulateProgram(cpu.DefaultConfig(), words)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig1) != len(sig2) {
		t.Fatalf("lengths differ: %d vs %d", len(sig1), len(sig2))
	}
	for i := range sig1 {
		if sig1[i] != sig2[i] {
			t.Fatalf("sample %d differs: %g vs %g", i, sig1[i], sig2[i])
		}
	}
}

func TestSaveLoadPreservesSimulation(t *testing.T) {
	// The serialized form must capture everything the simulation path
	// reads: a loaded model must produce bit-identical signals.
	m, _ := testModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	words, err := MixedProgram(rng, 250)
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := m.SimulateProgram(cpu.DefaultConfig(), words)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := loaded.SimulateProgram(cpu.DefaultConfig(), words)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("sample %d differs after save/load: %g vs %g", i, want[i], got[i])
		}
	}
}

func TestAttributionInvariants(t *testing.T) {
	// Properties that must hold for the attribution of ANY program:
	// stage shares form a distribution, per-instruction aggregates are
	// non-negative and internally consistent, and instruction totals
	// never exceed the trace's total attributable energy.
	m, _ := testModel(t)
	check := func(seed int64) bool {
		words, err := MixedProgram(rand.New(rand.NewSource(seed)), 150)
		if err != nil {
			return false
		}
		c := cpu.MustNew(cpu.DefaultConfig())
		tr, err := c.RunProgram(words)
		if err != nil {
			return false
		}
		att := m.Attribute(tr)
		sum := 0.0
		for _, s := range att.StageShare {
			if s < 0 || s > 1 {
				return false
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		instSum := 0.0
		for i := range att.Instructions {
			ia := &att.Instructions[i]
			if ia.Total < 0 || ia.Peak < 0 || ia.Peak > ia.Total+1e-12 {
				return false
			}
			if ia.Cycles <= 0 || ia.Executions <= 0 || ia.Executions > ia.Cycles {
				return false
			}
			if ia.Mean() > ia.Peak+1e-12 {
				return false
			}
			// Sorted strongest-first.
			if i > 0 && att.Instructions[i-1].Total < ia.Total {
				return false
			}
			instSum += ia.Total
		}
		// Instruction totals only count unstalled occupancy cycles, so
		// they are a lower-bound decomposition of the trace total.
		return instSum <= att.TotalAbs+1e-9
	}
	if err := quick.Check(func(s int64) bool {
		if s < 0 {
			s = -s
		}
		return check(s%(1<<30) + 1)
	}, &quick.Config{MaxCount: 12}); err != nil {
		t.Errorf("attribution invariant violated: %v", err)
	}
}

func TestAttributionOrderIsDeterministic(t *testing.T) {
	// Regression: the per-instruction table was built by ranging over a
	// map and sorted unstably, so instructions with equal totals could
	// swap places between runs. Repeated attributions of the same trace
	// must now produce the identical instruction sequence.
	m, _ := testModel(t)
	words, err := MixedProgram(rand.New(rand.NewSource(7)), 150)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.MustNew(cpu.DefaultConfig())
	tr, err := c.RunProgram(words)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Attribute(tr)
	for rep := 0; rep < 5; rep++ {
		got := m.Attribute(tr)
		if len(got.Instructions) != len(want.Instructions) {
			t.Fatalf("rep %d: %d instructions, want %d", rep, len(got.Instructions), len(want.Instructions))
		}
		for i := range want.Instructions {
			if got.Instructions[i] != want.Instructions[i] {
				t.Fatalf("rep %d: instruction %d differs: %+v vs %+v",
					rep, i, got.Instructions[i], want.Instructions[i])
			}
		}
	}
}
