package core

import (
	"fmt"
	"math"

	"emsim/internal/signal"
)

// FitKernel recovers the device's pulse shape from a measured signal of a
// steady (constant-amplitude) region, reproducing the §II-C model
// selection: candidate kernels are rendered as periodic pulse trains and
// scored by normalized correlation against the measured waveform. The
// grid covers the damped-sinusoid family (Equ. 5); pass KernelRect or
// KernelExp in `kind` to fit the weaker families of Figure 1.
func FitKernel(steady []float64, samplesPerCycle int, kind signal.KernelKind) (signal.Kernel, float64, error) {
	if samplesPerCycle < 2 {
		return signal.Kernel{}, 0, fmt.Errorf("core: FitKernel needs >= 2 samples/cycle")
	}
	cycles := len(steady) / samplesPerCycle
	if cycles < 4 {
		return signal.Kernel{}, 0, fmt.Errorf("core: FitKernel needs >= 4 cycles of steady signal (got %d)", cycles)
	}
	// Fold the steady region onto one clock period (it is periodic up to
	// noise) and remove its mean: the shape is what identifies the kernel.
	folded := make([]float64, samplesPerCycle)
	for c := 0; c < cycles; c++ {
		for s := 0; s < samplesPerCycle; s++ {
			folded[s] += steady[c*samplesPerCycle+s]
		}
	}
	mean := 0.0
	for i := range folded {
		folded[i] /= float64(cycles)
		mean += folded[i]
	}
	mean /= float64(len(folded))
	for i := range folded {
		folded[i] -= mean
	}

	// Render a candidate kernel as the same folded periodic waveform.
	render := func(k signal.Kernel) ([]float64, error) {
		amps := []float64{1, 1, 1, 1, 1, 1}
		y, err := signal.Reconstruct(amps, samplesPerCycle, k)
		if err != nil {
			return nil, err
		}
		// The last cycle is in steady state (all tails included).
		last := y[(len(amps)-1)*samplesPerCycle:]
		out := make([]float64, samplesPerCycle)
		m := 0.0
		for i := range out {
			out[i] = last[i]
			m += last[i]
		}
		m /= float64(len(out))
		for i := range out {
			out[i] -= m
		}
		return out, nil
	}

	// The steady amplitude's sign is unknown (stage couplings may be
	// destructive), so the shape match is sign-agnostic: score = |NCC|.
	score := func(k signal.Kernel) float64 {
		cand, err := render(k)
		if err != nil {
			return -2
		}
		ncc, err := signal.NCC(folded, cand)
		if err != nil {
			return -2
		}
		return math.Abs(ncc)
	}

	best := signal.Kernel{Kind: kind, SupportCycles: 3}
	bestScore := -2.0
	switch kind {
	case signal.KernelRect:
		// A rectangular pulse train folds to a constant; there is nothing
		// to fit. Return it directly with a zero shape score.
		best.Theta, best.Period = 0, 0
		return best, 0, nil
	case signal.KernelExp:
		for theta := 0.5; theta <= 10; theta += 0.25 {
			k := signal.Kernel{Kind: kind, Theta: theta, SupportCycles: 3}
			if sc := score(k); sc > bestScore {
				best, bestScore = k, sc
			}
		}
	case signal.KernelSinExp:
		for theta := 1.0; theta <= 8; theta += 0.5 {
			for period := 0.10; period <= 0.60; period += 0.025 {
				k := signal.Kernel{Kind: kind, Theta: theta, Period: period, SupportCycles: 3}
				if sc := score(k); sc > bestScore {
					best, bestScore = k, sc
				}
			}
		}
		// Refine around the coarse optimum.
		coarse := best
		for theta := coarse.Theta - 0.5; theta <= coarse.Theta+0.5; theta += 0.1 {
			if theta <= 0 {
				continue
			}
			for period := coarse.Period - 0.025; period <= coarse.Period+0.025; period += 0.005 {
				if period <= 0 {
					continue
				}
				k := signal.Kernel{Kind: kind, Theta: theta, Period: period, SupportCycles: 3}
				if sc := score(k); sc > bestScore {
					best, bestScore = k, sc
				}
			}
		}
	default:
		return signal.Kernel{}, 0, fmt.Errorf("core: unknown kernel kind %v", kind)
	}
	if bestScore < -1 {
		return signal.Kernel{}, 0, fmt.Errorf("core: kernel fit failed")
	}
	return best, bestScore, nil
}

// ExtractAmplitudes deconvolves a measured analog signal into per-cycle
// amplitudes x̂[n] given the reconstruction kernel: each cycle window is
// matched-filtered against the kernel's first-cycle taps after
// subtracting the predicted tails of the preceding cycles. This inverts
// Equ. 6 greedily, cycle by cycle.
func ExtractAmplitudes(y []float64, samplesPerCycle int, k signal.Kernel) ([]float64, error) {
	taps, err := k.Taps(samplesPerCycle)
	if err != nil {
		return nil, err
	}
	cycles := len(y) / samplesPerCycle
	if cycles == 0 {
		return nil, fmt.Errorf("core: signal shorter than one cycle")
	}
	head := taps[:samplesPerCycle]
	headEnergy := 0.0
	for _, t := range head {
		headEnergy += t * t
	}
	if headEnergy == 0 {
		return nil, fmt.Errorf("core: kernel head has no energy")
	}
	out := make([]float64, cycles)
	buf := make([]float64, samplesPerCycle)
	for n := 0; n < cycles; n++ {
		copy(buf, y[n*samplesPerCycle:(n+1)*samplesPerCycle])
		// Subtract tails of earlier cycles that reach into this window.
		for back := 1; back*samplesPerCycle < len(taps); back++ {
			j := n - back
			if j < 0 {
				break
			}
			tail := taps[back*samplesPerCycle:]
			lim := samplesPerCycle
			if lim > len(tail) {
				lim = len(tail)
			}
			for i := 0; i < lim; i++ {
				buf[i] -= out[j] * tail[i]
			}
		}
		dot := 0.0
		for i, t := range head {
			dot += buf[i] * t
		}
		out[n] = dot / headEnergy
	}
	return out, nil
}

// steadyRegion selects the central portion of an all-NOP capture for
// kernel fitting, skipping the pipeline fill and drain transients.
func steadyRegion(y []float64, samplesPerCycle, skipCycles int) ([]float64, error) {
	total := len(y) / samplesPerCycle
	if total <= 2*skipCycles+4 {
		return nil, fmt.Errorf("core: capture too short for steady region (%d cycles)", total)
	}
	return y[skipCycles*samplesPerCycle : (total-skipCycles)*samplesPerCycle], nil
}

// rmseOf is a small helper for fit diagnostics.
func rmseOf(a, b []float64) float64 {
	r, err := signal.RMSE(a, b)
	if err != nil {
		return math.NaN()
	}
	return r
}
