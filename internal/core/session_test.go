package core

import (
	"math/rand"
	"reflect"
	"testing"

	"emsim/internal/aes"
	"emsim/internal/cpu"
)

// sessionGoldenPrograms spans the three workload families the acceptance
// criteria name: the mixed evaluation programs, a full AES-128 encryption
// and a §V-A combination-group stream.
func sessionGoldenPrograms(t *testing.T) map[string][]uint32 {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	mixed, err := MixedProgram(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	aesProg, err := aes.BuildProgram(
		[16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c},
		[16]byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34},
	)
	if err != nil {
		t.Fatal(err)
	}
	group, err := CombinationGroup(3, rng, true)
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]uint32{
		"mixed": mixed,
		"aes":   aesProg.Words,
		"group": group,
	}
}

// TestSessionMatchesSimulateProgram is the tentpole golden test: the
// streaming Session pipeline must reproduce the legacy materializing
// SimulateProgram signal bit for bit, across all workload families, with
// one Session reused for all of them back to back.
func TestSessionMatchesSimulateProgram(t *testing.T) {
	m, _ := testModel(t)
	cfg := cpu.DefaultConfig()
	sess, err := m.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two passes: the second proves reuse after every workload is as good
	// as the first simulation of each.
	for pass := 0; pass < 2; pass++ {
		for name, words := range sessionGoldenPrograms(t) {
			tr, want, err := m.SimulateProgram(cfg, words)
			if err != nil {
				t.Fatalf("%s: legacy path: %v", name, err)
			}
			got, err := sess.SimulateProgram(words)
			if err != nil {
				t.Fatalf("%s: session path: %v", name, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("pass %d %s: session signal differs from SimulateProgram (%d vs %d samples)",
					pass, name, len(got), len(want))
			}
			if sess.Cycles() != len(tr) {
				t.Fatalf("pass %d %s: session reports %d cycles, trace has %d", pass, name, sess.Cycles(), len(tr))
			}
			if sess.Stats().Cycles != len(tr) {
				t.Fatalf("pass %d %s: stats cycles %d != %d", pass, name, sess.Stats().Cycles, len(tr))
			}
		}
	}
}

// TestSessionSimulateIntoSteadyStateAllocs pins the headline property:
// once warm, a full simulate (reset core, run, model every cycle, render
// the analog signal) allocates nothing.
func TestSessionSimulateIntoSteadyStateAllocs(t *testing.T) {
	m, _ := testModel(t)
	sess, err := m.NewSession(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	words := sessionGoldenPrograms(t)["mixed"]
	sig, err := sess.SimulateProgramInto(nil, words)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		sig, err = sess.SimulateProgramInto(sig, words)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state SimulateProgramInto allocates %.1f times per trace, want 0", allocs)
	}
}

// TestCycleAmplitudeDoesNotAllocate pins Model.CycleAmplitude (and its
// contribution/ampKeyFor/stageSource helpers) directly, outside the
// Session pipeline: evaluating the model on every streamed cycle of a
// warm core must not allocate.
func TestCycleAmplitudeDoesNotAllocate(t *testing.T) {
	m, _ := testModel(t)
	c := cpu.MustNew(cpu.DefaultConfig())
	words := sessionGoldenPrograms(t)["mixed"]
	var sum float64
	sink := cpu.CycleSinkFunc(func(cy *cpu.Cycle) error {
		sum += m.CycleAmplitude(cy)
		return nil
	})
	if err := c.RunProgramTo(words, sink); err != nil { // warm memory pages
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := c.RunProgramTo(words, sink); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("warm CycleAmplitude streaming allocates %.1f times per run, want 0", allocs)
	}
	_ = sum
}

// TestSimulateBatchMatchesSequential checks the parallel fan-out returns
// exactly the sequential per-program signals, in input order, for several
// worker counts (run under -race this also exercises the fan-out for
// data races).
func TestSimulateBatchMatchesSequential(t *testing.T) {
	m, _ := testModel(t)
	cfg := cpu.DefaultConfig()
	rng := rand.New(rand.NewSource(9))
	var programs [][]uint32
	for i := 0; i < 12; i++ {
		w, err := MixedProgram(rng, 120+10*i)
		if err != nil {
			t.Fatal(err)
		}
		programs = append(programs, w)
	}
	sess, err := m.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, len(programs))
	for i, w := range programs {
		if want[i], err = sess.SimulateProgram(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := sess.SimulateBatch(programs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: batch results differ from sequential", workers)
		}
	}
	if res, err := sess.SimulateBatch(nil, 4); err != nil || res != nil {
		t.Fatalf("empty batch: got (%v, %v), want (nil, nil)", res, err)
	}
}

// TestSimulateBatchPropagatesError checks a failing program aborts the
// batch with a located error instead of returning partial results.
func TestSimulateBatchPropagatesError(t *testing.T) {
	m, _ := testModel(t)
	cfg := cpu.DefaultConfig()
	cfg.MaxCycles = 50 // everything times out
	sess, err := m.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	words := sessionGoldenPrograms(t)["mixed"]
	if _, err := sess.SimulateBatch([][]uint32{words, words}, 2); err == nil {
		t.Fatal("batch with impossible cycle budget succeeded")
	}
}
