package core

import (
	"bytes"
	"math"
	"testing"

	"emsim/internal/cpu"
	"emsim/internal/device"
	"emsim/internal/obs"
)

// The determinism contract of the obs layer: spans observe, they never
// perturb. These tests pin that enabling tracing changes neither a
// simulated signal nor a fitted model by even one bit, and that the
// session's zero-allocation steady state survives with tracing on.

func TestSimulateTracedBitIdentical(t *testing.T) {
	m, _ := testModel(t)
	words := sessionGoldenPrograms(t)["mixed"]
	simulate := func() []float64 {
		sess, err := m.NewSession(cpu.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sig, err := sess.SimulateProgram(words)
		if err != nil {
			t.Fatal(err)
		}
		return sig
	}

	obs.Disable()
	plain := simulate()
	obs.Enable(1 << 12)
	defer obs.Disable()
	traced := simulate()

	if len(plain) != len(traced) {
		t.Fatalf("traced signal has %d samples, untraced %d", len(traced), len(plain))
	}
	for i := range plain {
		if math.Float64bits(plain[i]) != math.Float64bits(traced[i]) {
			t.Fatalf("sample %d differs with tracing enabled: %x vs %x",
				i, math.Float64bits(plain[i]), math.Float64bits(traced[i]))
		}
	}
	// The traced run must actually have recorded the simulate span.
	found := false
	for _, e := range obs.Snapshot() {
		if e.Name == "session.simulate" {
			found = true
			break
		}
	}
	if !found {
		t.Error("traced run recorded no session.simulate span")
	}
}

func TestTrainTracedBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two models")
	}
	opts := TrainOptions{
		Runs:                2,
		InstancesPerCluster: 6,
		MixedPrograms:       1,
		MixedLength:         120,
		Seed:                11,
	}
	train := func() []byte {
		m, err := Train(device.MustNew(device.DefaultOptions()), opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	obs.Disable()
	plain := train()
	obs.Enable(1 << 12)
	defer obs.Disable()
	traced := train()

	if !bytes.Equal(plain, traced) {
		t.Fatal("fitted model bytes differ with tracing enabled")
	}
	// The traced campaign must have recorded every phase span.
	names := map[string]bool{}
	for _, e := range obs.Snapshot() {
		names[e.Name] = true
	}
	for p := Phase(0); p < numPhases; p++ {
		if want := "trainer." + p.String(); !names[want] {
			t.Errorf("traced campaign recorded no %s span (got %v)", want, names)
		}
	}
	if !names["trainer.measure"] || !names["trainer.fit"] {
		t.Errorf("traced campaign missing measure/fit spans (got %v)", names)
	}
}

func TestSimulateTracedSteadyStateAllocs(t *testing.T) {
	m, _ := testModel(t)
	sess, err := m.NewSession(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	words := sessionGoldenPrograms(t)["mixed"]
	obs.Enable(1 << 12)
	defer obs.Disable()
	sig, err := sess.SimulateProgramInto(nil, words)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		sig, err = sess.SimulateProgramInto(sig, words)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("traced steady-state SimulateProgramInto allocates %.1f times per trace, want 0", allocs)
	}
}
