package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"emsim/internal/cpu"
	"emsim/internal/device"
	"emsim/internal/obs"
	"emsim/internal/signal"
)

// Trainer span identities: one per pipeline phase, plus the measurement
// fan-out (recorded per worker lane) and the fit step.
var (
	phaseSpans  [NumPhases]obs.SpanID
	spanMeasure = obs.RegisterSpan("trainer.measure")
	spanFit     = obs.RegisterSpan("trainer.fit")
)

func init() {
	for p := Phase(0); p < numPhases; p++ {
		phaseSpans[p] = obs.RegisterSpan("trainer." + p.String())
	}
}

// This file is the staged training pipeline: the phase DAG
// (kernel-fit → baseline → activity → miso) behind Trainer.Run, the
// parallel measurement fan-out, and the progress/timing observability.
// The per-phase fitting mathematics lives in train.go.
//
// Determinism contract: the fitted model is a pure function of
// (device configuration, TrainOptions.{Seed,Runs,campaign sizes}) —
// independent of Workers, of measurement completion order, and of cache
// warmth. Three mechanisms compose to guarantee that:
//
//  1. program generation draws from per-phase, per-program streams
//     (trainStream), never from one shared generator, so the campaign's
//     program list is fixed before any measurement begins;
//  2. each measurement replica (device.Measurer) seeds its noise from
//     (device noise seed, program words), so a capture is the same no
//     matter which worker performs it, or when;
//  3. the fan-out reduces into an index-ordered slice, so the fitters
//     always see measurements in campaign order.

// Phase identifies one stage of the training pipeline.
type Phase int

const (
	// PhaseKernel fits the damped-sinusoid clock kernel from an all-NOP
	// capture (§II-C / Figure 1).
	PhaseKernel Phase = iota
	// PhaseBaseline fits the per-(cluster,stage) baseline amplitudes by
	// ridge regression over stage-occupancy indicators (§III-B).
	PhaseBaseline
	// PhaseActivity fits the data-dependent activity factors by stepwise
	// regression on the baseline model's residuals (§III-B).
	PhaseActivity
	// PhaseMISO fits the per-stage combination coefficients (§III-C).
	PhaseMISO

	numPhases
)

// NumPhases is the number of pipeline phases.
const NumPhases = int(numPhases)

// String returns the phase's campaign name.
func (p Phase) String() string {
	switch p {
	case PhaseKernel:
		return "kernel-fit"
	case PhaseBaseline:
		return "baseline"
	case PhaseActivity:
		return "activity"
	case PhaseMISO:
		return "miso"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Progress is one training progress event: Done of Total measurements
// of the named phase are complete, Elapsed after the phase began. A
// phase announces itself with a Done == 0 event.
type Progress struct {
	Phase   Phase
	Done    int
	Total   int
	Elapsed time.Duration
}

// Trainer fits a Model against a Device by running the four-phase
// measurement campaign. Build one with NewTrainer and drive it with Run;
// a Trainer is single-use.
type Trainer struct {
	dev     *device.Device
	cfg     cpu.Config // model-core config (device's, defect switches cleared)
	opts    TrainOptions
	workers int
	fp      uint64 // device fingerprint, the cache-key device component
	lane    int    // trace lane the phase/fit spans render on

	kernel signal.Kernel

	mu         sync.Mutex // guards the progress counters; callbacks run outside it
	done       int
	total      int
	phaseStart time.Time
	timings    [NumPhases]time.Duration
}

// NewTrainer prepares a training session against dev. The model core is
// configured identically to the device's core — with the hardware-defect
// switch cleared, since EMSim simulates the *intended* design (that gap
// is exactly what the Figure 11 debugging use-case detects).
func NewTrainer(dev *device.Device, opts TrainOptions) (*Trainer, error) {
	opts.setDefaults()
	if opts.Workers < 0 {
		return nil, fmt.Errorf("core: negative training worker count %d", opts.Workers)
	}
	workers := opts.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := dev.Options().CPU
	cfg.BuggyMul = false
	// Surface configuration errors here rather than from inside a worker.
	if _, err := cpu.New(cfg); err != nil {
		return nil, err
	}
	return &Trainer{dev: dev, cfg: cfg, opts: opts, workers: workers, fp: dev.Fingerprint(), lane: obs.NextLane()}, nil
}

// Train runs the full campaign and returns the fitted model. It is the
// blocking convenience form of NewTrainer + Run.
func Train(dev *device.Device, opts TrainOptions) (*Model, error) {
	t, err := NewTrainer(dev, opts)
	if err != nil {
		return nil, err
	}
	//emsim:ignore ctxflow Train is the documented blocking convenience form; cancellable callers use NewTrainer + Run
	return t.Run(context.Background())
}

// Stream indices for campaign programs that are not members of a
// numbered per-program family (those use their family index).
const (
	streamCombo = 1 << 20 // combination-benchmark group generation
	streamMixed = 1 << 21 // the phase-2 mixed augmentation program
)

// trainStream returns the generator for one program-generation stream,
// keyed by (campaign seed, phase, stream index). Independent streams per
// program are what make the campaign's program list a function of the
// options alone: growing one phase's campaign, or reordering its
// measurements, never perturbs the programs of another.
func trainStream(seed int64, p Phase, index int64) *rand.Rand {
	z := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(p)*0xD1B54A32D192ED03 ^ uint64(index)*0x8CB92BA72F3D8DD7
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return rand.New(rand.NewSource(int64(z ^ (z >> 31))))
}

// Run executes the campaign: measure and fit each phase in DAG order,
// reporting progress to the options' callback. It returns early with
// ctx's error if the context is cancelled mid-campaign (cancellation
// latency is bounded by one device capture per worker, and every worker
// goroutine has exited by the time Run returns). The result for a given
// device and options is byte-identical at every worker count.
func (t *Trainer) Run(ctx context.Context) (*Model, error) {
	m := &Model{
		SamplesPerCycle: t.dev.SamplesPerCycle(),
		Options:         FullModel(),
	}

	// ---- Phase 0: kernel fit (§II-C / Figure 1) ----
	_, err := t.runPhase(ctx, PhaseKernel, [][]uint32{allNOPProgram(64)}, func(raw []*rawMeasurement) error {
		steady, err := steadyRegion(raw[0].y, t.dev.SamplesPerCycle(), 8)
		if err != nil {
			return err
		}
		kernel, _, err := FitKernel(steady, t.dev.SamplesPerCycle(), signal.KernelSinExp)
		if err != nil {
			return fmt.Errorf("kernel fit: %w", err)
		}
		t.kernel = kernel
		m.Kernel = kernel
		return nil
	})
	if err != nil {
		return nil, err
	}

	// ---- Phase 1: baseline amplitudes A (§III-B) ----
	// Isolated NOP→inst→NOP sequences with zero operands establish each
	// cluster's per-stage footprint; a combination-benchmark group (the
	// kind of sequence the paper's 16 k-measurement campaign consists of)
	// provides the dense occupancy mixes that make every (class, stage)
	// column — including the NOP and bubble baselines, which sparse
	// sequences exercise only in lock-step — individually identifiable.
	p1 := zeroOperandPrograms()
	p1 = append(p1, allNOPProgram(64))
	comboWords, err := CombinationGroup(NumGroups-1, trainStream(t.opts.Seed, PhaseBaseline, streamCombo), false)
	if err != nil {
		return nil, err
	}
	p1 = append(p1, comboWords)
	raw1, err := t.runPhase(ctx, PhaseBaseline, p1, func(raw []*rawMeasurement) error {
		meas, err := t.extract(raw)
		if err != nil {
			return err
		}
		return t.fitBaseline(m, meas)
	})
	if err != nil {
		return nil, err
	}
	comboRaw := raw1[len(raw1)-1]

	// ---- Phase 2: activity factors via stepwise regression (§III-B) ----
	// Isolated random-operand probes, augmented with a mixed-instruction
	// sequence and the phase-1 combination group so the regression sees
	// transition-bit correlations as they occur with every cluster in
	// flight.
	p2, err := randomOperandPrograms(func(i int) *rand.Rand {
		return trainStream(t.opts.Seed, PhaseActivity, int64(i))
	}, t.opts.InstancesPerCluster)
	if err != nil {
		return nil, err
	}
	mixWords, err := MixedProgram(trainStream(t.opts.Seed, PhaseActivity, streamMixed), t.opts.MixedLength)
	if err != nil {
		return nil, err
	}
	p2 = append(p2, mixWords)
	_, err = t.runPhase(ctx, PhaseActivity, p2, func(raw []*rawMeasurement) error {
		meas, err := t.extract(append(raw, comboRaw))
		if err != nil {
			return err
		}
		return t.fitActivity(m, meas)
	})
	if err != nil {
		return nil, err
	}

	// ---- Phase 3: MISO combination coefficients M (§III-C) ----
	// Mixed programs where all clusters share the pipeline, plus one
	// combination-benchmark group to keep the fit calibrated on the
	// all-clusters-in-flight regime the paper measures its 16 k
	// sequences in.
	var p3 [][]uint32
	for i := 0; i < t.opts.MixedPrograms; i++ {
		words, err := MixedProgram(trainStream(t.opts.Seed, PhaseMISO, int64(i)), t.opts.MixedLength)
		if err != nil {
			return nil, err
		}
		p3 = append(p3, words)
	}
	combo3, err := CombinationGroup(NumGroups-2, trainStream(t.opts.Seed, PhaseMISO, streamCombo), false)
	if err != nil {
		return nil, err
	}
	p3 = append(p3, combo3)
	_, err = t.runPhase(ctx, PhaseMISO, p3, func(raw []*rawMeasurement) error {
		meas, err := t.extract(raw)
		if err != nil {
			return err
		}
		return t.fitMISO(m, meas)
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

// PhaseTimings returns the wall-clock duration of each completed phase
// (measurement fan-out plus fit). Durations are observability output
// only; they never influence the fitted model.
func (t *Trainer) PhaseTimings() [NumPhases]time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.timings
}

// runPhase drives one phase: announce it, fan the programs out across
// the measurement workers, hand the index-ordered artifacts to fit, and
// record the phase timing.
func (t *Trainer) runPhase(ctx context.Context, p Phase, programs [][]uint32, fit func([]*rawMeasurement) error) ([]*rawMeasurement, error) {
	t.beginPhase(p, len(programs))
	obs.Begin(phaseSpans[p], t.lane)
	raw, err := t.measureAll(ctx, p, programs)
	if err == nil && fit != nil {
		obs.Begin(spanFit, t.lane)
		err = fit(raw)
		obs.End(spanFit, t.lane)
	}
	obs.End(phaseSpans[p], t.lane)
	t.endPhase(p)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", p, err)
	}
	return raw, nil
}

// trainWorker is one measurement replica: an independent device measurer
// plus an independent model core for the aligned replay.
type trainWorker struct {
	meas *device.Measurer
	core *cpu.CPU
	lane int // trace lane this replica's measure spans render on
}

func (t *Trainer) newWorker() (*trainWorker, error) {
	meas, err := t.dev.NewMeasurer()
	if err != nil {
		return nil, err
	}
	core, err := cpu.New(t.cfg)
	if err != nil {
		return nil, err
	}
	return &trainWorker{meas: meas, core: core, lane: obs.NextLane()}, nil
}

// measureOne produces the raw artifact for one program: the averaged
// device capture and the model core's cycle-aligned trace, through the
// measurement cache when one is attached.
func (t *Trainer) measureOne(ctx context.Context, w *trainWorker, words []uint32) (*rawMeasurement, error) {
	obs.Begin(spanMeasure, w.lane)
	defer obs.End(spanMeasure, w.lane)
	key := measurementKey{device: t.fp, runs: t.opts.Runs, program: hashProgram(words)}
	if r := t.opts.Cache.get(key); r != nil {
		return r, nil
	}
	devTrace, y, err := w.meas.MeasureAveraged(ctx, words, t.opts.Runs)
	if err != nil {
		return nil, err
	}
	tr, err := w.core.RunProgram(words)
	if err != nil {
		return nil, fmt.Errorf("model core failed: %w", err)
	}
	if len(tr) != len(devTrace) {
		return nil, fmt.Errorf("model (%d cycles) and device (%d cycles) disagree on timing",
			len(tr), len(devTrace))
	}
	r := &rawMeasurement{trace: tr, y: y}
	t.opts.Cache.put(key, r)
	return r, nil
}

// measureAll measures every program of one phase and returns the
// artifacts in program order. With one worker it runs inline on the
// calling goroutine; otherwise workers claim indices atomically and
// write into an index-ordered result slice, so completion order can
// never leak into the fit. On failure the lowest-index recorded error
// wins, keeping error reporting independent of scheduling too.
//
//emsim:ordered
func (t *Trainer) measureAll(ctx context.Context, phase Phase, programs [][]uint32) ([]*rawMeasurement, error) {
	results := make([]*rawMeasurement, len(programs))
	workers := t.workers
	if workers > len(programs) {
		workers = len(programs)
	}
	if workers <= 1 {
		w, err := t.newWorker()
		if err != nil {
			return nil, err
		}
		for i, words := range programs {
			r, err := t.measureOne(ctx, w, words)
			if err != nil {
				return nil, err
			}
			results[i] = r
			t.noteProgress(phase)
		}
		return results, nil
	}

	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		failed atomic.Bool
	)
	errs := make([]error, len(programs)) // per-program errors, by index
	workerErrs := make([]error, workers) // replica-construction failures
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w, err := t.newWorker()
			if err != nil {
				workerErrs[wi] = err
				failed.Store(true)
				return
			}
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(programs) {
					return
				}
				r, err := t.measureOne(ctx, w, programs[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = r
				t.noteProgress(phase)
			}
		}(wi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, err := range workerErrs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// extract turns raw artifacts into fit-ready measurements with the
// phase-0 kernel. Extraction happens after the cache, which is what
// keeps cache hits kernel-agnostic.
func (t *Trainer) extract(raw []*rawMeasurement) ([]*measurement, error) {
	out := make([]*measurement, len(raw))
	for i, r := range raw {
		amps, err := ExtractAmplitudes(r.y, t.dev.SamplesPerCycle(), t.kernel)
		if err != nil {
			return nil, err
		}
		out[i] = &measurement{trace: r.trace, amps: amps}
	}
	return out, nil
}

func (t *Trainer) beginPhase(p Phase, total int) {
	t.mu.Lock()
	t.done, t.total = 0, total
	//emsim:ignore determinism phase timings are observability output only; they never feed fitted parameters
	t.phaseStart = time.Now()
	t.mu.Unlock()
	// The callback runs outside t.mu: it is foreign code and may call
	// back into the trainer (PhaseTimings takes the same mutex).
	if t.opts.Progress != nil {
		t.opts.Progress(Progress{Phase: p, Done: 0, Total: total})
	}
}

func (t *Trainer) noteProgress(p Phase) {
	t.mu.Lock()
	t.done++
	done, total, start := t.done, t.total, t.phaseStart
	t.mu.Unlock()
	// The callback runs outside t.mu (see beginPhase); concurrent
	// workers may therefore deliver completion events out of order.
	if t.opts.Progress != nil {
		//emsim:ignore determinism progress timings are observability output only
		t.opts.Progress(Progress{Phase: p, Done: done, Total: total, Elapsed: time.Since(start)})
	}
}

func (t *Trainer) endPhase(p Phase) {
	t.mu.Lock()
	defer t.mu.Unlock()
	//emsim:ignore determinism phase timings are observability output only
	t.timings[p] = time.Since(t.phaseStart)
}
