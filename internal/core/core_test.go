package core

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"emsim/internal/asm"
	"emsim/internal/cpu"
	"emsim/internal/device"
	"emsim/internal/isa"
	"emsim/internal/signal"
)

// sharedModel trains one model per test binary (training takes seconds).
var (
	trainOnce  sync.Once
	trainedM   *Model
	trainedDev *device.Device
	trainedErr error
)

func testModel(t *testing.T) (*Model, *device.Device) {
	t.Helper()
	trainOnce.Do(func() {
		trainedDev = device.MustNew(device.DefaultOptions())
		trainedM, trainedErr = Train(trainedDev, TrainOptions{
			Runs:                10,
			InstancesPerCluster: 30,
			MixedLength:         400,
		})
	})
	if trainedErr != nil {
		t.Fatalf("training failed: %v", trainedErr)
	}
	return trainedM, trainedDev
}

func TestFitKernelRecoversDeviceKernel(t *testing.T) {
	dev := device.MustNew(device.DefaultOptions())
	_, y, err := dev.MeasureAveraged(allNOPProgram(64), 40)
	if err != nil {
		t.Fatal(err)
	}
	steady, err := steadyRegion(y, dev.SamplesPerCycle(), 8)
	if err != nil {
		t.Fatal(err)
	}
	k, score, err := FitKernel(steady, dev.SamplesPerCycle(), signal.KernelSinExp)
	if err != nil {
		t.Fatal(err)
	}
	// Hidden truth: θ = 2.5, T0 = 0.25 (internal/device/physics.go).
	if math.Abs(k.Theta-2.5) > 0.6 {
		t.Errorf("fitted theta = %v, want ≈ 2.5", k.Theta)
	}
	if math.Abs(k.Period-0.25) > 0.04 {
		t.Errorf("fitted period = %v, want ≈ 0.25", k.Period)
	}
	if score < 0.98 {
		t.Errorf("fit score %v, want >= 0.98", score)
	}
}

func TestFitKernelFamilies(t *testing.T) {
	dev := device.MustNew(device.DefaultOptions())
	_, y, err := dev.MeasureAveraged(allNOPProgram(64), 40)
	if err != nil {
		t.Fatal(err)
	}
	steady, _ := steadyRegion(y, dev.SamplesPerCycle(), 8)
	sinexp, sSin, err := FitKernel(steady, dev.SamplesPerCycle(), signal.KernelSinExp)
	if err != nil {
		t.Fatal(err)
	}
	_, sExp, err := FitKernel(steady, dev.SamplesPerCycle(), signal.KernelExp)
	if err != nil {
		t.Fatal(err)
	}
	rect, _, err := FitKernel(steady, dev.SamplesPerCycle(), signal.KernelRect)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1's ordering: the damped sinusoid explains the waveform best.
	if sSin <= sExp {
		t.Errorf("sin-exp score %v should beat exp score %v", sSin, sExp)
	}
	if rect.Kind != signal.KernelRect || sinexp.Kind != signal.KernelSinExp {
		t.Error("kernel kinds mangled")
	}
}

func TestFitKernelErrors(t *testing.T) {
	if _, _, err := FitKernel(make([]float64, 8), 1, signal.KernelSinExp); err == nil {
		t.Error("spc=1 accepted")
	}
	if _, _, err := FitKernel(make([]float64, 8), 16, signal.KernelSinExp); err == nil {
		t.Error("too-short signal accepted")
	}
	if _, _, err := FitKernel(make([]float64, 1024), 16, signal.KernelKind(9)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestExtractAmplitudesInvertsReconstruct(t *testing.T) {
	k := signal.Kernel{Kind: signal.KernelSinExp, Theta: 2.5, Period: 0.25, SupportCycles: 3}
	spc := 16
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		n := 5 + r.Intn(40)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64() * 3
		}
		y := signal.MustReconstruct(x, spc, k)
		back, err := ExtractAmplitudes(y, spc, k)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExtractAmplitudesErrors(t *testing.T) {
	k := signal.Kernel{Kind: signal.KernelSinExp, Theta: 2.5, Period: 0.25, SupportCycles: 3}
	if _, err := ExtractAmplitudes(make([]float64, 3), 16, k); err == nil {
		t.Error("sub-cycle signal accepted")
	}
	bad := signal.Kernel{Kind: signal.KernelExp} // Theta unset
	if _, err := ExtractAmplitudes(make([]float64, 64), 16, bad); err == nil {
		t.Error("bad kernel accepted")
	}
}

func TestTrainedModelHeadlineAccuracy(t *testing.T) {
	m, dev := testModel(t)
	rng := rand.New(rand.NewSource(1234))
	total := 0.0
	const progs = 3
	for i := 0; i < progs; i++ {
		words, err := MixedProgram(rng, 350)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := m.CompareOnDevice(dev, words, 10)
		if err != nil {
			t.Fatal(err)
		}
		if cmp.Accuracy < 0.85 {
			t.Errorf("program %d: accuracy %.3f below 0.85", i, cmp.Accuracy)
		}
		total += cmp.Accuracy
	}
	if mean := total / progs; mean < 0.90 {
		t.Errorf("mean accuracy %.3f, want >= 0.90 (paper: 0.941)", mean)
	}
}

func TestActivityPruningMatchesPaper(t *testing.T) {
	m, _ := testModel(t)
	totalBits, selected := 0, 0
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		totalBits += m.Activity[s].Candidates
		selected += len(m.Activity[s].Selected)
		if m.Activity[s].Candidates != cpu.FeatureBits(s) {
			t.Errorf("stage %v candidates = %d", s, m.Activity[s].Candidates)
		}
	}
	pruned := 1 - float64(selected)/float64(totalBits)
	if pruned < 0.65 {
		t.Errorf("stepwise pruned only %.0f%% of T, paper reports >65%%", 100*pruned)
	}
	if selected == 0 {
		t.Error("no transition bits selected at all")
	}
}

func TestAblationsDegradeAccuracy(t *testing.T) {
	m, dev := testModel(t)
	rng := rand.New(rand.NewSource(77))
	var words [][]uint32
	for i := 0; i < 2; i++ {
		w, err := MixedProgram(rng, 350)
		if err != nil {
			t.Fatal(err)
		}
		words = append(words, w)
	}
	score := func(opts ModelOptions) (acc, rmse float64) {
		mv := m.WithOptions(opts)
		for _, w := range words {
			cmp, err := mv.CompareOnDevice(dev, w, 8)
			if err != nil {
				t.Fatal(err)
			}
			acc += cmp.Accuracy
			rmse += cmp.RMSE
		}
		n := float64(len(words))
		return acc / n, rmse / n
	}
	fullAcc, fullRMSE := score(FullModel())
	ablations := map[string]ModelOptions{
		"no-stall":      {PerStageSources: true, Activity: ActivityLR, ModelCache: true, ModelFlush: true},
		"no-activity":   {PerStageSources: true, Activity: ActivityNone, ModelStalls: true, ModelCache: true, ModelFlush: true},
		"single-source": {Activity: ActivityLR, ModelStalls: true, ModelCache: true, ModelFlush: true},
		"no-flush":      {PerStageSources: true, Activity: ActivityLR, ModelStalls: true, ModelCache: true},
	}
	// An ablation must hurt at least one metric: the shape-oriented
	// per-cycle correlation or the amplitude-sensitive normalized RMSE.
	for name, opts := range ablations {
		acc, rmse := score(opts)
		if acc >= fullAcc && rmse <= 1.05*fullRMSE {
			t.Errorf("%s shows no degradation: accuracy %.3f (full %.3f), RMSE %.3f (full %.3f)",
				name, acc, fullAcc, rmse, fullRMSE)
		}
	}
}

func TestModelAmpKeyMapping(t *testing.T) {
	m := &Model{Options: FullModel()}
	bubble := &cpu.StageTrace{Bubble: true, Seq: -1}
	if m.ampKeyFor(bubble) != ampKeyBubble {
		t.Error("bubble should map to the bubble key with flush modeling")
	}
	mNoFlush := m.WithOptions(ModelOptions{PerStageSources: true, Activity: ActivityLR, ModelStalls: true, ModelCache: true})
	if mNoFlush.ampKeyFor(bubble) != ampKeyNOP {
		t.Error("bubble should map to NOP without flush modeling")
	}
	nop := &cpu.StageTrace{Op: isa.ADDI, Inst: isa.Nop()}
	if m.ampKeyFor(nop) != ampKeyNOP {
		t.Error("NOP should map to NOP key")
	}
	missLoad := &cpu.StageTrace{Op: isa.LW, Inst: isa.Lw(isa.T0, isa.Zero, 0), CacheAccess: true, CacheHit: false}
	if m.ampKeyFor(missLoad) != int(isa.ClusterLoad) {
		t.Error("missing load should map to Load")
	}
	mNoCache := m.WithOptions(ModelOptions{PerStageSources: true, Activity: ActivityLR, ModelStalls: true, ModelFlush: true})
	if mNoCache.ampKeyFor(missLoad) != int(isa.ClusterCache) {
		t.Error("without cache modeling a miss should map to Cache")
	}
	if AmpKeyName(ampKeyNOP) != "NOP" || AmpKeyName(0) != "ALU" {
		t.Error("AmpKeyName broken")
	}
}

func TestModelStallZeroing(t *testing.T) {
	m := &Model{Options: FullModel()}
	for k := 0; k < NumAmpKeys; k++ {
		for s := 0; s < cpu.NumStages; s++ {
			m.Amp[k][s] = 1
		}
	}
	stalled := &cpu.StageTrace{Op: isa.ADD, Inst: isa.Add(isa.T0, isa.T1, isa.T2), Stalled: true}
	if got := m.stageSource(cpu.EX, stalled, false); got != 0 {
		t.Errorf("stalled source = %v, want 0", got)
	}
	mNoStall := m.WithOptions(ModelOptions{PerStageSources: true, Activity: ActivityNone, ModelCache: true, ModelFlush: true})
	if got := mNoStall.stageSource(cpu.EX, stalled, false); got != 1 {
		t.Errorf("no-stall-model source = %v, want 1", got)
	}
	// Cache ablation: a miss's wait cycle in MEM emits as active.
	memWait := &cpu.StageTrace{Op: isa.LW, Inst: isa.Lw(isa.T0, isa.Zero, 0), Stalled: true, CacheAccess: true}
	mNoCache := m.WithOptions(ModelOptions{PerStageSources: true, Activity: ActivityNone, ModelStalls: true, ModelFlush: true})
	if got := mNoCache.stageSource(cpu.MEM, memWait, false); got == 0 {
		t.Error("cache-ablated MEM wait cycle should emit")
	}
	if got := m.stageSource(cpu.MEM, memWait, false); got != 0 {
		t.Error("full model MEM wait cycle should be quiet")
	}
}

func TestWithBetaScalesSources(t *testing.T) {
	m := &Model{Options: FullModel()}
	for k := 0; k < NumAmpKeys; k++ {
		for s := 0; s < cpu.NumStages; s++ {
			m.Amp[k][s] = 2
		}
	}
	st := &cpu.StageTrace{Op: isa.ADD, Inst: isa.Add(isa.T0, isa.T1, isa.T2)}
	base := m.stageSource(cpu.EX, st, false)
	mb := m.WithBeta([cpu.NumStages]float64{1, 1, 0.5, 1, 1})
	if got := mb.stageSource(cpu.EX, st, false); math.Abs(got-base/2) > 1e-12 {
		t.Errorf("beta-scaled source = %v, want %v", got, base/2)
	}
	// Base model unchanged (WithBeta copies).
	if m.Beta != nil {
		t.Error("WithBeta mutated the receiver")
	}
}

func TestSimulateProgramEndToEnd(t *testing.T) {
	m, dev := testModel(t)
	words := allNOPProgram(20)
	tr, y, err := m.SimulateProgram(dev.Options().CPU, words)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != len(tr)*m.SamplesPerCycle {
		t.Errorf("signal length %d != %d cycles × %d", len(y), len(tr), m.SamplesPerCycle)
	}
	if signal.Energy(y) == 0 {
		t.Error("simulated signal is silent")
	}
}

func TestCompareErrors(t *testing.T) {
	m := &Model{SamplesPerCycle: 16, Options: FullModel()}
	if _, err := m.Compare([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := m.Compare(make([]float64, 8), make([]float64, 8)); err == nil {
		t.Error("sub-cycle signals accepted")
	}
}

func TestMixedProgramDeterministicAndRunnable(t *testing.T) {
	w1, err := MixedProgram(rand.New(rand.NewSource(5)), 300)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := MixedProgram(rand.New(rand.NewSource(5)), 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1) != len(w2) {
		t.Fatal("nondeterministic program size")
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatal("nondeterministic program content")
		}
	}
	c := cpu.MustNew(cpu.DefaultConfig())
	if _, err := c.RunProgram(w1); err != nil {
		t.Fatalf("mixed program does not run: %v", err)
	}
	st := c.Stats()
	if st.CacheMisses == 0 {
		t.Error("mixed program should produce cache misses")
	}
	if st.Mispredicts == 0 {
		t.Error("mixed program should produce mispredictions")
	}
}

func TestZeroOperandProgramsRun(t *testing.T) {
	c := cpu.MustNew(cpu.DefaultConfig())
	for i, words := range zeroOperandPrograms() {
		if _, err := c.RunProgram(words); err != nil {
			t.Errorf("zero-operand program %d: %v", i, err)
		}
	}
}

func TestRandomOperandProgramsRun(t *testing.T) {
	progs, err := randomOperandPrograms(func(i int) *rand.Rand {
		return rand.New(rand.NewSource(6 + int64(i)))
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.MustNew(cpu.DefaultConfig())
	for i, words := range progs {
		if _, err := c.RunProgram(words); err != nil {
			t.Errorf("random-operand program %d: %v", i, err)
		}
	}
}

func TestActivityModelStrings(t *testing.T) {
	if ActivityLR.String() != "stepwise-LR" || ActivityAverage.String() != "average" ||
		ActivityNone.String() != "none" || ActivityModel(9).String() != "unknown" {
		t.Error("ActivityModel.String broken")
	}
}

func TestStageActivityContribution(t *testing.T) {
	am := StageActivityModel{
		Selected:   []int{0, 33},
		Coef:       []float64{0.5, -0.25},
		Candidates: 64,
	}
	st := &cpu.StageTrace{}
	st.Flip[0] = 1      // bit 0 set
	st.Flip[1] = 1 << 1 // bit 33 set
	if got := am.contribution(st); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("LR contribution = %v, want 0.25", got)
	}
	if p := am.PrunedFraction(); math.Abs(p-(1-2.0/64)) > 1e-12 {
		t.Errorf("pruned fraction = %v", p)
	}
	empty := StageActivityModel{}
	if empty.PrunedFraction() != 0 {
		t.Error("empty model pruned fraction should be 0")
	}
}

func TestActivityAverageScalesBaseline(t *testing.T) {
	// The Equ. 7 ablation is parameter-free: every flip inflates the
	// baseline by 1/totalBits.
	m := &Model{Options: FullModel()}
	for k := 0; k < NumAmpKeys; k++ {
		for s := 0; s < cpu.NumStages; s++ {
			m.Amp[k][s] = 2
		}
	}
	st := &cpu.StageTrace{Op: isa.ADD, Inst: isa.Add(isa.T0, isa.T1, isa.T2)}
	st.Flip[0] = 0xF // four flips
	mAvg := m.WithOptions(ModelOptions{PerStageSources: true, Activity: ActivityAverage,
		ModelStalls: true, ModelCache: true, ModelFlush: true})
	want := 2 * (1 + 4.0/float64(cpu.FeatureBits(cpu.EX)))
	if got := mAvg.stageSource(cpu.EX, st, false); math.Abs(got-want) > 1e-12 {
		t.Errorf("Equ.7 source = %v, want %v", got, want)
	}
	mNone := m.WithOptions(ModelOptions{PerStageSources: true, Activity: ActivityNone,
		ModelStalls: true, ModelCache: true, ModelFlush: true})
	if got := mNone.stageSource(cpu.EX, st, false); got != 2 {
		t.Errorf("ActivityNone source = %v, want 2", got)
	}
}

func BenchmarkModelSimulate(b *testing.B) {
	dev := device.MustNew(device.DefaultOptions())
	m, err := Train(dev, TrainOptions{Runs: 5, InstancesPerCluster: 10, MixedLength: 200})
	if err != nil {
		b.Fatal(err)
	}
	words, err := MixedProgram(rand.New(rand.NewSource(1)), 300)
	if err != nil {
		b.Fatal(err)
	}
	c := cpu.MustNew(dev.Options().CPU)
	tr, err := c.RunProgram(words)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Simulate(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m, dev := testModel(t)
	path := t.TempDir() + "/model.json"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The loaded model must simulate identically.
	words, err := MixedProgram(rand.New(rand.NewSource(55)), 200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dev.Options().CPU
	_, a, err := m.SimulateProgram(cfg, words)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := loaded.SimulateProgram(cfg, words)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loaded model diverges at sample %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLoadModelRejectsBadInput(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"version":99,"model":{}}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"version":1}`)); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"version":1,"model":{"SamplesPerCycle":0}}`)); err == nil {
		t.Error("invalid SamplesPerCycle accepted")
	}
	bad := `{"version":1,"model":{"SamplesPerCycle":16,
		"Kernel":{"Kind":2,"Theta":2,"Period":0.25,"SupportCycles":3},
		"Activity":[{"Selected":[9999],"Coef":[1]},{},{},{},{}]}}`
	if _, err := LoadModel(strings.NewReader(bad)); err == nil {
		t.Error("out-of-range activity bit accepted")
	}
	if _, err := LoadModelFile("/nonexistent/model.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestAttributionHardwareAndSoftware(t *testing.T) {
	m, _ := testModel(t)

	// A MUL-heavy loop: the MUL/DIV instruction and the EX stage must top
	// the attribution; a miss-heavy loop must shift weight to MEM.
	mulProg := func() []uint32 {
		b := newTestBuilder()
		b.Li(isa.T1, 0x7FFF1234)
		b.Li(isa.T2, 0x1357)
		b.Nop(4)
		b.I(isa.Addi(isa.S3, isa.Zero, 10))
		b.Label("l")
		b.I(isa.Mul(isa.T0, isa.T1, isa.T2))
		b.Nop(3)
		b.I(isa.Addi(isa.S3, isa.S3, -1))
		b.Branch(isa.BNE, isa.S3, isa.Zero, "l")
		b.I(isa.Ebreak())
		return b.MustAssemble().Words
	}()

	c := cpu.MustNew(cpu.DefaultConfig())
	tr, err := c.RunProgram(mulProg)
	if err != nil {
		t.Fatal(err)
	}
	att := m.Attribute(tr)

	// Shares sum to 1.
	sum := 0.0
	for _, s := range att.StageShare {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("stage shares sum to %v", sum)
	}
	// The top instruction by total contribution must be the MUL.
	if len(att.Instructions) == 0 {
		t.Fatal("no instructions attributed")
	}
	if att.Instructions[0].Inst.Op != isa.MUL {
		t.Errorf("top emitter is %v, want MUL", att.Instructions[0].Inst)
	}
	if att.Instructions[0].Executions != 10 {
		t.Errorf("MUL executions = %d, want 10", att.Instructions[0].Executions)
	}
	if att.Instructions[0].Mean() <= 0 || att.Instructions[0].Peak <= 0 {
		t.Error("degenerate contribution stats")
	}
	if rep := att.Report(5); !strings.Contains(rep, "mul") {
		t.Errorf("report missing the MUL:\n%s", rep)
	}

	// Miss-heavy program: MEM share must exceed the MUL program's.
	missProg := func() []uint32 {
		b := newTestBuilder()
		b.Li(isa.S1, 0x80000)
		b.Nop(4)
		for i := 0; i < 12; i++ {
			b.I(isa.Lw(isa.T0, isa.S1, int32(64*i)))
			b.Nop(2)
		}
		b.I(isa.Ebreak())
		return b.MustAssemble().Words
	}()
	tr2, err := c.RunProgram(missProg)
	if err != nil {
		t.Fatal(err)
	}
	att2 := m.Attribute(tr2)
	if att2.StageShare[cpu.MEM] <= att.StageShare[cpu.MEM] {
		t.Errorf("miss-heavy MEM share %.3f not above mul-heavy %.3f",
			att2.StageShare[cpu.MEM], att.StageShare[cpu.MEM])
	}
}

// newTestBuilder keeps the attribution test free of a direct asm import
// cycle concern (core already depends on asm).
func newTestBuilder() *asm.Builder { return asm.NewBuilder() }
