package core

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"emsim/internal/device"
)

// Tests for the staged Trainer: worker-count equivalence (the
// determinism contract), cancellation behaviour, progress reporting, and
// the measurement cache.

// trainWith trains one model on a fresh default device and returns its
// serialized bytes plus the progress events observed. The callback is
// locked because worker goroutines invoke it concurrently.
func trainWith(t *testing.T, opts TrainOptions) ([]byte, []Progress) {
	t.Helper()
	var (
		mu     sync.Mutex
		events []Progress
	)
	opts.Progress = func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	}
	dev := device.MustNew(device.DefaultOptions())
	tr, err := NewTrainer(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), events
}

func TestTrainerWorkerCountEquivalence(t *testing.T) {
	// The determinism contract: the serialized model must be
	// byte-identical whether measurements run inline (Workers: 1), on a
	// small pool, or at full GOMAXPROCS fan-out (core.Train's default).
	opts := smallCampaign()

	opts.Workers = 1
	seq, events := trainWith(t, opts)

	opts.Workers = 3
	pool, _ := trainWith(t, opts)
	if !bytes.Equal(seq, pool) {
		t.Errorf("3-worker training differs from sequential (%d vs %d bytes)", len(pool), len(seq))
	}

	opts.Workers = 0 // GOMAXPROCS, the Train() default
	wide, _ := trainWith(t, opts)
	if !bytes.Equal(seq, wide) {
		t.Errorf("GOMAXPROCS training differs from sequential (%d vs %d bytes)", len(wide), len(seq))
	}

	// The progress stream from the sequential run must announce every
	// phase in DAG order and count each one monotonically to completion.
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	seen := make([]bool, NumPhases)
	phase, done := Phase(-1), 0
	for _, e := range events {
		if e.Phase < phase {
			t.Fatalf("phase %v reported after %v", e.Phase, phase)
		}
		if e.Phase > phase {
			if e.Done != 0 {
				t.Fatalf("phase %v did not announce itself with Done=0 (got %d)", e.Phase, e.Done)
			}
			phase, done = e.Phase, 0
			seen[e.Phase] = true
			continue
		}
		if e.Done != done+1 {
			t.Fatalf("phase %v progress jumped from %d to %d", e.Phase, done, e.Done)
		}
		done = e.Done
		if e.Done > e.Total {
			t.Fatalf("phase %v overran: %d/%d", e.Phase, e.Done, e.Total)
		}
	}
	for p, ok := range seen {
		if !ok {
			t.Errorf("phase %v never reported", Phase(p))
		}
	}
}

func TestTrainerCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := smallCampaign()
	opts.Workers = 4
	// Cancel from inside the campaign, two measurements into phase 1 —
	// mid-fan-out, with workers in flight. The callback is invoked
	// concurrently, so its state carries its own lock.
	var (
		phaseMu   sync.Mutex
		lastPhase Phase
	)
	opts.Progress = func(p Progress) {
		phaseMu.Lock()
		if p.Phase > lastPhase {
			lastPhase = p.Phase
		}
		phaseMu.Unlock()
		if p.Phase == PhaseBaseline && p.Done >= 2 {
			cancel()
		}
	}
	dev := device.MustNew(device.DefaultOptions())
	tr, err := NewTrainer(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	m, err := tr.Run(ctx)
	if m != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Run after cancel = (%v, %v), want (nil, context.Canceled)", m, err)
	}
	// Generous bound; the point is "promptly", not "instantly" — latency
	// is one capture per in-flight worker.
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("cancelled Run took %v", d)
	}
	if lastPhase > PhaseBaseline {
		t.Errorf("campaign advanced to %v after cancellation", lastPhase)
	}

	// Every worker goroutine must have exited by the time Run returns
	// (allow a moment for runtime bookkeeping).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutine leak: %d before Run, %d after", before, g)
	}
}

func TestTrainerProgressReentrancy(t *testing.T) {
	// The Progress contract allows the callback to call back into the
	// Trainer. Before the callbacks moved outside the trainer's internal
	// mutex, a callback touching PhaseTimings deadlocked on the first
	// event; the timeout below is the regression guard.
	opts := smallCampaign()
	opts.Workers = 2
	dev := device.MustNew(device.DefaultOptions())
	var tr *Trainer
	opts.Progress = func(Progress) { _ = tr.PhaseTimings() }
	tr, err := NewTrainer(dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tr.Run(context.Background())
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("Run never returned: a progress callback calling PhaseTimings deadlocks against the trainer lock")
	}
}

func TestMeasurementCacheReuse(t *testing.T) {
	cache := NewMeasurementCache()
	opts := smallCampaign()
	opts.Cache = cache

	first, _ := trainWith(t, opts)
	after1 := cache.Stats()
	// Every entry comes from one miss. (Hits can occur within a single
	// campaign: the all-NOP program is measured by both phase 0 and
	// phase 1, and the cache dedupes it.)
	if after1.Entries == 0 || after1.Misses != int64(after1.Entries) {
		t.Fatalf("first training: stats %+v, want entries > 0, one miss per entry", after1)
	}

	// A retraining with the same options against an identically
	// configured device must be served entirely from the cache and fit
	// the identical model.
	second, _ := trainWith(t, opts)
	after2 := cache.Stats()
	if after2.Misses != after1.Misses {
		t.Errorf("second training missed the cache %d times", after2.Misses-after1.Misses)
	}
	if after2.Hits == 0 {
		t.Error("second training recorded no cache hits")
	}
	if !bytes.Equal(first, second) {
		t.Error("cached retraining produced a different model")
	}

	// A differently configured device must not share artifacts.
	devOpts := device.DefaultOptions()
	devOpts.NoiseSeed++
	if device.MustNew(device.DefaultOptions()).Fingerprint() == device.MustNew(devOpts).Fingerprint() {
		t.Error("distinct device configurations share a fingerprint")
	}
}

func TestNewTrainerRejectsNegativeWorkers(t *testing.T) {
	dev := device.MustNew(device.DefaultOptions())
	opts := smallCampaign()
	opts.Workers = -1
	if _, err := NewTrainer(dev, opts); err == nil {
		t.Error("NewTrainer accepted a negative worker count")
	}
}
