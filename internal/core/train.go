package core

import (
	"fmt"

	"emsim/internal/cpu"
	"emsim/internal/linalg"
	"emsim/internal/stats"
)

// This file holds the training campaign's options and the per-phase
// fitting mathematics (ridge baseline, stepwise activity, MISO). The
// pipeline that schedules measurements and drives the phases — parallel
// fan-out, caching, progress, cancellation — lives in trainer.go.

// TrainOptions tunes the training campaign.
type TrainOptions struct {
	// Runs is the number of averaged measurements per sequence (the
	// paper uses 1000 oscilloscope captures; our noise floor needs far
	// fewer). Default 30.
	Runs int
	// Seed drives the random operand/program generation. Default 1.
	// Every phase derives private per-program streams from it, so
	// changing one phase's campaign size never perturbs another's
	// programs.
	Seed int64
	// InstancesPerCluster is the number of random-operand probes per
	// cluster in phase 2. Default 40.
	InstancesPerCluster int
	// MaxActivityBits caps the stepwise selection size. Default 80.
	MaxActivityBits int
	// MixedPrograms and MixedLength size the phase-3 campaign.
	// Defaults: 3 programs of 500 instructions.
	MixedPrograms, MixedLength int
	// Workers is the measurement fan-out width: how many device
	// measurer replicas capture probe programs concurrently. The fitted
	// model is byte-identical at every worker count (per-program noise
	// streams plus ordered reduction), so this is purely a wall-clock
	// knob. 0 selects GOMAXPROCS; 1 measures inline on the calling
	// goroutine.
	Workers int
	// Progress, when non-nil, receives one event per phase start and
	// per completed measurement. Worker goroutines invoke it
	// concurrently and outside the trainer's internal lock, so it must
	// be safe for concurrent use and tolerate Done counts arriving out
	// of order within a phase (phase boundaries themselves are ordered:
	// every event of one phase is delivered before the next phase
	// starts). The callback must not block for long or it stalls the
	// campaign; it may call back into the Trainer.
	Progress func(Progress) `json:"-"`
	// Cache, when non-nil, lets the campaign reuse measurement
	// artifacts recorded by earlier trainings of devices with the same
	// fingerprint (and share its own). See NewMeasurementCache.
	Cache *MeasurementCache `json:"-"`
}

func (o *TrainOptions) setDefaults() {
	if o.Runs == 0 {
		o.Runs = 30
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.InstancesPerCluster == 0 {
		o.InstancesPerCluster = 40
	}
	if o.MaxActivityBits == 0 {
		o.MaxActivityBits = 80
	}
	if o.MixedPrograms == 0 {
		o.MixedPrograms = 3
	}
	if o.MixedLength == 0 {
		o.MixedLength = 500
	}
}

// measurement is one aligned (model trace, extracted amplitudes) pair —
// a raw artifact after phase-0 kernel deconvolution.
type measurement struct {
	trace cpu.Trace
	amps  []float64 // extracted per-cycle amplitudes
}

// phase1Columns is the design width of the baseline fit: an intercept
// plus one column per (amplitude key, stage).
const phase1Columns = 1 + NumAmpKeys*cpu.NumStages

func phase1Col(key int, s cpu.Stage) int { return 1 + key*cpu.NumStages + int(s) }

// fitBaseline solves the phase-1 ridge regression: per-cycle amplitudes
// against stage-occupancy indicators. Stalled stages contribute nothing
// (they are power-gated); bubbles and NOPs share the NOP column. Ridge
// regularization resolves the benign indeterminacies between stages that
// always stall together.
func (t *Trainer) fitBaseline(m *Model, meas []*measurement) error {
	xtx := linalg.NewMatrix(phase1Columns, phase1Columns)
	xty := make([]float64, phase1Columns)
	rows := 0
	row := make([]float64, phase1Columns)
	for _, me := range meas {
		for n := range me.trace {
			for i := range row {
				row[i] = 0
			}
			row[0] = 1
			c := &me.trace[n]
			full := FullModel()
			tmp := Model{Options: full}
			for s := cpu.Stage(0); s < cpu.NumStages; s++ {
				st := &c.Stages[s]
				if st.Stalled {
					continue
				}
				row[phase1Col(tmp.ampKeyFor(st), s)] += 1
			}
			y := me.amps[n]
			for i := 0; i < phase1Columns; i++ {
				if row[i] == 0 {
					continue
				}
				xty[i] += row[i] * y
				for j := i; j < phase1Columns; j++ {
					xtx.Set(i, j, xtx.At(i, j)+row[i]*row[j])
				}
			}
			rows++
		}
	}
	if rows < phase1Columns {
		return fmt.Errorf("only %d cycles for %d unknowns", rows, phase1Columns)
	}
	// Symmetrize and regularize.
	lambda := 1e-3 * float64(rows)
	for i := 0; i < phase1Columns; i++ {
		for j := 0; j < i; j++ {
			xtx.Set(i, j, xtx.At(j, i))
		}
		xtx.Set(i, i, xtx.At(i, i)+lambda)
	}
	beta, err := linalg.SolveCholesky(xtx, xty)
	if err != nil {
		return err
	}
	m.Background = beta[0]
	for key := 0; key < NumAmpKeys; key++ {
		for s := cpu.Stage(0); s < cpu.NumStages; s++ {
			m.Amp[key][s] = beta[phase1Col(key, s)]
		}
	}
	// Initialize the MISO stage to pass-through until phase 3 refits it.
	m.MISOIntercept = m.Background
	for s := range m.MISO {
		m.MISO[s] = 1
	}
	m.SingleIntercept = m.Background
	m.SingleM = 1
	return nil
}

// featureOffsets maps each stage's transition bits into one global
// feature vector.
func featureOffsets() (offsets [cpu.NumStages]int, total int) {
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		offsets[s] = total
		total += cpu.FeatureBits(s)
	}
	return offsets, total
}

// fitActivity fits the data-dependent activity term on the residuals of
// the phase-1 model, with stepwise selection over every stage's
// transition bits (the paper's pruning of T), plus the equal-weight
// fallback of Equ. 7 for the Figure 3 ablation.
func (t *Trainer) fitActivity(m *Model, meas []*measurement) error {
	offsets, total := featureOffsets()

	base := m.WithOptions(ModelOptions{
		PerStageSources: true,
		Activity:        ActivityNone,
		ModelStalls:     true,
		ModelCache:      true,
		ModelFlush:      true,
	})

	var feats [][]float64
	var resid []float64
	for _, me := range meas {
		for n := range me.trace {
			c := &me.trace[n]
			flips := 0
			for s := cpu.Stage(0); s < cpu.NumStages; s++ {
				flips += c.Stages[s].FlipCount()
			}
			if flips == 0 {
				continue
			}
			fv := make([]float64, total)
			for s := cpu.Stage(0); s < cpu.NumStages; s++ {
				st := &c.Stages[s]
				if st.Stalled {
					continue // gated stages contribute no switching noise
				}
				for w := 0; w < cpu.LatchWords(s); w++ {
					f := st.Flip[w]
					for b := 0; f != 0 && b < 32; b++ {
						if f&(1<<uint(b)) != 0 {
							fv[offsets[s]+32*w+b] = 1
						}
					}
				}
			}
			feats = append(feats, fv)
			resid = append(resid, me.amps[n]-base.CycleAmplitude(c))
		}
	}
	if len(resid) < 50 {
		return fmt.Errorf("only %d activity samples", len(resid))
	}
	// Bound the stepwise cost: a deterministic stride subsample keeps the
	// selection tractable without biasing the cycle mix.
	const maxSamples = 4000
	if len(resid) > maxSamples {
		stride := (len(resid) + maxSamples - 1) / maxSamples
		var f2 [][]float64
		var r2 []float64
		for i := 0; i < len(resid); i += stride {
			f2 = append(f2, feats[i])
			r2 = append(r2, resid[i])
		}
		feats, resid = f2, r2
	}

	sw, err := stats.StepwiseRegression(feats, resid, stats.StepwiseOptions{
		MaxPredictors: t.opts.MaxActivityBits,
	})
	if err != nil {
		return err
	}
	// Distribute the selected global bits back to their stages.
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		m.Activity[s] = StageActivityModel{Candidates: cpu.FeatureBits(s)}
	}
	for k, gbit := range sw.Selected {
		for s := cpu.Stage(0); s < cpu.NumStages; s++ {
			lo, hi := offsets[s], offsets[s]+cpu.FeatureBits(s)
			if gbit >= lo && gbit < hi {
				am := &m.Activity[s]
				am.Selected = append(am.Selected, gbit-lo)
				am.Coef = append(am.Coef, sw.Model.Coef[k])
			}
		}
	}
	// The stepwise intercept folds into the background.
	m.Background += sw.Model.Intercept
	m.MISOIntercept = m.Background
	return nil
}

// fitMISO fits the final combination (Equ. 9): measured amplitudes
// against the per-stage source values of the current model, over mixed
// programs where all clusters share the pipeline.
func (t *Trainer) fitMISO(m *Model, meas []*measurement) error {
	var feats [][]float64
	var single [][]float64
	var ys []float64
	for _, me := range meas {
		for n := range me.trace {
			c := &me.trace[n]
			fv := make([]float64, cpu.NumStages)
			sum := 0.0
			for s := cpu.Stage(0); s < cpu.NumStages; s++ {
				fv[s] = m.stageSource(s, &c.Stages[s], false)
				sum += fv[s]
			}
			feats = append(feats, fv)
			single = append(single, []float64{sum})
			ys = append(ys, me.amps[n])
		}
	}
	fit, err := stats.LinearRegression(feats, ys)
	if err != nil {
		return err
	}
	m.MISOIntercept = fit.Intercept
	for s := 0; s < cpu.NumStages; s++ {
		m.MISO[s] = fit.Coef[s]
	}
	sfit, err := stats.LinearRegression(single, ys)
	if err != nil {
		return err
	}
	m.SingleIntercept = sfit.Intercept
	m.SingleM = sfit.Coef[0]
	return nil
}
