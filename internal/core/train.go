package core

import (
	"fmt"
	"math/rand"

	"emsim/internal/cpu"
	"emsim/internal/device"
	"emsim/internal/linalg"
	"emsim/internal/signal"
	"emsim/internal/stats"
)

// TrainOptions tunes the training campaign.
type TrainOptions struct {
	// Runs is the number of averaged measurements per sequence (the
	// paper uses 1000 oscilloscope captures; our noise floor needs far
	// fewer). Default 30.
	Runs int
	// Seed drives the random operand/program generation. Default 1.
	Seed int64
	// InstancesPerCluster is the number of random-operand probes per
	// cluster in phase 2. Default 40.
	InstancesPerCluster int
	// MaxActivityBits caps the stepwise selection size. Default 80.
	MaxActivityBits int
	// MixedPrograms and MixedLength size the phase-3 campaign.
	// Defaults: 3 programs of 500 instructions.
	MixedPrograms, MixedLength int
}

func (o *TrainOptions) setDefaults() {
	if o.Runs == 0 {
		o.Runs = 30
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.InstancesPerCluster == 0 {
		o.InstancesPerCluster = 40
	}
	if o.MaxActivityBits == 0 {
		o.MaxActivityBits = 80
	}
	if o.MixedPrograms == 0 {
		o.MixedPrograms = 3
	}
	if o.MixedLength == 0 {
		o.MixedLength = 500
	}
}

// measurement is one aligned (model trace, measured amplitudes) pair.
type measurement struct {
	trace cpu.Trace
	amps  []float64 // extracted per-cycle amplitudes
}

// Trainer fits a Model against a Device. It owns a core configured like
// the device's (the paper's premise: the microarchitecture is known).
type Trainer struct {
	dev  *device.Device
	cfg  cpu.Config
	opts TrainOptions
	core *cpu.CPU

	kernel signal.Kernel
}

// NewTrainer prepares a training session against dev. The model core is
// configured identically to the device's core — with the hardware-defect
// switch cleared, since EMSim simulates the *intended* design (that gap
// is exactly what the Figure 11 debugging use-case detects).
func NewTrainer(dev *device.Device, opts TrainOptions) (*Trainer, error) {
	opts.setDefaults()
	cfg := dev.Options().CPU
	cfg.BuggyMul = false
	c, err := cpu.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Trainer{dev: dev, cfg: cfg, opts: opts, core: c}, nil
}

// measure runs one program on the device (averaged over Runs captures),
// runs the model core on the same program, verifies cycle alignment, and
// extracts per-cycle amplitudes with the fitted kernel.
func (t *Trainer) measure(words []uint32) (*measurement, error) {
	devTrace, y, err := t.dev.MeasureAveraged(words, t.opts.Runs)
	if err != nil {
		return nil, err
	}
	tr, err := t.core.RunProgram(words)
	if err != nil {
		return nil, fmt.Errorf("core: model core failed: %w", err)
	}
	if len(tr) != len(devTrace) {
		return nil, fmt.Errorf("core: model (%d cycles) and device (%d cycles) disagree on timing",
			len(tr), len(devTrace))
	}
	amps, err := ExtractAmplitudes(y, t.dev.SamplesPerCycle(), t.kernel)
	if err != nil {
		return nil, err
	}
	return &measurement{trace: tr, amps: amps}, nil
}

// Train runs the full campaign and returns the fitted model.
func Train(dev *device.Device, opts TrainOptions) (*Model, error) {
	t, err := NewTrainer(dev, opts)
	if err != nil {
		return nil, err
	}
	m := &Model{
		SamplesPerCycle: dev.SamplesPerCycle(),
		Options:         FullModel(),
	}

	// ---- Phase 0: kernel fit (§II-C / Figure 1) ----
	_, nopSig, err := dev.MeasureAveraged(allNOPProgram(64), t.opts.Runs)
	if err != nil {
		return nil, fmt.Errorf("core: kernel campaign: %w", err)
	}
	steady, err := steadyRegion(nopSig, dev.SamplesPerCycle(), 8)
	if err != nil {
		return nil, err
	}
	kernel, _, err := FitKernel(steady, dev.SamplesPerCycle(), signal.KernelSinExp)
	if err != nil {
		return nil, fmt.Errorf("core: kernel fit: %w", err)
	}
	t.kernel = kernel
	m.Kernel = kernel

	// ---- Phase 1: baseline amplitudes A (§III-B) ----
	// Isolated NOP→inst→NOP sequences with zero operands establish each
	// cluster's per-stage footprint; a combination-benchmark group (the
	// kind of sequence the paper's 16 k-measurement campaign consists of)
	// provides the dense occupancy mixes that make every (class, stage)
	// column — including the NOP and bubble baselines, which sparse
	// sequences exercise only in lock-step — individually identifiable.
	rng := rand.New(rand.NewSource(t.opts.Seed))
	var phase1 []*measurement
	for _, words := range zeroOperandPrograms() {
		meas, err := t.measure(words)
		if err != nil {
			return nil, fmt.Errorf("core: phase 1: %w", err)
		}
		phase1 = append(phase1, meas)
	}
	nopMeas, err := t.measure(allNOPProgram(64))
	if err != nil {
		return nil, err
	}
	phase1 = append(phase1, nopMeas)
	comboWords, err := CombinationGroup(NumGroups-1, rng, false)
	if err != nil {
		return nil, err
	}
	comboMeas, err := t.measure(comboWords)
	if err != nil {
		return nil, fmt.Errorf("core: phase 1: %w", err)
	}
	phase1 = append(phase1, comboMeas)
	if err := t.fitBaseline(m, phase1); err != nil {
		return nil, fmt.Errorf("core: phase 1: %w", err)
	}

	// ---- Phase 2: activity factors via stepwise regression (§III-B) ----
	progs, err := randomOperandPrograms(rng, t.opts.InstancesPerCluster)
	if err != nil {
		return nil, err
	}
	var phase2 []*measurement
	for _, words := range progs {
		meas, err := t.measure(words)
		if err != nil {
			return nil, fmt.Errorf("core: phase 2: %w", err)
		}
		phase2 = append(phase2, meas)
	}
	// Augment the isolated probes with mixed-instruction sequences and the
	// combination group so the regression sees transition-bit correlations
	// as they occur with every cluster in flight.
	mixWords, err := MixedProgram(rng, t.opts.MixedLength)
	if err != nil {
		return nil, err
	}
	meas2, err := t.measure(mixWords)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	phase2 = append(phase2, meas2, comboMeas)
	if err := t.fitActivity(m, phase2); err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}

	// ---- Phase 3: MISO combination coefficients M (§III-C) ----
	var phase3 []*measurement
	for i := 0; i < t.opts.MixedPrograms; i++ {
		words, err := MixedProgram(rng, t.opts.MixedLength)
		if err != nil {
			return nil, err
		}
		meas, err := t.measure(words)
		if err != nil {
			return nil, fmt.Errorf("core: phase 3: %w", err)
		}
		phase3 = append(phase3, meas)
	}
	// One combination-benchmark group keeps the fit calibrated on the
	// all-clusters-in-flight regime the paper measures its 16 k sequences
	// in.
	comboWords3, err := CombinationGroup(NumGroups-2, rng, false)
	if err != nil {
		return nil, err
	}
	meas3, err := t.measure(comboWords3)
	if err != nil {
		return nil, fmt.Errorf("core: phase 3: %w", err)
	}
	phase3 = append(phase3, meas3)
	if err := t.fitMISO(m, phase3); err != nil {
		return nil, fmt.Errorf("core: phase 3: %w", err)
	}
	return m, nil
}

// phase1Columns is the design width of the baseline fit: an intercept
// plus one column per (amplitude key, stage).
const phase1Columns = 1 + NumAmpKeys*cpu.NumStages

func phase1Col(key int, s cpu.Stage) int { return 1 + key*cpu.NumStages + int(s) }

// fitBaseline solves the phase-1 ridge regression: per-cycle amplitudes
// against stage-occupancy indicators. Stalled stages contribute nothing
// (they are power-gated); bubbles and NOPs share the NOP column. Ridge
// regularization resolves the benign indeterminacies between stages that
// always stall together.
func (t *Trainer) fitBaseline(m *Model, meas []*measurement) error {
	xtx := linalg.NewMatrix(phase1Columns, phase1Columns)
	xty := make([]float64, phase1Columns)
	rows := 0
	row := make([]float64, phase1Columns)
	for _, me := range meas {
		for n := range me.trace {
			for i := range row {
				row[i] = 0
			}
			row[0] = 1
			c := &me.trace[n]
			full := FullModel()
			tmp := Model{Options: full}
			for s := cpu.Stage(0); s < cpu.NumStages; s++ {
				st := &c.Stages[s]
				if st.Stalled {
					continue
				}
				row[phase1Col(tmp.ampKeyFor(st), s)] += 1
			}
			y := me.amps[n]
			for i := 0; i < phase1Columns; i++ {
				if row[i] == 0 {
					continue
				}
				xty[i] += row[i] * y
				for j := i; j < phase1Columns; j++ {
					xtx.Set(i, j, xtx.At(i, j)+row[i]*row[j])
				}
			}
			rows++
		}
	}
	if rows < phase1Columns {
		return fmt.Errorf("only %d cycles for %d unknowns", rows, phase1Columns)
	}
	// Symmetrize and regularize.
	lambda := 1e-3 * float64(rows)
	for i := 0; i < phase1Columns; i++ {
		for j := 0; j < i; j++ {
			xtx.Set(i, j, xtx.At(j, i))
		}
		xtx.Set(i, i, xtx.At(i, i)+lambda)
	}
	beta, err := linalg.SolveCholesky(xtx, xty)
	if err != nil {
		return err
	}
	m.Background = beta[0]
	for key := 0; key < NumAmpKeys; key++ {
		for s := cpu.Stage(0); s < cpu.NumStages; s++ {
			m.Amp[key][s] = beta[phase1Col(key, s)]
		}
	}
	// Initialize the MISO stage to pass-through until phase 3 refits it.
	m.MISOIntercept = m.Background
	for s := range m.MISO {
		m.MISO[s] = 1
	}
	m.SingleIntercept = m.Background
	m.SingleM = 1
	return nil
}

// featureOffsets maps each stage's transition bits into one global
// feature vector.
func featureOffsets() (offsets [cpu.NumStages]int, total int) {
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		offsets[s] = total
		total += cpu.FeatureBits(s)
	}
	return offsets, total
}

// fitActivity fits the data-dependent activity term on the residuals of
// the phase-1 model, with stepwise selection over every stage's
// transition bits (the paper's pruning of T), plus the equal-weight
// fallback of Equ. 7 for the Figure 3 ablation.
func (t *Trainer) fitActivity(m *Model, meas []*measurement) error {
	offsets, total := featureOffsets()

	base := m.WithOptions(ModelOptions{
		PerStageSources: true,
		Activity:        ActivityNone,
		ModelStalls:     true,
		ModelCache:      true,
		ModelFlush:      true,
	})

	var feats [][]float64
	var resid []float64
	for _, me := range meas {
		for n := range me.trace {
			c := &me.trace[n]
			flips := 0
			for s := cpu.Stage(0); s < cpu.NumStages; s++ {
				flips += c.Stages[s].FlipCount()
			}
			if flips == 0 {
				continue
			}
			fv := make([]float64, total)
			for s := cpu.Stage(0); s < cpu.NumStages; s++ {
				st := &c.Stages[s]
				if st.Stalled {
					continue // gated stages contribute no switching noise
				}
				for w := 0; w < cpu.LatchWords(s); w++ {
					f := st.Flip[w]
					for b := 0; f != 0 && b < 32; b++ {
						if f&(1<<uint(b)) != 0 {
							fv[offsets[s]+32*w+b] = 1
						}
					}
				}
			}
			feats = append(feats, fv)
			resid = append(resid, me.amps[n]-base.CycleAmplitude(c))
		}
	}
	if len(resid) < 50 {
		return fmt.Errorf("only %d activity samples", len(resid))
	}
	// Bound the stepwise cost: a deterministic stride subsample keeps the
	// selection tractable without biasing the cycle mix.
	const maxSamples = 4000
	if len(resid) > maxSamples {
		stride := (len(resid) + maxSamples - 1) / maxSamples
		var f2 [][]float64
		var r2 []float64
		for i := 0; i < len(resid); i += stride {
			f2 = append(f2, feats[i])
			r2 = append(r2, resid[i])
		}
		feats, resid = f2, r2
	}

	sw, err := stats.StepwiseRegression(feats, resid, stats.StepwiseOptions{
		MaxPredictors: t.opts.MaxActivityBits,
	})
	if err != nil {
		return err
	}
	// Distribute the selected global bits back to their stages.
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		m.Activity[s] = StageActivityModel{Candidates: cpu.FeatureBits(s)}
	}
	for k, gbit := range sw.Selected {
		for s := cpu.Stage(0); s < cpu.NumStages; s++ {
			lo, hi := offsets[s], offsets[s]+cpu.FeatureBits(s)
			if gbit >= lo && gbit < hi {
				am := &m.Activity[s]
				am.Selected = append(am.Selected, gbit-lo)
				am.Coef = append(am.Coef, sw.Model.Coef[k])
			}
		}
	}
	// The stepwise intercept folds into the background.
	m.Background += sw.Model.Intercept
	m.MISOIntercept = m.Background
	return nil
}

// fitMISO fits the final combination (Equ. 9): measured amplitudes
// against the per-stage source values of the current model, over mixed
// programs where all clusters share the pipeline.
func (t *Trainer) fitMISO(m *Model, meas []*measurement) error {
	var feats [][]float64
	var single [][]float64
	var ys []float64
	for _, me := range meas {
		for n := range me.trace {
			c := &me.trace[n]
			fv := make([]float64, cpu.NumStages)
			sum := 0.0
			for s := cpu.Stage(0); s < cpu.NumStages; s++ {
				fv[s] = m.stageSource(s, &c.Stages[s], false)
				sum += fv[s]
			}
			feats = append(feats, fv)
			single = append(single, []float64{sum})
			ys = append(ys, me.amps[n])
		}
	}
	fit, err := stats.LinearRegression(feats, ys)
	if err != nil {
		return err
	}
	m.MISOIntercept = fit.Intercept
	for s := 0; s < cpu.NumStages; s++ {
		m.MISO[s] = fit.Coef[s]
	}
	sfit, err := stats.LinearRegression(single, ys)
	if err != nil {
		return err
	}
	m.SingleIntercept = sfit.Intercept
	m.SingleM = sfit.Coef[0]
	return nil
}
