// Package experiments reproduces every table and figure of the paper's
// evaluation (§V) and use-case (§VI) sections. Each experiment is a
// method on Env returning a printable result; cmd/emsim-bench runs them
// all and EXPERIMENTS.md records the measured outcomes next to the
// paper's. Absolute numbers differ (the substrate is a synthetic device,
// not the authors' FPGA + probe), but the qualitative shape — which model
// wins, what breaks when a feature is ablated, where crossovers fall — is
// the reproduction target.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"emsim/internal/core"
	"emsim/internal/device"
)

// Env is a lazily-trained (device, model) pair shared by the experiments,
// playing the role of the paper's measurement bench.
type Env struct {
	Dev   *device.Device
	Model *core.Model
	// Runs is the measurement-averaging count used by experiments.
	Runs int
	// Seed drives workload generation.
	Seed int64
	// Cache holds measurement artifacts shared by every retraining an
	// experiment performs (the robustness, budget and sampling studies
	// retrain repeatedly against devices the bench already measured).
	Cache *core.MeasurementCache
	// TrainWorkers is the measurement fan-out width passed to every
	// training run; 0 means GOMAXPROCS.
	TrainWorkers int
}

// EnvOptions configures NewEnv.
type EnvOptions struct {
	Device device.Options
	Train  core.TrainOptions
	Runs   int
	Seed   int64
}

// DefaultEnvOptions returns the configuration used for the recorded
// results in EXPERIMENTS.md.
func DefaultEnvOptions() EnvOptions {
	return EnvOptions{
		Device: device.DefaultOptions(),
		Train:  core.TrainOptions{},
		Runs:   10,
		Seed:   1,
	}
}

// NewEnv builds the device and trains the model.
func NewEnv(opts EnvOptions) (*Env, error) {
	if opts.Runs == 0 {
		opts.Runs = 10
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	dev, err := device.New(opts.Device)
	if err != nil {
		return nil, err
	}
	e := &Env{
		Dev:          dev,
		Runs:         opts.Runs,
		Seed:         opts.Seed,
		Cache:        core.NewMeasurementCache(),
		TrainWorkers: opts.Train.Workers,
	}
	m, err := e.train(dev, opts.Train)
	if err != nil {
		return nil, fmt.Errorf("experiments: training: %w", err)
	}
	e.Model = m
	return e, nil
}

// train runs one training campaign through the bench's shared
// measurement cache, so a retraining experiment re-measures only what
// the bench has not captured before.
func (e *Env) train(dev *device.Device, opts core.TrainOptions) (*core.Model, error) {
	opts.Cache = e.Cache
	if opts.Workers == 0 {
		opts.Workers = e.TrainWorkers
	}
	return core.Train(dev, opts)
}

// rng returns a fresh deterministic generator for one experiment, salted
// so experiments do not share streams.
func (e *Env) rng(salt int64) *rand.Rand {
	return rand.New(rand.NewSource(e.Seed*7919 + salt))
}

// score measures words on dev (or e.Dev when nil) and compares against
// the model variant.
func (e *Env) score(m *core.Model, dev *device.Device, words []uint32) (*core.Comparison, error) {
	if dev == nil {
		dev = e.Dev
	}
	return m.CompareOnDevice(dev, words, e.Runs)
}

// fmtPct renders an accuracy in the paper's percentage style.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// table renders rows of aligned columns for experiment output.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
