package experiments

import (
	"fmt"
	"sort"

	"emsim/internal/asm"
	"emsim/internal/cpu"
	"emsim/internal/isa"
	"emsim/internal/stats"
)

// TableIResult is the instruction-clustering experiment: hierarchical
// agglomerative clustering of measured per-instruction EM signatures with
// a cross-correlation distance, cut at 7 clusters (Table I).
type TableIResult struct {
	// Items are the clustered instruction labels ("add", "lw(miss)", ...).
	Items []string
	// Labels are the assigned cluster ids, parallel to Items.
	Labels []int
	// Expected are the Table I cluster ids, parallel to Items.
	Expected []isa.Cluster
	// PairAgreement is the Rand index between found and expected
	// clusterings (fraction of instruction pairs on which they agree).
	PairAgreement float64
	// NumClusters is the cut size (7, as in the paper).
	NumClusters int
}

// clusterProbe is one instruction to fingerprint.
type clusterProbe struct {
	label    string
	inst     isa.Inst
	expected isa.Cluster
	miss     bool       // measure the cache-miss variant of a load
	pre      []isa.Inst // extra setup (e.g., operand values for branches)
}

// tableIProbes returns the instruction set Table I covers: every
// non-system RV32IM mnemonic (JALR excluded: with zero operands it jumps
// to address 0), with loads measured in both hit and miss variants.
func tableIProbes() []clusterProbe {
	var probes []clusterProbe
	for _, op := range isa.AllOps() {
		if op.IsSystem() || op == isa.FENCE || op == isa.JALR {
			continue
		}
		switch {
		case op.IsLoad():
			probes = append(probes,
				clusterProbe{label: op.String() + "(hit)", inst: isa.Inst{Op: op, Rd: isa.X1, Rs1: isa.X1}, expected: isa.ClusterCache},
				clusterProbe{label: op.String() + "(miss)", inst: isa.Inst{Op: op, Rd: isa.X1, Rs1: isa.X1}, expected: isa.ClusterLoad, miss: true},
			)
		case op.IsStore():
			probes = append(probes, clusterProbe{
				label: op.String(), inst: isa.Inst{Op: op, Rs1: isa.X1, Rs2: isa.X1}, expected: isa.ClusterStore})
		case op.IsBranch():
			// Choose operands so every branch falls through (not taken),
			// keeping all six windows control-flow-identical as Table I
			// assumes "similar operands": compare 1 vs 0 in the direction
			// that fails.
			rs1, rs2 := isa.X1, isa.X2 // x1 = 1, x2 = 0 (set in pre)
			switch op {
			case isa.BGE, isa.BGEU:
				rs1, rs2 = isa.X2, isa.X1 // 0 >= 1 is false
			case isa.BNE:
				rs1, rs2 = isa.X1, isa.X1 // 1 != 1 is false
			}
			probes = append(probes, clusterProbe{
				label:    op.String(),
				inst:     isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: 8},
				expected: isa.ClusterBranch,
				pre:      []isa.Inst{isa.Addi(isa.X1, isa.Zero, 1)},
			})
		case op == isa.JAL:
			probes = append(probes, clusterProbe{
				label: op.String(), inst: isa.Jal(isa.X1, 4), expected: isa.ClusterALU})
		case op == isa.LUI:
			probes = append(probes, clusterProbe{label: op.String(), inst: isa.Lui(isa.X1, 0), expected: isa.ClusterALU})
		case op == isa.AUIPC:
			probes = append(probes, clusterProbe{label: op.String(), inst: isa.Auipc(isa.X1, 0), expected: isa.ClusterALU})
		default:
			expected := isa.StaticCluster(op)
			in := isa.Inst{Op: op, Rd: isa.X1, Rs1: isa.X1}
			if op.Format() == isa.FormatR {
				in.Rs2 = isa.X1
			}
			probes = append(probes, clusterProbe{label: op.String(), inst: in, expected: expected})
		}
	}
	return probes
}

// signature measures the EM waveform of one probe instruction embedded in
// NOPs, aligned on the cycle it enters EX.
func (e *Env) signature(p clusterProbe) ([]float64, error) {
	b := asm.NewBuilder()
	b.Nop(8)
	if p.miss {
		// A fresh line nobody has touched.
		b.Li(isa.X1, 0x50000)
		b.Nop(6)
	} else if p.inst.Op.IsLoad() || p.inst.Op.IsStore() {
		// Warm address 0 so the access hits (with a store, whose mnemonic
		// can never collide with the probe's alignment match below).
		b.I(isa.Sw(isa.X3, isa.Zero, 0))
		b.Nop(8)
	}
	if len(p.pre) > 0 {
		b.I(p.pre...)
		b.Nop(6)
	}
	b.I(p.inst)
	b.Nop(14)
	b.I(isa.Ebreak())
	words := b.MustAssemble().Words

	tr, sig, err := e.Dev.MeasureAveraged(words, e.Runs)
	if err != nil {
		return nil, err
	}
	spc := e.Dev.SamplesPerCycle()
	// Align on the probe's first active EX cycle, matching the exact
	// instruction (opcode matching alone would hit the NOPs for ADDI or
	// the warm-up access for loads).
	exAt := -1
	for i := range tr {
		st := &tr[i].Stages[cpu.EX]
		if st.Inst == p.inst && !st.Bubble && !st.Stalled && st.Seq >= 0 {
			exAt = i
			break
		}
	}
	if exAt < 2 {
		return nil, fmt.Errorf("experiments: probe %s never reached EX", p.label)
	}
	lo := (exAt - 2) * spc
	hi := lo + 14*spc
	if hi > len(sig) {
		hi = len(sig)
	}
	return sig[lo:hi], nil
}

// TableI runs the clustering experiment.
func (e *Env) TableI() (*TableIResult, error) {
	probes := tableIProbes()
	series := make([][]float64, 0, len(probes))
	minLen := -1
	for _, p := range probes {
		s, err := e.signature(p)
		if err != nil {
			return nil, err
		}
		series = append(series, s)
		if minLen < 0 || len(s) < minLen {
			minLen = len(s)
		}
	}
	for i := range series {
		series[i] = series[i][:minLen]
	}
	dist, err := stats.DistanceMatrixFromSeries(series)
	if err != nil {
		return nil, err
	}
	dg, err := stats.HierarchicalCluster(dist, stats.AverageLinkage)
	if err != nil {
		return nil, err
	}
	labels, err := dg.Cut(isa.NumClusters)
	if err != nil {
		return nil, err
	}
	res := &TableIResult{NumClusters: isa.NumClusters}
	for i, p := range probes {
		res.Items = append(res.Items, p.label)
		res.Labels = append(res.Labels, labels[i])
		res.Expected = append(res.Expected, p.expected)
	}
	res.PairAgreement = randIndex(res.Labels, res.Expected)
	return res, nil
}

// randIndex computes the Rand index between a found labeling and the
// expected clusters: the fraction of item pairs that both clusterings
// treat the same way (together or apart).
func randIndex(found []int, expected []isa.Cluster) float64 {
	n := len(found)
	if n < 2 {
		return 1
	}
	agree, total := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sameFound := found[i] == found[j]
			sameExp := expected[i] == expected[j]
			if sameFound == sameExp {
				agree++
			}
			total++
		}
	}
	return float64(agree) / float64(total)
}

func (r *TableIResult) String() string {
	// Group items by found label.
	groups := map[int][]string{}
	for i, l := range r.Labels {
		groups[l] = append(groups[l], r.Items[i])
	}
	var keys []int
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	rows := make([][]string, 0, len(keys))
	for _, k := range keys {
		sort.Strings(groups[k])
		rows = append(rows, []string{fmt.Sprintf("%d", k+1), fmt.Sprintf("%d", len(groups[k])), stringsJoin(groups[k], ", ")})
	}
	return "Table I — instruction clustering by EM signature (7 clusters, cross-correlation distance)\n" +
		table([]string{"cluster", "#", "instructions"}, rows) +
		fmt.Sprintf("pairwise agreement with Table I grouping: %s\n", fmtPct(r.PairAgreement))
}
