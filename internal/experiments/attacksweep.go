package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"time"

	"emsim/internal/leakage"
	"emsim/internal/stats"
)

// This file measures the attack-analytics sweep itself: the cost of
// producing a TVLA detection curve and a CPA key-rank curve over a
// campaign of N traces, comparing the buffered-recompute formulation
// (keep every trace, recompute the statistic from scratch at each sweep
// point — O(N²) work, O(N·samples) resident memory) against the
// streaming accumulators (fold each trace once, snapshot at each sweep
// point — O(N) work, O(guesses·samples) state). It backs the
// "attack-sweep performance" section of EXPERIMENTS.md. Traces are
// synthetic (a planted first-order leak under Gaussian noise): the study
// isolates analytics cost, not simulation cost.

// Attack-sweep study geometry: enough columns and candidates for the
// sweep cost to dominate bookkeeping, small enough that the largest rung
// stays in seconds.
const (
	attackSweepWidth   = 64 // sample points per trace
	attackSweepGuesses = 64 // key candidates
	attackSweepStep    = 64 // sweep-point spacing (traces)
)

// AttackSweepPoint is one rung of the campaign-size ladder.
type AttackSweepPoint struct {
	Traces         int
	BufferedTime   time.Duration
	StreamingTime  time.Duration
	BufferedBytes  uint64 // heap allocated during the buffered sweep
	StreamingBytes uint64 // heap allocated during the streaming sweep
	Speedup        float64
	MemRatio       float64
}

// AttackSweepResult is the study outcome.
type AttackSweepResult struct {
	Points []AttackSweepPoint
	// Match reports whether both formulations agreed on the final
	// statistic (best guess and TVLA verdict) at every rung — the
	// streaming path's equivalence contract.
	Match bool
}

// attackSweepData builds the synthetic campaign: n TVLA pairs and n CPA
// traces with a leak planted at one column for one candidate, everything
// else Gaussian noise.
func attackSweepData(n int) (fixed, random, traces, hyp [][]float64) {
	rng := rand.New(rand.NewSource(7))
	leakCol, leakGuess := attackSweepWidth/3, 5
	fixed = make([][]float64, n)
	random = make([][]float64, n)
	traces = make([][]float64, n)
	hyp = make([][]float64, n)
	for i := 0; i < n; i++ {
		f := make([]float64, attackSweepWidth)
		r := make([]float64, attackSweepWidth)
		tr := make([]float64, attackSweepWidth)
		h := make([]float64, attackSweepGuesses)
		for c := range f {
			f[c] = rng.NormFloat64()
			r[c] = rng.NormFloat64()
			tr[c] = rng.NormFloat64()
		}
		f[leakCol] += 0.8 // fixed-group bias: the TVLA leak
		for g := range h {
			h[g] = float64(rng.Intn(9)) // Hamming-weight-like predictions
		}
		tr[leakCol] += 0.5 * h[leakGuess] // the CPA leak
		fixed[i], random[i], traces[i], hyp[i] = f, r, tr, h
	}
	return fixed, random, traces, hyp
}

// heapDelta runs fn and returns its wall time and the heap bytes it
// allocated (TotalAlloc delta; GC'd first so rungs don't bleed into each
// other).
func heapDelta(fn func() error) (time.Duration, uint64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed, after.TotalAlloc - before.TotalAlloc, err
}

// bufferedAttackSweep is the pre-streaming formulation kept as the
// study's baseline: every incoming trace is retained (copied into the
// growing campaign buffer, as the old evaluator did) and each sweep
// point recomputes the full statistic over the prefix.
func bufferedAttackSweep(fixed, random, traces, hyp [][]float64) (float64, int, error) {
	n := len(traces)
	bufF := make([][]float64, 0, n)
	bufR := make([][]float64, 0, n)
	bufT := make([][]float64, 0, n)
	bufH := make([][]float64, 0, n)
	maxAbs, best := 0.0, 0
	for i := 0; i < n; i++ {
		bufF = append(bufF, append([]float64(nil), fixed[i]...))
		bufR = append(bufR, append([]float64(nil), random[i]...))
		bufT = append(bufT, append([]float64(nil), traces[i]...))
		bufH = append(bufH, append([]float64(nil), hyp[i]...))
		if (i+1)%attackSweepStep != 0 {
			continue
		}
		tt, err := stats.TVLATrace(bufF, bufR)
		if err != nil {
			return 0, 0, err
		}
		maxAbs = 0
		for _, v := range tt {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		cr, err := leakage.CPA(bufT, bufH)
		if err != nil {
			return 0, 0, err
		}
		best = cr.BestGuess
	}
	return maxAbs, best, nil
}

// streamingAttackSweep folds each trace into the accumulators once and
// snapshots at the same sweep points; no trace survives its iteration.
func streamingAttackSweep(fixed, random, traces, hyp [][]float64) (float64, int, error) {
	n := len(traces)
	tv := leakage.NewTVLAStream()
	cpa := leakage.NewCPAStream(attackSweepGuesses, 0, 0)
	maxAbs, best := 0.0, 0
	for i := 0; i < n; i++ {
		if err := tv.AddFixed(fixed[i]); err != nil {
			return 0, 0, err
		}
		if err := tv.AddRandom(random[i]); err != nil {
			return 0, 0, err
		}
		if err := cpa.Add(traces[i], hyp[i]); err != nil {
			return 0, 0, err
		}
		if (i+1)%attackSweepStep != 0 {
			continue
		}
		var err error
		maxAbs, err = tv.MaxAbsT()
		if err != nil {
			return 0, 0, err
		}
		cr, err := cpa.Snapshot()
		if err != nil {
			return 0, 0, err
		}
		best = cr.BestGuess
	}
	return maxAbs, best, nil
}

// AttackSweepStudy runs both formulations at each campaign size and
// reports wall time, allocation volume, and the final-statistic
// equivalence. With no explicit sizes it runs the 256/1024/4096 ladder.
func AttackSweepStudy(sizes ...int) (*AttackSweepResult, error) {
	if len(sizes) == 0 {
		sizes = []int{256, 1024, 4096}
	}
	res := &AttackSweepResult{Match: true}
	for _, n := range sizes {
		fixed, random, traces, hyp := attackSweepData(n)
		var bT, sT float64
		var bG, sG int
		bufTime, bufBytes, err := heapDelta(func() error {
			var e error
			bT, bG, e = bufferedAttackSweep(fixed, random, traces, hyp)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: buffered sweep at %d traces: %w", n, err)
		}
		strTime, strBytes, err := heapDelta(func() error {
			var e error
			sT, sG, e = streamingAttackSweep(fixed, random, traces, hyp)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: streaming sweep at %d traces: %w", n, err)
		}
		if bG != sG || !stats.ApproxEqual(bT, sT, 1e-6) {
			res.Match = false
		}
		pt := AttackSweepPoint{
			Traces:         n,
			BufferedTime:   bufTime,
			StreamingTime:  strTime,
			BufferedBytes:  bufBytes,
			StreamingBytes: strBytes,
		}
		if strTime > 0 {
			pt.Speedup = float64(bufTime) / float64(strTime)
		}
		if strBytes > 0 {
			pt.MemRatio = float64(bufBytes) / float64(strBytes)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func (r *AttackSweepResult) String() string {
	rows := make([][]string, len(r.Points))
	for i, pt := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%d", pt.Traces),
			pt.BufferedTime.Round(time.Microsecond).String(),
			pt.StreamingTime.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f", float64(pt.BufferedBytes)/(1<<20)),
			fmt.Sprintf("%.2f", float64(pt.StreamingBytes)/(1<<20)),
			fmt.Sprintf("%.1fx", pt.Speedup),
			fmt.Sprintf("%.0fx", pt.MemRatio),
		}
	}
	same := "yes"
	if !r.Match {
		same = "NO — equivalence contract violated"
	}
	return "attack-sweep analytics (TVLA + CPA curves, buffered recompute vs streaming accumulators)\n" +
		table([]string{"traces", "buffered", "streaming", "buf-MB", "str-MB", "speedup", "mem"}, rows) +
		fmt.Sprintf("final statistics identical: %s\n", same)
}
