package experiments

import (
	"fmt"
	"math"
	"strings"

	"emsim/internal/asm"
	"emsim/internal/core"
	"emsim/internal/isa"
	"emsim/internal/signal"
	"emsim/internal/stats"
)

// nopSandwich builds NOP×pre → insts → NOP×post → EBREAK.
func nopSandwich(pre, post int, insts ...isa.Inst) []uint32 {
	b := asm.NewBuilder()
	b.Nop(pre)
	b.I(insts...)
	b.Nop(post)
	b.I(isa.Ebreak())
	return b.MustAssemble().Words
}

// ----------------------------------------------------------------------
// Figure 1: reconstruction kernel comparison.

// KernelScore is one kernel family's fit quality.
type KernelScore struct {
	Kind  signal.KernelKind
	NCC   float64 // waveform correlation of reconstruction vs measurement
	RMSE  float64
	Theta float64
	T0    float64
}

// Figure1Result compares rect / exp / sin-exp reconstructions of a
// measured signal (Figure 1).
type Figure1Result struct {
	Scores []KernelScore
	Best   signal.KernelKind
}

// Figure1 measures a mixed program and reconstructs it with each kernel
// family: the per-cycle amplitudes are extracted and re-rendered with the
// fitted kernel, and the rendering is scored against the measurement.
func (e *Env) Figure1() (*Figure1Result, error) {
	words, err := core.MixedProgram(e.rng(1), 200)
	if err != nil {
		return nil, err
	}
	_, measured, err := e.Dev.MeasureAveraged(words, e.Runs)
	if err != nil {
		return nil, err
	}
	// Steady all-NOP capture for kernel fitting.
	nop := nopSandwich(64, 0)
	_, nopSig, err := e.Dev.MeasureAveraged(nop, e.Runs)
	if err != nil {
		return nil, err
	}
	spc := e.Dev.SamplesPerCycle()
	steady := nopSig[8*spc : len(nopSig)-8*spc]

	res := &Figure1Result{}
	bestNCC := -2.0
	for _, kind := range []signal.KernelKind{signal.KernelRect, signal.KernelExp, signal.KernelSinExp} {
		k, _, err := core.FitKernel(steady, spc, kind)
		if err != nil {
			return nil, err
		}
		amps, err := core.ExtractAmplitudes(measured, spc, k)
		if err != nil {
			return nil, err
		}
		recon, err := signal.Reconstruct(amps, spc, k)
		if err != nil {
			return nil, err
		}
		ncc, err := signal.NCC(measured, recon)
		if err != nil {
			return nil, err
		}
		rmse, err := signal.RMSE(signal.NormalizeMeanAbs(measured), signal.NormalizeMeanAbs(recon))
		if err != nil {
			return nil, err
		}
		res.Scores = append(res.Scores, KernelScore{Kind: kind, NCC: ncc, RMSE: rmse, Theta: k.Theta, T0: k.Period})
		if ncc > bestNCC {
			bestNCC, res.Best = ncc, kind
		}
	}
	return res, nil
}

func (r *Figure1Result) String() string {
	rows := make([][]string, 0, len(r.Scores))
	for _, s := range r.Scores {
		rows = append(rows, []string{
			s.Kind.String(), fmt.Sprintf("%.4f", s.NCC), fmt.Sprintf("%.4f", s.RMSE),
			fmt.Sprintf("%.2f", s.Theta), fmt.Sprintf("%.3f", s.T0),
		})
	}
	return "Figure 1 — signal reconstruction by kernel family\n" +
		table([]string{"kernel", "NCC", "RMSE", "theta", "T0"}, rows) +
		fmt.Sprintf("best: %v (paper: sin·exp explains the received signal best)\n", r.Best)
}

// ----------------------------------------------------------------------
// Figures 2-7 share this shape: a targeted sequence scored under the full
// model and under one ablation.

// AblationCompare is a full-vs-ablated comparison on one targeted
// sequence. The paper's Figures 2–7 show the ablated model's *amplitude*
// deviating from the measurement, so besides the (shape-oriented)
// per-cycle correlation this records the normalized RMSE and the
// correlation of the per-cycle amplitude series, which expose amplitude
// errors the scale-invariant metric forgives.
type AblationCompare struct {
	Name            string
	Sequence        string
	FullAccuracy    float64
	AblatedAccuracy float64
	FullRMSE        float64
	AblatedRMSE     float64
	FullAmpCorr     float64
	AblatedAmpCorr  float64
	AblationName    string
	PerCycleFull    []float64
	PerCycleAblated []float64
}

func (r *AblationCompare) String() string {
	return fmt.Sprintf("%s — %s\n"+
		"  full model:   accuracy %s, norm. RMSE %.3f, amplitude corr %.3f\n"+
		"  %-13s accuracy %s, norm. RMSE %.3f, amplitude corr %.3f (RMSE ×%.1f)\n",
		r.Name, r.Sequence,
		fmtPct(r.FullAccuracy), r.FullRMSE, r.FullAmpCorr,
		r.AblationName+":", fmtPct(r.AblatedAccuracy), r.AblatedRMSE, r.AblatedAmpCorr,
		safeRatio(r.AblatedRMSE, r.FullRMSE))
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

func worstCycle(per []float64) int {
	worst, at := 2.0, -1
	for i, v := range per {
		if v < worst {
			worst, at = v, i
		}
	}
	return at
}

// ampCorrOf correlates the per-cycle amplitude series of the measured and
// simulated signals of a comparison.
func (e *Env) ampCorrOf(cmp *core.Comparison) (float64, error) {
	spc := e.Dev.SamplesPerCycle()
	ma, err := core.ExtractAmplitudes(cmp.Measured, spc, e.Model.Kernel)
	if err != nil {
		return 0, err
	}
	sa, err := core.ExtractAmplitudes(cmp.Simulated, spc, e.Model.Kernel)
	if err != nil {
		return 0, err
	}
	return stats.Pearson(ma, sa)
}

func (e *Env) compareAblation(name, seqDesc string, words []uint32, ablationName string, ablated core.ModelOptions) (*AblationCompare, error) {
	full, err := e.score(e.Model, nil, words)
	if err != nil {
		return nil, err
	}
	abl, err := e.score(e.Model.WithOptions(ablated), nil, words)
	if err != nil {
		return nil, err
	}
	fc, err := e.ampCorrOf(full)
	if err != nil {
		return nil, err
	}
	ac, err := e.ampCorrOf(abl)
	if err != nil {
		return nil, err
	}
	return &AblationCompare{
		Name:            name,
		Sequence:        seqDesc,
		FullAccuracy:    full.Accuracy,
		AblatedAccuracy: abl.Accuracy,
		FullRMSE:        full.RMSE,
		AblatedRMSE:     abl.RMSE,
		FullAmpCorr:     fc,
		AblatedAmpCorr:  ac,
		AblationName:    ablationName,
		PerCycleFull:    full.PerCycle,
		PerCycleAblated: abl.PerCycle,
	}, nil
}

// Figure2 reproduces the per-stage-sources experiment: an ADD progressing
// through the pipeline amid NOPs, modeled with independent stage sources
// vs a single averaged source.
func (e *Env) Figure2() (*AblationCompare, error) {
	var seq []isa.Inst
	for i := 0; i < 8; i++ {
		seq = append(seq, isa.Add(isa.T0, isa.T1, isa.T2))
		for n := 0; n < 7; n++ {
			seq = append(seq, isa.Nop())
		}
	}
	words := nopSandwich(8, 8, seq...)
	opts := core.FullModel()
	opts.PerStageSources = false
	return e.compareAblation("Figure 2", "NOP → ADD → NOP (per-stage vs single source)",
		words, "single source", opts)
}

// Figure3 reproduces the activity-factor experiment: random-operand
// instructions, LR-fitted per-bit weights vs the equal-weight Equ. 7.
func (e *Env) Figure3() (*AblationCompare, error) {
	rng := e.rng(3)
	b := asm.NewBuilder()
	b.Nop(8)
	for i := 0; i < 24; i++ {
		b.Li(isa.T1, int32(rng.Uint32()))
		b.Li(isa.T2, int32(rng.Uint32()))
		b.Nop(6)
		b.I(isa.Xor(isa.T0, isa.T1, isa.T2))
		b.Nop(6)
	}
	b.I(isa.Ebreak())
	words := b.MustAssemble().Words
	opts := core.FullModel()
	opts.Activity = core.ActivityAverage
	return e.compareAblation("Figure 3", "random-operand XOR (LR activity factor vs averaging)",
		words, "average α", opts)
}

// Figure4Result shows MISO superposition: the signal of ADD and SHIFT in
// flight together, versus each in isolation.
type Figure4Result struct {
	AccuracyCombined float64
	// SuperpositionError is the RMS difference between the measured
	// combined amplitude sequence and the non-interacting sum of the
	// isolated ones (which ignores superposition coefficients) — nonzero,
	// which is exactly why M must be fitted (§III-C).
	SuperpositionError float64
}

// Figure4 measures ADD and SHIFT in isolation and combined.
func (e *Env) Figure4() (*Figure4Result, error) {
	spc := e.Dev.SamplesPerCycle()
	extract := func(words []uint32) ([]float64, error) {
		_, sig, err := e.Dev.MeasureAveraged(words, e.Runs)
		if err != nil {
			return nil, err
		}
		return core.ExtractAmplitudes(sig, spc, e.Model.Kernel)
	}
	add := isa.Add(isa.T0, isa.T1, isa.T2)
	shift := isa.Slli(isa.T3, isa.T4, 3)

	aIso, err := extract(nopSandwich(8, 10, add))
	if err != nil {
		return nil, err
	}
	sIso, err := extract(nopSandwich(9, 9, shift)) // shifted by one slot
	if err != nil {
		return nil, err
	}
	both, err := extract(nopSandwich(8, 9, add, shift))
	if err != nil {
		return nil, err
	}
	nop, err := extract(nopSandwich(8, 11))
	if err != nil {
		return nil, err
	}
	// Non-interacting estimate: iso(add) + iso(shift) − baseline.
	n := len(both)
	est := make([]float64, n)
	for i := 0; i < n; i++ {
		est[i] = at(aIso, i) + at(sIso, i) - at(nop, i)
	}
	se, err := signal.RMSE(both, est)
	if err != nil {
		return nil, err
	}
	cmp, err := e.score(e.Model, nil, nopSandwich(8, 9, add, shift))
	if err != nil {
		return nil, err
	}
	return &Figure4Result{AccuracyCombined: cmp.Accuracy, SuperpositionError: se}, nil
}

func at(xs []float64, i int) float64 {
	if i < len(xs) {
		return xs[i]
	}
	return 0
}

func (r *Figure4Result) String() string {
	return fmt.Sprintf("Figure 4 — MISO superposition (NOP, ADD, SHIFT, NOP)\n"+
		"  fitted-M model accuracy on the combined sequence: %s\n"+
		"  naive add-the-isolated-signals error (RMS):       %.4f (why M must be fitted)\n",
		fmtPct(r.AccuracyCombined), r.SuperpositionError)
}

// Figure5 reproduces the stall experiment: a long-latency MUL freezes the
// front end; the model with and without stall modeling.
func (e *Env) Figure5() (*AblationCompare, error) {
	var seq []isa.Inst
	seq = append(seq, isa.Li(isa.T1, 0x7731)...)
	seq = append(seq, isa.Li(isa.T2, 0x1F2F)...)
	for i := 0; i < 6; i++ {
		seq = append(seq, isa.Nop())
	}
	for i := 0; i < 6; i++ {
		seq = append(seq, isa.Mul(isa.T0, isa.T1, isa.T2))
		for n := 0; n < 8; n++ {
			seq = append(seq, isa.Nop())
		}
		seq = append(seq, isa.Div(isa.T3, isa.T1, isa.T2))
		for n := 0; n < 10; n++ {
			seq = append(seq, isa.Nop())
		}
	}
	words := nopSandwich(4, 4, seq...)
	opts := core.FullModel()
	opts.ModelStalls = false
	return e.compareAblation("Figure 5", "MUL/DIV stalls (with vs without stall modeling)",
		words, "no stalls", opts)
}

// Figure6 reproduces the cache experiment: hit and miss loads, the model
// with and without cache modeling.
func (e *Env) Figure6() (*AblationCompare, error) {
	b := asm.NewBuilder()
	b.Nop(6)
	b.Li(isa.S0, 0x4000)
	b.Li(isa.S1, 0x40000)
	b.I(isa.Lw(isa.T0, isa.S0, 0)) // warm
	b.Nop(6)
	for i := 0; i < 8; i++ {
		b.I(isa.Lw(isa.T1, isa.S1, int32(64*i))) // miss
		b.Nop(6)
		b.I(isa.Lw(isa.T2, isa.S0, 0)) // hit
		b.Nop(6)
	}
	b.I(isa.Ebreak())
	words := b.MustAssemble().Words
	opts := core.FullModel()
	opts.ModelCache = false
	return e.compareAblation("Figure 6", "LD hit vs miss (with vs without cache modeling)",
		words, "no cache", opts)
}

// Figure7 reproduces the misprediction experiment: taken branches flushing
// two slots, the model with and without flush modeling.
func (e *Env) Figure7() (*AblationCompare, error) {
	b := asm.NewBuilder()
	b.Nop(8)
	for i := 0; i < 10; i++ {
		// A forward always-taken branch: mispredicted until the BTB and
		// direction predictor warm up, then correctly predicted — both
		// regimes appear in the trace, as in Figure 7's left/right halves.
		b.I(isa.Beq(isa.Zero, isa.Zero, 12))
		b.I(isa.Addi(isa.T0, isa.T0, 1)) // flushed wrong-path work
		b.I(isa.Addi(isa.T1, isa.T1, 1))
		b.Nop(6)
	}
	b.I(isa.Ebreak())
	words := b.MustAssemble().Words
	opts := core.FullModel()
	opts.ModelFlush = false
	return e.compareAblation("Figure 7", "branch misprediction flushes (with vs without bubble modeling)",
		words, "no flush", opts)
}

// ----------------------------------------------------------------------

// stringsJoin is a tiny helper used by several results.
func stringsJoin(parts []string, sep string) string { return strings.Join(parts, sep) }
