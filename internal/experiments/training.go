package experiments

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"time"

	"emsim/internal/core"
	"emsim/internal/device"
)

// This file measures the training pipeline itself: per-phase wall-clock
// at a ladder of worker counts, the parallel speedup, and a check that
// the determinism contract holds (every worker count fits the identical
// model). It backs the "training performance" row of EXPERIMENTS.md.

// TrainingPipelinePoint is one rung of the worker ladder.
type TrainingPipelinePoint struct {
	Workers int
	Phases  [core.NumPhases]time.Duration
	Total   time.Duration
}

// TrainingPipelineResult is the study outcome.
type TrainingPipelineResult struct {
	Points []TrainingPipelinePoint
	// Speedup is sequential total over the best parallel total.
	Speedup float64
	// Identical reports whether every rung serialized the same model
	// byte-for-byte (the Trainer's determinism contract).
	Identical bool
}

// TrainingPipelineStudy trains the same campaign at each worker count
// against identically configured fresh devices with cold caches, so the
// timings measure the fan-out and nothing else. With no explicit counts
// it compares sequential (1) against GOMAXPROCS.
func TrainingPipelineStudy(train core.TrainOptions, workerCounts ...int) (*TrainingPipelineResult, error) {
	if len(workerCounts) == 0 {
		// Exercise the pooled path even on a single-core host (where it
		// cannot win wall-clock but must still fit the identical model).
		par := runtime.GOMAXPROCS(0)
		if par < 2 {
			par = 2
		}
		workerCounts = []int{1, par}
	}
	res := &TrainingPipelineResult{Identical: true}
	var ref []byte
	for _, w := range workerCounts {
		opts := train
		opts.Workers = w
		opts.Cache = nil
		tr, err := core.NewTrainer(device.MustNew(device.DefaultOptions()), opts)
		if err != nil {
			return nil, err
		}
		m, err := tr.Run(context.Background())
		if err != nil {
			return nil, fmt.Errorf("experiments: training with %d workers: %w", w, err)
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			return nil, err
		}
		if ref == nil {
			ref = buf.Bytes()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			res.Identical = false
		}
		pt := TrainingPipelinePoint{Workers: w, Phases: tr.PhaseTimings()}
		for _, d := range pt.Phases {
			pt.Total += d
		}
		res.Points = append(res.Points, pt)
	}
	best := res.Points[0].Total
	for _, pt := range res.Points[1:] {
		if pt.Total < best {
			best = pt.Total
		}
	}
	if best > 0 {
		res.Speedup = float64(res.Points[0].Total) / float64(best)
	}
	return res, nil
}

func (r *TrainingPipelineResult) String() string {
	rows := make([][]string, len(r.Points))
	for i, pt := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%d", pt.Workers),
			pt.Phases[core.PhaseKernel].Round(time.Millisecond).String(),
			pt.Phases[core.PhaseBaseline].Round(time.Millisecond).String(),
			pt.Phases[core.PhaseActivity].Round(time.Millisecond).String(),
			pt.Phases[core.PhaseMISO].Round(time.Millisecond).String(),
			pt.Total.Round(time.Millisecond).String(),
		}
	}
	same := "yes"
	if !r.Identical {
		same = "NO — determinism contract violated"
	}
	return "training-pipeline performance (staged Trainer, measurement fan-out)\n" +
		table([]string{"workers", "kernel-fit", "baseline", "activity", "miso", "total"}, rows) +
		fmt.Sprintf("speedup %.2fx over sequential; models byte-identical: %s\n", r.Speedup, same)
}
