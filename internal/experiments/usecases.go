package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"emsim/internal/aes"
	"emsim/internal/core"
	"emsim/internal/cpu"
	"emsim/internal/device"
	"emsim/internal/isa"
	"emsim/internal/leakage"
	"emsim/internal/stats"
)

// ----------------------------------------------------------------------
// Figure 10: TVLA on AES-128, measured vs simulated.

// Figure10Result compares the fixed-vs-random TVLA assessment of AES-128
// computed from real measurements and from simulated signals (§VI-A).
type Figure10Result struct {
	RealMaxT, SimMaxT             float64
	RealLeakPoints, SimLeakPoints int
	// ProfileCorrelation correlates the |t| profiles of the two
	// assessments (coarse 64-segment envelopes) — the paper's claim is
	// that the simulated TVLA "follows the same pattern" as the real one.
	ProfileCorrelation float64
	TracesPerGroup     int
}

// Figure10 runs the TVLA protocol with a device-backed source (noisy
// captures) and a model-backed source (simulated signals plus the same
// measurement-noise level).
func (e *Env) Figure10(tracesPerGroup int) (*Figure10Result, error) {
	if tracesPerGroup < 2 {
		tracesPerGroup = 40
	}
	var key [16]byte
	copy(key[:], []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c})
	var fixed [16]byte
	copy(fixed[:], []byte("emsim-fixed-pt!!"))

	build := func(input [16]byte) ([]uint32, error) {
		prog, err := aes.BuildProgram(key, input)
		if err != nil {
			return nil, err
		}
		return prog.Words, nil
	}
	realSrc := leakage.TraceSource(e.Dev.CaptureSource(build))
	// One streaming Session serves the whole simulated campaign: every
	// AES trace reuses the same core, amplitude path and signal buffer.
	sess, err := core.NewSession(e.Model, e.Dev.Options().CPU)
	if err != nil {
		return nil, err
	}
	noise := rand.New(rand.NewSource(e.Seed + 4242))
	noiseStd := e.Dev.Options().NoiseStd
	simSrc := leakage.SimSource(sess, build, func() float64 {
		return noiseStd * noise.NormFloat64()
	})

	real, err := leakage.TVLA(realSrc, fixed, e.rng(1000), tracesPerGroup)
	if err != nil {
		return nil, fmt.Errorf("real TVLA: %w", err)
	}
	sim, err := leakage.TVLA(simSrc, fixed, e.rng(1001), tracesPerGroup)
	if err != nil {
		return nil, fmt.Errorf("simulated TVLA: %w", err)
	}
	corr, err := tProfileCorrelation(real.T, sim.T, 64)
	if err != nil {
		return nil, err
	}
	return &Figure10Result{
		RealMaxT:           real.MaxAbsT,
		SimMaxT:            sim.MaxAbsT,
		RealLeakPoints:     len(real.LeakyPoints),
		SimLeakPoints:      len(sim.LeakyPoints),
		ProfileCorrelation: corr,
		TracesPerGroup:     tracesPerGroup,
	}, nil
}

// tProfileCorrelation folds two |t| traces into `segments` coarse bins
// and correlates them (traces may differ slightly in length).
func tProfileCorrelation(a, b []float64, segments int) (float64, error) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n < segments {
		segments = n
	}
	fold := func(t []float64) []float64 {
		out := make([]float64, segments)
		for s := 0; s < segments; s++ {
			lo, hi := s*n/segments, (s+1)*n/segments
			m := 0.0
			for i := lo; i < hi; i++ {
				m += math.Abs(t[i])
			}
			if hi > lo {
				out[s] = m / float64(hi-lo)
			}
		}
		return out
	}
	return stats.Pearson(fold(a[:n]), fold(b[:n]))
}

func (r *Figure10Result) String() string {
	return fmt.Sprintf("Figure 10 / §VI-A — TVLA of AES-128, measured vs simulated (%d traces/group)\n"+
		"  real:      max|t| %.1f, %d leaky points\n"+
		"  simulated: max|t| %.1f, %d leaky points\n"+
		"  |t| profile correlation: %.3f (paper: simulated TVLA follows the real pattern)\n",
		r.TracesPerGroup, r.RealMaxT, r.RealLeakPoints, r.SimMaxT, r.SimLeakPoints, r.ProfileCorrelation)
}

// ----------------------------------------------------------------------
// Table II: SAVAT, measured vs simulated.

// TableIIResult holds both SAVAT matrices and their agreement.
type TableIIResult struct {
	Real, Sim   [leakage.NumSavatInsts][leakage.NumSavatInsts]float64
	Correlation float64 // corr of off-diagonal entries between R and S
}

// TableII computes the 6×6 SAVAT matrix from device measurements and from
// model simulations.
func (e *Env) TableII() (*TableIIResult, error) {
	const perHalf, periods = 8, 16
	spc := e.Dev.SamplesPerCycle()
	runReal := func(words []uint32) ([]float64, int, error) {
		tr, sig, err := e.Dev.MeasureAveraged(words, e.Runs)
		if err != nil {
			return nil, 0, err
		}
		return sig, len(tr), nil
	}
	// All 36 simulated microbenchmarks stream through one reusable
	// Session instead of allocating a core and trace per cell.
	sess, err := core.NewSession(e.Model, e.Dev.Options().CPU)
	if err != nil {
		return nil, err
	}
	runSim := func(words []uint32) ([]float64, int, error) {
		sig, err := sess.SimulateProgram(words)
		if err != nil {
			return nil, 0, err
		}
		return sig, sess.Cycles(), nil
	}
	real, err := leakage.SavatMatrix(runReal, spc, perHalf, periods)
	if err != nil {
		return nil, err
	}
	sim, err := leakage.SavatMatrix(runSim, spc, perHalf, periods)
	if err != nil {
		return nil, err
	}
	var rs, ss []float64
	for i := 0; i < leakage.NumSavatInsts; i++ {
		for j := 0; j < leakage.NumSavatInsts; j++ {
			if i == j {
				continue
			}
			rs = append(rs, real[i][j])
			ss = append(ss, sim[i][j])
		}
	}
	corr, err := stats.Pearson(rs, ss)
	if err != nil {
		return nil, err
	}
	return &TableIIResult{Real: real, Sim: sim, Correlation: corr}, nil
}

func (r *TableIIResult) String() string {
	header := []string{"A \\ B"}
	for b := leakage.SavatInst(0); b < leakage.NumSavatInsts; b++ {
		header = append(header, b.String()+"(R)", b.String()+"(S)")
	}
	rows := make([][]string, leakage.NumSavatInsts)
	for a := leakage.SavatInst(0); a < leakage.NumSavatInsts; a++ {
		row := []string{a.String()}
		for b := leakage.SavatInst(0); b < leakage.NumSavatInsts; b++ {
			row = append(row, fmt.Sprintf("%.3f", r.Real[a][b]), fmt.Sprintf("%.3f", r.Sim[a][b]))
		}
		rows[a] = row
	}
	return "Table II — SAVAT, real (R) vs simulated (S)\n" +
		table(header, rows) +
		fmt.Sprintf("off-diagonal correlation(R, S) = %.3f (paper: simulations highly match measurements)\n", r.Correlation)
}

// ----------------------------------------------------------------------
// Figure 11: hardware debugging via reference-model mismatch.

// Figure11Result is the defective-multiplier detection experiment. The
// detection statistic is the per-cycle *amplitude* deviation between the
// measured signal and the reference simulation — the quantity Figure 11
// plots ("the amplitude of the measured signal in the third cycle is
// significantly lower than in the simulation").
type Figure11Result struct {
	// HealthyAccuracy/BuggyAccuracy score the reference simulation
	// against the healthy and the defective chip.
	HealthyAccuracy, BuggyAccuracy float64
	// BuggyMaxDev is the peak golden-contrast deficit (suspect minus
	// known-good); HealthyMaxDev is the off-MUL noise floor of that
	// contrast. The alarm fires when the peak clears 3× the floor at a
	// MUL execute cycle.
	HealthyMaxDev, BuggyMaxDev float64
	// DefectDetected reports whether the deviation peaks at a MUL execute
	// cycle AND clearly exceeds the healthy chip's level.
	DefectDetected bool
	// WorstCycle is where the deviation peaks; MulExecuteCycles lists the
	// MUL's EX cycles for reference.
	WorstCycle       int
	MulExecuteCycles []int
}

// Figure11 simulates the intended design as the "expected" reference and
// compares it against measurements from a healthy chip and from one with
// the defective multiplier (low-byte-only operands).
func (e *Env) Figure11() (*Figure11Result, error) {
	var seq []isa.Inst
	// Full-width operands, like the random operands the model trained on:
	// the defective chip truncates them internally.
	seq = append(seq, isa.Li(isa.T1, -0x12345678)...)
	seq = append(seq, isa.Li(isa.T2, -0x00C0FFEE)...)
	for i := 0; i < 6; i++ {
		seq = append(seq, isa.Nop())
	}
	for i := 0; i < 4; i++ {
		seq = append(seq, isa.Mul(isa.T0, isa.T1, isa.T2))
		for n := 0; n < 8; n++ {
			seq = append(seq, isa.Nop())
		}
	}
	words := nopSandwich(4, 4, seq...)

	healthy, err := e.score(e.Model, e.Dev, words)
	if err != nil {
		return nil, err
	}
	opts := e.Dev.Options()
	opts.CPU.BuggyMul = true
	opts.NoiseSeed += 31
	buggyDev, err := device.New(opts)
	if err != nil {
		return nil, err
	}
	buggy, err := e.score(e.Model, buggyDev, words)
	if err != nil {
		return nil, err
	}

	// Locate the MUL execute cycles in the reference trace.
	cfg := e.Dev.Options().CPU
	cfg.BuggyMul = false
	c := cpu.MustNew(cfg)
	tr, err := c.RunProgram(words)
	if err != nil {
		return nil, err
	}
	var mulEx []int
	for i := range tr {
		st := &tr[i].Stages[cpu.EX]
		if st.Op == isa.MUL && !st.Bubble && !st.Stalled {
			mulEx = append(mulEx, i)
		}
	}
	// Detection statistic: per-cycle amplitude *deficit* relative to the
	// reference — a defect that removes switching makes the measured
	// amplitude "significantly lower than that of in the simulation"
	// (Figure 11). Any model-fitting bias affects the healthy instance the
	// same way, so the suspect chip's deficit profile is contrasted
	// against a known-good instance's (the golden-die variant of the
	// paper's reference-model methodology).
	hDef, err := e.deficitSeries(healthy)
	if err != nil {
		return nil, err
	}
	bDef, err := e.deficitSeries(buggy)
	if err != nil {
		return nil, err
	}
	n := len(bDef)
	if len(hDef) < n {
		n = len(hDef)
	}
	contrast := make([]float64, n)
	for i := range contrast {
		contrast[i] = bDef[i] - hDef[i]
	}
	worst, worstVal := 0, 0.0
	for i, v := range contrast {
		if v > worstVal {
			worst, worstVal = i, v
		}
	}
	// Noise floor: mean |contrast| away from any MUL execute cycle.
	var off []float64
	for i, v := range contrast {
		nearMul := false
		for _, m := range mulEx {
			if absInt(i-m) <= 1 {
				nearMul = true
			}
		}
		if !nearMul {
			off = append(off, math.Abs(v))
		}
	}
	floor := stats.Mean(off)
	atMul := false
	for _, m := range mulEx {
		if absInt(worst-m) <= 1 {
			atMul = true
		}
	}
	return &Figure11Result{
		HealthyAccuracy:  healthy.Accuracy,
		BuggyAccuracy:    buggy.Accuracy,
		HealthyMaxDev:    floor,
		BuggyMaxDev:      worstVal,
		DefectDetected:   atMul && worstVal > 3*floor,
		WorstCycle:       worst,
		MulExecuteCycles: mulEx,
	}, nil
}

// deficitSeries returns the per-cycle amplitude deficit of the measurement
// below the reference simulation, with the pipeline fill/drain transients
// zeroed (amplitude extraction is least reliable there).
func (e *Env) deficitSeries(cmp *core.Comparison) ([]float64, error) {
	spc := e.Dev.SamplesPerCycle()
	ma, err := core.ExtractAmplitudes(cmp.Measured, spc, e.Model.Kernel)
	if err != nil {
		return nil, err
	}
	sa, err := core.ExtractAmplitudes(cmp.Simulated, spc, e.Model.Kernel)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ma))
	lo, hi := 4, len(ma)-4
	if lo >= hi {
		lo, hi = 0, len(ma)
	}
	for i := lo; i < hi; i++ {
		out[i] = sa[i] - ma[i]
	}
	return out, nil
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (r *Figure11Result) String() string {
	verdict := "DEFECT LOCALIZED at a MUL execute cycle"
	if !r.DefectDetected {
		verdict = "defect NOT localized"
	}
	return fmt.Sprintf("Figure 11 / §VI-B — hardware debugging by reference-model mismatch\n"+
		"  healthy chip vs reference: accuracy %s, max amplitude deficit %.3f (no alarm)\n"+
		"  buggy multiplier chip:     accuracy %s, max amplitude deficit %.3f at cycle %d\n"+
		"  MUL EX cycles: %v\n"+
		"  %s\n",
		fmtPct(r.HealthyAccuracy), r.HealthyMaxDev, fmtPct(r.BuggyAccuracy), r.BuggyMaxDev,
		r.WorstCycle, r.MulExecuteCycles, verdict)
}

// ----------------------------------------------------------------------
// Predictor study (§IV): different branch predictors, same EM story.

// PredictorStudyResult compares model accuracy across direction
// predictors; the paper reports no statistically significant difference.
type PredictorStudyResult struct {
	Names      []string
	Accuracies []float64
}

// PredictorStudy retrains nothing: it rebuilds device+model per predictor
// would be expensive, so it checks that the *existing* model explains
// devices with different predictors equally well once the traces match —
// which they do, because prediction only changes flush timing, which the
// trace captures. Each predictor gets its own matched device/core pair.
func (e *Env) PredictorStudy() (*PredictorStudyResult, error) {
	progs, err := e.robustnessPrograms(2)
	if err != nil {
		return nil, err
	}
	res := &PredictorStudyResult{}
	for _, kind := range []cpu.PredictorKind{cpu.PredictTwoLevel, cpu.PredictGShare, cpu.PredictBimodal, cpu.PredictNotTaken} {
		opts := e.Dev.Options()
		opts.CPU.Predictor = kind
		dev, err := device.New(opts)
		if err != nil {
			return nil, err
		}
		sum := 0.0
		for _, w := range progs {
			cmp, err := e.score(e.Model, dev, w)
			if err != nil {
				return nil, err
			}
			sum += cmp.Accuracy
		}
		res.Names = append(res.Names, kind.String())
		res.Accuracies = append(res.Accuracies, sum/float64(len(progs)))
	}
	return res, nil
}

func (r *PredictorStudyResult) String() string {
	rows := make([][]string, len(r.Names))
	for i := range r.Names {
		rows[i] = []string{r.Names[i], fmtPct(r.Accuracies[i])}
	}
	return "§IV — branch predictor study (model accuracy per predictor)\n" +
		table([]string{"predictor", "accuracy"}, rows) +
		"(paper: no statistically significant difference between predictors)\n"
}
