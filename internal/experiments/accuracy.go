package experiments

import (
	"fmt"

	"emsim/internal/core"
	"emsim/internal/stats"
)

// Figure8Result is the paper's headline validation (§V-A, Figure 8): the
// combination microbenchmark covering all 7⁵ pipeline occupancy mixes,
// scored as mean per-cycle normalized cross-correlation between measured
// and simulated signals. The paper reports 94.1 % on its FPGA.
type Figure8Result struct {
	// GroupAccuracy holds per-group accuracies, representatives first,
	// then (if run) the full-ISA variant groups.
	GroupAccuracy []float64
	// FullISAAccuracy holds the second 17 groups drawn from the full ISA
	// instead of only the representatives.
	FullISAAccuracy []float64
	// Mean / MeanFullISA summarize both sets.
	Mean, MeanFullISA float64
	// TotalCycles is the number of simulated-and-measured cycles scored.
	TotalCycles int
}

// Figure8 runs `groups` of the 17 benchmark groups in both variants
// (pass core.NumGroups to run them all, as the recorded results do).
func (e *Env) Figure8(groups int) (*Figure8Result, error) {
	if groups < 1 || groups > core.NumGroups {
		groups = core.NumGroups
	}
	res := &Figure8Result{}
	for variant := 0; variant < 2; variant++ {
		rng := e.rng(800 + int64(variant))
		sum := 0.0
		for g := 0; g < groups; g++ {
			words, err := core.CombinationGroup(g, rng, variant == 1)
			if err != nil {
				return nil, err
			}
			cmp, err := e.score(e.Model, nil, words)
			if err != nil {
				return nil, fmt.Errorf("group %d (variant %d): %w", g, variant, err)
			}
			sum += cmp.Accuracy
			res.TotalCycles += cmp.Cycles
			if variant == 0 {
				res.GroupAccuracy = append(res.GroupAccuracy, cmp.Accuracy)
			} else {
				res.FullISAAccuracy = append(res.FullISAAccuracy, cmp.Accuracy)
			}
		}
		if variant == 0 {
			res.Mean = sum / float64(groups)
		} else {
			res.MeanFullISA = sum / float64(groups)
		}
	}
	return res, nil
}

func (r *Figure8Result) String() string {
	min1, max1 := stats.MinMax(r.GroupAccuracy)
	min2, max2 := stats.MinMax(r.FullISAAccuracy)
	return fmt.Sprintf("Figure 8 / §V-A headline — combination benchmark accuracy\n"+
		"  representative groups (%d): mean %s  (min %s, max %s)\n"+
		"  full-ISA groups       (%d): mean %s  (min %s, max %s)\n"+
		"  total cycles scored: %d   (paper: 94.1%% over 34 groups)\n",
		len(r.GroupAccuracy), fmtPct(r.Mean), fmtPct(min1), fmtPct(max1),
		len(r.FullISAAccuracy), fmtPct(r.MeanFullISA), fmtPct(min2), fmtPct(max2),
		r.TotalCycles)
}

// AblationRow is one model feature's contribution to the headline metric.
type AblationRow struct {
	Name     string
	Options  core.ModelOptions
	Accuracy float64
	RMSE     float64 // normalized RMSE (amplitude-sensitive)
	Drop     float64 // accuracy vs full model
}

// AblationResult is the accuracy-degradation study the paper runs across
// §III/§IV: the headline benchmark re-scored with each modeling feature
// disabled. Two metrics are reported: the paper's per-cycle correlation
// (shape) and the normalized RMSE (amplitude) — timing-altering ablations
// (stalls, cache) wreck the first, amplitude-only ablations mostly the
// second.
type AblationResult struct {
	Full     float64
	FullRMSE float64
	Rows     []AblationRow
}

// Ablations scores the full model and each ablation on `groups`
// benchmark groups (representatives variant).
func (e *Env) Ablations(groups int) (*AblationResult, error) {
	if groups < 1 || groups > core.NumGroups {
		groups = 4
	}
	var words [][]uint32
	rng := e.rng(810)
	for g := 0; g < groups; g++ {
		w, err := core.CombinationGroup(g, rng, false)
		if err != nil {
			return nil, err
		}
		words = append(words, w)
	}
	score := func(opts core.ModelOptions) (acc, rmse float64, err error) {
		m := e.Model.WithOptions(opts)
		for _, w := range words {
			cmp, err := e.score(m, nil, w)
			if err != nil {
				return 0, 0, err
			}
			acc += cmp.Accuracy
			rmse += cmp.RMSE
		}
		n := float64(len(words))
		return acc / n, rmse / n, nil
	}
	full, fullRMSE, err := score(core.FullModel())
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Full: full, FullRMSE: fullRMSE}
	variants := []struct {
		name string
		mod  func(*core.ModelOptions)
	}{
		{"single source (Fig 2)", func(o *core.ModelOptions) { o.PerStageSources = false }},
		{"average activity (Fig 3)", func(o *core.ModelOptions) { o.Activity = core.ActivityAverage }},
		{"no activity factor", func(o *core.ModelOptions) { o.Activity = core.ActivityNone }},
		{"no stall model (Fig 5)", func(o *core.ModelOptions) { o.ModelStalls = false }},
		{"no cache model (Fig 6)", func(o *core.ModelOptions) { o.ModelCache = false }},
		{"no flush model (Fig 7)", func(o *core.ModelOptions) { o.ModelFlush = false }},
	}
	for _, v := range variants {
		opts := core.FullModel()
		v.mod(&opts)
		acc, rmse, err := score(opts)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{Name: v.name, Options: opts, Accuracy: acc, RMSE: rmse, Drop: full - acc})
	}
	return res, nil
}

func (r *AblationResult) String() string {
	rows := [][]string{{"full model", fmtPct(r.Full), "-", fmt.Sprintf("%.3f", r.FullRMSE), "-"}}
	for _, a := range r.Rows {
		rows = append(rows, []string{
			a.Name, fmtPct(a.Accuracy), fmt.Sprintf("%+.1f", -100*a.Drop),
			fmt.Sprintf("%.3f", a.RMSE), fmt.Sprintf("x%.1f", safeRatio(a.RMSE, r.FullRMSE)),
		})
	}
	return "Model-feature ablations on the combination benchmark\n" +
		table([]string{"model", "accuracy", "points", "RMSE", "vs full"}, rows)
}
