package experiments

import (
	"fmt"
	"math"

	"emsim/internal/core"
	"emsim/internal/cpu"
	"emsim/internal/device"
)

// robustnessPrograms returns the evaluation workload shared by the §V-B,
// §V-C and §V-D experiments.
func (e *Env) robustnessPrograms(n int) ([][]uint32, error) {
	rng := e.rng(500)
	var out [][]uint32
	for i := 0; i < n; i++ {
		w, err := core.MixedProgram(rng, 400)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// meanAccuracyOn scores the model variant against a specific device over
// the given programs.
func (e *Env) meanAccuracyOn(m *core.Model, dev *device.Device, progs [][]uint32) (float64, error) {
	sum := 0.0
	for _, w := range progs {
		cmp, err := e.score(m, dev, w)
		if err != nil {
			return 0, err
		}
		sum += cmp.Accuracy
	}
	return sum / float64(len(progs)), nil
}

// ----------------------------------------------------------------------
// §V-B: manufacturing variability.

// ManufacturingResult holds per-board-instance accuracies for physically
// identical boards that differ only in clock trim and noise realization.
type ManufacturingResult struct {
	Boards     []string
	Accuracies []float64
	Spread     float64 // max - min
}

// Manufacturing evaluates the model (trained on instance #1) on three
// manufacturing instances of the same board design (§V-B: same silicon
// recipe, slightly shifted clocks). The paper finds no statistically
// significant accuracy impact.
func (e *Env) Manufacturing() (*ManufacturingResult, error) {
	progs, err := e.robustnessPrograms(3)
	if err != nil {
		return nil, err
	}
	base := e.Dev.Options()
	instances := []struct {
		name string
		ppm  float64
		seed int64
	}{
		{"board #1 (training)", base.ClockPPM, base.NoiseSeed},
		{"board #2 (+150 ppm)", 150, base.NoiseSeed + 11},
		{"board #3 (-220 ppm)", -220, base.NoiseSeed + 12},
	}
	res := &ManufacturingResult{}
	min, max := 2.0, -2.0
	for _, inst := range instances {
		opts := base
		opts.ClockPPM = inst.ppm
		opts.NoiseSeed = inst.seed
		dev, err := device.New(opts)
		if err != nil {
			return nil, err
		}
		acc, err := e.meanAccuracyOn(e.Model, dev, progs)
		if err != nil {
			return nil, err
		}
		res.Boards = append(res.Boards, inst.name)
		res.Accuracies = append(res.Accuracies, acc)
		if acc < min {
			min = acc
		}
		if acc > max {
			max = acc
		}
	}
	res.Spread = max - min
	return res, nil
}

func (r *ManufacturingResult) String() string {
	rows := make([][]string, len(r.Boards))
	for i := range r.Boards {
		rows[i] = []string{r.Boards[i], fmtPct(r.Accuracies[i])}
	}
	return "§V-B — manufacturing variability (same design, clock trim differs)\n" +
		table([]string{"instance", "accuracy"}, rows) +
		fmt.Sprintf("spread: %.2f points (paper: no statistically significant impact)\n", 100*r.Spread)
}

// ----------------------------------------------------------------------
// §V-C: board variability.

// BoardResult compares the training-board model against a different board
// (new CMOS/board characteristics), before and after retraining A and the
// activity factors, and reports whether the combination coefficients M
// transferred.
type BoardResult struct {
	Board               string
	StaleAccuracy       float64 // board-1 model applied blindly
	RetrainedAccuracy   float64 // A and c retrained on the new board
	SelfAccuracy        float64 // the new board's own fresh model (reference)
	MISOCorrelation     float64 // corr(M_board1, M_board2): ≈1 per §V-C
	AmpRelativeDistance float64 // relative L2 gap between the A tables
}

// BoardVariability reproduces §V-C with a second board (fresh technology
// seed). "Retrained" uses the new board's baseline amplitudes and
// activity factors while keeping the original M, mirroring the paper's
// finding that only A and c need re-measurement.
func (e *Env) BoardVariability() (*BoardResult, error) {
	progs, err := e.robustnessPrograms(3)
	if err != nil {
		return nil, err
	}
	opts := e.Dev.Options()
	opts.TechSeed += 41 // a different physical board
	opts.NoiseSeed += 17
	dev2, err := device.New(opts)
	if err != nil {
		return nil, err
	}
	stale, err := e.meanAccuracyOn(e.Model, dev2, progs)
	if err != nil {
		return nil, err
	}
	// Retrain on the new board (the paper re-measures A and c; our
	// trainer refits all three phases — we then graft the original M to
	// show it transfers).
	m2, err := e.train(dev2, core.TrainOptions{Runs: 10, InstancesPerCluster: 30, MixedLength: 400})
	if err != nil {
		return nil, err
	}
	self, err := e.meanAccuracyOn(m2, dev2, progs)
	if err != nil {
		return nil, err
	}
	grafted := *m2
	grafted.MISO = e.Model.MISO
	grafted.MISOIntercept = e.Model.MISOIntercept
	retrained, err := e.meanAccuracyOn(&grafted, dev2, progs)
	if err != nil {
		return nil, err
	}

	res := &BoardResult{
		Board:             fmt.Sprintf("tech seed %d", opts.TechSeed),
		StaleAccuracy:     stale,
		RetrainedAccuracy: retrained,
		SelfAccuracy:      self,
	}
	res.MISOCorrelation = vectorCorr(e.Model.MISO[:], m2.MISO[:])
	res.AmpRelativeDistance = ampDistance(e.Model, m2)
	return res, nil
}

func vectorCorr(a, b []float64) float64 {
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(len(a))
	mb /= float64(len(b))
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

func ampDistance(a, b *core.Model) float64 {
	var diff, norm float64
	for k := 0; k < core.NumAmpKeys; k++ {
		for s := 0; s < cpu.NumStages; s++ {
			d := a.Amp[k][s] - b.Amp[k][s]
			diff += d * d
			norm += a.Amp[k][s] * a.Amp[k][s]
		}
	}
	if norm == 0 {
		return 0
	}
	return math.Sqrt(diff / norm)
}

func (r *BoardResult) String() string {
	return fmt.Sprintf("§V-C — board variability (%s)\n"+
		"  board-1 model applied blindly:     %s\n"+
		"  A and c retrained, M transferred:  %s\n"+
		"  fully retrained reference:         %s\n"+
		"  corr(M₁, M₂) = %.3f (paper: M transfers across boards)\n"+
		"  relative A-table change: %.0f%% (paper: A must be re-measured)\n",
		r.Board, fmtPct(r.StaleAccuracy), fmtPct(r.RetrainedAccuracy), fmtPct(r.SelfAccuracy),
		r.MISOCorrelation, 100*r.AmpRelativeDistance)
}

// ----------------------------------------------------------------------
// §V-D / Figure 9: probe distance.

// Figure9Result compares accuracy at a moved probe position with β = 1
// versus the refitted per-stage loss coefficients.
type Figure9Result struct {
	Position       string
	BetaOne        float64 // β fixed to 1 (Figure 9 bottom)
	BetaAdjusted   float64 // β refitted (Figure 9 top)
	FittedBeta     [cpu.NumStages]float64
	BaselineAtHome float64 // sanity: accuracy at the training position
}

// Figure9 moves the probe, refits β from one calibration program, and
// scores both variants.
func (e *Env) Figure9() (*Figure9Result, error) {
	progs, err := e.robustnessPrograms(3)
	if err != nil {
		return nil, err
	}
	home, err := e.meanAccuracyOn(e.Model, e.Dev, progs)
	if err != nil {
		return nil, err
	}
	opts := e.Dev.Options()
	opts.Probe = device.ProbePosition{X: 0.6, Height: 1.8}
	opts.NoiseSeed += 23
	moved, err := device.New(opts)
	if err != nil {
		return nil, err
	}
	betaOne, err := e.meanAccuracyOn(e.Model, moved, progs)
	if err != nil {
		return nil, err
	}
	calib, err := core.MixedProgram(e.rng(901), 400)
	if err != nil {
		return nil, err
	}
	adapted, beta, err := e.Model.AdaptToProbe(moved, calib, e.Runs)
	if err != nil {
		return nil, err
	}
	adj, err := e.meanAccuracyOn(adapted, moved, progs)
	if err != nil {
		return nil, err
	}
	return &Figure9Result{
		Position:       fmt.Sprintf("x=%.1f h=%.1f (trained at x=2.0 h=1.0)", opts.Probe.X, opts.Probe.Height),
		BetaOne:        betaOne,
		BetaAdjusted:   adj,
		FittedBeta:     beta,
		BaselineAtHome: home,
	}, nil
}

func (r *Figure9Result) String() string {
	return fmt.Sprintf("Figure 9 / §V-D — probe distance and loss coefficient β\n"+
		"  probe moved to %s\n"+
		"  accuracy at training position: %s\n"+
		"  moved, β = 1:                  %s\n"+
		"  moved, β refitted:             %s\n"+
		"  fitted β per stage: [%.2f %.2f %.2f %.2f %.2f]\n",
		r.Position, fmtPct(r.BaselineAtHome), fmtPct(r.BetaOne), fmtPct(r.BetaAdjusted),
		r.FittedBeta[0], r.FittedBeta[1], r.FittedBeta[2], r.FittedBeta[3], r.FittedBeta[4])
}
