package experiments

import "testing"

// TestAttackSweepStudy runs a small ladder and checks the study's two
// contracts: both formulations agree on the final statistic, and the
// streaming side never allocates more than the buffered side.
func TestAttackSweepStudy(t *testing.T) {
	r, err := AttackSweepStudy(128, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Match {
		t.Error("buffered and streaming sweeps disagree on the final statistic")
	}
	if len(r.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(r.Points))
	}
	for _, pt := range r.Points {
		if pt.StreamingBytes >= pt.BufferedBytes {
			t.Errorf("traces=%d: streaming allocated %d B, buffered %d B; streaming should be smaller",
				pt.Traces, pt.StreamingBytes, pt.BufferedBytes)
		}
		if pt.BufferedTime <= 0 || pt.StreamingTime <= 0 {
			t.Errorf("traces=%d: non-positive timings %v / %v", pt.Traces, pt.BufferedTime, pt.StreamingTime)
		}
	}
	if r.String() == "" {
		t.Error("empty study rendering")
	}
}
