package experiments

import (
	"fmt"

	"emsim/internal/core"
	"emsim/internal/device"
)

// This file holds the two §IV/§V-A side studies the paper reports in
// passing: the oscilloscope sampling-rate sweep and the data-forwarding
// comparison.

// SamplingRateResult is the §V-A observation that "similar accuracy can
// be achieved with much lower sampling-rate" (they drop from 10 GSa/s to
// 200 MSa/s). Here the rate is expressed in samples per clock cycle; each
// rate gets its own freshly trained model, since the kernel fit and the
// amplitude extraction both depend on it.
type SamplingRateResult struct {
	SamplesPerCycle []int
	Accuracies      []float64
}

// SamplingRateStudy trains and evaluates at several oscilloscope rates.
func (e *Env) SamplingRateStudy() (*SamplingRateResult, error) {
	res := &SamplingRateResult{}
	progs, err := e.robustnessPrograms(2)
	if err != nil {
		return nil, err
	}
	for _, spc := range []int{4, 8, 12, 16, 32} {
		opts := e.Dev.Options()
		opts.SamplesPerCycle = spc
		dev, err := device.New(opts)
		if err != nil {
			return nil, err
		}
		var m *core.Model
		if spc == e.Dev.SamplesPerCycle() {
			m = e.Model // reuse the shared model at the native rate
		} else {
			m, err = e.train(dev, core.TrainOptions{Runs: 10, InstancesPerCluster: 30, MixedLength: 400})
			if err != nil {
				// Below the Nyquist rate of the device's ~4-per-cycle
				// ringing the waveform aliases away and training cannot
				// recover a usable kernel — itself a finding worth
				// recording (the paper's lower-rate claim holds only
				// above that limit).
				res.SamplesPerCycle = append(res.SamplesPerCycle, spc)
				res.Accuracies = append(res.Accuracies, 0)
				continue
			}
		}
		sum := 0.0
		for _, w := range progs {
			cmp, err := m.CompareOnDevice(dev, w, e.Runs)
			if err != nil {
				return nil, err
			}
			sum += cmp.Accuracy
		}
		res.SamplesPerCycle = append(res.SamplesPerCycle, spc)
		res.Accuracies = append(res.Accuracies, sum/float64(len(progs)))
	}
	return res, nil
}

func (r *SamplingRateResult) String() string {
	rows := make([][]string, len(r.SamplesPerCycle))
	for i := range rows {
		acc := fmtPct(r.Accuracies[i])
		if r.Accuracies[i] == 0 {
			acc = "fails (aliases the ringing)"
		}
		rows[i] = []string{fmt.Sprintf("%d", r.SamplesPerCycle[i]), acc}
	}
	return "§V-A — oscilloscope sampling-rate study\n" +
		table([]string{"samples/cycle", "accuracy"}, rows) +
		"(paper: similar accuracy at a 50x lower rate — a $300 scope suffices,\n" +
		" as long as the rate stays above the Nyquist limit of the ringing)\n"
}

// ForwardingResult is the §IV observation that data forwarding has no
// statistically significant EM effect: the model (which consumes the
// trace, stalls included) explains a forwarding-less core just as well.
type ForwardingResult struct {
	WithForwarding    float64
	WithoutForwarding float64
}

// ForwardingStudy evaluates the shared model against devices built with
// and without operand forwarding. Timing differs (the no-forwarding core
// stalls on every RAW hazard), but the model simulates on a matching core
// so the traces align; the question is purely whether the EM story
// changes.
func (e *Env) ForwardingStudy() (*ForwardingResult, error) {
	progs, err := e.robustnessPrograms(2)
	if err != nil {
		return nil, err
	}
	score := func(forwarding bool) (float64, error) {
		opts := e.Dev.Options()
		opts.CPU.Forwarding = forwarding
		dev, err := device.New(opts)
		if err != nil {
			return 0, err
		}
		sum := 0.0
		for _, w := range progs {
			cmp, err := e.score(e.Model, dev, w)
			if err != nil {
				return 0, err
			}
			sum += cmp.Accuracy
		}
		return sum / float64(len(progs)), nil
	}
	with, err := score(true)
	if err != nil {
		return nil, err
	}
	without, err := score(false)
	if err != nil {
		return nil, err
	}
	return &ForwardingResult{WithForwarding: with, WithoutForwarding: without}, nil
}

func (r *ForwardingResult) String() string {
	return fmt.Sprintf("§IV — data forwarding study\n"+
		"  forwarding on:  accuracy %s\n"+
		"  forwarding off: accuracy %s\n"+
		"(paper: no significant difference in the presence/absence of forwarding)\n",
		fmtPct(r.WithForwarding), fmtPct(r.WithoutForwarding))
}
