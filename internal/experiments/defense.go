package experiments

import (
	"context"
	"fmt"
	"strings"

	"emsim/internal/defend"
)

// ----------------------------------------------------------------------
// Defense study: security/overhead trade-off of the microarchitectural
// countermeasures, evaluated with the TVLA and CPA campaigns of
// defend.Evaluate against the AES-128 workload.

// DefenseStudyResult holds one defend.SecurityReport per evaluated
// countermeasure.
type DefenseStudyResult struct {
	Reports []*defend.SecurityReport
}

// DefenseStudy evaluates the built-in countermeasures — instruction
// shuffling, dummy-instruction insertion and pipeline jitter — against
// the undefended baseline. tvlaTraces/cpaTraces of zero select the
// defend.Options defaults (64 traces per TVLA group, a 512-trace CPA
// budget).
func (e *Env) DefenseStudy(tvlaTraces, cpaTraces int) (*DefenseStudyResult, error) {
	res := &DefenseStudyResult{}
	for _, spec := range []string{"shuffle", "dummy", "jitter"} {
		sp, err := defend.ParseSpec(spec)
		if err != nil {
			return nil, err
		}
		r, err := defend.Evaluate(context.Background(), defend.Options{
			Model:      e.Model,
			CPU:        e.Dev.Options().CPU,
			Defense:    sp,
			Seed:       e.Seed,
			TVLATraces: tvlaTraces,
			CPATraces:  cpaTraces,
		})
		if err != nil {
			return nil, fmt.Errorf("defense study %s: %w", spec, err)
		}
		res.Reports = append(res.Reports, r)
	}
	return res, nil
}

func (r *DefenseStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Defense study: TVLA + CPA campaigns, baseline vs defended AES-128\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %12s %12s %10s %10s\n",
		"defense", "|t|max", "leakage-", "TVLA detect", "CPA disclose", "atk cost", "overhead")
	base := r.Reports[0].Baseline
	fmt.Fprintf(&b, "%-10s %10.2f %10s %12s %12s %10s %10s\n",
		"baseline", base.MaxAbsT, "", fmtTraces(base.DetectTraces), fmtTraces(base.DiscloseTraces), "1.0x", "0.0%")
	for _, rep := range r.Reports {
		cost := fmt.Sprintf("%.1fx", rep.AttackCostMultiplier)
		if rep.CostIsLowerBound {
			cost = ">" + cost
		}
		fmt.Fprintf(&b, "%-10s %10.2f %9.1f%% %12s %12s %10s %9.1f%%\n",
			rep.Defense, rep.Defended.MaxAbsT, 100*rep.LeakageReduction,
			fmtTraces(rep.Defended.DetectTraces), fmtTraces(rep.Defended.DiscloseTraces),
			cost, 100*rep.CycleOverhead)
	}
	return b.String()
}

func fmtTraces(n int) string {
	if n == 0 {
		return "never"
	}
	return fmt.Sprintf("%d", n)
}
