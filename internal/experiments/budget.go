package experiments

import (
	"fmt"

	"emsim/internal/core"
)

// Training-budget sensitivity study. The paper's campaign records 1000
// oscilloscope captures per sequence and thousands of sequences (§III-B);
// a natural adopter question is how accuracy degrades when the
// measurement budget shrinks. This study retrains the model at reduced
// campaign sizes — fewer averaging runs per sequence and fewer
// random-operand probes per cluster — and scores each against the same
// held-out programs the robustness studies use.

// BudgetPoint is one retrained campaign size and its accuracy.
type BudgetPoint struct {
	// Runs is the measurement-averaging count per training sequence.
	Runs int
	// InstancesPerCluster is the number of phase-2 random-operand probes.
	InstancesPerCluster int
	// Accuracy is the mean per-cycle correlation on held-out programs.
	Accuracy float64
}

// BudgetResult holds the training-budget sweep, largest budget first.
type BudgetResult struct {
	Points []BudgetPoint
}

// TrainingBudgetStudy retrains at a ladder of shrinking measurement
// budgets and reports held-out accuracy for each. The full-budget rung
// reproduces the Env's own training configuration.
func (e *Env) TrainingBudgetStudy() (*BudgetResult, error) {
	progs, err := e.robustnessPrograms(2)
	if err != nil {
		return nil, err
	}
	ladder := []struct{ runs, instances int }{
		{30, 40}, // the default campaign
		{10, 40}, // noisier per-sequence estimates
		{30, 10}, // starved activity-factor regression
		{3, 10},  // both cut to the bone
	}
	res := &BudgetResult{}
	for _, rung := range ladder {
		m, err := e.train(e.Dev, core.TrainOptions{
			Seed:                e.Seed,
			Runs:                rung.runs,
			InstancesPerCluster: rung.instances,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: budget %d/%d: %w", rung.runs, rung.instances, err)
		}
		acc, err := e.meanAccuracyOn(m, nil, progs)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, BudgetPoint{
			Runs:                rung.runs,
			InstancesPerCluster: rung.instances,
			Accuracy:            acc,
		})
	}
	return res, nil
}

func (r *BudgetResult) String() string {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%d", p.Runs),
			fmt.Sprintf("%d", p.InstancesPerCluster),
			fmtPct(p.Accuracy),
		}
	}
	return "training-budget sensitivity (§III-B campaign size)\n" +
		table([]string{"runs/seq", "probes/cluster", "accuracy"}, rows) +
		"(the paper trains at full budget; accuracy should degrade gracefully, not collapse)\n"
}
