package experiments

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"emsim/internal/core"
	"emsim/internal/cpu"
	"emsim/internal/isa"
	"emsim/internal/leakage"
)

// One shared environment per test binary: training costs seconds.
var (
	envOnce sync.Once
	sharedE *Env
	envErr  error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		opts := DefaultEnvOptions()
		opts.Train = core.TrainOptions{Runs: 10, InstancesPerCluster: 30, MixedLength: 400}
		opts.Runs = 8
		sharedE, envErr = NewEnv(opts)
	})
	if envErr != nil {
		t.Fatalf("environment: %v", envErr)
	}
	return sharedE
}

func TestCombinationGroupCoversItsCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	words, err := core.CombinationGroup(0, rng, false)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.MustNew(cpu.DefaultConfig())
	if _, err := c.RunProgram(words); err != nil {
		t.Fatalf("group 0 does not run: %v", err)
	}
	st := c.Stats()
	if st.Retired < 5*core.CombosPerGroup {
		t.Errorf("group 0 retired %d instructions, want >= %d", st.Retired, 5*core.CombosPerGroup)
	}
	if st.CacheMisses == 0 {
		t.Error("combination group should include cache misses (Load cluster)")
	}
	if st.Mispredicts == 0 {
		t.Error("combination group should include mispredictions (Branch cluster)")
	}
	if _, err := core.CombinationGroup(-1, rng, false); err == nil {
		t.Error("negative group accepted")
	}
	if _, err := core.CombinationGroup(core.NumGroups, rng, false); err == nil {
		t.Error("out-of-range group accepted")
	}
}

func TestAllCombinationGroupsHalt(t *testing.T) {
	// Regression test: large groups once overlapped their own scratch
	// region, letting stores clobber code (some groups then never
	// halted). Every group in both variants must run to completion.
	for variant := 0; variant < 2; variant++ {
		rng := rand.New(rand.NewSource(800 + int64(variant)))
		for g := 0; g < core.NumGroups; g++ {
			words, err := core.CombinationGroup(g, rng, variant == 1)
			if err != nil {
				t.Fatalf("group %d variant %d: %v", g, variant, err)
			}
			c := cpu.MustNew(cpu.DefaultConfig())
			if _, err := c.RunProgram(words); err != nil {
				t.Fatalf("group %d variant %d does not halt: %v", g, variant, err)
			}
			if 4*len(words) >= 0x10000 {
				t.Fatalf("group %d image (%d bytes) reaches the scratch region", g, 4*len(words))
			}
		}
	}
}

func TestCombinationConstants(t *testing.T) {
	if core.NumCombinations != 16807 {
		t.Errorf("NumCombinations = %d, want 7^5", core.NumCombinations)
	}
	if core.NumGroups != 17 {
		t.Errorf("NumGroups = %d, want 17 as in the paper", core.NumGroups)
	}
}

func TestFigure1SinExpWins(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: the kernel-shape sweep refits the full grid per candidate")
	}
	e := testEnv(t)
	r, err := e.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if r.Best != 2 { // signal.KernelSinExp
		t.Errorf("best kernel = %v, want sin-exp (paper Figure 1)", r.Best)
	}
	var rect, sinexp float64
	for _, s := range r.Scores {
		switch s.Kind.String() {
		case "rect":
			rect = s.NCC
		case "sin-exp":
			sinexp = s.NCC
		}
	}
	if sinexp < 0.95 {
		t.Errorf("sin-exp reconstruction NCC = %.3f, want >= 0.95", sinexp)
	}
	if sinexp <= rect {
		t.Errorf("sin-exp (%.3f) must beat rect (%.3f)", sinexp, rect)
	}
	if !strings.Contains(r.String(), "sin-exp") {
		t.Error("report missing kernel name")
	}
}

func TestFigure2PerStageSourcesMatter(t *testing.T) {
	e := testEnv(t)
	r, err := e.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if r.AblatedRMSE < 1.5*r.FullRMSE {
		t.Errorf("single-source RMSE %.3f should be >= 1.5x full %.3f (Figure 2)", r.AblatedRMSE, r.FullRMSE)
	}
	if r.AblatedAmpCorr >= r.FullAmpCorr {
		t.Errorf("single-source amplitude corr %.3f should drop below %.3f", r.AblatedAmpCorr, r.FullAmpCorr)
	}
}

func TestFigure3ActivityRegressionMatters(t *testing.T) {
	e := testEnv(t)
	r, err := e.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if r.AblatedRMSE < 1.2*r.FullRMSE {
		t.Errorf("Equ.7 averaging RMSE %.3f should be >= 1.2x LR %.3f (Figure 3)", r.AblatedRMSE, r.FullRMSE)
	}
}

func TestFigure4Superposition(t *testing.T) {
	e := testEnv(t)
	r, err := e.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if r.AccuracyCombined < 0.9 {
		t.Errorf("combined-sequence accuracy %.3f", r.AccuracyCombined)
	}
	if r.SuperpositionError <= 0 {
		t.Error("naive superposition should not be exact (M must be fitted)")
	}
}

func TestFigure5StallModelingMatters(t *testing.T) {
	e := testEnv(t)
	r, err := e.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if r.AblatedRMSE < 2*r.FullRMSE {
		t.Errorf("no-stall RMSE %.3f should be >= 2x full %.3f (Figure 5)", r.AblatedRMSE, r.FullRMSE)
	}
}

func TestFigure6CacheModelingMatters(t *testing.T) {
	e := testEnv(t)
	r, err := e.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if r.AblatedRMSE < 2*r.FullRMSE {
		t.Errorf("no-cache RMSE %.3f should be >= 2x full %.3f (Figure 6)", r.AblatedRMSE, r.FullRMSE)
	}
	if r.AblatedAccuracy >= r.FullAccuracy {
		t.Errorf("no-cache accuracy %.3f should drop below %.3f", r.AblatedAccuracy, r.FullAccuracy)
	}
}

func TestFigure7FlushModelingMatters(t *testing.T) {
	e := testEnv(t)
	r, err := e.Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if r.AblatedRMSE < 1.3*r.FullRMSE {
		t.Errorf("no-flush RMSE %.3f should be >= 1.3x full %.3f (Figure 7)", r.AblatedRMSE, r.FullRMSE)
	}
}

func TestTableIRecoversSevenClusters(t *testing.T) {
	e := testEnv(t)
	r, err := e.TableI()
	if err != nil {
		t.Fatal(err)
	}
	if r.NumClusters != isa.NumClusters {
		t.Errorf("cut size %d", r.NumClusters)
	}
	if r.PairAgreement < 0.95 {
		t.Errorf("cluster agreement %.3f, want >= 0.95 (recorded run: 1.00)", r.PairAgreement)
	}
	if len(r.Items) < 30 {
		t.Errorf("only %d instructions clustered", len(r.Items))
	}
	if !strings.Contains(r.String(), "cluster") {
		t.Error("report looks empty")
	}
}

func TestFigure8HeadlineAccuracy(t *testing.T) {
	e := testEnv(t)
	r, err := e.Figure8(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean < 0.90 {
		t.Errorf("representative-group accuracy %.3f, want >= 0.90 (paper: 0.941)", r.Mean)
	}
	if r.MeanFullISA < 0.90 {
		t.Errorf("full-ISA accuracy %.3f, want >= 0.90", r.MeanFullISA)
	}
	if r.TotalCycles < 10000 {
		t.Errorf("only %d cycles scored", r.TotalCycles)
	}
}

func TestAblationsDegrade(t *testing.T) {
	e := testEnv(t)
	r, err := e.Ablations(1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{} // ablations that must hurt at least one metric
	for _, row := range r.Rows {
		want[row.Name] = row.Accuracy < r.Full || row.RMSE > 1.05*r.FullRMSE
	}
	for name, ok := range want {
		if !ok {
			t.Errorf("ablation %q shows no degradation on either metric", name)
		}
	}
}

func TestManufacturingVariabilityNegligible(t *testing.T) {
	e := testEnv(t)
	r, err := e.Manufacturing()
	if err != nil {
		t.Fatal(err)
	}
	if r.Spread > 0.02 {
		t.Errorf("manufacturing spread %.4f, want <= 0.02 (paper: no significant impact)", r.Spread)
	}
	for i, acc := range r.Accuracies {
		if acc < 0.85 {
			t.Errorf("%s accuracy %.3f", r.Boards[i], acc)
		}
	}
}

func TestBoardVariabilityRetrainRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: each simulated board retrains from scratch")
	}
	e := testEnv(t)
	r, err := e.BoardVariability()
	if err != nil {
		t.Fatal(err)
	}
	if r.RetrainedAccuracy <= r.StaleAccuracy {
		t.Errorf("retraining (%.3f) must beat the stale model (%.3f)", r.RetrainedAccuracy, r.StaleAccuracy)
	}
	// M transfers: the grafted model must match the fully retrained one.
	if math.Abs(r.RetrainedAccuracy-r.SelfAccuracy) > 0.02 {
		t.Errorf("grafted-M accuracy %.3f far from full retrain %.3f (M should transfer, §V-C)",
			r.RetrainedAccuracy, r.SelfAccuracy)
	}
	if r.AmpRelativeDistance < 0.1 {
		t.Errorf("A-table change %.2f suspiciously small for a different board", r.AmpRelativeDistance)
	}
}

func TestFigure9BetaAdjustment(t *testing.T) {
	e := testEnv(t)
	r, err := e.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if r.BetaAdjusted <= r.BetaOne {
		t.Errorf("β refit (%.3f) must beat β=1 (%.3f) at the moved probe (Figure 9)", r.BetaAdjusted, r.BetaOne)
	}
	if r.BetaAdjusted < 0.9 {
		t.Errorf("β-adjusted accuracy %.3f, want >= 0.9", r.BetaAdjusted)
	}
	// The fitted β must deviate from 1 (the probe moved).
	dev := 0.0
	for _, b := range r.FittedBeta {
		dev += math.Abs(b - 1)
	}
	if dev < 0.5 {
		t.Errorf("fitted β %.2v barely differs from 1", r.FittedBeta)
	}
}

func TestFigure10TVLAAgreement(t *testing.T) {
	e := testEnv(t)
	r, err := e.Figure10(20)
	if err != nil {
		t.Fatal(err)
	}
	if r.RealLeakPoints == 0 || r.SimLeakPoints == 0 {
		t.Error("AES must leak under TVLA in both real and simulated assessments")
	}
	if r.ProfileCorrelation < 0.9 {
		t.Errorf("|t| profile correlation %.3f, want >= 0.9 (paper: same pattern)", r.ProfileCorrelation)
	}
}

func TestTableIISAVATAgreement(t *testing.T) {
	e := testEnv(t)
	r, err := e.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if r.Correlation < 0.95 {
		t.Errorf("SAVAT real-vs-simulated correlation %.3f, want >= 0.95", r.Correlation)
	}
	// Structural checks mirroring Table II: diagonal ~0, LDM/NOP big.
	for i := 0; i < leakage.NumSavatInsts; i++ {
		if r.Real[i][i] > 0.05 {
			t.Errorf("real diagonal [%d][%d] = %.3f, want ~0", i, i, r.Real[i][i])
		}
	}
	if r.Real[leakage.LDM][leakage.NOP] < 3*r.Real[leakage.ADD][leakage.NOP] {
		t.Errorf("LDM/NOP (%.3f) should dominate ADD/NOP (%.3f)",
			r.Real[leakage.LDM][leakage.NOP], r.Real[leakage.ADD][leakage.NOP])
	}
}

func TestFigure11DetectsDefect(t *testing.T) {
	e := testEnv(t)
	r, err := e.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if !r.DefectDetected {
		t.Errorf("defective multiplier not localized: peak %.3f at cycle %d (floor %.3f, MUL cycles %v)",
			r.BuggyMaxDev, r.WorstCycle, r.HealthyMaxDev, r.MulExecuteCycles)
	}
	if r.HealthyAccuracy < 0.95 {
		t.Errorf("healthy chip accuracy %.3f — the reference itself is bad", r.HealthyAccuracy)
	}
}

func TestPredictorStudyNoSignificantDifference(t *testing.T) {
	e := testEnv(t)
	r, err := e.PredictorStudy()
	if err != nil {
		t.Fatal(err)
	}
	min, max := 2.0, -2.0
	for _, a := range r.Accuracies {
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	if max-min > 0.03 {
		t.Errorf("predictor accuracy spread %.3f, want <= 0.03 (paper: no significant difference)", max-min)
	}
}

func TestReportsRender(t *testing.T) {
	// Smoke-check every String method via a tiny fabricated result set.
	var sb strings.Builder
	sb.WriteString((&Figure4Result{AccuracyCombined: 0.99, SuperpositionError: 0.02}).String())
	sb.WriteString((&AblationCompare{Name: "X", Sequence: "s", AblationName: "abl"}).String())
	sb.WriteString((&ManufacturingResult{Boards: []string{"a"}, Accuracies: []float64{0.9}}).String())
	sb.WriteString((&Figure10Result{}).String())
	sb.WriteString((&Figure11Result{DefectDetected: true}).String())
	if sb.Len() == 0 {
		t.Fatal("no report output")
	}
}

func BenchmarkEnvScoreGroup(b *testing.B) {
	opts := DefaultEnvOptions()
	opts.Train = core.TrainOptions{Runs: 5, InstancesPerCluster: 10, MixedLength: 200}
	opts.Runs = 3
	e, err := NewEnv(opts)
	if err != nil {
		b.Fatal(err)
	}
	words, err := core.CombinationGroup(0, rand.New(rand.NewSource(1)), false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.score(e.Model, nil, words); err != nil {
			b.Fatal(err)
		}
	}
}

func TestForwardingStudyNoSignificantDifference(t *testing.T) {
	e := testEnv(t)
	r, err := e.ForwardingStudy()
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(r.WithForwarding - r.WithoutForwarding); diff > 0.03 {
		t.Errorf("forwarding accuracy difference %.3f, want <= 0.03 (paper: no significant difference)", diff)
	}
	if r.WithForwarding < 0.85 || r.WithoutForwarding < 0.85 {
		t.Errorf("accuracies too low: %.3f / %.3f", r.WithForwarding, r.WithoutForwarding)
	}
}

func TestSamplingRateStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: the study retrains at every sampling rate")
	}
	e := testEnv(t)
	r, err := e.SamplingRateStudy()
	if err != nil {
		t.Fatal(err)
	}
	// Above the ringing's Nyquist limit (>8 samples/cycle for the 4-per-
	// cycle ringing) accuracy must be high and flat; at or below it the
	// waveform aliases away.
	byRate := map[int]float64{}
	for i, spc := range r.SamplesPerCycle {
		byRate[spc] = r.Accuracies[i]
	}
	if byRate[12] < 0.9 || byRate[16] < 0.9 || byRate[32] < 0.9 {
		t.Errorf("above-Nyquist accuracies too low: %v", byRate)
	}
	if math.Abs(byRate[12]-byRate[32]) > 0.05 {
		t.Errorf("accuracy not flat above Nyquist: 12->%.3f vs 32->%.3f", byRate[12], byRate[32])
	}
	if byRate[4] > 0.5 || byRate[8] > 0.5 {
		t.Errorf("sub-Nyquist rates should fail: 4->%.3f 8->%.3f", byRate[4], byRate[8])
	}
}

func TestTrainingBudgetStudyDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping in -short mode: the study retrains at every budget point")
	}
	e := testEnv(t)
	r, err := e.TrainingBudgetStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 4 {
		t.Fatalf("got %d budget rungs, want 4", len(r.Points))
	}
	full, starved := r.Points[0], r.Points[len(r.Points)-1]
	if full.Accuracy < 0.88 {
		t.Errorf("full-budget accuracy %.3f, want >= 0.88", full.Accuracy)
	}
	for _, p := range r.Points {
		if p.Accuracy < 0.60 {
			t.Errorf("budget %d runs/%d probes collapsed to %.3f", p.Runs, p.InstancesPerCluster, p.Accuracy)
		}
		if p.Accuracy > full.Accuracy+0.03 {
			t.Errorf("smaller budget (%d/%d: %.3f) beat the full budget (%.3f) by more than noise",
				p.Runs, p.InstancesPerCluster, p.Accuracy, full.Accuracy)
		}
	}
	if starved.Accuracy > full.Accuracy {
		t.Logf("note: starved budget %.3f >= full %.3f (within noise)", starved.Accuracy, full.Accuracy)
	}
	if r.String() == "" {
		t.Error("empty report")
	}
}

func TestDefenseStudyReportsAllDefenses(t *testing.T) {
	if testing.Short() {
		t.Skip("defense study simulates thousands of AES traces")
	}
	e := testEnv(t)
	r, err := e.DefenseStudy(8, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(r.Reports))
	}
	for _, rep := range r.Reports {
		if rep.Baseline.MaxAbsT <= 0 || rep.Defended.MaxAbsT <= 0 {
			t.Errorf("%s: missing TVLA statistics: %+v", rep.Defense, rep)
		}
		if rep.Baseline.MeanCycles <= 0 || rep.Defended.MeanCycles <= 0 {
			t.Errorf("%s: missing cycle counts", rep.Defense)
		}
	}
	if s := r.String(); !strings.Contains(s, "shuffle") || !strings.Contains(s, "jitter") {
		t.Errorf("summary misses a defense:\n%s", s)
	}
}
