package bpred

import "testing"

var (
	allocSinkBool bool
	allocSinkU32  uint32
)

// TestPredictorsDoNotAllocate pins the //emsim:noalloc contract of every
// direction predictor, the BTB, and the composite Unit: after
// construction, predict/update/resolve/reset cycles are allocation-free,
// which is what lets the pipeline call them every fetch without garbage.
func TestPredictorsDoNotAllocate(t *testing.T) {
	dirs := []Predictor{
		NewNotTaken(),
		NewBimodal(6),
		NewTwoLevel(6, 4),
		NewGShare(6),
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, d := range dirs {
			for pc := uint32(0); pc < 256; pc += 4 {
				taken := pc%8 == 0
				allocSinkBool = d.Predict(pc)
				d.Update(pc, taken)
			}
			d.Reset()
		}
	})
	if allocs > 0 {
		t.Errorf("direction predictors allocate %.1f times per run, want 0", allocs)
	}

	btb := NewBTB(5)
	allocs = testing.AllocsPerRun(100, func() {
		for pc := uint32(0); pc < 256; pc += 4 {
			btb.Insert(pc, pc+16)
			target, ok := btb.Lookup(pc)
			allocSinkBool = ok
			allocSinkU32 = target
		}
		btb.Reset()
	})
	if allocs > 0 {
		t.Errorf("BTB operations allocate %.1f times per run, want 0", allocs)
	}

	u := NewUnit(NewGShare(6), 5)
	allocs = testing.AllocsPerRun(100, func() {
		for pc := uint32(0); pc < 256; pc += 4 {
			next, predTaken := u.PredictNext(pc)
			allocSinkBool = u.Resolve(pc, pc%8 == 0, pc+8, predTaken, next)
		}
		u.Reset()
	})
	if allocs > 0 {
		t.Errorf("prediction unit allocates %.1f times per run, want 0", allocs)
	}
}
