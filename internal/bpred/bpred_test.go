package bpred

import (
	"math/rand"
	"testing"
)

func TestCounterSaturation(t *testing.T) {
	c := counter(0)
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Errorf("counter underflowed to %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Errorf("counter did not saturate at 3, got %d", c)
	}
	if !c.taken() {
		t.Error("saturated counter should predict taken")
	}
}

func TestNotTaken(t *testing.T) {
	p := NewNotTaken()
	p.Update(0x100, true)
	p.Update(0x100, true)
	if p.Predict(0x100) {
		t.Error("not-taken predictor predicted taken")
	}
	if p.Name() != "not-taken" {
		t.Error("bad name")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	p := NewBimodal(8)
	pc := uint32(0x400)
	for i := 0; i < 4; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Error("bimodal did not learn always-taken")
	}
	// A different PC (different index) is unaffected.
	if p.Predict(pc + 4) {
		t.Error("bimodal leaked state across PCs")
	}
	p.Reset()
	if p.Predict(pc) {
		t.Error("Reset did not clear bias")
	}
}

func TestTwoLevelLearnsAlternatingPattern(t *testing.T) {
	// A strictly alternating branch (T,N,T,N,...) defeats a bimodal
	// predictor but is perfectly learnable by a 2-level predictor.
	p := NewTwoLevel(6, 4)
	pc := uint32(0x800)
	taken := false
	// Train.
	for i := 0; i < 200; i++ {
		p.Update(pc, taken)
		taken = !taken
	}
	// Evaluate.
	correct := 0
	for i := 0; i < 100; i++ {
		if p.Predict(pc) == taken {
			correct++
		}
		p.Update(pc, taken)
		taken = !taken
	}
	if correct < 95 {
		t.Errorf("two-level only got %d/100 on alternating pattern", correct)
	}
}

func TestTwoLevelPanicsOnBadHistory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 0 history bits")
		}
	}()
	NewTwoLevel(4, 0)
}

func TestGShareLearnsCorrelatedBranches(t *testing.T) {
	// Branch B's outcome equals branch A's outcome: global history makes
	// this learnable.
	g := NewGShare(10)
	r := rand.New(rand.NewSource(7))
	pcA, pcB := uint32(0x1000), uint32(0x1010)
	correct, total := 0, 0
	for i := 0; i < 2000; i++ {
		a := r.Intn(2) == 0
		g.Update(pcA, a)
		pred := g.Predict(pcB)
		if i > 500 {
			total++
			if pred == a {
				correct++
			}
		}
		g.Update(pcB, a)
	}
	if float64(correct)/float64(total) < 0.9 {
		t.Errorf("gshare accuracy %d/%d on correlated branches", correct, total)
	}
}

func TestPredictorResets(t *testing.T) {
	preds := []Predictor{NewBimodal(6), NewTwoLevel(6, 6), NewGShare(8)}
	for _, p := range preds {
		pc := uint32(0x2000)
		// Enough updates for history-based predictors to saturate their
		// history registers and then train the repeated pattern entry.
		for i := 0; i < 20; i++ {
			p.Update(pc, true)
		}
		if !p.Predict(pc) {
			t.Errorf("%s did not learn taken", p.Name())
		}
		p.Reset()
		if p.Predict(pc) {
			t.Errorf("%s predicts taken after Reset", p.Name())
		}
	}
}

func TestBTBLookupInsert(t *testing.T) {
	b := NewBTB(6)
	if _, ok := b.Lookup(0x100); ok {
		t.Fatal("empty BTB hit")
	}
	b.Insert(0x100, 0x2000)
	target, ok := b.Lookup(0x100)
	if !ok || target != 0x2000 {
		t.Errorf("Lookup = %#x,%v", target, ok)
	}
	// Aliasing PC (same index, different tag) must miss.
	alias := uint32(0x100 + 4*64)
	if _, ok := b.Lookup(alias); ok {
		t.Error("aliased PC hit in direct-mapped BTB")
	}
	// Inserting the alias evicts the original.
	b.Insert(alias, 0x3000)
	if _, ok := b.Lookup(0x100); ok {
		t.Error("evicted entry still present")
	}
	b.Reset()
	if _, ok := b.Lookup(alias); ok {
		t.Error("entry survived Reset")
	}
}

func TestUnitPredictsFallThroughWithoutBTB(t *testing.T) {
	u := DefaultUnit()
	pc := uint32(0x400)
	// Train direction to taken, but the BTB is empty: must fall through.
	for i := 0; i < 4; i++ {
		u.Dir.Update(pc, true)
	}
	next, taken := u.PredictNext(pc)
	if taken || next != pc+4 {
		t.Errorf("PredictNext = %#x,%v; want fall-through without BTB entry", next, taken)
	}
}

func TestUnitResolveDetectsMisprediction(t *testing.T) {
	u := DefaultUnit()
	pc, target := uint32(0x500), uint32(0x1500)

	next, ptaken := u.PredictNext(pc)
	if mis := u.Resolve(pc, true, target, ptaken, next); !mis {
		t.Error("taken branch with not-taken prediction should mispredict")
	}
	// After training, prediction should go to the target and be correct.
	// The two-level predictor walks a fresh pattern entry each update until
	// its 8-bit history saturates, so train past that point.
	for i := 0; i < 12; i++ {
		n, pt := u.PredictNext(pc)
		u.Resolve(pc, true, target, pt, n)
	}
	next, ptaken = u.PredictNext(pc)
	if !ptaken || next != target {
		t.Errorf("trained PredictNext = %#x,%v; want %#x,true", next, ptaken, target)
	}
	if mis := u.Resolve(pc, true, target, ptaken, next); mis {
		t.Error("correct prediction flagged as misprediction")
	}
	lookups, mispredicts := u.Stats()
	if lookups == 0 || mispredicts == 0 {
		t.Errorf("stats = %d/%d; both should be nonzero", lookups, mispredicts)
	}
}

func TestUnitNotTakenCorrectPrediction(t *testing.T) {
	u := NewUnit(NewNotTaken(), 4)
	pc := uint32(0x600)
	next, pt := u.PredictNext(pc)
	if mis := u.Resolve(pc, false, 0, pt, next); mis {
		t.Error("not-taken branch predicted not-taken should be correct")
	}
}

func TestUnitReset(t *testing.T) {
	u := DefaultUnit()
	pc := uint32(0x700)
	for i := 0; i < 4; i++ {
		n, pt := u.PredictNext(pc)
		u.Resolve(pc, true, 0x900, pt, n)
	}
	u.Reset()
	if l, m := u.Stats(); l != 0 || m != 0 {
		t.Error("stats survived Reset")
	}
	next, taken := u.PredictNext(pc)
	if taken || next != pc+4 {
		t.Error("training survived Reset")
	}
}

// TestPredictorAccuracyOnLoop mimics the paper's loop microbenchmarks: a
// loop branch taken N-1 times then not taken, repeated. The 2-level
// predictor should beat bimodal on short loops.
func TestPredictorAccuracyOnLoop(t *testing.T) {
	run := func(p Predictor, loopLen, iters int) float64 {
		pc := uint32(0x100)
		correct, total := 0, 0
		for i := 0; i < iters; i++ {
			for j := 0; j < loopLen; j++ {
				taken := j != loopLen-1
				if p.Predict(pc) == taken {
					correct++
				}
				total++
				p.Update(pc, taken)
			}
		}
		return float64(correct) / float64(total)
	}
	two := run(NewTwoLevel(6, 8), 4, 200)
	bi := run(NewBimodal(6), 4, 200)
	if two < 0.95 {
		t.Errorf("two-level accuracy %.2f on loop-4, want >= 0.95", two)
	}
	if two <= bi {
		t.Errorf("two-level (%.2f) should beat bimodal (%.2f) on short loops", two, bi)
	}
}

func BenchmarkTwoLevelPredictUpdate(b *testing.B) {
	p := NewTwoLevel(10, 8)
	for i := 0; i < b.N; i++ {
		pc := uint32(i*4) & 0xFFFF
		taken := p.Predict(pc)
		p.Update(pc, !taken)
	}
}

func BenchmarkUnitPredictResolve(b *testing.B) {
	u := DefaultUnit()
	for i := 0; i < b.N; i++ {
		pc := uint32(i*4) & 0xFFF
		n, pt := u.PredictNext(pc)
		u.Resolve(pc, i&3 != 0, pc+16, pt, n)
	}
}
