// Package bpred implements the branch prediction unit of the simulated
// processor: a branch target buffer plus several direction predictors. The
// paper's core uses a 2-level adaptive predictor (Yeh–Patt) with a BTB; the
// paper additionally compares always-not-taken and gshare and finds no
// statistically significant EM difference between them (§IV), which the
// experiment harness reproduces.
package bpred

import "fmt"

// Predictor predicts conditional branch directions and learns from
// resolved outcomes.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint32) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint32, taken bool)
	// Reset restores the power-on state.
	Reset()
	// Name identifies the predictor in experiment output.
	Name() string
}

// counter is a 2-bit saturating counter; values 2 and 3 predict taken.
type counter uint8

func (c counter) taken() bool { return c >= 2 }

func (c counter) update(taken bool) counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// NotTaken is the trivial always-not-taken predictor.
type NotTaken struct{}

// NewNotTaken returns an always-not-taken predictor.
func NewNotTaken() *NotTaken { return &NotTaken{} }

// Predict always returns false.
//
//emsim:noalloc
func (*NotTaken) Predict(uint32) bool { return false }

// Update is a no-op.
//
//emsim:noalloc
func (*NotTaken) Update(uint32, bool) {}

// Reset is a no-op.
//
//emsim:noalloc
func (*NotTaken) Reset() {}

// Name returns "not-taken".
func (*NotTaken) Name() string { return "not-taken" }

// Bimodal is a classic table of 2-bit saturating counters indexed by PC.
type Bimodal struct {
	table []counter
	mask  uint32
}

// NewBimodal returns a bimodal predictor with 2^indexBits counters.
func NewBimodal(indexBits uint) *Bimodal {
	n := uint32(1) << indexBits
	return &Bimodal{table: make([]counter, n), mask: n - 1}
}

func (b *Bimodal) idx(pc uint32) uint32 { return (pc >> 2) & b.mask }

// Predict returns the counter's direction for pc.
//
//emsim:noalloc
func (b *Bimodal) Predict(pc uint32) bool { return b.table[b.idx(pc)].taken() }

// Update trains the counter for pc.
//
//emsim:noalloc
func (b *Bimodal) Update(pc uint32, taken bool) {
	i := b.idx(pc)
	b.table[i] = b.table[i].update(taken)
}

// Reset clears all counters to strongly-not-taken.
//
//emsim:noalloc
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 0
	}
}

// Name returns "bimodal".
func (b *Bimodal) Name() string { return "bimodal" }

// TwoLevel is the Yeh–Patt two-level adaptive predictor used in the paper's
// core: a per-branch history register selects a pattern-table counter.
type TwoLevel struct {
	historyBits uint
	histories   []uint32 // first level: per-branch history registers
	pattern     []counter
	histMask    uint32
	idxMask     uint32
}

// NewTwoLevel returns a two-level predictor with 2^indexBits history
// registers of historyBits bits each, and a shared pattern table of
// 2^historyBits counters.
func NewTwoLevel(indexBits, historyBits uint) *TwoLevel {
	if historyBits == 0 || historyBits > 20 {
		panic(fmt.Sprintf("bpred: history bits %d out of range", historyBits))
	}
	return &TwoLevel{
		historyBits: historyBits,
		histories:   make([]uint32, 1<<indexBits),
		pattern:     make([]counter, 1<<historyBits),
		histMask:    1<<historyBits - 1,
		idxMask:     1<<indexBits - 1,
	}
}

func (p *TwoLevel) histIdx(pc uint32) uint32 { return (pc >> 2) & p.idxMask }

// Predict consults the pattern entry selected by the branch's history.
//
//emsim:noalloc
func (p *TwoLevel) Predict(pc uint32) bool {
	h := p.histories[p.histIdx(pc)]
	return p.pattern[h].taken()
}

// Update trains the pattern entry and shifts the outcome into the branch's
// history register.
//
//emsim:noalloc
func (p *TwoLevel) Update(pc uint32, taken bool) {
	hi := p.histIdx(pc)
	h := p.histories[hi]
	p.pattern[h] = p.pattern[h].update(taken)
	h = (h << 1) & p.histMask
	if taken {
		h |= 1
	}
	p.histories[hi] = h
}

// Reset clears histories and counters.
//
//emsim:noalloc
func (p *TwoLevel) Reset() {
	for i := range p.histories {
		p.histories[i] = 0
	}
	for i := range p.pattern {
		p.pattern[i] = 0
	}
}

// Name returns "two-level".
func (p *TwoLevel) Name() string { return "two-level" }

// GShare XORs a global history register with the PC to index a counter
// table.
type GShare struct {
	history uint32
	bits    uint
	table   []counter
	mask    uint32
}

// NewGShare returns a gshare predictor with 2^bits counters and a bits-wide
// global history register.
func NewGShare(bits uint) *GShare {
	return &GShare{bits: bits, table: make([]counter, 1<<bits), mask: 1<<bits - 1}
}

func (g *GShare) idx(pc uint32) uint32 { return ((pc >> 2) ^ g.history) & g.mask }

// Predict returns the gshare direction for pc.
//
//emsim:noalloc
func (g *GShare) Predict(pc uint32) bool { return g.table[g.idx(pc)].taken() }

// Update trains the indexed counter and shifts the global history.
//
//emsim:noalloc
func (g *GShare) Update(pc uint32, taken bool) {
	i := g.idx(pc)
	g.table[i] = g.table[i].update(taken)
	g.history = (g.history << 1) & g.mask
	if taken {
		g.history |= 1
	}
}

// Reset clears the table and the history register.
//
//emsim:noalloc
func (g *GShare) Reset() {
	g.history = 0
	for i := range g.table {
		g.table[i] = 0
	}
}

// Name returns "gshare".
func (g *GShare) Name() string { return "gshare" }

// BTB is a direct-mapped branch target buffer mapping a branch PC to its
// most recent target.
type BTB struct {
	tags    []uint32
	targets []uint32
	valid   []bool
	mask    uint32
}

// NewBTB returns a BTB with 2^indexBits entries.
func NewBTB(indexBits uint) *BTB {
	n := uint32(1) << indexBits
	return &BTB{
		tags:    make([]uint32, n),
		targets: make([]uint32, n),
		valid:   make([]bool, n),
		mask:    n - 1,
	}
}

func (b *BTB) idx(pc uint32) uint32 { return (pc >> 2) & b.mask }

// Lookup returns the cached target for pc, if any.
//
//emsim:noalloc
func (b *BTB) Lookup(pc uint32) (target uint32, ok bool) {
	i := b.idx(pc)
	if b.valid[i] && b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Insert records pc -> target.
//
//emsim:noalloc
func (b *BTB) Insert(pc, target uint32) {
	i := b.idx(pc)
	b.tags[i] = pc
	b.targets[i] = target
	b.valid[i] = true
}

// Reset invalidates every entry.
//
//emsim:noalloc
func (b *BTB) Reset() {
	for i := range b.valid {
		b.valid[i] = false
	}
}

// Unit bundles a direction predictor with a BTB, the composition the
// paper's fetch stage consults every cycle.
type Unit struct {
	Dir Predictor
	BTB *BTB

	lookups, mispredicts uint64
}

// NewUnit returns a prediction unit around the given direction predictor
// with a 2^btbBits-entry BTB.
func NewUnit(dir Predictor, btbBits uint) *Unit {
	return &Unit{Dir: dir, BTB: NewBTB(btbBits)}
}

// DefaultUnit returns the paper's configuration: 2-level predictor with a
// BTB.
func DefaultUnit() *Unit {
	return NewUnit(NewTwoLevel(10, 8), 9)
}

// PredictNext returns the predicted next PC for the (possible) branch at
// pc. A taken prediction without a BTB hit falls back to not-taken, since
// the target is unknown at fetch time.
//
//emsim:noalloc
func (u *Unit) PredictNext(pc uint32) (next uint32, predictedTaken bool) {
	u.lookups++
	//emsim:ignore noalloc dynamic dispatch by design; every in-tree Predictor is annotated noalloc
	if u.Dir.Predict(pc) {
		if target, ok := u.BTB.Lookup(pc); ok {
			return target, true
		}
	}
	return pc + 4, false
}

// Resolve trains the unit with the actual branch outcome and returns
// whether the earlier prediction was wrong.
//
//emsim:noalloc
func (u *Unit) Resolve(pc uint32, taken bool, target uint32, predictedTaken bool, predictedNext uint32) (mispredicted bool) {
	//emsim:ignore noalloc dynamic dispatch by design; every in-tree Predictor is annotated noalloc
	u.Dir.Update(pc, taken)
	if taken {
		u.BTB.Insert(pc, target)
	}
	actualNext := pc + 4
	if taken {
		actualNext = target
	}
	if predictedNext != actualNext {
		u.mispredicts++
		return true
	}
	return false
}

// Stats returns the number of predictions made and mispredictions detected.
func (u *Unit) Stats() (lookups, mispredicts uint64) { return u.lookups, u.mispredicts }

// Reset restores power-on state, including statistics.
//
//emsim:noalloc
func (u *Unit) Reset() {
	//emsim:ignore noalloc dynamic dispatch by design; every in-tree Predictor is annotated noalloc
	u.Dir.Reset()
	u.BTB.Reset()
	u.lookups, u.mispredicts = 0, 0
}
