package signal

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x with an iterative
// radix-2 Cooley–Tukey algorithm. The input length must be a power of
// two; use NextPow2/PadPow2 to prepare arbitrary lengths.
func FFT(x []complex128) ([]complex128, error) {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("signal: FFT length %d is not a power of two", n)
	}
	out := make([]complex128, n)
	copy(out, x)

	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			out[i], out[j] = out[j], out[i]
		}
	}

	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := out[i+j]
				v := out[i+j+length/2] * w
				out[i+j] = u + v
				out[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
	return out, nil
}

// IFFT computes the inverse DFT (same power-of-two restriction).
func IFFT(x []complex128) ([]complex128, error) {
	n := len(x)
	conj := make([]complex128, n)
	for i, v := range x {
		conj[i] = cmplx.Conj(v)
	}
	y, err := FFT(conj)
	if err != nil {
		return nil, err
	}
	for i := range y {
		y[i] = cmplx.Conj(y[i]) / complex(float64(n), 0)
	}
	return y, nil
}

// NextPow2 returns the smallest power of two >= n (and >= 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// PadPow2 zero-pads x to the next power-of-two length.
func PadPow2(x []float64) []complex128 {
	n := NextPow2(len(x))
	out := make([]complex128, n)
	for i, v := range x {
		out[i] = complex(v, 0)
	}
	return out
}

// PowerSpectrum returns the one-sided power spectral density estimate of
// x sampled at sampleRate: frequencies [0, fs/2] and the power at each.
// x is zero-padded to a power of two.
func PowerSpectrum(x []float64, sampleRate float64) (freqs, power []float64, err error) {
	if len(x) == 0 {
		return nil, nil, fmt.Errorf("signal: power spectrum of empty signal")
	}
	if sampleRate <= 0 {
		return nil, nil, fmt.Errorf("signal: sample rate %g must be positive", sampleRate)
	}
	fx, err := FFT(PadPow2(x))
	if err != nil {
		return nil, nil, err
	}
	n := len(fx)
	half := n/2 + 1
	freqs = make([]float64, half)
	power = make([]float64, half)
	for i := 0; i < half; i++ {
		freqs[i] = float64(i) * sampleRate / float64(n)
		m := cmplx.Abs(fx[i])
		p := m * m / float64(n)
		if i != 0 && i != n/2 {
			p *= 2 // fold the negative frequencies in
		}
		power[i] = p
	}
	return freqs, power, nil
}

// BandEnergy integrates power over [f−bw/2, f+bw/2] — the "energy of the
// spike" SAVAT measures at the alternation frequency (§VI-A).
func BandEnergy(freqs, power []float64, f, bw float64) (float64, error) {
	if len(freqs) != len(power) {
		return 0, fmt.Errorf("signal: freqs/power length mismatch")
	}
	if bw < 0 {
		return 0, fmt.Errorf("signal: negative bandwidth")
	}
	lo, hi := f-bw/2, f+bw/2
	s := 0.0
	found := false
	for i, fr := range freqs {
		if fr >= lo && fr <= hi {
			s += power[i]
			found = true
		}
	}
	if !found {
		return 0, fmt.Errorf("signal: no spectral bins in [%g, %g]", lo, hi)
	}
	return s, nil
}
