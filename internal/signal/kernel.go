// Package signal implements the signal-processing layer of EMSim: the
// per-cycle analog reconstruction kernels of §II-C (Equ. 2–6), the modulo
// operation for averaging repeated measurements (Equ. 1), smoothing
// filters, correlation metrics, an FFT, and the paper's per-cycle accuracy
// metric (§V-A).
package signal

import (
	"fmt"
	"math"
)

// KernelKind selects the pulse shape convolved with the per-cycle
// amplitudes x[n] to form the continuous signal.
type KernelKind int

// The three reconstruction options compared in Figure 1.
const (
	// KernelRect is the zero-order hold of Equ. 2: activity spread evenly
	// over the cycle.
	KernelRect KernelKind = iota
	// KernelExp is the decaying exponential of Equ. 3/4: switching
	// concentrated right after the clock edge.
	KernelExp
	// KernelSinExp is the damped sinusoid of Equ. 5/6 — the paper's best
	// fit, capturing both the post-edge decay and the observed ringing.
	KernelSinExp
)

func (k KernelKind) String() string {
	switch k {
	case KernelRect:
		return "rect"
	case KernelExp:
		return "exp"
	case KernelSinExp:
		return "sin-exp"
	}
	return "unknown"
}

// Kernel is a concrete reconstruction kernel: a pulse shape sampled at the
// oscilloscope rate.
type Kernel struct {
	Kind KernelKind
	// Theta is the decay rate θ in units of 1/cycle (Equ. 3): the pulse
	// falls to e^{−Theta} after one clock period.
	Theta float64
	// Period is the sinusoid period T0 in cycles (Equ. 5).
	Period float64
	// SupportCycles bounds the pulse length in cycles (the exponential
	// tail is truncated there).
	SupportCycles int
}

// DefaultKernel returns the damped-sinusoid kernel with the parameters
// used throughout the experiments: ~4 ringing periods per clock cycle,
// decaying to a few percent within a cycle.
func DefaultKernel() Kernel {
	return Kernel{Kind: KernelSinExp, Theta: 4, Period: 0.25, SupportCycles: 3}
}

// Taps samples the kernel at samplesPerCycle points per clock cycle and
// returns the finite impulse response.
func (k Kernel) Taps(samplesPerCycle int) ([]float64, error) {
	if samplesPerCycle < 1 {
		return nil, fmt.Errorf("signal: samplesPerCycle %d < 1", samplesPerCycle)
	}
	sup := k.SupportCycles
	if sup < 1 {
		sup = 1
	}
	switch k.Kind {
	case KernelRect:
		taps := make([]float64, samplesPerCycle)
		for i := range taps {
			taps[i] = 1
		}
		return taps, nil
	case KernelExp:
		if k.Theta <= 0 {
			return nil, fmt.Errorf("signal: exp kernel needs Theta > 0 (got %g)", k.Theta)
		}
		n := sup * samplesPerCycle
		taps := make([]float64, n)
		for i := range taps {
			t := float64(i) / float64(samplesPerCycle) // in cycles
			taps[i] = math.Exp(-k.Theta * t)
		}
		return taps, nil
	case KernelSinExp:
		if k.Theta <= 0 || k.Period <= 0 {
			return nil, fmt.Errorf("signal: sin-exp kernel needs Theta, Period > 0 (got %g, %g)", k.Theta, k.Period)
		}
		n := sup * samplesPerCycle
		taps := make([]float64, n)
		for i := range taps {
			t := float64(i) / float64(samplesPerCycle)
			taps[i] = math.Sin(2*math.Pi*t/k.Period) * math.Exp(-k.Theta*t)
		}
		return taps, nil
	}
	return nil, fmt.Errorf("signal: unknown kernel kind %d", k.Kind)
}

// Reconstruct renders the continuous-time signal y(t) from per-cycle
// amplitudes x[n] (Equ. 2/4/6): one kernel instance per clock cycle,
// scaled by that cycle's amplitude, superposed. The output has
// len(x)*samplesPerCycle samples (the tail beyond the last cycle is
// truncated). It is the allocating wrapper around ReconstructInto.
func Reconstruct(x []float64, samplesPerCycle int, k Kernel) ([]float64, error) {
	return ReconstructInto(nil, x, samplesPerCycle, k)
}

// ReconstructInto is the in-place overlap-add form of Reconstruct: the
// signal is rendered into dst's backing array, which is grown only when
// its capacity is insufficient, and the (possibly re-sliced) result is
// returned. Passing the previous output back as dst makes repeated
// same-shaped reconstructions allocation-free apart from the tap table;
// callers that also want the taps cached should use a Reconstructor.
//
//emsim:noalloc
func ReconstructInto(dst []float64, x []float64, samplesPerCycle int, k Kernel) ([]float64, error) {
	//emsim:ignore noalloc the tap table is sampled once per call; the per-cycle render loop below stays allocation-free
	taps, err := k.Taps(samplesPerCycle)
	if err != nil {
		return nil, err
	}
	n := len(x) * samplesPerCycle
	dst = growZeroed(dst[:0], n)
	for c, amp := range x {
		//emsim:ignore floatcmp skipping exactly-zero amplitudes is a pure optimization; near-zero cycles still render
		if amp == 0 {
			continue
		}
		base := c * samplesPerCycle
		for i, tap := range taps {
			idx := base + i
			if idx >= n {
				break
			}
			dst[idx] += amp * tap
		}
	}
	return dst, nil
}

// MustReconstruct is Reconstruct for known-good kernels.
func MustReconstruct(x []float64, samplesPerCycle int, k Kernel) []float64 {
	y, err := Reconstruct(x, samplesPerCycle, k)
	if err != nil {
		panic(err)
	}
	return y
}
