package signal

import (
	"fmt"
	"math"
)

// MovingAverage smooths x with a centered window of the given (odd) width.
// Edges use the available samples. Width 1 returns a copy.
func MovingAverage(x []float64, width int) ([]float64, error) {
	if width < 1 || width%2 == 0 {
		return nil, fmt.Errorf("signal: moving average width %d must be odd and >= 1", width)
	}
	half := width / 2
	out := make([]float64, len(x))
	for i := range x {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(x) {
			hi = len(x) - 1
		}
		s := 0.0
		for j := lo; j <= hi; j++ {
			s += x[j]
		}
		out[i] = s / float64(hi-lo+1)
	}
	return out, nil
}

// GaussianFilter smooths x with a Gaussian of the given standard deviation
// (in samples), truncated at 3σ. Sigma 0 returns a copy.
func GaussianFilter(x []float64, sigma float64) ([]float64, error) {
	if sigma < 0 {
		return nil, fmt.Errorf("signal: negative sigma %g", sigma)
	}
	//emsim:ignore floatcmp sigma 0 is the documented pass-through sentinel, supplied literally by callers
	if sigma == 0 {
		return append([]float64(nil), x...), nil
	}
	radius := int(math.Ceil(3 * sigma))
	weights := make([]float64, 2*radius+1)
	sum := 0.0
	for i := range weights {
		d := float64(i - radius)
		weights[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += weights[i]
	}
	for i := range weights {
		weights[i] /= sum
	}
	out := make([]float64, len(x))
	for i := range x {
		acc, wsum := 0.0, 0.0
		for k, w := range weights {
			j := i + k - radius
			if j < 0 || j >= len(x) {
				continue
			}
			acc += w * x[j]
			wsum += w
		}
		if wsum > 0 {
			out[i] = acc / wsum
		}
	}
	return out, nil
}

// RMSE returns the root-mean-square error between two equal-length
// signals.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("signal: RMSE length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("signal: RMSE of empty signals")
	}
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a))), nil
}

// Energy returns the sum of squares of x.
func Energy(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return s
}

// NCC returns the zero-lag normalized cross-correlation of two
// equal-length signals: Σab / √(Σa²·Σb²), in [−1, 1]. Two all-zero
// signals correlate perfectly (1); one all-zero signal yields 0.
func NCC(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("signal: NCC length mismatch %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		return 0, fmt.Errorf("signal: NCC of empty signals")
	}
	var sab, saa, sbb float64
	for i := range a {
		sab += a[i] * b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
	}
	//emsim:ignore floatcmp exactly-zero energy distinguishes all-zero signals per the doc contract
	if saa == 0 && sbb == 0 {
		return 1, nil
	}
	//emsim:ignore floatcmp exactly-zero energy distinguishes all-zero signals per the doc contract
	if saa == 0 || sbb == 0 {
		return 0, nil
	}
	return sab / math.Sqrt(saa*sbb), nil
}

// NormalizeMeanAbs rescales x so its mean absolute value is 1, the
// "normalize both signals to have similar average" step of the paper's
// accuracy metric. All-zero input is returned unchanged.
func NormalizeMeanAbs(x []float64) []float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	out := make([]float64, len(x))
	//emsim:ignore floatcmp a sum of absolute values is exactly zero only for all-zero input
	if s == 0 {
		copy(out, x)
		return out
	}
	scale := float64(len(x)) / s
	for i, v := range x {
		out[i] = v * scale
	}
	return out
}

// Resample linearly interpolates x (sampled uniformly) onto n output
// samples covering the same time span.
func Resample(x []float64, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("signal: resample to %d samples", n)
	}
	if len(x) == 0 {
		return nil, fmt.Errorf("signal: resample of empty signal")
	}
	out := make([]float64, n)
	if len(x) == 1 {
		for i := range out {
			out[i] = x[0]
		}
		return out, nil
	}
	for i := 0; i < n; i++ {
		pos := float64(i) * float64(len(x)-1) / float64(n-1)
		lo := int(pos)
		if lo >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = x[lo]*(1-frac) + x[lo+1]*frac
	}
	return out, nil
}

// AddScaled returns a + scale·b for equal-length signals.
func AddScaled(a []float64, scale float64, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("signal: AddScaled length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + scale*b[i]
	}
	return out, nil
}
