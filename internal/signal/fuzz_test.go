package signal

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzKernels are the kernel configurations the overlap-add fuzz target
// cycles through: every kind, support both shorter and longer than one
// cycle, so the tap tail both overlaps following cycles and gets
// truncated at the signal end.
var fuzzKernels = []Kernel{
	{Kind: KernelRect, SupportCycles: 1},
	{Kind: KernelExp, Theta: 4, SupportCycles: 2},
	{Kind: KernelSinExp, Theta: 4, Period: 0.25, SupportCycles: 3},
	DefaultKernel(),
}

// naiveOverlapAdd is the textbook reference for Equ. 2/4/6: a fresh
// output buffer, one kernel instance per cycle, scaled and superposed,
// tail truncated at cycles*spc. Additions run in the same cycle-major,
// tap-minor order as the streaming implementations, so agreement is
// required bit for bit, not merely within epsilon.
func naiveOverlapAdd(amps []float64, taps []float64, spc int) []float64 {
	n := len(amps) * spc
	out := make([]float64, n)
	for c, amp := range amps {
		if amp == 0 {
			continue
		}
		for i, tap := range taps {
			idx := c*spc + i
			if idx >= n {
				break
			}
			out[idx] += amp * tap
		}
	}
	return out
}

// FuzzReconstructorOverlapAdd drives the in-place streaming
// Reconstructor (and the batch ReconstructInto) with arbitrary
// amplitude series — including NaN, infinities, subnormals and signed
// zeros — and demands bit-exact equivalence with the naive reference,
// on a fresh buffer and again on a reused one.
func FuzzReconstructorOverlapAdd(f *testing.F) {
	f.Add([]byte{}, uint8(4), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 240, 63, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(1), uint8(1))
	f.Add(binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.NaN())), uint8(7), uint8(2))
	f.Add(binary.LittleEndian.AppendUint64(
		binary.LittleEndian.AppendUint64(nil, math.Float64bits(math.Inf(1))),
		math.Float64bits(-0.0)), uint8(16), uint8(3))

	f.Fuzz(func(t *testing.T, data []byte, spcRaw, kindRaw uint8) {
		spc := int(spcRaw)%16 + 1
		k := fuzzKernels[int(kindRaw)%len(fuzzKernels)]
		amps := make([]float64, 0, len(data)/8)
		for len(data) >= 8 && len(amps) < 256 {
			amps = append(amps, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}

		want := MustReconstruct(amps, spc, k) // delegates to ReconstructInto
		taps, err := k.Taps(spc)
		if err != nil {
			t.Fatalf("taps: %v", err)
		}
		naive := naiveOverlapAdd(amps, taps, spc)
		requireBitEqual(t, "ReconstructInto vs naive", naive, want)

		r, err := k.NewReconstructor(spc)
		if err != nil {
			t.Fatalf("reconstructor: %v", err)
		}
		var sig []float64
		for pass := 0; pass < 2; pass++ {
			// Pass 0 renders into a fresh buffer; pass 1 reuses it, which
			// must re-zero every sample the previous pass wrote.
			r.Start(sig)
			for _, a := range amps {
				r.Add(a)
			}
			sig = r.Finish()
			if r.Cycles() != len(amps) {
				t.Fatalf("pass %d: consumed %d cycles, want %d", pass, r.Cycles(), len(amps))
			}
			requireBitEqual(t, "streaming vs naive", naive, sig)
		}

		// Chunked streaming must match sample-at-a-time streaming.
		r.Start(sig)
		r.AddChunk(amps)
		requireBitEqual(t, "AddChunk vs naive", naive, r.Finish())
	})
}

func requireBitEqual(t *testing.T, what string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d samples, want %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s: sample %d = %x (%g), want %x (%g)",
				what, i, math.Float64bits(got[i]), got[i], math.Float64bits(want[i]), want[i])
		}
	}
}
