package signal

// growZeroed returns s extended to length n with every element zeroed.
// The backing array is reused when its capacity suffices; only growth
// beyond the capacity allocates. s must have length <= n.
//
//emsim:noalloc
func growZeroed(s []float64, n int) []float64 {
	if n <= cap(s) {
		s = s[:n]
	} else {
		//emsim:ignore noalloc amortized warm-up growth; a steady-state reuse cycle never reaches this branch
		grown := make([]float64, n, n+n/2)
		copy(grown, s)
		s = grown
	}
	for i := range s {
		s[i] = 0
	}
	return s
}

// Reconstructor is a reusable streaming renderer for the overlap-add
// reconstruction of Equ. 2/4/6. It caches the kernel tap table once and
// consumes per-cycle amplitudes one at a time (or chunk by chunk), so the
// producer never has to materialize the full amplitude series and a
// steady-state reuse cycle performs no allocations:
//
//	r, _ := k.NewReconstructor(spc)
//	var sig []float64
//	for _, trace := range traces {
//		r.Start(sig)            // reuse the previous buffer
//		for _, amp := range ... // stream amplitudes as they are computed
//			r.Add(amp)
//		sig = r.Finish()
//	}
//
// A Reconstructor is not safe for concurrent use; give each worker its
// own (a Session does exactly that).
type Reconstructor struct {
	taps []float64
	spc  int

	out    []float64
	cycles int
}

// NewReconstructor builds a streaming reconstructor for the kernel at the
// given analog rate, sampling the tap table once.
func (k Kernel) NewReconstructor(samplesPerCycle int) (*Reconstructor, error) {
	taps, err := k.Taps(samplesPerCycle)
	if err != nil {
		return nil, err
	}
	return &Reconstructor{taps: taps, spc: samplesPerCycle}, nil
}

// SamplesPerCycle returns the analog rate the reconstructor renders at.
func (r *Reconstructor) SamplesPerCycle() int { return r.spc }

// Start begins a new signal, rendering into dst's backing array (grown
// only when needed). Pass the previous Finish result to reuse its
// capacity, or nil to allocate fresh.
//
//emsim:noalloc
func (r *Reconstructor) Start(dst []float64) {
	r.out = growZeroed(dst[:0], 0)
	r.cycles = 0
}

// extend grows the output to n samples, zeroing any newly exposed region.
//
//emsim:noalloc
func (r *Reconstructor) extend(n int) {
	if n <= len(r.out) {
		return
	}
	old := len(r.out)
	if n <= cap(r.out) {
		r.out = r.out[:n]
		for i := old; i < n; i++ {
			r.out[i] = 0
		}
	} else {
		//emsim:ignore noalloc amortized warm-up growth; a steady-state reuse cycle never reaches this branch
		grown := make([]float64, n, n+n/2)
		copy(grown, r.out)
		r.out = grown
	}
}

// Add superposes one cycle's kernel instance, scaled by amp, at the next
// cycle position. The tail reaching past the final cycle is trimmed by
// Finish, exactly as Reconstruct truncates it.
//
//emsim:noalloc
func (r *Reconstructor) Add(amp float64) {
	base := r.cycles * r.spc
	r.extend(base + len(r.taps))
	//emsim:ignore floatcmp skipping exactly-zero amplitudes is a pure optimization; near-zero cycles still render
	if amp != 0 {
		out := r.out[base:]
		for i, tap := range r.taps {
			out[i] += amp * tap
		}
	}
	r.cycles++
}

// AddChunk streams a block of per-cycle amplitudes.
//
//emsim:noalloc
func (r *Reconstructor) AddChunk(amps []float64) {
	for _, a := range amps {
		r.Add(a)
	}
}

// Cycles returns the number of amplitudes consumed since Start.
func (r *Reconstructor) Cycles() int { return r.cycles }

// Finish truncates the kernel tail beyond the last cycle and returns the
// rendered signal: cycles×samplesPerCycle samples, bit-for-bit identical
// to Reconstruct of the same amplitude series. The returned slice aliases
// the reconstructor's buffer only until the next Start that reuses it.
//
//emsim:noalloc
func (r *Reconstructor) Finish() []float64 {
	n := r.cycles * r.spc
	r.extend(n)
	r.out = r.out[:n]
	return r.out
}
