package signal

import "fmt"

// ModuloAverage implements the "modulo operation" of §II-B (Equ. 1): a
// long capture containing many repetitions of the same noc-cycle sequence
// is folded onto its fundamental period and averaged, removing additive
// noise without requiring trigger synchronization.
//
// samples is the raw capture; samplePeriod is the instrument's sampling
// interval T_m step; seqPeriod is the sequence duration T_s = noc × T_clk
// (same time unit as samplePeriod); bins is the number of points the
// folded signal is quantized into (typically noc × samplesPerCycle).
//
// Each sample at time m·samplePeriod lands in the bin for
// mod(m·samplePeriod, seqPeriod); bins average their samples. Empty bins
// (possible when the capture is too short or the rates are commensurate)
// are filled by linear interpolation from their neighbors.
func ModuloAverage(samples []float64, samplePeriod, seqPeriod float64, bins int) ([]float64, error) {
	if samplePeriod <= 0 || seqPeriod <= 0 {
		return nil, fmt.Errorf("signal: modulo average needs positive periods (%g, %g)", samplePeriod, seqPeriod)
	}
	if bins < 1 {
		return nil, fmt.Errorf("signal: modulo average needs >= 1 bin (%d)", bins)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("signal: modulo average of empty capture")
	}
	sum := make([]float64, bins)
	count := make([]int, bins)
	for m, v := range samples {
		t := float64(m) * samplePeriod
		// Modular offset Δ_m = mod(T_m, T_s).
		off := t - float64(int64(t/seqPeriod))*seqPeriod
		bin := int(off / seqPeriod * float64(bins))
		if bin >= bins {
			bin = bins - 1
		}
		sum[bin] += v
		count[bin]++
	}
	out := make([]float64, bins)
	empty := 0
	for i := range out {
		if count[i] > 0 {
			out[i] = sum[i] / float64(count[i])
		} else {
			empty++
		}
	}
	if empty == bins {
		return nil, fmt.Errorf("signal: all %d bins empty", bins)
	}
	if empty > 0 {
		fillEmptyBins(out, count)
	}
	return out, nil
}

// fillEmptyBins linearly interpolates bins with zero counts from the
// nearest filled neighbors (wrapping around, since the folded signal is
// periodic).
func fillEmptyBins(out []float64, count []int) {
	n := len(out)
	for i := 0; i < n; i++ {
		if count[i] > 0 {
			continue
		}
		// Nearest filled neighbors to the left and right (cyclic).
		li, ri := -1, -1
		for d := 1; d < n; d++ {
			if li < 0 && count[(i-d+n*((d/n)+1))%n] > 0 {
				li = (i - d + n*((d/n)+1)) % n
			}
			if ri < 0 && count[(i+d)%n] > 0 {
				ri = (i + d) % n
			}
			if li >= 0 && ri >= 0 {
				break
			}
		}
		switch {
		case li >= 0 && ri >= 0:
			out[i] = (out[li] + out[ri]) / 2
		case li >= 0:
			out[i] = out[li]
		case ri >= 0:
			out[i] = out[ri]
		}
	}
}
