package signal

import (
	"math/rand"
	"testing"
)

// kernelsUnderTest covers all three Figure 1 pulse shapes plus a support
// longer than one cycle so the overlap-add tail actually overlaps.
func kernelsUnderTest() []Kernel {
	return []Kernel{
		{Kind: KernelRect, SupportCycles: 1},
		{Kind: KernelExp, Theta: 3, SupportCycles: 2},
		DefaultKernel(),
		{Kind: KernelSinExp, Theta: 2, Period: 0.5, SupportCycles: 4},
	}
}

func randAmps(r *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	// Sprinkle exact zeros: both paths special-case amp == 0.
	for i := 0; i < n/8; i++ {
		x[r.Intn(n)] = 0
	}
	return x
}

// TestReconstructIntoMatchesReconstruct pins the in-place path to the
// allocating one, including buffer reuse across differently sized inputs.
func TestReconstructIntoMatchesReconstruct(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	var dst []float64
	for _, k := range kernelsUnderTest() {
		for _, n := range []int{1, 5, 64, 17} { // shrinking size reuses capacity
			x := randAmps(r, n)
			want, err := Reconstruct(x, 8, k)
			if err != nil {
				t.Fatal(err)
			}
			dst, err = ReconstructInto(dst, x, 8, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(dst) != len(want) {
				t.Fatalf("kernel %v n=%d: got %d samples, want %d", k.Kind, n, len(dst), len(want))
			}
			for i := range want {
				if dst[i] != want[i] {
					t.Fatalf("kernel %v n=%d: sample %d = %g, want %g (bit-exact)", k.Kind, n, i, dst[i], want[i])
				}
			}
		}
	}
}

// TestReconstructorMatchesReconstruct pins the streaming renderer — both
// one amplitude at a time and chunk by chunk — to the batch path,
// bit for bit.
func TestReconstructorMatchesReconstruct(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, k := range kernelsUnderTest() {
		rec, err := k.NewReconstructor(8)
		if err != nil {
			t.Fatal(err)
		}
		var sig []float64
		for _, n := range []int{1, 5, 64, 17} {
			x := randAmps(r, n)
			want, err := Reconstruct(x, 8, k)
			if err != nil {
				t.Fatal(err)
			}

			rec.Start(sig)
			for _, a := range x {
				rec.Add(a)
			}
			if rec.Cycles() != n {
				t.Fatalf("Cycles() = %d, want %d", rec.Cycles(), n)
			}
			sig = rec.Finish()
			assertBitEqual(t, k, n, "Add", sig, want)

			rec.Start(sig)
			rec.AddChunk(x[:n/2])
			rec.AddChunk(x[n/2:])
			sig = rec.Finish()
			assertBitEqual(t, k, n, "AddChunk", sig, want)
		}
	}
}

func assertBitEqual(t *testing.T, k Kernel, n int, path string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("kernel %v n=%d %s: got %d samples, want %d", k.Kind, n, path, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kernel %v n=%d %s: sample %d = %g, want %g (bit-exact)", k.Kind, n, path, i, got[i], want[i])
		}
	}
}

func TestReconstructorErrors(t *testing.T) {
	if _, err := (Kernel{Kind: KernelExp}).NewReconstructor(8); err == nil {
		t.Error("invalid kernel accepted")
	}
	if _, err := DefaultKernel().NewReconstructor(0); err == nil {
		t.Error("zero rate accepted")
	}
}

// TestReconstructorSteadyStateAllocs pins the zero-allocation property of
// a warm streaming rerun — the reason Session can simulate thousands of
// traces without garbage.
func TestReconstructorSteadyStateAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := randAmps(r, 128)
	rec, err := DefaultKernel().NewReconstructor(16)
	if err != nil {
		t.Fatal(err)
	}
	rec.Start(nil)
	rec.AddChunk(x)
	sig := rec.Finish()

	allocs := testing.AllocsPerRun(20, func() {
		rec.Start(sig)
		rec.AddChunk(x)
		sig = rec.Finish()
	})
	if allocs > 0 {
		t.Errorf("steady-state reconstruction allocates %.1f times per trace, want 0", allocs)
	}

	// The per-cycle Add path (the form the streaming sink uses) must be
	// just as clean as the chunked one.
	allocs = testing.AllocsPerRun(20, func() {
		rec.Start(sig)
		for _, amp := range x {
			rec.Add(amp)
		}
		sig = rec.Finish()
	})
	if allocs > 0 {
		t.Errorf("steady-state per-amp reconstruction allocates %.1f times per trace, want 0", allocs)
	}
}

// TestReconstructIntoAllocatesOnlyTapTable pins ReconstructInto's
// documented exception: with a recycled destination it allocates exactly
// what sampling the kernel's tap table costs, and nothing per cycle.
func TestReconstructIntoAllocatesOnlyTapTable(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	x := randAmps(r, 128)
	k := DefaultKernel()
	sig, err := ReconstructInto(nil, x, 16, k)
	if err != nil {
		t.Fatal(err)
	}
	tapAllocs := testing.AllocsPerRun(20, func() {
		if _, err := k.Taps(16); err != nil {
			t.Fatal(err)
		}
	})
	allocs := testing.AllocsPerRun(20, func() {
		sig, err = ReconstructInto(sig, x, 16, k)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs > tapAllocs {
		t.Errorf("warm ReconstructInto allocates %.1f times per call, want at most the tap table's %.1f", allocs, tapAllocs)
	}
}
