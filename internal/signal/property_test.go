package signal

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFFTParseval: energy is preserved between time and frequency domains
// (Parseval's theorem), a strong whole-transform correctness property.
func TestFFTParseval(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func() bool {
		n := 1 << (3 + r.Intn(5)) // 8..128
		x := make([]complex128, n)
		timeEnergy := 0.0
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			timeEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		fx, err := FFT(x)
		if err != nil {
			return false
		}
		freqEnergy := 0.0
		for _, v := range fx {
			freqEnergy += cmplx.Abs(v) * cmplx.Abs(v)
		}
		freqEnergy /= float64(n)
		return math.Abs(timeEnergy-freqEnergy) < 1e-6*timeEnergy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestFFTLinearity: FFT(a·x + b·y) = a·FFT(x) + b·FFT(y).
func TestFFTLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(32))
	n := 64
	x := make([]complex128, n)
	y := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), 0)
		y[i] = complex(r.NormFloat64(), 0)
	}
	a, b := complex(2.5, 0), complex(-1.25, 0)
	mix := make([]complex128, n)
	for i := range mix {
		mix[i] = a*x[i] + b*y[i]
	}
	fx, _ := FFT(x)
	fy, _ := FFT(y)
	fmix, _ := FFT(mix)
	for i := range fmix {
		want := a*fx[i] + b*fy[i]
		if cmplx.Abs(fmix[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at bin %d", i)
		}
	}
}

// TestReconstructLinearity: reconstruction is linear in the amplitudes.
func TestReconstructLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	k := DefaultKernel()
	spc := 16
	f := func() bool {
		n := 3 + r.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		mix := make([]float64, n)
		a, b := r.NormFloat64(), r.NormFloat64()
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
			mix[i] = a*x[i] + b*y[i]
		}
		rx := MustReconstruct(x, spc, k)
		ry := MustReconstruct(y, spc, k)
		rmix := MustReconstruct(mix, spc, k)
		for i := range rmix {
			if math.Abs(rmix[i]-(a*rx[i]+b*ry[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestMovingAveragePreservesConstant: filters must not distort a flat
// signal.
func TestFiltersPreserveConstant(t *testing.T) {
	x := make([]float64, 40)
	for i := range x {
		x[i] = 3.5
	}
	ma, err := MovingAverage(x, 7)
	if err != nil {
		t.Fatal(err)
	}
	g, err := GaussianFilter(x, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(ma[i]-3.5) > 1e-12 {
			t.Fatalf("moving average distorted a constant at %d: %v", i, ma[i])
		}
		if math.Abs(g[i]-3.5) > 1e-9 {
			t.Fatalf("gaussian distorted a constant at %d: %v", i, g[i])
		}
	}
}

// TestCycleAccuracySymmetry: the metric is symmetric in its arguments.
func TestCycleAccuracySymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	a := make([]float64, 160)
	b := make([]float64, 160)
	for i := range a {
		a[i] = r.NormFloat64()
		b[i] = a[i] + 0.3*r.NormFloat64()
	}
	ab, err := CycleAccuracy(a, b, 16)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := CycleAccuracy(b, a, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ab-ba) > 1e-12 {
		t.Errorf("CycleAccuracy asymmetric: %v vs %v", ab, ba)
	}
}

// TestModuloAverageScaleInvariance: folding a scaled capture scales the
// folded waveform.
func TestModuloAverageScaleInvariance(t *testing.T) {
	r := rand.New(rand.NewSource(35))
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = math.Sin(2*math.Pi*float64(i)*0.013) + 0.1*r.NormFloat64()
	}
	scaled := make([]float64, len(samples))
	for i := range scaled {
		scaled[i] = 4 * samples[i]
	}
	a, err := ModuloAverage(samples, 1, 77, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ModuloAverage(scaled, 1, 77, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(b[i]-4*a[i]) > 1e-9 {
			t.Fatalf("fold not linear at bin %d: %v vs %v", i, b[i], 4*a[i])
		}
	}
}
