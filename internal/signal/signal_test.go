package signal

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKernelTapsRect(t *testing.T) {
	k := Kernel{Kind: KernelRect}
	taps, err := k.Taps(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(taps) != 8 {
		t.Fatalf("rect taps = %d, want 8", len(taps))
	}
	for _, v := range taps {
		if v != 1 {
			t.Fatal("rect taps must be 1")
		}
	}
}

func TestKernelTapsExpDecays(t *testing.T) {
	k := Kernel{Kind: KernelExp, Theta: 4, SupportCycles: 2}
	taps, err := k.Taps(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(taps) != 20 {
		t.Fatalf("taps = %d, want 20", len(taps))
	}
	for i := 1; i < len(taps); i++ {
		if taps[i] >= taps[i-1] {
			t.Fatal("exp kernel must strictly decay")
		}
	}
	if taps[0] != 1 {
		t.Errorf("taps[0] = %v, want 1", taps[0])
	}
}

func TestKernelTapsSinExpRings(t *testing.T) {
	k := DefaultKernel()
	taps, err := k.Taps(32)
	if err != nil {
		t.Fatal(err)
	}
	// Must cross zero (ringing) and decay overall.
	crossings := 0
	for i := 1; i < len(taps); i++ {
		if (taps[i-1] > 0) != (taps[i] > 0) {
			crossings++
		}
	}
	if crossings < 4 {
		t.Errorf("sin-exp kernel has %d zero crossings, want >= 4 (ringing)", crossings)
	}
	// Peak in the first cycle must dominate the second cycle's peak.
	max1, max2 := 0.0, 0.0
	for i, v := range taps {
		av := math.Abs(v)
		if i < 32 && av > max1 {
			max1 = av
		}
		if i >= 32 && i < 64 && av > max2 {
			max2 = av
		}
	}
	if max2 >= max1/2 {
		t.Errorf("kernel not decaying: peak1 %v, peak2 %v", max1, max2)
	}
}

func TestKernelErrors(t *testing.T) {
	if _, err := (Kernel{Kind: KernelExp}).Taps(4); err == nil {
		t.Error("exp kernel with Theta=0 accepted")
	}
	if _, err := (Kernel{Kind: KernelSinExp, Theta: 1}).Taps(4); err == nil {
		t.Error("sin-exp kernel with Period=0 accepted")
	}
	if _, err := DefaultKernel().Taps(0); err == nil {
		t.Error("0 samples/cycle accepted")
	}
	if _, err := (Kernel{Kind: KernelKind(99)}).Taps(4); err == nil {
		t.Error("unknown kind accepted")
	}
	if KernelRect.String() != "rect" || KernelSinExp.String() != "sin-exp" || KernelKind(9).String() != "unknown" {
		t.Error("KernelKind.String broken")
	}
}

func TestReconstructRectIsZOH(t *testing.T) {
	x := []float64{1, 2, 3}
	y, err := Reconstruct(x, 4, Kernel{Kind: KernelRect})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("ZOH[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestReconstructSuperposes(t *testing.T) {
	// With a 2-cycle support kernel, cycle n's tail lands in cycle n+1.
	k := Kernel{Kind: KernelExp, Theta: 1, SupportCycles: 2}
	spc := 4
	y1 := MustReconstruct([]float64{1, 0}, spc, k)
	y2 := MustReconstruct([]float64{0, 1}, spc, k)
	both := MustReconstruct([]float64{1, 1}, spc, k)
	for i := range both {
		if math.Abs(both[i]-(y1[i]+y2[i])) > 1e-12 {
			t.Fatalf("superposition violated at %d", i)
		}
	}
	if y1[spc] == 0 {
		t.Error("kernel tail should reach the next cycle")
	}
}

func TestMovingAverage(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y, err := MovingAverage(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Errorf("ma[%d] = %v, want %v", i, y[i], want[i])
		}
	}
	if _, err := MovingAverage(x, 2); err == nil {
		t.Error("even width accepted")
	}
	if _, err := MovingAverage(x, 0); err == nil {
		t.Error("zero width accepted")
	}
}

func TestGaussianFilterSmoothsImpulse(t *testing.T) {
	x := make([]float64, 21)
	x[10] = 1
	y, err := GaussianFilter(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y[10] >= 1 || y[10] <= 0 {
		t.Errorf("center = %v", y[10])
	}
	if y[8] <= 0 || y[8] >= y[10] {
		t.Errorf("shoulder = %v, center = %v", y[8], y[10])
	}
	// Symmetric response.
	if math.Abs(y[8]-y[12]) > 1e-12 {
		t.Error("asymmetric response")
	}
	// Sigma 0 is identity.
	id, _ := GaussianFilter(x, 0)
	for i := range x {
		if id[i] != x[i] {
			t.Fatal("sigma 0 not identity")
		}
	}
	if _, err := GaussianFilter(x, -1); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestRMSEAndEnergy(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 5}
	got, err := RMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(4.0 / 3)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE(a, b[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if Energy([]float64{3, 4}) != 25 {
		t.Error("Energy broken")
	}
}

func TestNCC(t *testing.T) {
	a := []float64{1, -2, 3}
	scaled := []float64{2, -4, 6}
	if ncc, _ := NCC(a, scaled); math.Abs(ncc-1) > 1e-12 {
		t.Errorf("NCC of scaled copies = %v", ncc)
	}
	neg := []float64{-1, 2, -3}
	if ncc, _ := NCC(a, neg); math.Abs(ncc+1) > 1e-12 {
		t.Errorf("NCC of negated = %v", ncc)
	}
	zero := []float64{0, 0, 0}
	if ncc, _ := NCC(zero, zero); ncc != 1 {
		t.Errorf("NCC of zeros = %v, want 1", ncc)
	}
	if ncc, _ := NCC(a, zero); ncc != 0 {
		t.Errorf("NCC with one zero = %v, want 0", ncc)
	}
	if _, err := NCC(a, a[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestNCCBoundsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		n := 2 + r.Intn(50)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = r.NormFloat64()
			b[i] = r.NormFloat64()
		}
		ncc, err := NCC(a, b)
		return err == nil && ncc >= -1.0000001 && ncc <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeMeanAbs(t *testing.T) {
	x := []float64{2, -4, 6}
	y := NormalizeMeanAbs(x)
	s := 0.0
	for _, v := range y {
		s += math.Abs(v)
	}
	if math.Abs(s/float64(len(y))-1) > 1e-12 {
		t.Errorf("mean abs = %v, want 1", s/float64(len(y)))
	}
	z := NormalizeMeanAbs([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero signal mangled")
	}
}

func TestResample(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y, err := Resample(x, 7)
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 0 || y[6] != 3 {
		t.Errorf("endpoints = %v, %v", y[0], y[6])
	}
	if math.Abs(y[3]-1.5) > 1e-12 {
		t.Errorf("midpoint = %v, want 1.5", y[3])
	}
	if _, err := Resample(nil, 3); err == nil {
		t.Error("empty accepted")
	}
	if _, err := Resample(x, 0); err == nil {
		t.Error("zero target accepted")
	}
	one, _ := Resample([]float64{5}, 3)
	if one[0] != 5 || one[2] != 5 {
		t.Error("single-sample resample broken")
	}
}

func TestAddScaled(t *testing.T) {
	got, err := AddScaled([]float64{1, 2}, 2, []float64{10, 20})
	if err != nil || got[0] != 21 || got[1] != 42 {
		t.Errorf("AddScaled = %v (%v)", got, err)
	}
	if _, err := AddScaled([]float64{1}, 1, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestModuloAverageRecoversPeriodicSignal(t *testing.T) {
	// A periodic signal sampled with an incommensurate rate plus noise:
	// folding must recover the one-period waveform.
	r := rand.New(rand.NewSource(2))
	seqPeriod := 1.0 // one sequence period
	bins := 50
	wave := func(phase float64) float64 {
		return math.Sin(2*math.Pi*phase) + 0.5*math.Cos(6*math.Pi*phase)
	}
	samplePeriod := 0.013717 // incommensurate with 1.0
	var samples []float64
	for m := 0; m < 40000; m++ {
		tm := float64(m) * samplePeriod
		phase := tm - math.Floor(tm/seqPeriod)*seqPeriod
		samples = append(samples, wave(phase)+0.3*r.NormFloat64())
	}
	got, err := ModuloAverage(samples, samplePeriod, seqPeriod, bins)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, bins)
	for i := range want {
		want[i] = wave((float64(i) + 0.5) / float64(bins))
	}
	ncc, err := NCC(got, want)
	if err != nil {
		t.Fatal(err)
	}
	if ncc < 0.98 {
		t.Errorf("folded waveform correlation = %v, want >= 0.98", ncc)
	}
}

func TestModuloAverageNoiseless(t *testing.T) {
	// Noiseless periodic data must be recovered (nearly) exactly.
	seqPeriod := 2.0
	bins := 20
	samplePeriod := 0.0101
	var samples []float64
	for m := 0; m < 20000; m++ {
		tm := float64(m) * samplePeriod
		phase := (tm - math.Floor(tm/seqPeriod)*seqPeriod) / seqPeriod
		samples = append(samples, math.Sin(2*math.Pi*phase))
	}
	got, err := ModuloAverage(samples, samplePeriod, seqPeriod, bins)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		phase := (float64(i) + 0.5) / float64(bins)
		if math.Abs(v-math.Sin(2*math.Pi*phase)) > 0.2 {
			t.Errorf("bin %d = %v, want ~%v", i, v, math.Sin(2*math.Pi*phase))
		}
	}
}

func TestModuloAverageErrors(t *testing.T) {
	if _, err := ModuloAverage(nil, 1, 1, 4); err == nil {
		t.Error("empty capture accepted")
	}
	if _, err := ModuloAverage([]float64{1}, 0, 1, 4); err == nil {
		t.Error("zero sample period accepted")
	}
	if _, err := ModuloAverage([]float64{1}, 1, 0, 4); err == nil {
		t.Error("zero sequence period accepted")
	}
	if _, err := ModuloAverage([]float64{1}, 1, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}

func TestModuloAverageFillsEmptyBins(t *testing.T) {
	// Commensurate sampling hits only a few bins; the rest interpolate.
	samples := []float64{1, 3, 1, 3, 1, 3}
	got, err := ModuloAverage(samples, 0.5, 1.0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range got {
		if v < 1 || v > 3 {
			t.Errorf("interpolated bin %v outside [1,3]", v)
		}
	}
}

// naiveDFT is the O(n²) reference implementation.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Rect(1, ang)
		}
		out[k] = s
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 16, 64} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		got, err := FFT(x)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveDFT(x)
		for i := range want {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	if _, err := FFT(make([]complex128, 3)); err == nil {
		t.Error("length 3 accepted")
	}
	if _, err := FFT(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	x := make([]complex128, 32)
	for i := range x {
		x[i] = complex(r.NormFloat64(), 0)
	}
	fx, err := FFT(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := IFFT(fx)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(back[i]-x[i]) > 1e-9 {
			t.Fatalf("IFFT(FFT(x))[%d] = %v, want %v", i, back[i], x[i])
		}
	}
}

func TestPowerSpectrumFindsTone(t *testing.T) {
	fs := 1000.0
	tone := 125.0
	n := 1024
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * tone * float64(i) / fs)
	}
	freqs, power, err := PowerSpectrum(x, fs)
	if err != nil {
		t.Fatal(err)
	}
	// Peak bin must be at the tone frequency.
	best := 0
	for i := range power {
		if power[i] > power[best] {
			best = i
		}
	}
	if math.Abs(freqs[best]-tone) > fs/float64(n) {
		t.Errorf("peak at %v Hz, want %v", freqs[best], tone)
	}
	// Parseval-ish: band energy around the tone dominates the total.
	be, err := BandEnergy(freqs, power, tone, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range power {
		total += p
	}
	if be < 0.9*total {
		t.Errorf("tone band has %v of %v total", be, total)
	}
}

func TestPowerSpectrumErrors(t *testing.T) {
	if _, _, err := PowerSpectrum(nil, 1); err == nil {
		t.Error("empty accepted")
	}
	if _, _, err := PowerSpectrum([]float64{1}, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestBandEnergyErrors(t *testing.T) {
	if _, err := BandEnergy([]float64{1}, []float64{1, 2}, 1, 1); err == nil {
		t.Error("mismatch accepted")
	}
	if _, err := BandEnergy([]float64{1}, []float64{1}, 100, 1); err == nil {
		t.Error("empty band accepted")
	}
	if _, err := BandEnergy([]float64{1}, []float64{1}, 1, -1); err == nil {
		t.Error("negative bandwidth accepted")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 5: 8, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestCycleAccuracyPerfectAndScaled(t *testing.T) {
	x := []float64{1, 2, -1, 0.5, 3, -2, 1, 1}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3 * v // pure scaling must not hurt the metric
	}
	acc, err := CycleAccuracy(x, y, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-1) > 1e-12 {
		t.Errorf("accuracy of scaled copy = %v, want 1", acc)
	}
}

func TestCycleAccuracyDetectsDivergence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	spc := 8
	cycles := 20
	a := make([]float64, spc*cycles)
	for i := range a {
		a[i] = r.NormFloat64()
	}
	b := append([]float64(nil), a...)
	// Corrupt cycles 5..9.
	for c := 5; c < 10; c++ {
		for s := 0; s < spc; s++ {
			b[c*spc+s] = r.NormFloat64()
		}
	}
	acc, err := CycleAccuracy(a, b, spc)
	if err != nil {
		t.Fatal(err)
	}
	if acc > 0.95 || acc < 0.5 {
		t.Errorf("accuracy with 25%% corrupted cycles = %v", acc)
	}
	per, err := PerCycleCorrelation(a, b, spc)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 5; c++ {
		if per[c] < 0.999 {
			t.Errorf("clean cycle %d correlation = %v", c, per[c])
		}
	}
	worst, at := 2.0, -1
	for c, v := range per {
		if v < worst {
			worst, at = v, c
		}
	}
	if at < 5 || at > 9 {
		t.Errorf("worst cycle at %d, want in [5,9]", at)
	}
}

func TestCycleAccuracyErrors(t *testing.T) {
	if _, err := CycleAccuracy([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := CycleAccuracy([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("spc=0 accepted")
	}
	if _, err := CycleAccuracy([]float64{1}, []float64{1}, 5); err == nil {
		t.Error("sub-cycle signal accepted")
	}
	if _, err := PerCycleCorrelation([]float64{1}, []float64{1, 2}, 1); err == nil {
		t.Error("PerCycleCorrelation mismatch accepted")
	}
	if _, err := PerCycleCorrelation([]float64{1}, []float64{1}, 0); err == nil {
		t.Error("PerCycleCorrelation spc=0 accepted")
	}
}

func BenchmarkFFT1024(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(r.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	x := make([]float64, 1000)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	k := DefaultKernel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Reconstruct(x, 16, k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCycleAccuracy(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	x := make([]float64, 16000)
	y := make([]float64, 16000)
	for i := range x {
		x[i] = r.NormFloat64()
		y[i] = x[i] + 0.1*r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CycleAccuracy(x, y, 16); err != nil {
			b.Fatal(err)
		}
	}
}
