package signal

import "fmt"

// CycleAccuracy implements the paper's accuracy metric (§V-A): both
// signals are normalized to a similar average level, divided into clock
// cycles, each cycle compared with normalized cross-correlation, and the
// per-cycle correlations averaged. The result is in [−1, 1]; the paper
// reports it as a percentage (94.1% on its benchmark).
func CycleAccuracy(real, sim []float64, samplesPerCycle int) (float64, error) {
	if samplesPerCycle < 1 {
		return 0, fmt.Errorf("signal: samplesPerCycle %d < 1", samplesPerCycle)
	}
	if len(real) != len(sim) {
		return 0, fmt.Errorf("signal: length mismatch %d vs %d", len(real), len(sim))
	}
	cycles := len(real) / samplesPerCycle
	if cycles == 0 {
		return 0, fmt.Errorf("signal: fewer samples (%d) than one cycle (%d)", len(real), samplesPerCycle)
	}
	a := NormalizeMeanAbs(real)
	b := NormalizeMeanAbs(sim)
	sum := 0.0
	for c := 0; c < cycles; c++ {
		lo, hi := c*samplesPerCycle, (c+1)*samplesPerCycle
		ncc, err := NCC(a[lo:hi], b[lo:hi])
		if err != nil {
			return 0, err
		}
		sum += ncc
	}
	return sum / float64(cycles), nil
}

// PerCycleCorrelation returns the cycle-by-cycle normalized
// cross-correlations (the series averaged by CycleAccuracy) for
// diagnosing where two signals diverge — the hardware-debugging use-case
// of §VI-B localizes defects by finding the cycles where this dips.
func PerCycleCorrelation(real, sim []float64, samplesPerCycle int) ([]float64, error) {
	if samplesPerCycle < 1 {
		return nil, fmt.Errorf("signal: samplesPerCycle %d < 1", samplesPerCycle)
	}
	if len(real) != len(sim) {
		return nil, fmt.Errorf("signal: length mismatch %d vs %d", len(real), len(sim))
	}
	cycles := len(real) / samplesPerCycle
	a := NormalizeMeanAbs(real)
	b := NormalizeMeanAbs(sim)
	out := make([]float64, cycles)
	for c := 0; c < cycles; c++ {
		lo, hi := c*samplesPerCycle, (c+1)*samplesPerCycle
		ncc, err := NCC(a[lo:hi], b[lo:hi])
		if err != nil {
			return nil, err
		}
		out[c] = ncc
	}
	return out, nil
}
