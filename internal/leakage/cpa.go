package leakage

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Correlation power/EM analysis (CPA): the classic key-recovery attack
// the paper's simulated signals make assessable at design time ("EMSim is
// NOT limited to a specific metric or analysis, and it can be used for
// ANY analysis based on the EM signal", §VI-A). For every candidate key
// the attacker predicts a leakage value per trace (typically the Hamming
// weight of an intermediate) and correlates the predictions against each
// trace sample; the right key correlates best.

// CPAResult ranks the candidate keys of one CPA run.
type CPAResult struct {
	// BestGuess is the candidate with the highest peak |correlation|.
	BestGuess int
	// PeakCorr[g] is candidate g's best |correlation| over all samples.
	PeakCorr []float64
	// PeakAt[g] is the sample index where candidate g peaked.
	PeakAt []int
}

// Rank returns candidate g's rank (0 = best) by peak correlation. The
// evaluation harness calls it with the true key byte — a deliberate
// known-key computation, which is why the secret-dependent comparison
// below is suppressed rather than fixed.
//
//emsim:ct
//emsim:secret g
func (r *CPAResult) Rank(g int) int {
	rank := 0
	for other, c := range r.PeakCorr {
		//emsim:ignore secretflow known-key evaluation: the harness deliberately ranks the true key byte against every candidate
		if other != g && c > r.PeakCorr[g] {
			rank++
		}
	}
	return rank
}

// Margin returns the ratio of the best candidate's peak to the runner-up's
// — a confidence measure.
func (r *CPAResult) Margin() float64 {
	sorted := append([]float64(nil), r.PeakCorr...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	if len(sorted) < 2 || sorted[1] == 0 {
		return math.Inf(1)
	}
	return sorted[0] / sorted[1]
}

// CPA correlates per-candidate leakage hypotheses against traces.
// hypotheses[t][g] is candidate g's predicted leakage for trace t; all
// traces must share a length. Constant hypothesis columns and constant
// samples contribute zero correlation; when every column on either side
// is constant there is nothing to correlate and CPA returns an error
// rather than an all-zero (and meaningless) ranking.
//
// CPA is a thin wrapper over CPAStream (one Add per trace, one
// Snapshot); the two-pass formulation survives as the test-only
// reference the equivalence fuzz target checks the stream against.
func CPA(traces [][]float64, hypotheses [][]float64) (*CPAResult, error) {
	n := len(traces)
	if n < 3 || n != len(hypotheses) {
		return nil, fmt.Errorf("leakage: CPA needs >= 3 matching traces/hypotheses (%d, %d)", n, len(hypotheses))
	}
	width := len(traces[0])
	for _, tr := range traces {
		if len(tr) != width {
			return nil, fmt.Errorf("leakage: ragged traces")
		}
	}
	nGuess := len(hypotheses[0])
	if nGuess == 0 {
		return nil, fmt.Errorf("leakage: no candidates")
	}
	for _, h := range hypotheses {
		if len(h) != nGuess {
			return nil, fmt.Errorf("leakage: ragged hypotheses")
		}
	}
	s := NewCPAStream(nGuess, 0, 0)
	for i := range traces {
		if err := s.Add(traces[i], hypotheses[i]); err != nil {
			return nil, err
		}
	}
	return s.Snapshot()
}

// HammingWeight returns the number of set bits in v — the standard CPA
// leakage model for a value moving through a bus or register. It is the
// one primitive hypothesis building feeds secrets through, and it is
// constant-time: a single popcount.
//
//emsim:ct
//emsim:secret v
func HammingWeight(v uint32) float64 { return float64(bits.OnesCount32(v)) }
