package leakage

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// errBoom is a sentinel a failing TraceSource returns so the tests can
// assert TVLA wraps (rather than swallows or rewrites) source errors.
var errBoom = errors.New("boom")

// TestTVLAEdgeCases pins TVLA's behavior on degenerate inputs: bad group
// sizes, constant traces (zero variance), NaN samples, empty traces and
// failing sources. These are contracts callers rely on — in particular
// that constant traces never manufacture NaN t statistics, and that NaN
// samples never count as leaks.
func TestTVLAEdgeCases(t *testing.T) {
	var fixed [16]byte
	fixed[0] = 0xAA // distinguishable from the (all-but-certainly different) random inputs

	isFixed := func(input [16]byte) bool { return input == fixed }
	constant := func(val float64, n int) []float64 {
		tr := make([]float64, n)
		for i := range tr {
			tr[i] = val
		}
		return tr
	}

	cases := []struct {
		name           string
		src            TraceSource
		tracesPerGroup int
		wantErr        string // substring of the error, "" for success
		wantErrIs      error  // errors.Is target, nil to skip
		check          func(*testing.T, *TVLAResult)
	}{
		{
			name:           "one trace per group rejected",
			src:            func([16]byte) ([]float64, error) { return []float64{1}, nil },
			tracesPerGroup: 1,
			wantErr:        ">= 2 traces per group",
		},
		{
			name:           "zero traces per group rejected",
			src:            func([16]byte) ([]float64, error) { return []float64{1}, nil },
			tracesPerGroup: 0,
			wantErr:        ">= 2 traces per group",
		},
		{
			name:           "empty traces rejected",
			src:            func([16]byte) ([]float64, error) { return nil, nil },
			tracesPerGroup: 3,
			wantErr:        "empty traces",
		},
		{
			name: "all-constant identical traces: t exactly zero, never NaN",
			src: func([16]byte) ([]float64, error) {
				return constant(0.25, 8), nil
			},
			tracesPerGroup: 5,
			check: func(t *testing.T, res *TVLAResult) {
				for i, v := range res.T {
					if v != 0 {
						t.Errorf("t[%d] = %v, want exactly 0 for constant identical groups", i, v)
					}
				}
				if res.Leaks() || len(res.LeakyPoints) != 0 {
					t.Errorf("constant identical traces flagged leaky: %v", res.LeakyPoints)
				}
				if res.MaxAbsT != 0 {
					t.Errorf("MaxAbsT = %v, want 0", res.MaxAbsT)
				}
			},
		},
		{
			name: "constant but group-distinct traces: t is +-Inf, not NaN",
			src: func(input [16]byte) ([]float64, error) {
				if isFixed(input) {
					return constant(1, 6), nil
				}
				return constant(2, 6), nil
			},
			tracesPerGroup: 4,
			check: func(t *testing.T, res *TVLAResult) {
				for i, v := range res.T {
					if !math.IsInf(v, -1) {
						t.Errorf("t[%d] = %v, want -Inf (fixed mean 1 < random mean 2, zero variance)", i, v)
					}
				}
				if !res.Leaks() {
					t.Error("infinitely separated groups not flagged as leaking")
				}
				if !math.IsInf(res.MaxAbsT, 1) {
					t.Errorf("MaxAbsT = %v, want +Inf", res.MaxAbsT)
				}
			},
		},
		{
			name: "NaN sample yields NaN t but never a leak",
			src: func([16]byte) ([]float64, error) {
				tr := constant(0.5, 4)
				tr[2] = math.NaN()
				return tr, nil
			},
			tracesPerGroup: 3,
			check: func(t *testing.T, res *TVLAResult) {
				if !math.IsNaN(res.T[2]) {
					t.Errorf("t[2] = %v, want NaN to propagate from the NaN sample", res.T[2])
				}
				for _, i := range []int{0, 1, 3} {
					if res.T[i] != 0 {
						t.Errorf("t[%d] = %v, want 0 at the constant samples", i, res.T[i])
					}
				}
				if res.Leaks() || len(res.LeakyPoints) != 0 {
					t.Errorf("NaN t counted as a leak: %v", res.LeakyPoints)
				}
				if res.MaxAbsT != 0 {
					t.Errorf("MaxAbsT = %v, want 0 (NaN must not poison the max)", res.MaxAbsT)
				}
			},
		},
		{
			name: "ragged traces truncate to shortest, stats stay finite",
			src: func(input [16]byte) ([]float64, error) {
				if isFixed(input) {
					return constant(0.5, 3), nil
				}
				return constant(0.5, 9), nil
			},
			tracesPerGroup: 2,
			check: func(t *testing.T, res *TVLAResult) {
				if len(res.T) != 3 {
					t.Fatalf("t-trace length %d, want 3 (shortest trace)", len(res.T))
				}
				if res.Traces != 2 {
					t.Errorf("Traces = %d, want 2", res.Traces)
				}
			},
		},
		{
			name: "fixed-source error wrapped",
			src: func(input [16]byte) ([]float64, error) {
				if isFixed(input) {
					return nil, errBoom
				}
				return constant(0, 4), nil
			},
			tracesPerGroup: 2,
			wantErr:        "fixed trace 0",
			wantErrIs:      errBoom,
		},
		{
			name: "random-source error wrapped",
			src: func(input [16]byte) ([]float64, error) {
				if isFixed(input) {
					return constant(0, 4), nil
				}
				return nil, errBoom
			},
			tracesPerGroup: 2,
			wantErr:        "random trace 0",
			wantErrIs:      errBoom,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := TVLA(tc.src, fixed, rand.New(rand.NewSource(9)), tc.tracesPerGroup)
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("want error containing %q, got result %+v", tc.wantErr, res)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				if tc.wantErrIs != nil && !errors.Is(err, tc.wantErrIs) {
					t.Fatalf("error %q does not wrap the source error", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			tc.check(t, res)
		})
	}
}
