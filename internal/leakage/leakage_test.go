package leakage

import (
	"errors"
	"math/rand"
	"testing"

	"emsim/internal/cpu"
	"emsim/internal/device"
)

func TestSavatProgramRuns(t *testing.T) {
	for a := SavatInst(0); a < NumSavatInsts; a++ {
		for b := SavatInst(0); b < NumSavatInsts; b++ {
			words, err := SavatProgram(a, b, 4, 4)
			if err != nil {
				t.Fatalf("%v/%v: %v", a, b, err)
			}
			c := cpu.MustNew(cpu.DefaultConfig())
			if _, err := c.RunProgram(words); err != nil {
				t.Fatalf("%v/%v does not run: %v", a, b, err)
			}
		}
	}
}

func TestSavatProgramErrors(t *testing.T) {
	if _, err := SavatProgram(ADD, NOP, 0, 4); err == nil {
		t.Error("perHalf=0 accepted")
	}
	if _, err := SavatProgram(ADD, NOP, 4, 0); err == nil {
		t.Error("periods=0 accepted")
	}
}

func TestSavatLDMAlwaysMisses(t *testing.T) {
	words, err := SavatProgram(LDM, NOP, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.MustNew(cpu.DefaultConfig())
	if _, err := c.RunProgram(words); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	// 64 LDM loads plus the warm-up access; all LDM loads must miss.
	if st.CacheMisses < 64 {
		t.Errorf("only %d misses for 64 LDM loads", st.CacheMisses)
	}
}

func TestSavatLDCAlwaysHits(t *testing.T) {
	words, err := SavatProgram(LDC, NOP, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.MustNew(cpu.DefaultConfig())
	if _, err := c.RunProgram(words); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.CacheMisses > 1 { // only the warm-up access may miss
		t.Errorf("%d misses in an LDC benchmark", st.CacheMisses)
	}
	if st.CacheHits < 64 {
		t.Errorf("only %d hits for 64 LDC loads", st.CacheHits)
	}
}

// measureSavat runs the microbenchmark on a device and computes SAVAT.
func measureSavat(t *testing.T, dev *device.Device, a, b SavatInst) float64 {
	t.Helper()
	words, err := SavatProgram(a, b, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr, sig, err := dev.MeasureAveraged(words, 10)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Savat(sig, dev.SamplesPerCycle(), len(tr), 16)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestSavatDiagonalNearZero(t *testing.T) {
	// A-vs-A alternation has no signal at the alternation frequency;
	// A-vs-B with very different events has a strong one (Table II).
	dev := device.MustNew(device.DefaultOptions())
	same := measureSavat(t, dev, ADD, ADD)
	diff := measureSavat(t, dev, LDM, NOP)
	if diff < 10*same {
		t.Errorf("SAVAT(LDM,NOP)=%g not ≫ SAVAT(ADD,ADD)=%g", diff, same)
	}
}

func TestSavatOrderingMatchesTableII(t *testing.T) {
	// The paper's Table II: LDM-vs-X values dominate; ADD-vs-NOP is tiny.
	dev := device.MustNew(device.DefaultOptions())
	ldmNop := measureSavat(t, dev, LDM, NOP)
	addNop := measureSavat(t, dev, ADD, NOP)
	if ldmNop < 2.5*addNop {
		t.Errorf("SAVAT(LDM,NOP)=%g should dominate SAVAT(ADD,NOP)=%g", ldmNop, addNop)
	}
}

func TestSavatErrors(t *testing.T) {
	if _, err := Savat(nil, 0, 1, 1); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := Savat([]float64{}, 16, 10, 2); err == nil {
		t.Error("empty signal accepted")
	}
}

func TestTVLADetectsDataDependentSource(t *testing.T) {
	// A synthetic source whose sample 7 depends on input byte 0 leaks; the
	// t-test must find it.
	rng := rand.New(rand.NewSource(3))
	noise := rand.New(rand.NewSource(4))
	src := func(input [16]byte) ([]float64, error) {
		tr := make([]float64, 32)
		for i := range tr {
			tr[i] = noise.NormFloat64()
		}
		tr[7] += float64(input[0]) / 64
		return tr, nil
	}
	var fixed [16]byte
	fixed[0] = 255
	res, err := TVLA(src, fixed, rng, 80)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Leaks() {
		t.Fatal("leak not detected")
	}
	found := false
	for _, p := range res.LeakyPoints {
		if p == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("leak at 7 not flagged; points = %v", res.LeakyPoints)
	}
	if res.MaxAbsT <= 4.5 {
		t.Errorf("MaxAbsT = %v", res.MaxAbsT)
	}
	if res.Traces != 80 {
		t.Errorf("Traces = %d", res.Traces)
	}
}

func TestTVLANoLeakOnIndependentSource(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	noise := rand.New(rand.NewSource(6))
	src := func(input [16]byte) ([]float64, error) {
		tr := make([]float64, 32)
		for i := range tr {
			tr[i] = noise.NormFloat64()
		}
		return tr, nil
	}
	var fixed [16]byte
	res, err := TVLA(src, fixed, rng, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LeakyPoints) > 1 {
		t.Errorf("false positives: %v", res.LeakyPoints)
	}
}

func TestTVLATruncatesRaggedTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	noise := rand.New(rand.NewSource(8))
	n := 0
	src := func(input [16]byte) ([]float64, error) {
		n++
		tr := make([]float64, 30+n%3) // varying lengths
		for i := range tr {
			tr[i] = noise.NormFloat64()
		}
		return tr, nil
	}
	var fixed [16]byte
	res, err := TVLA(src, fixed, rng, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.T) != 30 {
		t.Errorf("t-trace length %d, want 30 (min)", len(res.T))
	}
}

func TestTVLAErrors(t *testing.T) {
	src := func([16]byte) ([]float64, error) { return []float64{1}, nil }
	if _, err := TVLA(src, [16]byte{}, rand.New(rand.NewSource(1)), 1); err == nil {
		t.Error("1 trace per group accepted")
	}
	empty := func([16]byte) ([]float64, error) { return nil, nil }
	if _, err := TVLA(empty, [16]byte{}, rand.New(rand.NewSource(1)), 3); err == nil {
		t.Error("empty traces accepted")
	}
}

func TestSavatInstString(t *testing.T) {
	if LDM.String() != "LDM" || DIV.String() != "DIV" || SavatInst(9).String() != "savat(9)" {
		t.Error("SavatInst.String broken")
	}
}

func BenchmarkSavatProgram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := SavatProgram(LDM, MUL, 6, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSavatMatrixErrors(t *testing.T) {
	okRun := func(words []uint32) ([]float64, int, error) {
		sig := make([]float64, 64*16)
		return sig, 64, nil
	}
	// Bad program geometry fails before any cell is measured.
	if _, err := SavatMatrix(okRun, 16, 0, 2); err == nil {
		t.Error("perHalf=0 accepted")
	}
	if _, err := SavatMatrix(okRun, 16, 16, 2); err == nil {
		t.Error("perHalf beyond the miss-stride window accepted")
	}
	// A failing measurement aborts the sweep with the cell named.
	boom := errors.New("probe fell off")
	failRun := func(words []uint32) ([]float64, int, error) { return nil, 0, boom }
	if _, err := SavatMatrix(failRun, 16, 4, 2); err == nil || !errors.Is(err, boom) {
		t.Errorf("measurement error not propagated: %v", err)
	}
	// A signal too short for the alternation periods fails in Savat.
	shortRun := func(words []uint32) ([]float64, int, error) {
		return make([]float64, 16), 1, nil
	}
	if _, err := SavatMatrix(shortRun, 16, 4, 2); err == nil {
		t.Error("too-short signal accepted")
	}
}
