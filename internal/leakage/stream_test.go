package leakage

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"emsim/internal/stats"
)

// gridTraces builds deterministic traces on a dyadic grid (multiples of
// 0.25) so batch/stream variance decisions never diverge on rounding.
func gridTraces(seed int64, n, width int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		tr := make([]float64, width)
		for c := range tr {
			tr[c] = float64(rng.Intn(65)-32) * 0.25
		}
		out[i] = tr
	}
	return out
}

// approxCorr compares correlation magnitudes across the two
// formulations: relative tolerance plus an absolute floor (|corr| <= 1,
// so the floor is meaningful).
func approxCorr(a, b float64) bool {
	return stats.ApproxEqual(a, b, 1e-6) || math.Abs(a-b) <= 1e-9
}

// TestTVLAStreamMatchesBatch drives the same source through the batch
// TVLA wrapper and a hand-stepped TVLAStream with intermediate
// snapshots, checking the final results agree and the sweep probes stay
// consistent with a two-pass TVLATrace at each prefix.
func TestTVLAStreamMatchesBatch(t *testing.T) {
	const groups = 10
	fixedGrp := gridTraces(21, groups, 9)
	randGrp := gridTraces(22, groups, 9)
	st := NewTVLAStream()
	for i := 0; i < groups; i++ {
		if err := st.AddFixed(fixedGrp[i]); err != nil {
			t.Fatal(err)
		}
		if err := st.AddRandom(randGrp[i]); err != nil {
			t.Fatal(err)
		}
		if i+1 < 2 {
			continue
		}
		peak, err := st.MaxAbsT()
		if err != nil {
			t.Fatalf("MaxAbsT at %d: %v", i+1, err)
		}
		want, err := stats.TVLATrace(fixedGrp[:i+1], randGrp[:i+1])
		if err != nil {
			t.Fatal(err)
		}
		wantPeak := 0.0
		for _, v := range want {
			if a := math.Abs(v); a > wantPeak {
				wantPeak = a
			}
		}
		if !approxCorr(peak, wantPeak) && !stats.ApproxEqual(peak, wantPeak, stats.DefaultRelTol) {
			t.Fatalf("prefix %d: stream MaxAbsT %v, batch %v", i+1, peak, wantPeak)
		}
	}
	res, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces != groups {
		t.Errorf("Traces = %d, want %d", res.Traces, groups)
	}
	if len(res.T) != 9 {
		t.Errorf("t-trace width %d, want 9", len(res.T))
	}
	if f, r := st.Counts(); f != groups || r != groups {
		t.Errorf("Counts = (%d, %d)", f, r)
	}
	if st.TruncatedSamples() != 0 {
		t.Errorf("TruncatedSamples = %d on equal-length traces", st.TruncatedSamples())
	}
}

// TestCPAStreamIdentityMatchesReference checks keep-everything streaming
// against the two-pass reference at several prefixes.
func TestCPAStreamIdentityMatchesReference(t *testing.T) {
	const n, width, guesses = 40, 15, 6
	traces := gridTraces(23, n, width)
	hyps := gridTraces(24, n, guesses)
	// Plant a leak so the ranking is meaningful.
	for i := range traces {
		traces[i][7] = hyps[i][2] * 0.5
	}
	s := NewCPAStream(guesses, 0, 0)
	for i := 0; i < n; i++ {
		if err := s.Add(traces[i], hyps[i]); err != nil {
			t.Fatal(err)
		}
		if i+1 < 3 || (i+1)%8 != 0 && i+1 != n {
			continue
		}
		got, err := s.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot at %d: %v", i+1, err)
		}
		want, corr, err := referenceCPA(traces[:i+1], hyps[:i+1])
		if err != nil {
			t.Fatal(err)
		}
		for g := 0; g < guesses; g++ {
			if !approxCorr(got.PeakCorr[g], want.PeakCorr[g]) {
				t.Fatalf("prefix %d guess %d: stream peak %v, reference %v", i+1, g, got.PeakCorr[g], want.PeakCorr[g])
			}
			if got.PeakCorr[g] > 1e-6 && !approxCorr(corr[g][got.PeakAt[g]], want.PeakCorr[g]) {
				t.Fatalf("prefix %d guess %d: stream peak position %d does not achieve the reference peak (%v vs %v)",
					i+1, g, got.PeakAt[g], corr[g][got.PeakAt[g]], want.PeakCorr[g])
			}
		}
		if got.BestGuess != want.BestGuess {
			t.Fatalf("prefix %d: stream best %d, reference best %d", i+1, got.BestGuess, want.BestGuess)
		}
	}
	if s.Traces() != n || s.Samples() != width || s.Points() != width {
		t.Errorf("Traces/Samples/Points = %d/%d/%d", s.Traces(), s.Samples(), s.Points())
	}
}

// TestCPAStreamPilotPoI pins the points-of-interest mode: the pilot
// prefix selects the highest-variance columns, the replayed + streamed
// result still recovers the planted leak, and PeakAt maps back to the
// original column index.
func TestCPAStreamPilotPoI(t *testing.T) {
	const n, width, guesses, points, pilot = 48, 30, 4, 5, 12
	traces := gridTraces(25, n, width)
	hyps := gridTraces(26, n, guesses)
	// Damp every column, then plant a strong leak at column 19 so the
	// pilot's variance ranking must keep it.
	for i := range traces {
		for c := range traces[i] {
			traces[i][c] *= 0.05
		}
		traces[i][19] = hyps[i][1] * 2
	}
	s := NewCPAStream(guesses, points, pilot)
	for i := 0; i < n; i++ {
		if err := s.Add(traces[i], hyps[i]); err != nil {
			t.Fatal(err)
		}
		if i+1 == pilot/2 && s.Points() != 0 {
			t.Errorf("Points = %d while piloting, want 0", s.Points())
		}
	}
	if s.Points() != points {
		t.Errorf("Points = %d after pilot, want %d", s.Points(), points)
	}
	res, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if res.BestGuess != 1 {
		t.Fatalf("best guess %d, want 1 (planted)", res.BestGuess)
	}
	if res.PeakAt[1] != 19 {
		t.Errorf("peak at %d, want the original column 19", res.PeakAt[1])
	}
	if res.PeakCorr[1] < 0.95 {
		t.Errorf("planted peak %v, want ~1", res.PeakCorr[1])
	}
}

// TestCPAStreamAllConstantPilot pins the selection failure: a pilot of
// constant traces has no signal, and the stream says so with the same
// diagnostic the batch path uses.
func TestCPAStreamAllConstantPilot(t *testing.T) {
	s := NewCPAStream(2, 3, 4)
	flat := []float64{1, 1, 1}
	for i := 0; i < 3; i++ {
		if err := s.Add(flat, []float64{float64(i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := s.Snapshot()
	if err == nil || !strings.Contains(err.Error(), "every trace column is constant") {
		t.Fatalf("constant pilot error = %v", err)
	}
	// The failure is sticky: further Adds refuse too.
	if err := s.Add(flat, []float64{9, 1}); err == nil {
		t.Error("Add after selection failure succeeded")
	}
}

// TestCPAStreamTruncation pins the shortest-trace rule in both modes: a
// short trace narrows the live width (identity) or drops the trailing
// points of interest it can no longer supply (points mode).
func TestCPAStreamTruncation(t *testing.T) {
	traces := gridTraces(27, 8, 20)
	hyps := gridTraces(28, 8, 2)
	t.Run("identity", func(t *testing.T) {
		s := NewCPAStream(2, 0, 0)
		for i := range traces {
			tr := traces[i]
			if i == 5 {
				tr = tr[:11]
			}
			if err := s.Add(tr, hyps[i]); err != nil {
				t.Fatal(err)
			}
		}
		if s.Samples() != 11 || s.TruncatedSamples() != 9 {
			t.Fatalf("Samples/Truncated = %d/%d, want 11/9", s.Samples(), s.TruncatedSamples())
		}
		res, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for g, at := range res.PeakAt {
			if at >= 11 {
				t.Errorf("guess %d peak at %d, beyond the truncated width", g, at)
			}
		}
	})
	t.Run("points", func(t *testing.T) {
		s := NewCPAStream(2, 6, 4)
		for i := range traces {
			tr := traces[i]
			if i == 6 {
				tr = tr[:5] // shorter than some selected columns
			}
			if err := s.Add(tr, hyps[i]); err != nil {
				t.Fatal(err)
			}
		}
		if s.Points() > 6 {
			t.Fatalf("Points = %d, want <= 6", s.Points())
		}
		res, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		for g, at := range res.PeakAt {
			if res.PeakCorr[g] > 0 && at >= 5 {
				t.Errorf("guess %d peak at %d, beyond the surviving columns", g, at)
			}
		}
	})
}

// TestCPATieBreaking pins deterministic tie handling end to end when
// several guesses share the top correlation: duplicated hypothesis
// columns produce bit-identical accumulator state, so the tie is exact.
// The lowest guess index must win BestGuess, the tied guesses share
// rank 0, and the margin collapses to 1 — through both the batch
// wrapper and a hand-stepped stream.
func TestCPATieBreaking(t *testing.T) {
	const n = 16
	traces := gridTraces(29, n, 6)
	hyps := make([][]float64, n)
	for i := range hyps {
		v := traces[i][2] // guesses 1 and 3 both track column 2 exactly
		hyps[i] = []float64{0.25, v, float64(i % 2), v}
	}
	check := func(t *testing.T, res *CPAResult) {
		t.Helper()
		if res.BestGuess != 1 {
			t.Errorf("BestGuess = %d, want 1 (lowest tied index)", res.BestGuess)
		}
		if res.PeakCorr[1] != res.PeakCorr[3] {
			t.Fatalf("tied peaks differ: %v vs %v", res.PeakCorr[1], res.PeakCorr[3])
		}
		if r := res.Rank(1); r != 0 {
			t.Errorf("Rank(1) = %d, want 0", r)
		}
		if r := res.Rank(3); r != 0 {
			t.Errorf("Rank(3) = %d, want 0 (ties do not outrank each other)", r)
		}
		if m := res.Margin(); m != 1 {
			t.Errorf("Margin = %v, want exactly 1 on a shared top correlation", m)
		}
		if res.PeakAt[1] != res.PeakAt[3] {
			t.Errorf("tied guesses peak at %d vs %d, want the same column", res.PeakAt[1], res.PeakAt[3])
		}
	}
	t.Run("batch", func(t *testing.T) {
		res, err := CPA(traces, hyps)
		if err != nil {
			t.Fatal(err)
		}
		check(t, res)
	})
	t.Run("stream", func(t *testing.T) {
		s := NewCPAStream(4, 0, 0)
		for i := range traces {
			if err := s.Add(traces[i], hyps[i]); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		check(t, res)
	})
}

// TestCPAStreamErrors pins the stream-specific diagnostics.
func TestCPAStreamErrors(t *testing.T) {
	s := NewCPAStream(2, 0, 0)
	if err := s.Add([]float64{1}, []float64{1, 2, 3}); err == nil || !strings.Contains(err.Error(), "hypothesis row has 3 candidates, want 2") {
		t.Errorf("hyp mismatch error = %v", err)
	}
	if _, err := s.Snapshot(); err == nil || !strings.Contains(err.Error(), ">= 3 traces") {
		t.Errorf("too-few error = %v", err)
	}
}

// fuzzValue maps one fuzz byte onto the test value domain: mostly a
// dyadic grid (multiples of 0.25, exactly representable, so batch and
// stream constant/variance decisions cannot diverge on rounding) plus
// NaN and ±Inf specials.
func fuzzValue(b byte) float64 {
	switch b {
	case 255:
		return math.NaN()
	case 254:
		return math.Inf(1)
	case 253:
		return math.Inf(-1)
	default:
		return float64(int(b%129)-64) * 0.25
	}
}

// fuzzEqual is the equivalence comparator of FuzzStreamEquivalence:
// ApproxEqual with an absolute floor for finite values; NaN matches
// NaN, and any non-finite pair is accepted (streamed Inf/NaN arithmetic
// can settle on a different non-finite than two-pass arithmetic, and
// both mean "no usable statistic here").
func fuzzEqual(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return !(isFinite(a) || isFinite(b))
	}
	return stats.ApproxEqual(a, b, 1e-6) || math.Abs(a-b) <= 1e-9
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// FuzzStreamEquivalence proves the streaming accumulators match the
// two-pass formulations on adversarial inputs: the same byte-derived
// trace matrix (NaN/Inf-seeded) goes through stats.TVLATrace vs
// TVLAStream and through the two-pass referenceCPA vs the streaming
// CPA wrapper, and the results must agree within fuzzEqual.
func FuzzStreamEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(6), uint8(4), uint8(3))
	f.Add([]byte{255, 0, 254, 9, 253, 17}, uint8(8), uint8(3), uint8(2))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7}, uint8(4), uint8(5), uint8(1))
	f.Add([]byte{}, uint8(3), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, nb, wb, gb uint8) {
		n := 3 + int(nb)%14 // 3..16 traces per side
		width := 1 + int(wb)%10
		guesses := 1 + int(gb)%6
		next := func() float64 {
			if len(data) == 0 {
				return 0
			}
			v := fuzzValue(data[0])
			data = append(data[1:], data[0]) // rotate so short inputs still fill
			return v
		}
		matrix := func(rows, cols int) [][]float64 {
			m := make([][]float64, rows)
			for i := range m {
				r := make([]float64, cols)
				for c := range r {
					r[c] = next()
				}
				m[i] = r
			}
			return m
		}

		// ---- TVLA: two-pass t trace vs streaming accumulator ----
		fixed := matrix(n, width)
		random := matrix(n, width)
		want, wantErr := stats.TVLATrace(fixed, random)
		st := NewTVLAStream()
		for i := 0; i < n; i++ {
			if err := st.AddFixed(fixed[i]); err != nil {
				t.Fatal(err)
			}
			if err := st.AddRandom(random[i]); err != nil {
				t.Fatal(err)
			}
		}
		got, gotErr := st.Snapshot()
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("TVLA error mismatch: batch %v, stream %v", wantErr, gotErr)
		}
		if wantErr == nil {
			if len(got.T) != len(want) {
				t.Fatalf("TVLA width mismatch: stream %d, batch %d", len(got.T), len(want))
			}
			for c := range want {
				if !fuzzEqual(got.T[c], want[c]) {
					t.Fatalf("TVLA t[%d]: stream %v, batch %v", c, got.T[c], want[c])
				}
			}
		}

		// ---- CPA: two-pass reference vs streaming wrapper ----
		traces := matrix(n, width)
		hyps := matrix(n, guesses)
		refRes, refCorr, refErr := referenceCPA(traces, hyps)
		cpaRes, cpaErr := CPA(traces, hyps)
		if (refErr == nil) != (cpaErr == nil) {
			t.Fatalf("CPA error mismatch: reference %v, stream %v", refErr, cpaErr)
		}
		if refErr != nil {
			return
		}
		for g := 0; g < guesses; g++ {
			if !fuzzEqual(cpaRes.PeakCorr[g], refRes.PeakCorr[g]) {
				t.Fatalf("CPA guess %d: stream peak %v, reference %v", g, cpaRes.PeakCorr[g], refRes.PeakCorr[g])
			}
			// Under exact ties the two formulations may pick different
			// columns; the chosen column must still achieve the peak.
			if cpaRes.PeakCorr[g] > 1e-6 && !fuzzEqual(refCorr[g][cpaRes.PeakAt[g]], refRes.PeakCorr[g]) {
				t.Fatalf("CPA guess %d: stream position %d scores %v in the reference, peak is %v",
					g, cpaRes.PeakAt[g], refCorr[g][cpaRes.PeakAt[g]], refRes.PeakCorr[g])
			}
		}
	})
}
