// Package leakage implements the two side-channel leakage metrics of the
// paper's use-case section (§VI-A): Test Vector Leakage Assessment (TVLA,
// fixed-vs-random Welch t-test over traces) and the Signal Available to
// Attacker (SAVAT) metric of Callan et al. (alternating-instruction
// microbenchmark plus spectral spike energy). Both run identically on
// measured and simulated signals — that interchangeability is EMSim's
// central claim.
package leakage

import (
	"fmt"
	"math"
	"math/rand"

	"emsim/internal/asm"
	"emsim/internal/isa"
	"emsim/internal/signal"
	"emsim/internal/stats"
)

// TraceSource produces one side-channel trace for one input block. A
// device-backed source captures a real (noisy) measurement (see
// Device.CaptureSource in internal/device); a model-backed source
// simulates the signal, typically through a reusable core.Session via
// SimSource (adding its own measurement-noise model so the t-test
// statistics are comparable).
type TraceSource func(input [16]byte) ([]float64, error)

// Simulator yields one simulated signal per program image. A
// *core.Session satisfies it; because TVLA campaigns call the source
// thousands of times, a session-backed simulator (one resettable core,
// reused buffers) is strongly preferred over spinning up a fresh
// simulation pipeline per trace.
type Simulator interface {
	SimulateProgram(words []uint32) ([]float64, error)
}

// SimSource builds a model-backed TraceSource: build maps each input
// block to a program image, sim renders its signal, and noise — when
// non-nil — returns an additive per-sample measurement-noise term so the
// simulated t-test statistics are comparable to measured ones.
func SimSource(sim Simulator, build func(input [16]byte) ([]uint32, error), noise func() float64) TraceSource {
	return func(input [16]byte) ([]float64, error) {
		words, err := build(input)
		if err != nil {
			return nil, err
		}
		sig, err := sim.SimulateProgram(words)
		if err != nil {
			return nil, err
		}
		if noise != nil {
			for i := range sig {
				sig[i] += noise()
			}
		}
		return sig, nil
	}
}

// TVLAResult is a fixed-vs-random leakage assessment.
type TVLAResult struct {
	// T is the per-sample Welch t statistic.
	T []float64
	// LeakyPoints are the sample indices where |t| exceeds the 4.5
	// threshold.
	LeakyPoints []int
	// MaxAbsT is the peak |t| over the trace.
	MaxAbsT float64
	// Traces is the number of traces per group.
	Traces int
}

// TVLA runs the fixed-vs-random protocol: tracesPerGroup traces with the
// fixed input and tracesPerGroup traces with fresh random inputs, then a
// per-sample Welch t-test. Traces whose lengths differ (data-dependent
// cache timing) are truncated to the shortest.
//
// TVLA is a thin wrapper over TVLAStream — each trace is folded into the
// streaming accumulator the moment the source returns it and never
// buffered; equivalence with the two-pass stats.TVLATrace is pinned by
// tests and the FuzzStreamEquivalence target.
func TVLA(src TraceSource, fixed [16]byte, rng *rand.Rand, tracesPerGroup int) (*TVLAResult, error) {
	if tracesPerGroup < 2 {
		return nil, fmt.Errorf("leakage: TVLA needs >= 2 traces per group (got %d)", tracesPerGroup)
	}
	st := NewTVLAStream()
	for i := 0; i < tracesPerGroup; i++ {
		tf, err := src(fixed)
		if err != nil {
			return nil, fmt.Errorf("leakage: fixed trace %d: %w", i, err)
		}
		var input [16]byte
		rng.Read(input[:])
		tr, err := src(input)
		if err != nil {
			return nil, fmt.Errorf("leakage: random trace %d: %w", i, err)
		}
		if err := st.AddFixed(tf); err != nil {
			return nil, err
		}
		if err := st.AddRandom(tr); err != nil {
			return nil, err
		}
	}
	if st.Samples() == 0 {
		return nil, fmt.Errorf("leakage: empty traces")
	}
	return st.Snapshot()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Leaks reports whether the assessment crossed the TVLA threshold
// anywhere.
func (r *TVLAResult) Leaks() bool { return len(r.LeakyPoints) > 0 }

// SavatInst enumerates the instruction events of the paper's Table II.
type SavatInst int

// The six Table II events. LDM is a load served by memory (cache miss),
// LDC a load served by the cache.
const (
	LDM SavatInst = iota
	LDC
	NOP
	ADD
	MUL
	DIV

	NumSavatInsts = 6
)

var savatNames = [NumSavatInsts]string{"LDM", "LDC", "NOP", "ADD", "MUL", "DIV"}

// String returns the Table II row/column label.
func (s SavatInst) String() string {
	if int(s) < len(savatNames) {
		return savatNames[s]
	}
	return fmt.Sprintf("savat(%d)", int(s))
}

// SavatProgram builds the A/B alternation microbenchmark of Callan et
// al.: perHalf instances of A, then perHalf instances of B, repeated
// `periods` times (fully unrolled so no loop control pollutes the
// signal). The warm-up prologue touches the LDC address so cache-hit
// loads actually hit, and LDM loads walk fresh cache lines.
func SavatProgram(a, b SavatInst, perHalf, periods int) ([]uint32, error) {
	if perHalf < 1 || periods < 1 {
		return nil, fmt.Errorf("leakage: SAVAT needs positive perHalf/periods")
	}
	if perHalf > 15 {
		return nil, fmt.Errorf("leakage: perHalf %d too large for the miss-stride window", perHalf)
	}
	bld := asm.NewBuilder()
	const (
		hitBase  = 0x2000
		missBase = 0x8000
	)
	// Prologue: set up operand registers and warm the hit line.
	bld.Li(isa.S0, hitBase)
	bld.Li(isa.S1, missBase)
	bld.Li(isa.T0, 0x12345678)
	bld.Li(isa.T1, 0x0F0F3355)
	bld.I(isa.Lw(isa.T2, isa.S0, 0)) // warm the LDC line
	bld.Nop(4)

	// Every period has the exact same instruction sequence — including a
	// fixed per-period miss-base advance — so the alternation frequency
	// is a pure tone (uneven periods would smear the spectral spike the
	// metric integrates).
	missOff := int32(0)
	emit := func(inst SavatInst) {
		switch inst {
		case NOP:
			bld.I(isa.Nop())
		case ADD:
			bld.I(isa.Add(isa.T3, isa.T0, isa.T1))
		case MUL:
			bld.I(isa.Mul(isa.T3, isa.T0, isa.T1))
		case DIV:
			bld.I(isa.Div(isa.T3, isa.T0, isa.T1))
		case LDC:
			bld.I(isa.Lw(isa.T3, isa.S0, 0))
		case LDM:
			bld.I(isa.Lw(isa.T3, isa.S1, missOff))
			missOff += 64 // next cache line
		}
	}
	usesLDM := a == LDM || b == LDM
	for p := 0; p < periods; p++ {
		missOff = 0
		for i := 0; i < perHalf; i++ {
			emit(a)
		}
		for i := 0; i < perHalf; i++ {
			emit(b)
		}
		if usesLDM {
			// Advance past every line this period touched (same cost in
			// every period, keeping the period length constant).
			bld.I(isa.Addi(isa.S1, isa.S1, int32(64*(2*perHalf+1))))
		}
	}
	bld.I(isa.Ebreak())
	p, err := bld.Assemble()
	if err != nil {
		return nil, err
	}
	return p.Words, nil
}

// Savat computes the SAVAT value from a captured/simulated signal of the
// alternation microbenchmark: the spectral energy of the spike at the
// alternation frequency f_p = 1/t_p (§VI-A). totalCycles is the program's
// cycle count and periods the number of A/B alternation periods; spc the
// samples per cycle.
//
// Because the prologue and variable stall counts blur the nominal period,
// the spike is located by peak search in a ±25 % window around the
// estimated f_p; the surrounding spectral noise floor is subtracted so
// that a no-difference pair (the Table II diagonal) scores ≈ 0.
func Savat(sig []float64, spc, totalCycles, periods int) (float64, error) {
	if spc < 1 || totalCycles < 1 || periods < 1 {
		return 0, fmt.Errorf("leakage: bad SAVAT geometry (spc=%d cycles=%d periods=%d)", spc, totalCycles, periods)
	}
	cycles := len(sig) / spc
	if cycles < 2*periods {
		return 0, fmt.Errorf("leakage: %d cycles cannot hold %d alternation periods", cycles, periods)
	}
	// Per-cycle RMS envelope: the clock tone and pulse shape drop out,
	// leaving the instruction-level amplitude alternation.
	env := make([]float64, cycles)
	for n := 0; n < cycles; n++ {
		env[n] = math.Sqrt(signal.Energy(sig[n*spc:(n+1)*spc]) / float64(spc))
	}
	mean := stats.Mean(env)
	for i := range env {
		env[i] -= mean
	}
	power := func(k float64) float64 {
		var re, im float64
		w := 2 * math.Pi * k / float64(cycles)
		for n, v := range env {
			re += v * math.Cos(w*float64(n))
			im -= v * math.Sin(w*float64(n))
		}
		return (re*re + im*im) / float64(cycles)
	}
	// The A-vs-B difference lives in the ODD harmonics of the alternation
	// frequency: anything both halves share (including each instruction's
	// own stall/access micro-pattern) is periodic at half the alternation
	// period and lands on even harmonics only. Identical halves (the
	// Table II diagonal) therefore cancel to ≈ 0. The fundamental index
	// sits near `periods` but is shifted by the prologue, so scan a small
	// fractional-frequency window for the strongest odd-harmonic comb.
	const nHarmonics = 5 // odd harmonics 1,3,5,7,9
	comb := func(f1 float64) float64 {
		s := 0.0
		for h := 0; h < nHarmonics; h++ {
			k := f1 * float64(2*h+1)
			if k < float64(cycles)/2 {
				s += power(k)
			}
		}
		return s
	}
	spike := 0.0
	for f1 := float64(periods) - 1; f1 <= float64(periods)+3; f1 += 0.05 {
		if s := comb(f1); s > spike {
			spike = s
		}
	}
	// Noise floor: the same comb evaluated away from any alternation
	// harmonic.
	floor := comb(float64(periods) * 1.437)
	v := spike - floor
	if v < 0 {
		v = 0
	}
	// Normalize per cycle so values compare across program durations.
	return v / float64(cycles) * 1e2, nil
}

// SavatMatrix computes the full Table II: the SAVAT value for every
// ordered pair of events, using the given signal source (measured or
// simulated).
//
// run executes a program and returns the signal plus the cycle count.
func SavatMatrix(run func(words []uint32) (sig []float64, cycles int, err error),
	spc, perHalf, periods int) ([NumSavatInsts][NumSavatInsts]float64, error) {

	var out [NumSavatInsts][NumSavatInsts]float64
	for a := SavatInst(0); a < NumSavatInsts; a++ {
		for b := SavatInst(0); b < NumSavatInsts; b++ {
			words, err := SavatProgram(a, b, perHalf, periods)
			if err != nil {
				return out, err
			}
			sig, cycles, err := run(words)
			if err != nil {
				return out, fmt.Errorf("leakage: SAVAT %v/%v: %w", a, b, err)
			}
			v, err := Savat(sig, spc, cycles, periods)
			if err != nil {
				return out, err
			}
			out[a][b] = v
		}
	}
	return out, nil
}
