package leakage

import (
	"math"
	"math/rand"
	"testing"

	"emsim/internal/aes"
)

// synthTraces builds Hamming-weight-leaky traces for a planted key: the
// sample at `leakAt` carries HW(sbox(pt ^ key)) plus noise.
func synthTraces(t *testing.T, key byte, n, width, leakAt int, noise float64) (traces [][]float64, hyps [][]float64) {
	t.Helper()
	r := rand.New(rand.NewSource(77))
	for i := 0; i < n; i++ {
		pt := byte(r.Intn(256))
		tr := make([]float64, width)
		for s := range tr {
			tr[s] = r.NormFloat64() * noise
		}
		tr[leakAt] += HammingWeight(uint32(aes.SBox(pt ^ key)))
		traces = append(traces, tr)
		h := make([]float64, 256)
		for g := 0; g < 256; g++ {
			h[g] = HammingWeight(uint32(aes.SBox(pt ^ byte(g))))
		}
		hyps = append(hyps, h)
	}
	return traces, hyps
}

func TestCPARecoversPlantedKey(t *testing.T) {
	const key = 0x9C
	traces, hyps := synthTraces(t, key, 120, 40, 23, 0.8)
	res, err := CPA(traces, hyps)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestGuess != key {
		t.Fatalf("recovered key %#02x, want %#02x (rank of truth: %d)",
			res.BestGuess, key, res.Rank(key))
	}
	if res.PeakAt[key] != 23 {
		t.Errorf("peak at sample %d, want 23", res.PeakAt[key])
	}
	if res.Margin() < 1.5 {
		t.Errorf("margin %.2f too small for a clean synthetic leak", res.Margin())
	}
}

func TestCPANoLeakNoConfidence(t *testing.T) {
	// Pure noise: the best guess must not stand out.
	r := rand.New(rand.NewSource(78))
	var traces, hyps [][]float64
	for i := 0; i < 80; i++ {
		tr := make([]float64, 30)
		for s := range tr {
			tr[s] = r.NormFloat64()
		}
		traces = append(traces, tr)
		pt := byte(r.Intn(256))
		h := make([]float64, 256)
		for g := 0; g < 256; g++ {
			h[g] = HammingWeight(uint32(aes.SBox(pt ^ byte(g))))
		}
		hyps = append(hyps, h)
	}
	res, err := CPA(traces, hyps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Margin() > 1.5 {
		t.Errorf("margin %.2f on pure noise", res.Margin())
	}
}

func TestCPAErrors(t *testing.T) {
	good := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	hyp := [][]float64{{1}, {2}, {3}}
	if _, err := CPA(good[:2], hyp[:2]); err == nil {
		t.Error("too few traces accepted")
	}
	if _, err := CPA(good, hyp[:2]); err == nil {
		t.Error("mismatched counts accepted")
	}
	if _, err := CPA([][]float64{{1, 2}, {3}, {5, 6}}, hyp); err == nil {
		t.Error("ragged traces accepted")
	}
	if _, err := CPA(good, [][]float64{{1}, {2, 9}, {3}}); err == nil {
		t.Error("ragged hypotheses accepted")
	}
	if _, err := CPA(good, [][]float64{{}, {}, {}}); err == nil {
		t.Error("zero candidates accepted")
	}
}

func TestCPAConstantColumnsIgnored(t *testing.T) {
	// A constant hypothesis column or constant trace sample must simply
	// score zero, not NaN.
	traces := [][]float64{{1, 7}, {2, 7}, {3, 7}}
	hyps := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	res, err := CPA(traces, hyps)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakCorr[0] != 0 {
		t.Errorf("constant hypothesis scored %v", res.PeakCorr[0])
	}
	if res.BestGuess != 1 {
		t.Errorf("best guess %d, want 1", res.BestGuess)
	}
	if res.PeakAt[1] != 0 {
		t.Errorf("peak at constant sample %d", res.PeakAt[1])
	}
}

func TestHammingWeight(t *testing.T) {
	cases := map[uint32]float64{0: 0, 1: 1, 0xFF: 8, 0xFFFFFFFF: 32, 0xA5: 4}
	for v, want := range cases {
		if got := HammingWeight(v); got != want {
			t.Errorf("HW(%#x) = %v, want %v", v, got, want)
		}
	}
}

func BenchmarkCPA(b *testing.B) {
	r := rand.New(rand.NewSource(79))
	var traces, hyps [][]float64
	for i := 0; i < 100; i++ {
		tr := make([]float64, 200)
		for s := range tr {
			tr[s] = r.NormFloat64()
		}
		traces = append(traces, tr)
		h := make([]float64, 256)
		for g := range h {
			h[g] = float64(r.Intn(9))
		}
		hyps = append(hyps, h)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CPA(traces, hyps); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCPAAllConstantErrors(t *testing.T) {
	// When *every* column on one side is constant there is no signal at
	// all — a silent all-zero ranking would read as "no candidate leaks",
	// which is the wrong conclusion. CPA must refuse instead.
	varying := [][]float64{{1, 4}, {2, 5}, {3, 6}}
	flatTraces := [][]float64{{7, 9}, {7, 9}, {7, 9}}
	flatHyps := [][]float64{{5, 2}, {5, 2}, {5, 2}}
	if _, err := CPA(flatTraces, varying); err == nil {
		t.Error("all-constant traces accepted")
	}
	if _, err := CPA(varying, flatHyps); err == nil {
		t.Error("all-constant hypotheses accepted")
	}
	// One live column on each side is enough to correlate.
	if _, err := CPA([][]float64{{7, 1}, {7, 2}, {7, 3}}, [][]float64{{5, 1}, {5, 2}, {5, 3}}); err != nil {
		t.Errorf("one live column rejected: %v", err)
	}
}

func TestCPARankMarginEdgeCases(t *testing.T) {
	// A single hypothesis is trivially rank 0 with infinite margin.
	single := &CPAResult{BestGuess: 0, PeakCorr: []float64{0.4}, PeakAt: []int{3}}
	if r := single.Rank(0); r != 0 {
		t.Errorf("single-candidate rank %d, want 0", r)
	}
	if m := single.Margin(); !math.IsInf(m, 1) {
		t.Errorf("single-candidate margin %v, want +Inf", m)
	}

	// Tied peaks share the top rank and give margin 1 (no confidence).
	tied := &CPAResult{BestGuess: 0, PeakCorr: []float64{0.6, 0.6, 0.1}, PeakAt: []int{0, 1, 2}}
	if r := tied.Rank(0); r != 0 {
		t.Errorf("tied leader rank %d, want 0", r)
	}
	if r := tied.Rank(1); r != 0 {
		t.Errorf("tied co-leader rank %d, want 0", r)
	}
	if r := tied.Rank(2); r != 2 {
		t.Errorf("trailing candidate rank %d, want 2", r)
	}
	if m := tied.Margin(); m != 1 {
		t.Errorf("tied margin %v, want 1", m)
	}

	// A zero runner-up would divide by zero; Margin reports +Inf instead.
	soleLeak := &CPAResult{BestGuess: 1, PeakCorr: []float64{0, 0.5}, PeakAt: []int{0, 0}}
	if m := soleLeak.Margin(); !math.IsInf(m, 1) {
		t.Errorf("zero runner-up margin %v, want +Inf", m)
	}
}
