package leakage

import (
	"fmt"
	"math"
)

// referenceCPA is the original two-pass CPA formulation (exact-mean
// centering, full recompute), kept verbatim as the oracle the streaming
// path is fuzzed against. Besides the ranking it returns the full
// per-guess × per-column |correlation| matrix so the fuzz target can
// validate the stream's peak *positions* under floating-point ties —
// two columns can be equal in exact arithmetic yet round differently in
// the two formulations, so position equivalence means "the chosen
// column achieves the peak", not "the same index wins".
func referenceCPA(traces [][]float64, hypotheses [][]float64) (*CPAResult, [][]float64, error) {
	n := len(traces)
	if n < 3 || n != len(hypotheses) {
		return nil, nil, fmt.Errorf("leakage: CPA needs >= 3 matching traces/hypotheses (%d, %d)", n, len(hypotheses))
	}
	width := len(traces[0])
	for _, tr := range traces {
		if len(tr) != width {
			return nil, nil, fmt.Errorf("leakage: ragged traces")
		}
	}
	nGuess := len(hypotheses[0])
	if nGuess == 0 {
		return nil, nil, fmt.Errorf("leakage: no candidates")
	}
	for _, h := range hypotheses {
		if len(h) != nGuess {
			return nil, nil, fmt.Errorf("leakage: ragged hypotheses")
		}
	}

	// Pre-center the hypotheses per candidate.
	hMean := make([]float64, nGuess)
	for _, h := range hypotheses {
		for g, v := range h {
			hMean[g] += v
		}
	}
	for g := range hMean {
		hMean[g] /= float64(n)
	}
	hc := make([][]float64, n) // centered, indexed [trace][guess]
	hVar := make([]float64, nGuess)
	for t, h := range hypotheses {
		row := make([]float64, nGuess)
		for g, v := range h {
			d := v - hMean[g]
			row[g] = d
			hVar[g] += d * d
		}
		hc[t] = row
	}
	liveGuess := false
	for _, v := range hVar {
		if v != 0 {
			liveGuess = true
			break
		}
	}
	if !liveGuess {
		return nil, nil, fmt.Errorf("leakage: every hypothesis column is constant; nothing to correlate")
	}

	res := &CPAResult{
		PeakCorr: make([]float64, nGuess),
		PeakAt:   make([]int, nGuess),
	}
	corr := make([][]float64, nGuess)
	for g := range corr {
		corr[g] = make([]float64, width)
	}
	col := make([]float64, n)
	liveSamples := 0
	for s := 0; s < width; s++ {
		mean := 0.0
		for t := 0; t < n; t++ {
			col[t] = traces[t][s]
			mean += col[t]
		}
		mean /= float64(n)
		sVar := 0.0
		for t := 0; t < n; t++ {
			col[t] -= mean
			sVar += col[t] * col[t]
		}
		if sVar == 0 {
			continue
		}
		liveSamples++
		for g := 0; g < nGuess; g++ {
			if hVar[g] == 0 {
				continue
			}
			dot := 0.0
			for t := 0; t < n; t++ {
				dot += col[t] * hc[t][g]
			}
			c := math.Abs(dot) / math.Sqrt(sVar*hVar[g])
			corr[g][s] = c
			if c > res.PeakCorr[g] {
				res.PeakCorr[g] = c
				res.PeakAt[g] = s
			}
		}
	}
	if liveSamples == 0 {
		return nil, nil, fmt.Errorf("leakage: every trace column is constant; no signal to correlate")
	}
	best := 0
	for g, c := range res.PeakCorr {
		if c > res.PeakCorr[best] {
			best = g
		}
	}
	res.BestGuess = best
	return res, corr, nil
}
