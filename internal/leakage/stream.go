package leakage

import (
	"fmt"
	"sort"

	"emsim/internal/stats"
)

// Streaming leakage assessments. The batch TVLA/CPA entry points buffer
// every trace and recompute the statistic from scratch at each point of
// a sweep; the stream variants below fold each trace into constant-size
// accumulator state (internal/stats) the moment it is produced, so a
// min-traces-to-detection or traces-to-disclosure sweep is a single
// pass over the campaign: O(N) analysis work and O(poi×guesses) memory
// instead of O(N²) and O(N×samples). The batch entry points are thin
// wrappers over these streams; equivalence is pinned by tests and the
// FuzzStreamEquivalence target.

// TVLAStream is an incremental fixed-vs-random assessment: feed traces
// as they are captured and snapshot the t statistics at any prefix.
// Variable-length traces follow the batch rule — the live width is the
// shortest trace seen so far.
type TVLAStream struct {
	acc *stats.WelchAccumulator
	t   []float64 // snapshot scratch, reused across MaxAbsT calls
}

// NewTVLAStream returns an empty assessment.
func NewTVLAStream() *TVLAStream {
	return &TVLAStream{acc: stats.NewWelchAccumulator()}
}

// AddFixed folds in one fixed-input trace.
func (s *TVLAStream) AddFixed(trace []float64) error { return s.acc.Add(0, trace) }

// AddRandom folds in one random-input trace.
func (s *TVLAStream) AddRandom(trace []float64) error { return s.acc.Add(1, trace) }

// Counts returns the traces folded into each group so far.
func (s *TVLAStream) Counts() (fixed, random int) { return s.acc.Counts() }

// Samples returns the live (post-truncation) sample count.
func (s *TVLAStream) Samples() int { return s.acc.Samples() }

// TruncatedSamples returns how many trailing samples the shortest-trace
// rule has discarded from the longest trace seen.
func (s *TVLAStream) TruncatedSamples() int { return s.acc.MaxSamples() - s.acc.Samples() }

// MaxAbsT returns the current peak |t| — the cheap per-sweep-point
// probe (no result allocation; NaN t values never win, matching the
// batch rule that NaN samples are not leaks). Both groups need at least
// two traces.
func (s *TVLAStream) MaxAbsT() (float64, error) {
	t, err := s.acc.TInto(s.t)
	if err != nil {
		return 0, err
	}
	s.t = t
	peak := 0.0
	for _, v := range t {
		if a := abs(v); a > peak {
			peak = a
		}
	}
	return peak, nil
}

// Snapshot materializes the assessment at the current prefix. The
// result owns its T slice; the stream can keep accumulating afterwards.
func (s *TVLAStream) Snapshot() (*TVLAResult, error) {
	t, err := s.acc.TInto(s.t)
	if err != nil {
		return nil, err
	}
	s.t = t
	res := &TVLAResult{
		T:           append([]float64(nil), t...),
		LeakyPoints: stats.TVLALeakyPoints(t),
	}
	n0, n1 := s.acc.Counts()
	if n1 < n0 {
		res.Traces = n1
	} else {
		res.Traces = n0
	}
	for _, v := range t {
		if a := abs(v); a > res.MaxAbsT {
			res.MaxAbsT = a
		}
	}
	return res, nil
}

// CPAStream is an incremental correlation attack: feed (trace,
// hypothesis-row) pairs as they are produced and snapshot the candidate
// ranking at any prefix.
//
// With points > 0 the stream reduces each trace to the points
// highest-variance sample columns before accumulating — the
// points-of-interest step the batch evaluation harness used to run over
// the whole buffered campaign. A stream cannot see the future, so the
// selection is made once, from the first pilot traces (they are
// buffered, selected over, replayed, and released); this pilot-prefix
// selection is the documented semantic difference from the old
// whole-campaign selection. With points <= 0 every column is kept and
// pilot is ignored.
type CPAStream struct {
	guesses int
	points  int
	pilotN  int

	acc     *stats.CorrAccumulator
	pilotTr [][]float64 // buffered pilot copies; nil once selection is done
	pilotHy [][]float64
	cols    []int     // selected original columns, ascending (points mode)
	proj    []float64 // projection scratch
	err     error     // sticky selection failure

	n              int
	minLen, maxLen int // raw trace lengths seen; minLen -1 before first

	peak []float64 // snapshot scratch
	at   []int
}

// NewCPAStream returns an empty attack over the given candidate count.
// points is the points-of-interest budget (<= 0 keeps every column);
// pilot is how many leading traces the selection is made from.
func NewCPAStream(guesses, points, pilot int) *CPAStream {
	s := &CPAStream{
		guesses: guesses,
		points:  points,
		pilotN:  pilot,
		acc:     stats.NewCorrAccumulator(guesses),
		minLen:  -1,
	}
	if points <= 0 {
		s.points = 0
	}
	return s
}

// Traces returns the pairs folded in so far.
func (s *CPAStream) Traces() int { return s.n }

// Samples returns the shortest raw trace length seen (the width a batch
// analysis would truncate to), 0 before the first trace.
func (s *CPAStream) Samples() int {
	if s.minLen < 0 {
		return 0
	}
	return s.minLen
}

// TruncatedSamples returns how many trailing samples the shortest-trace
// rule has discarded from the longest raw trace seen.
func (s *CPAStream) TruncatedSamples() int { return s.maxLen - s.Samples() }

// Points returns the number of live analysis columns: the selected
// points of interest once the pilot has resolved (0 while still
// piloting), or the accumulator width in keep-everything mode.
func (s *CPAStream) Points() int {
	if s.points > 0 {
		return len(s.cols)
	}
	return s.acc.Samples()
}

// Add folds one (trace, hypothesis-row) pair into the attack. hyp[g] is
// candidate g's predicted leakage for this trace.
func (s *CPAStream) Add(trace, hyp []float64) error {
	if s.err != nil {
		return s.err
	}
	if len(hyp) != s.guesses {
		return fmt.Errorf("leakage: hypothesis row has %d candidates, want %d", len(hyp), s.guesses)
	}
	if s.minLen < 0 || len(trace) < s.minLen {
		s.minLen = len(trace)
	}
	if len(trace) > s.maxLen {
		s.maxLen = len(trace)
	}
	s.n++
	if s.points <= 0 {
		return s.acc.Add(trace, hyp)
	}
	if s.cols == nil {
		// Still piloting: buffer a copy; select once the pilot is full.
		s.pilotTr = append(s.pilotTr, append([]float64(nil), trace...))
		s.pilotHy = append(s.pilotHy, append([]float64(nil), hyp...))
		if len(s.pilotTr) >= s.pilotN {
			return s.selectAndReplay()
		}
		return nil
	}
	return s.addProjected(trace, hyp)
}

// addProjected reduces trace to the selected columns and accumulates.
func (s *CPAStream) addProjected(trace, hyp []float64) error {
	// A short trace can no longer supply the trailing points of
	// interest; drop them for good (cols is ascending, so this is the
	// same shortest-trace truncation the accumulator applies in
	// keep-everything mode).
	for len(s.cols) > 0 && s.cols[len(s.cols)-1] >= len(trace) {
		s.cols = s.cols[:len(s.cols)-1]
	}
	if cap(s.proj) < len(s.cols) {
		s.proj = make([]float64, len(s.cols))
	}
	s.proj = s.proj[:len(s.cols)]
	for k, c := range s.cols {
		s.proj[k] = trace[c]
	}
	return s.acc.Add(s.proj, hyp)
}

// selectAndReplay picks the points of interest from the buffered pilot,
// replays the pilot through the accumulator, and releases the buffers.
func (s *CPAStream) selectAndReplay() error {
	width := -1
	for _, tr := range s.pilotTr {
		if width < 0 || len(tr) < width {
			width = len(tr)
		}
	}
	for i, tr := range s.pilotTr {
		s.pilotTr[i] = tr[:width]
	}
	s.cols = topVarianceColumns(s.pilotTr, s.points)
	if len(s.cols) == 0 {
		s.err = fmt.Errorf("leakage: every trace column is constant; no signal to correlate")
		return s.err
	}
	for i := range s.pilotTr {
		if err := s.addProjected(s.pilotTr[i], s.pilotHy[i]); err != nil {
			return err
		}
	}
	s.pilotTr, s.pilotHy = nil, nil
	return nil
}

// Snapshot materializes the candidate ranking at the current prefix.
// Needs at least three traces; a snapshot while the pilot buffer is
// still filling finalizes the points-of-interest selection from the
// traces seen so far. The stream can keep accumulating afterwards.
func (s *CPAStream) Snapshot() (*CPAResult, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.n < 3 {
		return nil, fmt.Errorf("leakage: CPA needs >= 3 traces (have %d)", s.n)
	}
	if s.pilotTr != nil {
		if err := s.selectAndReplay(); err != nil {
			return nil, err
		}
	}
	if s.acc.LiveGuesses() == 0 {
		return nil, fmt.Errorf("leakage: every hypothesis column is constant; nothing to correlate")
	}
	if s.acc.LiveColumns() == 0 {
		return nil, fmt.Errorf("leakage: every trace column is constant; no signal to correlate")
	}
	if s.peak == nil {
		s.peak = make([]float64, s.guesses)
		s.at = make([]int, s.guesses)
	}
	if err := s.acc.PeaksInto(s.peak, s.at); err != nil {
		return nil, err
	}
	res := &CPAResult{
		PeakCorr: append([]float64(nil), s.peak...),
		PeakAt:   make([]int, s.guesses),
	}
	for g := 0; g < s.guesses; g++ {
		at := s.at[g]
		if s.points > 0 && s.peak[g] > 0 {
			at = s.cols[at] // map back to the original column index
		}
		res.PeakAt[g] = at
	}
	best := 0
	for g, c := range res.PeakCorr {
		if c > res.PeakCorr[best] {
			best = g
		}
	}
	res.BestGuess = best
	return res, nil
}

// topVarianceColumns returns the indices of the k highest-variance
// columns (ties broken by index, zero-variance columns excluded), in
// ascending column order. All traces must share a length.
func topVarianceColumns(traces [][]float64, k int) []int {
	if len(traces) == 0 {
		return nil
	}
	w := len(traces[0])
	vars := make([]float64, w)
	for c := 0; c < w; c++ {
		mean := 0.0
		for _, tr := range traces {
			mean += tr[c]
		}
		mean /= float64(len(traces))
		v := 0.0
		for _, tr := range traces {
			d := tr[c] - mean
			v += d * d
		}
		vars[c] = v
	}
	idx := make([]int, w)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if vars[idx[a]] != vars[idx[b]] {
			return vars[idx[a]] > vars[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > w {
		k = w
	}
	sel := idx[:0:0]
	for _, c := range idx[:k] {
		if vars[c] > 0 {
			sel = append(sel, c)
		}
	}
	sort.Ints(sel)
	return sel
}
