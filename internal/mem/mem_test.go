package mem

import (
	"testing"
	"testing/quick"
)

func TestMemoryByteRoundTrip(t *testing.T) {
	m := NewMemory()
	m.StoreByte(0x1000, 0xAB)
	if got := m.LoadByte(0x1000); got != 0xAB {
		t.Errorf("ReadByte = %#x, want 0xAB", got)
	}
	if got := m.LoadByte(0x1001); got != 0 {
		t.Errorf("unwritten byte = %#x, want 0", got)
	}
}

func TestMemoryWordLittleEndian(t *testing.T) {
	m := NewMemory()
	m.WriteWord(0x2000, 0x11223344)
	if got := m.LoadByte(0x2000); got != 0x44 {
		t.Errorf("low byte = %#x, want 0x44 (little endian)", got)
	}
	if got := m.LoadByte(0x2003); got != 0x11 {
		t.Errorf("high byte = %#x, want 0x11", got)
	}
	if got := m.ReadWord(0x2000); got != 0x11223344 {
		t.Errorf("ReadWord = %#x", got)
	}
	if got := m.ReadHalf(0x2000); got != 0x3344 {
		t.Errorf("ReadHalf = %#x", got)
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint32(pageSize - 2) // word spans two pages
	m.WriteWord(addr, 0xDEADBEEF)
	if got := m.ReadWord(addr); got != 0xDEADBEEF {
		t.Errorf("cross-page word = %#x", got)
	}
}

func TestMemoryWordRoundTripProperty(t *testing.T) {
	m := NewMemory()
	f := func(addr, v uint32) bool {
		m.WriteWord(addr, v)
		return m.ReadWord(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryLoadBytesAndReset(t *testing.T) {
	m := NewMemory()
	m.LoadBytes(0x80, []byte{1, 2, 3, 4})
	if m.ReadWord(0x80) != 0x04030201 {
		t.Errorf("LoadBytes word = %#x", m.ReadWord(0x80))
	}
	m.LoadWords(0x100, []uint32{0xAABBCCDD, 0x11223344})
	if m.ReadWord(0x104) != 0x11223344 {
		t.Errorf("LoadWords word = %#x", m.ReadWord(0x104))
	}
	m.Reset()
	if m.ReadWord(0x80) != 0 || m.ReadWord(0x100) != 0 {
		t.Error("Reset did not clear memory")
	}
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, LineBytes: 32, Ways: 2},
		{SizeBytes: 3000, LineBytes: 32, Ways: 2},
		{SizeBytes: 1024, LineBytes: 0, Ways: 2},
		{SizeBytes: 1024, LineBytes: 24, Ways: 2},
		{SizeBytes: 1024, LineBytes: 32, Ways: 0},
		{SizeBytes: 64, LineBytes: 64, Ways: 2},
		{SizeBytes: 1024, LineBytes: 32, Ways: 2, HitLatency: -1},
	}
	for _, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Errorf("NewCache(%+v) unexpectedly succeeded", cfg)
		}
	}
	if _, err := NewCache(DefaultCacheConfig()); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
}

func TestCacheHitMissLatencies(t *testing.T) {
	c := MustNewCache(DefaultCacheConfig())

	hit, stall := c.Access(0x1000)
	if hit || stall != 3 {
		t.Errorf("first access: hit=%v stall=%d, want miss/3 (1 hit latency + 2 miss penalty)", hit, stall)
	}
	hit, stall = c.Access(0x1004) // same line
	if !hit || stall != 1 {
		t.Errorf("same-line access: hit=%v stall=%d, want hit/1", hit, stall)
	}
	hit, stall = c.Access(0x1000)
	if !hit || stall != 1 {
		t.Errorf("repeat access: hit=%v stall=%d, want hit/1", hit, stall)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Tiny cache: 2 sets x 2 ways x 16-byte lines = 64 bytes.
	c := MustNewCache(CacheConfig{SizeBytes: 64, LineBytes: 16, Ways: 2, HitLatency: 1, MissPenalty: 2})

	// Three distinct lines mapping to set 0 (stride = lineBytes*sets = 32).
	a, b, d := uint32(0), uint32(64), uint32(128)
	c.Access(a) // miss, fills way 0
	c.Access(b) // miss, fills way 1
	c.Access(a) // hit, refreshes a
	if hit, _ := c.Access(d); hit {
		t.Fatal("line d should miss")
	}
	// d must have evicted b (LRU), not a.
	if !c.Probe(a) {
		t.Error("a was evicted but was most recently used")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted as LRU")
	}
	if !c.Probe(d) {
		t.Error("d should now be resident")
	}
}

func TestCacheProbeDoesNotMutate(t *testing.T) {
	c := MustNewCache(DefaultCacheConfig())
	if c.Probe(0x40) {
		t.Fatal("empty cache probe hit")
	}
	if c.Probe(0x40) {
		t.Fatal("probe must not allocate")
	}
	hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Errorf("probe changed stats: %d/%d", hits, misses)
	}
}

func TestCacheWarmGivesHitWithoutStats(t *testing.T) {
	c := MustNewCache(DefaultCacheConfig())
	c.Warm(0x3000)
	hits, misses := c.Stats()
	if hits != 0 || misses != 0 {
		t.Errorf("Warm counted stats: %d/%d", hits, misses)
	}
	if hit, stall := c.Access(0x3000); !hit || stall != 1 {
		t.Errorf("post-warm access: hit=%v stall=%d", hit, stall)
	}
}

func TestCacheFlush(t *testing.T) {
	c := MustNewCache(DefaultCacheConfig())
	c.Access(0x5000)
	c.Flush()
	if c.Probe(0x5000) {
		t.Error("line survived Flush")
	}
}

func TestCacheStats(t *testing.T) {
	c := MustNewCache(DefaultCacheConfig())
	c.Access(0x100) // miss
	c.Access(0x100) // hit
	c.Access(0x104) // hit
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 2/1", hits, misses)
	}
	c.ResetStats()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Error("ResetStats failed")
	}
}

func TestCacheSetIsolation(t *testing.T) {
	// Accesses in different sets must not evict each other even when the
	// cache is direct-mapped.
	c := MustNewCache(CacheConfig{SizeBytes: 128, LineBytes: 16, Ways: 1, HitLatency: 1, MissPenalty: 2})
	for line := uint32(0); line < 8; line++ {
		c.Access(line * 16)
	}
	for line := uint32(0); line < 8; line++ {
		if !c.Probe(line * 16) {
			t.Errorf("line %d missing; sets are interfering", line)
		}
	}
}

func TestCachePropertySameLineAlwaysHitsAfterAccess(t *testing.T) {
	c := MustNewCache(DefaultCacheConfig())
	f := func(addr uint32, off uint8) bool {
		c.Access(addr)
		line := addr &^ uint32(c.Config().LineBytes-1)
		hit, _ := c.Access(line + uint32(off)%uint32(c.Config().LineBytes))
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := MustNewCache(DefaultCacheConfig())
	for i := 0; i < b.N; i++ {
		c.Access(uint32(i*64) & 0xFFFF)
	}
}

func BenchmarkMemoryReadWord(b *testing.B) {
	m := NewMemory()
	m.WriteWord(0x1000, 42)
	for i := 0; i < b.N; i++ {
		m.ReadWord(0x1000)
	}
}
