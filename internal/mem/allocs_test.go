package mem

import "testing"

var (
	allocSinkU32  uint32
	allocSinkBool bool
)

// TestMemoryAnnotatedFuncsDoNotAllocate pins the //emsim:noalloc
// contract of the sparse memory at runtime: once a page exists (pageFor
// allocates exactly once on first touch), every access and a full Reset
// are allocation-free.
func TestMemoryAnnotatedFuncsDoNotAllocate(t *testing.T) {
	m := NewMemory()
	buf := make([]byte, 8)
	words := make([]uint32, 4)
	// Warm up: first touch of each page allocates its backing array.
	m.StoreByte(0x100, 1)
	m.WriteWord(0x2000, 42)
	allocs := testing.AllocsPerRun(100, func() {
		m.StoreByte(0x100, 7)
		m.WriteHalf(0x102, 0xBEEF)
		m.WriteWord(0x104, 0xDEADBEEF)
		allocSinkU32 = uint32(m.LoadByte(0x100)) + uint32(m.ReadHalf(0x102)) + m.ReadWord(0x104)
		m.LoadBytes(0x100, buf)
		m.LoadWords(0x2000, words)
		m.Reset()
	})
	if allocs > 0 {
		t.Errorf("warm memory operations allocate %.1f times per run, want 0", allocs)
	}
}

// TestCacheAnnotatedFuncsDoNotAllocate pins the cache model's
// //emsim:noalloc contract: lookups, probes, flushes and stat resets on a
// constructed cache never allocate.
func TestCacheAnnotatedFuncsDoNotAllocate(t *testing.T) {
	c, err := NewCache(DefaultCacheConfig())
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for addr := uint32(0); addr < 4096; addr += 64 {
			hit, stall := c.Access(addr)
			allocSinkBool = hit && stall == 0
			allocSinkBool = c.Probe(addr)
		}
		c.Flush()
		c.ResetStats()
	})
	if allocs > 0 {
		t.Errorf("cache operations allocate %.1f times per run, want 0", allocs)
	}
}
