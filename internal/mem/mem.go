// Package mem implements the memory hierarchy of the simulated processor: a
// flat little-endian byte-addressed main memory and a configurable cache
// with the latency model from §II-A of the paper (a cache hit costs one
// extra cycle; a miss costs two further cycles on top of that).
package mem

import "fmt"

// Memory is a sparse little-endian byte-addressable main memory. Reads of
// unwritten locations return zero, matching an initialized FPGA block RAM.
type Memory struct {
	pages map[uint32]*page
}

const (
	pageBits = 12
	pageSize = 1 << pageBits
	pageMask = pageSize - 1
)

type page [pageSize]byte

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint32]*page)}
}

//emsim:noalloc
func (m *Memory) pageFor(addr uint32, create bool) *page {
	idx := addr >> pageBits
	p := m.pages[idx]
	if p == nil && create {
		//emsim:ignore noalloc pages allocate once on first touch; Reset zeroes them in place so reruns stay steady-state
		p = new(page)
		m.pages[idx] = p
	}
	return p
}

// LoadByte returns the byte at addr.
//
//emsim:noalloc
func (m *Memory) LoadByte(addr uint32) byte {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// StoreByte stores b at addr.
//
//emsim:noalloc
func (m *Memory) StoreByte(addr uint32, b byte) {
	m.pageFor(addr, true)[addr&pageMask] = b
}

// ReadWord returns the 32-bit little-endian word at addr. The address need
// not be aligned; the simulated core enforces its own alignment policy.
//
//emsim:noalloc
func (m *Memory) ReadWord(addr uint32) uint32 {
	return uint32(m.LoadByte(addr)) |
		uint32(m.LoadByte(addr+1))<<8 |
		uint32(m.LoadByte(addr+2))<<16 |
		uint32(m.LoadByte(addr+3))<<24
}

// WriteWord stores a 32-bit little-endian word at addr.
//
//emsim:noalloc
func (m *Memory) WriteWord(addr uint32, v uint32) {
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
	m.StoreByte(addr+2, byte(v>>16))
	m.StoreByte(addr+3, byte(v>>24))
}

// ReadHalf returns the 16-bit little-endian halfword at addr.
//
//emsim:noalloc
func (m *Memory) ReadHalf(addr uint32) uint16 {
	return uint16(m.LoadByte(addr)) | uint16(m.LoadByte(addr+1))<<8
}

// WriteHalf stores a 16-bit little-endian halfword at addr.
//
//emsim:noalloc
func (m *Memory) WriteHalf(addr uint32, v uint16) {
	m.StoreByte(addr, byte(v))
	m.StoreByte(addr+1, byte(v>>8))
}

// LoadBytes copies data into memory starting at addr.
//
//emsim:noalloc
func (m *Memory) LoadBytes(addr uint32, data []byte) {
	for i, b := range data {
		m.StoreByte(addr+uint32(i), b)
	}
}

// LoadWords copies 32-bit words into memory starting at addr.
//
//emsim:noalloc
func (m *Memory) LoadWords(addr uint32, words []uint32) {
	for i, w := range words {
		m.WriteWord(addr+uint32(4*i), w)
	}
}

// Reset discards all contents. Already-allocated pages are zeroed in
// place rather than released, so a load/run/reset cycle that touches the
// same addresses reaches a steady state with no allocations — the
// property the reusable simulation Session relies on.
//
//emsim:noalloc
func (m *Memory) Reset() {
	for _, p := range m.pages {
		*p = page{}
	}
}

// CacheConfig describes the data cache geometry and the latency model.
// The paper's processor has a 32 KB cache; an access that hits stalls the
// pipeline for HitLatency extra cycles (1 in the paper) and a miss stalls
// for HitLatency+MissPenalty cycles (1+2 = 3 total in the paper, visible as
// "two extra stall cycles" in Figure 6).
type CacheConfig struct {
	SizeBytes   int // total capacity (default 32 KiB)
	LineBytes   int // line size (default 32)
	Ways        int // associativity (default 2)
	HitLatency  int // extra stall cycles on a hit (default 1)
	MissPenalty int // further stall cycles on a miss (default 2)
}

// DefaultCacheConfig returns the configuration described in §II-A.
func DefaultCacheConfig() CacheConfig {
	return CacheConfig{
		SizeBytes:   32 * 1024,
		LineBytes:   32,
		Ways:        2,
		HitLatency:  1,
		MissPenalty: 2,
	}
}

func (c CacheConfig) validate() error {
	switch {
	case c.SizeBytes <= 0 || c.SizeBytes&(c.SizeBytes-1) != 0:
		return fmt.Errorf("mem: cache size %d is not a positive power of two", c.SizeBytes)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("mem: line size %d is not a positive power of two", c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("mem: ways %d must be positive", c.Ways)
	case c.SizeBytes < c.LineBytes*c.Ways:
		return fmt.Errorf("mem: cache of %d bytes cannot hold %d ways of %d-byte lines",
			c.SizeBytes, c.Ways, c.LineBytes)
	case c.HitLatency < 0 || c.MissPenalty < 0:
		return fmt.Errorf("mem: negative latency")
	}
	return nil
}

// Cache models a set-associative write-through data cache with LRU
// replacement. It tracks only tags (the backing Memory holds the data),
// which is sufficient for timing and for the hit/miss events the EM model
// needs.
type Cache struct {
	cfg     CacheConfig
	sets    int
	lineOff uint32 // log2(LineBytes)
	tags    [][]uint32
	valid   [][]bool
	lruTick [][]uint64
	tick    uint64

	hits, misses uint64
}

// NewCache builds a cache from cfg, or returns an error for impossible
// geometries.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mem: derived set count %d is not a power of two", sets)
	}
	c := &Cache{cfg: cfg, sets: sets}
	for sz := cfg.LineBytes; sz > 1; sz >>= 1 {
		c.lineOff++
	}
	c.tags = make([][]uint32, sets)
	c.valid = make([][]bool, sets)
	c.lruTick = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint32, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
		c.lruTick[i] = make([]uint64, cfg.Ways)
	}
	return c, nil
}

// MustNewCache is NewCache for known-good configurations; it panics on error.
func MustNewCache(cfg CacheConfig) *Cache {
	c, err := NewCache(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) index(addr uint32) (set int, tag uint32) {
	line := addr >> c.lineOff
	return int(line) & (c.sets - 1), line / uint32(c.sets)
}

// Access simulates one access to addr and returns whether it hit plus the
// number of extra stall cycles the pipeline must insert. Misses allocate
// the line (loads and stores both allocate, write-through keeps memory
// authoritative so no writeback traffic is modeled).
//
//emsim:noalloc
func (c *Cache) Access(addr uint32) (hit bool, stallCycles int) {
	c.tick++
	set, tag := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lruTick[set][w] = c.tick
			c.hits++
			return true, c.cfg.HitLatency
		}
	}
	// Miss: fill the LRU (or first invalid) way.
	victim := 0
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lruTick[set][w] < c.lruTick[set][victim] {
			victim = w
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lruTick[set][victim] = c.tick
	c.misses++
	return false, c.cfg.HitLatency + c.cfg.MissPenalty
}

// Probe reports whether addr would hit, without changing cache state.
//
//emsim:noalloc
func (c *Cache) Probe(addr uint32) bool {
	set, tag := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			return true
		}
	}
	return false
}

// Warm pre-loads the line containing addr without counting statistics,
// used by experiments that need a guaranteed hit.
func (c *Cache) Warm(addr uint32) {
	h, _ := c.Access(addr)
	if h {
		c.hits--
	} else {
		c.misses--
	}
}

// Flush invalidates every line.
//
//emsim:noalloc
func (c *Cache) Flush() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
			c.lruTick[s][w] = 0
		}
	}
	c.tick = 0
}

// Stats returns cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// ResetStats zeroes the hit/miss counters without touching cache contents.
//
//emsim:noalloc
func (c *Cache) ResetStats() { c.hits, c.misses = 0, 0 }
