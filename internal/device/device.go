package device

import (
	"fmt"
	"math/rand"

	"emsim/internal/cpu"
	"emsim/internal/signal"
)

// ProbePosition places the magnetic probe relative to the die. The five
// pipeline stages sit at x = 0..4 (arbitrary die units); the base
// measurement position of the paper (probe centered above the chip) is
// x = 2 at height 1.
type ProbePosition struct {
	X, Height float64
}

// BaseProbe returns the reference probe placement all loss coefficients
// are normalized to (β = 1 there, §V-D).
func BaseProbe() ProbePosition { return ProbePosition{X: 2, Height: 1} }

// lossTo computes the raw path loss from the probe to stage s's location
// (inverse-square flat-fading coefficient).
func (p ProbePosition) lossTo(s cpu.Stage) float64 {
	dx := p.X - float64(s)
	d2 := p.Height*p.Height + dx*dx
	return 1 / d2
}

// Options configures a Device.
type Options struct {
	// TechSeed selects the board/CMOS instance: a different seed is a
	// different physical board (§V-C). Same seed + different ClockPPM is
	// a different manufacturing instance of the same board (§V-B).
	TechSeed int64
	// ClockPPM is the relative clock-frequency deviation (parts per
	// million) of this physical instance.
	ClockPPM float64
	// Probe is the magnetic probe placement; zero value means BaseProbe.
	Probe ProbePosition
	// NoiseStd is the additive white measurement noise (per analog
	// sample, in device amplitude units).
	NoiseStd float64
	// SamplesPerCycle is the oscilloscope rate in samples per clock
	// cycle.
	SamplesPerCycle int
	// CPU configures the device's core. The Figure 11 experiment sets
	// BuggyMul here to fabricate a defective chip.
	CPU cpu.Config
	// NoiseSeed decorrelates the measurement noise between devices.
	NoiseSeed int64
}

// DefaultOptions returns the baseline device: board #1, nominal clock,
// probe at the reference position, 16 samples per cycle, and a noise
// level that leaves headroom for the paper's ≈94 % accuracy.
func DefaultOptions() Options {
	return Options{
		TechSeed:        1,
		Probe:           BaseProbe(),
		NoiseStd:        0.06,
		SamplesPerCycle: 16,
		CPU:             cpu.DefaultConfig(),
		NoiseSeed:       1,
	}
}

// Device is one physical measurement setup: a board (with hidden
// physics), a probe position, and an oscilloscope.
type Device struct {
	opts Options
	phys *physics
	core *cpu.CPU
	beta [cpu.NumStages]float64
	rng  *rand.Rand
}

// New builds a device from opts (zero-value fields are filled with
// defaults).
func New(opts Options) (*Device, error) {
	if opts.SamplesPerCycle == 0 {
		opts.SamplesPerCycle = DefaultOptions().SamplesPerCycle
	}
	if opts.SamplesPerCycle < 4 {
		return nil, fmt.Errorf("device: need >= 4 samples per cycle (got %d)", opts.SamplesPerCycle)
	}
	if (opts.Probe == ProbePosition{}) {
		opts.Probe = BaseProbe()
	}
	if opts.CPU.MaxCycles == 0 {
		opts.CPU = cpu.DefaultConfig()
	}
	if opts.NoiseStd < 0 {
		return nil, fmt.Errorf("device: negative noise %g", opts.NoiseStd)
	}
	core, err := cpu.New(opts.CPU)
	if err != nil {
		return nil, err
	}
	d := &Device{
		opts: opts,
		phys: newPhysics(opts.TechSeed),
		core: core,
		rng:  rand.New(rand.NewSource(opts.NoiseSeed ^ 0x0DD5C0DE)),
	}
	base := BaseProbe()
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		d.beta[s] = opts.Probe.lossTo(s) / base.lossTo(s)
	}
	return d, nil
}

// MustNew is New for known-good options; it panics on error.
func MustNew(opts Options) *Device {
	d, err := New(opts)
	if err != nil {
		panic(err)
	}
	return d
}

// SamplesPerCycle returns the oscilloscope rate in samples per clock
// cycle.
func (d *Device) SamplesPerCycle() int { return d.opts.SamplesPerCycle }

// Options returns the device configuration (hidden physics excluded).
func (d *Device) Options() Options { return d.opts }

// emit renders the ideal (noise-free) analog emission of a trace.
func (d *Device) emit(tr cpu.Trace) []float64 {
	x := make([]float64, len(tr))
	for i := range tr {
		x[i] = d.phys.cycleAmplitude(&tr[i], &d.beta)
	}
	y := signal.MustReconstruct(x, d.opts.SamplesPerCycle, d.phys.kernel)
	if d.opts.ClockPPM != 0 {
		y = stretchPerCycle(y, d.opts.SamplesPerCycle, 1+d.opts.ClockPPM*1e-6)
	}
	return y
}

// stretchPerCycle emulates a clock-trimmed board as seen through the
// paper's modulo-operation acquisition (§II-B): the fold uses the
// device's *actual* clock period (T_s = noc × T_clk), so cycle boundaries
// stay locked and only the waveform inside each cycle is time-scaled by
// the trim. This is why §V-B finds the shifted boards "slightly shifted"
// per cycle but statistically indistinguishable in accuracy — the drift
// never accumulates across cycles.
func stretchPerCycle(y []float64, spc int, factor float64) []float64 {
	if factor == 1 || len(y) < 2 || spc < 2 {
		return y
	}
	out := make([]float64, len(y))
	cycles := len(y) / spc
	interp := func(pos float64) float64 {
		lo := int(pos)
		if lo < 0 {
			return y[0]
		}
		if lo >= len(y)-1 {
			return y[len(y)-1]
		}
		frac := pos - float64(lo)
		return y[lo]*(1-frac) + y[lo+1]*frac
	}
	for c := 0; c < cycles; c++ {
		base := c * spc
		for i := 0; i < spc; i++ {
			out[base+i] = interp(float64(base) + float64(i)/factor)
		}
	}
	copy(out[cycles*spc:], y[cycles*spc:])
	return out
}

// Capture runs the program once and returns the core's trace plus one
// noisy oscilloscope capture of the emission.
func (d *Device) Capture(words []uint32) (cpu.Trace, []float64, error) {
	tr, err := d.core.RunProgram(words)
	if err != nil {
		return nil, nil, fmt.Errorf("device: %w", err)
	}
	y := d.emit(tr)
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = v + d.opts.NoiseStd*d.rng.NormFloat64()
	}
	return tr, out, nil
}

// MeasureAveraged emulates the paper's measurement procedure (§II-B): the
// sequence is executed `runs` times (1000 in the paper) and the captures
// are averaged with the modulo operation, yielding a low-noise reference
// signal. The device's trace of the final run is returned for alignment.
func (d *Device) MeasureAveraged(words []uint32, runs int) (cpu.Trace, []float64, error) {
	if runs < 1 {
		return nil, nil, fmt.Errorf("device: need >= 1 run (got %d)", runs)
	}
	var tr cpu.Trace
	var acc []float64
	for r := 0; r < runs; r++ {
		t, y, err := d.Capture(words)
		if err != nil {
			return nil, nil, err
		}
		if acc == nil {
			acc = make([]float64, len(y))
			tr = t
		} else if len(y) != len(acc) {
			return nil, nil, fmt.Errorf("device: nondeterministic run length (%d vs %d samples)", len(y), len(acc))
		}
		for i, v := range y {
			acc[i] += v
		}
	}
	inv := 1 / float64(runs)
	for i := range acc {
		acc[i] *= inv
	}
	return tr, acc, nil
}

// CaptureStream emulates a long untriggered oscilloscope capture: the
// program is executed reps times back to back and the noisy emissions are
// concatenated into one stream. Feed the result to signal.ModuloAverage
// with seqPeriod = cycles × SamplesPerCycle to recover the low-noise
// reference waveform, exactly as §II-B does with its "modulo operation".
func (d *Device) CaptureStream(words []uint32, reps int) (stream []float64, cyclesPerRep int, err error) {
	if reps < 1 {
		return nil, 0, fmt.Errorf("device: need >= 1 repetition (got %d)", reps)
	}
	tr, err := d.core.RunProgram(words)
	if err != nil {
		return nil, 0, fmt.Errorf("device: %w", err)
	}
	clean := d.emit(tr)
	out := make([]float64, 0, len(clean)*reps)
	for r := 0; r < reps; r++ {
		for _, v := range clean {
			out = append(out, v+d.opts.NoiseStd*d.rng.NormFloat64())
		}
	}
	return out, len(tr), nil
}

// CPUStats exposes the device core's statistics for experiment reporting.
func (d *Device) CPUStats() cpu.Stats { return d.core.Stats() }

// CaptureSource adapts the device to per-input trace consumers such as
// leakage.TVLA (the returned function is assignable to a
// leakage.TraceSource): each call builds the program for the input block
// and captures one noisy oscilloscope trace of it.
func (d *Device) CaptureSource(build func(input [16]byte) ([]uint32, error)) func(input [16]byte) ([]float64, error) {
	return func(input [16]byte) ([]float64, error) {
		words, err := build(input)
		if err != nil {
			return nil, err
		}
		_, sig, err := d.Capture(words)
		return sig, err
	}
}
