package device

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"

	"emsim/internal/cpu"
)

// This file is the parallel-measurement surface of the synthetic bench.
// A Device's Capture/MeasureAveraged draw noise from one shared RNG whose
// state advances with every capture — faithful to a single oscilloscope,
// but useless for a measurement fan-out, where the noise a program sees
// would depend on which worker got there first. A Measurer is an
// independent replica of the same physical setup (shared hidden physics,
// private core) whose noise is a *per-program* deterministic stream:
// measuring the same program on any replica, in any order, at any
// concurrency, yields byte-identical captures. That property is what
// lets core.Trainer promise a fitted model independent of worker count.

// Fingerprint returns a stable content hash of the device's observable
// configuration (board seed, clock trim, probe, noise, rate, core
// geometry). Two devices with equal fingerprints produce identical
// Measurer captures for identical programs, which makes the fingerprint
// the device component of core.MeasurementCache keys.
func (d *Device) Fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v", d.opts)
	return h.Sum64()
}

// programNoiseSeed derives the seed of one program's noise stream from
// the device noise seed and the program content (FNV-1a over the words,
// finalized with a splitmix64 step so adjacent seeds decorrelate).
func programNoiseSeed(noiseSeed int64, words []uint32) int64 {
	h := fnv.New64a()
	var b [4]byte
	for _, w := range words {
		b[0] = byte(w)
		b[1] = byte(w >> 8)
		b[2] = byte(w >> 16)
		b[3] = byte(w >> 24)
		h.Write(b[:])
	}
	z := h.Sum64() ^ uint64(noiseSeed)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Measurer is one independent measurement replica of a Device: it shares
// the device's hidden physics and probe placement but owns its core and
// derives a fresh per-program noise stream for every measurement.
// Measurers are not safe for concurrent use individually; any number of
// them may measure concurrently against the same Device.
type Measurer struct {
	d    *Device
	core *cpu.CPU
}

// NewMeasurer builds an independent measurement replica of the device.
func (d *Device) NewMeasurer() (*Measurer, error) {
	core, err := cpu.New(d.opts.CPU)
	if err != nil {
		return nil, err
	}
	return &Measurer{d: d, core: core}, nil
}

// Device returns the device this replica measures.
func (m *Measurer) Device() *Device { return m.d }

// MeasureAveraged is the replica form of Device.MeasureAveraged: the
// program is executed `runs` times and the noisy captures are averaged
// with the modulo operation. Unlike the Device method, the noise comes
// from a stream seeded by (device noise seed, program words), so the
// result is a pure function of (device configuration, program, runs) —
// independent of measurement order and of every other program measured.
// The context is checked between runs, bounding cancellation latency to
// one capture.
func (m *Measurer) MeasureAveraged(ctx context.Context, words []uint32, runs int) (cpu.Trace, []float64, error) {
	if runs < 1 {
		return nil, nil, fmt.Errorf("device: need >= 1 run (got %d)", runs)
	}
	rng := rand.New(rand.NewSource(programNoiseSeed(m.d.opts.NoiseSeed, words)))
	var tr cpu.Trace
	var acc []float64
	for r := 0; r < runs; r++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		t, err := m.core.RunProgram(words)
		if err != nil {
			return nil, nil, fmt.Errorf("device: %w", err)
		}
		y := m.d.emit(t)
		if acc == nil {
			acc = make([]float64, len(y))
			tr = t
		} else if len(y) != len(acc) {
			return nil, nil, fmt.Errorf("device: nondeterministic run length (%d vs %d samples)", len(y), len(acc))
		}
		for i, v := range y {
			acc[i] += v + m.d.opts.NoiseStd*rng.NormFloat64()
		}
	}
	inv := 1 / float64(runs)
	for i := range acc {
		acc[i] *= inv
	}
	return tr, acc, nil
}
