package device

import (
	"math"
	"testing"

	"emsim/internal/asm"
	"emsim/internal/cpu"
	"emsim/internal/isa"
	"emsim/internal/signal"
)

func words(t testing.TB, insts ...isa.Inst) []uint32 {
	t.Helper()
	b := asm.NewBuilder()
	b.I(insts...)
	p, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return p.Words
}

// nopProgram is NOPs followed by EBREAK.
func nopProgram(t testing.TB, n int) []uint32 {
	t.Helper()
	insts := make([]isa.Inst, 0, n+1)
	for i := 0; i < n; i++ {
		insts = append(insts, isa.Nop())
	}
	insts = append(insts, isa.Ebreak())
	return words(t, insts...)
}

func TestPhysicsDeterministicPerSeed(t *testing.T) {
	p1 := newPhysics(7)
	p2 := newPhysics(7)
	p3 := newPhysics(8)
	if p1.baseAmp != p2.baseAmp {
		t.Error("same seed produced different amplitudes")
	}
	if p1.baseAmp == p3.baseAmp {
		t.Error("different seeds produced identical amplitudes")
	}
	// Design-linked couplings must be identical across boards (§V-C).
	if p1.coupling != p3.coupling {
		t.Error("couplings vary with tech seed; they are design-linked")
	}
	if p1.kernel != p3.kernel {
		t.Error("kernel varies with tech seed")
	}
}

func TestPhysicsBitWeightsSparseAndShaped(t *testing.T) {
	p := newPhysics(1)
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		w := p.bitWeight[s]
		if len(w) != cpu.FeatureBits(s) {
			t.Fatalf("stage %v: %d weights, want %d", s, len(w), cpu.FeatureBits(s))
		}
		zero := 0
		for _, v := range w {
			if v == 0 {
				zero++
			}
			if v < 0 {
				t.Fatalf("negative bit weight %v", v)
			}
		}
		if frac := float64(zero) / float64(len(w)); frac < 0.3 || frac > 0.8 {
			t.Errorf("stage %v: %.0f%% zero weights, want sparse (~55%%)", s, 100*frac)
		}
	}
	// ALU-output bits must dominate operand bits on average (paper §III-B).
	ex := p.bitWeight[cpu.EX]
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(ex[64:96]) <= 2*mean(ex[0:32]) {
		t.Errorf("ALU result weights (%g) should dominate operand weights (%g)",
			mean(ex[64:96]), mean(ex[0:32]))
	}
}

func TestDeviceDeterministicEmission(t *testing.T) {
	prog := nopProgram(t, 20)
	d1 := MustNew(DefaultOptions())
	d2 := MustNew(DefaultOptions())
	_, y1, err := d1.MeasureAveraged(prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, y2, err := d2.MeasureAveraged(prog, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(y1) != len(y2) {
		t.Fatal("lengths differ")
	}
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("identical devices produced different averaged captures")
		}
	}
}

func TestAveragingReducesNoise(t *testing.T) {
	prog := nopProgram(t, 30)
	dev1 := MustNew(DefaultOptions())
	_, one, err := dev1.MeasureAveraged(prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	dev2 := MustNew(DefaultOptions())
	_, many, err := dev2.MeasureAveraged(prog, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the noise-free emission.
	ref := MustNew(DefaultOptions())
	trc, _ := ref.core.RunProgram(prog)
	ideal := ref.emit(trc)

	e1, err := signal.RMSE(one, ideal)
	if err != nil {
		t.Fatal(err)
	}
	e200, err := signal.RMSE(many, ideal)
	if err != nil {
		t.Fatal(err)
	}
	if e200 >= e1/3 {
		t.Errorf("averaging barely helped: RMSE 1 run %v, 200 runs %v", e1, e200)
	}
}

func TestStallQuietsStalledStage(t *testing.T) {
	// A power-gated (stalled) stage must emit a small fraction of even the
	// NOP background, and far less than an active instruction (§IV).
	p := newPhysics(1)
	add := isa.Add(isa.T0, isa.T1, isa.T2)
	active := cpu.StageTrace{Op: add.Op, Inst: add, Seq: 0}
	stalled := active
	stalled.Stalled = true
	bubble := cpu.StageTrace{Bubble: true, Seq: -1}
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		aAct := p.stageAmplitude(s, &active)
		aStall := p.stageAmplitude(s, &stalled)
		aBub := p.stageAmplitude(s, &bubble)
		if aStall >= aBub {
			t.Errorf("stage %v: stalled amplitude %v not below bubble %v", s, aStall, aBub)
		}
		if aStall >= 0.2*aAct {
			t.Errorf("stage %v: stalled amplitude %v not ≪ active %v", s, aStall, aAct)
		}
	}
	// End-to-end: with a long MUL, the frozen front-end stages contribute
	// (almost) nothing, so the cycle amplitude during the stall differs
	// from the same occupancy without the stall flags.
	var stallCycle, busyCycle cpu.Cycle
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		stallCycle.Stages[s] = active
		busyCycle.Stages[s] = active
	}
	stallCycle.Stages[cpu.IF].Stalled = true
	stallCycle.Stages[cpu.ID].Stalled = true
	beta := [cpu.NumStages]float64{1, 1, 1, 1, 1}
	xStall := p.cycleAmplitude(&stallCycle, &beta)
	xBusy := p.cycleAmplitude(&busyCycle, &beta)
	if xStall == xBusy {
		t.Error("stall flags have no effect on the cycle amplitude")
	}
}

func TestClusterSignaturesDiffer(t *testing.T) {
	// Different clusters must produce distinguishable per-cycle waveforms
	// (otherwise Table I clustering and SAVAT are meaningless), while two
	// ALU instructions must look nearly identical.
	cfg := DefaultOptions()
	cfg.NoiseStd = 0
	spc := cfg.SamplesPerCycle

	waveFor := func(in isa.Inst) []float64 {
		d := MustNew(cfg)
		var insts []isa.Inst
		for i := 0; i < 6; i++ {
			insts = append(insts, isa.Nop())
		}
		insts = append(insts, in)
		for i := 0; i < 8; i++ {
			insts = append(insts, isa.Nop())
		}
		insts = append(insts, isa.Ebreak())
		tr, y, err := d.Capture(words(t, insts...))
		if err != nil {
			t.Fatal(err)
		}
		// Extract the window where the instruction traverses the pipe.
		var firstCycle int
		for i := range tr {
			if tr[i].Stages[cpu.EX].Op == in.Op && !tr[i].Stages[cpu.EX].Bubble && !tr[i].Stages[cpu.EX].Stalled {
				firstCycle = i - 2
				break
			}
		}
		if firstCycle < 0 {
			firstCycle = 0
		}
		lo := firstCycle * spc
		hi := lo + 5*spc
		if hi > len(y) {
			hi = len(y)
		}
		return y[lo:hi]
	}

	add := waveFor(isa.Add(isa.Zero, isa.Zero, isa.Zero))
	xor := waveFor(isa.Xor(isa.Zero, isa.Zero, isa.Zero))
	mul := waveFor(isa.Mul(isa.Zero, isa.Zero, isa.Zero))
	st := waveFor(isa.Sw(isa.Zero, isa.Zero, 1024))

	nccAddXor, _ := signal.NCC(add, xor)
	nccAddMul, _ := signal.NCC(add[:len(mul)], mul[:len(add)])
	nccAddSt, _ := signal.NCC(add, st)
	if nccAddXor < 0.99 {
		t.Errorf("ADD vs XOR correlation %v, want ~1 (same cluster)", nccAddXor)
	}
	if nccAddMul > nccAddXor || nccAddSt > nccAddXor {
		t.Errorf("cross-cluster correlations (%v, %v) should be below in-cluster (%v)",
			nccAddMul, nccAddSt, nccAddXor)
	}
}

func TestProbeDistanceScalesAmplitude(t *testing.T) {
	prog := nopProgram(t, 20)
	near := DefaultOptions()
	near.NoiseStd = 0
	far := near
	far.Probe = ProbePosition{X: 2, Height: 3}

	_, yNear, err := MustNew(near).Capture(prog)
	if err != nil {
		t.Fatal(err)
	}
	_, yFar, err := MustNew(far).Capture(prog)
	if err != nil {
		t.Fatal(err)
	}
	if signal.Energy(yFar) >= signal.Energy(yNear)/2 {
		t.Errorf("moving the probe away did not attenuate: near %v, far %v",
			signal.Energy(yNear), signal.Energy(yFar))
	}
	// An off-center probe changes stage weighting, not just global scale.
	side := near
	side.Probe = ProbePosition{X: 0, Height: 1}
	dSide := MustNew(side)
	if dSide.beta[cpu.IF] <= dSide.beta[cpu.WB] {
		t.Errorf("probe over IF should weight IF (β=%v) above WB (β=%v)",
			dSide.beta[cpu.IF], dSide.beta[cpu.WB])
	}
}

func TestClockPPMShiftsButPreservesShape(t *testing.T) {
	prog := nopProgram(t, 40)
	a := DefaultOptions()
	a.NoiseStd = 0
	b := a
	b.ClockPPM = 200
	_, ya, err := MustNew(a).Capture(prog)
	if err != nil {
		t.Fatal(err)
	}
	_, yb, err := MustNew(b).Capture(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(ya) != len(yb) {
		t.Fatal("clock shift changed capture length")
	}
	ncc, err := signal.NCC(ya, yb)
	if err != nil {
		t.Fatal(err)
	}
	if ncc < 0.99 {
		t.Errorf("200ppm shift degraded correlation to %v (paper: no significant impact)", ncc)
	}
	identical := true
	for i := range ya {
		if ya[i] != yb[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Error("clock shift had no effect at all")
	}
}

func TestBoardChangeChangesSignal(t *testing.T) {
	prog := nopProgram(t, 30)
	a := DefaultOptions()
	a.NoiseStd = 0
	b := a
	b.TechSeed = 99
	_, ya, _ := MustNew(a).Capture(prog)
	_, yb, _ := MustNew(b).Capture(prog)
	same := true
	for i := range ya {
		if math.Abs(ya[i]-yb[i]) > 1e-9 {
			same = false
			break
		}
	}
	if same {
		t.Error("different boards emitted identical signals")
	}
}

func TestCaptureStreamFoldsToAverage(t *testing.T) {
	prog := nopProgram(t, 10)
	d := MustNew(DefaultOptions())
	stream, cycles, err := d.CaptureStream(prog, 100)
	if err != nil {
		t.Fatal(err)
	}
	spc := d.SamplesPerCycle()
	bins := cycles * spc
	folded, err := signal.ModuloAverage(stream, 1, float64(bins), bins)
	if err != nil {
		t.Fatal(err)
	}
	// Compare to the noise-free emission.
	ref := MustNew(DefaultOptions())
	tr, _ := ref.core.RunProgram(prog)
	ideal := ref.emit(tr)
	ncc, err := signal.NCC(folded, ideal)
	if err != nil {
		t.Fatal(err)
	}
	if ncc < 0.99 {
		t.Errorf("folded stream correlation %v, want >= 0.99", ncc)
	}
}

func TestDeviceOptionValidation(t *testing.T) {
	bad := DefaultOptions()
	bad.SamplesPerCycle = 2
	if _, err := New(bad); err == nil {
		t.Error("tiny sampling rate accepted")
	}
	bad = DefaultOptions()
	bad.NoiseStd = -1
	if _, err := New(bad); err == nil {
		t.Error("negative noise accepted")
	}
	if _, _, err := MustNew(DefaultOptions()).MeasureAveraged(nopProgram(t, 1), 0); err == nil {
		t.Error("0 runs accepted")
	}
	if _, _, err := MustNew(DefaultOptions()).CaptureStream(nopProgram(t, 1), 0); err == nil {
		t.Error("0 reps accepted")
	}
}

func TestBuggyMulChangesEmissionOnly(t *testing.T) {
	// The defective multiplier (Figure 11) must change the EM emission in
	// the MUL's final EX cycle.
	var insts []isa.Inst
	insts = append(insts, isa.Li(isa.T0, 0x1234)...)
	insts = append(insts, isa.Li(isa.T1, 0x5678)...)
	for i := 0; i < 4; i++ {
		insts = append(insts, isa.Nop())
	}
	insts = append(insts, isa.Mul(isa.T2, isa.T0, isa.T1))
	for i := 0; i < 6; i++ {
		insts = append(insts, isa.Nop())
	}
	insts = append(insts, isa.Ebreak())
	prog := words(t, insts...)

	good := DefaultOptions()
	good.NoiseStd = 0
	bad := good
	bad.CPU.BuggyMul = true

	trG, yG, err := MustNew(good).Capture(prog)
	if err != nil {
		t.Fatal(err)
	}
	trB, yB, err := MustNew(bad).Capture(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(yG) != len(yB) {
		t.Fatal("defect changed timing")
	}
	// Find the MUL's last EX cycle and verify the signal differs there.
	spc := DefaultOptions().SamplesPerCycle
	lastEx := -1
	for i := range trG {
		if trG[i].Stages[cpu.EX].Op == isa.MUL && !trG[i].Stages[cpu.EX].Stalled {
			lastEx = i
		}
	}
	if lastEx < 0 {
		t.Fatal("MUL never in EX")
	}
	_ = trB
	seg := func(y []float64) []float64 { return y[lastEx*spc : (lastEx+1)*spc] }
	rmse, err := signal.RMSE(seg(yG), seg(yB))
	if err != nil {
		t.Fatal(err)
	}
	if rmse == 0 {
		t.Error("defect invisible in the MUL's final EX cycle")
	}
	// The defect must be localized: cycles before the MUL reaches EX are
	// bit-identical between the two chips.
	for i := 0; i < (lastEx-3)*spc; i++ {
		if yG[i] != yB[i] {
			t.Fatalf("defect visible at sample %d, before the MUL executes", i)
		}
	}
	// The stage-level EX amplitude must shrink with the fewer output
	// flips (the defective multiplier writes a much smaller product).
	var exG, exB cpu.StageTrace
	for i := range trG {
		if trG[i].Stages[cpu.EX].Op == isa.MUL && !trG[i].Stages[cpu.EX].Stalled {
			exG = trG[i].Stages[cpu.EX]
			exB = trB[i].Stages[cpu.EX]
		}
	}
	p := newPhysics(DefaultOptions().TechSeed)
	if aB, aG := p.stageAmplitude(cpu.EX, &exB), p.stageAmplitude(cpu.EX, &exG); aB >= aG {
		t.Errorf("buggy EX amplitude %v not below correct %v", aB, aG)
	}
}

func BenchmarkDeviceCapture(b *testing.B) {
	prog := nopProgram(b, 100)
	d := MustNew(DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Capture(prog); err != nil {
			b.Fatal(err)
		}
	}
}
