// Package device implements the synthetic "real hardware" that stands in
// for the paper's FPGA board, magnetic probe and oscilloscope. It owns a
// ground-truth EM physics model with HIDDEN parameters — per-(cluster,
// stage) baseline amplitudes, per-bit transition weights, per-stage phase
// couplings, a damped-sinusoid pulse shape, a mild amplitude-compression
// nonlinearity, additive noise, and clock/probe imperfections. EMSim (in
// internal/core) never reads these parameters; it must learn them from
// measurements, exactly as the paper learns them from its FPGA.
package device

import (
	"math"
	"math/rand"

	"emsim/internal/cpu"
	"emsim/internal/isa"
	"emsim/internal/signal"
)

// physics holds the hidden ground truth. All fields are unexported on
// purpose: tests inside this package may inspect them, the model may not.
type physics struct {
	// baseAmp[cluster][stage] is the paper's A*: the instruction-dependent
	// switching amplitude of each pipeline stage for each Table I cluster.
	baseAmp [isa.NumClusters][cpu.NumStages]float64
	// nopAmp[stage] is the minimum-activity amplitude of a stage holding
	// a NOP (or a squashed bubble, which gates the same datapaths).
	nopAmp [cpu.NumStages]float64
	// opScale is a small per-mnemonic deviation within its cluster: the
	// reason representative-based training is approximate, and the reason
	// Table I clusters are tight but not perfectly so.
	opScale map[isa.Op]float64
	// bitWeight[stage] weights each transition bit of the stage's latch
	// feature vector; ALU-output and memory-data bits dominate (§III-B).
	bitWeight [cpu.NumStages][]float64
	// coupling[stage] is the per-source phase coefficient in [−1, 1]
	// (constructive or destructive superposition, §III-C).
	coupling [cpu.NumStages]float64
	// delta is the ambient/system offset.
	delta float64
	// stallLeak is the residual fraction of NOP amplitude a power-gated
	// (stalled) stage still emits.
	stallLeak float64
	// bubbleGate is the fraction of NOP amplitude a squashed (flushed)
	// slot emits: its write-enables are zeroed so it clocks less than a
	// live NOP, but the slot logic is not fully gated like a stall.
	bubbleGate float64
	// compress is the strength of the soft amplitude compression — the
	// mild nonlinearity that keeps a linear model from ever reaching
	// 100 % accuracy.
	compress float64
	// kernel is the device's physical pulse shape (Equ. 5 with the
	// device's own θ and T0, which EMSim must fit).
	kernel signal.Kernel
}

// designSeed fixes the parameters tied to the processor's logical design
// and the base probe placement: the paper finds these (M in Equ. 9)
// transfer across boards (§V-C), so they must not vary with the board
// technology seed.
const designSeed int64 = 0x5EED_DE51

// stageActivity is the structural activity pattern of each cluster across
// the pipeline: which stages a cluster's instructions actually exercise.
// Rows follow isa.Cluster order: ALU, Shift, MUL/DIV, Load(mem), Store,
// Cache(hit), Branch.
var stageActivity = [isa.NumClusters][cpu.NumStages]float64{
	{0.80, 0.90, 1.20, 0.15, 0.20}, // ALU (adder/logic datapath)
	{0.80, 0.90, 0.60, 0.15, 0.18}, // Shift (barrel shifter, lighter EX)
	{0.80, 0.90, 1.80, 0.15, 0.90}, // MUL/DIV (iterative EX unit, wide result write)
	{0.80, 0.90, 0.90, 2.20, 0.90}, // Load from memory (miss)
	{0.80, 0.90, 0.90, 1.60, 0.10}, // Store
	{0.80, 0.90, 0.90, 1.20, 0.90}, // Load from cache (hit)
	{1.70, 0.90, 1.45, 0.10, 0.05}, // Branch (predictor/BTB front-end work)
}

// nopActivity is the NOP/bubble background per stage. A NOP is an
// ordinary ADDI through the datapath with zeroed operands, so its
// front-end footprint matches an ALU instruction's (cf. the small
// ADD-vs-NOP SAVAT entries of Table II); it does not touch MEM and its
// x0 register-file write is suppressed in WB.
var nopActivity = [cpu.NumStages]float64{0.80, 0.88, 1.10, 0.10, 0.08}

// latchWordWeight scales the per-bit weights of each stage latch word;
// index [stage][word]. ALU results (EX word 2) and memory data (MEM word
// 1) dominate, reproducing the paper's finding that "flips in the output
// of the ALU and memory have the most significant impacts".
var latchWordWeight = [cpu.NumStages][cpu.MaxLatchWords]float64{
	{0.0004, 0.0008, 0},      // IF: pc, instruction word
	{0.0008, 0.0008, 0.0005}, // ID: rs1, rs2, imm
	{0.0020, 0.0020, 0.0100}, // EX: operands and (dominant) ALU result
	{0.0015, 0.0045, 0},      // MEM: address, data
	{0.0020, 0.0010, 0},      // WB: value, destination one-hot
}

// newPhysics derives a complete hidden parameter set. techSeed governs
// everything tied to the silicon/board (amplitudes, bit weights); the
// design-linked couplings and kernel come from the fixed designSeed.
func newPhysics(techSeed int64) *physics {
	tech := rand.New(rand.NewSource(techSeed))
	design := rand.New(rand.NewSource(designSeed))

	p := &physics{
		delta:      1.54,
		stallLeak:  0.01,
		bubbleGate: 0.35,
		compress:   0.035,
		kernel: signal.Kernel{
			Kind:          signal.KernelSinExp,
			Theta:         2.5,
			Period:        0.25,
			SupportCycles: 3,
		},
	}

	// Technology-dependent amplitudes: structural pattern × board factor.
	for c := 0; c < isa.NumClusters; c++ {
		for s := 0; s < cpu.NumStages; s++ {
			p.baseAmp[c][s] = stageActivity[c][s] * (0.75 + 0.5*tech.Float64())
		}
	}
	for s := 0; s < cpu.NumStages; s++ {
		p.nopAmp[s] = nopActivity[s] * (0.75 + 0.5*tech.Float64())
	}

	// Per-mnemonic deviations within clusters (σ ≈ 4%).
	p.opScale = make(map[isa.Op]float64, isa.NumOps)
	for _, op := range isa.AllOps() {
		p.opScale[op] = 1 + 0.04*tech.NormFloat64()
	}

	// Sparse per-bit transition weights: ~55% of bits are irrelevant,
	// which is what lets stepwise regression prune >65% of T. A few "hot"
	// bits (long routing, heavy fan-out) carry several times the typical
	// weight — the heterogeneity that makes the equal-weight model of
	// Equ. 7 miss (Figure 3: "not all the bit-flips have similar impact").
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		n := cpu.FeatureBits(s)
		w := make([]float64, n)
		for b := 0; b < n; b++ {
			if tech.Float64() < 0.55 {
				continue
			}
			scale := latchWordWeight[s][b/32]
			w[b] = scale * math.Abs(tech.NormFloat64())
			if tech.Float64() < 0.08 {
				w[b] *= 6
			}
		}
		p.bitWeight[s] = w
	}

	// Design-linked couplings: magnitude in [0.6, 1], random sign.
	for s := 0; s < cpu.NumStages; s++ {
		m := 0.6 + 0.4*design.Float64()
		if design.Intn(2) == 0 {
			m = -m
		}
		p.coupling[s] = m
	}
	return p
}

// alpha computes the ground-truth activity factor of stage s this cycle:
// 1 plus the weighted sum of transition bits (the paper's α, but with the
// hidden non-uniform weights the model must learn).
func (p *physics) alpha(s cpu.Stage, st *cpu.StageTrace) float64 {
	a := 1.0
	w := p.bitWeight[s]
	for word := 0; word < cpu.LatchWords(s); word++ {
		f := st.Flip[word]
		if f == 0 {
			continue
		}
		base := 32 * word
		for b := 0; b < 32; b++ {
			if f&(1<<uint(b)) != 0 {
				a += w[base+b]
			}
		}
	}
	return a
}

// stageAmplitude returns one stage's source amplitude for the cycle,
// before coupling.
func (p *physics) stageAmplitude(s cpu.Stage, st *cpu.StageTrace) float64 {
	switch {
	case st.Stalled:
		// Power-gated stage: almost quiet (§IV).
		return p.stallLeak * p.nopAmp[s]
	case st.Bubble:
		return p.bubbleGate * p.nopAmp[s]
	case st.Inst.IsNOP():
		return p.nopAmp[s] * p.alpha(s, st)
	default:
		base := p.baseAmp[st.Cluster()][s] * p.opScale[st.Op]
		return base * p.alpha(s, st)
	}
}

// cycleAmplitude superposes the five per-stage sources (with the probe's
// per-stage loss coefficients β) and applies the soft compression. The
// ambient offset δ comes from the same die, so it attenuates with the
// average loss.
func (p *physics) cycleAmplitude(c *cpu.Cycle, beta *[cpu.NumStages]float64) float64 {
	meanBeta := 0.0
	for s := 0; s < cpu.NumStages; s++ {
		meanBeta += beta[s]
	}
	meanBeta /= cpu.NumStages
	x := p.delta * meanBeta
	for s := cpu.Stage(0); s < cpu.NumStages; s++ {
		amp := p.stageAmplitude(s, &c.Stages[s])
		x += p.coupling[s] * beta[s] * amp
	}
	return x / (1 + p.compress*math.Abs(x))
}
