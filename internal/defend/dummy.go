package defend

import (
	"fmt"

	"emsim/internal/cpu"
	"emsim/internal/isa"
)

// Dummy injects architecturally-inert instructions into random fetch
// slots: with probability rate, a fetch slot is taken by a random ALU
// operation writing x0 (random opcode, source registers and immediate)
// while the PC holds, so the real instruction stream is delayed and
// interleaved with decoy activity. The injected instructions read live
// registers and drive the pipeline latches like real work, adding both
// amplitude noise and misalignment to the EM trace at a cycle cost of
// roughly rate/(1-rate).
type Dummy struct {
	rate float64
	inj  dummyInjector
}

const defaultDummyRate = 0.15

// NewDummy builds a dummy-insertion countermeasure injecting at the
// given per-fetch-slot probability (0 < rate <= 0.9).
func NewDummy(rate float64) (*Dummy, error) {
	if !(rate > 0 && rate <= 0.9) {
		return nil, fmt.Errorf("defend: dummy rate %g out of range (0, 0.9]", rate)
	}
	return &Dummy{rate: rate}, nil
}

// Name implements Countermeasure.
func (d *Dummy) Name() string { return "dummy" }

// Arm re-seeds the injector for one run; the image is unchanged.
func (d *Dummy) Arm(words []uint32, seed uint64) (Armed, error) {
	d.inj.reset(seed, d.rate)
	return Armed{Words: words, Injector: &d.inj}, nil
}

// dummyPoolSize is the number of pre-encoded decoy instructions drawn
// per run. Generating the pool at Arm time keeps isa.Encode off the
// per-cycle hot path; 64 distinct decoys picked uniformly per injection
// is plenty of variety within a trace.
const dummyPoolSize = 64

type dummyInjector struct {
	rng       prng
	threshold uint64 // rate scaled to the full uint64 range
	pool      [dummyPoolSize]cpu.Injection
}

// dummyOps are the decoy opcodes: single-cycle ALU operations only, so
// an injected instruction can never redirect control flow, touch memory
// or occupy EX for multiple cycles.
var dummyOps = [...]isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.OR, isa.AND, isa.ADDI, isa.XORI, isa.ORI, isa.ANDI, isa.SLTI}

func (d *dummyInjector) reset(seed uint64, rate float64) {
	d.rng = newPRNG(seed)
	d.threshold = uint64(rate * float64(1<<32) * float64(1<<32))
	for i := range d.pool {
		op := dummyOps[d.rng.intn(len(dummyOps))]
		in := isa.Inst{Op: op, Rd: isa.Zero, Rs1: isa.Reg(d.rng.intn(isa.NumRegs))}
		if op.Format() == isa.FormatR {
			in.Rs2 = isa.Reg(d.rng.intn(isa.NumRegs))
		} else {
			// Random sign-extended 12-bit immediate.
			in.Imm = int32(d.rng.next()&0xFFF) << 20 >> 20
		}
		d.pool[i] = cpu.Injection{Kind: cpu.InjectInst, Inst: in, Word: isa.MustEncode(in)}
	}
}

// Inject implements cpu.FetchInjector.
//
//emsim:noalloc
func (d *dummyInjector) Inject(cycle int, pc uint32) cpu.Injection {
	if d.rng.next() >= d.threshold {
		return cpu.Injection{}
	}
	return d.pool[d.rng.intn(dummyPoolSize)]
}
