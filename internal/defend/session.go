package defend

import (
	"context"
	"fmt"

	"emsim/internal/core"
	"emsim/internal/cpu"
)

// Session runs defended simulations: it wraps a core.Session and, per
// trace, arms its countermeasure with a stream seed keyed by the trace
// index, installs the resulting fetch injector for the duration of the
// run, and executes the (possibly transformed) image. A nil
// countermeasure makes the Session a plain baseline simulator, so one
// code path serves both arms of an evaluation.
//
// Like core.Session, a Session is not safe for concurrent use; parallel
// campaigns build one per worker. Because the randomization is keyed by
// (seed, trace index), not by worker identity, results are byte-identical
// at any worker count.
type Session struct {
	sess *core.Session
	cm   Countermeasure
	seed int64
	next int64
	sig  []float64
}

// NewSession builds a defended simulation pipeline. cm may be nil for a
// baseline (undefended) session.
func NewSession(m *core.Model, cfg cpu.Config, cm Countermeasure, seed int64) (*Session, error) {
	s, err := core.NewSession(m, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{sess: s, cm: cm, seed: seed}, nil
}

// Core exposes the wrapped core.Session (for stats, register/memory
// inspection after a run).
func (s *Session) Core() *core.Session { return s.sess }

// Countermeasure returns the armed countermeasure (nil for baseline).
func (s *Session) Countermeasure() Countermeasure { return s.cm }

// Cycles returns the clock-cycle count of the last simulated trace.
func (s *Session) Cycles() int { return s.sess.Cycles() }

// Stats returns the core statistics of the last simulated trace.
func (s *Session) Stats() cpu.Stats { return s.sess.Stats() }

// SimulateTraceInto runs one defended trace of the program into dst
// (core.Session.SimulateProgramInto reuse semantics). index keys the
// per-trace randomization: the same (session seed, index, words) triple
// always produces the same signal, whichever worker runs it.
func (s *Session) SimulateTraceInto(ctx context.Context, dst []float64, index int64, words []uint32) ([]float64, error) {
	run := words
	if s.cm != nil {
		armed, err := s.cm.Arm(words, stream(s.seed, laneArm, index))
		if err != nil {
			return nil, fmt.Errorf("defend: arm %s: %w", s.cm.Name(), err)
		}
		run = armed.Words
		core := s.sess.CPU()
		core.SetFetchInjector(armed.Injector)
		defer core.SetFetchInjector(nil)
	}
	return s.sess.SimulateProgramIntoContext(ctx, dst, run)
}

// SimulateProgram implements leakage.Simulator: each call simulates one
// defended trace under the next consecutive randomization index
// (starting at zero; see ResetStream) and returns a fresh signal the
// caller may retain.
func (s *Session) SimulateProgram(words []uint32) ([]float64, error) {
	index := s.next
	s.next++
	//emsim:ignore ctxflow the context-free leakage.Simulator interface fixes this signature; SimulateTraceInto is the cancellable form
	sig, err := s.SimulateTraceInto(context.Background(), s.sig, index, words)
	if err != nil {
		return nil, err
	}
	s.sig = sig[:0] // keep the grown buffer for the next trace
	out := make([]float64, len(sig))
	copy(out, sig)
	return out, nil
}

// ResetStream rewinds (or repositions) the randomization index used by
// SimulateProgram, making leakage campaigns replayable.
func (s *Session) ResetStream(next int64) { s.next = next }
