package defend

import (
	"fmt"

	"emsim/internal/cpu"
)

// Jitter inserts randomized stall bubbles into the fetch stream with a
// probability that is itself redrawn per region of cycles: within one
// region of `region` cycles, each accepting fetch slot stalls with a
// fixed probability drawn uniformly from [0, 2*rate]. The two-level
// randomness desynchronizes traces at both fine (per-slot) and coarse
// (per-region drift) time scales, which is what defeats averaging and
// fixed-offset correlation; the mean cycle overhead is roughly
// rate/(1-rate).
type Jitter struct {
	rate   float64
	region int
	inj    jitterInjector
}

const (
	defaultJitterRate   = 0.10
	defaultJitterRegion = 64
)

// NewJitter builds a jitter countermeasure with the given mean stall
// rate (0 < rate <= 0.45, so the per-region draw stays below 0.9) and
// region length in cycles.
func NewJitter(rate float64, region int) (*Jitter, error) {
	if !(rate > 0 && rate <= 0.45) {
		return nil, fmt.Errorf("defend: jitter rate %g out of range (0, 0.45]", rate)
	}
	if region < 1 {
		return nil, fmt.Errorf("defend: jitter region %d cycles; need >= 1", region)
	}
	return &Jitter{rate: rate, region: region}, nil
}

// Name implements Countermeasure.
func (j *Jitter) Name() string { return "jitter" }

// Arm re-seeds the injector for one run; the image is unchanged.
func (j *Jitter) Arm(words []uint32, seed uint64) (Armed, error) {
	j.inj.reset(seed, j.rate, j.region)
	return Armed{Words: words, Injector: &j.inj}, nil
}

type jitterInjector struct {
	rng       prng
	region    int
	regionEnd int    // first cycle of the next region
	maxThresh uint64 // 2*rate scaled to the full uint64 range
	threshold uint64 // current region's stall probability, same scale
}

func (j *jitterInjector) reset(seed uint64, rate float64, region int) {
	j.rng = newPRNG(seed)
	j.region = region
	j.regionEnd = 0
	j.maxThresh = uint64(2 * rate * float64(1<<32) * float64(1<<32))
	j.threshold = 0
}

// Inject implements cpu.FetchInjector.
//
//emsim:noalloc
func (j *jitterInjector) Inject(cycle int, pc uint32) cpu.Injection {
	if cycle >= j.regionEnd {
		j.regionEnd = cycle + j.region
		j.threshold = j.rng.next() % (j.maxThresh + 1)
	}
	if j.rng.next() < j.threshold {
		return cpu.Injection{Kind: cpu.InjectBubble}
	}
	return cpu.Injection{}
}
