package defend

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// quickEvalOptions is a small campaign that still exercises every stage:
// TVLA sweep {4,8}, CPA grid {12, 24}.
func quickEvalOptions(t *testing.T, defense string) Options {
	t.Helper()
	sp, err := ParseSpec(defense)
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Model:      defendTestModel(t),
		Defense:    sp,
		Seed:       11,
		TVLATraces: 8,
		CPATraces:  24,
		CPAStep:    12,
		CPAPoints:  64,
	}
}

// TestEvaluateWorkerDeterminism is the acceptance property: a defended
// evaluation is byte-identical at any worker count.
func TestEvaluateWorkerDeterminism(t *testing.T) {
	for _, defense := range []string{"shuffle", "dummy", "jitter:rate=0.2,region=32"} {
		opts := quickEvalOptions(t, defense)
		opts.Workers = 1
		seq, err := Evaluate(context.Background(), opts)
		if err != nil {
			t.Fatalf("%s sequential: %v", defense, err)
		}
		opts.Workers = 4
		par, err := Evaluate(context.Background(), opts)
		if err != nil {
			t.Fatalf("%s parallel: %v", defense, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: report differs between 1 and 4 workers:\nseq: %+v\npar: %+v", defense, seq, par)
		}
	}
}

func TestEvaluateCancellation(t *testing.T) {
	opts := quickEvalOptions(t, "shuffle")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Evaluate(ctx, opts); err == nil {
		t.Fatal("cancelled evaluation returned no error")
	}
}

func TestEvaluateProgress(t *testing.T) {
	opts := quickEvalOptions(t, "dummy")
	// Workers invoke the callback concurrently and counts may arrive out
	// of order, so the test tracks the per-arm maximum under a lock.
	var mu sync.Mutex
	maxDone := map[string]int{}
	total := 0
	opts.Progress = func(arm string, done, tot int) {
		mu.Lock()
		if done > maxDone[arm] {
			maxDone[arm] = done
		}
		total = tot
		mu.Unlock()
	}
	if _, err := Evaluate(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	want := opts.CPATraces + 2*opts.TVLATraces
	if total != want {
		t.Errorf("progress total %d, want %d", total, want)
	}
	if maxDone["baseline"] != want || maxDone["dummy"] != want {
		t.Errorf("progress did not reach total: %v", maxDone)
	}
}

// TestEvaluateProgressConcurrent locks in the callback contract: workers
// invoke Progress concurrently, outside any evaluator lock. The first
// callback parks until a second callback arrives from another worker;
// under the old delivery (serialized inside the simulation mutex) no
// second callback can arrive and the evaluation times out.
func TestEvaluateProgressConcurrent(t *testing.T) {
	opts := quickEvalOptions(t, "dummy")
	opts.Workers = 2
	var (
		parked    atomic.Bool
		closeOnce sync.Once
	)
	release := make(chan struct{})
	opts.Progress = func(arm string, done, total int) {
		if parked.CompareAndSwap(false, true) {
			select {
			case <-release:
			case <-time.After(30 * time.Second):
				t.Error("no concurrent progress callback arrived while one was parked")
			}
			return
		}
		closeOnce.Do(func() { close(release) })
	}
	done := make(chan error, 1)
	go func() {
		_, err := Evaluate(context.Background(), opts)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("Evaluate never returned with a blocking progress callback")
	}
}

// TestEvaluateShuffleSecurity is the paper-loop acceptance check: on the
// AES fixed-vs-random workload the baseline must leak (huge |t|, key
// disclosed) and shuffling must measurably reduce |t|max and increase
// the CPA attack cost, at a reported cycle overhead.
func TestEvaluateShuffleSecurity(t *testing.T) {
	if testing.Short() {
		t.Skip("full defense evaluation is not short")
	}
	opts := Options{
		Model:   defendTestModel(t),
		Defense: mustSpec(t, "shuffle"),
		Seed:    1,
	}
	r, err := Evaluate(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.Baseline.MaxAbsT <= 4.5 {
		t.Errorf("baseline TVLA |t|max = %.2f; expected clear leakage > 4.5", r.Baseline.MaxAbsT)
	}
	if r.Baseline.DiscloseTraces == 0 {
		t.Error("baseline CPA did not disclose the key byte within budget")
	}
	if r.LeakageReduction <= 0.5 {
		t.Errorf("shuffle leakage reduction %.2f; expected > 0.5", r.LeakageReduction)
	}
	if r.AttackCostMultiplier <= 1 {
		t.Errorf("attack cost multiplier %.2f; expected > 1", r.AttackCostMultiplier)
	}
	if r.Defended.MeanCycles <= 0 || r.Baseline.MeanCycles <= 0 {
		t.Error("mean cycles not reported")
	}
}

func mustSpec(t *testing.T, s string) Spec {
	t.Helper()
	sp, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestSweepSizesContract pins the sweep-grid invariants the streaming
// evaluator depends on: strictly ascending (sorted and unique, so the
// single cursor in evaluateArm visits every point exactly once) and
// always ending at exactly N (so the final snapshot lands on the full
// budget).
func TestSweepSizesContract(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{4, []int{4}},
		{5, []int{4, 5}},
		{8, []int{4, 8}},
		{12, []int{4, 8, 12}},
		{16, []int{4, 8, 16}},
		{17, []int{4, 8, 16, 17}},
		{64, []int{4, 8, 16, 32, 64}},
		{100, []int{4, 8, 16, 32, 64, 100}},
		{1024, []int{4, 8, 16, 32, 64, 128, 256, 512, 1024}},
	}
	for _, tc := range cases {
		got := sweepSizes(tc.n)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("sweepSizes(%d) = %v, want %v", tc.n, got, tc.want)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Errorf("sweepSizes(%d) not strictly ascending at %d: %v", tc.n, i, got)
			}
		}
		if got[len(got)-1] != tc.n {
			t.Errorf("sweepSizes(%d) does not end at N: %v", tc.n, got)
		}
	}
}

// TestEvaluateSurfacesTruncation pins the attacker's-view geometry in
// ArmResult: a baseline arm produces fixed-length traces (nothing
// truncated), while a jitter arm produces variable-length traces whose
// alignment to the shortest must be reported, not silently applied.
func TestEvaluateSurfacesTruncation(t *testing.T) {
	opts := quickEvalOptions(t, "jitter:rate=0.3,region=32")
	r, err := Evaluate(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range []ArmResult{r.Baseline, r.Defended} {
		if arm.CPASamples <= 0 || arm.TVLASamples <= 0 {
			t.Errorf("%s: sample geometry not reported: CPA %d, TVLA %d", arm.Name, arm.CPASamples, arm.TVLASamples)
		}
	}
	if r.Baseline.CPATruncated != 0 || r.Baseline.TVLATruncated != 0 {
		t.Errorf("baseline reports truncation on fixed-length traces: CPA %d, TVLA %d",
			r.Baseline.CPATruncated, r.Baseline.TVLATruncated)
	}
	if r.Defended.CPATruncated <= 0 && r.Defended.TVLATruncated <= 0 {
		t.Errorf("jitter arm reports no truncation anywhere: CPA %d, TVLA %d",
			r.Defended.CPATruncated, r.Defended.TVLATruncated)
	}
}

// TestCheckBudget pins the shared fail-fast guard used by withDefaults
// and the serving layer: zero means "use the default" and passes, and
// each floor rejects with a field-specific message.
func TestCheckBudget(t *testing.T) {
	cases := []struct {
		tvla, cpa, step int
		ok              bool
	}{
		{0, 0, 0, true},
		{4, 12, 4, true},
		{64, 512, 64, true},
		{3, 0, 0, false},
		{0, 11, 0, false},
		{0, 0, 3, false},
		{-1, 0, 0, false},
	}
	for _, tc := range cases {
		err := CheckBudget(tc.tvla, tc.cpa, tc.step)
		if (err == nil) != tc.ok {
			t.Errorf("CheckBudget(%d, %d, %d) err=%v, want ok=%v", tc.tvla, tc.cpa, tc.step, err, tc.ok)
		}
	}
}
