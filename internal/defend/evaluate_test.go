package defend

import (
	"context"
	"reflect"
	"testing"
)

// quickEvalOptions is a small campaign that still exercises every stage:
// TVLA sweep {4,8}, CPA grid {12, 24}.
func quickEvalOptions(t *testing.T, defense string) Options {
	t.Helper()
	sp, err := ParseSpec(defense)
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Model:      defendTestModel(t),
		Defense:    sp,
		Seed:       11,
		TVLATraces: 8,
		CPATraces:  24,
		CPAStep:    12,
		CPAPoints:  64,
	}
}

// TestEvaluateWorkerDeterminism is the acceptance property: a defended
// evaluation is byte-identical at any worker count.
func TestEvaluateWorkerDeterminism(t *testing.T) {
	for _, defense := range []string{"shuffle", "dummy", "jitter:rate=0.2,region=32"} {
		opts := quickEvalOptions(t, defense)
		opts.Workers = 1
		seq, err := Evaluate(context.Background(), opts)
		if err != nil {
			t.Fatalf("%s sequential: %v", defense, err)
		}
		opts.Workers = 4
		par, err := Evaluate(context.Background(), opts)
		if err != nil {
			t.Fatalf("%s parallel: %v", defense, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: report differs between 1 and 4 workers:\nseq: %+v\npar: %+v", defense, seq, par)
		}
	}
}

func TestEvaluateCancellation(t *testing.T) {
	opts := quickEvalOptions(t, "shuffle")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Evaluate(ctx, opts); err == nil {
		t.Fatal("cancelled evaluation returned no error")
	}
}

func TestEvaluateProgress(t *testing.T) {
	opts := quickEvalOptions(t, "dummy")
	last := map[string]int{}
	total := 0
	opts.Progress = func(arm string, done, tot int) {
		last[arm] = done
		total = tot
	}
	if _, err := Evaluate(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	want := opts.CPATraces + 2*opts.TVLATraces
	if total != want {
		t.Errorf("progress total %d, want %d", total, want)
	}
	if last["baseline"] != want || last["dummy"] != want {
		t.Errorf("progress did not reach total: %v", last)
	}
}

// TestEvaluateShuffleSecurity is the paper-loop acceptance check: on the
// AES fixed-vs-random workload the baseline must leak (huge |t|, key
// disclosed) and shuffling must measurably reduce |t|max and increase
// the CPA attack cost, at a reported cycle overhead.
func TestEvaluateShuffleSecurity(t *testing.T) {
	if testing.Short() {
		t.Skip("full defense evaluation is not short")
	}
	opts := Options{
		Model:   defendTestModel(t),
		Defense: mustSpec(t, "shuffle"),
		Seed:    1,
	}
	r, err := Evaluate(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r)
	if r.Baseline.MaxAbsT <= 4.5 {
		t.Errorf("baseline TVLA |t|max = %.2f; expected clear leakage > 4.5", r.Baseline.MaxAbsT)
	}
	if r.Baseline.DiscloseTraces == 0 {
		t.Error("baseline CPA did not disclose the key byte within budget")
	}
	if r.LeakageReduction <= 0.5 {
		t.Errorf("shuffle leakage reduction %.2f; expected > 0.5", r.LeakageReduction)
	}
	if r.AttackCostMultiplier <= 1 {
		t.Errorf("attack cost multiplier %.2f; expected > 1", r.AttackCostMultiplier)
	}
	if r.Defended.MeanCycles <= 0 || r.Baseline.MeanCycles <= 0 {
		t.Error("mean cycles not reported")
	}
}

func mustSpec(t *testing.T, s string) Spec {
	t.Helper()
	sp, err := ParseSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}
