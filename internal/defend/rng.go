package defend

// Randomization plumbing. Every random decision a countermeasure or the
// evaluation harness makes is drawn from a stream keyed by (campaign
// seed, lane, index) — the Trainer's keyed-stream pattern — so a given
// trace's randomization is a pure function of its identity, not of which
// worker simulated it or in what order. That is what makes defended
// campaigns byte-identical at any worker count.

// lane separates the independent random streams of one campaign.
type lane uint64

const (
	laneArm   lane = 1 + iota // per-trace countermeasure randomization
	lanePlain                 // CPA plaintext generation
	laneNoise                 // per-trace measurement noise
	laneTVLA                  // TVLA random-group plaintexts
	lanePart                  // derives per-campaign-part session seeds
)

// stream mixes (seed, lane, index) into one well-distributed 64-bit
// stream seed (splitmix64-style finalizer).
func stream(seed int64, l lane, index int64) uint64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(l)*0xD1B54A32D192ED03 ^ uint64(index)*0x8CB92BA72F3D8DD7
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// prng is a splitmix64 generator small enough to live inside
// //emsim:noalloc hot paths: plain integer arithmetic, no stdlib calls,
// no heap state.
type prng struct{ state uint64 }

func newPRNG(seed uint64) prng { return prng{state: seed} }

// next returns the next 64-bit output.
//
//emsim:noalloc
func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a value in [0, n). The modulo bias is negligible for the
// tiny n used here (window sizes, register counts).
//
//emsim:noalloc
func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }
