package defend

import (
	"fmt"

	"emsim/internal/isa"
)

// Shuffle is a ShuffleV-style static randomization: each Arm emits a
// differently-permuted but architecturally equivalent program image.
// The code region is cut into windows whose instructions are provably
// independent under a conservative dataflow analysis (register RAW/WAR/
// WAW plus store-ordering), and each window is reordered by seeded random
// list scheduling. An attacker averaging or correlating over many runs
// no longer sees a fixed operation at a fixed cycle.
//
// Safety model: the image is treated as code from index 0 up to and
// including the first ECALL/EBREAK (every in-tree program builder lays
// out code first, one final EBREAK, then data); everything after is data
// and is never touched. Windows never contain or cross control flow
// (branches, jumps, ECALL/EBREAK, FENCE), position-dependent
// instructions (AUIPC) or undecodable words, and never cross a
// branch/JAL target, so control always enters a window at its start and
// runs it to completion — any topological order of the window's
// dependence DAG reaches the same architectural state. An indirect jump
// (JALR) anywhere in the code region disables shuffling entirely for
// that image, since its targets cannot be bounded statically.
type Shuffle struct {
	window int

	// scratch, reused across Arm calls
	out   []uint32
	insts []isa.Inst
	dec   []bool
	tgt   []bool
	dep   []uint64
	ready []int
	perm  []int
}

const (
	defaultShuffleWindow = 24
	maxShuffleWindow     = 64 // dependence masks are single uint64 bitsets
)

// NewShuffle builds a shuffling countermeasure with the given maximum
// window size (instructions per reordering window, 2..64).
func NewShuffle(window int) (*Shuffle, error) {
	if window < 2 || window > maxShuffleWindow {
		return nil, fmt.Errorf("defend: shuffle window %d out of range [2,%d]", window, maxShuffleWindow)
	}
	return &Shuffle{window: window}, nil
}

// Name implements Countermeasure.
func (s *Shuffle) Name() string { return "shuffle" }

// Arm returns a freshly permuted copy of the image. The returned slice
// is owned by the Shuffle and invalidated by its next Arm call.
func (s *Shuffle) Arm(words []uint32, seed uint64) (Armed, error) {
	rng := newPRNG(seed)
	n := len(words)
	s.out = append(s.out[:0], words...)
	if cap(s.insts) < n {
		s.insts = make([]isa.Inst, n)
		s.dec = make([]bool, n)
		s.tgt = make([]bool, n)
	}
	s.insts = s.insts[:n]
	s.dec = s.dec[:n]
	s.tgt = s.tgt[:n]

	// Pass 1: decode and find the end of the code region (first system
	// instruction, inclusive). JALR makes targets unboundable — bail to
	// the identity transform.
	codeEnd := n
	for i := 0; i < n; i++ {
		in, ok := isa.TryDecode(words[i])
		s.insts[i], s.dec[i], s.tgt[i] = in, ok, false
		if !ok {
			continue
		}
		if in.Op == isa.JALR {
			return Armed{Words: s.out}, nil
		}
		if in.Op.IsSystem() {
			codeEnd = i + 1
			break
		}
	}

	// Pass 2: mark branch/JAL targets inside the code region; windows
	// must not cross a join point.
	for i := 0; i < codeEnd; i++ {
		if !s.dec[i] {
			continue
		}
		op := s.insts[i].Op
		if op.IsBranch() || op == isa.JAL {
			if off := s.insts[i].Imm; off%4 == 0 {
				if ti := i + int(off/4); ti >= 0 && ti < codeEnd {
					s.tgt[ti] = true
				}
			}
		}
	}

	// Pass 3: cut windows at barriers, targets and the size cap, and
	// permute each.
	start := 0
	for i := 0; i < codeEnd; i++ {
		if s.tgt[i] {
			s.shuffleWindow(&rng, words, start, i)
			start = i
		}
		if shuffleBarrier(s.dec[i], s.insts[i].Op) {
			s.shuffleWindow(&rng, words, start, i)
			start = i + 1
			continue
		}
		if i+1-start >= s.window {
			s.shuffleWindow(&rng, words, start, i+1)
			start = i + 1
		}
	}
	s.shuffleWindow(&rng, words, start, codeEnd)
	return Armed{Words: s.out}, nil
}

// shuffleBarrier reports whether an instruction may not move and cuts
// the current window: control flow, system ops, FENCE, the
// position-dependent AUIPC, and anything that failed to decode.
func shuffleBarrier(decoded bool, op isa.Op) bool {
	if !decoded {
		return true
	}
	return op.IsBranch() || op.IsJump() || op.IsSystem() || op == isa.FENCE || op == isa.AUIPC
}

// shuffleWindow permutes words[lo:hi] of the original image into s.out
// by random list scheduling over the window's dependence DAG.
func (s *Shuffle) shuffleWindow(rng *prng, words []uint32, lo, hi int) {
	n := hi - lo
	if n < 2 {
		return
	}
	if cap(s.dep) < n {
		s.dep = make([]uint64, n)
	}
	dep := s.dep[:n]
	// dep[j] holds one bit per earlier window instruction j must stay
	// behind.
	for j := 0; j < n; j++ {
		dep[j] = 0
		for i := 0; i < j; i++ {
			if instConflict(&s.insts[lo+i], &s.insts[lo+j]) {
				dep[j] |= 1 << uint(i)
			}
		}
	}
	remaining := ^uint64(0) >> (64 - uint(n))
	perm := s.perm[:0]
	ready := s.ready
	for len(perm) < n {
		ready = ready[:0]
		for i := 0; i < n; i++ {
			if remaining&(1<<uint(i)) != 0 && dep[i]&remaining == 0 {
				ready = append(ready, i)
			}
		}
		pick := ready[rng.intn(len(ready))]
		perm = append(perm, pick)
		remaining &^= 1 << uint(pick)
	}
	s.perm, s.ready = perm, ready
	for k, src := range perm {
		s.out[lo+k] = words[lo+src]
	}
}

// instConflict reports whether instruction b (later in program order)
// must stay ordered after a: register RAW/WAR/WAW through any real
// register, or memory ordering (every pair involving a store stays
// ordered; loads commute freely with loads).
func instConflict(a, b *isa.Inst) bool {
	aMem := a.Op.IsLoad() || a.Op.IsStore()
	bMem := b.Op.IsLoad() || b.Op.IsStore()
	if aMem && bMem && (a.Op.IsStore() || b.Op.IsStore()) {
		return true
	}
	aw, awOK := instWrite(a)
	bw, bwOK := instWrite(b)
	if awOK && instReads(b, aw) { // RAW
		return true
	}
	if bwOK && instReads(a, bw) { // WAR
		return true
	}
	if awOK && bwOK && aw == bw { // WAW
		return true
	}
	return false
}

// instWrite returns the register an instruction actually writes (writes
// to x0 are architectural no-ops and carry no dependence).
func instWrite(in *isa.Inst) (isa.Reg, bool) {
	if in.Op.WritesRd() && in.Rd != isa.Zero {
		return in.Rd, true
	}
	return 0, false
}

// instReads reports whether the instruction reads register r.
func instReads(in *isa.Inst, r isa.Reg) bool {
	return (in.Op.ReadsRs1() && in.Rs1 == r) || (in.Op.ReadsRs2() && in.Rs2 == r)
}
