package defend

import (
	"testing"

	"emsim/internal/cpu"
	"emsim/internal/isa"
)

// fuzzProgram layout: a prolog pins s0 at the data region, up to
// fuzzMaxInsts generated instructions follow, then the terminating
// EBREAK; the image is padded to fuzzImageWords words with a data
// region in the tail that loads and stores address through s0.
const (
	fuzzMaxInsts   = 40
	fuzzCodeWords  = 48
	fuzzImageWords = 64
	fuzzDataBase   = fuzzCodeWords * 4
)

// fuzzRegs is the register pool the generator draws operands from. s0
// is deliberately excluded from destinations so every memory access
// stays inside the image's data region.
var fuzzRegs = [...]isa.Reg{
	isa.T0, isa.T1, isa.T2, isa.T3, isa.T4, isa.T5, isa.T6,
	isa.A0, isa.A1, isa.A2, isa.A3, isa.S1, isa.S2,
}

// buildFuzzProgram derives a well-formed, terminating program from raw
// fuzz bytes: ALU register/immediate ops, loads and stores confined to
// the data region, MULs, and forward-only branches (so execution always
// reaches the EBREAK). It returns the image and the index of the
// EBREAK.
func buildFuzzProgram(data []byte) ([]uint32, int) {
	n := len(data) / 3
	if n > fuzzMaxInsts {
		n = fuzzMaxInsts
	}
	insts := []isa.Inst{isa.Addi(isa.S0, isa.Zero, fuzzDataBase)}
	for i := 0; i < n; i++ {
		b0, b1, b2 := data[3*i], data[3*i+1], data[3*i+2]
		rd := fuzzRegs[int(b1)%len(fuzzRegs)]
		rs1 := fuzzRegs[int(b1>>4)%len(fuzzRegs)]
		rs2 := fuzzRegs[int(b2)%len(fuzzRegs)]
		off := int32(b2%16) * 4
		switch b0 % 8 {
		case 0:
			insts = append(insts, isa.Add(rd, rs1, rs2))
		case 1:
			insts = append(insts, isa.Inst{Op: isa.SUB, Rd: rd, Rs1: rs1, Rs2: rs2})
		case 2:
			insts = append(insts, isa.Inst{Op: isa.XOR, Rd: rd, Rs1: rs1, Rs2: rs2})
		case 3:
			insts = append(insts, isa.Inst{Op: isa.MUL, Rd: rd, Rs1: rs1, Rs2: rs2})
		case 4:
			insts = append(insts, isa.Addi(rd, rs1, int32(int8(b2))))
		case 5:
			insts = append(insts, isa.Lw(rd, isa.S0, off))
		case 6:
			insts = append(insts, isa.Sw(rs2, isa.S0, off))
		case 7:
			// Forward-only branch: the target lies between the next
			// instruction and the EBREAK (index n+1), so the program
			// cannot loop.
			here := len(insts)
			maxSkip := (n + 1) - here
			skip := 1 + int(b2)%maxSkip
			op := isa.BEQ
			if b1&0x80 != 0 {
				op = isa.BNE
			}
			insts = append(insts, isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: int32(skip) * 4})
		}
	}
	ebreak := len(insts)
	insts = append(insts, isa.Ebreak())

	image := make([]uint32, fuzzImageWords)
	for i, in := range insts {
		image[i] = isa.MustEncode(in)
	}
	// Deterministic non-zero data pattern for the load/store region.
	for i := fuzzCodeWords; i < fuzzImageWords; i++ {
		image[i] = uint32(i) * 0x9E3779B1
	}
	return image, ebreak
}

// fuzzArchState runs an image and returns its final architectural
// state: the register file plus the data-region words.
func fuzzArchState(t *testing.T, image []uint32) ([isa.NumRegs]uint32, [fuzzImageWords - fuzzCodeWords]uint32) {
	t.Helper()
	c := cpu.MustNew(cpu.DefaultConfig())
	if _, err := c.RunProgram(image); err != nil {
		t.Fatalf("run: %v", err)
	}
	var regs [isa.NumRegs]uint32
	for r := 0; r < isa.NumRegs; r++ {
		regs[r] = c.Reg(isa.Reg(r))
	}
	var mem [fuzzImageWords - fuzzCodeWords]uint32
	for i := range mem {
		mem[i] = c.Memory().ReadWord(uint32(fuzzDataBase + 4*i))
	}
	return regs, mem
}

// FuzzShuffleSemantics is the semantic-preservation property of the
// shuffle countermeasure: for any generated program and any shuffle
// seed, the shuffled image must reach exactly the architectural state
// (all 32 registers and the whole data region) of the original.
func FuzzShuffleSemantics(f *testing.F) {
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 2, 2}, uint64(1))
	// A RAW/WAR/memory-dependence-heavy mix with a branch.
	f.Add([]byte{
		4, 0x12, 0x55, // addi
		0, 0x21, 0x03, // add
		6, 0x31, 0x04, // sw
		5, 0x13, 0x04, // lw
		7, 0x91, 0x02, // bne forward
		3, 0x42, 0x15, // mul
		1, 0x24, 0x31, // sub
	}, uint64(7))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		image, ebreak := buildFuzzProgram(data)
		wantRegs, wantMem := fuzzArchState(t, image)

		sh, err := NewShuffle(defaultShuffleWindow)
		if err != nil {
			t.Fatal(err)
		}
		armed, err := sh.Arm(image, seed)
		if err != nil {
			t.Fatalf("arm: %v", err)
		}
		if len(armed.Words) != len(image) {
			t.Fatalf("image length changed: %d -> %d", len(image), len(armed.Words))
		}
		if !wordsEqual(armed.Words[ebreak:], image[ebreak:]) {
			t.Fatal("shuffle modified the image at or beyond the EBREAK")
		}
		shuffled := append([]uint32(nil), armed.Words...)
		gotRegs, gotMem := fuzzArchState(t, shuffled)
		if gotRegs != wantRegs {
			t.Fatalf("registers diverged\noriginal: %08x\nshuffled: %08x", image, shuffled)
		}
		if gotMem != wantMem {
			t.Fatalf("data region diverged\noriginal: %08x\nshuffled: %08x", image, shuffled)
		}
	})
}
