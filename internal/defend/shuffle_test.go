package defend

import (
	"testing"

	"emsim/internal/aes"
	"emsim/internal/cpu"
	"emsim/internal/isa"
)

// runWords executes a program on a fresh core and returns the final
// register file and the halted core for memory inspection.
func runWords(t *testing.T, words []uint32) ([isa.NumRegs]uint32, *cpu.CPU) {
	t.Helper()
	c := cpu.MustNew(cpu.DefaultConfig())
	if _, err := c.RunProgram(words); err != nil {
		t.Fatalf("run: %v", err)
	}
	var regs [isa.NumRegs]uint32
	for r := 0; r < isa.NumRegs; r++ {
		regs[r] = c.Reg(isa.Reg(r))
	}
	return regs, c
}

func TestShufflePreservesAESSemantics(t *testing.T) {
	prog, err := aes.BuildProgram(DefaultKey, DefaultFixed)
	if err != nil {
		t.Fatal(err)
	}
	_, base := runWords(t, prog.Words)
	want := prog.Output(base.Memory().ReadWord)
	if ref := aes.Reference(DefaultKey, DefaultFixed); want != ref {
		t.Fatalf("baseline AES output %x != reference %x", want, ref)
	}

	sh, err := NewShuffle(defaultShuffleWindow)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for seed := uint64(0); seed < 8; seed++ {
		armed, err := sh.Arm(prog.Words, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(armed.Words) != len(prog.Words) {
			t.Fatalf("seed %d: image length changed %d -> %d", seed, len(prog.Words), len(armed.Words))
		}
		if !wordsEqual(armed.Words, prog.Words) {
			changed++
		}
		// Arm invalidates its buffer on the next call; run from a copy.
		image := append([]uint32(nil), armed.Words...)
		_, c := runWords(t, image)
		if got := prog.Output(c.Memory().ReadWord); got != want {
			t.Fatalf("seed %d: shuffled AES output %x, want %x", seed, got, want)
		}
	}
	if changed == 0 {
		t.Fatal("no seed produced a permuted image; shuffle is a no-op on the AES program")
	}
}

func TestShuffleDeterministicPerSeed(t *testing.T) {
	prog, err := aes.BuildProgram(DefaultKey, DefaultFixed)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := NewShuffle(defaultShuffleWindow)
	b, _ := NewShuffle(defaultShuffleWindow)
	armedA, err := a.Arm(prog.Words, 42)
	if err != nil {
		t.Fatal(err)
	}
	copyA := append([]uint32(nil), armedA.Words...)
	armedB, err := b.Arm(prog.Words, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !wordsEqual(copyA, armedB.Words) {
		t.Fatal("same seed produced different permutations")
	}
	armedC, err := b.Arm(prog.Words, 43)
	if err != nil {
		t.Fatal(err)
	}
	if wordsEqual(copyA, armedC.Words) {
		t.Fatal("different seeds produced identical permutations (suspicious)")
	}
}

func TestShuffleLeavesDataUntouched(t *testing.T) {
	prog, err := aes.BuildProgram(DefaultKey, DefaultFixed)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the single EBREAK terminating the code region.
	codeEnd := -1
	for i, w := range prog.Words {
		if in, ok := isa.TryDecode(w); ok && in.Op.IsSystem() {
			codeEnd = i + 1
			break
		}
	}
	if codeEnd < 0 {
		t.Fatal("no system instruction in AES image")
	}
	sh, _ := NewShuffle(defaultShuffleWindow)
	armed, err := sh.Arm(prog.Words, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !wordsEqual(armed.Words[codeEnd:], prog.Words[codeEnd:]) {
		t.Fatal("shuffle modified the data region after the terminating EBREAK")
	}
}

func TestShuffleJALRDisablesTransform(t *testing.T) {
	words := []uint32{
		isa.MustEncode(isa.Addi(isa.T0, isa.Zero, 8)),
		isa.MustEncode(isa.Addi(isa.T1, isa.Zero, 3)),
		isa.MustEncode(isa.Inst{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.T0}),
		isa.MustEncode(isa.Addi(isa.T2, isa.Zero, 1)),
		isa.MustEncode(isa.Ebreak()),
	}
	sh, _ := NewShuffle(8)
	for seed := uint64(0); seed < 16; seed++ {
		armed, err := sh.Arm(words, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !wordsEqual(armed.Words, words) {
			t.Fatalf("seed %d: image with JALR was transformed", seed)
		}
	}
}

func TestShuffleRespectsDependences(t *testing.T) {
	// t1 = 5; t2 = t1 + 2; store t2; load it back — a chain with RAW and
	// memory dependences that admits exactly one order.
	words := []uint32{
		isa.MustEncode(isa.Addi(isa.S0, isa.Zero, 64)), // data base
		isa.MustEncode(isa.Addi(isa.T1, isa.Zero, 5)),
		isa.MustEncode(isa.Addi(isa.T2, isa.T1, 2)),
		isa.MustEncode(isa.Sw(isa.T2, isa.S0, 0)),
		isa.MustEncode(isa.Lw(isa.T3, isa.S0, 0)),
		isa.MustEncode(isa.Add(isa.T4, isa.T3, isa.T1)),
		isa.MustEncode(isa.Ebreak()),
	}
	wantRegs, _ := runWords(t, words)
	sh, _ := NewShuffle(16)
	for seed := uint64(0); seed < 32; seed++ {
		armed, err := sh.Arm(words, seed)
		if err != nil {
			t.Fatal(err)
		}
		image := append([]uint32(nil), armed.Words...)
		gotRegs, _ := runWords(t, image)
		if gotRegs != wantRegs {
			t.Fatalf("seed %d: registers diverged\nimage: %08x", seed, image)
		}
	}
}

func TestShuffleWindowValidation(t *testing.T) {
	for _, w := range []int{-1, 0, 1, 65, 1000} {
		if _, err := NewShuffle(w); err == nil {
			t.Errorf("NewShuffle(%d) accepted an out-of-range window", w)
		}
	}
}

func wordsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShuffleGoldenWindowing pins the windowing on a handcrafted program:
// the two instructions after the branch target must never migrate across
// the branch or its target.
func TestShuffleGoldenWindowing(t *testing.T) {
	words := []uint32{
		isa.MustEncode(isa.Addi(isa.T0, isa.Zero, 1)),
		isa.MustEncode(isa.Addi(isa.T1, isa.Zero, 2)),
		isa.MustEncode(isa.Inst{Op: isa.BEQ, Rs1: isa.Zero, Rs2: isa.Zero, Imm: 8}), // skip next
		isa.MustEncode(isa.Addi(isa.T2, isa.Zero, 3)),
		isa.MustEncode(isa.Addi(isa.T3, isa.Zero, 4)), // branch target
		isa.MustEncode(isa.Addi(isa.T4, isa.Zero, 5)),
		isa.MustEncode(isa.Ebreak()),
	}
	wantRegs, _ := runWords(t, words)
	sh, _ := NewShuffle(8)
	for seed := uint64(0); seed < 32; seed++ {
		armed, err := sh.Arm(words, seed)
		if err != nil {
			t.Fatal(err)
		}
		// The branch must stay put.
		if armed.Words[2] != words[2] {
			t.Fatalf("seed %d: branch instruction moved", seed)
		}
		image := append([]uint32(nil), armed.Words...)
		gotRegs, _ := runWords(t, image)
		if gotRegs != wantRegs {
			t.Fatalf("seed %d: shuffled control flow diverged", seed)
		}
	}
}
