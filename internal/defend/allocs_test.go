package defend

import (
	"context"
	"testing"

	"emsim/internal/aes"
	"emsim/internal/cpu"
)

var allocSink cpu.Injection

// TestInjectorsDoNotAllocate pins the //emsim:noalloc contract of the
// per-fetch-slot Inject hot paths.
func TestInjectorsDoNotAllocate(t *testing.T) {
	var d dummyInjector
	d.reset(1, 0.3)
	var j jitterInjector
	j.reset(1, 0.2, 16)
	allocs := testing.AllocsPerRun(100, func() {
		for c := 0; c < 64; c++ {
			allocSink = d.Inject(c, 0)
			allocSink = j.Inject(c, 0)
		}
	})
	if allocs > 0 {
		t.Errorf("injectors allocate %.1f times per run, want 0", allocs)
	}
}

// TestDefendedSimulateSteadyStateAllocs pins the steady-state
// allocation count of a defended trace at zero for every
// countermeasure: arming reuses scratch, injection is pre-encoded, and
// the signal buffer is recycled across traces.
func TestDefendedSimulateSteadyStateAllocs(t *testing.T) {
	m := defendTestModel(t)
	prog, err := aes.BuildProgram(DefaultKey, DefaultFixed)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, name := range []string{"shuffle", "dummy", "jitter"} {
		t.Run(name, func(t *testing.T) {
			sp, err := ParseSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			cm, err := sp.New()
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSession(m, cpu.DefaultConfig(), cm, 1)
			if err != nil {
				t.Fatal(err)
			}
			var buf []float64
			index := int64(0)
			run := func() {
				sig, err := s.SimulateTraceInto(ctx, buf, index, prog.Words)
				if err != nil {
					t.Fatal(err)
				}
				buf = sig[:0]
				index++
			}
			// Warm up: grow the signal buffer and the countermeasure
			// scratch to their steady-state capacity.
			for i := 0; i < 3; i++ {
				run()
			}
			allocs := testing.AllocsPerRun(10, run)
			if allocs > 0 {
				t.Errorf("defended trace allocates %.1f times per run, want 0", allocs)
			}
		})
	}
}
