package defend

import (
	"context"
	"strings"
	"sync"
	"testing"

	"emsim/internal/aes"
	"emsim/internal/core"
	"emsim/internal/cpu"
	"emsim/internal/device"
)

var (
	modelOnce sync.Once
	testModel *core.Model
	modelErr  error
)

// defendTestModel trains one small deterministic model for the package.
func defendTestModel(t *testing.T) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		dev := device.MustNew(device.DefaultOptions())
		testModel, modelErr = core.Train(dev, core.TrainOptions{
			Runs:                3,
			InstancesPerCluster: 10,
			MixedPrograms:       2,
			MixedLength:         200,
			Seed:                7,
		})
	})
	if modelErr != nil {
		t.Fatalf("training failed: %v", modelErr)
	}
	return testModel
}

func TestParseSpec(t *testing.T) {
	ok := []struct{ in, want string }{
		{"shuffle", "shuffle"},
		{"shuffle:window=8", "shuffle:window=8"},
		{"dummy:rate=0.3", "dummy:rate=0.3"},
		{"jitter:region=32,rate=0.2", "jitter:rate=0.2,region=32"}, // params sort
	}
	for _, tc := range ok {
		sp, err := ParseSpec(tc.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got := sp.String(); got != tc.want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		cm, err := sp.New()
		if err != nil {
			t.Errorf("Spec(%q).New(): %v", tc.in, err)
		} else if cm.Name() != sp.Name {
			t.Errorf("Spec(%q).New().Name() = %q", tc.in, cm.Name())
		}
	}
	bad := []string{
		"",
		"mask",                  // unknown name
		"shuffle:window=banana", // unparsable value
		"shuffle:rate=0.5",      // unknown parameter for shuffle
		"dummy:rate=0",          // out of range
		"dummy:rate=1.5",        // out of range
		"jitter:rate=0.5",       // out of range (cap 0.45)
		"jitter:region=0",       // out of range
		"shuffle:window",        // malformed key-value
	}
	for _, in := range bad {
		if _, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid input", in)
		}
	}
}

// runDefended simulates one defended trace and returns the signal plus
// the ciphertext the defended execution produced.
func runDefended(t *testing.T, cm Countermeasure, seed, index int64) ([]float64, [16]byte, cpu.Stats) {
	t.Helper()
	m := defendTestModel(t)
	s, err := NewSession(m, cpu.DefaultConfig(), cm, seed)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := aes.BuildProgram(DefaultKey, DefaultFixed)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := s.SimulateTraceInto(context.Background(), nil, index, prog.Words)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]float64(nil), sig...)
	return out, prog.Output(s.Core().CPU().Memory().ReadWord), s.Stats()
}

func TestInjectorCountermeasures(t *testing.T) {
	want := aes.Reference(DefaultKey, DefaultFixed)
	_, baseOut, baseStats := runDefended(t, nil, 1, 0)
	if baseOut != want {
		t.Fatalf("baseline ciphertext %x != reference %x", baseOut, want)
	}
	for _, name := range []string{"dummy", "jitter", "shuffle"} {
		t.Run(name, func(t *testing.T) {
			sp, err := ParseSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			build := func() Countermeasure {
				cm, err := sp.New()
				if err != nil {
					t.Fatal(err)
				}
				return cm
			}
			// Same seed and index: byte-identical signals, correct AES output.
			sigA, outA, stA := runDefended(t, build(), 1, 0)
			sigB, outB, _ := runDefended(t, build(), 1, 0)
			if outA != want || outB != want {
				t.Fatalf("defended ciphertext %x / %x, want %x", outA, outB, want)
			}
			if len(sigA) != len(sigB) {
				t.Fatalf("same-seed signal lengths differ: %d vs %d", len(sigA), len(sigB))
			}
			for i := range sigA {
				if sigA[i] != sigB[i] {
					t.Fatalf("same-seed signals differ at sample %d", i)
				}
			}
			// Different index: a different randomization.
			sigC, outC, _ := runDefended(t, build(), 1, 1)
			if outC != want {
				t.Fatalf("defended ciphertext %x, want %x", outC, want)
			}
			if len(sigC) == len(sigA) {
				same := true
				for i := range sigC {
					if sigC[i] != sigA[i] {
						same = false
						break
					}
				}
				if same {
					t.Fatal("different trace indices produced identical signals")
				}
			}
			// Injector-based defenses must show up in the stats and cost
			// cycles.
			if name != "shuffle" {
				if stA.Injected == 0 {
					t.Fatal("defended run reports zero injected slots")
				}
				if stA.Cycles <= baseStats.Cycles {
					t.Fatalf("defended run not slower: %d vs %d cycles", stA.Cycles, baseStats.Cycles)
				}
			}
		})
	}
}

func TestSessionBaselineMatchesCore(t *testing.T) {
	m := defendTestModel(t)
	prog, err := aes.BuildProgram(DefaultKey, DefaultFixed)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewSession(m, cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.SimulateProgram(prog.Words)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, cpu.DefaultConfig(), nil, 99)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.SimulateProgram(prog.Words)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("baseline defended session diverges from core.Session at sample %d", i)
		}
	}
}

func TestSessionStreamIndexing(t *testing.T) {
	m := defendTestModel(t)
	cm, err := NewDummy(0.2)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := aes.BuildProgram(DefaultKey, DefaultFixed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, cpu.DefaultConfig(), cm, 5)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.SimulateProgram(prog.Words)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SimulateProgram(prog.Words); err != nil {
		t.Fatal(err)
	}
	s.ResetStream(0)
	replay, err := s.SimulateProgram(prog.Words)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(replay) {
		t.Fatalf("replayed trace length differs: %d vs %d", len(first), len(replay))
	}
	for i := range first {
		if first[i] != replay[i] {
			t.Fatalf("ResetStream replay diverges at sample %d", i)
		}
	}
}

func TestInjectorRemovedAfterRun(t *testing.T) {
	m := defendTestModel(t)
	cm, err := NewJitter(0.2, 16)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := aes.BuildProgram(DefaultKey, DefaultFixed)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(m, cpu.DefaultConfig(), cm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SimulateTraceInto(context.Background(), nil, 0, prog.Words); err != nil {
		t.Fatal(err)
	}
	if inj := s.Stats().Injected; inj == 0 {
		t.Fatal("jitter run reports zero injected slots")
	}
	// The wrapped core session must be clean again: a direct run on it is
	// an undefended baseline.
	sig, err := s.Core().SimulateProgram(prog.Words)
	if err != nil {
		t.Fatal(err)
	}
	if inj := s.Stats().Injected; inj != 0 {
		t.Fatalf("injector leaked into a baseline run: %d injected slots", inj)
	}
	_ = sig
}

func TestEvaluateValidation(t *testing.T) {
	m := defendTestModel(t)
	ctx := context.Background()
	if _, err := Evaluate(ctx, Options{Defense: Spec{Name: "shuffle"}}); err == nil ||
		!strings.Contains(err.Error(), "model") {
		t.Errorf("missing model not rejected: %v", err)
	}
	if _, err := Evaluate(ctx, Options{Model: m}); err == nil {
		t.Error("missing defense not rejected")
	}
	if _, err := Evaluate(ctx, Options{Model: m, Defense: Spec{Name: "nope"}}); err == nil {
		t.Error("unknown defense not rejected")
	}
	if _, err := Evaluate(ctx, Options{Model: m, Defense: Spec{Name: "shuffle"}, NoiseStd: -1}); err == nil {
		t.Error("negative noise not rejected")
	}
	if _, err := Evaluate(ctx, Options{Model: m, Defense: Spec{Name: "shuffle"}, TVLATraces: 2}); err == nil {
		t.Error("tiny TVLA budget not rejected")
	}
}
