// Package defend models microarchitectural side-channel countermeasures
// and evaluates what they buy. EMSim's stated purpose is to let designers
// assess EM leakage before silicon; this package closes the loop — apply
// a candidate defense inside the simulated pipeline, re-run the leakage
// attacks (TVLA, CPA) against the defended execution, and quantify
// security gained versus cycles lost.
//
// A Countermeasure arms itself for one run: given the program image and a
// per-run randomization seed it returns the (possibly transformed) image
// to execute plus an optional cpu.FetchInjector that perturbs the fetch
// stream while the run is in flight. Three defenses ship in-tree:
//
//   - shuffle: static dataflow-safe reordering of independent
//     instructions within small windows, in the spirit of ShuffleV —
//     each run executes a differently-permuted but architecturally
//     equivalent image, decorrelating cycle position from operation.
//   - dummy: random architecturally-inert instructions (ALU ops writing
//     x0) injected into fetch slots at a configurable rate.
//   - jitter: randomized pipeline stall bubbles whose probability is
//     redrawn per region of cycles, desynchronizing traces.
//
// All three are deterministic functions of (program, seed): repeated runs
// with one seed are byte-identical, which keeps campaigns reproducible
// and lets Evaluate fan attack workloads across workers without losing
// replayability. A Countermeasure instance reuses internal scratch
// buffers and is not safe for concurrent use — build one per worker via
// Spec.New.
package defend

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"emsim/internal/cpu"
)

// Armed is a Countermeasure's output for one run: the image to execute
// and an optional fetch-slot injector to install for its duration.
// Words may alias the input image (injector-only defenses) or a buffer
// owned by the countermeasure that is invalidated by its next Arm call.
type Armed struct {
	Words    []uint32
	Injector cpu.FetchInjector
}

// A Countermeasure prepares one defended run. Arm must be deterministic
// in (words, seed) and must preserve the program's architectural
// semantics: same final register file and memory state, different
// microarchitectural (and therefore EM) behavior.
type Countermeasure interface {
	Name() string
	Arm(words []uint32, seed uint64) (Armed, error)
}

// Spec names a countermeasure and its parameters — the parsed form of
// the CLI/API syntax "name:param=val,param=val". The zero Spec (empty
// Name) means "no defense".
type Spec struct {
	Name   string
	Params map[string]float64
}

// ParseSpec parses "name[:param=val,...]" and validates it by building
// the countermeasure once.
func ParseSpec(s string) (Spec, error) {
	name, rest, hasParams := strings.Cut(s, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return Spec{}, fmt.Errorf("defend: empty countermeasure name in %q", s)
	}
	sp := Spec{Name: name}
	if hasParams {
		sp.Params = make(map[string]float64)
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			k = strings.TrimSpace(k)
			if !ok || k == "" {
				return Spec{}, fmt.Errorf("defend: malformed parameter %q (want param=val)", kv)
			}
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return Spec{}, fmt.Errorf("defend: parameter %s: %v", k, err)
			}
			sp.Params[k] = f
		}
	}
	if _, err := sp.New(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// String renders the spec in its parseable form with parameters in
// sorted order.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for i, k := range keys {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(s.Params[k], 'g', -1, 64))
	}
	return b.String()
}

// New builds a fresh instance of the named countermeasure. Instances own
// scratch state; every concurrent worker needs its own.
func (s Spec) New() (Countermeasure, error) {
	p := specParams{m: s.Params, used: make(map[string]bool)}
	var (
		cm  Countermeasure
		err error
	)
	switch s.Name {
	case "shuffle":
		cm, err = NewShuffle(int(p.get("window", defaultShuffleWindow)))
	case "dummy":
		cm, err = NewDummy(p.get("rate", defaultDummyRate))
	case "jitter":
		cm, err = NewJitter(p.get("rate", defaultJitterRate), int(p.get("region", defaultJitterRegion)))
	default:
		return nil, fmt.Errorf("defend: unknown countermeasure %q (have shuffle, dummy, jitter)", s.Name)
	}
	if err != nil {
		return nil, err
	}
	if unknown := p.unknown(); len(unknown) > 0 {
		return nil, fmt.Errorf("defend: %s: unknown parameter(s): %s", s.Name, strings.Join(unknown, ", "))
	}
	return cm, nil
}

// specParams tracks which parameter keys a constructor consumed so New
// can reject typos instead of silently ignoring them.
type specParams struct {
	m    map[string]float64
	used map[string]bool
}

func (p *specParams) get(key string, def float64) float64 {
	p.used[key] = true
	if v, ok := p.m[key]; ok {
		return v
	}
	return def
}

func (p *specParams) unknown() []string {
	var out []string
	for k := range p.m {
		if !p.used[k] {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
