package defend

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"emsim/internal/aes"
	"emsim/internal/core"
	"emsim/internal/cpu"
	"emsim/internal/leakage"
	"emsim/internal/obs"
	"emsim/internal/stats"
)

// Evaluation span identities: evaluate covers the whole two-arm
// campaign and arm one arm's TVLA+CPA sweep (both on the campaign's
// lane); trace covers one simulated trace on its worker's lane.
var (
	spanEvaluate = obs.RegisterSpan("defend.evaluate")
	spanArm      = obs.RegisterSpan("defend.arm")
	spanTrace    = obs.RegisterSpan("defend.trace")
)

// Default secrets of the evaluation workload: the FIPS-197 example key
// and a distinctive fixed plaintext for the TVLA fixed group.
var (
	DefaultKey = [16]byte{
		0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
	}
	DefaultFixed = [16]byte{
		0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
		0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff,
	}
)

// Options configures an Evaluate campaign. The zero value of Key/Fixed
// selects the package defaults; zero numeric fields select the
// documented defaults.
type Options struct {
	Model   *core.Model // trained EM model (required)
	CPU     cpu.Config  // core configuration (zero value = defaults)
	Defense Spec        // countermeasure under evaluation (required)

	// Key is the AES key the attacks try to recover.
	//
	//emsim:secret
	Key [16]byte
	// Fixed is the TVLA fixed-group plaintext, secret alongside the key
	// (a known fixed input would let an attacker precompute the group).
	//
	//emsim:secret
	Fixed [16]byte

	Seed    int64 // campaign randomization seed
	Workers int   // simulation fan-out (<= 0: GOMAXPROCS)

	TVLATraces int // TVLA traces per group (default 64, min 4)
	CPATraces  int // CPA trace budget (default 512, min 12)
	CPAStep    int // key-rank curve grid step (default 64, min 4)
	CPAPoints  int // top-variance points-of-interest columns (0 = attack every column)

	// NoiseStd is the additive measurement-noise sigma applied to every
	// simulated signal (default 0.02). It must be positive: a noiseless
	// fixed TVLA group has zero variance and an infinite t statistic.
	NoiseStd float64

	// Progress, when non-nil, is called after each simulated trace of an
	// arm's campaign ("baseline" or the defense spec string). Simulation
	// workers invoke it concurrently, outside any evaluator lock: the
	// callback must be safe for concurrent use, and done counts from
	// different workers may arrive slightly out of order.
	Progress func(arm string, done, total int)
}

func (o Options) withDefaults() (Options, error) {
	if o.Model == nil {
		return o, fmt.Errorf("defend: Evaluate needs a trained model")
	}
	if o.Defense.Name == "" {
		return o, fmt.Errorf("defend: Evaluate needs a defense spec")
	}
	if _, err := o.Defense.New(); err != nil {
		return o, err
	}
	if o.CPU == (cpu.Config{}) {
		o.CPU = cpu.DefaultConfig()
	}
	if o.Key == ([16]byte{}) {
		o.Key = DefaultKey
	}
	if o.Fixed == ([16]byte{}) {
		o.Fixed = DefaultFixed
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.TVLATraces == 0 {
		o.TVLATraces = 64
	}
	if o.TVLATraces < 4 {
		return o, fmt.Errorf("defend: TVLATraces %d; need >= 4 per group", o.TVLATraces)
	}
	if o.CPATraces == 0 {
		o.CPATraces = 512
	}
	if o.CPATraces < 12 {
		return o, fmt.Errorf("defend: CPATraces %d; need >= 12", o.CPATraces)
	}
	if o.CPAStep == 0 {
		o.CPAStep = 64
	}
	if o.CPAStep < 4 {
		return o, fmt.Errorf("defend: CPAStep %d; need >= 4", o.CPAStep)
	}
	if o.CPAStep > o.CPATraces {
		o.CPAStep = o.CPATraces
	}
	if o.CPAPoints < 0 {
		return o, fmt.Errorf("defend: CPAPoints %d; need >= 0 (0 attacks every column)", o.CPAPoints)
	}
	if o.NoiseStd == 0 {
		o.NoiseStd = 0.02
	}
	if o.NoiseStd <= 0 {
		return o, fmt.Errorf("defend: NoiseStd %g; need > 0 (a noiseless fixed group has infinite t)", o.NoiseStd)
	}
	return o, nil
}

// TVLAPoint is one point of the min-traces-to-detection sweep.
type TVLAPoint struct {
	Traces  int     `json:"traces"` // traces per group
	MaxAbsT float64 `json:"max_abs_t"`
}

// RankPoint is one point of the CPA key-rank curve.
type RankPoint struct {
	Traces int     `json:"traces"`
	Rank   int     `json:"rank"` // 0 = true key byte ranked first
	Margin float64 `json:"margin"`
}

// ArmResult is one arm (baseline or defended) of an evaluation.
type ArmResult struct {
	Name         string      `json:"name"`
	MeanCycles   float64     `json:"mean_cycles"`
	MeanInjected float64     `json:"mean_injected"` // injected fetch slots per trace
	MaxAbsT      float64     `json:"max_abs_t"`     // at the full TVLA budget
	LeakyPoints  int         `json:"leaky_points"`  // cycles with |t| > 4.5 at full budget
	TVLASweep    []TVLAPoint `json:"tvla_sweep"`
	DetectTraces int         `json:"detect_traces"` // min traces/group with |t|max > 4.5 (0: never)
	CPARanks     []RankPoint `json:"cpa_ranks"`
	// DiscloseTraces is the smallest grid point from which the true key
	// byte ranks first at every subsequent grid point (0: not disclosed
	// within the budget).
	DiscloseTraces int `json:"disclose_traces"`
}

// SecurityReport compares defended execution against baseline.
type SecurityReport struct {
	Defense  string    `json:"defense"`
	Seed     int64     `json:"seed"`
	Baseline ArmResult `json:"baseline"`
	Defended ArmResult `json:"defended"`

	// LeakageReduction is 1 - defended/baseline |t|max (1 = leakage
	// eliminated, 0 = unchanged, negative = made worse).
	LeakageReduction float64 `json:"leakage_reduction"`
	// AttackCostMultiplier is defended/baseline CPA traces-to-disclosure.
	// When the defended arm never discloses within the budget it is
	// computed against budget+step and CostIsLowerBound is set. Zero when
	// the baseline attack itself failed.
	AttackCostMultiplier float64 `json:"attack_cost_multiplier"`
	CostIsLowerBound     bool    `json:"cost_is_lower_bound"`
	// CycleOverhead is the relative runtime cost: defended/baseline mean
	// cycles - 1.
	CycleOverhead float64 `json:"cycle_overhead"`
}

// Evaluate runs the full attack campaign — a TVLA fixed-vs-random
// detection sweep and a CPA key-recovery traces-to-disclosure curve —
// against both baseline and defended execution of the AES workload, and
// reports security gained versus cycles lost. The campaign fans trace
// simulation across opts.Workers workers; all randomization is keyed by
// (opts.Seed, trace identity), so the report is byte-identical at any
// worker count.
func Evaluate(ctx context.Context, opts Options) (*SecurityReport, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	lane := obs.NextLane()
	obs.Begin(spanEvaluate, lane)
	defer obs.End(spanEvaluate, lane)
	obs.Begin(spanArm, lane)
	base, err := evaluateArm(ctx, opts, "baseline", Spec{})
	obs.End(spanArm, lane)
	if err != nil {
		return nil, err
	}
	obs.Begin(spanArm, lane)
	def, err := evaluateArm(ctx, opts, opts.Defense.String(), opts.Defense)
	obs.End(spanArm, lane)
	if err != nil {
		return nil, err
	}
	r := &SecurityReport{
		Defense:  opts.Defense.String(),
		Seed:     opts.Seed,
		Baseline: *base,
		Defended: *def,
	}
	if base.MaxAbsT > 0 {
		r.LeakageReduction = 1 - def.MaxAbsT/base.MaxAbsT
	}
	switch {
	case base.DiscloseTraces == 0:
		r.AttackCostMultiplier = 0 // baseline attack failed; nothing to multiply
	case def.DiscloseTraces > 0:
		r.AttackCostMultiplier = float64(def.DiscloseTraces) / float64(base.DiscloseTraces)
	default:
		r.AttackCostMultiplier = float64(opts.CPATraces+opts.CPAStep) / float64(base.DiscloseTraces)
		r.CostIsLowerBound = true
	}
	if base.MeanCycles > 0 {
		r.CycleOverhead = def.MeanCycles/base.MeanCycles - 1
	}
	return r, nil
}

// evaluateArm runs one arm's full campaign. The result is independent of
// worker count and goroutine scheduling: every random choice is keyed by
// trace identity and every reduction runs index-ordered.
//
//emsim:ordered
func evaluateArm(ctx context.Context, opts Options, name string, spec Spec) (*ArmResult, error) {
	res := &ArmResult{Name: name}
	total := opts.CPATraces + 2*opts.TVLATraces
	var done atomic.Int64
	report := func(n int) {
		d := int(done.Add(int64(n)))
		if opts.Progress != nil {
			opts.Progress(name, d, total)
		}
	}

	// ---- CPA: simulate the trace population ----
	progs := make([][]uint32, opts.CPATraces)
	ptByte := make([]byte, opts.CPATraces)
	for i := range progs {
		var pt [16]byte
		rng := rand.New(rand.NewSource(int64(stream(opts.Seed, lanePlain, int64(i)))))
		for b := range pt {
			pt[b] = byte(rng.Intn(256))
		}
		prog, err := aes.BuildProgram(opts.Key, pt)
		if err != nil {
			return nil, fmt.Errorf("defend: build CPA program %d: %w", i, err)
		}
		progs[i] = prog.Words
		ptByte[i] = pt[0]
	}
	cpaSeed := int64(stream(opts.Seed, lanePart, 1))
	amps, cycles, injected, err := simulateAll(ctx, opts, spec, cpaSeed, progs, report)
	if err != nil {
		return nil, err
	}
	for i := range cycles {
		res.MeanCycles += float64(cycles[i])
		res.MeanInjected += float64(injected[i])
	}
	res.MeanCycles /= float64(len(cycles))
	res.MeanInjected /= float64(len(injected))

	// The attacker's view: truncate to the shortest trace (defended runs
	// differ in length). By default the attack scans every column; a
	// positive CPAPoints reduces to the highest-variance columns first,
	// which is cheaper but can miss low-variance leaks.
	truncate(amps)
	red := amps
	if opts.CPAPoints > 0 {
		poi := topVarianceColumns(amps, opts.CPAPoints)
		if len(poi) == 0 {
			return nil, fmt.Errorf("defend: %s: every trace column is constant; no signal to attack", name)
		}
		red = make([][]float64, len(amps))
		for i, a := range amps {
			row := make([]float64, len(poi))
			for k, c := range poi {
				row[k] = a[c]
			}
			red[i] = row
		}
	}
	hyp, trueGuess := cpaHypotheses(opts, ptByte)
	for t := opts.CPAStep; t <= len(red); t += opts.CPAStep {
		cr, err := leakage.CPA(red[:t], hyp[:t])
		if err != nil {
			return nil, fmt.Errorf("defend: %s: CPA at %d traces: %w", name, t, err)
		}
		res.CPARanks = append(res.CPARanks, RankPoint{Traces: t, Rank: cr.Rank(trueGuess), Margin: cr.Margin()})
	}
	for i := len(res.CPARanks) - 1; i >= 0 && res.CPARanks[i].Rank == 0; i-- {
		res.DiscloseTraces = res.CPARanks[i].Traces
	}

	// ---- TVLA: fixed vs random detection sweep ----
	fixedProg, err := aes.BuildProgram(opts.Key, opts.Fixed)
	if err != nil {
		return nil, fmt.Errorf("defend: build TVLA fixed program: %w", err)
	}
	tprogs := make([][]uint32, 2*opts.TVLATraces)
	for j := 0; j < opts.TVLATraces; j++ {
		tprogs[2*j] = fixedProg.Words
		var pt [16]byte
		rng := rand.New(rand.NewSource(int64(stream(opts.Seed, laneTVLA, int64(j)))))
		for b := range pt {
			pt[b] = byte(rng.Intn(256))
		}
		prog, err := aes.BuildProgram(opts.Key, pt)
		if err != nil {
			return nil, fmt.Errorf("defend: build TVLA program %d: %w", j, err)
		}
		tprogs[2*j+1] = prog.Words
	}
	tvlaSeed := int64(stream(opts.Seed, lanePart, 2))
	tamps, _, _, err := simulateAll(ctx, opts, spec, tvlaSeed, tprogs, report)
	if err != nil {
		return nil, err
	}
	truncate(tamps)
	fixed := make([][]float64, opts.TVLATraces)
	random := make([][]float64, opts.TVLATraces)
	for j := range fixed {
		fixed[j] = tamps[2*j]
		random[j] = tamps[2*j+1]
	}
	for _, g := range sweepSizes(opts.TVLATraces) {
		tt, err := stats.TVLATrace(fixed[:g], random[:g])
		if err != nil {
			return nil, fmt.Errorf("defend: %s: TVLA at %d traces: %w", name, g, err)
		}
		maxAbs := 0.0
		for _, v := range tt {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		res.TVLASweep = append(res.TVLASweep, TVLAPoint{Traces: g, MaxAbsT: maxAbs})
		if res.DetectTraces == 0 && maxAbs > stats.TVLAThreshold {
			res.DetectTraces = g
		}
		if g == opts.TVLATraces {
			res.MaxAbsT = maxAbs
			res.LeakyPoints = len(stats.TVLALeakyPoints(tt))
		}
	}
	return res, nil
}

// cpaHypotheses builds the per-trace CPA hypothesis matrix and the true
// key's candidate index. The distinguisher targets the round-1 S-box
// lookup transition x -> S(x) (Hamming distance) rather than plain
// HW(S(x)): the pipeline's amplitude model leaks latch transitions, and
// the plain-weight model leaves a persistent ghost peak that keeps the
// true key at rank 1-2. The construction is constant-time in the secret
// key — the key only selects trueGuess, while the hypothesis table is
// built for all 256 candidates unconditionally.
//
//emsim:ct
//emsim:secret opts
func cpaHypotheses(opts Options, ptByte []byte) (hyp [][]float64, trueGuess int) {
	hyp = make([][]float64, len(ptByte))
	for i := range hyp {
		row := make([]float64, 256)
		for g := 0; g < 256; g++ {
			x := ptByte[i] ^ byte(g)
			row[g] = leakage.HammingWeight(uint32(aes.SBox(x) ^ x))
		}
		hyp[i] = row
	}
	return hyp, int(opts.Key[0])
}

// simulateAll simulates progs[i] for every i across opts.Workers workers,
// each with a private defended Session, and returns per-trace amplitude
// vectors (measurement noise added), cycle counts and injected-slot
// counts, in input order. Failures propagate like core.SimulateBatch:
// the lowest-indexed failing trace wins, deterministically.
//
//emsim:ordered
func simulateAll(ctx context.Context, opts Options, spec Spec, seed int64, progs [][]uint32, report func(int)) (amps [][]float64, cycles, injected []int, err error) {
	n := len(progs)
	amps = make([][]float64, n)
	cycles = make([]int, n)
	injected = make([]int, n)
	workers := opts.Workers
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		errIdx atomic.Int64
		mu     sync.Mutex
		wg     sync.WaitGroup
		errs   = make(map[int]error)
	)
	errIdx.Store(int64(n))
	fail := func(i int, ferr error) {
		mu.Lock()
		if _, dup := errs[i]; !dup {
			errs[i] = ferr
		}
		mu.Unlock()
		for {
			cur := errIdx.Load()
			if int64(i) >= cur || errIdx.CompareAndSwap(cur, int64(i)) {
				return
			}
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var cm Countermeasure
			if spec.Name != "" {
				var cerr error
				if cm, cerr = spec.New(); cerr != nil {
					fail(-1, cerr)
					return
				}
			}
			sess, serr := NewSession(opts.Model, opts.CPU, cm, seed)
			if serr != nil {
				fail(-1, serr)
				return
			}
			traceLane := obs.NextLane()
			var buf []float64
			for {
				i := int(next.Add(1)) - 1
				if i >= n || int64(i) > errIdx.Load() {
					return
				}
				obs.Begin(spanTrace, traceLane)
				sig, rerr := sess.SimulateTraceInto(ctx, buf, int64(i), progs[i])
				if rerr != nil {
					obs.End(spanTrace, traceLane)
					fail(i, rerr)
					continue
				}
				noise := rand.New(rand.NewSource(int64(stream(seed, laneNoise, int64(i)))))
				for k := range sig {
					sig[k] += opts.NoiseStd * noise.NormFloat64()
				}
				amp, aerr := core.ExtractAmplitudes(sig, opts.Model.SamplesPerCycle, opts.Model.Kernel)
				buf = sig[:0]
				obs.End(spanTrace, traceLane)
				if aerr != nil {
					fail(i, aerr)
					continue
				}
				amps[i] = amp
				cycles[i] = sess.Cycles()
				injected[i] = sess.Stats().Injected
				// report is concurrency-safe (atomic counter, callback
				// contract allows concurrent calls); invoking it under mu
				// would run foreign code inside the error critical section.
				report(1)
			}
		}()
	}
	wg.Wait()
	if idx := int(errIdx.Load()); idx < n {
		if cerr := ctx.Err(); cerr != nil {
			return nil, nil, nil, cerr
		}
		return nil, nil, nil, errs[idx]
	}
	return amps, cycles, injected, nil
}

// truncate cuts every trace to the length of the shortest one, aligning
// variable-length defended traces into a rectangular matrix.
func truncate(traces [][]float64) {
	if len(traces) == 0 {
		return
	}
	w := len(traces[0])
	for _, tr := range traces {
		if len(tr) < w {
			w = len(tr)
		}
	}
	for i := range traces {
		traces[i] = traces[i][:w]
	}
}

// topVarianceColumns returns the indices of the k highest-variance
// columns (ties broken by index, zero-variance columns excluded), in
// ascending column order.
func topVarianceColumns(traces [][]float64, k int) []int {
	if len(traces) == 0 {
		return nil
	}
	w := len(traces[0])
	vars := make([]float64, w)
	for c := 0; c < w; c++ {
		mean := 0.0
		for _, tr := range traces {
			mean += tr[c]
		}
		mean /= float64(len(traces))
		v := 0.0
		for _, tr := range traces {
			d := tr[c] - mean
			v += d * d
		}
		vars[c] = v
	}
	idx := make([]int, w)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if vars[idx[a]] != vars[idx[b]] {
			return vars[idx[a]] > vars[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > w {
		k = w
	}
	sel := idx[:0:0]
	for _, c := range idx[:k] {
		if vars[c] > 0 {
			sel = append(sel, c)
		}
	}
	sort.Ints(sel)
	return sel
}

// sweepSizes returns the doubling TVLA sweep grid {4, 8, 16, ...} capped
// at and always including g.
func sweepSizes(g int) []int {
	var out []int
	for s := 4; s < g; s *= 2 {
		out = append(out, s)
	}
	return append(out, g)
}

// String renders the report as a readable summary table.
func (r *SecurityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "defense %s (seed %d)\n", r.Defense, r.Seed)
	fmt.Fprintf(&b, "%-22s %14s %14s\n", "", "baseline", "defended")
	fmt.Fprintf(&b, "%-22s %14.1f %14.1f\n", "mean cycles", r.Baseline.MeanCycles, r.Defended.MeanCycles)
	fmt.Fprintf(&b, "%-22s %14.2f %14.2f\n", "TVLA |t|max", r.Baseline.MaxAbsT, r.Defended.MaxAbsT)
	fmt.Fprintf(&b, "%-22s %14d %14d\n", "TVLA leaky points", r.Baseline.LeakyPoints, r.Defended.LeakyPoints)
	fmt.Fprintf(&b, "%-22s %14s %14s\n", "TVLA detect @", traceCount(r.Baseline.DetectTraces), traceCount(r.Defended.DetectTraces))
	fmt.Fprintf(&b, "%-22s %14s %14s\n", "CPA disclose @", traceCount(r.Baseline.DiscloseTraces), traceCount(r.Defended.DiscloseTraces))
	fmt.Fprintf(&b, "leakage reduction      %6.1f%%\n", 100*r.LeakageReduction)
	cost := fmt.Sprintf("%.1fx", r.AttackCostMultiplier)
	if r.CostIsLowerBound {
		cost = ">" + cost
	}
	fmt.Fprintf(&b, "attack cost            %s\n", cost)
	fmt.Fprintf(&b, "cycle overhead         %6.1f%%\n", 100*r.CycleOverhead)
	return b.String()
}

func traceCount(n int) string {
	if n == 0 {
		return "never"
	}
	return fmt.Sprintf("%d", n)
}
