package defend

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"emsim/internal/aes"
	"emsim/internal/core"
	"emsim/internal/cpu"
	"emsim/internal/leakage"
	"emsim/internal/obs"
	"emsim/internal/stats"
)

// Evaluation span identities: evaluate covers the whole two-arm
// campaign and arm one arm's TVLA+CPA sweep (both on the campaign's
// lane); trace covers one simulated trace on its worker's lane; analyze
// covers one accumulator snapshot (a sweep point) on the arm's
// analysis lane.
var (
	spanEvaluate = obs.RegisterSpan("defend.evaluate")
	spanArm      = obs.RegisterSpan("defend.arm")
	spanTrace    = obs.RegisterSpan("defend.trace")
	spanAnalyze  = obs.RegisterSpan("defend.analyze")
)

// Default secrets of the evaluation workload: the FIPS-197 example key
// and a distinctive fixed plaintext for the TVLA fixed group.
var (
	DefaultKey = [16]byte{
		0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
	}
	DefaultFixed = [16]byte{
		0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
		0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff,
	}
)

// Options configures an Evaluate campaign. The zero value of Key/Fixed
// selects the package defaults; zero numeric fields select the
// documented defaults.
type Options struct {
	Model   *core.Model // trained EM model (required)
	CPU     cpu.Config  // core configuration (zero value = defaults)
	Defense Spec        // countermeasure under evaluation (required)

	// Key is the AES key the attacks try to recover.
	//
	//emsim:secret
	Key [16]byte
	// Fixed is the TVLA fixed-group plaintext, secret alongside the key
	// (a known fixed input would let an attacker precompute the group).
	//
	//emsim:secret
	Fixed [16]byte

	Seed    int64 // campaign randomization seed
	Workers int   // simulation fan-out (<= 0: GOMAXPROCS)

	TVLATraces int // TVLA traces per group (default 64, min 4)
	CPATraces  int // CPA trace budget (default 512, min 12)
	CPAStep    int // key-rank curve grid step (default 64, min 4)
	CPAPoints  int // top-variance points-of-interest columns (0 = attack every column)

	// NoiseStd is the additive measurement-noise sigma applied to every
	// simulated signal (default 0.02). It must be positive: a noiseless
	// fixed TVLA group has zero variance and an infinite t statistic.
	NoiseStd float64

	// Progress, when non-nil, is called after each simulated trace of an
	// arm's campaign ("baseline" or the defense spec string). Simulation
	// workers invoke it concurrently, outside any evaluator lock: the
	// callback must be safe for concurrent use, and done counts from
	// different workers may arrive slightly out of order.
	Progress func(arm string, done, total int)
}

func (o Options) withDefaults() (Options, error) {
	if o.Model == nil {
		return o, fmt.Errorf("defend: Evaluate needs a trained model")
	}
	if o.Defense.Name == "" {
		return o, fmt.Errorf("defend: Evaluate needs a defense spec")
	}
	if _, err := o.Defense.New(); err != nil {
		return o, err
	}
	if o.CPU == (cpu.Config{}) {
		o.CPU = cpu.DefaultConfig()
	}
	if o.Key == ([16]byte{}) {
		o.Key = DefaultKey
	}
	if o.Fixed == ([16]byte{}) {
		o.Fixed = DefaultFixed
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.TVLATraces == 0 {
		o.TVLATraces = 64
	}
	if o.CPATraces == 0 {
		o.CPATraces = 512
	}
	if o.CPAStep == 0 {
		o.CPAStep = 64
	}
	if err := CheckBudget(o.TVLATraces, o.CPATraces, o.CPAStep); err != nil {
		return o, err
	}
	if o.CPAStep > o.CPATraces {
		o.CPAStep = o.CPATraces
	}
	if o.CPAPoints < 0 {
		return o, fmt.Errorf("defend: CPAPoints %d; need >= 0 (0 attacks every column)", o.CPAPoints)
	}
	if o.NoiseStd == 0 {
		o.NoiseStd = 0.02
	}
	if o.NoiseStd <= 0 {
		return o, fmt.Errorf("defend: NoiseStd %g; need > 0 (a noiseless fixed group has infinite t)", o.NoiseStd)
	}
	return o, nil
}

// CheckBudget validates an attack-budget triple against the campaign
// minimums (TVLA needs 4 traces per group for a stable t statistic, CPA
// needs 12 traces and a grid step of 4). Zero values mean "use the
// default" and pass. Both Evaluate and the serving layer's request
// validation share this, so a bad budget fails fast at the API edge
// with the same diagnostic the library would give.
func CheckBudget(tvlaTraces, cpaTraces, cpaStep int) error {
	if tvlaTraces != 0 && tvlaTraces < 4 {
		return fmt.Errorf("defend: TVLATraces %d; need >= 4 per group", tvlaTraces)
	}
	if cpaTraces != 0 && cpaTraces < 12 {
		return fmt.Errorf("defend: CPATraces %d; need >= 12", cpaTraces)
	}
	if cpaStep != 0 && cpaStep < 4 {
		return fmt.Errorf("defend: CPAStep %d; need >= 4", cpaStep)
	}
	return nil
}

// TVLAPoint is one point of the min-traces-to-detection sweep.
type TVLAPoint struct {
	Traces  int     `json:"traces"` // traces per group
	MaxAbsT float64 `json:"max_abs_t"`
}

// RankPoint is one point of the CPA key-rank curve.
type RankPoint struct {
	Traces int     `json:"traces"`
	Rank   int     `json:"rank"` // 0 = true key byte ranked first
	Margin float64 `json:"margin"`
}

// ArmResult is one arm (baseline or defended) of an evaluation.
type ArmResult struct {
	Name         string      `json:"name"`
	MeanCycles   float64     `json:"mean_cycles"`
	MeanInjected float64     `json:"mean_injected"` // injected fetch slots per trace
	MaxAbsT      float64     `json:"max_abs_t"`     // at the full TVLA budget
	LeakyPoints  int         `json:"leaky_points"`  // cycles with |t| > 4.5 at full budget
	TVLASweep    []TVLAPoint `json:"tvla_sweep"`
	DetectTraces int         `json:"detect_traces"` // min traces/group with |t|max > 4.5 (0: never)
	CPARanks     []RankPoint `json:"cpa_ranks"`
	// DiscloseTraces is the smallest grid point from which the true key
	// byte ranks first at every subsequent grid point (0: not disclosed
	// within the budget).
	DiscloseTraces int `json:"disclose_traces"`

	// The attacker's-view trace geometry. Defended traces differ in
	// length (injected fetch slots), and the analyses align them by
	// truncating every trace to the shortest — silently, until these
	// fields surfaced it. *Samples is the surviving per-trace width of
	// each phase; *Truncated is how many trailing samples the longest
	// trace lost to that alignment (0 for fixed-length baseline runs).
	CPASamples    int `json:"cpa_samples"`
	CPATruncated  int `json:"cpa_truncated"`
	TVLASamples   int `json:"tvla_samples"`
	TVLATruncated int `json:"tvla_truncated"`
}

// SecurityReport compares defended execution against baseline.
type SecurityReport struct {
	Defense  string    `json:"defense"`
	Seed     int64     `json:"seed"`
	Baseline ArmResult `json:"baseline"`
	Defended ArmResult `json:"defended"`

	// LeakageReduction is 1 - defended/baseline |t|max (1 = leakage
	// eliminated, 0 = unchanged, negative = made worse).
	LeakageReduction float64 `json:"leakage_reduction"`
	// AttackCostMultiplier is defended/baseline CPA traces-to-disclosure.
	// When the defended arm never discloses within the budget it is
	// computed against budget+step and CostIsLowerBound is set. Zero when
	// the baseline attack itself failed.
	AttackCostMultiplier float64 `json:"attack_cost_multiplier"`
	CostIsLowerBound     bool    `json:"cost_is_lower_bound"`
	// CycleOverhead is the relative runtime cost: defended/baseline mean
	// cycles - 1.
	CycleOverhead float64 `json:"cycle_overhead"`
}

// Evaluate runs the full attack campaign — a TVLA fixed-vs-random
// detection sweep and a CPA key-recovery traces-to-disclosure curve —
// against both baseline and defended execution of the AES workload, and
// reports security gained versus cycles lost. The campaign fans trace
// simulation across opts.Workers workers; all randomization is keyed by
// (opts.Seed, trace identity), so the report is byte-identical at any
// worker count.
func Evaluate(ctx context.Context, opts Options) (*SecurityReport, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	lane := obs.NextLane()
	obs.Begin(spanEvaluate, lane)
	defer obs.End(spanEvaluate, lane)
	obs.Begin(spanArm, lane)
	base, err := evaluateArm(ctx, opts, "baseline", Spec{})
	obs.End(spanArm, lane)
	if err != nil {
		return nil, err
	}
	obs.Begin(spanArm, lane)
	def, err := evaluateArm(ctx, opts, opts.Defense.String(), opts.Defense)
	obs.End(spanArm, lane)
	if err != nil {
		return nil, err
	}
	r := &SecurityReport{
		Defense:  opts.Defense.String(),
		Seed:     opts.Seed,
		Baseline: *base,
		Defended: *def,
	}
	if base.MaxAbsT > 0 {
		r.LeakageReduction = 1 - def.MaxAbsT/base.MaxAbsT
	}
	switch {
	case base.DiscloseTraces == 0:
		r.AttackCostMultiplier = 0 // baseline attack failed; nothing to multiply
	case def.DiscloseTraces > 0:
		r.AttackCostMultiplier = float64(def.DiscloseTraces) / float64(base.DiscloseTraces)
	default:
		r.AttackCostMultiplier = float64(opts.CPATraces+opts.CPAStep) / float64(base.DiscloseTraces)
		r.CostIsLowerBound = true
	}
	if base.MeanCycles > 0 {
		r.CycleOverhead = def.MeanCycles/base.MeanCycles - 1
	}
	return r, nil
}

// evaluateArm runs one arm's full campaign as a single pass: every
// simulated trace flows straight from the worker reduction into the
// streaming accumulators (leakage.CPAStream / leakage.TVLAStream) and
// is discarded, so the arm's resident analysis state is O(poi×guesses)
// regardless of the trace budget — the buffered formulation held every
// trace and recomputed each sweep point from scratch. The result is
// independent of worker count and goroutine scheduling: every random
// choice is keyed by trace identity and the reduction feeds the
// accumulators strictly in trace-index order.
//
//emsim:ordered
func evaluateArm(ctx context.Context, opts Options, name string, spec Spec) (*ArmResult, error) {
	res := &ArmResult{Name: name}
	total := opts.CPATraces + 2*opts.TVLATraces
	var done atomic.Int64
	report := func(n int) {
		d := int(done.Add(int64(n)))
		if opts.Progress != nil {
			opts.Progress(name, d, total)
		}
	}
	lane := obs.NextLane() // analysis snapshots

	// ---- CPA: key-rank curve, one pass ----
	progs := make([][]uint32, opts.CPATraces)
	ptByte := make([]byte, opts.CPATraces)
	for i := range progs {
		var pt [16]byte
		rng := rand.New(rand.NewSource(int64(stream(opts.Seed, lanePlain, int64(i)))))
		for b := range pt {
			pt[b] = byte(rng.Intn(256))
		}
		prog, err := aes.BuildProgram(opts.Key, pt)
		if err != nil {
			return nil, fmt.Errorf("defend: build CPA program %d: %w", i, err)
		}
		progs[i] = prog.Words
		ptByte[i] = pt[0]
	}
	trueGuess := int(opts.Key[0])
	// With CPAPoints > 0 the stream reduces every trace to the
	// highest-variance columns of its first CPAStep traces (the pilot) —
	// cheaper but able to miss low-variance leaks, like the buffered
	// whole-campaign selection it replaces; 0 attacks every column.
	cpa := leakage.NewCPAStream(256, opts.CPAPoints, opts.CPAStep)
	hypRow := make([]float64, 256)
	var sumCycles, sumInjected float64
	cpaSeed := int64(stream(opts.Seed, lanePart, 1))
	err := streamTraces(ctx, opts, spec, cpaSeed, progs, report, func(i int, amp []float64, cycles, injected int) error {
		sumCycles += float64(cycles)
		sumInjected += float64(injected)
		cpaHypothesisRow(ptByte[i], hypRow)
		if aerr := cpa.Add(amp, hypRow); aerr != nil {
			return fmt.Errorf("defend: %s: CPA trace %d: %w", name, i, aerr)
		}
		if (i+1)%opts.CPAStep != 0 {
			return nil
		}
		obs.Begin(spanAnalyze, lane)
		cr, serr := cpa.Snapshot()
		obs.End(spanAnalyze, lane)
		if serr != nil {
			return fmt.Errorf("defend: %s: CPA at %d traces: %w", name, i+1, serr)
		}
		res.CPARanks = append(res.CPARanks, RankPoint{Traces: i + 1, Rank: cr.Rank(trueGuess), Margin: cr.Margin()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.MeanCycles = sumCycles / float64(opts.CPATraces)
	res.MeanInjected = sumInjected / float64(opts.CPATraces)
	res.CPASamples = cpa.Samples()
	res.CPATruncated = cpa.TruncatedSamples()
	for i := len(res.CPARanks) - 1; i >= 0 && res.CPARanks[i].Rank == 0; i-- {
		res.DiscloseTraces = res.CPARanks[i].Traces
	}

	// ---- TVLA: fixed vs random detection sweep, one pass ----
	fixedProg, err := aes.BuildProgram(opts.Key, opts.Fixed)
	if err != nil {
		return nil, fmt.Errorf("defend: build TVLA fixed program: %w", err)
	}
	tprogs := make([][]uint32, 2*opts.TVLATraces)
	for j := 0; j < opts.TVLATraces; j++ {
		tprogs[2*j] = fixedProg.Words
		var pt [16]byte
		rng := rand.New(rand.NewSource(int64(stream(opts.Seed, laneTVLA, int64(j)))))
		for b := range pt {
			pt[b] = byte(rng.Intn(256))
		}
		prog, err := aes.BuildProgram(opts.Key, pt)
		if err != nil {
			return nil, fmt.Errorf("defend: build TVLA program %d: %w", j, err)
		}
		tprogs[2*j+1] = prog.Words
	}
	tv := leakage.NewTVLAStream()
	sweep := sweepSizes(opts.TVLATraces)
	nextSweep := 0
	tvlaSeed := int64(stream(opts.Seed, lanePart, 2))
	err = streamTraces(ctx, opts, spec, tvlaSeed, tprogs, report, func(i int, amp []float64, _, _ int) error {
		if i%2 == 0 {
			return tv.AddFixed(amp)
		}
		if aerr := tv.AddRandom(amp); aerr != nil {
			return aerr
		}
		g := (i + 1) / 2 // complete fixed/random pairs so far
		if nextSweep >= len(sweep) || g != sweep[nextSweep] {
			return nil
		}
		nextSweep++
		obs.Begin(spanAnalyze, lane)
		defer obs.End(spanAnalyze, lane)
		if g == opts.TVLATraces {
			// Final sweep point: the full snapshot also yields the leaky
			// point count at the complete budget.
			snap, serr := tv.Snapshot()
			if serr != nil {
				return fmt.Errorf("defend: %s: TVLA at %d traces: %w", name, g, serr)
			}
			res.TVLASweep = append(res.TVLASweep, TVLAPoint{Traces: g, MaxAbsT: snap.MaxAbsT})
			if res.DetectTraces == 0 && snap.MaxAbsT > stats.TVLAThreshold {
				res.DetectTraces = g
			}
			res.MaxAbsT = snap.MaxAbsT
			res.LeakyPoints = len(snap.LeakyPoints)
			return nil
		}
		maxAbs, serr := tv.MaxAbsT()
		if serr != nil {
			return fmt.Errorf("defend: %s: TVLA at %d traces: %w", name, g, serr)
		}
		res.TVLASweep = append(res.TVLASweep, TVLAPoint{Traces: g, MaxAbsT: maxAbs})
		if res.DetectTraces == 0 && maxAbs > stats.TVLAThreshold {
			res.DetectTraces = g
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.TVLASamples = tv.Samples()
	res.TVLATruncated = tv.TruncatedSamples()
	return res, nil
}

// cpaHypothesisRow fills row[g] with candidate g's predicted leakage for
// a trace whose first plaintext byte is pt. The distinguisher targets
// the round-1 S-box lookup transition x -> S(x) (Hamming distance)
// rather than plain HW(S(x)): the pipeline's amplitude model leaks latch
// transitions, and the plain-weight model leaves a persistent ghost peak
// that keeps the true key at rank 1-2. The table is built for all 256
// candidates unconditionally from the public plaintext byte; the secret
// key only selects the true candidate index at the call site.
func cpaHypothesisRow(pt byte, row []float64) {
	for g := 0; g < 256; g++ {
		x := pt ^ byte(g)
		row[g] = leakage.HammingWeight(uint32(aes.SBox(x) ^ x))
	}
}

// traceOut is one simulated trace crossing from a worker to the
// consumer: the amplitude vector (noise added, owned by the receiver)
// plus the run's cycle and injected-slot counts, or the simulation
// error for that index.
type traceOut struct {
	amp      []float64
	cycles   int
	injected int
	err      error
}

// streamTraces simulates progs[i] for every i across opts.Workers
// workers, each with a private defended Session, and hands each trace to
// consume exactly once, in strictly ascending index order, on the caller
// goroutine — so consume can fold into accumulators without locks and
// the reduction is byte-identical at any worker count. Traces are
// discarded after consumption: at most ~2 traces per worker are resident
// at once, never the campaign.
//
// Worker w owns indices w, w+W, w+2W, ... (static round-robin) and sends
// over its own single-slot channel; the consumer walks the channels in
// index order, so no select is needed and arrival order cannot leak into
// the result. Failures propagate like core.SimulateBatch: the
// lowest-indexed failing trace wins, deterministically. A consume error
// stops the campaign the same way.
//
//emsim:ordered
func streamTraces(ctx context.Context, opts Options, spec Spec, seed int64, progs [][]uint32, report func(int), consume func(i int, amp []float64, cycles, injected int) error) error {
	n := len(progs)
	if n == 0 {
		return nil
	}
	workers := opts.Workers
	if workers > n {
		workers = n
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	outs := make([]chan traceOut, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := range outs {
		out := make(chan traceOut, 1)
		outs[w] = out
		go func(w int, out chan traceOut) {
			defer wg.Done()
			defer close(out)
			var cm Countermeasure
			if spec.Name != "" {
				var cerr error
				if cm, cerr = spec.New(); cerr != nil {
					out <- traceOut{err: cerr}
					return
				}
			}
			sess, serr := NewSession(opts.Model, opts.CPU, cm, seed)
			if serr != nil {
				out <- traceOut{err: serr}
				return
			}
			traceLane := obs.NextLane()
			var buf []float64
			for i := w; i < n; i += workers {
				if runCtx.Err() != nil {
					return
				}
				obs.Begin(spanTrace, traceLane)
				sig, rerr := sess.SimulateTraceInto(runCtx, buf, int64(i), progs[i])
				if rerr != nil {
					obs.End(spanTrace, traceLane)
					out <- traceOut{err: rerr}
					continue
				}
				noise := rand.New(rand.NewSource(int64(stream(seed, laneNoise, int64(i)))))
				for k := range sig {
					sig[k] += opts.NoiseStd * noise.NormFloat64()
				}
				amp, aerr := core.ExtractAmplitudes(sig, opts.Model.SamplesPerCycle, opts.Model.Kernel)
				buf = sig[:0]
				obs.End(spanTrace, traceLane)
				if aerr != nil {
					out <- traceOut{err: aerr}
					continue
				}
				out <- traceOut{amp: amp, cycles: sess.Cycles(), injected: sess.Stats().Injected}
				// report is concurrency-safe (atomic counter, callback
				// contract allows concurrent out-of-order calls).
				report(1)
			}
		}(w, out)
	}
	var firstErr error
	for i := 0; i < n; i++ {
		o, ok := <-outs[i%workers]
		if !ok {
			// The worker exited after delivering a setup error for an
			// earlier index; without one this is a missing-trace bug.
			firstErr = fmt.Errorf("defend: trace %d missing (worker exited early)", i)
			break
		}
		if o.err != nil {
			firstErr = o.err
			break
		}
		if cerr := consume(i, o.amp, o.cycles, o.injected); cerr != nil {
			firstErr = cerr
			break
		}
	}
	if firstErr != nil {
		cancel()
		for _, ch := range outs {
			for range ch {
			}
		}
		wg.Wait()
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return firstErr
	}
	wg.Wait()
	return nil
}

// sweepSizes returns the doubling TVLA sweep grid {4, 8, 16, ...} capped
// at and always including g.
func sweepSizes(g int) []int {
	var out []int
	for s := 4; s < g; s *= 2 {
		out = append(out, s)
	}
	return append(out, g)
}

// String renders the report as a readable summary table.
func (r *SecurityReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "defense %s (seed %d)\n", r.Defense, r.Seed)
	fmt.Fprintf(&b, "%-22s %14s %14s\n", "", "baseline", "defended")
	fmt.Fprintf(&b, "%-22s %14.1f %14.1f\n", "mean cycles", r.Baseline.MeanCycles, r.Defended.MeanCycles)
	fmt.Fprintf(&b, "%-22s %14.2f %14.2f\n", "TVLA |t|max", r.Baseline.MaxAbsT, r.Defended.MaxAbsT)
	fmt.Fprintf(&b, "%-22s %14d %14d\n", "TVLA leaky points", r.Baseline.LeakyPoints, r.Defended.LeakyPoints)
	fmt.Fprintf(&b, "%-22s %14s %14s\n", "TVLA detect @", traceCount(r.Baseline.DetectTraces), traceCount(r.Defended.DetectTraces))
	fmt.Fprintf(&b, "%-22s %14s %14s\n", "CPA disclose @", traceCount(r.Baseline.DiscloseTraces), traceCount(r.Defended.DiscloseTraces))
	fmt.Fprintf(&b, "leakage reduction      %6.1f%%\n", 100*r.LeakageReduction)
	cost := fmt.Sprintf("%.1fx", r.AttackCostMultiplier)
	if r.CostIsLowerBound {
		cost = ">" + cost
	}
	fmt.Fprintf(&b, "attack cost            %s\n", cost)
	fmt.Fprintf(&b, "cycle overhead         %6.1f%%\n", 100*r.CycleOverhead)
	return b.String()
}

func traceCount(n int) string {
	if n == 0 {
		return "never"
	}
	return fmt.Sprintf("%d", n)
}
