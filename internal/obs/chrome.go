package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one "complete" event ("ph":"X") of the Chrome trace
// JSON format (chrome://tracing, Perfetto, speedscope all read it).
// Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// chromeTrace is the top-level Chrome trace JSON object.
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	// DisplayTimeUnit is a viewer hint; event timestamps stay in µs.
	DisplayTimeUnit string `json:"displayTimeUnit"`
	// Dropped counts unpaired boundaries (a begin whose end was
	// overwritten by the ring, or vice versa) excluded from the export.
	Dropped int `json:"emsimDroppedBoundaries"`
}

// pairKey scopes begin/end matching: spans pair up within one (lane,
// name) track, which is how the recorder's producers nest them.
type pairKey struct {
	lane int
	name string
}

// WriteChromeTrace renders events (as returned by Snapshot) as Chrome
// trace JSON. Begin/end boundaries are paired into complete events so a
// ring that wrapped mid-span — orphaning one side of a pair — still
// yields a well-formed trace; orphans are counted, not emitted.
func WriteChromeTrace(w io.Writer, events []Event) error {
	open := map[pairKey][]int64{} // stack of begin timestamps per track
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, e := range events {
		k := pairKey{lane: e.Lane, name: e.Name}
		if !e.End {
			open[k] = append(open[k], e.Nanos)
			continue
		}
		stack := open[k]
		if len(stack) == 0 {
			out.Dropped++ // end without a surviving begin
			continue
		}
		start := stack[len(stack)-1]
		open[k] = stack[:len(stack)-1]
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Name,
			Ph:   "X",
			Ts:   float64(start) / 1e3,
			Dur:  float64(e.Nanos-start) / 1e3,
			Pid:  1,
			Tid:  e.Lane,
		})
	}
	for _, stack := range open {
		out.Dropped += len(stack) // begin without a surviving end
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
