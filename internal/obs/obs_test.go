package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// testSpans are registered once for the whole package test process;
// RegisterSpan is idempotent so every test can name them.
var (
	testSpanA = RegisterSpan("test.a")
	testSpanB = RegisterSpan("test.b")
)

func TestRegisterSpanIdempotent(t *testing.T) {
	if got := RegisterSpan("test.a"); got != testSpanA {
		t.Fatalf("re-registering test.a returned %d, want %d", got, testSpanA)
	}
	if testSpanA == 0 || testSpanB == 0 || testSpanA == testSpanB {
		t.Fatalf("bad span IDs: %d %d", testSpanA, testSpanB)
	}
}

func TestDisabledRecorderDropsEvents(t *testing.T) {
	Enable(64)
	Disable()
	Begin(testSpanA, 1)
	End(testSpanA, 1)
	if got := Snapshot(); len(got) != 0 {
		t.Fatalf("disabled recorder captured %d events, want 0", len(got))
	}
}

func TestBeginEndSnapshotRoundTrip(t *testing.T) {
	Enable(64)
	defer Disable()
	Begin(testSpanA, 3)
	Begin(testSpanB, 3)
	End(testSpanB, 3)
	End(testSpanA, 3)
	ev := Snapshot()
	if len(ev) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(ev))
	}
	wantNames := []string{"test.a", "test.b", "test.b", "test.a"}
	wantEnd := []bool{false, false, true, true}
	for i, e := range ev {
		if e.Name != wantNames[i] || e.End != wantEnd[i] || e.Lane != 3 {
			t.Errorf("event %d = %+v, want name %s end %v lane 3", i, e, wantNames[i], wantEnd[i])
		}
		if i > 0 && e.Nanos < ev[i-1].Nanos {
			t.Errorf("event %d timestamp %d precedes event %d (%d)", i, e.Nanos, i-1, ev[i-1].Nanos)
		}
	}
}

func TestRingKeepsMostRecentWindow(t *testing.T) {
	Enable(8)
	defer Disable()
	for i := 0; i < 20; i++ {
		Begin(testSpanA, i)
	}
	ev := Snapshot()
	if len(ev) != 8 {
		t.Fatalf("snapshot has %d events, want the 8-deep ring", len(ev))
	}
	// The surviving window is the last 8 begins: lanes 12..19 (mod 256).
	lanes := map[int]bool{}
	for _, e := range ev {
		lanes[e.Lane] = true
	}
	for lane := 12; lane < 20; lane++ {
		if !lanes[lane] {
			t.Errorf("ring lost recent event on lane %d; kept %v", lane, lanes)
		}
	}
}

func TestConcurrentRecordingIsSafe(t *testing.T) {
	Enable(1 << 10)
	defer Disable()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				Begin(testSpanA, w)
				End(testSpanA, w)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			Snapshot() // scrape while writers run
		}
	}()
	wg.Wait()
	<-done
	if got := len(Snapshot()); got != 1<<10 {
		t.Fatalf("full ring snapshot has %d events, want %d", got, 1<<10)
	}
}

func TestRecordingDoesNotAllocate(t *testing.T) {
	Enable(1 << 10)
	defer Disable()
	allocs := testing.AllocsPerRun(100, func() {
		Begin(testSpanA, 1)
		End(testSpanA, 1)
	})
	if allocs > 0 {
		t.Errorf("Begin+End allocates %.1f times per pair, want 0", allocs)
	}
	Disable()
	allocs = testing.AllocsPerRun(100, func() {
		Begin(testSpanA, 1)
		End(testSpanA, 1)
	})
	if allocs > 0 {
		t.Errorf("disabled Begin+End allocates %.1f times per pair, want 0", allocs)
	}
}

func TestWriteChromeTracePairsSpans(t *testing.T) {
	events := []Event{
		{Name: "outer", Lane: 1, Nanos: 1000},
		{Name: "inner", Lane: 1, Nanos: 2000},
		{Name: "inner", Lane: 1, End: true, Nanos: 3000},
		{Name: "outer", Lane: 1, End: true, Nanos: 5000},
		{Name: "orphan-begin", Lane: 2, Nanos: 100},
		{Name: "orphan-end", Lane: 2, End: true, Nanos: 200},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
		Dropped int `json:"emsimDroppedBoundaries"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace is not JSON: %v\n%s", err, buf.String())
	}
	if len(trace.TraceEvents) != 2 {
		t.Fatalf("trace has %d events, want 2 paired spans: %s", len(trace.TraceEvents), buf.String())
	}
	for _, e := range trace.TraceEvents {
		if e.Ph != "X" || e.Tid != 1 {
			t.Errorf("event %+v: want ph X on tid 1", e)
		}
		switch e.Name {
		case "outer":
			if e.Ts != 1 || e.Dur != 4 {
				t.Errorf("outer span ts=%g dur=%g, want 1/4 µs", e.Ts, e.Dur)
			}
		case "inner":
			if e.Ts != 2 || e.Dur != 1 {
				t.Errorf("inner span ts=%g dur=%g, want 2/1 µs", e.Ts, e.Dur)
			}
		default:
			t.Errorf("unexpected span %q in trace", e.Name)
		}
	}
	if trace.Dropped != 2 {
		t.Errorf("dropped %d boundaries, want 2 (orphan begin + orphan end)", trace.Dropped)
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("empty trace should render an empty traceEvents array: %s", buf.String())
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("emsim_requests_total", "accepted requests", "endpoint", "simulate")
	c2 := r.Counter("emsim_requests_total", "", "endpoint", "tvla")
	g := r.Gauge("emsim_queue_depth", "queued jobs")
	h := r.Histogram("emsim_latency_seconds", "request latency", []float64{0.1, 1}, "endpoint", "simulate")

	c.Add(3)
	c2.Inc()
	g.Set(7)
	g.Add(-2)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(30)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP emsim_requests_total accepted requests",
		"# TYPE emsim_requests_total counter",
		`emsim_requests_total{endpoint="simulate"} 3`,
		`emsim_requests_total{endpoint="tvla"} 1`,
		"# TYPE emsim_queue_depth gauge",
		"emsim_queue_depth 5",
		"# TYPE emsim_latency_seconds histogram",
		`emsim_latency_seconds_bucket{endpoint="simulate",le="0.1"} 1`,
		`emsim_latency_seconds_bucket{endpoint="simulate",le="1"} 2`,
		`emsim_latency_seconds_bucket{endpoint="simulate",le="+Inf"} 3`,
		`emsim_latency_seconds_count{endpoint="simulate"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}
	if h.Count() != 3 {
		t.Errorf("histogram count %d, want 3", h.Count())
	}
	if got := h.Sum(); got < 30.5 || got > 30.6 {
		t.Errorf("histogram sum %g, want 30.55", got)
	}
}

func TestRegistryDeterministicOrder(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		r.Counter("b_total", "b")
		r.Gauge("a_depth", "a")
		r.Counter("c_total", "c", "k", "1")
		r.Counter("c_total", "", "k", "2")
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("two identical registries rendered differently:\n%s\n----\n%s", a, b)
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("x_total", "")
	mustPanic("duplicate", func() { r.Counter("x_total", "") })
	mustPanic("kind conflict", func() { r.Gauge("x_total", "") })
	mustPanic("odd labels", func() { r.Counter("y_total", "", "k") })
	mustPanic("bad buckets", func() { r.Histogram("z", "", []float64{1, 1}) })
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 2, 3})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(2.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count %d, want 8000", h.Count())
	}
	if got, want := h.Sum(), 8000*2.5; got != want {
		t.Errorf("sum %g, want %g", got, want)
	}
}
