// Package obs is the runtime observability layer: a zero-allocation
// span recorder for the simulation/training/serving hot paths, and a
// stdlib-only metrics registry (counters, gauges, fixed-bucket
// histograms) rendered in Prometheus text format.
//
// The load-bearing constraint is the determinism contract: spans
// observe, they never perturb. Instrumented code paths (core.Session,
// the Trainer phases, the serve job lifecycle, defend.Evaluate arms)
// produce byte-identical signals and models whether tracing is enabled
// or not, because recording an event is a pure side channel — a clock
// read and one atomic store into a pre-allocated ring — that feeds no
// simulated value. The recorder is also allocation-free in the steady
// state (//emsim:noalloc-pinned), so enabling it cannot knock the
// Session's zero-allocation property over either.
//
// Span identities are pre-registered (package init time) against a
// fixed table, so the hot path carries integer IDs only. Events are
// packed into single uint64 words and written into a fixed ring buffer
// with atomic claims, making concurrent recording race-free without a
// lock; when the ring wraps, the oldest events are overwritten — a
// trace snapshot is always the most recent window.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies a pre-registered span name. The zero SpanID is
// invalid and never recorded.
type SpanID uint32

// Event layout inside one packed uint64:
//
//	bit  63     kind (0 = begin, 1 = end)
//	bits 51..62 span ID (12 bits, 4095 registered spans)
//	bits 43..50 lane (8 bits; lanes wrap modulo 256 for display)
//	bits 0..42  timestamp, 100 ns ticks since the recorder epoch
//	            (wraps after ~10 days; saturated, not wrapped)
//
// A packed value of zero marks an empty slot, which is unambiguous
// because a valid event always carries a nonzero span ID.
const (
	tsBits   = 43
	tsMask   = 1<<tsBits - 1
	laneBits = 8
	laneMask = 1<<laneBits - 1
	spanBits = 12
	spanMask = 1<<spanBits - 1

	tickNanos = 100 // recorder resolution
)

// DefaultRingSize is the event capacity Enable(0) selects: 64 Ki events
// (512 KiB of ring), roughly the last few thousand simulated traces.
const DefaultRingSize = 1 << 16

// recorder is one enabled tracing session: a fixed ring of packed
// events and the epoch its timestamps count from.
type recorder struct {
	slots []atomic.Uint64
	mask  uint64
	head  atomic.Uint64 // next slot index to claim (monotonic)
	epoch time.Time
}

var (
	// active is the recorder the hot path writes to; nil means tracing
	// is disabled and Begin/End cost one atomic load.
	active atomic.Pointer[recorder]

	regMu     sync.Mutex
	spanNames []string          // index = SpanID-1
	spanIDs   map[string]SpanID // idempotent re-registration
	last      *recorder         // most recent recorder, kept for Snapshot after Disable
)

// RegisterSpan interns a span name and returns its ID. Registration is
// idempotent (the same name always yields the same ID) and intended for
// package init time — the steady-state path carries only the returned
// integer. It panics when the 4095-span table is exhausted, which is a
// misuse of the pre-registration contract, not a runtime condition.
func RegisterSpan(name string) SpanID {
	regMu.Lock()
	defer regMu.Unlock()
	if spanIDs == nil {
		spanIDs = map[string]SpanID{}
	}
	if id, ok := spanIDs[name]; ok {
		return id
	}
	if len(spanNames) >= spanMask {
		panic("obs: span table exhausted; spans must be pre-registered, not minted per call")
	}
	spanNames = append(spanNames, name)
	id := SpanID(len(spanNames))
	spanIDs[name] = id
	return id
}

// laneCounter hands out display lanes; see NextLane.
var laneCounter atomic.Int64

// NextLane claims a fresh trace lane — the Chrome-trace "thread" a
// component's spans render on. Sessions, trainer workers and serve jobs
// each claim one so their span nesting stays readable. Lanes wrap
// modulo 256 in the packed event; claiming is an atomic increment and
// never allocates.
//
//emsim:noalloc
func NextLane() int {
	return int(laneCounter.Add(1))
}

// Enable starts recording into a fresh ring of at least size events
// (rounded up to a power of two; size <= 0 selects DefaultRingSize).
// Any previous recorder is replaced; its events remain visible to
// Snapshot only until Enable returns.
func Enable(size int) {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	rb := &recorder{slots: make([]atomic.Uint64, n), mask: uint64(n - 1)}
	rb.epoch = time.Now()
	regMu.Lock()
	last = rb
	regMu.Unlock()
	active.Store(rb)
}

// Disable stops recording. Events already in the ring stay available to
// Snapshot until the next Enable.
func Disable() {
	active.Store(nil)
}

// Enabled reports whether the recorder is currently accepting events.
func Enabled() bool {
	return active.Load() != nil
}

// Begin records the start of span s on the given lane. With tracing
// disabled it is one atomic load and a branch; enabled, it adds a clock
// read and one atomic store into the pre-allocated ring. It never
// allocates and is safe for concurrent use.
//
//emsim:noalloc
func Begin(s SpanID, lane int) {
	record(s, lane, 0)
}

// End records the end of span s on the given lane; see Begin.
//
//emsim:noalloc
func End(s SpanID, lane int) {
	record(s, lane, 1)
}

//emsim:noalloc
func record(s SpanID, lane int, kind uint64) {
	rb := active.Load()
	if rb == nil || s == 0 {
		return
	}
	//emsim:ignore noalloc time.Since reads the monotonic clock without allocating; the time package is simply not on the analyzer's allowlist
	ticks := uint64(time.Since(rb.epoch)) / tickNanos
	if ticks > tsMask {
		ticks = tsMask // saturate after ~10 days rather than fold old events onto new ones
	}
	v := kind<<63 | (uint64(s)&spanMask)<<51 | (uint64(lane)&laneMask)<<43 | ticks
	i := rb.head.Add(1) - 1
	rb.slots[i&rb.mask].Store(v)
}

// Event is one decoded span boundary.
type Event struct {
	Name  string // registered span name
	Lane  int    // display lane (0..255)
	End   bool   // false = span begin, true = span end
	Nanos int64  // 100 ns-granular time since the recorder epoch
}

// Snapshot decodes the most recent window of recorded events, oldest
// first (ties broken by ring order). It reads the ring concurrently
// with writers: an event claimed but not yet stored at snapshot time is
// simply absent, and a scrape never blocks the hot path. The snapshot
// survives Disable — only the next Enable discards it.
func Snapshot() []Event {
	regMu.Lock()
	rb := last
	names := spanNames
	regMu.Unlock()
	if rb == nil {
		return nil
	}
	h := rb.head.Load()
	n := h
	if n > uint64(len(rb.slots)) {
		n = uint64(len(rb.slots))
	}
	events := make([]Event, 0, n)
	for k := h - n; k < h; k++ {
		v := rb.slots[k&rb.mask].Load()
		if v == 0 {
			continue
		}
		span := int(v >> 51 & spanMask)
		if span < 1 || span > len(names) {
			continue
		}
		events = append(events, Event{
			Name:  names[span-1],
			Lane:  int(v >> 43 & laneMask),
			End:   v>>63 == 1,
			Nanos: int64(v&tsMask) * tickNanos,
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Nanos < events[j].Nanos })
	return events
}
