package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the observability layer: a
// stdlib-only registry of counters, gauges and fixed-bucket histograms,
// rendered in the Prometheus text exposition format. It replaces the
// ad-hoc expvar sprawl with one model: metrics are registered once (at
// construction time, with their label sets fixed), observed lock-free
// through atomics, and scraped deterministically (families in
// registration order, series in registration order) so two scrapes of
// identical state render identical bytes.

// metric kinds, for the # TYPE line.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution. Buckets are cumulative
// upper bounds in ascending order; an implicit +Inf bucket catches the
// tail. Observation is lock-free: one linear bucket scan (the bucket
// lists are short by design) plus three atomic updates.
type Histogram struct {
	bounds []float64       // upper bounds, ascending, +Inf excluded
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefLatencyBuckets is the default latency histogram layout, in
// seconds: exponential from 100 µs to ~50 s, matched to the spread
// between a cached micro-simulation and a full training campaign phase.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50,
}

// series is one (metric, label set) pair of a family.
type series struct {
	labels  string // rendered {k="v",...} suffix, "" when unlabeled
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   string
	series []*series
	seen   map[string]bool // label suffixes, to reject duplicates
}

// Registry holds one process component's metrics. Registration takes a
// lock and may allocate; observation is lock-free on the returned
// handles. The zero Registry is not usable; build one with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Counter registers (or extends) the named counter family and returns
// the handle for the given label pairs (alternating key, value). It
// panics on a malformed label list, a kind conflict with an existing
// family, or a duplicate (name, labels) registration — all programmer
// errors, mirroring expvar.Publish.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.register(name, help, kindCounter, labels)
	s.counter = &Counter{}
	return s.counter
}

// Gauge registers the named gauge; see Counter for the contract.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.register(name, help, kindGauge, labels)
	s.gauge = &Gauge{}
	return s.gauge
}

// Histogram registers the named histogram with the given cumulative
// upper bounds (nil selects DefLatencyBuckets); see Counter for the
// contract. Bounds must be ascending.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bounds not ascending", name))
		}
	}
	s := r.register(name, help, kindHistogram, labels)
	s.hist = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	return s.hist
}

func (r *Registry) register(name, help, kind string, labels []string) *series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %s labels must be key/value pairs", name))
	}
	suffix := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, seen: map[string]bool{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as both %s and %s", name, f.kind, kind))
	}
	if f.seen[suffix] {
		panic(fmt.Sprintf("obs: duplicate registration of %s%s", name, suffix))
	}
	f.seen[suffix] = true
	s := &series{labels: suffix}
	f.series = append(f.series, s)
	return s
}

// renderLabels builds the {k="v",...} suffix, keys sorted so the same
// label set always renders identically.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels splices extra pairs (le for histogram buckets) into a
// rendered label suffix.
func mergeLabels(suffix, extra string) string {
	if suffix == "" {
		return "{" + extra + "}"
	}
	return suffix[:len(suffix)-1] + "," + extra + "}"
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4). Output order is
// deterministic: families and series in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	for i, name := range r.order {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.gauge.Value())
			case kindHistogram:
				err = writeHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.hist
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := mergeLabels(s.labels, fmt.Sprintf("le=%q", formatBound(b)))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	le := mergeLabels(s.labels, `le="+Inf"`)
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, le, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, s.labels, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
	return err
}

// formatBound renders a bucket bound the way Prometheus clients expect
// (shortest float representation).
func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", b), "0"), ".")
}
