package aes

import (
	"bytes"
	"math/rand"
	"testing"

	"emsim/internal/cpu"
)

func runAES(t *testing.T, key, pt [16]byte) [16]byte {
	t.Helper()
	prog, err := BuildProgram(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	c := cpu.MustNew(cpu.DefaultConfig())
	if _, err := c.RunProgram(prog.Words); err != nil {
		t.Fatal(err)
	}
	return prog.Output(c.Memory().ReadWord)
}

func TestExpandKeyFIPSVector(t *testing.T) {
	// FIPS-197 Appendix A.1 key schedule for 2b7e1516...
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	rk := ExpandKey(key)
	// w4 = a0fafe17, w43 = b6630ca6.
	if got := []byte{rk[16], rk[17], rk[18], rk[19]}; !bytes.Equal(got, []byte{0xa0, 0xfa, 0xfe, 0x17}) {
		t.Errorf("w4 = %x", got)
	}
	if got := rk[172:176]; !bytes.Equal(got, []byte{0xb6, 0x63, 0x0c, 0xa6}) {
		t.Errorf("w43 = %x", got)
	}
}

func TestAESMatchesFIPSVector(t *testing.T) {
	// FIPS-197 Appendix B.
	key := [16]byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
		0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	pt := [16]byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
		0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	want := [16]byte{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb,
		0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32}
	if got := Reference(key, pt); got != want {
		t.Fatalf("stdlib reference mismatch: %x", got)
	}
	if got := runAES(t, key, pt); got != want {
		t.Errorf("simulated AES = %x, want %x", got, want)
	}
}

func TestAESMatchesReferenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		var key, pt [16]byte
		r.Read(key[:])
		r.Read(pt[:])
		want := Reference(key, pt)
		if got := runAES(t, key, pt); got != want {
			t.Fatalf("trial %d: simulated %x, want %x (key %x, pt %x)", trial, got, want, key, pt)
		}
	}
}

func TestAESProgramProperties(t *testing.T) {
	var key, pt [16]byte
	prog, err := BuildProgram(key, pt)
	if err != nil {
		t.Fatal(err)
	}
	if prog.InputAddr == 0 || prog.OutputAddr == 0 {
		t.Error("data addresses not resolved")
	}
	if len(prog.Words) < 200 {
		t.Errorf("program suspiciously small: %d words", len(prog.Words))
	}
	c := cpu.MustNew(cpu.DefaultConfig())
	if _, err := c.RunProgram(prog.Words); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Retired < 1000 {
		t.Errorf("AES retired only %d instructions", st.Retired)
	}
	t.Logf("AES-128: %d cycles, %d retired, IPC %.2f, %d cache misses, %d mispredicts",
		st.Cycles, st.Retired, st.IPC(), st.CacheMisses, st.Mispredicts)
}

func TestAESDifferentInputsDifferentCiphertext(t *testing.T) {
	var key, p1, p2 [16]byte
	p2[0] = 1
	c1 := runAES(t, key, p1)
	c2 := runAES(t, key, p2)
	if c1 == c2 {
		t.Error("distinct plaintexts produced identical ciphertext")
	}
}

func BenchmarkAESSimulated(b *testing.B) {
	var key, pt [16]byte
	prog, err := BuildProgram(key, pt)
	if err != nil {
		b.Fatal(err)
	}
	c := cpu.MustNew(cpu.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunProgram(prog.Words); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAESBuildProgram(b *testing.B) {
	var key, pt [16]byte
	for i := 0; i < b.N; i++ {
		if _, err := BuildProgram(key, pt); err != nil {
			b.Fatal(err)
		}
	}
}
