// Package aes generates an AES-128 encryption program in RV32IM assembly
// for the simulated core — the workload of the paper's TVLA use-case
// (§VI-A, Figure 10). The implementation is a straightforward software
// AES with an in-memory S-box (the classic table lookups whose
// data-dependent EM activity TVLA detects), verified against crypto/aes.
package aes

import (
	"crypto/aes"
	"fmt"

	"emsim/internal/asm"
	"emsim/internal/isa"
)

// sbox is the AES forward substitution box.
var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

var rcon = [11]byte{0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}

// ExpandKey computes the 176-byte AES-128 key schedule. The schedule is
// constant-time except for the S-box substitution in the g-function,
// which is the table lookup the leakage model exists to expose.
//
//emsim:ct
//emsim:secret key
func ExpandKey(key [16]byte) [176]byte {
	var rk [176]byte
	copy(rk[:16], key[:])
	for i := 4; i < 44; i++ {
		var temp [4]byte
		copy(temp[:], rk[4*(i-1):4*i])
		if i%4 == 0 {
			temp[0], temp[1], temp[2], temp[3] = temp[1], temp[2], temp[3], temp[0]
			for j := range temp {
				//emsim:ignore secretflow key-schedule S-box lookup is the data-dependent table access the EM leakage model depends on
				temp[j] = sbox[temp[j]]
			}
			temp[0] ^= rcon[i/4]
		}
		for j := 0; j < 4; j++ {
			rk[4*i+j] = rk[4*(i-4)+j] ^ temp[j]
		}
	}
	return rk
}

// Reference encrypts one block with the standard library, for validating
// the generated program.
func Reference(key, plaintext [16]byte) [16]byte {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err) // 16-byte keys cannot fail
	}
	var out [16]byte
	block.Encrypt(out[:], plaintext[:])
	return out
}

// leWord packs 4 bytes little-endian, which on the little-endian core
// makes byte 0 (AES row 0) the least significant byte of a column word.
// Pure shifts and ors: safe for round-key material.
//
//emsim:ct
//emsim:secret b
func leWord(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Program is a generated AES-128 encryption image.
type Program struct {
	// Words is the binary image (code + data), loaded at address 0.
	Words []uint32
	// InputAddr, OutputAddr locate the 16-byte plaintext and ciphertext
	// buffers inside the image.
	InputAddr, OutputAddr uint32
}

// Output extracts the ciphertext from a memory reader after the program
// has run.
func (p *Program) Output(readWord func(uint32) uint32) [16]byte {
	var out [16]byte
	for c := 0; c < 4; c++ {
		w := readWord(p.OutputAddr + uint32(4*c))
		out[4*c+0] = byte(w)
		out[4*c+1] = byte(w >> 8)
		out[4*c+2] = byte(w >> 16)
		out[4*c+3] = byte(w >> 24)
	}
	return out
}

// Registers used by the generated code.
const (
	regSbox = isa.S0 // S-box base
	regRK   = isa.S1 // round-key pointer
	regRnd  = isa.S2 // round counter
	colA    = isa.A0 // state column 0
	colB    = isa.A1
	colC    = isa.A2
	colD    = isa.A3
	outA    = isa.A4 // post-SubBytes/ShiftRows columns
	outB    = isa.A5
	outC    = isa.A6
	outD    = isa.A7
)

var stateCols = [4]isa.Reg{colA, colB, colC, colD}
var shiftedCols = [4]isa.Reg{outA, outB, outC, outD}

// BuildProgram generates the encryption program for one (key, plaintext)
// pair. Round keys are precomputed into the data section (the key
// schedule runs "offline", as in the paper's measurement setup); the code
// performs AddRoundKey, 9 full rounds (SubBytes+ShiftRows in registers
// via S-box loads, MixColumns with the xtime word trick, AddRoundKey) and
// the final round, then stores the ciphertext and halts. The generated
// instruction sequence is identical for every key — only the embedded
// round-key data words differ — so program shape cannot leak the key.
//
//emsim:ct
//emsim:secret key
func BuildProgram(key, plaintext [16]byte) (*Program, error) {
	rk := ExpandKey(key)
	b := asm.NewBuilder()

	// --- code ---
	b.La(regSbox, "sbox")
	b.La(regRK, "roundkeys")
	b.La(isa.T0, "input")
	for c := 0; c < 4; c++ {
		b.I(isa.Lw(stateCols[c], isa.T0, int32(4*c)))
	}
	// AddRoundKey 0.
	addRoundKey(b)
	// 9 full rounds.
	b.I(isa.Addi(regRnd, isa.Zero, 9))
	b.Label("round")
	subShift(b)
	mixColumns(b)
	addRoundKey(b)
	b.I(isa.Addi(regRnd, regRnd, -1))
	b.Branch(isa.BNE, regRnd, isa.Zero, "round")
	// Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
	subShift(b)
	for c := 0; c < 4; c++ {
		b.I(isa.Mv(stateCols[c], shiftedCols[c]))
	}
	addRoundKey(b)
	// Store the ciphertext.
	b.La(isa.T0, "output")
	for c := 0; c < 4; c++ {
		b.I(isa.Sw(stateCols[c], isa.T0, int32(4*c)))
	}
	b.I(isa.Ebreak())

	// --- data ---
	b.Label("input")
	for c := 0; c < 4; c++ {
		b.Word(leWord(plaintext[4*c : 4*c+4]))
	}
	b.Label("output")
	b.Words(0, 0, 0, 0)
	b.Label("roundkeys")
	for i := 0; i < 44; i++ {
		//emsim:ignore secretflow the round keys are embedded in the device-under-test image by design; the image is what the simulator attacks
		b.Word(leWord(rk[4*i : 4*i+4]))
	}
	b.Label("sbox")
	for i := 0; i < 256; i += 4 {
		b.Word(leWord(sbox[i : i+4]))
	}

	p, err := b.Assemble()
	if err != nil {
		return nil, fmt.Errorf("aes: %w", err)
	}
	return &Program{
		Words:      p.Words,
		InputAddr:  p.Symbols["input"],
		OutputAddr: p.Symbols["output"],
	}, nil
}

// addRoundKey XORs the four round-key words at regRK into the state and
// advances the pointer.
func addRoundKey(b *asm.Builder) {
	for c := 0; c < 4; c++ {
		b.I(isa.Lw(isa.T1, regRK, int32(4*c)))
		b.I(isa.Xor(stateCols[c], stateCols[c], isa.T1))
	}
	b.I(isa.Addi(regRK, regRK, 16))
}

// subShift computes SubBytes∘ShiftRows from stateCols into shiftedCols:
// out[r][c] = S(in[r][(c+r) mod 4]), with row r living at bits 8r of each
// column word.
func subShift(b *asm.Builder) {
	for c := 0; c < 4; c++ {
		dst := shiftedCols[c]
		first := true
		for r := 0; r < 4; r++ {
			src := stateCols[(c+r)%4]
			// t1 = (src >> 8r) & 0xff
			if r == 0 {
				b.I(isa.Andi(isa.T1, src, 0xff))
			} else {
				b.I(isa.Srli(isa.T1, src, int32(8*r)))
				if r < 3 {
					b.I(isa.Andi(isa.T1, isa.T1, 0xff))
				}
			}
			// t1 = sbox[t1]
			b.I(isa.Add(isa.T2, regSbox, isa.T1))
			b.I(isa.Lbu(isa.T1, isa.T2, 0))
			if r > 0 {
				b.I(isa.Slli(isa.T1, isa.T1, int32(8*r)))
			}
			if first {
				b.I(isa.Mv(dst, isa.T1))
				first = false
			} else {
				b.I(isa.Or(dst, dst, isa.T1))
			}
		}
	}
}

// mixColumns applies the MixColumns matrix to each shifted column using
// the word-sliced formulation
//
//	out = xtime(w) ⊕ ror8(w ⊕ xtime(w)) ⊕ ror16(w) ⊕ ror24(w)
//
// where xtime doubles each byte in GF(2⁸) and rorN rotates the word right
// by N bits (moving row r+1 into row r).
func mixColumns(b *asm.Builder) {
	// Constants for the byte-sliced xtime.
	b.I(isa.Li(isa.T3, -0x01010102)...) // 0xfefefefe
	b.I(isa.Li(isa.T4, 0x01010101)...)
	b.I(isa.Li(isa.T5, 0x1b)...)
	for c := 0; c < 4; c++ {
		w := shiftedCols[c]
		// t1 = xtime(w) = ((w << 1) & 0xfefefefe) ^ (((w >> 7) & 0x01010101) * 0x1b)
		b.I(isa.Slli(isa.T1, w, 1))
		b.I(isa.And(isa.T1, isa.T1, isa.T3))
		b.I(isa.Srli(isa.T2, w, 7))
		b.I(isa.And(isa.T2, isa.T2, isa.T4))
		b.I(isa.Mul(isa.T2, isa.T2, isa.T5))
		b.I(isa.Xor(isa.T1, isa.T1, isa.T2))
		// t2 = ror8(w ^ t1)
		b.I(isa.Xor(isa.T2, w, isa.T1))
		ror(b, isa.T2, isa.T2, 8)
		b.I(isa.Xor(isa.T1, isa.T1, isa.T2))
		// ^ ror16(w)
		ror(b, isa.T2, w, 16)
		b.I(isa.Xor(isa.T1, isa.T1, isa.T2))
		// ^ ror24(w)
		ror(b, isa.T2, w, 24)
		b.I(isa.Xor(stateCols[c], isa.T1, isa.T2))
	}
}

// ror emits dst = src rotated right by n bits (n in 1..31), clobbering T6.
func ror(b *asm.Builder, dst, src isa.Reg, n int32) {
	b.I(isa.Srli(isa.T6, src, n))
	b.I(isa.Slli(dst, src, 32-n))
	b.I(isa.Or(dst, dst, isa.T6))
}

// SBox returns the AES forward S-box substitution of b, for building
// leakage hypotheses (e.g. CPA on the first-round S-box output).
//
//emsim:ct
//emsim:secret b
//emsim:ignore secretflow the S-box table lookup is the modeled leak; hypothesis building replays it deliberately
func SBox(b byte) byte { return sbox[b] }
