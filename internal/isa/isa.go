// Package isa defines the RV32IM instruction set used throughout EMSim: the
// instruction mnemonics, binary encodings, register names, and the
// instruction-cluster taxonomy from Table I of the paper.
//
// The package is deliberately self-contained: it knows nothing about the
// pipeline or the EM model. Encoding follows the RISC-V unprivileged spec
// v2.2 for the base RV32I set plus the "M" multiply/divide extension, which
// is exactly the ISA the paper's FPGA processor implements.
package isa

import "fmt"

// Reg identifies one of the 32 integer registers x0..x31.
type Reg uint8

// Symbolic names for the registers in the standard RISC-V ABI.
const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29
	X30
	X31

	Zero = X0 // hard-wired zero
	RA   = X1 // return address
	SP   = X2 // stack pointer
	GP   = X3 // global pointer
	TP   = X4 // thread pointer
	T0   = X5 // temporaries
	T1   = X6
	T2   = X7
	S0   = X8 // saved registers / frame pointer
	S1   = X9
	A0   = X10 // argument / return registers
	A1   = X11
	A2   = X12
	A3   = X13
	A4   = X14
	A5   = X15
	A6   = X16
	A7   = X17
	S2   = X18
	S3   = X19
	S4   = X20
	S5   = X21
	S6   = X22
	S7   = X23
	S8   = X24
	S9   = X25
	S10  = X26
	S11  = X27
	T3   = X28
	T4   = X29
	T5   = X30
	T6   = X31
)

// NumRegs is the size of the integer register file.
const NumRegs = 32

var abiNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// String returns the ABI name of the register ("zero", "ra", "a0", ...).
func (r Reg) String() string {
	if int(r) < len(abiNames) {
		return abiNames[r]
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// Valid reports whether r names an architectural register.
//
//emsim:noalloc
func (r Reg) Valid() bool { return r < NumRegs }

// Op enumerates every RV32IM mnemonic the simulator understands.
type Op uint8

// The instruction mnemonics of RV32IM. The order groups instructions by
// encoding format; Format returns the format of each.
const (
	// OpInvalid is the zero Op; it never decodes from a valid word.
	OpInvalid Op = iota

	// RV32I register-register (R-type).
	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND

	// M extension (R-type).
	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU

	// Register-immediate (I-type).
	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI

	// Loads (I-type).
	LB
	LH
	LW
	LBU
	LHU

	// Stores (S-type).
	SB
	SH
	SW

	// Branches (B-type).
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	// Upper-immediate (U-type).
	LUI
	AUIPC

	// Jumps.
	JAL  // J-type
	JALR // I-type

	// System (I-type, imm selects the call).
	ECALL
	EBREAK

	// FENCE is accepted and executed as a no-op, as on the paper's
	// single-hart in-order core.
	FENCE

	numOps
)

// NumOps is the number of valid mnemonics (excluding OpInvalid).
const NumOps = int(numOps) - 1

var opNames = [numOps]string{
	OpInvalid: "invalid",
	ADD:       "add", SUB: "sub", SLL: "sll", SLT: "slt", SLTU: "sltu",
	XOR: "xor", SRL: "srl", SRA: "sra", OR: "or", AND: "and",
	MUL: "mul", MULH: "mulh", MULHSU: "mulhsu", MULHU: "mulhu",
	DIV: "div", DIVU: "divu", REM: "rem", REMU: "remu",
	ADDI: "addi", SLTI: "slti", SLTIU: "sltiu", XORI: "xori",
	ORI: "ori", ANDI: "andi", SLLI: "slli", SRLI: "srli", SRAI: "srai",
	LB: "lb", LH: "lh", LW: "lw", LBU: "lbu", LHU: "lhu",
	SB: "sb", SH: "sh", SW: "sw",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	LUI: "lui", AUIPC: "auipc",
	JAL: "jal", JALR: "jalr",
	ECALL: "ecall", EBREAK: "ebreak", FENCE: "fence",
}

// String returns the lower-case assembler mnemonic.
func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined mnemonic.
//
//emsim:noalloc
func (o Op) Valid() bool { return o > OpInvalid && o < numOps }

// Format identifies the RISC-V encoding format of an instruction.
type Format uint8

// The six base encoding formats.
const (
	FormatR Format = iota // register-register
	FormatI               // register-immediate, loads, JALR, system
	FormatS               // stores
	FormatB               // conditional branches
	FormatU               // LUI / AUIPC
	FormatJ               // JAL
)

func (f Format) String() string {
	switch f {
	case FormatR:
		return "R"
	case FormatI:
		return "I"
	case FormatS:
		return "S"
	case FormatB:
		return "B"
	case FormatU:
		return "U"
	case FormatJ:
		return "J"
	}
	return "?"
}

// Format returns the encoding format of the mnemonic.
//
//emsim:noalloc
func (o Op) Format() Format {
	switch o {
	case ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
		MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU:
		return FormatR
	case SB, SH, SW:
		return FormatS
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return FormatB
	case LUI, AUIPC:
		return FormatU
	case JAL:
		return FormatJ
	default:
		return FormatI
	}
}

// IsLoad reports whether o reads data memory.
//
//emsim:noalloc
func (o Op) IsLoad() bool {
	switch o {
	case LB, LH, LW, LBU, LHU:
		return true
	}
	return false
}

// IsStore reports whether o writes data memory.
//
//emsim:noalloc
func (o Op) IsStore() bool {
	switch o {
	case SB, SH, SW:
		return true
	}
	return false
}

// IsBranch reports whether o is a conditional branch.
//
//emsim:noalloc
func (o Op) IsBranch() bool {
	switch o {
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return true
	}
	return false
}

// IsJump reports whether o is an unconditional control transfer.
//
//emsim:noalloc
func (o Op) IsJump() bool { return o == JAL || o == JALR }

// IsMulDiv reports whether o uses the multi-cycle multiply/divide unit.
//
//emsim:noalloc
func (o Op) IsMulDiv() bool {
	switch o {
	case MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU:
		return true
	}
	return false
}

// IsSystem reports whether o is ECALL or EBREAK, which halt the simulated
// core (the paper models bare-metal execution only).
//
//emsim:noalloc
func (o Op) IsSystem() bool { return o == ECALL || o == EBREAK }

// WritesRd reports whether the instruction architecturally writes a
// destination register. Writes to x0 are still "writes" at this level; the
// register file discards them.
//
//emsim:noalloc
func (o Op) WritesRd() bool {
	switch o.Format() {
	case FormatS, FormatB:
		return false
	}
	return !o.IsSystem() && o != FENCE
}

// ReadsRs1 reports whether the instruction reads its rs1 field.
//
//emsim:noalloc
func (o Op) ReadsRs1() bool {
	switch o.Format() {
	case FormatU, FormatJ:
		return false
	}
	return !o.IsSystem() && o != FENCE
}

// ReadsRs2 reports whether the instruction reads its rs2 field.
//
//emsim:noalloc
func (o Op) ReadsRs2() bool {
	switch o.Format() {
	case FormatR, FormatS, FormatB:
		return true
	}
	return false
}

// Inst is a decoded instruction. The zero value is an invalid instruction.
//
// Imm holds the sign-extended immediate for I/S/B/U/J formats (for U format
// it is the *un-shifted* 20-bit value placed in bits 31:12 at encode time;
// Value semantics are handled by the pipeline).
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int32
}

// NOP is the canonical no-operation: addi x0, x0, 0. The paper uses NOP as
// the minimum-activity baseline instruction.
var NOP = Inst{Op: ADDI, Rd: X0, Rs1: X0, Imm: 0}

// IsNOP reports whether the instruction is the canonical NOP encoding.
//
//emsim:noalloc
func (i Inst) IsNOP() bool {
	return i.Op == ADDI && i.Rd == X0 && i.Rs1 == X0 && i.Imm == 0
}

// String renders the instruction in assembler syntax.
func (i Inst) String() string {
	switch i.Op.Format() {
	case FormatR:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	case FormatI:
		switch {
		case i.Op.IsLoad():
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
		case i.Op == JALR:
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
		case i.Op.IsSystem() || i.Op == FENCE:
			return i.Op.String()
		default:
			return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
		}
	case FormatS:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case FormatB:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case FormatU:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case FormatJ:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	}
	return "invalid"
}
