package isa

// Constructor helpers for building instruction sequences programmatically.
// These read like assembly in Go source:
//
//	prog := []isa.Inst{
//		isa.Addi(isa.T0, isa.Zero, 5),
//		isa.Add(isa.T1, isa.T0, isa.T0),
//		isa.Ebreak(),
//	}
//
// The experiment harness and the AES program generator rely on them heavily.

// Add returns add rd, rs1, rs2.
func Add(rd, rs1, rs2 Reg) Inst { return Inst{Op: ADD, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Sub returns sub rd, rs1, rs2.
func Sub(rd, rs1, rs2 Reg) Inst { return Inst{Op: SUB, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Sll returns sll rd, rs1, rs2.
func Sll(rd, rs1, rs2 Reg) Inst { return Inst{Op: SLL, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Slt returns slt rd, rs1, rs2.
func Slt(rd, rs1, rs2 Reg) Inst { return Inst{Op: SLT, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Sltu returns sltu rd, rs1, rs2.
func Sltu(rd, rs1, rs2 Reg) Inst { return Inst{Op: SLTU, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Xor returns xor rd, rs1, rs2.
func Xor(rd, rs1, rs2 Reg) Inst { return Inst{Op: XOR, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Srl returns srl rd, rs1, rs2.
func Srl(rd, rs1, rs2 Reg) Inst { return Inst{Op: SRL, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Sra returns sra rd, rs1, rs2.
func Sra(rd, rs1, rs2 Reg) Inst { return Inst{Op: SRA, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Or returns or rd, rs1, rs2.
func Or(rd, rs1, rs2 Reg) Inst { return Inst{Op: OR, Rd: rd, Rs1: rs1, Rs2: rs2} }

// And returns and rd, rs1, rs2.
func And(rd, rs1, rs2 Reg) Inst { return Inst{Op: AND, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Mul returns mul rd, rs1, rs2.
func Mul(rd, rs1, rs2 Reg) Inst { return Inst{Op: MUL, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Mulh returns mulh rd, rs1, rs2.
func Mulh(rd, rs1, rs2 Reg) Inst { return Inst{Op: MULH, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Mulhsu returns mulhsu rd, rs1, rs2.
func Mulhsu(rd, rs1, rs2 Reg) Inst { return Inst{Op: MULHSU, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Mulhu returns mulhu rd, rs1, rs2.
func Mulhu(rd, rs1, rs2 Reg) Inst { return Inst{Op: MULHU, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Div returns div rd, rs1, rs2.
func Div(rd, rs1, rs2 Reg) Inst { return Inst{Op: DIV, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Divu returns divu rd, rs1, rs2.
func Divu(rd, rs1, rs2 Reg) Inst { return Inst{Op: DIVU, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Rem returns rem rd, rs1, rs2.
func Rem(rd, rs1, rs2 Reg) Inst { return Inst{Op: REM, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Remu returns remu rd, rs1, rs2.
func Remu(rd, rs1, rs2 Reg) Inst { return Inst{Op: REMU, Rd: rd, Rs1: rs1, Rs2: rs2} }

// Addi returns addi rd, rs1, imm.
func Addi(rd, rs1 Reg, imm int32) Inst { return Inst{Op: ADDI, Rd: rd, Rs1: rs1, Imm: imm} }

// Slti returns slti rd, rs1, imm.
func Slti(rd, rs1 Reg, imm int32) Inst { return Inst{Op: SLTI, Rd: rd, Rs1: rs1, Imm: imm} }

// Sltiu returns sltiu rd, rs1, imm.
func Sltiu(rd, rs1 Reg, imm int32) Inst { return Inst{Op: SLTIU, Rd: rd, Rs1: rs1, Imm: imm} }

// Xori returns xori rd, rs1, imm.
func Xori(rd, rs1 Reg, imm int32) Inst { return Inst{Op: XORI, Rd: rd, Rs1: rs1, Imm: imm} }

// Ori returns ori rd, rs1, imm.
func Ori(rd, rs1 Reg, imm int32) Inst { return Inst{Op: ORI, Rd: rd, Rs1: rs1, Imm: imm} }

// Andi returns andi rd, rs1, imm.
func Andi(rd, rs1 Reg, imm int32) Inst { return Inst{Op: ANDI, Rd: rd, Rs1: rs1, Imm: imm} }

// Slli returns slli rd, rs1, shamt.
func Slli(rd, rs1 Reg, shamt int32) Inst { return Inst{Op: SLLI, Rd: rd, Rs1: rs1, Imm: shamt} }

// Srli returns srli rd, rs1, shamt.
func Srli(rd, rs1 Reg, shamt int32) Inst { return Inst{Op: SRLI, Rd: rd, Rs1: rs1, Imm: shamt} }

// Srai returns srai rd, rs1, shamt.
func Srai(rd, rs1 Reg, shamt int32) Inst { return Inst{Op: SRAI, Rd: rd, Rs1: rs1, Imm: shamt} }

// Lb returns lb rd, off(rs1).
func Lb(rd, rs1 Reg, off int32) Inst { return Inst{Op: LB, Rd: rd, Rs1: rs1, Imm: off} }

// Lh returns lh rd, off(rs1).
func Lh(rd, rs1 Reg, off int32) Inst { return Inst{Op: LH, Rd: rd, Rs1: rs1, Imm: off} }

// Lw returns lw rd, off(rs1).
func Lw(rd, rs1 Reg, off int32) Inst { return Inst{Op: LW, Rd: rd, Rs1: rs1, Imm: off} }

// Lbu returns lbu rd, off(rs1).
func Lbu(rd, rs1 Reg, off int32) Inst { return Inst{Op: LBU, Rd: rd, Rs1: rs1, Imm: off} }

// Lhu returns lhu rd, off(rs1).
func Lhu(rd, rs1 Reg, off int32) Inst { return Inst{Op: LHU, Rd: rd, Rs1: rs1, Imm: off} }

// Sb returns sb rs2, off(rs1).
func Sb(rs2, rs1 Reg, off int32) Inst { return Inst{Op: SB, Rs1: rs1, Rs2: rs2, Imm: off} }

// Sh returns sh rs2, off(rs1).
func Sh(rs2, rs1 Reg, off int32) Inst { return Inst{Op: SH, Rs1: rs1, Rs2: rs2, Imm: off} }

// Sw returns sw rs2, off(rs1).
func Sw(rs2, rs1 Reg, off int32) Inst { return Inst{Op: SW, Rs1: rs1, Rs2: rs2, Imm: off} }

// Beq returns beq rs1, rs2, off.
func Beq(rs1, rs2 Reg, off int32) Inst { return Inst{Op: BEQ, Rs1: rs1, Rs2: rs2, Imm: off} }

// Bne returns bne rs1, rs2, off.
func Bne(rs1, rs2 Reg, off int32) Inst { return Inst{Op: BNE, Rs1: rs1, Rs2: rs2, Imm: off} }

// Blt returns blt rs1, rs2, off.
func Blt(rs1, rs2 Reg, off int32) Inst { return Inst{Op: BLT, Rs1: rs1, Rs2: rs2, Imm: off} }

// Bge returns bge rs1, rs2, off.
func Bge(rs1, rs2 Reg, off int32) Inst { return Inst{Op: BGE, Rs1: rs1, Rs2: rs2, Imm: off} }

// Bltu returns bltu rs1, rs2, off.
func Bltu(rs1, rs2 Reg, off int32) Inst { return Inst{Op: BLTU, Rs1: rs1, Rs2: rs2, Imm: off} }

// Bgeu returns bgeu rs1, rs2, off.
func Bgeu(rs1, rs2 Reg, off int32) Inst { return Inst{Op: BGEU, Rs1: rs1, Rs2: rs2, Imm: off} }

// Lui returns lui rd, imm20 (imm is the raw 20-bit field).
func Lui(rd Reg, imm20 int32) Inst { return Inst{Op: LUI, Rd: rd, Imm: imm20} }

// Auipc returns auipc rd, imm20.
func Auipc(rd Reg, imm20 int32) Inst { return Inst{Op: AUIPC, Rd: rd, Imm: imm20} }

// Jal returns jal rd, off.
func Jal(rd Reg, off int32) Inst { return Inst{Op: JAL, Rd: rd, Imm: off} }

// Jalr returns jalr rd, off(rs1).
func Jalr(rd, rs1 Reg, off int32) Inst { return Inst{Op: JALR, Rd: rd, Rs1: rs1, Imm: off} }

// Ecall returns the environment-call instruction (halts the simulated core).
func Ecall() Inst { return Inst{Op: ECALL} }

// Ebreak returns the breakpoint instruction (halts the simulated core).
func Ebreak() Inst { return Inst{Op: EBREAK} }

// Nop returns the canonical no-op, addi x0, x0, 0.
func Nop() Inst { return NOP }

// Li expands "load immediate" into LUI+ADDI (or a single ADDI when the value
// fits in 12 signed bits), the standard RISC-V materialization sequence.
func Li(rd Reg, v int32) []Inst {
	if v >= -2048 && v <= 2047 {
		return []Inst{Addi(rd, Zero, v)}
	}
	upper := (v + 0x800) >> 12 // round so the signed low part recombines
	lower := v - upper<<12
	return []Inst{Lui(rd, upper&0xFFFFF), Addi(rd, rd, lower)}
}

// Mv returns the canonical register move, addi rd, rs, 0.
func Mv(rd, rs Reg) Inst { return Addi(rd, rs, 0) }
