package isa

import "testing"

// Sinks keep the compiler from discarding the pinned calls.
var (
	allocSinkBool bool
	allocSinkInt  int
)

// TestAnnotatedFuncsDoNotAllocate is the runtime counterpart of
// emsim-vet's noalloc analyzer for this package: every //emsim:noalloc
// function (the Op/Reg/Inst predicates, TryDecode with its signExtend
// helper, and the cluster mappers) is exercised under AllocsPerRun and
// pinned at zero heap allocations.
func TestAnnotatedFuncsDoNotAllocate(t *testing.T) {
	words := []uint32{
		0x00000000, // invalid (drain word)
		0x00108093, // ADDI
		0x0000A083, // LW
		0x0020A023, // SW
		0x00208063, // BEQ
		0x0000006F, // JAL
		0x02000033, // MUL
		0x00000073, // ECALL
		0x00000013, // canonical NOP
	}
	allocs := testing.AllocsPerRun(100, func() {
		n := 0
		for _, w := range words {
			in, ok := TryDecode(w)
			if !ok {
				continue
			}
			o := in.Op
			allocSinkBool = o.Valid() && in.Rd.Valid() && in.Rs1.Valid() && in.Rs2.Valid()
			allocSinkBool = o.IsLoad() || o.IsStore() || o.IsBranch() || o.IsJump() ||
				o.IsMulDiv() || o.IsSystem() || in.IsNOP()
			allocSinkBool = o.WritesRd() || o.ReadsRs1() || o.ReadsRs2()
			n += int(o.Format()) + int(StaticCluster(o)) + int(DynamicCluster(o, false))
		}
		allocSinkInt = n
	})
	if allocs > 0 {
		t.Errorf("annotated isa functions allocate %.1f times per run, want 0", allocs)
	}
}
