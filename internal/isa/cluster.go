package isa

import "fmt"

// Cluster identifies one of the seven instruction clusters of Table I.
// The paper groups RV32IM instructions by the similarity of their EM
// signatures (hierarchical agglomerative clustering with cross-correlation
// distance) and finds seven clusters; a single representative per cluster is
// enough to train the model, shrinking the measurement campaign from ~3·10⁸
// to 16 k sequences.
//
// Loads appear in two clusters: ClusterLoad is a load whose data comes from
// memory (cache miss, "LDM" in Table II), ClusterCache a load served by the
// cache ("LDC"). Which applies is a runtime property; DynamicCluster resolves
// it per access.
type Cluster uint8

const (
	ClusterALU    Cluster = iota // integer ALU, LUI/AUIPC, JAL/JALR (13 inst)
	ClusterShift                 // shifts, immediate and register (10... per paper grouping)
	ClusterMulDiv                // M-extension multi-cycle ops (8 inst)
	ClusterLoad                  // loads that go to memory (5 inst)
	ClusterStore                 // stores (3 inst)
	ClusterCache                 // loads served by the cache (5 inst)
	ClusterBranch                // conditional branches (6 inst)

	NumClusters = 7
)

var clusterNames = [NumClusters]string{
	"ALU", "Shift", "MUL/DIV", "Load", "Store", "Cache", "Branch",
}

// String returns the Table I name of the cluster.
func (c Cluster) String() string {
	if int(c) < len(clusterNames) {
		return clusterNames[c]
	}
	return fmt.Sprintf("cluster(%d)", uint8(c))
}

// Valid reports whether c is one of the seven defined clusters.
func (c Cluster) Valid() bool { return c < NumClusters }

// StaticCluster maps a mnemonic to its Table I cluster assuming cache hits
// for loads (the common case). Use DynamicCluster when the hit/miss outcome
// is known.
//
//emsim:noalloc
func StaticCluster(o Op) Cluster {
	switch {
	case o.IsMulDiv():
		return ClusterMulDiv
	case o.IsLoad():
		return ClusterCache
	case o.IsStore():
		return ClusterStore
	case o.IsBranch():
		return ClusterBranch
	}
	switch o {
	case SLL, SRL, SRA, SLLI, SRLI, SRAI:
		return ClusterShift
	}
	// Everything else — ALU ops, LUI/AUIPC, jumps, system, FENCE — shares
	// the ALU datapath footprint (Table I folds JAL into the ALU cluster).
	return ClusterALU
}

// DynamicCluster maps a mnemonic plus the observed cache outcome to the
// runtime cluster: loads that miss move from ClusterCache to ClusterLoad.
//
//emsim:noalloc
func DynamicCluster(o Op, cacheHit bool) Cluster {
	if o.IsLoad() && !cacheHit {
		return ClusterLoad
	}
	return StaticCluster(o)
}

// Representatives returns one canonical instruction mnemonic per cluster,
// mirroring the representative-instruction methodology of §V-A.
func Representatives() [NumClusters]Op {
	return [NumClusters]Op{
		ClusterALU:    ADD,
		ClusterShift:  SLLI,
		ClusterMulDiv: MUL,
		ClusterLoad:   LW, // with a miss-forcing access pattern
		ClusterStore:  SW,
		ClusterCache:  LW,
		ClusterBranch: BEQ,
	}
}

// ClusterMembers returns the mnemonics Table I assigns to the cluster.
func ClusterMembers(c Cluster) []Op {
	switch c {
	case ClusterALU:
		return []Op{ADD, SUB, SLT, SLTU, XOR, OR, AND, ADDI, SLTI, SLTIU,
			XORI, ORI, ANDI, LUI, AUIPC, JAL, JALR}
	case ClusterShift:
		return []Op{SLL, SRL, SRA, SLLI, SRLI, SRAI}
	case ClusterMulDiv:
		return []Op{MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU}
	case ClusterLoad, ClusterCache:
		return []Op{LB, LH, LW, LBU, LHU}
	case ClusterStore:
		return []Op{SB, SH, SW}
	case ClusterBranch:
		return []Op{BEQ, BNE, BLT, BGE, BLTU, BGEU}
	}
	return nil
}

// AllOps returns every valid mnemonic, in declaration order.
func AllOps() []Op {
	ops := make([]Op, 0, NumOps)
	for o := OpInvalid + 1; o < numOps; o++ {
		ops = append(ops, o)
	}
	return ops
}
