package isa

import "fmt"

// RISC-V major opcodes (bits 6:0).
const (
	opcLUI    = 0b0110111
	opcAUIPC  = 0b0010111
	opcJAL    = 0b1101111
	opcJALR   = 0b1100111
	opcBranch = 0b1100011
	opcLoad   = 0b0000011
	opcStore  = 0b0100011
	opcOpImm  = 0b0010011
	opcOp     = 0b0110011
	opcMisc   = 0b0001111
	opcSystem = 0b1110011
)

// enc carries the fixed fields of one mnemonic's encoding.
type enc struct {
	opcode uint32
	funct3 uint32
	funct7 uint32 // R-type and shift-immediate only
}

var encTable = map[Op]enc{
	ADD:    {opcOp, 0b000, 0b0000000},
	SUB:    {opcOp, 0b000, 0b0100000},
	SLL:    {opcOp, 0b001, 0b0000000},
	SLT:    {opcOp, 0b010, 0b0000000},
	SLTU:   {opcOp, 0b011, 0b0000000},
	XOR:    {opcOp, 0b100, 0b0000000},
	SRL:    {opcOp, 0b101, 0b0000000},
	SRA:    {opcOp, 0b101, 0b0100000},
	OR:     {opcOp, 0b110, 0b0000000},
	AND:    {opcOp, 0b111, 0b0000000},
	MUL:    {opcOp, 0b000, 0b0000001},
	MULH:   {opcOp, 0b001, 0b0000001},
	MULHSU: {opcOp, 0b010, 0b0000001},
	MULHU:  {opcOp, 0b011, 0b0000001},
	DIV:    {opcOp, 0b100, 0b0000001},
	DIVU:   {opcOp, 0b101, 0b0000001},
	REM:    {opcOp, 0b110, 0b0000001},
	REMU:   {opcOp, 0b111, 0b0000001},

	ADDI:  {opcOpImm, 0b000, 0},
	SLTI:  {opcOpImm, 0b010, 0},
	SLTIU: {opcOpImm, 0b011, 0},
	XORI:  {opcOpImm, 0b100, 0},
	ORI:   {opcOpImm, 0b110, 0},
	ANDI:  {opcOpImm, 0b111, 0},
	SLLI:  {opcOpImm, 0b001, 0b0000000},
	SRLI:  {opcOpImm, 0b101, 0b0000000},
	SRAI:  {opcOpImm, 0b101, 0b0100000},

	LB:  {opcLoad, 0b000, 0},
	LH:  {opcLoad, 0b001, 0},
	LW:  {opcLoad, 0b010, 0},
	LBU: {opcLoad, 0b100, 0},
	LHU: {opcLoad, 0b101, 0},

	SB: {opcStore, 0b000, 0},
	SH: {opcStore, 0b001, 0},
	SW: {opcStore, 0b010, 0},

	BEQ:  {opcBranch, 0b000, 0},
	BNE:  {opcBranch, 0b001, 0},
	BLT:  {opcBranch, 0b100, 0},
	BGE:  {opcBranch, 0b101, 0},
	BLTU: {opcBranch, 0b110, 0},
	BGEU: {opcBranch, 0b111, 0},

	LUI:   {opcLUI, 0, 0},
	AUIPC: {opcAUIPC, 0, 0},
	JAL:   {opcJAL, 0, 0},
	JALR:  {opcJALR, 0b000, 0},

	ECALL:  {opcSystem, 0b000, 0},
	EBREAK: {opcSystem, 0b000, 0},
	FENCE:  {opcMisc, 0b000, 0},
}

// immRange describes the encodable immediate interval for a format.
func immRange(f Format) (min, max int32) {
	switch f {
	case FormatI:
		return -2048, 2047
	case FormatS:
		return -2048, 2047
	case FormatB:
		return -4096, 4094 // even offsets only
	case FormatU:
		return 0, 0xFFFFF // 20-bit unsigned field
	case FormatJ:
		return -(1 << 20), (1 << 20) - 2 // even offsets only
	}
	return 0, 0
}

// Encode produces the 32-bit machine word for the instruction. It validates
// field ranges and returns a descriptive error for immediates that do not
// fit or offsets with illegal alignment.
func Encode(i Inst) (uint32, error) {
	e, ok := encTable[i.Op]
	if !ok {
		return 0, fmt.Errorf("isa: cannot encode %v", i.Op)
	}
	if !i.Rd.Valid() || !i.Rs1.Valid() || !i.Rs2.Valid() {
		return 0, fmt.Errorf("isa: register out of range in %v", i)
	}
	f := i.Op.Format()
	if f != FormatR && i.Op != SLLI && i.Op != SRLI && i.Op != SRAI {
		if min, max := immRange(f); i.Imm < min || i.Imm > max {
			return 0, fmt.Errorf("isa: immediate %d out of range [%d,%d] for %v", i.Imm, min, max, i.Op)
		}
	}
	rd := uint32(i.Rd) << 7
	rs1 := uint32(i.Rs1) << 15
	rs2 := uint32(i.Rs2) << 20
	imm := uint32(i.Imm)

	switch f {
	case FormatR:
		return e.opcode | rd | e.funct3<<12 | rs1 | rs2 | e.funct7<<25, nil
	case FormatI:
		switch i.Op {
		case SLLI, SRLI, SRAI:
			if i.Imm < 0 || i.Imm > 31 {
				return 0, fmt.Errorf("isa: shift amount %d out of range for %v", i.Imm, i.Op)
			}
			return e.opcode | rd | e.funct3<<12 | rs1 | (imm&0x1F)<<20 | e.funct7<<25, nil
		case ECALL:
			return e.opcode, nil
		case EBREAK:
			return e.opcode | 1<<20, nil
		case FENCE:
			return e.opcode, nil
		}
		return e.opcode | rd | e.funct3<<12 | rs1 | (imm&0xFFF)<<20, nil
	case FormatS:
		lo := (imm & 0x1F) << 7
		hi := ((imm >> 5) & 0x7F) << 25
		return e.opcode | lo | e.funct3<<12 | rs1 | rs2 | hi, nil
	case FormatB:
		if i.Imm&1 != 0 {
			return 0, fmt.Errorf("isa: branch offset %d is odd", i.Imm)
		}
		b11 := ((imm >> 11) & 1) << 7
		b41 := ((imm >> 1) & 0xF) << 8
		b105 := ((imm >> 5) & 0x3F) << 25
		b12 := ((imm >> 12) & 1) << 31
		return e.opcode | b11 | b41 | e.funct3<<12 | rs1 | rs2 | b105 | b12, nil
	case FormatU:
		return e.opcode | rd | (imm&0xFFFFF)<<12, nil
	case FormatJ:
		if i.Imm&1 != 0 {
			return 0, fmt.Errorf("isa: jump offset %d is odd", i.Imm)
		}
		b1912 := ((imm >> 12) & 0xFF) << 12
		b11 := ((imm >> 11) & 1) << 20
		b101 := ((imm >> 1) & 0x3FF) << 21
		b20 := ((imm >> 20) & 1) << 31
		return e.opcode | rd | b1912 | b11 | b101 | b20, nil
	}
	return 0, fmt.Errorf("isa: unknown format for %v", i.Op)
}

// MustEncode is Encode for statically known-good instructions; it panics on
// error and exists for tests and table construction.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// rTypeOps lists the OP-major-opcode mnemonics TryDecode matches by
// funct3/funct7 (hoisted to package level: a slice literal in the
// decoder would be rebuilt on every fetched word).
var rTypeOps = [...]Op{ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
	MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU}

//emsim:noalloc
func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

// Decode parses a 32-bit machine word into an Inst. Words that do not
// correspond to an RV32IM instruction return a descriptive error; callers
// on allocation-sensitive paths that only need validity should use
// TryDecode instead.
func Decode(word uint32) (Inst, error) {
	in, ok := TryDecode(word)
	if !ok {
		return Inst{}, decodeError(word)
	}
	return in, nil
}

// decodeError reconstructs the reason a word failed TryDecode. Split from
// the decoder so the hot fetch path never pays for error formatting.
func decodeError(word uint32) error {
	opcode := word & 0x7F
	funct3 := (word >> 12) & 0x7
	funct7 := (word >> 25) & 0x7F
	switch opcode {
	case opcJALR:
		return fmt.Errorf("isa: bad JALR funct3 %#b in %#08x", funct3, word)
	case opcBranch:
		return fmt.Errorf("isa: bad branch funct3 %#b in %#08x", funct3, word)
	case opcLoad:
		return fmt.Errorf("isa: bad load funct3 %#b in %#08x", funct3, word)
	case opcStore:
		return fmt.Errorf("isa: bad store funct3 %#b in %#08x", funct3, word)
	case opcOpImm:
		if funct3 == 0b001 {
			return fmt.Errorf("isa: bad SLLI funct7 %#b in %#08x", funct7, word)
		}
		return fmt.Errorf("isa: bad shift funct7 %#b in %#08x", funct7, word)
	case opcOp:
		return fmt.Errorf("isa: bad OP funct3/funct7 %#b/%#b in %#08x", funct3, funct7, word)
	case opcSystem:
		return fmt.Errorf("isa: unsupported SYSTEM word %#08x", word)
	case opcMisc:
		return fmt.Errorf("isa: non-canonical FENCE word %#08x", word)
	}
	return fmt.Errorf("isa: unknown opcode %#07b in word %#08x", opcode, word)
}

// TryDecode parses a 32-bit machine word into an Inst, reporting ok=false
// for words that are not valid RV32IM encodings. Unlike Decode it never
// allocates, which matters to the pipeline's fetch path: a core draining
// after a halt keeps presenting unprogrammed (zero) words to the decoder
// every cycle.
//
//emsim:noalloc
func TryDecode(word uint32) (Inst, bool) {
	opcode := word & 0x7F
	rd := Reg((word >> 7) & 0x1F)
	funct3 := (word >> 12) & 0x7
	rs1 := Reg((word >> 15) & 0x1F)
	rs2 := Reg((word >> 20) & 0x1F)
	funct7 := (word >> 25) & 0x7F

	switch opcode {
	case opcLUI:
		return Inst{Op: LUI, Rd: rd, Imm: int32((word >> 12) & 0xFFFFF)}, true
	case opcAUIPC:
		return Inst{Op: AUIPC, Rd: rd, Imm: int32((word >> 12) & 0xFFFFF)}, true
	case opcJAL:
		imm := ((word>>31)&1)<<20 | ((word>>12)&0xFF)<<12 | ((word>>20)&1)<<11 | ((word>>21)&0x3FF)<<1
		return Inst{Op: JAL, Rd: rd, Imm: signExtend(imm, 21)}, true
	case opcJALR:
		if funct3 != 0 {
			return Inst{}, false
		}
		return Inst{Op: JALR, Rd: rd, Rs1: rs1, Imm: signExtend(word>>20, 12)}, true
	case opcBranch:
		var op Op
		switch funct3 {
		case 0b000:
			op = BEQ
		case 0b001:
			op = BNE
		case 0b100:
			op = BLT
		case 0b101:
			op = BGE
		case 0b110:
			op = BLTU
		case 0b111:
			op = BGEU
		default:
			return Inst{}, false
		}
		imm := ((word>>31)&1)<<12 | ((word>>7)&1)<<11 | ((word>>25)&0x3F)<<5 | ((word>>8)&0xF)<<1
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: signExtend(imm, 13)}, true
	case opcLoad:
		var op Op
		switch funct3 {
		case 0b000:
			op = LB
		case 0b001:
			op = LH
		case 0b010:
			op = LW
		case 0b100:
			op = LBU
		case 0b101:
			op = LHU
		default:
			return Inst{}, false
		}
		return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: signExtend(word>>20, 12)}, true
	case opcStore:
		var op Op
		switch funct3 {
		case 0b000:
			op = SB
		case 0b001:
			op = SH
		case 0b010:
			op = SW
		default:
			return Inst{}, false
		}
		imm := ((word>>25)&0x7F)<<5 | (word>>7)&0x1F
		return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: signExtend(imm, 12)}, true
	case opcOpImm:
		imm := signExtend(word>>20, 12)
		switch funct3 {
		case 0b000:
			return Inst{Op: ADDI, Rd: rd, Rs1: rs1, Imm: imm}, true
		case 0b010:
			return Inst{Op: SLTI, Rd: rd, Rs1: rs1, Imm: imm}, true
		case 0b011:
			return Inst{Op: SLTIU, Rd: rd, Rs1: rs1, Imm: imm}, true
		case 0b100:
			return Inst{Op: XORI, Rd: rd, Rs1: rs1, Imm: imm}, true
		case 0b110:
			return Inst{Op: ORI, Rd: rd, Rs1: rs1, Imm: imm}, true
		case 0b111:
			return Inst{Op: ANDI, Rd: rd, Rs1: rs1, Imm: imm}, true
		case 0b001:
			if funct7 != 0 {
				return Inst{}, false
			}
			return Inst{Op: SLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, true
		case 0b101:
			switch funct7 {
			case 0b0000000:
				return Inst{Op: SRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, true
			case 0b0100000:
				return Inst{Op: SRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, true
			}
			return Inst{}, false
		}
	case opcOp:
		for _, op := range rTypeOps {
			e := encTable[op]
			if e.funct3 == funct3 && e.funct7 == funct7 {
				return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, true
			}
		}
		return Inst{}, false
	case opcMisc:
		// Only the canonical FENCE word is accepted: the simulator treats
		// every fence as a full fence, never emits ordering-hint bits, and
		// does not implement FENCE.I (funct3 001). Strictness here keeps
		// Encode/TryDecode a bijection, which FuzzDecodeConsistency pins.
		if word == opcMisc {
			return Inst{Op: FENCE}, true
		}
		return Inst{}, false
	case opcSystem:
		// ECALL and EBREAK are exact 32-bit words; every other SYSTEM
		// encoding (the CSR space, WFI, ...) is unsupported and must be
		// rejected, not folded into ECALL.
		switch word {
		case opcSystem:
			return Inst{Op: ECALL}, true
		case 1<<20 | opcSystem:
			return Inst{Op: EBREAK}, true
		}
		return Inst{}, false
	}
	return Inst{}, false
}
