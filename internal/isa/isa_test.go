package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		X0: "zero", X1: "ra", X2: "sp", X5: "t0", X10: "a0", X31: "t6",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Reg(%d).String() = %q, want %q", r, got, want)
		}
	}
	if got := Reg(40).String(); got != "x40" {
		t.Errorf("out-of-range reg = %q, want x40", got)
	}
}

func TestOpPredicates(t *testing.T) {
	tests := []struct {
		op                                  Op
		load, store, branch, jump, mul, sys bool
		writesRd, readsRs1, readsRs2        bool
	}{
		{ADD, false, false, false, false, false, false, true, true, true},
		{ADDI, false, false, false, false, false, false, true, true, false},
		{LW, true, false, false, false, false, false, true, true, false},
		{SW, false, true, false, false, false, false, false, true, true},
		{BEQ, false, false, true, false, false, false, false, true, true},
		{JAL, false, false, false, true, false, false, true, false, false},
		{JALR, false, false, false, true, false, false, true, true, false},
		{MUL, false, false, false, false, true, false, true, true, true},
		{DIV, false, false, false, false, true, false, true, true, true},
		{LUI, false, false, false, false, false, false, true, false, false},
		{ECALL, false, false, false, false, false, true, false, false, false},
	}
	for _, tc := range tests {
		if tc.op.IsLoad() != tc.load {
			t.Errorf("%v.IsLoad() = %v", tc.op, tc.op.IsLoad())
		}
		if tc.op.IsStore() != tc.store {
			t.Errorf("%v.IsStore() = %v", tc.op, tc.op.IsStore())
		}
		if tc.op.IsBranch() != tc.branch {
			t.Errorf("%v.IsBranch() = %v", tc.op, tc.op.IsBranch())
		}
		if tc.op.IsJump() != tc.jump {
			t.Errorf("%v.IsJump() = %v", tc.op, tc.op.IsJump())
		}
		if tc.op.IsMulDiv() != tc.mul {
			t.Errorf("%v.IsMulDiv() = %v", tc.op, tc.op.IsMulDiv())
		}
		if tc.op.IsSystem() != tc.sys {
			t.Errorf("%v.IsSystem() = %v", tc.op, tc.op.IsSystem())
		}
		if tc.op.WritesRd() != tc.writesRd {
			t.Errorf("%v.WritesRd() = %v", tc.op, tc.op.WritesRd())
		}
		if tc.op.ReadsRs1() != tc.readsRs1 {
			t.Errorf("%v.ReadsRs1() = %v", tc.op, tc.op.ReadsRs1())
		}
		if tc.op.ReadsRs2() != tc.readsRs2 {
			t.Errorf("%v.ReadsRs2() = %v", tc.op, tc.op.ReadsRs2())
		}
	}
}

func TestEncodeKnownWords(t *testing.T) {
	// Golden encodings cross-checked against the RISC-V spec examples and
	// an independent assembler.
	cases := []struct {
		inst Inst
		want uint32
	}{
		{Nop(), 0x00000013},              // addi x0,x0,0
		{Add(X1, X2, X3), 0x003100B3},    // add ra,sp,gp
		{Sub(X5, X6, X7), 0x407302B3},    // sub t0,t1,t2
		{Addi(X10, X10, -1), 0xFFF50513}, // addi a0,a0,-1
		{Lw(X11, X2, 8), 0x00812583},     // lw a1,8(sp)
		{Sw(X11, X2, 12), 0x00B12623},    // sw a1,12(sp)
		{Beq(X1, X2, 16), 0x00208863},    // beq ra,sp,+16
		{Jal(X1, 2048), 0x001000EF},      // jal ra,+2048
		{Lui(X5, 0x12345), 0x123452B7},   // lui t0,0x12345
		{Mul(X4, X5, X6), 0x02628233},    // mul tp,t0,t1
		{Ecall(), 0x00000073},
		{Ebreak(), 0x00100073},
		{Srai(X3, X4, 7), 0x40725193}, // srai gp,tp,7
	}
	for _, tc := range cases {
		got, err := Encode(tc.inst)
		if err != nil {
			t.Fatalf("Encode(%v): %v", tc.inst, err)
		}
		if got != tc.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", tc.inst, got, tc.want)
		}
	}
}

func TestEncodeErrors(t *testing.T) {
	bad := []Inst{
		{Op: OpInvalid},
		Addi(X1, X1, 5000),     // imm out of I range
		Beq(X1, X2, 3),         // odd branch offset
		Jal(X1, 1),             // odd jump offset
		Slli(X1, X1, 40),       // shift amount > 31
		{Op: ADD, Rd: Reg(32)}, // bad register
		Jal(X1, 1<<21),         // jump offset out of range
		Sw(X1, X2, 5000),       // store offset out of range
	}
	for _, inst := range bad {
		if _, err := Encode(inst); err == nil {
			t.Errorf("Encode(%+v) unexpectedly succeeded", inst)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []uint32{
		0x00000000,           // all zeros: illegal
		0xFFFFFFFF,           // all ones: illegal
		0x0000207F,           // unknown opcode
		0x00002063 | 0x2<<12, // branch funct3=010
		0x00003003 | 0x3<<12, // load funct3=011
		0x00200073,           // SYSTEM imm=2
	}
	for _, w := range bad {
		if inst, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) = %v, want error", w, inst)
		}
	}
}

// canonicalize maps an Inst to the information content that survives an
// encode/decode round trip (unused fields are zeroed by the decoder).
func canonicalize(i Inst) Inst {
	out := Inst{Op: i.Op}
	if i.Op.WritesRd() {
		out.Rd = i.Rd
	}
	if i.Op.ReadsRs1() {
		out.Rs1 = i.Rs1
	}
	if i.Op.ReadsRs2() {
		out.Rs2 = i.Rs2
	}
	switch i.Op.Format() {
	case FormatR:
	case FormatB, FormatJ:
		out.Imm = i.Imm &^ 1
	default:
		if !i.Op.IsSystem() && i.Op != FENCE {
			out.Imm = i.Imm
		}
	}
	return out
}

// randInst produces a random valid instruction for property testing.
func randInst(r *rand.Rand) Inst {
	ops := AllOps()
	for {
		op := ops[r.Intn(len(ops))]
		inst := Inst{
			Op:  op,
			Rd:  Reg(r.Intn(NumRegs)),
			Rs1: Reg(r.Intn(NumRegs)),
			Rs2: Reg(r.Intn(NumRegs)),
		}
		switch op {
		case SLLI, SRLI, SRAI:
			inst.Imm = int32(r.Intn(32))
		default:
			min, max := immRange(op.Format())
			if max > min {
				inst.Imm = min + r.Int31n(max-min+1)
			}
			if op.Format() == FormatB || op.Format() == FormatJ {
				inst.Imm &^= 1
			}
		}
		return inst
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		inst := randInst(r)
		word, err := Encode(inst)
		if err != nil {
			t.Logf("Encode(%v): %v", inst, err)
			return false
		}
		back, err := Decode(word)
		if err != nil {
			t.Logf("Decode(Encode(%v)=%#08x): %v", inst, word, err)
			return false
		}
		want := canonicalize(inst)
		if back != want {
			t.Logf("round trip %v -> %#08x -> %v (want %v)", inst, word, back, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeEncodeFixpoint(t *testing.T) {
	// Any word that decodes must re-encode to a word that decodes to the
	// same instruction (encodings may differ in don't-care bits).
	r := rand.New(rand.NewSource(2))
	hits := 0
	for i := 0; i < 200000 && hits < 2000; i++ {
		w := r.Uint32()
		inst, err := Decode(w)
		if err != nil {
			continue
		}
		hits++
		w2, err := Encode(inst)
		if err != nil {
			t.Fatalf("Encode(Decode(%#08x)=%v): %v", w, inst, err)
		}
		inst2, err := Decode(w2)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", inst, err)
		}
		if inst != inst2 {
			t.Fatalf("fixpoint violated: %#08x -> %v -> %#08x -> %v", w, inst, w2, inst2)
		}
	}
	if hits == 0 {
		t.Fatal("no random words decoded; decoder may be over-strict")
	}
}

func TestLiMaterialization(t *testing.T) {
	// Li must produce a sequence that computes exactly v: emulate LUI+ADDI.
	eval := func(seq []Inst) int32 {
		var regs [NumRegs]int32
		for _, in := range seq {
			switch in.Op {
			case LUI:
				regs[in.Rd] = in.Imm << 12
			case ADDI:
				regs[in.Rd] = regs[in.Rs1] + in.Imm
			default:
				t.Fatalf("unexpected op %v in Li expansion", in.Op)
			}
		}
		return regs[T0]
	}
	values := []int32{0, 1, -1, 2047, 2048, -2048, -2049, 0x12345678,
		-0x12345678, 1 << 30, -(1 << 30), 0x7FFFFFFF, -0x80000000, 0xFFF, 0x800}
	for _, v := range values {
		seq := Li(T0, v)
		if got := eval(seq); got != v {
			t.Errorf("Li(%d) evaluates to %d", v, got)
		}
		for _, in := range seq {
			if _, err := Encode(in); err != nil {
				t.Errorf("Li(%d) produced unencodable %v: %v", v, in, err)
			}
		}
	}
}

func TestLiProperty(t *testing.T) {
	f := func(v int32) bool {
		seq := Li(T0, v)
		var acc int32
		for _, in := range seq {
			switch in.Op {
			case LUI:
				acc = in.Imm << 12
			case ADDI:
				acc += in.Imm
			}
			if _, err := Encode(in); err != nil {
				return false
			}
		}
		return acc == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClusters(t *testing.T) {
	if StaticCluster(ADD) != ClusterALU {
		t.Error("ADD should be ALU")
	}
	if StaticCluster(SLLI) != ClusterShift {
		t.Error("SLLI should be Shift")
	}
	if StaticCluster(MUL) != ClusterMulDiv {
		t.Error("MUL should be MUL/DIV")
	}
	if StaticCluster(LW) != ClusterCache {
		t.Error("LW (static) should be Cache")
	}
	if DynamicCluster(LW, false) != ClusterLoad {
		t.Error("missing LW should be Load")
	}
	if DynamicCluster(LW, true) != ClusterCache {
		t.Error("hitting LW should be Cache")
	}
	if DynamicCluster(ADD, false) != ClusterALU {
		t.Error("cache outcome must not affect non-loads")
	}
	if StaticCluster(SW) != ClusterStore {
		t.Error("SW should be Store")
	}
	if StaticCluster(BNE) != ClusterBranch {
		t.Error("BNE should be Branch")
	}
	if StaticCluster(JAL) != ClusterALU {
		t.Error("JAL folds into ALU per Table I")
	}
}

func TestClusterMembersCoverISA(t *testing.T) {
	seen := map[Op]bool{}
	for c := Cluster(0); c < NumClusters; c++ {
		for _, op := range ClusterMembers(c) {
			seen[op] = true
		}
	}
	for _, op := range AllOps() {
		if op.IsSystem() || op == FENCE {
			continue // system ops are outside Table I
		}
		if !seen[op] {
			t.Errorf("%v not assigned to any cluster", op)
		}
	}
}

func TestRepresentativesBelongToTheirCluster(t *testing.T) {
	reps := Representatives()
	for c, op := range reps {
		members := ClusterMembers(Cluster(c))
		found := false
		for _, m := range members {
			if m == op {
				found = true
			}
		}
		if !found {
			t.Errorf("representative %v not a member of %v", op, Cluster(c))
		}
	}
}

func TestInstString(t *testing.T) {
	cases := map[string]Inst{
		"add ra, sp, gp":  Add(X1, X2, X3),
		"addi a0, a0, -1": Addi(A0, A0, -1),
		"lw a1, 8(sp)":    Lw(A1, SP, 8),
		"sw a1, 12(sp)":   Sw(A1, SP, 12),
		"beq ra, sp, 16":  Beq(RA, SP, 16),
		"lui t0, 74565":   Lui(T0, 0x12345),
		"jal ra, 2048":    Jal(RA, 2048),
		"ecall":           Ecall(),
	}
	for want, inst := range cases {
		if got := inst.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", inst, got, want)
		}
	}
}

func TestNOPIdentity(t *testing.T) {
	if !NOP.IsNOP() {
		t.Error("NOP.IsNOP() = false")
	}
	if Add(X0, X0, X0).IsNOP() {
		t.Error("add x0,x0,x0 is not the canonical NOP")
	}
	if got := MustEncode(NOP); got != 0x13 {
		t.Errorf("encoded NOP = %#x, want 0x13", got)
	}
}

func BenchmarkEncode(b *testing.B) {
	inst := Add(X1, X2, X3)
	for i := 0; i < b.N; i++ {
		if _, err := Encode(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	w := MustEncode(Add(X1, X2, X3))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(w); err != nil {
			b.Fatal(err)
		}
	}
}
