package isa

import "testing"

// TestDecodeRejectsNonCanonicalSystemWords pins a bug the fuzz target
// found: TryDecode classified any SYSTEM word with a zero upper
// immediate as ECALL (swallowing the entire CSR space) and any MISC-MEM
// word as FENCE (including FENCE.I and hint-bit variants). Only the
// canonical Encode outputs are valid.
func TestDecodeRejectsNonCanonicalSystemWords(t *testing.T) {
	accept := map[uint32]Op{
		0x00000073: ECALL,
		0x00100073: EBREAK,
		0x0000000F: FENCE,
	}
	for word, op := range accept {
		in, ok := TryDecode(word)
		if !ok || in.Op != op {
			t.Errorf("TryDecode(%#08x) = %+v, %v; want op %v", word, in, ok, op)
		}
	}
	reject := []uint32{
		0x00002073, // CSRRS shape: SYSTEM with funct3=010
		0x00001073, // CSRRW shape
		0x00000173, // SYSTEM with rd=x2
		0x00200073, // URET/other upper-immediate SYSTEM words
		0x0000100F, // FENCE.I
		0x0FF0000F, // FENCE with pred/succ hint bits
		0x0000008F, // FENCE shape with rd=x1
	}
	for _, word := range reject {
		if in, ok := TryDecode(word); ok {
			t.Errorf("TryDecode(%#08x) accepted as %+v; want rejection", word, in)
		}
		if _, err := Decode(word); err == nil {
			t.Errorf("Decode(%#08x) succeeded; want error", word)
		}
	}
}

// FuzzDecodeConsistency checks the two decoder entry points against each
// other over the full 32-bit word space: TryDecode (the allocation-free
// fetch-path decoder) and Decode (the error-reporting front end) must
// agree on validity, and when a word is valid they must produce the same
// instruction. Valid words must additionally survive an Encode round
// trip back to the original bit pattern, and the decoded fields must be
// in range for the instruction's format.
func FuzzDecodeConsistency(f *testing.F) {
	// Seed one word per opcode class plus edge patterns: all-zeros (the
	// drain word a halted core keeps fetching), all-ones, and words that
	// differ from valid encodings only in funct3/funct7.
	seeds := []uint32{
		0x00000000,             // unknown opcode (drain word)
		0xFFFFFFFF,             // all ones
		0x000000B7,             // LUI x1, 0
		0x00000097,             // AUIPC x1, 0
		0x0000006F,             // JAL x0, 0
		0x00008067,             // JALR x0, x1, 0
		0x00208063,             // BEQ x1, x2, 0
		0x0000A083,             // LW x1, 0(x1)
		0x0020A023,             // SW x2, 0(x1)
		0x00108093,             // ADDI x1, x1, 1
		0x001090B3,             // SLL-shaped OP word
		0x40000033,             // SUB-shaped OP word
		0x02000033,             // MUL-shaped OP word
		0x00002073,             // bad SYSTEM word
		0x00001067,             // JALR with bad funct3
		0x00009063,             // branch with bad funct3
		0x0000B083,             // load with bad funct3
		0x0000B023,             // store with bad funct3
		0xFE009093, 0x40001013, // shift-immediate words with bad funct7
	}
	for _, w := range seeds {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, word uint32) {
		tryInst, ok := TryDecode(word)
		inst, err := Decode(word)
		if ok == (err != nil) {
			t.Fatalf("decoders disagree on %#08x: TryDecode ok=%v, Decode err=%v", word, ok, err)
		}
		if !ok {
			if tryInst != (Inst{}) {
				t.Fatalf("TryDecode(%#08x) rejected the word but returned non-zero %+v", word, tryInst)
			}
			return
		}
		if tryInst != inst {
			t.Fatalf("decoders disagree on %#08x: TryDecode=%+v Decode=%+v", word, tryInst, inst)
		}
		if !inst.Op.Valid() {
			t.Fatalf("Decode(%#08x) produced invalid op %v", word, inst.Op)
		}
		if !inst.Rd.Valid() || !inst.Rs1.Valid() || !inst.Rs2.Valid() {
			t.Fatalf("Decode(%#08x) produced out-of-range register in %+v", word, inst)
		}
		// LUI/AUIPC keep their immediate as a raw 20-bit field; everything
		// else must fit its format's signed range.
		if f := inst.Op.Format(); f != FormatR && f != FormatU {
			if min, max := immRange(f); inst.Imm < min || inst.Imm > max {
				t.Fatalf("Decode(%#08x) immediate %d outside [%d,%d] for %v", word, inst.Imm, min, max, inst.Op)
			}
		}
		// A decoded instruction must encode back to the very word it came
		// from — the decoder and encoder define the same bijection on the
		// valid subset.
		back, err := Encode(inst)
		if err != nil {
			t.Fatalf("Encode(Decode(%#08x)) failed: %v (inst %+v)", word, err, inst)
		}
		if back != word {
			t.Fatalf("round trip changed the word: %#08x -> %+v -> %#08x", word, inst, back)
		}
	})
}
