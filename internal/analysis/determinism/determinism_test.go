package determinism_test

import (
	"path/filepath"
	"testing"

	"emsim/internal/analysis/analysistest"
	"emsim/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), determinism.New("a"))
}

// TestScope verifies the analyzer is inert outside its package set.
func TestScope(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "b"), determinism.New("a"))
}
