package a

import (
	"math/rand"
	"time"
)

func clock() time.Time {
	return time.Now() // want `time.Now reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since reads the wall clock`
}

func globalRand() float64 {
	return rand.Float64() // want `rand.Float64 uses the global random source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle uses the global random source`
}

// Negative: an explicitly seeded generator replays exactly.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Negative: time values may be manipulated, just not read from the wall
// clock.
func add(t time.Time) time.Time {
	return t.Add(time.Second)
}

func mapIter(m map[int]float64) float64 {
	var s float64
	for _, v := range m { // want `map iteration order is nondeterministic`
		s += v
	}
	return s
}

// Negative: slice iteration is ordered.
func sliceIter(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// Negative: a commutative reduction over a map can be suppressed with a
// reason.
func mapSum(m map[int]int) int {
	s := 0
	//emsim:ignore determinism summation is order-independent
	for _, v := range m {
		s += v
	}
	return s
}

// Negative: a single-case select (plus default) has no order to get
// wrong, even in an ordered function.
//
//emsim:ordered
func orderedDrain(ch chan int) int {
	select {
	case v := <-ch:
		return v
	}
}

// An ordered reduction must not let the runtime pick between ready
// channels.
//
//emsim:ordered
func orderedRace(a, b chan int) int {
	select { // want `select with multiple cases picks a ready case at random`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
