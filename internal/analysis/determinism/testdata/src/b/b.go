// Package b is out of the analyzer's scope in TestScope: its wall-clock
// read must produce no finding.
package b

import "time"

func clock() time.Time {
	return time.Now()
}
