// Package b is out of the analyzer's scope in TestScope: its wall-clock
// read must produce no finding.
package b

import "time"

func clock() time.Time {
	return time.Now()
}

// An //emsim:ordered function is held to the full rule set even in an
// out-of-scope package.
//
//emsim:ordered
func orderedClock(a, b chan int) time.Time {
	select { // want `select with multiple cases picks a ready case at random`
	case <-a:
	case <-b:
	}
	return time.Now() // want `time.Now reads the wall clock`
}
