// Package determinism enforces bit-for-bit replayability of the
// simulation core (cpu, signal, core by default): identical programs and
// parameters must produce identical traces and signals, because the
// paper's leakage statistics difference two signal populations and any
// run-to-run jitter shows up as spurious leakage. The analyzer bans the
// three stdlib trapdoors through which nondeterminism enters a pure
// computation:
//
//   - wall-clock reads (time.Now, time.Since, time.Until)
//   - the math/rand global source (rand.Int, rand.Float64, rand.Seed,
//     ...). Explicitly seeded sources via rand.New/rand.NewSource are
//     fine and remain available for noise models.
//   - range over a map, whose iteration order is randomized per run; if
//     the order truly cannot matter, suppress with a reason, otherwise
//     iterate over sorted keys.
//
// Beyond the core package set, any function anywhere in the module may
// declare //emsim:ordered in its doc comment: a claim that its result is
// independent of goroutine scheduling and worker count (the training
// pipeline's reduction contract). Annotated functions get the full rule
// set regardless of package scope, plus one more rule: a select statement
// with several communication clauses, whose ready-case choice is
// randomized by the runtime.
package determinism

import (
	"go/ast"
	"go/types"

	"emsim/internal/analysis"
)

// DefaultPaths are the packages whose outputs must replay exactly.
var DefaultPaths = []string{
	"emsim/internal/cpu",
	"emsim/internal/signal",
	"emsim/internal/core",
}

// Analyzer checks the default package set.
var Analyzer = New(DefaultPaths...)

// bannedTime are wall-clock entry points in package time.
var bannedTime = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRand are math/rand package-level functions that construct
// explicitly seeded generators rather than using the global source.
var allowedRand = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// New returns a determinism analyzer restricted to the given import
// paths (used by tests to point it at fixture packages).
func New(paths ...string) *analysis.Analyzer {
	scope := map[string]bool{}
	for _, p := range paths {
		scope[p] = true
	}
	return &analysis.Analyzer{
		Name: "determinism",
		Doc:  "ban wall-clock reads, the global rand source, and map-order iteration in the simulation core and in //emsim:ordered functions",
		Run: func(pass *analysis.Pass) error {
			return run(pass, scope[pass.Pkg.Path()])
		},
	}
}

// run applies the rule set: everywhere in an in-scope package, and inside
// //emsim:ordered functions of any package. Ordered functions additionally
// get the select rule (in-scope or not).
func run(pass *analysis.Pass, inScope bool) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			ordered := isFunc && analysis.FuncHasDirective(fd, "emsim:ordered")
			if !inScope && !ordered {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				check(pass, n)
				if ordered {
					if sel, ok := n.(*ast.SelectStmt); ok && len(sel.Body.List) > 1 {
						pass.Reportf(sel.Select, "select with multiple cases picks a ready case at random; an //emsim:ordered function must not depend on it")
					}
				}
				return true
			})
		}
	}
	return nil
}

// check applies the core per-node rules (map range, wall clock, global
// rand source).
func check(pass *analysis.Pass, n ast.Node) {
	info := pass.TypesInfo
	switch n := n.(type) {
	case *ast.RangeStmt:
		t := info.Types[n.X].Type
		if t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				pass.Reportf(n.Range, "map iteration order is nondeterministic; iterate over sorted keys or suppress with a reason")
			}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[n.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		switch fn.Pkg().Path() {
		case "time":
			if bannedTime[fn.Name()] {
				pass.Reportf(n.Pos(), "time.%s reads the wall clock; simulation outputs must not depend on it", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			// Only package-level functions use the global source;
			// *rand.Rand methods on a seeded generator are fine.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !allowedRand[fn.Name()] {
				pass.Reportf(n.Pos(), "%s.%s uses the global random source; use a seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
			}
		}
	}
}
