// Package ctxflow checks cancellation hygiene in the packages that
// thread context.Context down to blocking work (core, serve, defend):
//
//   - a declared context.Context parameter must actually be used in the
//     function body — a dropped ctx silently severs the caller's
//     cancellation and deadline
//   - context.Background() and context.TODO() do not belong in library
//     code; they root a new, uncancellable tree. Blocking convenience
//     wrappers that deliberately do this carry an //emsim:ignore with
//     the reason
//   - a go statement must hand the goroutine a lifecycle: a
//     context.Context argument or capture, or a sync.WaitGroup
//     join/handshake. Same-package callees are inspected; a goroutine
//     with neither can outlive every caller and leak
package ctxflow

import (
	"go/ast"
	"go/types"

	"emsim/internal/analysis"
)

// DefaultPaths are the cancellation-threading packages the stock
// analyzer watches.
var DefaultPaths = []string{
	"emsim/internal/core",
	"emsim/internal/serve",
	"emsim/internal/defend",
}

// Analyzer checks the default package set.
var Analyzer = New(DefaultPaths...)

// New returns a ctxflow analyzer restricted to the given import paths.
func New(paths ...string) *analysis.Analyzer {
	scope := map[string]bool{}
	for _, p := range paths {
		scope[p] = true
	}
	return &analysis.Analyzer{
		Name: "ctxflow",
		Doc:  "flag dropped contexts, context.Background in library code, and goroutines without a cancellation or join path",
		Run: func(pass *analysis.Pass) error {
			if !scope[pass.Pkg.Path()] {
				return nil
			}
			c := &checker{pass: pass, decls: map[*types.Func]*ast.FuncDecl{}}
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
							c.decls[obj] = fd
						}
					}
				}
			}
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncDecl:
						c.checkParams(n)
					case *ast.CallExpr:
						c.checkBackground(n)
					case *ast.GoStmt:
						c.checkGo(n)
					}
					return true
				})
			}
			return nil
		},
	}
}

type checker struct {
	pass  *analysis.Pass
	decls map[*types.Func]*ast.FuncDecl
}

// checkParams flags declared context.Context parameters the body never
// reads.
func (c *checker) checkParams(fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Type.Params == nil {
		return
	}
	info := c.pass.TypesInfo
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := info.Defs[name]
			if obj == nil || !isContextType(obj.Type()) {
				continue
			}
			used := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if !used {
				c.pass.Reportf(name.Pos(), "context parameter %s is never used in %s; thread it through or remove it", name.Name, fd.Name.Name)
			}
		}
	}
}

// checkBackground flags context.Background and context.TODO calls.
func (c *checker) checkBackground(call *ast.CallExpr) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		c.pass.Reportf(call.Pos(), "context.%s in library code severs cancellation; accept a caller context", name)
	}
}

// checkGo flags goroutines launched with no visible lifecycle.
func (c *checker) checkGo(stmt *ast.GoStmt) {
	info := c.pass.TypesInfo
	call := stmt.Call

	// A context argument hands the goroutine its lifecycle.
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isContextType(tv.Type) {
			return
		}
	}

	switch fun := unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if hasLifecycle(info, fun.Body) {
			return
		}
	default:
		if fn, _ := resolveCallee(info, unparen(call.Fun)); fn != nil {
			if decl, ok := c.decls[fn]; ok && decl.Body != nil {
				if hasLifecycle(info, decl.Body) {
					return
				}
			}
		}
	}
	c.pass.Reportf(stmt.Pos(), "goroutine launched without a cancellation or join path")
}

// hasLifecycle reports whether the body touches a context.Context or a
// sync.WaitGroup — either gives the goroutine a way to be cancelled or
// joined.
func hasLifecycle(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[expr]; ok && tv.Type != nil {
			if isContextType(tv.Type) || isWaitGroup(tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isWaitGroup reports whether t is sync.WaitGroup (possibly behind a
// pointer).
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// resolveCallee returns the static callee of fun, if any.
func resolveCallee(info *types.Info, fun ast.Expr) (*types.Func, bool) {
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, ok := info.Uses[fun].(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			return fn, ok
		}
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		return fn, ok
	case *ast.IndexExpr:
		return resolveCallee(info, fun.X)
	}
	return nil, false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
