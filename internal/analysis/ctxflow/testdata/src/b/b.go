// Package b verifies ctxflow is inert outside its package scope.
package b

import "context"

func background() context.Context {
	return context.Background()
}

func dropped(ctx context.Context, n int) int {
	return n
}

func orphan() {
	go func() { println("work") }()
}
