// Package a exercises the ctxflow analyzer: dropped context
// parameters, background contexts in library code, and goroutines
// without a lifecycle, plus the clean shapes and a justified
// suppression.
package a

import (
	"context"
	"sync"
)

func dropped(ctx context.Context, n int) int { // want `context parameter ctx is never used in dropped; thread it through or remove it`
	return n * 2
}

// used is clean: the context steers the work.
func used(ctx context.Context) error {
	return ctx.Err()
}

// anonymous is clean: an unnamed context (interface conformance) is not
// a dropped one.
func anonymous(_ context.Context, n int) int {
	return n
}

func background() context.Context {
	return context.Background() // want `context\.Background in library code severs cancellation; accept a caller context`
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO in library code severs cancellation; accept a caller context`
}

func run(ctx context.Context) error { return ctx.Err() }

// convenience shows the documented-wrapper pattern: the background
// context is deliberate and carries a reason.
func convenience() error {
	//emsim:ignore ctxflow documented blocking convenience form for callers without a context
	return run(context.Background())
}

func orphan() {
	go func() { // want `goroutine launched without a cancellation or join path`
		println("work")
	}()
}

func plain() { println("x") }

func orphanNamed() {
	go plain() // want `goroutine launched without a cancellation or join path`
}

// withCtx is clean: the goroutine captures the caller's context.
func withCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// withWg is clean: the WaitGroup is a join path.
func withWg(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func worker(ctx context.Context) { <-ctx.Done() }

// namedWithArg is clean: the context rides along as an argument.
func namedWithArg(ctx context.Context) {
	go worker(ctx)
}

type svc struct{ wg sync.WaitGroup }

func (s *svc) loop() { s.wg.Done() }

// start is clean: the same-package callee's body joins the WaitGroup.
func (s *svc) start() {
	s.wg.Add(1)
	go s.loop()
}
