package ctxflow_test

import (
	"path/filepath"
	"testing"

	"emsim/internal/analysis/analysistest"
	"emsim/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), ctxflow.New("a"))
}

// TestScope verifies the analyzer is inert outside its package set.
func TestScope(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "b"), ctxflow.New("a"))
}
