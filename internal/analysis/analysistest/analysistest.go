// Package analysistest runs an analyzer over a testdata package and
// checks its findings against // want comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library only.
//
// A testdata package lives in <analyzer>/testdata/src/<pkg> and is plain
// Go. Lines that should trigger a diagnostic carry a trailing
//
//	// want `regexp` `another regexp`
//
// comment: each backtick-quoted pattern must match exactly one finding
// reported on that line, every finding must be claimed by a pattern, and
// unmatched patterns fail the test. Testdata may import real module
// packages (go/types does not enforce internal-package visibility), so
// the fixtures can exercise, for example, switches over the real
// cpu.Stage type.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"emsim/internal/analysis"
)

// want is one expected-diagnostic pattern.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile("`([^`]*)`")

// Run loads the package rooted at dir (a directory of .go files),
// type-checks it with module/stdlib imports resolved from compiler
// export data, applies the analyzer through the full analysis.Run
// pipeline (so suppressions are honored), and diffs the findings
// against the // want comments.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	findings, fset, files, err := analyze(dir, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, fset, files)

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched `%s`", filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// analyze loads, type-checks, and runs the analyzers over the package in
// dir, returning the surviving findings.
func analyze(dir string, analyzers []*analysis.Analyzer) ([]analysis.Finding, *token.FileSet, []*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("analysistest: no .go files in %s", dir)
	}

	fset := token.NewFileSet()
	files, err := analysis.ParseDirFiles(fset, dir, names)
	if err != nil {
		return nil, nil, nil, err
	}

	imports := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			imports[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	exports, mod, err := exportData(fset, imports)
	if err != nil {
		return nil, nil, nil, err
	}

	pkgPath := files[0].Name.Name
	mod.CollectAnnotations(pkgPath, files)

	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: analysis.ExportImporter(fset, exports)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("analysistest: type-checking %s: %w", dir, err)
	}

	pkg := &analysis.Package{
		ImportPath: pkgPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	findings, err := analysis.Run([]*analysis.Package{pkg}, mod, analyzers)
	return findings, fset, files, err
}

// exportData resolves the testdata package's imports to compiler export
// data files via `go list -deps -export` run at the module root, and
// collects //emsim:noalloc annotations from any imported module packages
// so cross-package noalloc queries behave as they do in a real run.
func exportData(fset *token.FileSet, imports map[string]bool) (map[string]string, *analysis.ModuleInfo, error) {
	mod := analysis.NewModuleInfo()
	exports := map[string]string{}
	if len(imports) == 0 {
		return exports, mod, nil
	}
	root, err := moduleRoot()
	if err != nil {
		return nil, nil, err
	}
	args := []string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles"}
	for path := range imports {
		args = append(args, path)
	}
	sort.Strings(args[5:])
	listed, err := analysis.GoList(root, args...)
	if err != nil {
		return nil, nil, err
	}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		files, err := analysis.ParseDirFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, nil, fmt.Errorf("analysistest: parsing dependency %s: %w", p.ImportPath, err)
		}
		mod.CollectAnnotations(p.ImportPath, files)
	}
	return exports, mod, nil
}

// moduleRoot locates the enclosing module's root directory.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("analysistest: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("analysistest: not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// collectWants parses every // want comment in the files.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				spec := text[i+len("// want "):]
				ms := wantRe.FindAllStringSubmatch(spec, -1)
				if len(ms) == 0 {
					t.Errorf("%s:%d: malformed want comment (need backtick-quoted patterns): %s", pos.Filename, pos.Line, text)
					continue
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
				}
			}
		}
	}
	return wants
}

// claim marks the first unmatched want on the finding's line whose
// pattern matches the message.
func claim(wants []*want, f analysis.Finding) bool {
	for _, w := range wants {
		if !w.matched && w.file == f.Position.Filename && w.line == f.Position.Line && w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
