package lockscope_test

import (
	"path/filepath"
	"testing"

	"emsim/internal/analysis/analysistest"
	"emsim/internal/analysis/lockscope"
)

func TestLockscope(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), lockscope.New("a"))
}

// TestScope verifies the analyzer is inert outside its package set.
func TestScope(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "b"), lockscope.New("a"))
}
