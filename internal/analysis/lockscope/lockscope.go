// Package lockscope checks mutex hygiene in the lock-heavy packages
// (serve's registries and scheduler, core's trainer/cache/pool,
// defend's evaluator): a sync.Mutex/RWMutex critical section must not
// perform operations that can block indefinitely or run foreign code,
// and a function that returns with a lock held must have deferred the
// unlock.
//
// The analyzer performs a linear, source-order scan of each function
// body (function literals are scanned as their own scopes), tracking
// which mutexes are held. While a lock is held it flags:
//
//   - channel sends and receives (select statements with a default
//     clause are exempt — they are non-blocking by construction, the
//     scheduler's submit path relies on this)
//   - select statements without a default clause
//   - sync.WaitGroup.Wait and time.Sleep
//   - calls into I/O packages (net, net/http, os, io, bufio)
//   - dynamic calls — function values, function-typed fields,
//     interface methods. A callback invoked under a lock can run
//     arbitrary foreign code, including code that takes the same lock.
//
// It also flags returning (or falling off the end of the function)
// while a lock is held without a deferred unlock, and locking a mutex
// that the scan already sees as held. sync.Cond.Wait is exempt — it
// requires the lock by contract.
//
// The scan is linear, not path-sensitive: it trades soundness on
// branch-heavy lock juggling (which the targeted packages avoid) for
// zero tolerance of blocking work inside the critical sections they do
// write.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"emsim/internal/analysis"
)

// DefaultPaths are the lock-heavy packages the stock analyzer watches.
var DefaultPaths = []string{
	"emsim/internal/core",
	"emsim/internal/serve",
	"emsim/internal/defend",
}

// Analyzer checks the default package set.
var Analyzer = New(DefaultPaths...)

// ioPkgs are packages whose calls perform I/O and must not run under a
// lock.
var ioPkgs = map[string]bool{
	"bufio":    true,
	"io":       true,
	"net":      true,
	"net/http": true,
	"os":       true,
}

// New returns a lockscope analyzer restricted to the given import
// paths.
func New(paths ...string) *analysis.Analyzer {
	scope := map[string]bool{}
	for _, p := range paths {
		scope[p] = true
	}
	return &analysis.Analyzer{
		Name: "lockscope",
		Doc:  "flag blocking operations and missed unlocks inside mutex critical sections",
		Run: func(pass *analysis.Pass) error {
			if !scope[pass.Pkg.Path()] {
				return nil
			}
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					checkScope(pass, fd.Name.Name, fd.Body)
				}
			}
			return nil
		},
	}
}

// event is one lock-relevant occurrence in source order.
type event struct {
	pos  token.Pos
	kind eventKind
	key  string // lock expression, for lock/unlock events
	desc string // human description, for blocking events
}

type eventKind int

const (
	evLock eventKind = iota
	evUnlock
	evDeferUnlock
	evReturn
	evBlocking
)

// heldLock is the scan state for one currently-held mutex.
type heldLock struct {
	pos      token.Pos
	deferred bool // a deferred unlock covers it
}

// checkScope scans one function scope (a declaration body or a function
// literal body); nested literals are scanned separately so a closure's
// locking is not confused with its enclosing function's.
func checkScope(pass *analysis.Pass, name string, body *ast.BlockStmt) {
	events := collectEvents(pass, body)
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]*heldLock{}
	heldKeys := func() []string {
		keys := make([]string, 0, len(held))
		for k := range held {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys
	}
	for _, ev := range events {
		switch ev.kind {
		case evLock:
			if _, ok := held[ev.key]; ok {
				pass.Reportf(ev.pos, "%s locked again while already held in %s (self-deadlock)", ev.key, name)
			}
			held[ev.key] = &heldLock{pos: ev.pos}
		case evUnlock:
			delete(held, ev.key)
		case evDeferUnlock:
			if h, ok := held[ev.key]; ok {
				h.deferred = true
			}
		case evReturn:
			for _, k := range heldKeys() {
				if !held[k].deferred {
					pass.Reportf(ev.pos, "return while %s is held in %s; defer the unlock", k, name)
				}
			}
		case evBlocking:
			for _, k := range heldKeys() {
				pass.Reportf(ev.pos, "%s while %s is held in %s", ev.desc, k, name)
			}
		}
	}
	for _, k := range heldKeys() {
		if !held[k].deferred {
			pass.Reportf(held[k].pos, "%s is still held when %s ends and its unlock is not deferred", k, name)
		}
	}
}

// collectEvents gathers the scope's lock, unlock, return and blocking
// events. It does not descend into nested function literals.
func collectEvents(pass *analysis.Pass, body *ast.BlockStmt) []event {
	info := pass.TypesInfo
	var events []event

	// Sends/receives appearing as a select's comm clauses are attempts,
	// not blocking points; the select statement itself is classified.
	commOps := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				commOps[comm] = true
			case *ast.ExprStmt:
				commOps[comm.X] = true
			case *ast.AssignStmt:
				for _, r := range comm.Rhs {
					commOps[r] = true
				}
			}
		}
		return true
	})

	var inDefer int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkScope(pass, "function literal", n.Body)
			return false
		case *ast.DeferStmt:
			// Classify the deferred call with defer semantics, then walk
			// its arguments (evaluated now) normally.
			inDefer++
			ast.Inspect(n.Call, walk)
			inDefer--
			return false
		case *ast.ReturnStmt:
			events = append(events, event{pos: n.Pos(), kind: evReturn})
		case *ast.SendStmt:
			if !commOps[n] {
				events = append(events, event{pos: n.Pos(), kind: evBlocking, desc: "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !commOps[ast.Node(n)] {
				events = append(events, event{pos: n.Pos(), kind: evBlocking, desc: "channel receive"})
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					events = append(events, event{pos: n.Pos(), kind: evBlocking, desc: "range over channel"})
				}
			}
		case *ast.SelectStmt:
			if !hasDefault(n) {
				events = append(events, event{pos: n.Pos(), kind: evBlocking, desc: "select without default"})
			}
		case *ast.CallExpr:
			events = append(events, classifyCall(pass, n, inDefer > 0)...)
		}
		return true
	}
	ast.Inspect(body, walk)
	return events
}

// classifyCall turns one call into lock, unlock or blocking events (or
// none, for calls known to be safe under a lock).
func classifyCall(pass *analysis.Pass, call *ast.CallExpr, deferred bool) []event {
	info := pass.TypesInfo
	fun := unparen(call.Fun)

	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil // conversion
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return nil
		}
		if _, isVar := info.Uses[id].(*types.Var); isVar {
			return []event{{pos: call.Pos(), kind: evBlocking, desc: "call through function value " + id.Name}}
		}
	}

	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok {
			fn, isFunc := s.Obj().(*types.Func)
			if isFunc {
				if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "sync" {
					recv := recvTypeName(fn)
					switch {
					case recv == "Mutex" || recv == "RWMutex" || recv == "Locker":
						key := types.ExprString(sel.X)
						switch fn.Name() {
						case "Lock", "RLock":
							return []event{{pos: call.Pos(), kind: evLock, key: key}}
						case "Unlock", "RUnlock":
							kind := evUnlock
							if deferred {
								kind = evDeferUnlock
							}
							return []event{{pos: call.Pos(), kind: kind, key: key}}
						}
						return nil
					case recv == "WaitGroup" && fn.Name() == "Wait":
						return []event{{pos: call.Pos(), kind: evBlocking, desc: "WaitGroup.Wait"}}
					case recv == "Cond" && fn.Name() == "Wait":
						return nil // requires the lock by contract
					}
					return nil // other sync ops (Once.Do aside) are quick
				}
				if types.IsInterface(s.Recv()) {
					return []event{{pos: call.Pos(), kind: evBlocking, desc: "call through interface method " + sel.Sel.Name}}
				}
				return classifyStaticCall(call, fn)
			}
			return []event{{pos: call.Pos(), kind: evBlocking, desc: "call through function-typed field " + sel.Sel.Name}}
		}
		// Package-qualified call.
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
			return classifyStaticCall(call, fn)
		}
		if _, ok := info.Uses[sel.Sel].(*types.Var); ok {
			return []event{{pos: call.Pos(), kind: evBlocking, desc: "call through function variable " + sel.Sel.Name}}
		}
	}
	return nil
}

// classifyStaticCall flags statically-resolved callees that block:
// time.Sleep and the I/O packages.
func classifyStaticCall(call *ast.CallExpr, fn *types.Func) []event {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	switch {
	case pkg.Path() == "time" && fn.Name() == "Sleep":
		return []event{{pos: call.Pos(), kind: evBlocking, desc: "time.Sleep"}}
	case ioPkgs[pkg.Path()]:
		return []event{{pos: call.Pos(), kind: evBlocking, desc: "I/O call " + pkg.Name() + "." + fn.Name()}}
	}
	return nil
}

// recvTypeName returns the name of the method's receiver type, pointer
// receivers unwrapped, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func hasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
