// Package b verifies lockscope is inert outside its package scope: the
// same shapes package a flags produce no findings here.
package b

import "sync"

type reg struct {
	mu sync.Mutex
	ch chan int
}

func (r *reg) sendUnderLock(v int) {
	r.mu.Lock()
	r.ch <- v
	r.mu.Unlock()
}

func (r *reg) earlyReturn() int {
	r.mu.Lock()
	return 1
}
