// Package a exercises the lockscope analyzer: blocking operations and
// missed unlocks inside critical sections, plus the clean shapes the
// real packages rely on (defer-unlock, select with default, Cond.Wait).
package a

import (
	"os"
	"sync"
	"time"
)

type reg struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	wg   sync.WaitGroup
	ch   chan int
	vals map[int]int
	fn   func()
}

func (r *reg) sendUnderLock(v int) {
	r.mu.Lock()
	r.ch <- v // want `channel send while r\.mu is held in sendUnderLock`
	r.mu.Unlock()
}

func (r *reg) recvUnderLock() int {
	r.mu.Lock()
	v := <-r.ch // want `channel receive while r\.mu is held in recvUnderLock`
	r.mu.Unlock()
	return v
}

func (r *reg) waitUnderLock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wg.Wait() // want `WaitGroup\.Wait while r\.mu is held in waitUnderLock`
}

func (r *reg) sleepUnderLock() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while r\.mu is held in sleepUnderLock`
	r.mu.Unlock()
}

func (r *reg) ioUnderLock() {
	r.rw.RLock()
	os.Getenv("HOME") // want `I/O call os\.Getenv while r\.rw is held in ioUnderLock`
	r.rw.RUnlock()
}

func (r *reg) callbackUnderLock() {
	r.mu.Lock()
	r.fn() // want `call through function-typed field fn while r\.mu is held in callbackUnderLock`
	r.mu.Unlock()
}

func (r *reg) funcValueUnderLock(f func()) {
	r.mu.Lock()
	f() // want `call through function value f while r\.mu is held in funcValueUnderLock`
	r.mu.Unlock()
}

func (r *reg) selectUnderLock() {
	r.mu.Lock()
	select { // want `select without default while r\.mu is held in selectUnderLock`
	case v := <-r.ch:
		r.vals[v] = v
	case r.ch <- 1:
	}
	r.mu.Unlock()
}

// selectWithDefault is clean: a select with a default clause cannot
// block, so its comm cases are attempts, not blocking points.
func (r *reg) selectWithDefault(v int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.ch <- v:
		return true
	default:
		return false
	}
}

func (r *reg) earlyReturn(k int) int {
	r.mu.Lock()
	if v, ok := r.vals[k]; ok {
		return v // want `return while r\.mu is held in earlyReturn; defer the unlock`
	}
	r.mu.Unlock()
	return 0
}

// deferred is clean: the deferred unlock covers every return.
func (r *reg) deferred(k int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vals[k]; ok {
		return v
	}
	return 0
}

func (r *reg) doubleLock() {
	r.mu.Lock()
	r.mu.Lock() // want `r\.mu locked again while already held in doubleLock \(self-deadlock\)`
	r.mu.Unlock()
	r.mu.Unlock()
}

func (r *reg) leaks() {
	r.mu.Lock() // want `r\.mu is still held when leaks ends and its unlock is not deferred`
	r.vals[0] = 1
}

// condWait is clean: sync.Cond.Wait requires the lock by contract.
func condWait(c *sync.Cond, ready *bool) {
	c.L.Lock()
	for !*ready {
		c.Wait()
	}
	c.L.Unlock()
}

// literalScope shows function literals are independent scopes: the
// closure's send is flagged against the closure, not suppressed by the
// outer function having no lock held at the go statement.
func (r *reg) literalScope() {
	go func() {
		r.mu.Lock()
		r.ch <- 1 // want `channel send while r\.mu is held in function literal`
		r.mu.Unlock()
	}()
}

// copyUnderLock is clean: snapshot under the lock, block after.
func (r *reg) copyUnderLock() []int {
	r.mu.Lock()
	out := make([]int, 0, len(r.vals))
	for _, v := range r.vals {
		out = append(out, v)
	}
	r.mu.Unlock()
	r.wg.Wait()
	return out
}
