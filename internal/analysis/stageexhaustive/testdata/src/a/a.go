package a

import "emsim/internal/cpu"

// Negative: all five stages cased.
func full(s cpu.Stage) int {
	switch s {
	case cpu.IF:
		return 1
	case cpu.ID:
		return 2
	case cpu.EX:
		return 3
	case cpu.MEM:
		return 4
	case cpu.WB:
		return 5
	}
	return 0
}

// Negative: incomplete cases backed by a panicking default.
func panicking(s cpu.Stage) int {
	switch s {
	case cpu.IF, cpu.ID:
		return 1
	default:
		panic("unhandled stage")
	}
}

func missing(s cpu.Stage) int {
	switch s { // want `switch over cpu.Stage does not handle MEM, WB`
	case cpu.IF, cpu.ID, cpu.EX:
		return 1
	}
	return 0
}

func silentDefault(s cpu.Stage) int {
	switch s { // want `does not handle EX, ID, MEM, WB; the default must panic`
	case cpu.IF:
		return 1
	default:
		return 0
	}
}

// Negative: switches over other integer types are not stage switches.
func otherEnum(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}

// Negative: a deliberate partial switch can be suppressed with a reason.
func suppressed(s cpu.Stage) int {
	//emsim:ignore stageexhaustive only fetch matters to this probe
	switch s {
	case cpu.IF:
		return 1
	}
	return 0
}
