// Package stageexhaustive verifies that every switch over the pipeline
// stage enum (emsim/internal/cpu.Stage) either covers all five stages or
// carries an explicit panicking default. The per-stage MISO amplitude
// model sums a contribution from each of IF/ID/EX/MEM/WB every cycle; a
// switch that silently drops a stage drops that stage's side-channel
// contribution, which is exactly the class of bug a golden trace won't
// catch if the test program never stresses the missing stage.
package stageexhaustive

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"emsim/internal/analysis"
)

const (
	stagePkgPath  = "emsim/internal/cpu"
	stageTypeName = "Stage"
)

// Analyzer is the stage-exhaustiveness checker.
var Analyzer = &analysis.Analyzer{
	Name: "stageexhaustive",
	Doc:  "switches over cpu.Stage must cover every stage or panic in default",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.TypesInfo.Types[sw.Tag].Type
			stage := stageType(tagType)
			if stage == nil {
				return true
			}
			checkSwitch(pass, sw, stage)
			return true
		})
	}
	return nil
}

// stageType returns the named cpu.Stage type if t is it, else nil.
func stageType(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != stageTypeName || obj.Pkg() == nil || obj.Pkg().Path() != stagePkgPath {
		return nil
	}
	return named
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, stage *types.Named) {
	// Enumerate the declared stage constants from the defining package's
	// scope, so a sixth stage added later tightens every switch at once.
	declared := map[string]constant.Value{}
	scope := stage.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), stage) {
			continue
		}
		declared[name] = c.Val()
	}

	covered := map[string]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, expr := range cc.List {
			tv, ok := pass.TypesInfo.Types[expr]
			if !ok || tv.Value == nil {
				continue
			}
			for name, val := range declared {
				if constant.Compare(tv.Value, token.EQL, val) {
					covered[name] = true
				}
			}
		}
	}

	if defaultClause != nil && panics(defaultClause.Body) {
		return
	}
	var missing []string
	for name := range declared {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	what := "add the missing cases or a panicking default"
	if defaultClause != nil {
		what = "the default must panic, or every stage must be cased"
	}
	pass.Reportf(sw.Switch, "switch over cpu.Stage does not handle %s; %s",
		strings.Join(missing, ", "), what)
}

// panics reports whether the statement list contains a panic call at its
// top level.
func panics(stmts []ast.Stmt) bool {
	for _, s := range stmts {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
	}
	return false
}
