package stageexhaustive_test

import (
	"path/filepath"
	"testing"

	"emsim/internal/analysis/analysistest"
	"emsim/internal/analysis/stageexhaustive"
)

func TestStageExhaustive(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), stageexhaustive.Analyzer)
}
