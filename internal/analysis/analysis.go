// Package analysis is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis used to build emsim-vet, the project's
// static-analysis gate. It deliberately mirrors the upstream shape — an
// Analyzer with a Run function over a typed Pass — so the checkers could
// be ported to the real framework wholesale if the x/tools dependency
// ever becomes available, but it is built entirely on the standard
// library: packages are enumerated with `go list`, dependencies are
// imported from compiler export data, and only the analyzed package
// itself is type-checked from source.
//
// Two project-specific comment directives drive the suite:
//
//	//emsim:noalloc
//	    placed in a function's doc comment, declares that the function
//	    must not allocate in the steady state. The noalloc analyzer
//	    verifies the declaration at every call site it can see.
//
//	//emsim:ignore <analyzer> <reason>
//	    suppresses the named analyzer's findings on the comment's line
//	    and on the line directly below it. The reason is mandatory; a
//	    reason-less suppression is itself reported and suppresses
//	    nothing. The reason ends at the first "//", so test scaffolding
//	    (or a second comment) on the same line is not swallowed. A
//	    suppression that silences nothing — no finding matched it and no
//	    analyzer consulted it — is stale and is itself reported, so dead
//	    exemptions cannot accumulate.
//
//	//emsim:ct
//	    placed in a function's doc comment, declares that the function
//	    must be constant-time with respect to its secret inputs. The
//	    secretflow analyzer verifies the declaration.
//
//	//emsim:secret <param> [param...]
//	    in a //emsim:ct function's doc comment, names the parameters
//	    that carry secret data. On a struct field's doc comment (no
//	    arguments) it marks the field itself as secret, module-wide.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //emsim:ignore suppressions. It must be a single word.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Reportf.
	Run func(*Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module exposes module-wide facts (currently the //emsim:noalloc
	// annotation set) collected from every package in the module, so an
	// analyzer can reason about cross-package calls.
	Module *ModuleInfo

	diagnostics []diagnostic
	suppressed  map[string]*suppression
}

// SuppressedAt reports whether a finding by this pass's analyzer at pos
// would be silenced by an //emsim:ignore directive. Analyzers whose
// checks propagate (noalloc's callee inheritance) use this to stop
// propagation through an acknowledged exception. Consulting a
// suppression counts as using it for the stale-suppression check, since
// the directive changed the analyzer's behavior even though no
// diagnostic was filed.
func (p *Pass) SuppressedAt(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	s, ok := p.suppressed[suppressKey(p.Analyzer.Name, position.Filename, position.Line)]
	if ok {
		s.used = true
	}
	return ok
}

type diagnostic struct {
	pos     token.Pos
	message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, diagnostic{pos: pos, message: fmt.Sprintf(format, args...)})
}

// A Finding is one diagnostic, positioned and attributed to its analyzer.
type Finding struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
}

// SuppressionAnalyzer is the pseudo-analyzer name under which malformed
// //emsim:ignore comments are reported. It cannot itself be suppressed.
const SuppressionAnalyzer = "suppression"

// ignorePrefix is the suppression directive prefix.
const ignorePrefix = "//emsim:ignore"

// suppression is one parsed //emsim:ignore directive.
type suppression struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
	used     bool // filtered a diagnostic or was consulted via SuppressedAt
}

// parseSuppressions extracts every //emsim:ignore directive from the
// files' comments.
func parseSuppressions(fset *token.FileSet, files []*ast.File) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				// A nested "//" (for example test scaffolding) ends the
				// directive.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				pos := fset.Position(c.Pos())
				out = append(out, suppression{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: name,
					reason:   strings.TrimSpace(reason),
					pos:      c.Pos(),
				})
			}
		}
	}
	return out
}

// AnalyzerStat counts one analyzer's outcomes across the whole run.
type AnalyzerStat struct {
	Findings   int `json:"findings"`
	Suppressed int `json:"suppressed"`
}

// Result is the full outcome of a RunAll: the surviving findings plus
// the bookkeeping a driver needs for summaries and machine output.
type Result struct {
	// Findings are the surviving diagnostics, sorted by position.
	Findings []Finding
	// Packages is the number of packages analyzed.
	Packages int
	// Suppressed is the number of diagnostics silenced by //emsim:ignore
	// directives (a directive covering two diagnostics counts twice).
	Suppressed int
	// Stats breaks findings and suppressions down per analyzer (the
	// SuppressionAnalyzer pseudo-entry counts directive hygiene
	// findings).
	Stats map[string]AnalyzerStat
}

// Run applies every analyzer to every package, resolves suppressions, and
// returns the surviving findings sorted by position. It is RunAll
// without the summary bookkeeping.
func Run(pkgs []*Package, mod *ModuleInfo, analyzers []*Analyzer) ([]Finding, error) {
	res, err := RunAll(pkgs, mod, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// RunAll applies every analyzer to every package, resolves suppressions,
// and returns the surviving findings sorted by position along with
// per-analyzer statistics. Malformed suppressions (missing analyzer name
// or reason, or naming an analyzer that does not exist) are themselves
// reported, as are stale ones: a well-formed suppression that neither
// filtered a diagnostic nor was consulted by its analyzer silences
// nothing and is reported so dead exemptions cannot accumulate.
func RunAll(pkgs []*Package, mod *ModuleInfo, analyzers []*Analyzer) (*Result, error) {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	res := &Result{Packages: len(pkgs), Stats: map[string]AnalyzerStat{}}
	report := func(f Finding, suppressedBy *suppression) {
		stat := res.Stats[f.Analyzer]
		if suppressedBy != nil {
			suppressedBy.used = true
			stat.Suppressed++
			res.Suppressed++
		} else {
			stat.Findings++
			res.Findings = append(res.Findings, f)
		}
		res.Stats[f.Analyzer] = stat
	}
	for _, pkg := range pkgs {
		sups := parseSuppressions(pkg.Fset, pkg.Files)
		active := map[string]*suppression{}
		var wellFormed []*suppression
		for i := range sups {
			s := &sups[i]
			switch {
			case s.analyzer == "":
				report(Finding{
					Analyzer: SuppressionAnalyzer,
					Position: pkg.Fset.Position(s.pos),
					Message:  "emsim:ignore needs an analyzer name and a reason",
				}, nil)
			case !known[s.analyzer]:
				report(Finding{
					Analyzer: SuppressionAnalyzer,
					Position: pkg.Fset.Position(s.pos),
					Message:  fmt.Sprintf("emsim:ignore names unknown analyzer %q", s.analyzer),
				}, nil)
			case s.reason == "":
				report(Finding{
					Analyzer: SuppressionAnalyzer,
					Position: pkg.Fset.Position(s.pos),
					Message:  fmt.Sprintf("emsim:ignore %s is missing its required reason", s.analyzer),
				}, nil)
			default:
				// The directive covers its own line and the next one, so
				// it can trail the flagged statement or sit above it.
				active[suppressKey(s.analyzer, s.file, s.line)] = s
				active[suppressKey(s.analyzer, s.file, s.line+1)] = s
				wellFormed = append(wellFormed, s)
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				Module:     mod,
				suppressed: active,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			for _, d := range pass.diagnostics {
				pos := pkg.Fset.Position(d.pos)
				f := Finding{Analyzer: a.Name, Position: pos, Message: d.message}
				report(f, active[suppressKey(a.Name, pos.Filename, pos.Line)])
			}
		}
		for _, s := range wellFormed {
			if s.used {
				continue
			}
			report(Finding{
				Analyzer: SuppressionAnalyzer,
				Position: pkg.Fset.Position(s.pos),
				Message:  fmt.Sprintf("emsim:ignore %s matched no finding; remove the stale suppression", s.analyzer),
			}, nil)
		}
	}
	findings := res.Findings
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

func suppressKey(analyzer, file string, line int) string {
	return fmt.Sprintf("%s\x00%s\x00%d", analyzer, file, line)
}

// FuncHasDirective reports whether the function's doc comment contains
// the given comment directive (for example "emsim:noalloc").
func FuncHasDirective(decl *ast.FuncDecl, directive string) bool {
	return commentGroupHasDirective(decl.Doc, directive)
}

// FuncDirectiveArgs returns the space-separated arguments of every
// occurrence of the directive in the function's doc comment, in order.
// The second result reports whether the directive appears at all (a
// bare directive yields ok with no arguments).
func FuncDirectiveArgs(decl *ast.FuncDecl, directive string) (args []string, ok bool) {
	if decl.Doc == nil {
		return nil, false
	}
	want := "//" + directive
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(c.Text)
		switch {
		case text == want:
			ok = true
		case strings.HasPrefix(text, want+" "):
			ok = true
			args = append(args, strings.Fields(strings.TrimPrefix(text, want+" "))...)
		}
	}
	return args, ok
}

func commentGroupHasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	want := "//" + directive
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == want || strings.HasPrefix(text, want+" ") {
			return true
		}
	}
	return false
}

// ModuleInfo holds facts collected from every package in the module
// before analysis runs, keyed so they survive the package-at-a-time
// type-checking model (imported packages come from export data, which
// carries no comments).
type ModuleInfo struct {
	noalloc     map[string]bool
	ct          map[string]bool
	secretField map[string]bool
}

// NewModuleInfo returns an empty fact set.
func NewModuleInfo() *ModuleInfo {
	return &ModuleInfo{
		noalloc:     map[string]bool{},
		ct:          map[string]bool{},
		secretField: map[string]bool{},
	}
}

// AddNoalloc records that the function identified by key carries the
// //emsim:noalloc annotation.
func (m *ModuleInfo) AddNoalloc(key string) { m.noalloc[key] = true }

// IsNoallocKey reports whether the function identified by key is
// annotated //emsim:noalloc.
func (m *ModuleInfo) IsNoallocKey(key string) bool { return m.noalloc[key] }

// IsNoallocFunc reports whether fn is annotated //emsim:noalloc.
func (m *ModuleInfo) IsNoallocFunc(fn *types.Func) bool { return m.noalloc[FuncKey(fn)] }

// NoallocCount returns the number of annotated functions (for reporting).
func (m *ModuleInfo) NoallocCount() int { return len(m.noalloc) }

// AddCT records that the function identified by key carries the
// //emsim:ct annotation.
func (m *ModuleInfo) AddCT(key string) { m.ct[key] = true }

// IsCTKey reports whether the function identified by key is annotated
// //emsim:ct.
func (m *ModuleInfo) IsCTKey(key string) bool { return m.ct[key] }

// IsCTFunc reports whether fn is annotated //emsim:ct.
func (m *ModuleInfo) IsCTFunc(fn *types.Func) bool { return m.ct[FuncKey(fn)] }

// CTCount returns the number of //emsim:ct functions (for reporting).
func (m *ModuleInfo) CTCount() int { return len(m.ct) }

// AddSecretField records that the struct field identified by key (see
// FieldKey) carries the //emsim:secret annotation.
func (m *ModuleInfo) AddSecretField(key string) { m.secretField[key] = true }

// IsSecretField reports whether the struct field identified by key is
// annotated //emsim:secret.
func (m *ModuleInfo) IsSecretField(key string) bool { return m.secretField[key] }

// SecretFieldCount returns the number of //emsim:secret struct fields.
func (m *ModuleInfo) SecretFieldCount() int { return len(m.secretField) }

// FieldKey returns the module-wide key of a struct field:
// "pkgpath.Type.Field".
func FieldKey(pkgPath, typeName, fieldName string) string {
	return pkgPath + "." + typeName + "." + fieldName
}

// FuncKey returns the module-wide key of a function object:
// "pkgpath.Func" for package functions and "pkgpath.Type.Method" for
// methods (pointer receivers are keyed by their element type).
func FuncKey(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return fn.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed {
			return pkg.Path() + "." + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg.Path() + "." + fn.Name()
}

// CollectAnnotations scans a package's syntax for //emsim:noalloc and
// //emsim:ct function directives and //emsim:secret struct-field
// directives, recording them in m under pkgPath.
func (m *ModuleInfo) CollectAnnotations(pkgPath string, files []*ast.File) {
	for _, f := range files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.FuncDecl:
				if FuncHasDirective(decl, "emsim:noalloc") {
					m.AddNoalloc(declKey(pkgPath, decl))
				}
				if FuncHasDirective(decl, "emsim:ct") {
					m.AddCT(declKey(pkgPath, decl))
				}
			case *ast.GenDecl:
				m.collectSecretFields(pkgPath, decl)
			}
		}
	}
}

// collectSecretFields records //emsim:secret directives found on struct
// field doc comments inside a type declaration.
func (m *ModuleInfo) collectSecretFields(pkgPath string, decl *ast.GenDecl) {
	if decl.Tok != token.TYPE {
		return
	}
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, field := range st.Fields.List {
			if !commentGroupHasDirective(field.Doc, "emsim:secret") &&
				!commentGroupHasDirective(field.Comment, "emsim:secret") {
				continue
			}
			for _, name := range field.Names {
				m.AddSecretField(FieldKey(pkgPath, ts.Name.Name, name.Name))
			}
		}
	}
}

// declKey computes the module-wide key of a declaration syntactically,
// matching FuncKey's object-based form.
func declKey(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		// Generic receivers (Type[T]) do not occur in this module, but
		// unwrap them anyway so the key stays stable if they appear.
		if idx, ok := t.(*ast.IndexExpr); ok {
			t = idx.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return pkgPath + "." + id.Name + "." + fd.Name.Name
		}
	}
	return pkgPath + "." + fd.Name.Name
}
